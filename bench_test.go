// Benchmarks regenerating every table and figure in the paper's
// evaluation (§5), one testing.B target per artifact, plus the design
// ablations. Each runs the corresponding internal/bench experiment at a
// small scale and reports key numbers as custom metrics; run
// cmd/sharebench for the full paper-style tables and -scale control.
//
//	go test -bench=. -benchmem
package share_test

import (
	"strings"
	"testing"

	"share/internal/bench"
)

// benchScale keeps every target in the seconds range; cmd/sharebench
// accepts -scale for larger runs.
const benchScale = 0.005

func runExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() {
		b.Skipf("skipping experiment %s in -short mode (run the tier-1 `make check` without benchmarks, or drop -short)", id)
	}
	e, err := bench.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		out, _, err := e.RunWithReport(bench.Params{Scale: benchScale, Seed: 42})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			lines := strings.Count(out, "\n")
			b.ReportMetric(float64(lines), "output-lines")
			if testing.Verbose() {
				b.Logf("\n%s", out)
			}
		}
	}
}

// BenchmarkFig5aPageSize regenerates Figure 5(a): LinkBench throughput
// with 4/8/16 KiB pages, DWB-On vs SHARE.
func BenchmarkFig5aPageSize(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5bBufferSize regenerates Figure 5(b): LinkBench throughput
// with 50/100/150 MB buffer pools.
func BenchmarkFig5bBufferSize(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig6IOActivities regenerates Figure 6(a)-(c): host page
// writes, GC events and copyback pages inside the SSD.
func BenchmarkFig6IOActivities(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkTable1Latency regenerates Table 1: the LinkBench per-operation
// latency distribution under DWB-On and SHARE.
func BenchmarkTable1Latency(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig7YCSBF regenerates Figure 7(a)+(b): YCSB workload-F
// throughput and written bytes across commit batch sizes.
func BenchmarkFig7YCSBF(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8YCSBA regenerates Figure 8: YCSB workload-A throughput
// across commit batch sizes.
func BenchmarkFig8YCSBA(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkTable2Compaction regenerates Table 2: compaction elapsed time
// and written bytes, original vs SHARE.
func BenchmarkTable2Compaction(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkPgFullPageWrites regenerates the §5.3.1 in-text pgbench
// experiment: full_page_writes on/off/SHARE.
func BenchmarkPgFullPageWrites(b *testing.B) { runExperiment(b, "pgfpw") }

// BenchmarkAblationShareTable sweeps the bounded reverse-mapping table.
func BenchmarkAblationShareTable(b *testing.B) { runExperiment(b, "abl-sharetable") }

// BenchmarkAblationShareBatch compares batched vs per-pair SHARE.
func BenchmarkAblationShareBatch(b *testing.B) { runExperiment(b, "abl-batch") }

// BenchmarkAblationOverprovision sweeps GC headroom under both modes.
func BenchmarkAblationOverprovision(b *testing.B) { runExperiment(b, "abl-op") }

// BenchmarkAblationAtomicWrite compares SHARE with the §6.1 atomic-write
// FTL baseline on LinkBench.
func BenchmarkAblationAtomicWrite(b *testing.B) { runExperiment(b, "abl-atomic") }

// BenchmarkAblationSQLite compares SQLite-style commit protocols:
// rollback journal vs WAL vs journaling-off-with-SHARE (§3.3/§7).
func BenchmarkAblationSQLite(b *testing.B) { runExperiment(b, "abl-sqlite") }

// BenchmarkAblationQueueDepth sweeps device-internal parallelism.
func BenchmarkAblationQueueDepth(b *testing.B) { runExperiment(b, "abl-queue") }

// BenchmarkAblationYCSBAll runs all six YCSB workloads in both modes.
func BenchmarkAblationYCSBAll(b *testing.B) { runExperiment(b, "abl-ycsb") }

// BenchmarkSmoke runs the fast mixed-workload telemetry check behind
// `make bench-json`.
func BenchmarkSmoke(b *testing.B) { runExperiment(b, "smoke") }

// BenchmarkStreams runs the multi-stream write-placement comparison
// behind `make bench-streams` (hints off vs on vs auto under zipfian
// aging, plus the couch whole-stack leg).
func BenchmarkStreams(b *testing.B) { runExperiment(b, "streams") }

// BenchmarkCache runs the flash-extended buffer cache comparison behind
// `make bench-cache` (steady-state gain over the no-cache baseline, plus
// recovery-to-peak-throughput for warm, cold and faulted restarts).
func BenchmarkCache(b *testing.B) { runExperiment(b, "cache") }
