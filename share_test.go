package share_test

import (
	"bytes"
	"testing"

	"share"
)

func TestOpenDeviceDefaults(t *testing.T) {
	dev, err := share.OpenDevice(share.DeviceOptions{Blocks: 128})
	if err != nil {
		t.Fatal(err)
	}
	if dev.PageSize() != 4096 {
		t.Fatalf("page size = %d", dev.PageSize())
	}
	if dev.Capacity() <= 0 || dev.MaxShareBatch() <= 0 {
		t.Fatal("bad capacity or batch limit")
	}
}

func TestOpenDeviceOptions(t *testing.T) {
	dev, err := share.OpenDevice(share.DeviceOptions{
		Blocks:        128,
		PageSize:      512,
		PagesPerBlock: 16,
		OverProvision: 0.25,
		ShareTableCap: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dev.PageSize() != 512 {
		t.Fatalf("page size = %d", dev.PageSize())
	}
	// 25% over-provisioning: capacity well below raw.
	if dev.Capacity() >= 128*16*80/100 {
		t.Fatalf("over-provisioning not applied: %d", dev.Capacity())
	}
}

func TestPublicAPISmoke(t *testing.T) {
	dev, err := share.OpenDevice(share.DeviceOptions{Blocks: 128, PageSize: 512, PagesPerBlock: 16})
	if err != nil {
		t.Fatal(err)
	}
	task := share.NewTask("smoke")
	a := bytes.Repeat([]byte{0xAA}, 512)
	b := bytes.Repeat([]byte{0xBB}, 512)
	if err := dev.WritePage(task, 0, a); err != nil {
		t.Fatal(err)
	}
	if err := dev.WritePage(task, 1, b); err != nil {
		t.Fatal(err)
	}
	if err := dev.Share(task, []share.Pair{{Dst: 0, Src: 1, Len: 1}}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := dev.ReadPage(task, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("share did not take effect through the public API")
	}
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	if err := dev.ReadPage(task, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("share lost across crash through the public API")
	}
	if share.DefaultTiming().Program <= 0 {
		t.Fatal("bad default timing")
	}
}
