// Command shareserver serves multi-tenant key-value stores over TCP from
// one simulated SHARE-capable SSD. Every tenant gets its own database
// file (internal/couch) in a shared file system (internal/fsim); the
// device queue is guarded by a fair-share admission gate (internal/qos)
// so no tenant can starve the rest.
//
// Usage:
//
//	shareserver [-addr 127.0.0.1:7379] [-blocks 512] [-channels 4]
//	            [-batch 8] [-quantum-us 2000] [-share]
//
// Protocol (line-based; see internal/server for details):
//
//	USE <tenant> | SET <key> <value> | GET <key> | DEL <key>
//	COMMIT | STATS | QUIT
package main

import (
	"flag"
	"fmt"
	"os"

	"share/internal/server"
	"share/internal/sim"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7379", "listen address")
		blocks    = flag.Int("blocks", 512, "device blocks")
		channels  = flag.Int("channels", 4, "NAND channels")
		batch     = flag.Int("batch", 8, "sets per durable batch")
		quantumUS = flag.Int64("quantum-us", 0, "fair-share quantum in microseconds (0: default)")
		shareMode = flag.Bool("share", false, "use SHARE remapping for commits")
	)
	flag.Parse()

	s, err := server.New(server.Config{
		Blocks:    *blocks,
		Channels:  *channels,
		BatchSize: *batch,
		Quantum:   sim.Duration(*quantumUS) * sim.Microsecond,
		ShareMode: *shareMode,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "shareserver:", err)
		os.Exit(1)
	}
	bound, err := s.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shareserver:", err)
		os.Exit(1)
	}
	fmt.Println("shareserver listening on", bound)
	if err := s.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "shareserver:", err)
		os.Exit(1)
	}
}
