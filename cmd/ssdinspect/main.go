// Command ssdinspect creates a simulated SHARE SSD, optionally ages it,
// runs a synthetic write/share/trim mix, and dumps the FTL's internal
// statistics — a workbench for studying the translation layer itself.
//
// Usage:
//
//	ssdinspect -blocks 1024 -age 0.9 -writes 50000 -sharefrac 0.3
//
// With -cache it instead stands up a three-tier deployment (data + log +
// flash-extended cache via share.OpenTiers), drives an innodb engine
// through a zipfian read workload, power-cuts and recovers the stack, and
// prints the extended-cache view: hit rate, fill/fill-skip/writeback
// counters, verify failures, revalidation counts, and per-tier
// degradation state. -puncorrectable then schedules read faults on the
// recovered cache tier instead of the raw device.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"share"
	"share/internal/extcache"
	"share/internal/fsim"
	"share/internal/ftl"
	"share/internal/innodb"
	"share/internal/nand"
)

func main() {
	var (
		blocks    = flag.Int("blocks", 512, "NAND blocks (128 x 4 KiB pages each)")
		channels  = flag.Int("channels", 0, "NAND channels (0 = geometry-blind lump-sum queue)")
		dies      = flag.Int("dies", 0, "dies per channel (setting either enables per-die scheduling)")
		age       = flag.Float64("age", 0.9, "aging fill ratio before the run (0 disables)")
		writes    = flag.Int("writes", 20000, "random page writes in the measured run")
		shareFrac = flag.Float64("sharefrac", 0.2, "fraction of operations issued as SHARE")
		readFrac  = flag.Float64("readfrac", 0, "fraction of operations issued as reads (exercises retry+scrub)")
		trimFrac  = flag.Float64("trimfrac", 0.05, "fraction of operations issued as TRIM")
		tableCap  = flag.Int("sharetable", 0, "bounded reverse-map entries (0 = unlimited)")
		seed      = flag.Int64("seed", 42, "random seed")

		streams    = flag.Int("streams", 0, "host write streams (0 = legacy single-stream; >0 bins writes by LPN range and prints the streams view)")
		autoStream = flag.Bool("autostream", false, "let the FTL's update-frequency classifier place unhinted writes (requires -streams >= 2)")

		media       = flag.Bool("media", false, "install the endogenous media-aging model (wear/disturb/retention RBER growth)")
		mediaBurn   = flag.Float64("mediaburn", 1, "aging-rate multiplier on the media model's wear/disturb/retention weights")
		patrolEvery = flag.Int("patrolevery", 0, "run one background patrol-scrub step every N operations (0 disables)")
		health      = flag.Bool("health", false, "print the device health view (per-die wear and RBER, refreshes, patrol queue)")

		cacheView = flag.Bool("cache", false, "run the extended-cache tier inspection (data+log+cache) instead of the raw-device run")
		cacheTxns = flag.Int("cachetxns", 400, "read transactions per phase of the -cache inspection")

		faultSeed      = flag.Int64("faultseed", 1, "seed for the NAND fault plan probabilities")
		pTransient     = flag.Float64("ptransient", 0, "probability of a transient program fault")
		pPermanent     = flag.Float64("ppermanent", 0, "probability of a permanent program fault")
		pErase         = flag.Float64("perase", 0, "probability of an erase fault")
		pCorrectable   = flag.Float64("pcorrectable", 0, "probability of an ECC-corrected read")
		pUncorrectable = flag.Float64("puncorrectable", 0, "probability of an uncorrectable read (drives retry+scrub)")
		badBlocks      = flag.String("badblocks", "", "comma-separated factory-bad block numbers")
		spares         = flag.Int("spares", 0, "spare-block retirement budget (0 derives it)")
	)
	flag.Parse()

	if *cacheView {
		if err := runCacheInspect(*seed, *cacheTxns, *pUncorrectable, *faultSeed); err != nil {
			log.Fatal(err)
		}
		return
	}

	var plan *share.FaultPlan
	if *pTransient > 0 || *pPermanent > 0 || *pErase > 0 || *pCorrectable > 0 ||
		*pUncorrectable > 0 || *badBlocks != "" {
		plan = share.NewFaultPlan(*faultSeed)
		plan.PProgramTransient = *pTransient
		plan.PProgramPermanent = *pPermanent
		plan.PErase = *pErase
		plan.PReadCorrectable = *pCorrectable
		plan.PReadUncorrectable = *pUncorrectable
		for _, s := range strings.Split(*badBlocks, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			b, err := strconv.Atoi(s)
			if err != nil {
				log.Fatalf("-badblocks: %v", err)
			}
			plan.FactoryBad = append(plan.FactoryBad, b)
		}
	}

	var mm *share.MediaModel
	if *media {
		mm = share.DefaultMediaModel(*seed)
		mm.WearWeight = int64(float64(mm.WearWeight) * *mediaBurn)
		mm.DisturbWeight = int64(float64(mm.DisturbWeight) * *mediaBurn)
		mm.RetentionWeight = int64(float64(mm.RetentionWeight) * *mediaBurn)
	}
	dev, err := share.OpenDevice(share.DeviceOptions{
		Blocks:         *blocks,
		Channels:       *channels,
		DiesPerChannel: *dies,
		ShareTableCap:  *tableCap,
		SpareBlocks:    *spares,
		Fault:          plan,
		Media:          mm,
		Streams:        *streams,
		AutoStream:     *autoStream,
	})
	if err != nil {
		log.Fatal(err)
	}
	t := share.NewTask("inspect")
	if *age > 0 {
		if err := dev.Age(t, *age, 0.3, *seed); err != nil {
			if !errors.Is(err, ftl.ErrReadOnly) {
				log.Fatal(err)
			}
			fmt.Println("device entered read-only mode during aging")
		} else {
			fmt.Printf("aged: %.0f%% fill + 30%% random rewrites\n", *age*100)
		}
	}
	dev.ResetStats() // everything below measures the run's epoch only

	rng := rand.New(rand.NewSource(*seed))
	capacity := dev.Capacity()
	buf := make([]byte, dev.PageSize())
	written := make([]uint32, 0, 1024)
	start := t.Now()
	completed := 0
run:
	for i := 0; i < *writes; i++ {
		r := rng.Float64()
		switch {
		case r < *shareFrac && len(written) >= 2:
			a := written[rng.Intn(len(written))]
			b := written[rng.Intn(len(written))]
			if a == b {
				continue
			}
			// The source may have been trimmed since it was recorded;
			// an unmapped source is a legitimate command error.
			if err := dev.Share(t, []share.Pair{{Dst: a, Src: b, Len: 1}}); err != nil &&
				!errors.Is(err, ftl.ErrUnmapped) {
				if errors.Is(err, ftl.ErrReadOnly) {
					break run
				}
				log.Fatal(err)
			}
		case r < *shareFrac+*trimFrac && len(written) > 0:
			lpn := written[rng.Intn(len(written))]
			if err := dev.Trim(t, lpn, 1); err != nil {
				if errors.Is(err, ftl.ErrReadOnly) {
					break run
				}
				log.Fatal(err)
			}
		case r < *shareFrac+*trimFrac+*readFrac && len(written) > 0:
			lpn := written[rng.Intn(len(written))]
			// A read lost beyond the retry budget is the legitimate
			// worst case under an uncorrectable-read fault plan; the
			// degradation view below reports it.
			if err := dev.ReadPage(t, lpn, buf); err != nil &&
				!errors.Is(err, nand.ErrUncorrectable) && !errors.Is(err, ftl.ErrUnmapped) {
				log.Fatal(err)
			}
		default:
			lpn := uint32(rng.Intn(capacity))
			rng.Read(buf[:16])
			// With streams configured, bin writes by LPN range — a stand-in
			// for the per-object hints a host would send — unless the
			// auto-classifier is doing the placing.
			hint := -1
			if *streams > 0 && !*autoStream {
				hint = int(lpn) * *streams / capacity
			}
			if err := dev.WritePageStream(t, lpn, buf, hint); err != nil {
				if errors.Is(err, ftl.ErrReadOnly) {
					break run
				}
				log.Fatal(err)
			}
			written = append(written, lpn)
			if len(written) > 4096 {
				written = written[1:]
			}
		}
		completed++
		if *patrolEvery > 0 && completed%*patrolEvery == 0 {
			if _, err := dev.PatrolStep(t); err != nil {
				log.Fatalf("patrol step: %v", err)
			}
		}
	}
	if err := dev.Flush(t); err != nil && !errors.Is(err, ftl.ErrReadOnly) {
		log.Fatal(err)
	}
	if completed < *writes {
		fmt.Printf("device entered read-only mode after %d/%d operations\n", completed, *writes)
	}

	st := dev.Stats()
	fmt.Printf("\n--- run summary (%.2f virtual seconds) ---\n", float64(t.Now()-start)/1e9)
	fmt.Printf("capacity:            %d pages (%.1f MiB logical)\n", capacity, float64(dev.CapacityBytes())/(1<<20))
	fmt.Printf("host writes:         %d pages\n", st.FTL.HostWrites)
	fmt.Printf("host reads:          %d pages\n", st.FTL.HostReads)
	fmt.Printf("trims:               %d pages\n", st.FTL.Trims)
	fmt.Printf("share commands:      %d (%d pairs, %d forced copies)\n",
		st.FTL.Shares, st.FTL.SharePairs, st.FTL.ForcedCopies)
	fmt.Printf("GC events:           %d (copyback %d pages, meta moves %d)\n",
		st.FTL.GCEvents, st.FTL.Copybacks, st.FTL.MetaMoves)
	fmt.Printf("mapping persistence: %d delta-log pages, %d map pages, %d checkpoints\n",
		st.FTL.LogPagesWritten, st.FTL.MapPagesWritten, st.FTL.Checkpoints)
	if st.FTL.HostWrites > 0 {
		fmt.Printf("write amplification: %.2f (NAND programs / host writes, this run)\n",
			st.WriteAmplification())
	}
	fmt.Printf("wear:                min %d / max %d erases per block\n", st.Chip.MinWear, st.Chip.MaxWear)
	fmt.Printf("fault handling:      %d program retries, %d program fails, %d erase fails\n",
		st.FTL.ProgramRetries, st.FTL.ProgramFails, st.FTL.EraseFails)
	fmt.Printf("media health:        %d blocks retired (%d bad on chip), %d spares left, %d ECC-corrected reads\n",
		st.FTL.RetiredBlocks, st.Chip.BadBlocks, st.FTL.SpareBlocksLeft, st.Chip.EccCorrected)
	if st.FTL.UncorrectableReads > 0 {
		fmt.Printf("uncorrectable reads: %d\n", st.FTL.UncorrectableReads)
	}
	if st.FTL.ReadOnly {
		fmt.Println("device state:        READ-ONLY (spare budget exhausted)")
	}

	// Degradation view: the device's journey from healthy media toward
	// read-only mode — read retries and scrubbing (transient faults
	// absorbed), block retirements (permanent damage), and how much
	// retirement budget is left before mutating commands are refused.
	rec := dev.Metrics()
	evs := rec.EventCounts()
	fmt.Println("\n--- degradation view ---")
	fmt.Printf("read retries:        %d attempts, %d reads lost beyond retry\n",
		st.FTL.ReadRetries, st.FTL.UncorrectableReads)
	fmt.Printf("scrubbing:           %d suspect blocks refreshed, %d live pages relocated\n",
		st.FTL.ScrubbedBlocks, st.FTL.ScrubRelocations)
	fmt.Printf("retirements:         %d blocks out of service (program fails %d, erase fails %d)\n",
		st.FTL.RetiredBlocks, st.FTL.ProgramFails, st.FTL.EraseFails)
	fmt.Printf("spare budget:        %d retirements left before read-only\n", st.FTL.SpareBlocksLeft)
	state := "HEALTHY (serving reads and writes)"
	if st.FTL.ReadOnly {
		state = "DEGRADED (read-only: mutating commands refused, reads still served)"
	}
	fmt.Printf("state:               %s\n", state)
	for _, name := range []string{"read-retry", "scrub", "block-retired", "read-only"} {
		if n := evs[name]; n > 0 {
			fmt.Printf("event %-14s %d\n", name+":", n)
		}
	}

	// Streams view: where each write stream is appending right now (open
	// block per die, how full it is, how much of it is still valid) and
	// the traffic and GC copyback debt attributed to each stream. Hot
	// streams should show low valid ratios (their blocks die young and
	// erase cheaply); a cold stream's open blocks stay near 100% valid.
	if *streams > 0 {
		geo := dev.Geometry()
		fmt.Println("\n--- streams view (lifetime) ---")
		fmt.Printf("host streams:        %d (auto-classify: %v)\n", *streams, *autoStream)
		for _, si := range dev.StreamInfos() {
			fmt.Printf("%-7s writes %-9d copybacks %d\n", si.Name, si.Written, si.Copybacks)
			for _, ob := range si.Open {
				if ob.Block < 0 {
					fmt.Printf("  die %-3d (no open block)\n", ob.Die)
					continue
				}
				occ := float64(ob.NextPage) / float64(geo.PagesPerBlock)
				valid := 0.0
				if ob.NextPage > 0 {
					valid = float64(ob.ValidPages) / float64(ob.NextPage)
				}
				fmt.Printf("  die %-3d block %-6d %3d/%3d pages (%.0f%% full, %.0f%% valid)\n",
					ob.Die, ob.Block, ob.NextPage, geo.PagesPerBlock, occ*100, valid*100)
			}
		}
	}

	// Health view: the device's self-assessment — per-die wear spread and
	// predicted raw bit-error rates, self-healing activity, and the patrol
	// and scrub queue depths a healthy duty cycle keeps near zero.
	if *health {
		h := dev.Health()
		fmt.Println("\n--- health view (lifetime) ---")
		fmt.Printf("media aging model:   %v\n", h.MediaEnabled)
		fmt.Printf("blocks refreshed:    %d (%d by background patrol)\n", h.BlocksRefreshed, h.PatrolRefreshes)
		fmt.Printf("blocks retired:      %d\n", h.RetiredBlocks)
		fmt.Printf("patrol backlog:      %d blocks at/over the refresh threshold\n", h.PatrolBacklog)
		fmt.Printf("scrub queue:         %d blocks flagged by retry-recovered reads\n", h.ScrubQueueDepth)
		fmt.Printf("ECC escalations:     %d retries, %d soft decodes\n", h.ReadRetries, h.SoftDecodes)
		fmt.Printf("data loss:           %d reads lost, %d pages lost during relocation\n",
			h.UncorrectableReads, h.LostPages)
		if h.MediaEnabled {
			fmt.Printf("predicted RBER:      mean %.3g, worst block %.3g\n", h.MeanRBER, h.MaxRBER)
		}
		fmt.Printf("%-5s %-8s %-7s %-8s %-22s %-11s %s\n",
			"die", "channel", "blocks", "retired", "erases(min/mean/max)", "mean-RBER", "max-RBER")
		for _, dh := range h.Dies {
			fmt.Printf("%-5d %-8d %-7d %-8d %6d /%7.1f /%6d %-11.3g %.3g\n",
				dh.Die, dh.Channel, dh.Blocks, dh.Retired,
				dh.MinWear, dh.MeanWear, dh.MaxWear, dh.MeanRBER, dh.MaxRBER)
		}
	}

	if tel := dev.DieTelemetry(); tel != nil {
		elapsed := t.Now() - start
		fmt.Println("\n--- die/channel utilization (this run) ---")
		fmt.Printf("%-6s %-8s %10s %8s %12s\n", "die", "channel", "busy(ms)", "util", "queue-wait(ms)")
		var minBusy, maxBusy int64
		for i, ds := range tel {
			util := 0.0
			if elapsed > 0 {
				util = float64(ds.BusyNs) / float64(elapsed)
			}
			fmt.Printf("%-6d %-8d %10.3f %7.1f%% %12.3f\n",
				ds.Die, ds.Channel, float64(ds.BusyNs)/1e6, util*100, float64(ds.WaitNs)/1e6)
			if i == 0 || ds.BusyNs < minBusy {
				minBusy = ds.BusyNs
			}
			if ds.BusyNs > maxBusy {
				maxBusy = ds.BusyNs
			}
		}
		skew := 0.0
		if minBusy > 0 {
			skew = float64(maxBusy)/float64(minBusy) - 1
		}
		fmt.Printf("die busy skew:       %.1f%% (max/min - 1; high skew means striping is uneven)\n", skew*100)
		for _, cs := range dev.ChannelTelemetry() {
			util := 0.0
			if elapsed > 0 {
				util = float64(cs.BusyNs) / float64(elapsed)
			}
			fmt.Printf("channel %d bus:       %.3f ms busy (%.1f%% of run)\n",
				cs.Channel, float64(cs.BusyNs)/1e6, util*100)
		}
		if st.FTL.CrossDieCopybacks > 0 {
			fmt.Printf("cross-die copybacks: %d (GC must stay die-local; nonzero is a bug)\n",
				st.FTL.CrossDieCopybacks)
		}
	}

	if lats := rec.LatencySummaries(); len(lats) > 0 {
		fmt.Println("\n--- command latency (virtual ms) ---")
		fmt.Printf("%-10s %8s %9s %9s %9s %9s %12s\n",
			"command", "count", "mean", "p50", "p99", "max", "gc-stall(ms)")
		for c := share.Cmd(0); c < share.NumCmds; c++ {
			s, ok := lats[c.String()]
			if !ok {
				continue
			}
			fmt.Printf("%-10s %8d %9.3f %9.3f %9.3f %9.3f %12.3f\n",
				c.String(), s.Count, s.Mean, s.P50, s.P99, s.Max,
				float64(rec.GCStall(c))/1e6)
		}
	}
	if evs := rec.EventCounts(); len(evs) > 0 {
		fmt.Println("\n--- FTL events ---")
		names := make([]string, 0, len(evs))
		for name := range evs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-14s %d\n", name, evs[name])
		}
		trace := rec.Trace()
		n := len(trace)
		if n > 8 {
			trace = trace[n-8:]
		}
		fmt.Printf("last %d of %d traced events:\n", len(trace), rec.EventsSeen())
		for _, te := range trace {
			fmt.Printf("  #%-6d %-14s block %-5d a=%-8d b=%d\n",
				te.Seq, te.Type, te.Block, te.A, te.B)
		}
	}

	if err := dev.FTLForTest().CheckInvariants(); err != nil {
		log.Fatalf("FTL invariant violation: %v", err)
	}
	fmt.Println("FTL invariants: OK")
}

// tierState renders one tier's degradation state for the -cache view.
func tierState(dev *share.Device) string {
	if dev.ReadOnly() {
		return "READ-ONLY (spare budget exhausted)"
	}
	return "healthy"
}

// runCacheInspect is the -cache mode: a three-tier deployment opened
// through share.OpenTiers, an innodb engine spilling clean buffer-pool
// evictions to the flash-extended cache tier, a zipfian read phase, a
// power cut of all three devices with a warm restart (the persistent
// cache map revalidated against the tablespace), another read phase, and
// the extended-cache view. pUncorrectable > 0 damages the recovered
// cache tier's media so revalidation and verify-on-read drop entries —
// the degraded-cache path with the engine still serving.
func runCacheInspect(seed int64, txns int, pUncorrectable float64, faultSeed int64) error {
	const (
		keys        = 256
		readsPerTxn = 3
	)
	tiers, err := share.OpenTiers(share.TierOptions{Tiers: []share.Tier{
		{Role: share.TierData, Opts: share.DeviceOptions{Blocks: 512, PageSize: 512, PagesPerBlock: 32}},
		{Role: share.TierLog, Opts: share.DeviceOptions{Blocks: 256, PageSize: 512, PagesPerBlock: 32, PowerCapacitor: true}},
		{Role: share.TierCache, Opts: share.DeviceOptions{Blocks: 128, PageSize: 512, PagesPerBlock: 32}},
	}})
	if err != nil {
		return err
	}
	task := share.NewTask("inspect-cache")
	fs, err := fsim.Format(task, tiers.Data, 64)
	if err != nil {
		return err
	}
	cfg := innodb.Config{
		PageSize:  1024,
		PoolBytes: 8 * 1024, // 8 frames: the working set lives in the cache tier
		FlushMode: innodb.DWBOn,
		DWBPages:  8,
		DataBytes: 1 << 20,
		LogPages:  4096,
		CacheDev:  tiers.Cache,
	}
	eng, err := innodb.Open(task, fs, tiers.Log, cfg)
	if err != nil {
		return err
	}
	tbl, err := eng.CreateTable(task, "t")
	if err != nil {
		return err
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("ck%04d", i)) }
	// One key per transaction: the no-steal protocol pins a transaction's
	// dirty pages and the pool is tiny by design.
	val := make([]byte, 160)
	for i := 0; i < keys; i++ {
		copy(val, fmt.Sprintf("val%04d-", i))
		tx := eng.Begin(task)
		if err := tx.Put(tbl, key(i), val); err != nil {
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	if err := eng.Checkpoint(task); err != nil {
		return err
	}

	zipf := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.1, 1, keys-1)
	readPhase := func(n int) (float64, error) {
		start := task.Now()
		for i := 0; i < n; i++ {
			tx := eng.Begin(task)
			for k := 0; k < readsPerTxn; k++ {
				if _, ok, err := tx.Get(tbl, key(int(zipf.Uint64()))); err != nil {
					tx.Rollback()
					return 0, err
				} else if !ok {
					tx.Rollback()
					return 0, fmt.Errorf("key lost")
				}
			}
			tx.Rollback()
		}
		elapsed := task.Now() - start
		if elapsed <= 0 {
			return 0, nil
		}
		return float64(n*readsPerTxn) / (float64(elapsed) / 1e9), nil
	}
	hitRate := func(before, after extcache.Stats) float64 {
		h, m := after.Hits-before.Hits, after.Misses-before.Misses
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	}

	if _, err := readPhase(txns / 2); err != nil { // warm the tier
		return err
	}
	steadyBefore := eng.Cache().Stats()
	steadyTput, err := readPhase(txns)
	if err != nil {
		return err
	}
	steadyRate := hitRate(steadyBefore, eng.Cache().Stats())

	// Persist the cache map, then power-cut every tier and restart warm.
	if err := eng.Checkpoint(task); err != nil {
		return err
	}
	for _, d := range []*share.Device{tiers.Data, tiers.Log, tiers.Cache} {
		d.Crash()
		if err := d.Recover(task); err != nil {
			return err
		}
	}
	if pUncorrectable > 0 {
		plan := share.NewFaultPlan(faultSeed)
		plan.PReadUncorrectable = pUncorrectable
		if err := tiers.Cache.SetFaultPlan(plan); err != nil {
			return err
		}
	}
	fs, err = fsim.Mount(task, tiers.Data)
	if err != nil {
		return err
	}
	eng, err = innodb.Open(task, fs, tiers.Log, cfg)
	if err != nil {
		return err
	}
	if tbl = eng.Table("t"); tbl == nil {
		return fmt.Errorf("table lost across recovery")
	}
	postBefore := eng.Cache().Stats()
	postTput, err := readPhase(txns)
	if err != nil {
		return err
	}
	postRate := hitRate(postBefore, eng.Cache().Stats())

	cst := eng.Cache().Stats()
	fmt.Println("--- extended cache view ---")
	fmt.Printf("tiers:               data 512 blocks / log 256 blocks (capacitor) / cache 128 blocks\n")
	fmt.Printf("workload:            %d keys, %d read txns per phase, zipf(1.1) x%d reads, seed %d\n",
		keys, txns, readsPerTxn, seed)
	fmt.Printf("steady state:        %.0f reads/s, hit rate %.2f\n", steadyTput, steadyRate)
	fmt.Printf("post-recovery:       %.0f reads/s, hit rate %.2f (warm map)\n", postTput, postRate)
	fmt.Printf("hits/misses:         %d / %d (lifetime)\n", cst.Hits, cst.Misses)
	fmt.Printf("fills:               %d clean, %d skipped (identical image resident), %d dirty\n",
		cst.Fills, cst.FillSkips, cst.DirtyFills)
	fmt.Printf("writebacks:          %d dirty entries written back to the data tier\n", cst.Writebacks)
	fmt.Printf("verify-on-read:      %d failures (served as misses from the data tier)\n", cst.VerifyFailures)
	fmt.Printf("revalidation:        %d kept, %d dropped, %d dirty recovered\n",
		cst.RevalidatedKept, cst.RevalidatedDropped, cst.RecoveredDirty)
	fmt.Printf("map:                 %d checkpoints, %d invalidations, %d/%d slots resident (%d dirty)\n",
		cst.MapCheckpoints, cst.Invalidations, cst.Resident, cst.Slots, cst.DirtyResident)
	fmt.Println("\n--- tier state ---")
	fmt.Printf("data tier:           %s\n", tierState(tiers.Data))
	fmt.Printf("log tier:            %s\n", tierState(tiers.Log))
	cacheState := tierState(tiers.Cache)
	if cst.Degraded {
		cacheState = "DEGRADED (fills disabled; engine serving from data tier)"
	}
	fmt.Printf("cache tier:          %s\n", cacheState)
	for _, d := range []*share.Device{tiers.Data, tiers.Cache} {
		if err := d.FTLForTest().CheckInvariants(); err != nil {
			return fmt.Errorf("FTL invariant violation: %v", err)
		}
	}
	fmt.Println("FTL invariants: OK")
	return nil
}
