// Command linkbench runs the LinkBench social-graph workload against the
// mini-InnoDB engine on a simulated SHARE SSD, printing throughput and the
// Table 1-style latency distribution for a chosen flush mode.
//
// Usage:
//
//	linkbench -mode share -nodes 20000 -requests 2000 -clients 16
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"share/internal/fsim"
	"share/internal/innodb"
	"share/internal/linkbench"
	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

func main() {
	var (
		mode     = flag.String("mode", "share", "flush mode: dwb-on | dwb-off | share")
		blocks   = flag.Int("blocks", 512, "data device blocks")
		nodes    = flag.Int("nodes", 10000, "graph nodes")
		clients  = flag.Int("clients", 16, "closed-loop clients")
		requests = flag.Int("requests", 1000, "requests per client")
		pageKB   = flag.Int("page", 4, "InnoDB page size in KiB (4, 8, 16)")
		bufferKB = flag.Int("buffer", 512, "buffer pool size in KiB")
		seed     = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	var fm innodb.FlushMode
	switch strings.ToLower(*mode) {
	case "dwb-on", "dwbon", "on":
		fm = innodb.DWBOn
	case "dwb-off", "dwboff", "off":
		fm = innodb.DWBOff
	case "share":
		fm = innodb.Share
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	cfg := ssd.DefaultConfig(*blocks)
	dev, err := ssd.New("openssd", cfg)
	if err != nil {
		log.Fatal(err)
	}
	task := sim.NewSoloTask("setup")
	if err := dev.Age(task, 0.9, 0.3, *seed); err != nil {
		log.Fatal(err)
	}
	if err := dev.Trim(task, 0, dev.Capacity()); err != nil {
		log.Fatal(err)
	}
	fs, err := fsim.Format(task, dev, 256)
	if err != nil {
		log.Fatal(err)
	}
	lcfg := ssd.DefaultConfig(256)
	lcfg.Timing = nand.Timing{
		ReadPage: 20 * sim.Microsecond, Program: 50 * sim.Microsecond,
		Erase: 500 * sim.Microsecond, Transfer: 5 * sim.Microsecond,
	}
	lcfg.FTL.PowerCapacitor = true
	logDev, err := ssd.New("logdev", lcfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := innodb.Open(task, fs, logDev, innodb.Config{
		PageSize:  *pageKB * 1024,
		PoolBytes: int64(*bufferKB) * 1024,
		FlushMode: fm,
		DWBPages:  32,
		DataBytes: dev.CapacityBytes() * 60 / 100,
		LogPages:  uint32(logDev.Capacity()) / 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	lcfg2 := linkbench.Config{
		Nodes: *nodes, Clients: *clients, Requests: *requests,
		Warmup: *requests / 10, Seed: *seed,
	}
	fmt.Printf("loading %d nodes...\n", *nodes)
	if err := linkbench.Load(task, eng, lcfg2); err != nil {
		log.Fatal(err)
	}
	dev.ResetStats()
	fmt.Printf("running %d x %d requests (%s)...\n", *clients, *requests, fm)
	res, err := linkbench.Run(eng, lcfg2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nthroughput: %.0f requests per virtual second\n\n", res.Throughput)
	fmt.Println(res.Table())
	st := dev.Stats()
	fmt.Printf("device: %d host writes, %d GC events, %d copybacks, %d share pairs\n",
		st.FTL.HostWrites, st.FTL.GCEvents, st.FTL.Copybacks, st.FTL.SharePairs)
}
