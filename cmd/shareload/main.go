// Command shareload drives a shareserver with concurrent closed-loop
// clients spread across tenants and reports per-tenant op counts and
// error totals. It is the interactive companion to the stress harness:
// point it at a running shareserver to watch fair-share admission shape
// a mixed-tenant load.
//
// Transient transport failures (connection reset, server restart) are
// retried with bounded exponential backoff — redial, re-USE, replay —
// mirroring internal/stress; recovered retries are counted separately
// from errors.
//
// Usage:
//
//	shareload [-addr 127.0.0.1:7379] [-clients 8] [-tenants 2]
//	          [-ops 1000] [-value-bytes 64] [-seed 42]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// Bounded retry budget for transient transport errors, matching
// internal/stress: base 2ms doubling per attempt plus seeded jitter.
const (
	retryMax  = 3
	retryBase = 2 * time.Millisecond
)

type result struct {
	tenant  string
	ops     int
	errs    int
	retries int
}

// rconn is a retrying connection: redial + re-USE + replay on transport
// errors, up to retryMax attempts with seeded jittered backoff.
type rconn struct {
	addr    string
	tenant  string // re-issued as USE after every redial, once set
	conn    net.Conn
	r       *bufio.Reader
	rng     *rand.Rand // backoff jitter only
	retries *int
}

func (c *rconn) redial() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	r := bufio.NewReader(conn)
	if c.tenant != "" {
		if _, err := fmt.Fprintf(conn, "USE %s\n", c.tenant); err != nil {
			conn.Close()
			return err
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			conn.Close()
			return err
		}
		if strings.TrimRight(resp, "\n") != "OK" {
			conn.Close()
			return fmt.Errorf("re-USE %s: %s", c.tenant, resp)
		}
	}
	c.conn, c.r = conn, r
	return nil
}

func (c *rconn) roundTrip(line string) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\n"), nil
}

// do sends one command and reads its reply, retrying transport errors.
// Server-level ERR replies pass through; only the transport is retried.
// When the budget is exhausted the transport error is rendered as an ERR
// line so the caller's error accounting catches it.
func (c *rconn) do(line string) string {
	for attempt := 0; ; attempt++ {
		if c.conn == nil {
			if err := c.redial(); err != nil {
				if attempt >= retryMax {
					return "ERR " + err.Error()
				}
				c.backoff(attempt)
				continue
			}
		}
		resp, err := c.roundTrip(line)
		if err == nil {
			return resp
		}
		c.conn.Close()
		c.conn = nil
		if attempt >= retryMax {
			return "ERR " + err.Error()
		}
		c.backoff(attempt)
	}
}

func (c *rconn) backoff(attempt int) {
	*c.retries++
	d := retryBase << attempt
	d += time.Duration(c.rng.Int63n(int64(retryBase)))
	time.Sleep(d)
}

func (c *rconn) close() {
	if c.conn != nil {
		c.conn.Close()
	}
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7379", "shareserver address")
		clients = flag.Int("clients", 8, "concurrent connections")
		tenants = flag.Int("tenants", 2, "tenants to spread clients across")
		ops     = flag.Int("ops", 1000, "operations per client")
		valLen  = flag.Int("value-bytes", 64, "value size in bytes")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	results := make(chan result, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for cl := 0; cl < *clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant%d", cl%*tenants)
			res := result{tenant: tenant}
			defer func() { results <- res }()
			c := &rconn{
				addr:    *addr,
				rng:     rand.New(rand.NewSource(*seed + int64(cl) + 1<<32)),
				retries: &res.retries,
			}
			defer c.close()
			if resp := c.do("USE " + tenant); resp != "OK" {
				res.errs++
				return
			}
			c.tenant = tenant // redials re-select the tenant from here on
			rng := rand.New(rand.NewSource(*seed + int64(cl)))
			value := strings.Repeat("x", *valLen)
			for i := 0; i < *ops; i++ {
				key := fmt.Sprintf("c%dk%d", cl, rng.Intn(*ops))
				var resp string
				switch rng.Intn(10) {
				case 0:
					resp = c.do("COMMIT")
				case 1, 2, 3:
					resp = c.do("GET " + key)
				default:
					resp = c.do(fmt.Sprintf("SET %s %s", key, value))
				}
				if strings.HasPrefix(resp, "ERR") {
					res.errs++
				} else {
					res.ops++
				}
			}
			c.do("COMMIT")
			c.do("QUIT")
		}(cl)
	}
	wg.Wait()
	close(results)

	perTenant := make(map[string]*result)
	totalOps, totalErrs, totalRetries := 0, 0, 0
	for res := range results {
		agg := perTenant[res.tenant]
		if agg == nil {
			agg = &result{tenant: res.tenant}
			perTenant[res.tenant] = agg
		}
		agg.ops += res.ops
		agg.errs += res.errs
		agg.retries += res.retries
		totalOps += res.ops
		totalErrs += res.errs
		totalRetries += res.retries
	}
	elapsed := time.Since(start).Seconds()
	for tenant, agg := range perTenant {
		fmt.Printf("%-12s ops=%-8d errs=%d retries=%d\n", tenant, agg.ops, agg.errs, agg.retries)
	}
	fmt.Printf("total        ops=%-8d errs=%d retries=%d  %.0f ops/s (wall)\n",
		totalOps, totalErrs, totalRetries, float64(totalOps)/elapsed)
	if totalErrs > 0 {
		os.Exit(1)
	}
}
