// Command shareload drives a shareserver with concurrent closed-loop
// clients spread across tenants and reports per-tenant op counts and
// error totals. It is the interactive companion to the stress harness:
// point it at a running shareserver to watch fair-share admission shape
// a mixed-tenant load.
//
// Usage:
//
//	shareload [-addr 127.0.0.1:7379] [-clients 8] [-tenants 2]
//	          [-ops 1000] [-value-bytes 64] [-seed 42]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

type result struct {
	tenant string
	ops    int
	errs   int
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7379", "shareserver address")
		clients = flag.Int("clients", 8, "concurrent connections")
		tenants = flag.Int("tenants", 2, "tenants to spread clients across")
		ops     = flag.Int("ops", 1000, "operations per client")
		valLen  = flag.Int("value-bytes", 64, "value size in bytes")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	results := make(chan result, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for cl := 0; cl < *clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant%d", cl%*tenants)
			res := result{tenant: tenant}
			defer func() { results <- res }()
			conn, err := net.Dial("tcp", *addr)
			if err != nil {
				res.errs++
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			do := func(line string) string {
				if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
					return "ERR " + err.Error()
				}
				resp, err := r.ReadString('\n')
				if err != nil {
					return "ERR " + err.Error()
				}
				return strings.TrimRight(resp, "\n")
			}
			if resp := do("USE " + tenant); resp != "OK" {
				res.errs++
				return
			}
			rng := rand.New(rand.NewSource(*seed + int64(cl)))
			value := strings.Repeat("x", *valLen)
			for i := 0; i < *ops; i++ {
				key := fmt.Sprintf("c%dk%d", cl, rng.Intn(*ops))
				var resp string
				switch rng.Intn(10) {
				case 0:
					resp = do("COMMIT")
				case 1, 2, 3:
					resp = do("GET " + key)
				default:
					resp = do(fmt.Sprintf("SET %s %s", key, value))
				}
				if strings.HasPrefix(resp, "ERR") {
					res.errs++
				} else {
					res.ops++
				}
			}
			do("COMMIT")
			do("QUIT")
		}(cl)
	}
	wg.Wait()
	close(results)

	perTenant := make(map[string]*result)
	totalOps, totalErrs := 0, 0
	for res := range results {
		agg := perTenant[res.tenant]
		if agg == nil {
			agg = &result{tenant: res.tenant}
			perTenant[res.tenant] = agg
		}
		agg.ops += res.ops
		agg.errs += res.errs
		totalOps += res.ops
		totalErrs += res.errs
	}
	elapsed := time.Since(start).Seconds()
	for tenant, agg := range perTenant {
		fmt.Printf("%-12s ops=%-8d errs=%d\n", tenant, agg.ops, agg.errs)
	}
	fmt.Printf("total        ops=%-8d errs=%d  %.0f ops/s (wall)\n",
		totalOps, totalErrs, float64(totalOps)/elapsed)
	if totalErrs > 0 {
		os.Exit(1)
	}
}
