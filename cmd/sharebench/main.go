// Command sharebench runs the paper-reproduction experiments: every table
// and figure from §5 of "SHARE Interface in Flash Storage for Relational
// and NoSQL Databases" (SIGMOD 2016), plus the design ablations.
//
// Usage:
//
//	sharebench -list
//	sharebench -exp fig5b [-scale 0.05] [-seed 42]
//	sharebench -all [-scale 0.02]
//
// Scale 1 corresponds to the paper's sizes (4 GiB OpenSSD, 1.5 GiB
// LinkBench database, 250k×4 KiB YCSB documents); the default keeps runs
// to seconds. Results are virtual-time measurements from the simulator,
// so throughput numbers are stable across machines.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"share/internal/bench"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.Float64("scale", 0, "size multiplier vs the paper's setup (default 0.02)")
		seed  = flag.Int64("seed", 0, "random seed (default 42)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	params := bench.Params{Scale: *scale, Seed: *seed}
	run := func(e bench.Experiment) error {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		out, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(out)
		fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
		return nil
	}
	switch {
	case *all:
		for _, e := range bench.All() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	case *exp != "":
		e, err := bench.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := run(e); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
