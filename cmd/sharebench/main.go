// Command sharebench runs the paper-reproduction experiments: every table
// and figure from §5 of "SHARE Interface in Flash Storage for Relational
// and NoSQL Databases" (SIGMOD 2016), plus the design ablations.
//
// Usage:
//
//	sharebench -list
//	sharebench -exp fig5b [-scale 0.05] [-seed 42]
//	sharebench -all [-scale 0.02]
//	sharebench -exp smoke -json [-outdir results]
//	sharebench -exp scale -opscale 100 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Scale 1 corresponds to the paper's sizes (4 GiB OpenSSD, 1.5 GiB
// LinkBench database, 250k×4 KiB YCSB documents); the default keeps runs
// to seconds. Results are virtual-time measurements from the simulator,
// so throughput numbers are stable across machines.
//
// With -json, each experiment also writes BENCH_<id>.json — a
// machine-readable report (schema share-bench/v1) carrying the metrics,
// per-device telemetry (epoch counters, write amplification, latency
// percentiles, GC/copyback/log-page activity) and the run's config
// provenance. Identically-seeded runs produce byte-identical files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"share/internal/bench"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "", "experiment id to run")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 0, "size multiplier vs the paper's setup (default 0.02)")
		opScale = flag.Int("opscale", 1, "op-count multiplier for fixed-size experiments (scale): 10-100 for profiling runs")
		seed    = flag.Int64("seed", 0, "random seed (default 42)")
		asJSON  = flag.Bool("json", false, "also write BENCH_<id>.json for each experiment")
		outdir  = flag.String("outdir", ".", "directory for -json output files")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // flush pending frees so the profile shows live + cumulative allocs accurately
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	// os.Exit skips deferred profile flushes, so failures funnel through
	// fail, which stops the CPU profile first (a no-op when not profiling).
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		pprof.StopCPUProfile()
		os.Exit(1)
	}
	params := bench.Params{Scale: *scale, Seed: *seed, OpScale: *opScale}
	run := func(e bench.Experiment) error {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		out, rep, err := e.RunWithReport(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(out)
		fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
		if *asJSON {
			data, err := rep.JSON()
			if err != nil {
				return fmt.Errorf("%s: render report: %w", e.ID, err)
			}
			if err := bench.ValidateReportJSON(data); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			path := filepath.Join(*outdir, "BENCH_"+e.ID+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		return nil
	}
	switch {
	case *all:
		for _, e := range bench.All() {
			if err := run(e); err != nil {
				fail(err)
			}
		}
	case *exp != "":
		e, err := bench.Get(*exp)
		if err != nil {
			fail(err)
		}
		if err := run(e); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
