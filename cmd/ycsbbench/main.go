// Command ycsbbench runs YCSB workload A or F against the mini-Couchbase
// store on a simulated SHARE SSD, in original or SHARE mode, printing
// throughput, written bytes, and compaction statistics.
//
// Usage:
//
//	ycsbbench -workload F -share -records 5000 -ops 5000 -batch 16
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"share/internal/couch"
	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/ssd"
	"share/internal/ycsb"
)

func main() {
	var (
		workload = flag.String("workload", "F", "YCSB workload: A or F")
		useShare = flag.Bool("share", false, "use the SHARE commit/compaction paths")
		blocks   = flag.Int("blocks", 1024, "data device blocks")
		records  = flag.Int("records", 5000, "documents")
		ops      = flag.Int("ops", 5000, "measured operations")
		batch    = flag.Int("batch", 1, "fsync batch size (paper sweeps 1..256)")
		compact  = flag.Bool("autocompact", true, "compact when the stale threshold trips")
		seed     = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	var w ycsb.Workload
	switch strings.ToUpper(*workload) {
	case "A":
		w = ycsb.WorkloadA
	case "F":
		w = ycsb.WorkloadF
	default:
		log.Fatalf("unknown workload %q", *workload)
	}

	dev, err := ssd.New("openssd", ssd.DefaultConfig(*blocks))
	if err != nil {
		log.Fatal(err)
	}
	task := sim.NewSoloTask("ycsb")
	if err := dev.Age(task, 0.9, 0.3, *seed); err != nil {
		log.Fatal(err)
	}
	if err := dev.Trim(task, 0, dev.Capacity()); err != nil {
		log.Fatal(err)
	}
	fs, err := fsim.Format(task, dev, 256)
	if err != nil {
		log.Fatal(err)
	}
	st, err := couch.Open(task, fs, couch.Config{
		ShareMode:        *useShare,
		BatchSize:        *batch,
		CompactThreshold: 0.45,
		DocCacheEntries:  *records / 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := ycsb.Config{
		Records: *records, ValueSize: 4000, Ops: *ops,
		Workload: w, Seed: *seed, AutoCompact: *compact,
	}
	fmt.Printf("loading %d documents...\n", *records)
	if err := ycsb.Load(task, st, cfg); err != nil {
		log.Fatal(err)
	}
	dev.ResetStats()
	fmt.Printf("running %d ops of %s (share=%v, batch=%d)...\n", *ops, w, *useShare, *batch)
	res, err := ycsb.Run(task, st, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nthroughput:    %.0f ops per virtual second\n", res.Throughput)
	fmt.Printf("bytes written: %.1f MB\n", float64(res.BytesWritten)/(1<<20))
	fmt.Printf("compactions:   %d\n", res.Compactions)
	cst := st.Stats()
	fmt.Printf("store:         %d doc pages, %d index node pages, %d headers, %d share pairs\n",
		cst.DocPagesWritten, cst.NodePagesWritten, cst.HeaderPages, cst.SharePairs)
	h, err := st.Height(task)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index depth:   %d, stale ratio %.0f%%\n", h, 100*st.StaleRatio())
}
