GO ?= go

.PHONY: build test check race bench bench-json bench-scale fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: vet, build, and the full test suite under the
# race detector (includes the fault-injection and crash-point fuzzing
# suites), plus the machine-readable report smoke check. Run it before
# sending a change.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) bench-json
	$(MAKE) bench-scale

# race is check without vet/build, for quick re-runs.
race:
	$(GO) test -race ./...

# bench regenerates the paper's tables/figures at test scale; see
# cmd/sharebench for full-scale runs.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-json runs the smoke experiment through the telemetry pipeline and
# writes BENCH_smoke.json (validated against the share-bench/v1 schema
# before it is written). Identically-seeded runs are byte-identical.
bench-json:
	$(GO) run ./cmd/sharebench -exp smoke -json -outdir .

# bench-scale sweeps channel count x queue depth on die-scheduled arrays
# and writes BENCH_scale.json with per-die utilization telemetry; the
# speedup_c4_over_c1_qd8 metric is the parallelism regression anchor.
bench-scale:
	$(GO) run ./cmd/sharebench -exp scale -json -outdir .

fmt:
	gofmt -l -w .
