GO ?= go

.PHONY: build test check race bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: vet, build, and the full test suite under the
# race detector (includes the fault-injection and crash-point fuzzing
# suites). Run it before sending a change.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# race is check without vet/build, for quick re-runs.
race:
	$(GO) test -race ./...

# bench regenerates the paper's tables/figures at test scale; see
# cmd/sharebench for full-scale runs.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

fmt:
	gofmt -l -w .
