GO ?= go

# Crash-point sampling seed for `make fuzz-crash` (short mode picks a
# seeded sample of power-cut boundaries per device). Reproduce a failing
# CI run by exporting the seed it printed: CRASHCHECK_SEED=<n> make fuzz-crash
CRASHCHECK_SEED ?= 1

.PHONY: build test check race bench bench-cache bench-json bench-scale bench-soak bench-streams bench-tenants bench-writepath profile fuzz-crash fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: vet, build, and the full test suite under the
# race detector (includes the fault-injection and crash-point fuzzing
# suites), plus the whole-stack crash harness sample and the
# machine-readable report smoke check. Run it before sending a change.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-crash
	$(MAKE) bench-json
	$(MAKE) bench-scale
	$(MAKE) bench-soak
	$(MAKE) bench-streams
	$(MAKE) bench-tenants
	$(MAKE) bench-writepath
	$(MAKE) bench-cache

# fuzz-crash runs the whole-stack crash harness (internal/crashcheck) in
# short mode: for every engine x SHARE-mode cell (innodb DWB-on/SHARE,
# innodb+extended-cache, couch copy/SHARE, pgmini FPW-on/FPW-SHARE) it
# power-cuts the stack at a
# CRASHCHECK_SEED-sampled set of program/erase boundaries, reopens, and
# checks the durability oracle (no committed write lost, no uncommitted
# write surfaced). The seeded NAND fault-plan runs (seeds 7, 11, 13 for
# innodb/pgmini/couch) always execute in full. Long mode — plain
# `go test ./internal/crashcheck/` — visits every boundary exhaustively.
fuzz-crash:
	CRASHCHECK_SEED=$(CRASHCHECK_SEED) $(GO) test -short -count=1 ./internal/crashcheck/

# race is check without vet/build, for quick re-runs.
race:
	$(GO) test -race ./...

# bench regenerates the paper's tables/figures at test scale; see
# cmd/sharebench for full-scale runs.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-json runs the smoke experiment through the telemetry pipeline and
# writes BENCH_smoke.json (validated against the share-bench/v1 schema
# before it is written). Identically-seeded runs are byte-identical.
bench-json:
	$(GO) run ./cmd/sharebench -exp smoke -json -outdir .

# bench-scale sweeps channel count x queue depth on die-scheduled arrays
# and writes BENCH_scale.json with per-die utilization telemetry; the
# speedup_c4_over_c1_qd8 metric is the parallelism regression anchor.
bench-scale:
	$(GO) run ./cmd/sharebench -exp scale -json -outdir .

# bench-soak ages a device through several drive-writes on endogenously
# decaying media (read disturb + retention + wear) with and without the
# background patrol scrubber and writes BENCH_soak.json. The patrol run
# must hold uncorrectable reads at zero while the unscrubbed control
# degrades; TestSoakScrubberHoldsZero pins the contrast.
bench-soak:
	$(GO) run ./cmd/sharebench -exp soak -json -outdir .

# bench-streams ages three identical 4-channel devices under zipfian
# updates — hints off, explicit hot/cold host hints, auto-stream
# classifier — plus a couch-on-fsim whole-stack leg, and writes
# BENCH_streams.json; the wa_reduction_* and copyback_reduction_*
# metrics are the write-placement regression anchors, pinned by
# TestStreamsWAReduction.
bench-streams:
	$(GO) run ./cmd/sharebench -exp streams -json -outdir .

# bench-tenants sweeps client count x tenant count over per-tenant couch
# stores on a 4-channel device behind fair-share admission and writes
# BENCH_tenants.json; speedup_t4_c8_over_c1 (client scaling) and
# fairness_t4_c8 (balanced per-tenant billing) are the concurrency
# regression anchors, pinned by TestTenantsScaling.
bench-tenants:
	$(GO) run ./cmd/sharebench -exp tenants -json -outdir .

# bench-writepath sweeps IO size x queue depth x placement strategy
# (legacy / host stream hints / auto-stream) on aged 4-channel devices and
# writes BENCH_writepath.json; the winner_s*_qd* crossover-map metrics pin
# which strategy wins each cell, and TestWritepathJSONDeterministic pins
# byte-identical reports.
bench-writepath:
	$(GO) run ./cmd/sharebench -exp writepath -json -outdir .

# bench-cache compares the flash-extended buffer cache tier against the
# no-cache baseline (steady-state throughput and hit rate) and measures
# recovery-to-peak-throughput after a crash for warm (revalidated map),
# cold (blank cache device) and faulted (damaged media) restarts, writing
# BENCH_cache.json; TestCacheRecoveryFloors pins warm < cold and
# TestCacheJSONDeterministic pins byte-identical reports.
bench-cache:
	$(GO) run ./cmd/sharebench -exp cache -json -outdir .

# profile runs the scale experiment at 20x op count with CPU and
# allocation profiling; inspect with `go tool pprof cpu.pprof`. The
# op-count multiplier keeps the measured loop hot long enough for a
# useful sample without changing device geometry or aging.
PROFILE_OPSCALE ?= 20
profile:
	$(GO) run ./cmd/sharebench -exp scale -opscale $(PROFILE_OPSCALE) \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof mem.pprof — inspect with: $(GO) tool pprof cpu.pprof"

fmt:
	gofmt -l -w .
