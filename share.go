// Package share is the public API of the SHARE flash-storage reproduction
// (Oh et al., "SHARE Interface in Flash Storage for Relational and NoSQL
// Databases", SIGMOD 2016).
//
// It exposes a simulated SHARE-capable SSD: a page-mapped FTL over a NAND
// model, extended with the paper's SHARE(LPN1, LPN2, length) command that
// atomically remaps one logical page range onto the physical pages of
// another. Host software uses it to gain write atomicity — and zero-copy
// compaction and file copies — without the redundant second write that
// journaling and copy-on-write schemes otherwise pay.
//
// Quick start:
//
//	dev, _ := share.OpenDevice(share.DeviceOptions{Blocks: 1024})
//	t := share.NewTask("client")
//	dev.WritePage(t, 0, oldData)
//	dev.WritePage(t, 1, newData)
//	dev.Share(t, []share.Pair{{Dst: 0, Src: 1, Len: 1}}) // atomic remap
//
// Deeper integrations live in the internal packages: fsim (a file system
// with the SHARE ioctl), innodb and couch (database engines with SHARE
// modes), and bench (the paper's experiments). The examples/ directory
// shows the public API on realistic scenarios.
package share

import (
	"fmt"

	"share/internal/ftl"
	"share/internal/metrics"
	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

// Pair is one SHARE remapping: Dst's logical pages are remapped onto the
// physical pages currently mapped by Src. Len counts mapping units.
type Pair = ssd.Pair

// Device is a simulated SHARE-capable SSD.
type Device = ssd.Device

// Task carries a client's virtual clock; every device operation charges
// simulated service and queueing time to it.
type Task = sim.Task

// Stats aggregates device counters (host traffic, GC, copybacks, wear).
// Device.Stats scopes counters to the epoch started by ResetStats;
// Device.LifetimeStats returns since-birth totals.
type Stats = ssd.Stats

// Cmd labels a device command class in the metrics recorder returned by
// Device.Metrics (latency histograms, GC-stall attribution, FTL trace).
type Cmd = metrics.Cmd

// NumCmds bounds the Cmd enumeration for iteration.
const NumCmds = metrics.NumCmds

// DeviceOptions sizes and tunes a device. Zero values select defaults.
type DeviceOptions struct {
	// Blocks is the NAND block count (128 pages of 4 KiB each per block
	// by default). 1024 blocks ≈ 512 MiB raw.
	Blocks int
	// PageSize overrides the 4096-byte mapping unit (tests use 512).
	PageSize int
	// PagesPerBlock overrides the 128-page erase block.
	PagesPerBlock int
	// Channels and DiesPerChannel describe the NAND array's parallelism.
	// Setting either switches the device from the geometry-blind lump-sum
	// queue to per-die scheduling: blocks stripe across dies, GC runs
	// die-locally, and operations on different dies overlap in time (only
	// same-die and same-channel-bus work serializes). Both default to 1
	// when the other is set; both zero keeps the legacy single-queue model.
	Channels       int
	DiesPerChannel int
	// OverProvision overrides the 10% GC headroom fraction.
	OverProvision float64
	// ShareTableCap bounds the device's reverse-mapping table, as on the
	// OpenSSD prototype (250/500). 0 means unlimited.
	ShareTableCap int
	// PowerCapacitor models a capacitor-backed device whose RAM-buffered
	// mapping deltas are already durable.
	PowerCapacitor bool
	// SpareBlocks overrides the block-retirement budget carved out of the
	// over-provisioned area (0 derives it). Once that many blocks have
	// been retired — factory-bad, program or erase failures, wear-out —
	// the device degrades to read-only.
	SpareBlocks int
	// Fault optionally injects NAND failures: factory-bad blocks plus
	// scheduled or seeded program/erase/read faults (see nand.FaultPlan).
	Fault *FaultPlan
	// Media optionally installs an endogenous media-aging model: per-page
	// raw bit-error risk grows with wear, read disturb and retention age,
	// reads escalate through the FTL's ECC retry ladder as risk crosses the
	// model's limits, and Device.PatrolStep drives the background patrol
	// scrubber that refreshes blocks before they rot past recovery (see
	// nand.MediaModel; DefaultMediaModel gives calibrated defaults).
	Media *MediaModel
	// PatrolThresholdPct overrides the patrol refresh trigger as a percent
	// of the media model's fast-ECC limit (0 means the default 80).
	PatrolThresholdPct int
	// Streams configures n host-visible write streams, each with its own
	// open NAND blocks, so hosts can segregate objects with different
	// lifetimes (logs vs heap pages vs compaction output) and cut GC write
	// amplification. 0 keeps the legacy single-stream device with
	// byte-identical reports. The count is validated against the per-die
	// free-block headroom at mount (ftl.StreamConfigError).
	Streams int
	// AutoStream classifies unhinted writes into the configured streams by
	// per-LPN update frequency (hot pages migrate to higher streams).
	// Requires Streams >= 2.
	AutoStream bool
}

// FaultPlan schedules NAND failures for fault-injection runs: factory-bad
// blocks, transient/permanent program faults, erase faults and read
// errors, either at the Nth operation or by seeded probability.
type FaultPlan = nand.FaultPlan

// NewFaultPlan returns an empty fault plan with the given probability seed.
func NewFaultPlan(seed int64) *FaultPlan { return nand.NewFaultPlan(seed) }

// MediaModel parameterizes endogenous media aging: seeded per-page
// weakness plus wear, read-disturb and retention-driven raw bit-error
// growth, with the ECC strength limits that grade reads into clean,
// corrected, retried, soft-decoded or lost.
type MediaModel = nand.MediaModel

// DefaultMediaModel returns a media model with calibrated default weights
// and ECC limits, seeded for deterministic per-page weakness.
func DefaultMediaModel(seed int64) *MediaModel { return nand.DefaultMediaModel(seed) }

// OpenDevice creates a fresh simulated device.
func OpenDevice(opts DeviceOptions) (*Device, error) {
	blocks := opts.Blocks
	if blocks == 0 {
		blocks = 1024
	}
	cfg := ssd.DefaultConfig(blocks)
	if opts.PageSize != 0 {
		cfg.Geometry.PageSize = opts.PageSize
	}
	if opts.PagesPerBlock != 0 {
		cfg.Geometry.PagesPerBlock = opts.PagesPerBlock
	}
	cfg.Geometry.Channels = opts.Channels
	cfg.Geometry.DiesPerChannel = opts.DiesPerChannel
	if opts.OverProvision != 0 {
		cfg.FTL.OverProvision = opts.OverProvision
	}
	cfg.FTL.ShareTableCap = opts.ShareTableCap
	cfg.FTL.PowerCapacitor = opts.PowerCapacitor
	cfg.FTL.SpareBlocks = opts.SpareBlocks
	cfg.Fault = opts.Fault
	cfg.Media = opts.Media
	cfg.FTL.PatrolThresholdPct = opts.PatrolThresholdPct
	cfg.FTL.HostStreams = opts.Streams
	cfg.FTL.AutoStream = opts.AutoStream
	return ssd.New("share-ssd", cfg)
}

// TierRole names a device's function in a multi-device deployment:
// tablespace data, redo log, or flash-extended cache.
type TierRole string

// The recognized tier roles. A deployment has exactly one data tier;
// log and cache tiers are optional, at most one each.
const (
	TierData  TierRole = "data"
	TierLog   TierRole = "log"
	TierCache TierRole = "cache"
)

// Tier is one device in an N-device tier configuration.
type Tier struct {
	Role TierRole
	Opts DeviceOptions
}

// TierOptions generalizes the two-device (data + log) setup into an
// N-device tier configuration: each tier names its role and carries its
// own DeviceOptions, so the log tier can be small and capacitor-backed
// and the cache tier fast and fault-injected independently of the data
// tier. OpenTiers validates the set and opens every device.
type TierOptions struct {
	Tiers []Tier
}

// TierConfigError reports a tier configuration rejected by OpenTiers:
// which role failed, why, and (when a lower layer produced the failure,
// e.g. a fault plan that does not fit the tier's geometry) the
// underlying cause, reachable through errors.Is/As.
type TierConfigError struct {
	Role   TierRole
	Reason string
	Err    error // underlying cause, nil for pure configuration errors
}

func (e *TierConfigError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("share: %s tier: %s: %v", e.Role, e.Reason, e.Err)
	}
	return fmt.Sprintf("share: %s tier: %s", e.Role, e.Reason)
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *TierConfigError) Unwrap() error { return e.Err }

// Tiers holds the opened devices of a tier configuration, by role.
// Absent optional tiers are nil.
type Tiers struct {
	Data  *Device
	Log   *Device
	Cache *Device
}

// OpenTiers validates a tier configuration and opens one device per
// tier. It rejects, with *TierConfigError: unknown or duplicate roles, a
// missing data tier, a cache tier too small to leave the FTL one erase
// block of GC headroom (such a cache degrades to read-only almost
// immediately — worse than no cache), and device-level failures such as
// a fault plan whose block or operation references do not fit the
// tier's geometry (the nand.ErrFaultPlan cause is wrapped).
func OpenTiers(opts TierOptions) (*Tiers, error) {
	seen := make(map[TierRole]bool)
	for _, tier := range opts.Tiers {
		switch tier.Role {
		case TierData, TierLog, TierCache:
		default:
			return nil, &TierConfigError{Role: tier.Role, Reason: "unknown role"}
		}
		if seen[tier.Role] {
			return nil, &TierConfigError{Role: tier.Role, Reason: "duplicate role"}
		}
		seen[tier.Role] = true
	}
	if !seen[TierData] {
		return nil, &TierConfigError{Role: TierData, Reason: "missing: every deployment needs one data tier"}
	}
	out := &Tiers{}
	for _, tier := range opts.Tiers {
		if tier.Role == TierCache {
			blocks := tier.Opts.Blocks
			if blocks == 0 {
				blocks = 1024
			}
			op := tier.Opts.OverProvision
			if op == 0 {
				op = ftl.DefaultConfig().OverProvision
			}
			if int(float64(blocks)*op) < 1 {
				return nil, &TierConfigError{
					Role: TierCache,
					Reason: fmt.Sprintf("%d blocks at %.0f%% over-provisioning leave no GC headroom (need at least one spare erase block)",
						blocks, op*100),
				}
			}
		}
		dev, err := OpenDevice(tier.Opts)
		if err != nil {
			return nil, &TierConfigError{Role: tier.Role, Reason: "cannot open device", Err: err}
		}
		switch tier.Role {
		case TierData:
			out.Data = dev
		case TierLog:
			out.Log = dev
		case TierCache:
			out.Cache = dev
		}
	}
	return out, nil
}

// NewTask returns a standalone virtual-time task for single-threaded use.
// Multi-client experiments use a sim.Scheduler instead.
func NewTask(name string) *Task { return sim.NewSoloTask(name) }

// ErrFull is returned when the device has no reclaimable space.
var ErrFull = ftl.ErrFull

// ErrBatch is returned when a single SHARE command exceeds the device's
// atomic limit; split with internal/core.ShareAll.
var ErrBatch = ftl.ErrBatch

// DefaultTiming exposes the MLC NAND latencies used by the simulator.
func DefaultTiming() nand.Timing { return nand.DefaultTiming() }
