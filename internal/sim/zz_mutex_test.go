package sim

import "testing"

func TestMutexContentionChargesWaiters(t *testing.T) {
	s := NewScheduler()
	var mu Mutex
	res := NewResource("dev")
	lat := make([]Duration, 4)
	for i := 0; i < 4; i++ {
		i := i
		s.Go("c", func(task *Task) {
			start := task.Now()
			mu.Lock(task)
			res.Use(task, 10*Millisecond) // long op under lock
			mu.Unlock(task)
			lat[i] = task.Now() - start
		})
	}
	s.Run()
	t.Logf("latencies: %v", lat)
	// Serialized: latencies should be ~10, 20, 30, 40 ms in some order.
	max := Duration(0)
	for _, l := range lat {
		if l > max {
			max = l
		}
	}
	if max < 35*Millisecond {
		t.Fatalf("lock waits not charged: max latency %v", max)
	}
}
