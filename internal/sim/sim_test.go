package sim

import "testing"

func TestSoloTaskAdvance(t *testing.T) {
	task := NewSoloTask("solo")
	if task.Now() != 0 {
		t.Fatalf("fresh task at %d", task.Now())
	}
	task.Advance(5 * Millisecond)
	if got := task.Now(); got != 5*Millisecond {
		t.Fatalf("Now = %d, want 5ms", got)
	}
	task.AdvanceTo(3 * Millisecond) // backwards: no-op
	if got := task.Now(); got != 5*Millisecond {
		t.Fatalf("AdvanceTo went backwards: %d", got)
	}
	task.AdvanceTo(9 * Millisecond)
	if got := task.Now(); got != 9*Millisecond {
		t.Fatalf("AdvanceTo = %d, want 9ms", got)
	}
	task.Yield() // solo yield is a no-op and must not block
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewSoloTask("x").Advance(-1)
}

func TestSchedulerOrdersByVirtualTime(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.Go("slow", func(task *Task) {
		task.Advance(10 * Millisecond)
		task.Yield()
		order = append(order, "slow")
	})
	s.Go("fast", func(task *Task) {
		task.Advance(1 * Millisecond)
		task.Yield()
		order = append(order, "fast")
	})
	end := s.Run()
	if len(order) != 2 || order[0] != "fast" || order[1] != "slow" {
		t.Fatalf("order = %v, want [fast slow]", order)
	}
	if end != 10*Millisecond {
		t.Fatalf("end = %d, want 10ms", end)
	}
}

func TestResourceFIFOQueueing(t *testing.T) {
	s := NewScheduler()
	res := NewResource("dev")
	lat := make(map[string]Duration)
	// Two clients arrive at t=0 and t=1ms; each needs 4ms of service.
	s.Go("a", func(task *Task) {
		lat["a"] = res.Use(task, 4*Millisecond)
	})
	s.Go("b", func(task *Task) {
		task.Advance(1 * Millisecond)
		lat["b"] = res.Use(task, 4*Millisecond)
	})
	s.Run()
	if lat["a"] != 4*Millisecond {
		t.Errorf("a latency = %v, want 4ms (no queueing)", lat["a"])
	}
	// b arrives at 1ms, server free at 4ms, done at 8ms -> latency 7ms.
	if lat["b"] != 7*Millisecond {
		t.Errorf("b latency = %v, want 7ms (3ms queue + 4ms service)", lat["b"])
	}
	if res.BusyTime() != 8*Millisecond {
		t.Errorf("busy = %v, want 8ms", res.BusyTime())
	}
}

func TestResourceExtendCurrent(t *testing.T) {
	task := NewSoloTask("t")
	res := NewResource("dev")
	res.Use(task, 2*Millisecond)
	res.ExtendCurrent(task, 3*Millisecond)
	if task.Now() != 5*Millisecond {
		t.Fatalf("task at %d, want 5ms", task.Now())
	}
	if res.Free() != 5*Millisecond {
		t.Fatalf("resource free at %d, want 5ms", res.Free())
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []int64 {
		s := NewScheduler()
		res := NewResource("dev")
		out := make([]int64, 4)
		for i := 0; i < 4; i++ {
			i := i
			s.Go("c", func(task *Task) {
				for j := 0; j < 10; j++ {
					task.Advance(Duration(i+1) * 100 * Microsecond)
					res.Use(task, 500*Microsecond)
				}
				out[i] = task.Now()
			})
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic completion times: %v vs %v", a, b)
		}
	}
}

func TestManyTasksAllComplete(t *testing.T) {
	s := NewScheduler()
	done := 0
	for i := 0; i < 64; i++ {
		s.Go("w", func(task *Task) {
			task.Advance(Microsecond)
			task.Yield()
			done++
		})
	}
	s.Run()
	if done != 64 {
		t.Fatalf("done = %d, want 64", done)
	}
}

func TestMultiResourceParallelism(t *testing.T) {
	s := NewScheduler()
	res := NewMultiResource("dev", 2)
	lat := make([]Duration, 4)
	for i := 0; i < 4; i++ {
		i := i
		s.Go("c", func(task *Task) {
			lat[i] = res.Use(task, 10*Millisecond)
		})
	}
	end := s.Run()
	// Two servers, four 10ms jobs arriving at t=0: finish at 20ms, not 40.
	if end != 20*Millisecond {
		t.Fatalf("end = %v, want 20ms", end)
	}
	if res.BusyTime() != 40*Millisecond {
		t.Fatalf("busy = %v", res.BusyTime())
	}
	if res.Servers() != 2 {
		t.Fatalf("servers = %d", res.Servers())
	}
	slow := 0
	for _, l := range lat {
		if l == 20*Millisecond {
			slow++
		}
	}
	if slow != 2 {
		t.Fatalf("expected 2 queued jobs, got %d (%v)", slow, lat)
	}
}

func TestMultiResourceDepthOneMatchesResource(t *testing.T) {
	a := NewResource("a")
	b := NewMultiResource("b", 1)
	ta := NewSoloTask("ta")
	tb := NewSoloTask("tb")
	for i := 0; i < 5; i++ {
		a.Use(ta, Duration(i+1)*Millisecond)
		b.Use(tb, Duration(i+1)*Millisecond)
	}
	if ta.Now() != tb.Now() {
		t.Fatalf("depth-1 multi resource diverges: %d vs %d", ta.Now(), tb.Now())
	}
}

// TestMultiResourceExtendCurrent checks parity with Resource.ExtendCurrent:
// the extension lands on the server the most recent Use picked and pushes
// the caller's clock to that server's new completion time.
func TestMultiResourceExtendCurrent(t *testing.T) {
	task := NewSoloTask("t")
	m := NewMultiResource("dev", 2)
	m.Use(task, 2*Millisecond) // server 0: free at 2ms
	m.ExtendCurrent(task, 3*Millisecond)
	if task.Now() != 5*Millisecond {
		t.Fatalf("task at %d, want 5ms", task.Now())
	}
	if free := m.FreeTimes(); free[0] != 5*Millisecond || free[1] != 0 {
		t.Fatalf("free times = %v, want [5ms 0]", free)
	}
	if m.BusyTime() != 5*Millisecond {
		t.Fatalf("busy = %d, want 5ms", m.BusyTime())
	}

	// A second request lands on the idle server 1; extending again must
	// target that server, not server 0.
	task2 := NewSoloTask("t2")
	m.Use(task2, 1*Millisecond)
	m.ExtendCurrent(task2, 1*Millisecond)
	if free := m.FreeTimes(); free[0] != 5*Millisecond || free[1] != 2*Millisecond {
		t.Fatalf("free times = %v, want [5ms 2ms]", free)
	}
}

// TestMultiResourceTieBreakLowestIndex pins the deterministic server
// selection rule: among equally idle servers, the lowest index wins. The
// distinct service times make the assignment observable in FreeTimes.
func TestMultiResourceTieBreakLowestIndex(t *testing.T) {
	m := NewMultiResource("dev", 3)
	durs := []Duration{10, 20, 30}
	for _, d := range durs {
		m.Use(NewSoloTask("t"), d)
	}
	free := m.FreeTimes()
	for i, want := range durs {
		if free[i] != want {
			t.Fatalf("server %d free at %d, want %d (tie must pick lowest index): %v",
				i, free[i], want, free)
		}
	}
	// After server 1 becomes the unique earliest-free, it must be chosen
	// even though server 0 is a lower index.
	late := NewSoloTask("late")
	late.Advance(5)
	m.Use(late, 100) // earliest-free is server 0 (free=10)... arrival 5 < 10
	free = m.FreeTimes()
	if free[0] != 110 {
		t.Fatalf("expected earliest-free server 0 to serve: %v", free)
	}
}
