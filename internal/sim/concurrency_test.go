package sim

import (
	"sync"
	"testing"
)

// Solo tasks are real goroutines; the dual-mode Mutex must give them
// mutual exclusion and advance a blocked waiter's clock past the unlock.
func TestSoloMutexExcludes(t *testing.T) {
	var m Mutex
	var counter int
	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			task := NewSoloTask("w")
			for n := 0; n < rounds; n++ {
				m.Lock(task)
				counter++
				task.Advance(10)
				m.Unlock(task)
			}
		}(i)
	}
	wg.Wait()
	if counter != workers*rounds {
		t.Fatalf("lost updates: counter=%d want %d", counter, workers*rounds)
	}
}

// A solo waiter that blocked on a held Mutex must come back with its
// clock at or past the holder's unlock time — lock waits cost virtual
// time in solo mode just as they do under a scheduler.
func TestSoloMutexAdvancesWaiterClock(t *testing.T) {
	var m Mutex
	holder := NewSoloTask("holder")
	m.Lock(holder)
	holder.Advance(5000)

	acquired := make(chan int64)
	go func() {
		w := NewSoloTask("waiter")
		m.Lock(w)
		acquired <- w.Now()
		m.Unlock(w)
	}()
	// Let the waiter reach the blocking wait, then release at t=5000.
	m.Unlock(holder)
	if got := <-acquired; got < 5000 {
		t.Fatalf("waiter clock %d, want >= 5000 (unlock time)", got)
	}
}

// Dual-mode Cond: solo waiters must block until Broadcast and advance to
// the broadcaster's clock.
func TestSoloCondBroadcast(t *testing.T) {
	var m Mutex
	var c Cond
	ready := false
	const waiters = 4
	var wg sync.WaitGroup
	clocks := make([]int64, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewSoloTask("w")
			m.Lock(w)
			for !ready {
				c.Wait(w, &m)
			}
			clocks[i] = w.Now()
			m.Unlock(w)
		}(i)
	}
	b := NewSoloTask("leader")
	b.Advance(7777)
	m.Lock(b)
	ready = true
	c.Broadcast(b)
	m.Unlock(b)
	wg.Wait()
	for i, ck := range clocks {
		if ck < 7777 {
			t.Fatalf("waiter %d clock %d, want >= 7777 (broadcast time)", i, ck)
		}
	}
}

// Scheduler-mode Cond: followers wait for a leader's broadcast without
// deadlocking the virtual-time run loop, and wake at the leader's clock.
func TestSchedulerCond(t *testing.T) {
	var m Mutex
	var c Cond
	done := false
	s := NewScheduler()
	var followerEnd int64
	s.Go("follower", func(task *Task) {
		m.Lock(task)
		for !done {
			c.Wait(task, &m)
		}
		m.Unlock(task)
		followerEnd = task.Now()
	})
	s.Go("leader", func(task *Task) {
		task.Advance(1000)
		m.Lock(task)
		task.Advance(500)
		done = true
		c.Broadcast(task)
		m.Unlock(task)
	})
	s.Run()
	if followerEnd < 1500 {
		t.Fatalf("follower finished at %d, want >= 1500", followerEnd)
	}
}

// Concurrent solo submitters on one Resource / MultiResource: the virtual
// busy-time accounting must not lose updates (and the race detector must
// stay quiet).
func TestResourceConcurrentUse(t *testing.T) {
	r := NewResource("dev")
	mr := NewMultiResource("mdev", 4)
	const workers, rounds = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := NewSoloTask("w")
			for n := 0; n < rounds; n++ {
				r.Use(task, 7)
				mr.Use(task, 11)
			}
		}()
	}
	wg.Wait()
	if got, want := r.BusyTime(), int64(workers*rounds*7); got != want {
		t.Fatalf("Resource busy=%d want %d", got, want)
	}
	if got, want := mr.BusyTime(), int64(workers*rounds*11); got != want {
		t.Fatalf("MultiResource busy=%d want %d", got, want)
	}
}
