// Package sim provides a deterministic virtual-time concurrency simulator.
//
// Database clients in the reproduction run as goroutines, but their notion of
// time is virtual: each Task owns a private clock measured in nanoseconds.
// A central Scheduler always resumes the runnable task with the smallest
// clock, so execution order — and therefore every experiment result — is
// fully deterministic regardless of Go's goroutine scheduling.
//
// Shared resources (the simulated SSD, the log device) are modeled as
// single-server FIFO queues in virtual time: a task that wants service at
// time t receives it at max(t, resourceFree) and both clocks advance past
// the service time. Because the scheduler resumes tasks in virtual-time
// order, arbitration is by arrival time, which is exactly a FIFO queue.
package sim

import "fmt"

// Duration is a span of virtual time in nanoseconds.
type Duration = int64

// Common virtual durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Task is a simulated thread of execution with a private virtual clock.
// A Task is either standalone (created by NewSoloTask) or owned by a
// Scheduler (created by Scheduler.Go).
type Task struct {
	name  string
	now   int64
	sched *Scheduler
	// resume is signalled by the scheduler to let this task run;
	// the task signals yielded when it hands control back.
	resume  chan struct{}
	done    bool
	blocked bool // parked on a Mutex; not runnable until woken
	index   int  // position in the scheduler heap, -1 if solo
}

// NewSoloTask returns a Task not attached to any scheduler. Yield is a
// no-op; the task simply accumulates virtual time. Use it for
// single-threaded experiments and unit tests.
func NewSoloTask(name string) *Task {
	return &Task{name: name, index: -1}
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// Now returns the task's current virtual time in nanoseconds.
func (t *Task) Now() int64 { return t.now }

// Advance moves the task's clock forward by d nanoseconds. It does not
// yield; use Yield (or resource acquisition) to let other tasks run.
func (t *Task) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %d on task %s", d, t.name))
	}
	t.now += d
}

// AdvanceTo moves the task's clock to absolute time tt if tt is later than
// the current clock.
func (t *Task) AdvanceTo(tt int64) {
	if tt > t.now {
		t.now = tt
	}
}

// Yield hands control back to the scheduler. The task resumes when it has
// the smallest virtual clock among runnable tasks. For solo tasks Yield is
// a no-op.
func (t *Task) Yield() {
	if t.sched == nil {
		return
	}
	t.sched.yielded <- t
	<-t.resume
}

// Scheduler coordinates a set of Tasks in virtual-time order.
type Scheduler struct {
	tasks   []*Task
	yielded chan *Task
	pending int
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{yielded: make(chan *Task)}
}

// Go registers fn as a new task named name. The task does not start running
// until Run is called.
func (s *Scheduler) Go(name string, fn func(t *Task)) *Task {
	t := &Task{name: name, sched: s, resume: make(chan struct{})}
	s.tasks = append(s.tasks, t)
	go func() {
		<-t.resume // wait for first dispatch
		fn(t)
		t.done = true
		s.yielded <- t
	}()
	return t
}

// Run drives all registered tasks to completion, always resuming the
// runnable task with the smallest virtual clock. It returns the largest
// virtual completion time across tasks.
func (s *Scheduler) Run() int64 {
	var maxT int64
	for {
		var pick *Task
		live := false
		for _, t := range s.tasks {
			if t.done {
				continue
			}
			live = true
			if t.blocked {
				continue
			}
			if pick == nil || t.now < pick.now {
				pick = t
			}
		}
		if pick == nil {
			if live {
				panic("sim: deadlock — every live task is blocked")
			}
			break
		}
		pick.resume <- struct{}{}
		back := <-s.yielded
		if back != pick {
			panic("sim: unexpected task yielded")
		}
		if pick.done && pick.now > maxT {
			maxT = pick.now
		}
	}
	return maxT
}

// Mutex is a virtual-time mutual-exclusion lock. Lock parks the task until
// the holder unlocks; the waiter's clock is advanced to the unlock time,
// so lock waits show up as real latency in the simulation.
type Mutex struct {
	held    bool
	waiters []*Task
}

// Lock acquires m for task t, blocking in virtual time while it is held.
// It yields before acquiring so tasks with earlier virtual clocks get to
// contend first — without this, a task that unlocks and immediately
// relocks would monopolize the mutex, since it never yields in between.
func (m *Mutex) Lock(t *Task) {
	t.Yield()
	for m.held {
		if t.sched == nil {
			panic("sim: solo task cannot wait on a held Mutex")
		}
		t.blocked = true
		m.waiters = append(m.waiters, t)
		t.Yield()
	}
	m.held = true
}

// TryLock acquires m if free and reports whether it did.
func (m *Mutex) TryLock(t *Task) bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases m and wakes every waiter, advancing their clocks to the
// unlocking task's current time; they re-contend in virtual-clock order.
func (m *Mutex) Unlock(t *Task) {
	if !m.held {
		panic("sim: unlock of free Mutex")
	}
	m.held = false
	for _, w := range m.waiters {
		w.blocked = false
		w.AdvanceTo(t.now)
	}
	m.waiters = m.waiters[:0]
}

// Resource is a single-server FIFO queue in virtual time, e.g. a storage
// device's command interface. Acquire returns the time at which service
// may begin for the calling task.
type Resource struct {
	name string
	free int64 // earliest time the resource is idle
	busy int64 // accumulated busy time, for utilization reports
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Use schedules service of the given duration for task t. The task first
// yields at its arrival time so virtual-time arbitration happens in arrival
// order, then occupies the resource for service nanoseconds. On return both
// the task clock and the resource free-time point at the completion time.
// It returns the request latency (completion - arrival), which includes
// queueing delay.
func (r *Resource) Use(t *Task, service Duration) Duration {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %d on %s", service, r.name))
	}
	arrival := t.now
	t.Yield() // arbitrate by arrival time
	start := arrival
	if r.free > start {
		start = r.free
	}
	done := start + service
	r.free = done
	r.busy += service
	t.AdvanceTo(done)
	return done - arrival
}

// ExtendCurrent adds extra service time to the request currently holding
// the resource. It is used for work discovered mid-service, such as a
// garbage-collection pass triggered by a write. The calling task must be
// the one that most recently completed Use; its clock is pushed to the new
// completion time.
func (r *Resource) ExtendCurrent(t *Task, extra Duration) {
	if extra < 0 {
		panic("sim: negative service extension")
	}
	r.free += extra
	r.busy += extra
	t.AdvanceTo(r.free)
}

// Free returns the virtual time at which the resource next becomes idle.
func (r *Resource) Free() int64 { return r.free }

// BusyTime returns the total virtual time spent serving requests.
func (r *Resource) BusyTime() int64 { return r.busy }

// MultiResource is a k-server FIFO queue in virtual time: up to k requests
// are in service simultaneously (an NCQ-style device with internal
// parallelism). Each request still takes its full service time; only the
// waiting collapses.
type MultiResource struct {
	name string
	free []int64 // per-server next-idle times
	busy int64
	last int // server picked by the most recent Use (ExtendCurrent target)
}

// NewMultiResource returns an idle k-server resource (k >= 1).
func NewMultiResource(name string, k int) *MultiResource {
	if k < 1 {
		k = 1
	}
	return &MultiResource{name: name, free: make([]int64, k)}
}

// Use schedules service on the earliest-free server, like Resource.Use.
// Ties between equally idle servers deterministically pick the lowest
// server index (the strict < below never replaces an equal candidate), so
// identically-seeded runs assign requests to identical servers.
func (m *MultiResource) Use(t *Task, service Duration) Duration {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %d on %s", service, m.name))
	}
	arrival := t.now
	t.Yield()
	best := 0
	for i := 1; i < len(m.free); i++ {
		if m.free[i] < m.free[best] {
			best = i
		}
	}
	start := arrival
	if m.free[best] > start {
		start = m.free[best]
	}
	done := start + service
	m.free[best] = done
	m.busy += service
	m.last = best
	t.AdvanceTo(done)
	return done - arrival
}

// ExtendCurrent adds extra service time to the request that most recently
// completed Use — parity with Resource.ExtendCurrent for work discovered
// mid-service. The calling task must be the one that issued that Use; its
// clock is pushed to the server's new completion time.
func (m *MultiResource) ExtendCurrent(t *Task, extra Duration) {
	if extra < 0 {
		panic("sim: negative service extension")
	}
	m.free[m.last] += extra
	m.busy += extra
	t.AdvanceTo(m.free[m.last])
}

// FreeTimes returns a copy of each server's next-idle time, for tests and
// utilization diagnostics.
func (m *MultiResource) FreeTimes() []int64 {
	out := make([]int64, len(m.free))
	copy(out, m.free)
	return out
}

// BusyTime returns total service time across all servers.
func (m *MultiResource) BusyTime() int64 { return m.busy }

// Servers returns the parallelism degree.
func (m *MultiResource) Servers() int { return len(m.free) }
