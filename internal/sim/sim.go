// Package sim provides a deterministic virtual-time concurrency simulator.
//
// Database clients in the reproduction run as goroutines, but their notion of
// time is virtual: each Task owns a private clock measured in nanoseconds.
// A central Scheduler always resumes the runnable task with the smallest
// clock, so execution order — and therefore every experiment result — is
// fully deterministic regardless of Go's goroutine scheduling.
//
// Shared resources (the simulated SSD, the log device) are modeled as
// single-server FIFO queues in virtual time: a task that wants service at
// time t receives it at max(t, resourceFree) and both clocks advance past
// the service time. Because the scheduler resumes tasks in virtual-time
// order, arbitration is by arrival time, which is exactly a FIFO queue.
// Concurrency model. Scheduler tasks are goroutines, but the scheduler
// physically serializes them (channel handoffs establish happens-before
// edges), so scheduler tasks never race with each other. Solo tasks are
// ordinary goroutines with no such serialization: a server front-end may
// drive many solo tasks into the same Device at once. Every shared sim
// object (Resource, MultiResource, Mutex, Cond) therefore carries an
// internal sync.Mutex so concurrent solo submitters are race-free. The
// one rule: an internal lock is never held across Yield — holding a real
// lock while the scheduler hands control to another task that then blocks
// on it would deadlock the process, not the simulation.
//
// Mutex and Cond are dual-mode: scheduler tasks park virtually (the
// scheduler skips blocked tasks until the holder wakes them), solo tasks
// block for real on an internal condition variable. Mixing scheduler and
// solo tasks on the same Mutex/Cond is not supported — a solo unlock
// cannot safely poke a scheduler's run loop.
package sim

import (
	"fmt"
	"math"
	"sync"
)

// Duration is a span of virtual time in nanoseconds.
type Duration = int64

// Common virtual durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Task is a simulated thread of execution with a private virtual clock.
// A Task is either standalone (created by NewSoloTask) or owned by a
// Scheduler (created by Scheduler.Go).
type Task struct {
	name   string
	now    int64
	tenant string // owning tenant, for fair-share admission ("" = none)
	sched  *Scheduler
	// resume is signalled by the scheduler to let this task run;
	// the task signals yielded when it hands control back.
	resume  chan struct{}
	done    bool
	blocked bool // parked on a Mutex; not runnable until woken
	index   int  // position in the scheduler heap, -1 if solo
	seq     int  // stable task id: registration order, the virtual-time tie-break
}

// NewSoloTask returns a Task not attached to any scheduler. Yield is a
// no-op; the task simply accumulates virtual time. Use it for
// single-threaded experiments and unit tests.
func NewSoloTask(name string) *Task {
	return &Task{name: name, index: -1}
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// SetTenant tags the task with the tenant on whose behalf it submits
// I/O; fair-share admission (internal/qos) bills service time to it.
func (t *Task) SetTenant(tenant string) { t.tenant = tenant }

// Tenant returns the task's tenant tag ("" if untagged).
func (t *Task) Tenant() string { return t.tenant }

// Now returns the task's current virtual time in nanoseconds.
func (t *Task) Now() int64 { return t.now }

// Advance moves the task's clock forward by d nanoseconds. It does not
// yield; use Yield (or resource acquisition) to let other tasks run.
func (t *Task) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %d on task %s", d, t.name))
	}
	t.now += d
}

// AdvanceTo moves the task's clock to absolute time tt if tt is later than
// the current clock.
func (t *Task) AdvanceTo(tt int64) {
	if tt > t.now {
		t.now = tt
	}
}

// Yield hands control back to the scheduler. The task resumes when it has
// the smallest (virtual clock, task id) among runnable tasks. For solo
// tasks Yield is a no-op.
//
// Fast path: while this task is the one the scheduler dispatched, the
// scheduler publishes the runner-up's (clock, id) threshold. If the task
// still beats it — it would be re-picked immediately — Yield returns
// without the two channel handoffs, which is the dominant per-operation
// cost for runs of same-task operations (a client whose clock stays behind
// every other client's issues its whole burst without a context switch).
// The elided schedule is exactly the one the slow path would produce, so
// virtual-time results are unchanged.
func (t *Task) Yield() {
	s := t.sched
	if s == nil {
		return
	}
	if s.elideOK && s.running == t && !t.blocked &&
		(t.now < s.nextNow || (t.now == s.nextNow && t.seq < s.nextSeq)) {
		return
	}
	s.yielded <- t
	<-t.resume
}

// Scheduler coordinates a set of Tasks in virtual-time order.
type Scheduler struct {
	tasks   []*Task
	yielded chan *Task

	// Yield-elision state, owned by the dispatch loop and the (single)
	// running task it serializes with. While `running` is dispatched and
	// elideOK holds, (nextNow, nextSeq) is the smallest (clock, id) among
	// the other runnable tasks; waking a parked task or registering a new
	// one invalidates the threshold (see noteRunnable).
	running *Task
	elideOK bool
	nextNow int64
	nextSeq int
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{yielded: make(chan *Task)}
}

// noteRunnable invalidates the yield-elision threshold: a task just became
// runnable (woken from a Mutex/Cond park, or freshly registered), so the
// running task may no longer hold the smallest (clock, id) and must hand
// off on its next Yield for a full scan.
func (s *Scheduler) noteRunnable() { s.elideOK = false }

// Go registers fn as a new task named name. The task does not start running
// until Run is called. Registration order fixes the task's id, which breaks
// virtual-time ties: of two runnable tasks with equal clocks, the earlier-
// registered one runs first, deterministically.
func (s *Scheduler) Go(name string, fn func(t *Task)) *Task {
	t := &Task{name: name, sched: s, resume: make(chan struct{}), seq: len(s.tasks)}
	s.tasks = append(s.tasks, t)
	s.noteRunnable()
	go func() {
		<-t.resume // wait for first dispatch
		fn(t)
		t.done = true
		s.yielded <- t
	}()
	return t
}

// Run drives all registered tasks to completion, always resuming the
// runnable task with the smallest (virtual clock, task id) — ties broken
// by registration order, never by goroutine wakeup order. It returns the
// largest virtual completion time across tasks.
func (s *Scheduler) Run() int64 {
	var maxT int64
	for {
		var pick, next *Task // smallest and second-smallest (clock, id)
		live := false
		for _, t := range s.tasks {
			if t.done {
				continue
			}
			live = true
			if t.blocked {
				continue
			}
			if pick == nil || t.now < pick.now || (t.now == pick.now && t.seq < pick.seq) {
				next = pick
				pick = t
			} else if next == nil || t.now < next.now || (t.now == next.now && t.seq < next.seq) {
				next = t
			}
		}
		if pick == nil {
			if live {
				panic("sim: deadlock — every live task is blocked")
			}
			break
		}
		// Publish the runner-up threshold so the dispatched task can elide
		// yields it would win anyway. The channel send below establishes the
		// happens-before edge that makes these fields visible to it.
		s.running = pick
		if next != nil {
			s.nextNow, s.nextSeq = next.now, next.seq
		} else {
			s.nextNow, s.nextSeq = math.MaxInt64, math.MaxInt64
		}
		s.elideOK = true
		pick.resume <- struct{}{}
		back := <-s.yielded
		s.elideOK = false
		s.running = nil
		if back != pick {
			panic("sim: unexpected task yielded")
		}
		if pick.done && pick.now > maxT {
			maxT = pick.now
		}
	}
	return maxT
}

// Mutex is a virtual-time mutual-exclusion lock. Lock parks the task until
// the holder unlocks; the waiter's clock is advanced to the unlock time,
// so lock waits show up as real latency in the simulation.
//
// Mutex is dual-mode: scheduler tasks park virtually (the scheduler skips
// them until the holder wakes them), while solo tasks block for real on an
// internal condition variable, making the lock usable from concurrent
// server goroutines. A single Mutex must be driven either by one
// scheduler's tasks or by solo tasks, never a mix.
type Mutex struct {
	sm      sync.Mutex // guards held/waiters/unlockedAt; never held across Yield
	cond    *sync.Cond // lazily built; solo waiters block here
	held    bool
	waiters []*Task // parked scheduler tasks
	// unlockedAt is the virtual time of the latest unlock, used to advance
	// a solo waiter's clock so lock waits cost virtual time in solo mode
	// the same way scheduler-mode waits do.
	unlockedAt int64
}

// Lock acquires m for task t, blocking in virtual time while it is held.
// It yields before acquiring so tasks with earlier virtual clocks get to
// contend first — without this, a task that unlocks and immediately
// relocks would monopolize the mutex, since it never yields in between.
func (m *Mutex) Lock(t *Task) {
	t.Yield()
	m.sm.Lock()
	for m.held {
		if t.sched == nil {
			// Solo task: block for real until an Unlock broadcasts.
			if m.cond == nil {
				m.cond = sync.NewCond(&m.sm)
			}
			m.cond.Wait()
			continue
		}
		// Scheduler task: park virtually. The internal lock must be
		// dropped across Yield — the task that unlocks needs it.
		t.blocked = true
		m.waiters = append(m.waiters, t)
		m.sm.Unlock()
		t.Yield()
		m.sm.Lock()
	}
	m.held = true
	if t.sched == nil && m.unlockedAt > t.now {
		t.now = m.unlockedAt
	}
	m.sm.Unlock()
}

// TryLock acquires m if free and reports whether it did.
func (m *Mutex) TryLock(t *Task) bool {
	m.sm.Lock()
	defer m.sm.Unlock()
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases m and wakes every waiter, advancing their clocks to the
// unlocking task's current time; they re-contend in virtual-clock order.
func (m *Mutex) Unlock(t *Task) {
	m.sm.Lock()
	if !m.held {
		m.sm.Unlock()
		panic("sim: unlock of free Mutex")
	}
	m.held = false
	if t.now > m.unlockedAt {
		m.unlockedAt = t.now
	}
	for _, w := range m.waiters {
		w.blocked = false
		w.AdvanceTo(t.now)
		// Only scheduler tasks park in waiters, and the unlocker is that
		// scheduler's running task, so this write is serialized with it.
		w.sched.noteRunnable()
	}
	m.waiters = m.waiters[:0]
	if m.cond != nil {
		m.cond.Broadcast()
	}
	m.sm.Unlock()
}

// Cond is a virtual-time condition variable tied to a Mutex, dual-mode
// like the Mutex itself. It is the primitive behind group commit: follower
// transactions Wait until the leader's sync Broadcasts durability.
type Cond struct {
	sm      sync.Mutex // guards waiters/gen/wakeAt; never held across Yield
	sc      *sync.Cond // lazily built; solo waiters block here
	waiters []*Task    // parked scheduler tasks
	gen     uint64     // bumped by Broadcast so solo waiters detect wakeups
	wakeAt  int64      // virtual time of the latest Broadcast
}

// Wait atomically releases mu and parks t until Broadcast, then reacquires
// mu before returning. The waiter's clock is advanced to the broadcaster's
// time, so the wait costs virtual time. As with every condition variable,
// callers must re-check their predicate in a loop.
func (c *Cond) Wait(t *Task, mu *Mutex) {
	if t.sched != nil {
		c.sm.Lock()
		c.waiters = append(c.waiters, t)
		c.sm.Unlock()
		t.blocked = true
		mu.Unlock(t)
		t.Yield()
		mu.Lock(t)
		return
	}
	c.sm.Lock()
	if c.sc == nil {
		c.sc = sync.NewCond(&c.sm)
	}
	gen := c.gen
	mu.Unlock(t)
	for gen == c.gen {
		c.sc.Wait()
	}
	if c.wakeAt > t.now {
		t.now = c.wakeAt
	}
	c.sm.Unlock()
	mu.Lock(t)
}

// Broadcast wakes every waiter, advancing each clock to t's current time.
// The associated Mutex should be held (waiters re-contend for it on wake).
func (c *Cond) Broadcast(t *Task) {
	c.sm.Lock()
	for _, w := range c.waiters {
		w.blocked = false
		w.AdvanceTo(t.now)
		// See Mutex.Unlock: waiters here are scheduler tasks, serialized
		// with the broadcasting task.
		w.sched.noteRunnable()
	}
	c.waiters = c.waiters[:0]
	if t.now > c.wakeAt {
		c.wakeAt = t.now
	}
	c.gen++
	if c.sc != nil {
		c.sc.Broadcast()
	}
	c.sm.Unlock()
}

// Resource is a single-server FIFO queue in virtual time, e.g. a storage
// device's command interface. Acquire returns the time at which service
// may begin for the calling task.
type Resource struct {
	name string
	mu   sync.Mutex // guards free/busy against concurrent solo submitters
	free int64      // earliest time the resource is idle
	busy int64      // accumulated busy time, for utilization reports
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Use schedules service of the given duration for task t. The task first
// yields at its arrival time so virtual-time arbitration happens in arrival
// order, then occupies the resource for service nanoseconds. On return both
// the task clock and the resource free-time point at the completion time.
// It returns the request latency (completion - arrival), which includes
// queueing delay.
func (r *Resource) Use(t *Task, service Duration) Duration {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %d on %s", service, r.name))
	}
	arrival := t.now
	t.Yield() // arbitrate by arrival time
	r.mu.Lock()
	start := arrival
	if r.free > start {
		start = r.free
	}
	done := start + service
	r.free = done
	r.busy += service
	r.mu.Unlock()
	t.AdvanceTo(done)
	return done - arrival
}

// ExtendCurrent adds extra service time to the request currently holding
// the resource. It is used for work discovered mid-service, such as a
// garbage-collection pass triggered by a write. The calling task must be
// the one that most recently completed Use; its clock is pushed to the new
// completion time.
func (r *Resource) ExtendCurrent(t *Task, extra Duration) {
	if extra < 0 {
		panic("sim: negative service extension")
	}
	r.mu.Lock()
	r.free += extra
	r.busy += extra
	free := r.free
	r.mu.Unlock()
	t.AdvanceTo(free)
}

// Clone returns an independent resource with the same schedule state
// (next-idle time and accumulated busy time), for replicating a device
// mid-simulation.
func (r *Resource) Clone(name string) *Resource {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Resource{name: name, free: r.free, busy: r.busy}
}

// Free returns the virtual time at which the resource next becomes idle.
func (r *Resource) Free() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.free
}

// BusyTime returns the total virtual time spent serving requests.
func (r *Resource) BusyTime() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// MultiResource is a k-server FIFO queue in virtual time: up to k requests
// are in service simultaneously (an NCQ-style device with internal
// parallelism). Each request still takes its full service time; only the
// waiting collapses.
type MultiResource struct {
	name string
	mu   sync.Mutex // guards free/busy/last against concurrent solo submitters
	free []int64    // per-server next-idle times
	busy int64
	last int // server picked by the most recent Use (ExtendCurrent target)
}

// NewMultiResource returns an idle k-server resource (k >= 1).
func NewMultiResource(name string, k int) *MultiResource {
	if k < 1 {
		k = 1
	}
	return &MultiResource{name: name, free: make([]int64, k)}
}

// Use schedules service on the earliest-free server, like Resource.Use.
// Ties between equally idle servers deterministically pick the lowest
// server index (the strict < below never replaces an equal candidate), so
// identically-seeded runs assign requests to identical servers.
func (m *MultiResource) Use(t *Task, service Duration) Duration {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %d on %s", service, m.name))
	}
	arrival := t.now
	t.Yield()
	m.mu.Lock()
	best := 0
	for i := 1; i < len(m.free); i++ {
		if m.free[i] < m.free[best] {
			best = i
		}
	}
	start := arrival
	if m.free[best] > start {
		start = m.free[best]
	}
	done := start + service
	m.free[best] = done
	m.busy += service
	m.last = best
	m.mu.Unlock()
	t.AdvanceTo(done)
	return done - arrival
}

// ExtendCurrent adds extra service time to the request that most recently
// completed Use — parity with Resource.ExtendCurrent for work discovered
// mid-service. The calling task must be the one that issued that Use; its
// clock is pushed to the server's new completion time.
func (m *MultiResource) ExtendCurrent(t *Task, extra Duration) {
	if extra < 0 {
		panic("sim: negative service extension")
	}
	m.mu.Lock()
	m.free[m.last] += extra
	m.busy += extra
	free := m.free[m.last]
	m.mu.Unlock()
	t.AdvanceTo(free)
}

// Clone returns an independent k-server resource with the same schedule
// state, for replicating a device mid-simulation.
func (m *MultiResource) Clone(name string) *MultiResource {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &MultiResource{
		name: name,
		free: append([]int64(nil), m.free...),
		busy: m.busy,
		last: m.last,
	}
}

// FreeTimes returns a copy of each server's next-idle time, for tests and
// utilization diagnostics.
func (m *MultiResource) FreeTimes() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, len(m.free))
	copy(out, m.free)
	return out
}

// BusyTime returns total service time across all servers.
func (m *MultiResource) BusyTime() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.busy
}

// Servers returns the parallelism degree.
func (m *MultiResource) Servers() int { return len(m.free) }
