// Package stats provides counters and latency distributions for the
// reproduction's experiment harness: means, percentiles, and formatted
// tables in the style of the paper's Table 1.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Histogram bucketing. Samples are non-negative int64 values (nanoseconds
// of virtual time). Buckets are log-linear, HDR-style: values below
// subBucketCount land in exact unit buckets; above that, each power-of-two
// octave is split into subBucketCount linear sub-buckets, bounding the
// relative bucket width to 1/subBucketCount (~1.6%). Memory is fixed at
// maxBuckets counters regardless of sample count, and Add is O(1).
const (
	subBucketBits  = 6
	subBucketCount = 1 << subBucketBits // 64
	// Highest index: exponent 62 (largest int64 power), sub-bucket 63.
	maxBuckets = (62-subBucketBits+1)*subBucketCount + subBucketCount
)

// bucketIndex maps a non-negative sample to its bucket.
func bucketIndex(v int64) int {
	if v < subBucketCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= subBucketBits
	return (exp-subBucketBits+1)*subBucketCount + int((uint64(v)>>(uint(exp)-subBucketBits))&(subBucketCount-1))
}

// bucketUpper returns the largest value mapping to bucket idx.
func bucketUpper(idx int) int64 {
	if idx < subBucketCount {
		return int64(idx)
	}
	exp := idx/subBucketCount + subBucketBits - 1
	sub := idx % subBucketCount
	width := int64(1) << uint(exp-subBucketBits)
	lower := int64(subBucketCount+sub) << uint(exp-subBucketBits)
	return lower + width - 1
}

// Histogram accumulates latency samples (nanoseconds of virtual time) and
// reports the distribution statistics used throughout the paper: mean,
// P25, P50, P75, P99 and max. Storage is a fixed set of log-scaled buckets
// (allocated lazily up to the highest observed value), so memory stays
// bounded and Add is O(1) no matter how many samples are recorded.
// Percentiles are exact for values below 64 and within one bucket width
// (relative error <= 1/64) above that; count, sum, mean, min and max are
// always exact.
type Histogram struct {
	counts   []int64 // bucket counts, grown lazily toward maxBuckets
	n        int64
	sum      int64
	min, max int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	n := *h
	n.counts = append([]int64(nil), h.counts...)
	return &n
}

// Add records one sample. Negative samples are clamped to zero (virtual
// durations are never negative; the clamp keeps the bucket math total).
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if idx >= len(h.counts) {
		grown := make([]int64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return int(h.n) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest sample, or 0 for an empty histogram.
func (h *Histogram) Max() int64 { return h.max }

// Min returns the smallest sample, or 0 for an empty histogram.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest rank
// over the bucketed distribution, or 0 for an empty histogram. The result
// is the upper edge of the rank's bucket, clamped to the observed
// [min, max], so it is within one bucket width of the exact sample.
func (h *Histogram) Percentile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum int64
	for idx, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketUpper(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Summary is a fixed set of distribution statistics, in milliseconds, as
// printed in the paper's Table 1.
type Summary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P25   float64 `json:"p25"`
	P50   float64 `json:"p50"`
	P75   float64 `json:"p75"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summarize converts the histogram (nanosecond samples) into a Summary in
// milliseconds.
func (h *Histogram) Summarize() Summary {
	ms := func(v int64) float64 { return float64(v) / 1e6 }
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean() / 1e6,
		P25:   ms(h.Percentile(25)),
		P50:   ms(h.Percentile(50)),
		P75:   ms(h.Percentile(75)),
		P99:   ms(h.Percentile(99)),
		Max:   ms(h.Max()),
	}
}

// Merge adds all samples of other into h (bucket-wise, so it costs the
// bucket count, not the sample count).
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]int64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Table formats rows of named values into an aligned text table, for the
// paper-style output printed by cmd/sharebench.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hd := range t.header {
		widths[i] = len(hd)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
