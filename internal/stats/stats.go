// Package stats provides counters and latency distributions for the
// reproduction's experiment harness: means, percentiles, and formatted
// tables in the style of the paper's Table 1.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates latency samples (nanoseconds of virtual time) and
// reports the distribution statistics used throughout the paper: mean,
// P25, P50, P75, P99 and max.
type Histogram struct {
	samples []int64
	sorted  bool
	sum     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one sample.
func (h *Histogram) Add(v int64) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return float64(h.sum) / float64(len(h.samples))
}

// Max returns the largest sample, or 0 for an empty histogram.
func (h *Histogram) Max() int64 { return h.max }

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank, or 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// Summary is a fixed set of distribution statistics, in milliseconds, as
// printed in the paper's Table 1.
type Summary struct {
	Count              int
	Mean               float64
	P25, P50, P75, P99 float64
	Max                float64
}

// Summarize converts the histogram (nanosecond samples) into a Summary in
// milliseconds.
func (h *Histogram) Summarize() Summary {
	ms := func(v int64) float64 { return float64(v) / 1e6 }
	return Summary{
		Count: len(h.samples),
		Mean:  h.Mean() / 1e6,
		P25:   ms(h.Percentile(25)),
		P50:   ms(h.Percentile(50)),
		P75:   ms(h.Percentile(75)),
		P99:   ms(h.Percentile(99)),
		Max:   ms(h.Max()),
	}
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for _, v := range other.samples {
		h.Add(v)
	}
}

// Table formats rows of named values into an aligned text table, for the
// paper-style output printed by cmd/sharebench.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hd := range t.header {
		widths[i] = len(hd)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
