package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// within checks that got is within the histogram's guaranteed bucket
// resolution (1/64 relative) of want.
func within(t *testing.T, what string, got, want int64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s = %d, want 0", what, got)
		}
		return
	}
	if diff := math.Abs(float64(got) - float64(want)); diff/float64(want) > 1.0/subBucketCount {
		t.Fatalf("%s = %d, want %d within 1/%d", what, got, want, subBucketCount)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := int64(1); i <= 100; i++ {
		h.Add(i * 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 50500 {
		t.Fatalf("mean = %f", h.Mean())
	}
	if h.Max() != 100000 {
		t.Fatalf("max = %d", h.Max())
	}
	if h.Min() != 1000 {
		t.Fatalf("min = %d", h.Min())
	}
	within(t, "p50", h.Percentile(50), 50000)
	within(t, "p99", h.Percentile(99), 99000)
	if got := h.Percentile(100); got != 100000 {
		t.Fatalf("p100 = %d, want exact max", got)
	}
	within(t, "p1", h.Percentile(1), 1000)
}

func TestHistogramSmallValuesExact(t *testing.T) {
	// Values below the sub-bucket count land in exact unit buckets.
	h := NewHistogram()
	for _, v := range []int64{5, 1, 9, 3, 7} {
		h.Add(v)
	}
	if h.Percentile(50) != 5 {
		t.Fatalf("p50 = %d", h.Percentile(50))
	}
	h.Add(2)
	if got := h.Percentile(100); got != 9 {
		t.Fatalf("p100 after add = %d", got)
	}
}

func TestSummarizeMilliseconds(t *testing.T) {
	h := NewHistogram()
	h.Add(2_000_000) // 2 ms
	h.Add(4_000_000) // 4 ms
	s := h.Summarize()
	if s.Count != 2 || s.Mean != 3 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(1)
	b.Add(2)
	b.Add(3)
	a.Merge(b)
	if a.Count() != 3 || a.Sum() != 6 {
		t.Fatalf("merged count=%d sum=%d", a.Count(), a.Sum())
	}
	if a.Min() != 1 || a.Max() != 3 {
		t.Fatalf("merged min=%d max=%d", a.Min(), a.Max())
	}
	// Merge into an empty histogram adopts the other's min.
	c := NewHistogram()
	c.Merge(b)
	if c.Min() != 2 || c.Count() != 2 {
		t.Fatalf("empty-merge min=%d count=%d", c.Min(), c.Count())
	}
}

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every value's bucket upper edge must be >= the value and within one
	// bucket width; indices must be monotone in the value.
	last := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 4096, 1 << 20,
		(1 << 20) + 17, 1<<40 + 12345, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < last {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		last = idx
		if idx >= maxBuckets {
			t.Fatalf("index %d out of range for %d", idx, v)
		}
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("upper(%d) = %d < value %d", idx, up, v)
		}
		if v >= subBucketCount && float64(up-v) > float64(v)/subBucketCount+1 {
			t.Fatalf("bucket too wide at %d: upper %d", v, up)
		}
	}
}

func TestHistogramBoundedMemory(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 100_000; i++ {
		h.Add(i * 7919) // distinct, spread over many octaves
	}
	if len(h.counts) > maxBuckets {
		t.Fatalf("bucket array grew to %d (> %d)", len(h.counts), maxBuckets)
	}
	if h.Count() != 100_000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramVsExactPercentiles(t *testing.T) {
	// The bucketed percentile stays within resolution of the exact
	// nearest-rank percentile over a realistic latency-shaped sample set.
	h := NewHistogram()
	var samples []int64
	v := int64(90_000) // 90 µs
	for i := 0; i < 5000; i++ {
		v = (v*1103515245 + 12345) % 50_000_000
		if v < 0 {
			v = -v
		}
		samples = append(samples, v)
		h.Add(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{25, 50, 75, 99} {
		rank := int(math.Ceil(p / 100 * float64(len(samples))))
		exact := samples[rank-1]
		within(t, "percentile", h.Percentile(p), exact)
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	prop := func(vals []int64, pRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		var min, max int64
		for i, v := range vals {
			if v < 0 {
				v = -v
			}
			h.Add(v)
			if i == 0 || v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		p := float64(pRaw%100) + 1
		got := h.Percentile(p)
		return got >= min && got <= max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	prop := func(vals []int64) bool {
		if len(vals) < 2 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Add(v)
		}
		last := h.Percentile(1)
		for p := 10.0; p <= 100; p += 10 {
			cur := h.Percentile(p)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.AddRow("alpha", 1)
	tb.AddRow("a-much-longer-name", 3.14159)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Name") || !strings.Contains(lines[0], "Value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(out, "3.1") {
		t.Fatalf("float not formatted: %s", out)
	}
	// All rows aligned: same prefix width up to the second column.
	if len(lines[2]) < len("a-much-longer-name") {
		t.Fatal("column not widened")
	}
}
