package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := int64(1); i <= 100; i++ {
		h.Add(i * 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 50500 {
		t.Fatalf("mean = %f", h.Mean())
	}
	if h.Max() != 100000 {
		t.Fatalf("max = %d", h.Max())
	}
	if got := h.Percentile(50); got != 50000 {
		t.Fatalf("p50 = %d", got)
	}
	if got := h.Percentile(99); got != 99000 {
		t.Fatalf("p99 = %d", got)
	}
	if got := h.Percentile(100); got != 100000 {
		t.Fatalf("p100 = %d", got)
	}
	if got := h.Percentile(1); got != 1000 {
		t.Fatalf("p1 = %d", got)
	}
}

func TestHistogramUnsortedInput(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{5, 1, 9, 3, 7} {
		h.Add(v)
	}
	if h.Percentile(50) != 5 {
		t.Fatalf("p50 = %d", h.Percentile(50))
	}
	// Adding after a percentile query must re-sort.
	h.Add(2)
	if got := h.Percentile(100); got != 9 {
		t.Fatalf("p100 after add = %d", got)
	}
}

func TestSummarizeMilliseconds(t *testing.T) {
	h := NewHistogram()
	h.Add(2_000_000) // 2 ms
	h.Add(4_000_000) // 4 ms
	s := h.Summarize()
	if s.Count != 2 || s.Mean != 3 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(1)
	b.Add(2)
	b.Add(3)
	a.Merge(b)
	if a.Count() != 3 || a.Sum() != 6 {
		t.Fatalf("merged count=%d sum=%d", a.Count(), a.Sum())
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	prop := func(vals []int64, pRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		var min, max int64
		for i, v := range vals {
			if v < 0 {
				v = -v
			}
			h.Add(v)
			if i == 0 || v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		p := float64(pRaw%100) + 1
		got := h.Percentile(p)
		return got >= min && got <= max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	prop := func(vals []int64) bool {
		if len(vals) < 2 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Add(v)
		}
		last := h.Percentile(1)
		for p := 10.0; p <= 100; p += 10 {
			cur := h.Percentile(p)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.AddRow("alpha", 1)
	tb.AddRow("a-much-longer-name", 3.14159)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Name") || !strings.Contains(lines[0], "Value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(out, "3.1") {
		t.Fatalf("float not formatted: %s", out)
	}
	// All rows aligned: same prefix width up to the second column.
	if len(lines[2]) < len("a-much-longer-name") {
		t.Fatal("column not widened")
	}
}
