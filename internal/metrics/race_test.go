package metrics

import (
	"sync"
	"testing"

	"share/internal/ftl"
)

// Group commit and concurrent sessions make the recorder a multi-writer
// sink. Hammer every entry point from parallel goroutines while readers
// snapshot; the race detector is the assertion, plus a lost-update check
// on the command counts.
func TestRecorderConcurrentWriters(t *testing.T) {
	r := NewRecorder(64)
	r.SetDies(4)
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				r.Observe(CmdWrite, int64(n+1), int64(n%3))
				r.FTLEvent(ftl.Event{Type: ftl.EvGCVictim, Block: n, A: 1})
				r.ObserveDieWait(n%4, 5)
				if n%64 == 0 {
					_ = r.LatencySummaries()
					_ = r.EventCounts()
					_ = r.Trace()
					_ = r.DieWaits()
					_ = r.GCStallByCmd()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Latency(CmdWrite).Count; got != workers*rounds {
		t.Fatalf("lost observations: count=%d want %d", got, workers*rounds)
	}
	if got := r.EventsSeen(); got != uint64(workers*rounds) {
		t.Fatalf("lost events: seen=%d want %d", got, workers*rounds)
	}
	r.Reset()
	if got := r.Latency(CmdWrite).Count; got != 0 {
		t.Fatalf("reset left count=%d", got)
	}
}
