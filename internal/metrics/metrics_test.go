package metrics

import (
	"testing"

	"share/internal/ftl"
)

func TestObserveAndSummaries(t *testing.T) {
	r := NewRecorder(8)
	r.Observe(CmdWrite, 1_000_000, 0)
	r.Observe(CmdWrite, 3_000_000, 2_000_000)
	r.Observe(CmdRead, 90_000, 0)
	s := r.Latency(CmdWrite)
	if s.Count != 2 || s.Mean != 2 { // 2 ms mean
		t.Fatalf("write summary = %+v", s)
	}
	all := r.LatencySummaries()
	if len(all) != 2 {
		t.Fatalf("summaries for %d classes, want 2 (%v)", len(all), all)
	}
	if _, ok := all["trim"]; ok {
		t.Fatal("empty class reported")
	}
	if got := r.GCStall(CmdWrite); got != 2_000_000 {
		t.Fatalf("gc stall = %d", got)
	}
	if m := r.GCStallByCmd(); len(m) != 1 || m["write"] != 2_000_000 {
		t.Fatalf("stall map = %v", m)
	}
}

func TestTraceRingEvictsOldest(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.FTLEvent(ftl.Event{Type: ftl.EvGCVictim, Block: i})
	}
	tr := r.Trace()
	if len(tr) != 4 {
		t.Fatalf("ring holds %d, want 4", len(tr))
	}
	for i, te := range tr {
		if te.Block != 6+i || te.Seq != uint64(6+i) {
			t.Fatalf("ring[%d] = %+v, want block/seq %d", i, te, 6+i)
		}
	}
	if r.EventsSeen() != 10 {
		t.Fatalf("events seen = %d", r.EventsSeen())
	}
	if c := r.EventCounts(); c["gc-victim"] != 10 {
		t.Fatalf("counts = %v", c)
	}
}

func TestResetClearsEpoch(t *testing.T) {
	r := NewRecorder(4)
	r.Observe(CmdFlush, 5, 1)
	r.FTLEvent(ftl.Event{Type: ftl.EvCheckpoint})
	r.Reset()
	if r.Latency(CmdFlush).Count != 0 || r.GCStall(CmdFlush) != 0 {
		t.Fatal("latency/stall survived reset")
	}
	if len(r.Trace()) != 0 || r.EventsSeen() != 0 || len(r.EventCounts()) != 0 {
		t.Fatal("trace survived reset")
	}
	// The ring works again after reset.
	r.FTLEvent(ftl.Event{Type: ftl.EvReadOnly, Block: -1})
	if tr := r.Trace(); len(tr) != 1 || tr[0].Type != "read-only" || tr[0].Seq != 0 {
		t.Fatalf("post-reset trace = %+v", tr)
	}
}
