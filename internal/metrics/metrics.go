// Package metrics is the device observability layer: per-command latency
// histograms in virtual time, GC-stall attribution, and a bounded trace
// ring of FTL events (GC victims, copybacks, checkpoints, retirements,
// read-only degradation). One Recorder is attached to every ssd.Device;
// it is epoch-aware — Device.ResetStats clears it alongside the counter
// baseline, so everything it reports covers only the measured window.
//
// All recorded quantities are either order-independent aggregates
// (histogram bucket counts, sums, per-type counters) or produced in the
// deterministic order of the virtual-time scheduler (the trace ring), so
// two identically-seeded runs report byte-identical results even at
// device queue depths above one.
package metrics

import (
	"sync"

	"share/internal/ftl"
	"share/internal/stats"
)

// Cmd labels one host-visible device command class.
type Cmd uint8

const (
	CmdRead Cmd = iota
	CmdWrite
	CmdTrim
	CmdShare
	CmdAtomic
	CmdFlush
	CmdCheckpoint
	CmdRecover
	CmdPatrol
	NumCmds
)

var cmdNames = [NumCmds]string{
	CmdRead:       "read",
	CmdWrite:      "write",
	CmdTrim:       "trim",
	CmdShare:      "share",
	CmdAtomic:     "atomic",
	CmdFlush:      "flush",
	CmdCheckpoint: "checkpoint",
	CmdRecover:    "recover",
	CmdPatrol:     "patrol",
}

func (c Cmd) String() string {
	if int(c) < len(cmdNames) {
		return cmdNames[c]
	}
	return "unknown"
}

// TraceEvent is one FTL event as stored in the ring: the raw ftl.Event
// plus a per-epoch sequence number and a stable string type for JSON.
type TraceEvent struct {
	Seq   uint64 `json:"seq"`
	Type  string `json:"type"`
	Block int    `json:"block"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
}

// DefaultTraceCap is the trace ring size used by ssd.New.
const DefaultTraceCap = 256

// Recorder accumulates the observability state for one device. It is
// safe for concurrent use; within one simulation run all access is
// totally ordered by the virtual-time scheduler, so the lock is
// uncontended and the contents are deterministic.
type Recorder struct {
	mu      sync.Mutex
	lat     [NumCmds]*stats.Histogram
	stall   [NumCmds]int64 // GC-stall virtual ns attributed per command class
	counts  [ftl.NumEventTypes]int64
	ring    []TraceEvent // ring buffer, capacity ringCap
	start   int          // index of the oldest event in ring
	seq     uint64       // events seen this epoch (monotone within epoch)
	dieWait []int64      // per-die queue-stall ns (die-scheduled devices only)
}

// NewRecorder returns an empty recorder whose trace ring keeps the last
// traceCap events (DefaultTraceCap if <= 0).
func NewRecorder(traceCap int) *Recorder {
	if traceCap <= 0 {
		traceCap = DefaultTraceCap
	}
	r := &Recorder{ring: make([]TraceEvent, 0, traceCap)}
	for c := range r.lat {
		r.lat[c] = stats.NewHistogram()
	}
	return r
}

// Observe records one completed command: its total latency (service +
// queueing, virtual ns) and the portion of its service time spent
// stalled on garbage collection.
func (r *Recorder) Observe(c Cmd, latency, gcStall int64) {
	r.mu.Lock()
	r.lat[c].Add(latency)
	r.stall[c] += gcStall
	r.mu.Unlock()
}

// FTLEvent is the ftl.EventSink: it counts the event and appends it to
// the trace ring, evicting the oldest entry when full.
func (r *Recorder) FTLEvent(ev ftl.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[ev.Type]++
	te := TraceEvent{Seq: r.seq, Type: ev.Type.String(), Block: ev.Block, A: ev.A, B: ev.B}
	r.seq++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, te)
		return
	}
	r.ring[r.start] = te
	r.start = (r.start + 1) % len(r.ring)
}

// Reset clears every histogram, counter and the trace ring — the start
// of a new measurement epoch (called by ssd.Device.ResetStats).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for c := range r.lat {
		r.lat[c] = stats.NewHistogram()
		r.stall[c] = 0
	}
	r.counts = [ftl.NumEventTypes]int64{}
	r.ring = r.ring[:0]
	r.start = 0
	r.seq = 0
	for i := range r.dieWait {
		r.dieWait[i] = 0
	}
}

// Clone returns an independent recorder with the same epoch state:
// latency histograms, stall and event counters, the trace ring, and
// per-die wait attribution. Used when cloning a device mid-simulation so
// the copy's telemetry continues from the same point.
func (r *Recorder) Clone() *Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := &Recorder{
		stall:   r.stall,
		counts:  r.counts,
		ring:    append(make([]TraceEvent, 0, cap(r.ring)), r.ring...),
		start:   r.start,
		seq:     r.seq,
		dieWait: append([]int64(nil), r.dieWait...),
	}
	for c := range r.lat {
		n.lat[c] = r.lat[c].Clone()
	}
	return n
}

// SetDies sizes the per-die queue-stall attribution. The device layer
// calls it once when the geometry opts into per-die scheduling; recorders
// of geometry-blind devices keep no per-die state.
func (r *Recorder) SetDies(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dieWait = make([]int64, n)
}

// ObserveDieWait charges virtual nanoseconds a NAND operation spent
// queued behind a busy die before its service could start.
func (r *Recorder) ObserveDieWait(die int, ns int64) {
	r.mu.Lock()
	r.dieWait[die] += ns
	r.mu.Unlock()
}

// DieWaits returns a copy of the per-die queue-stall totals this epoch,
// or nil for a device without per-die scheduling.
func (r *Recorder) DieWaits() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dieWait == nil {
		return nil
	}
	out := make([]int64, len(r.dieWait))
	copy(out, r.dieWait)
	return out
}

// Latency returns the distribution summary (milliseconds) for one
// command class.
func (r *Recorder) Latency(c Cmd) stats.Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lat[c].Summarize()
}

// LatencySummaries returns summaries for every command class that saw at
// least one command, keyed by command name. The map is rendered with
// sorted keys by encoding/json, so reports are stable.
func (r *Recorder) LatencySummaries() map[string]stats.Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]stats.Summary)
	for c := Cmd(0); c < NumCmds; c++ {
		if r.lat[c].Count() > 0 {
			out[c.String()] = r.lat[c].Summarize()
		}
	}
	return out
}

// GCStall returns the total GC stall (virtual ns) charged to one command
// class this epoch.
func (r *Recorder) GCStall(c Cmd) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stall[c]
}

// GCStallByCmd returns the nonzero GC-stall totals keyed by command name.
func (r *Recorder) GCStallByCmd() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64)
	for c := Cmd(0); c < NumCmds; c++ {
		if r.stall[c] != 0 {
			out[c.String()] = r.stall[c]
		}
	}
	return out
}

// EventCounts returns the nonzero per-type FTL event totals this epoch,
// keyed by event name.
func (r *Recorder) EventCounts() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64)
	for t := 0; t < ftl.NumEventTypes; t++ {
		if r.counts[t] != 0 {
			out[ftl.EventType(t).String()] = r.counts[t]
		}
	}
	return out
}

// EventsSeen returns the total number of FTL events this epoch (including
// those already evicted from the ring).
func (r *Recorder) EventsSeen() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Trace returns the retained events, oldest first.
func (r *Recorder) Trace() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		out = append(out, r.ring[(r.start+i)%len(r.ring)])
	}
	return out
}
