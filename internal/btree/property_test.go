package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickPutGetRoundTrip checks that any inserted key/value pair reads
// back verbatim, across arbitrary byte-string keys.
func TestQuickPutGetRoundTrip(t *testing.T) {
	tr, task := testTree(t, 1024, 512)
	prop := func(key, val []byte) bool {
		if len(key) == 0 {
			key = []byte{0}
		}
		if len(key) > 60 {
			key = key[:60]
		}
		if len(val) > 120 {
			val = val[:120]
		}
		if err := tr.Put(task, key, val); err != nil {
			return false
		}
		got, ok, err := tr.Get(task, key)
		return err == nil && ok && bytes.Equal(got, val)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteRemoves checks delete-then-get returns absent.
func TestQuickDeleteRemoves(t *testing.T) {
	tr, task := testTree(t, 1024, 512)
	prop := func(key []byte) bool {
		if len(key) == 0 {
			key = []byte{1}
		}
		if len(key) > 60 {
			key = key[:60]
		}
		if err := tr.Put(task, key, []byte("v")); err != nil {
			return false
		}
		ok, err := tr.Delete(task, key)
		if err != nil || !ok {
			return false
		}
		_, found, err := tr.Get(task, key)
		return err == nil && !found
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestScanIsSortedInvariant checks the full-scan order invariant under a
// randomized workload: scans always yield strictly increasing keys and
// exactly the live key set.
func TestScanIsSortedInvariant(t *testing.T) {
	tr, task := testTree(t, 512, 512)
	rng := rand.New(rand.NewSource(13))
	live := map[string]bool{}
	for step := 0; step < 3000; step++ {
		k := fmt.Sprintf("key%05d", rng.Intn(1200))
		if rng.Intn(5) == 0 {
			if _, err := tr.Delete(task, []byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(live, k)
		} else {
			if err := tr.Put(task, []byte(k), []byte("x")); err != nil {
				t.Fatal(err)
			}
			live[k] = true
		}
		if step%500 == 499 {
			var prev []byte
			seen := 0
			if err := tr.Scan(task, nil, nil, func(key, val []byte) bool {
				if prev != nil && bytes.Compare(key, prev) <= 0 {
					t.Fatalf("step %d: scan out of order: %q after %q", step, key, prev)
				}
				prev = append(prev[:0], key...)
				if !live[string(key)] {
					t.Fatalf("step %d: scan returned dead key %q", step, key)
				}
				seen++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if seen != len(live) {
				t.Fatalf("step %d: scan saw %d keys, live %d", step, seen, len(live))
			}
		}
	}
}

// TestHeightGrowsLogarithmically sanity-checks that the tree does not
// degenerate: 30k sequential inserts into 512-byte pages must stay well
// under 10 levels.
func TestHeightGrowsLogarithmically(t *testing.T) {
	tr, task := testTree(t, 512, 2048)
	for i := 0; i < 30000; i++ {
		if err := tr.Put(task, []byte(fmt.Sprintf("key%08d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	h, err := tr.Height(task)
	if err != nil {
		t.Fatal(err)
	}
	if h > 9 {
		t.Fatalf("height %d for 30k keys: degenerate splits", h)
	}
}

// TestChecksumHelpers exercises the page-stamp helpers shared with the
// engines.
func TestChecksumHelpers(t *testing.T) {
	p := make([]byte, 512)
	InitPage(p)
	SetPageNo(p, 77)
	SetLSN(p, 123456)
	SetChecksum(p)
	if PageNo(p) != 77 || LSN(p) != 123456 {
		t.Fatal("header fields lost")
	}
	if !VerifyChecksum(p) {
		t.Fatal("fresh checksum invalid")
	}
	p[100] ^= 0xFF
	if VerifyChecksum(p) {
		t.Fatal("corruption not detected")
	}
	p[100] ^= 0xFF
	if !VerifyChecksum(p) {
		t.Fatal("restore not detected")
	}
	zero := make([]byte, 512)
	if !VerifyChecksum(zero) {
		t.Fatal("all-zero page must verify (never written)")
	}
	sorted := sort.SliceIsSorted([]int{1, 2}, func(i, j int) bool { return i < j })
	_ = sorted
}
