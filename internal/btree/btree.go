// Package btree implements a slotted-page B+tree with variable-length
// keys and values over a buffer pool. It is the table/index structure of
// the mini-InnoDB engine: page-oriented and update-in-place, so every
// structural change dirties buffer-pool pages that later reach storage
// through the engine's flush policy (in place, doublewrite, or SHARE).
//
// Page layout (little endian):
//
//	offset 0  u32  checksum (maintained by the engine at flush time)
//	offset 4  u64  page LSN (set by the engine)
//	offset 12 u8   page type (1 = leaf, 2 = internal)
//	offset 13 u8   level (0 for leaves)
//	offset 14 u16  key count
//	offset 16 u16  freeEnd — cells occupy [freeEnd, pageSize)
//	offset 18 u32  leaves: right sibling; internals: leftmost child
//	offset 22 u32  page number (for doublewrite-buffer restore)
//	offset 26      slot array, u16 cell offsets sorted by key
//
// Leaf cells:     [klen u16][vlen u16][key][value]
// Internal cells: [klen u16][child u32][key]  (child holds keys >= key)
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"share/internal/bufpool"
	"share/internal/sim"
)

// Page type tags.
const (
	typeLeaf     = 1
	typeInternal = 2
)

// Header field offsets.
const (
	offChecksum = 0
	offLSN      = 4
	offType     = 12
	offLevel    = 13
	offNKeys    = 14
	offFreeEnd  = 16
	offNext     = 18
	offPageNo   = 22
	headerSize  = 26
)

// PageNo returns the page number stamped in the header.
func PageNo(p []byte) uint32 { return binary.LittleEndian.Uint32(p[offPageNo:]) }

// SetPageNo stamps the page number (the engine does this at flush time;
// the doublewrite restore path matches images to homes by it).
func SetPageNo(p []byte, n uint32) { binary.LittleEndian.PutUint32(p[offPageNo:], n) }

// LSN returns the page LSN.
func LSN(p []byte) uint64 { return binary.LittleEndian.Uint64(p[offLSN:]) }

// SetLSN stamps the page LSN.
func SetLSN(p []byte, v uint64) { binary.LittleEndian.PutUint64(p[offLSN:], v) }

// SetChecksum computes and stores the page checksum over bytes [4, len).
func SetChecksum(p []byte) {
	binary.LittleEndian.PutUint32(p[offChecksum:], crc32.ChecksumIEEE(p[4:]))
}

// VerifyChecksum reports whether the stored checksum matches the contents.
// An all-zero page (never written) verifies as valid.
func VerifyChecksum(p []byte) bool {
	sum := binary.LittleEndian.Uint32(p[offChecksum:])
	if sum == 0 {
		for _, b := range p {
			if b != 0 {
				return crc32.ChecksumIEEE(p[4:]) == 0
			}
		}
		return true
	}
	return crc32.ChecksumIEEE(p[4:]) == sum
}

// ErrTooLarge is returned when a key/value pair cannot fit even in an
// empty page (keys and values must leave room for at least four entries).
var ErrTooLarge = errors.New("btree: entry too large for page")

// Pager supplies pages to the tree; the engine implements it over its
// buffer pool and space allocator.
type Pager interface {
	Get(t *sim.Task, pageNo uint32) (*bufpool.Frame, error)
	Alloc(t *sim.Task) (uint32, error)
	Free(t *sim.Task, pageNo uint32) error
	PageSize() int
}

// Tree is one B+tree rooted at a page.
type Tree struct {
	pager        Pager
	root         uint32
	onRootChange func(uint32)
	maxEntry     int
}

// InitPage formats buf as an empty leaf page. The engine calls this when
// creating a tree's first root page.
func InitPage(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	buf[offType] = typeLeaf
	binary.LittleEndian.PutUint16(buf[offFreeEnd:], uint16(len(buf)))
	binary.LittleEndian.PutUint32(buf[offNext:], 0)
}

// Open attaches to an existing tree rooted at root. onRootChange is
// invoked (before returning from the mutating call) whenever a root split
// moves the root page, so the engine can persist the new root number.
func Open(pager Pager, root uint32, onRootChange func(uint32)) *Tree {
	// Cap entries so a page always fits at least 4, keeping splits sane.
	max := (pager.PageSize() - headerSize) / 4
	return &Tree{pager: pager, root: root, onRootChange: onRootChange, maxEntry: max}
}

// Root returns the current root page number.
func (tr *Tree) Root() uint32 { return tr.root }

// --- page accessors -------------------------------------------------------

func nKeys(p []byte) int         { return int(binary.LittleEndian.Uint16(p[offNKeys:])) }
func setNKeys(p []byte, n int)   { binary.LittleEndian.PutUint16(p[offNKeys:], uint16(n)) }
func freeEnd(p []byte) int       { return int(binary.LittleEndian.Uint16(p[offFreeEnd:])) }
func setFreeEnd(p []byte, v int) { binary.LittleEndian.PutUint16(p[offFreeEnd:], uint16(v)) }
func next(p []byte) uint32       { return binary.LittleEndian.Uint32(p[offNext:]) }
func setNext(p []byte, v uint32) { binary.LittleEndian.PutUint32(p[offNext:], v) }
func isLeaf(p []byte) bool       { return p[offType] == typeLeaf }

// IsLeaf reports whether a formatted page image is a leaf page. Engines
// use it to classify flush traffic (leaf/heap vs interior/index) for
// device write-stream hints.
func IsLeaf(p []byte) bool { return isLeaf(p) }

func slotOff(i int) int { return headerSize + 2*i }
func slot(p []byte, i int) int {
	return int(binary.LittleEndian.Uint16(p[slotOff(i):]))
}
func setSlot(p []byte, i, v int) {
	binary.LittleEndian.PutUint16(p[slotOff(i):], uint16(v))
}

// leafCell returns the key and value of slot i in a leaf page.
func leafCell(p []byte, i int) (key, val []byte) {
	off := slot(p, i)
	kl := int(binary.LittleEndian.Uint16(p[off:]))
	vl := int(binary.LittleEndian.Uint16(p[off+2:]))
	return p[off+4 : off+4+kl], p[off+4+kl : off+4+kl+vl]
}

// internalCell returns the key and child of slot i in an internal page.
func internalCell(p []byte, i int) (key []byte, child uint32) {
	off := slot(p, i)
	kl := int(binary.LittleEndian.Uint16(p[off:]))
	child = binary.LittleEndian.Uint32(p[off+2:])
	return p[off+6 : off+6+kl], child
}

func leafCellSize(k, v []byte) int  { return 4 + len(k) + len(v) }
func internalCellSize(k []byte) int { return 6 + len(k) }

// freeSpace returns bytes available for one more cell plus its slot.
func freeSpace(p []byte) int {
	return freeEnd(p) - (headerSize + 2*nKeys(p)) - 2
}

// search finds the first slot whose key is >= key; found reports an exact
// match at the returned index.
func search(p []byte, key []byte, leaf bool) (int, bool) {
	lo, hi := 0, nKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		var k []byte
		if leaf {
			k, _ = leafCell(p, mid)
		} else {
			k, _ = internalCell(p, mid)
		}
		switch bytes.Compare(k, key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// childFor returns the child page that covers key in an internal page:
// the leftmost child (header next) when key < first cell key, else the
// child of the greatest cell key <= key.
func childFor(p []byte, key []byte) uint32 {
	idx, found := search(p, key, false)
	if found {
		_, c := internalCell(p, idx)
		return c
	}
	if idx == 0 {
		return next(p)
	}
	_, c := internalCell(p, idx-1)
	return c
}

// insertCell writes a raw cell into page p at sorted position idx,
// compacting first if needed. Returns false if it cannot fit.
func insertCell(p []byte, idx int, cell []byte) bool {
	if freeSpace(p) < len(cell) {
		return false
	}
	fe := freeEnd(p) - len(cell)
	copy(p[fe:], cell)
	n := nKeys(p)
	copy(p[slotOff(idx+1):slotOff(n+1)], p[slotOff(idx):slotOff(n)])
	setSlot(p, idx, fe)
	setNKeys(p, n+1)
	setFreeEnd(p, fe)
	return true
}

// removeSlot deletes slot idx; the cell bytes become garbage reclaimed by
// the next compaction.
func removeSlot(p []byte, idx int) {
	n := nKeys(p)
	copy(p[slotOff(idx):slotOff(n-1)], p[slotOff(idx+1):slotOff(n)])
	setNKeys(p, n-1)
}

// compact rewrites p densely, reclaiming deleted-cell garbage.
func compact(p []byte) {
	n := nKeys(p)
	leaf := isLeaf(p)
	cells := make([][]byte, n)
	for i := 0; i < n; i++ {
		off := slot(p, i)
		var size int
		kl := int(binary.LittleEndian.Uint16(p[off:]))
		if leaf {
			vl := int(binary.LittleEndian.Uint16(p[off+2:]))
			size = 4 + kl + vl
		} else {
			size = 6 + kl
		}
		c := make([]byte, size)
		copy(c, p[off:off+size])
		cells[i] = c
	}
	fe := len(p)
	for i := n - 1; i >= 0; i-- {
		fe -= len(cells[i])
		copy(p[fe:], cells[i])
		setSlot(p, i, fe)
	}
	setFreeEnd(p, fe)
}

func buildLeafCell(key, val []byte) []byte {
	c := make([]byte, leafCellSize(key, val))
	binary.LittleEndian.PutUint16(c[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(c[2:], uint16(len(val)))
	copy(c[4:], key)
	copy(c[4+len(key):], val)
	return c
}

func buildInternalCell(key []byte, child uint32) []byte {
	c := make([]byte, internalCellSize(key))
	binary.LittleEndian.PutUint16(c[0:], uint16(len(key)))
	binary.LittleEndian.PutUint32(c[2:], child)
	copy(c[6:], key)
	return c
}

// --- public operations ----------------------------------------------------

// Get returns the value stored for key.
func (tr *Tree) Get(t *sim.Task, key []byte) ([]byte, bool, error) {
	pageNo := tr.root
	for {
		f, err := tr.pager.Get(t, pageNo)
		if err != nil {
			return nil, false, err
		}
		p := f.Data
		if isLeaf(p) {
			idx, found := search(p, key, true)
			if !found {
				f.Release()
				return nil, false, nil
			}
			_, v := leafCell(p, idx)
			out := make([]byte, len(v))
			copy(out, v)
			f.Release()
			return out, true, nil
		}
		pageNo = childFor(p, key)
		f.Release()
	}
}

// Height returns the number of levels (1 = a lone leaf).
func (tr *Tree) Height(t *sim.Task) (int, error) {
	h := 1
	pageNo := tr.root
	for {
		f, err := tr.pager.Get(t, pageNo)
		if err != nil {
			return 0, err
		}
		if isLeaf(f.Data) {
			f.Release()
			return h, nil
		}
		pageNo = next(f.Data) // leftmost child
		f.Release()
		h++
	}
}

// Put inserts or replaces key's value.
func (tr *Tree) Put(t *sim.Task, key, val []byte) error {
	if leafCellSize(key, val) > tr.maxEntry {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, leafCellSize(key, val), tr.maxEntry)
	}
	sepKey, newChild, err := tr.put(t, tr.root, key, val)
	if err != nil {
		return err
	}
	if newChild != 0 {
		return tr.growRoot(t, sepKey, newChild)
	}
	return nil
}

// growRoot handles a root split: the old root keeps its page number's
// content moved to a fresh page? No — simpler: allocate a new root page
// whose leftmost child is the old root and whose single cell points at the
// split-off right sibling, then switch tr.root.
func (tr *Tree) growRoot(t *sim.Task, sepKey []byte, right uint32) error {
	newRoot, err := tr.pager.Alloc(t)
	if err != nil {
		return err
	}
	f, err := tr.pager.Get(t, newRoot)
	if err != nil {
		return err
	}
	p := f.Data
	for i := range p {
		p[i] = 0
	}
	p[offType] = typeInternal
	setFreeEnd(p, len(p))
	setNext(p, tr.root) // leftmost child = old root
	if !insertCell(p, 0, buildInternalCell(sepKey, right)) {
		f.Release()
		return fmt.Errorf("btree: separator does not fit fresh root")
	}
	f.MarkDirty()
	f.Release()
	tr.root = newRoot
	if tr.onRootChange != nil {
		tr.onRootChange(newRoot)
	}
	return nil
}

// put descends into pageNo. If the child splits, it returns the separator
// key and the new right sibling's page number for the parent to absorb.
func (tr *Tree) put(t *sim.Task, pageNo uint32, key, val []byte) ([]byte, uint32, error) {
	f, err := tr.pager.Get(t, pageNo)
	if err != nil {
		return nil, 0, err
	}
	p := f.Data
	if isLeaf(p) {
		sep, right, err := tr.leafInsert(t, f, key, val)
		f.Release()
		return sep, right, err
	}
	child := childFor(p, key)
	f.Release() // release during recursion; page may move in LRU but stays valid
	sep, right, err := tr.put(t, child, key, val)
	if err != nil || right == 0 {
		return nil, 0, err
	}
	// Re-pin the parent to absorb the separator.
	f, err = tr.pager.Get(t, pageNo)
	if err != nil {
		return nil, 0, err
	}
	p = f.Data
	idx, _ := search(p, sep, false)
	cell := buildInternalCell(sep, right)
	if !insertCell(p, idx, cell) {
		compact(p)
		if !insertCell(p, idx, cell) {
			sep2, right2, err := tr.splitInternal(t, f, sep, right)
			f.MarkDirty()
			f.Release()
			return sep2, right2, err
		}
	}
	f.MarkDirty()
	f.Release()
	return nil, 0, nil
}

// leafInsert puts key/val into the pinned leaf, splitting if necessary.
func (tr *Tree) leafInsert(t *sim.Task, f *bufpool.Frame, key, val []byte) ([]byte, uint32, error) {
	p := f.Data
	idx, found := search(p, key, true)
	if found {
		removeSlot(p, idx) // replace: drop old cell (space reclaimed on compact)
	}
	cell := buildLeafCell(key, val)
	if insertCell(p, idx, cell) {
		f.MarkDirty()
		return nil, 0, nil
	}
	compact(p)
	if insertCell(p, idx, cell) {
		f.MarkDirty()
		return nil, 0, nil
	}
	// Split, then insert into the proper half.
	sep, rightNo, err := tr.splitLeaf(t, f)
	if err != nil {
		return nil, 0, err
	}
	target := f
	var rf *bufpool.Frame
	if bytes.Compare(key, sep) >= 0 {
		rf, err = tr.pager.Get(t, rightNo)
		if err != nil {
			return nil, 0, err
		}
		target = rf
	}
	tp := target.Data
	tidx, _ := search(tp, key, true)
	if !insertCell(tp, tidx, cell) {
		compact(tp)
		if !insertCell(tp, tidx, cell) {
			if rf != nil {
				rf.Release()
			}
			return nil, 0, fmt.Errorf("btree: entry does not fit after split")
		}
	}
	target.MarkDirty()
	if rf != nil {
		rf.Release()
	}
	f.MarkDirty()
	return sep, rightNo, nil
}

// splitLeaf moves the upper half of the pinned leaf to a new right
// sibling and returns the separator (first key of the right page).
func (tr *Tree) splitLeaf(t *sim.Task, f *bufpool.Frame) ([]byte, uint32, error) {
	p := f.Data
	rightNo, err := tr.pager.Alloc(t)
	if err != nil {
		return nil, 0, err
	}
	rf, err := tr.pager.Get(t, rightNo)
	if err != nil {
		return nil, 0, err
	}
	rp := rf.Data
	InitPage(rp)
	n := nKeys(p)
	mid := n / 2
	for i := mid; i < n; i++ {
		k, v := leafCell(p, i)
		if !insertCell(rp, i-mid, buildLeafCell(k, v)) {
			rf.Release()
			return nil, 0, fmt.Errorf("btree: split right overflow")
		}
	}
	setNKeys(p, mid)
	compact(p)
	setNext(rp, next(p))
	setNext(p, rightNo)
	sepSrc, _ := leafCell(rp, 0)
	sep := make([]byte, len(sepSrc))
	copy(sep, sepSrc)
	rf.MarkDirty()
	rf.Release()
	f.MarkDirty()
	return sep, rightNo, nil
}

// splitInternal splits the pinned internal page that could not absorb
// (pendKey, pendChild). It returns the separator promoted to the parent
// and the new right sibling.
func (tr *Tree) splitInternal(t *sim.Task, f *bufpool.Frame, pendKey []byte, pendChild uint32) ([]byte, uint32, error) {
	p := f.Data
	// Materialize all entries plus the pending one, sorted.
	type entry struct {
		key   []byte
		child uint32
	}
	n := nKeys(p)
	entries := make([]entry, 0, n+1)
	for i := 0; i < n; i++ {
		k, c := internalCell(p, i)
		kk := make([]byte, len(k))
		copy(kk, k)
		entries = append(entries, entry{kk, c})
	}
	pk := make([]byte, len(pendKey))
	copy(pk, pendKey)
	ins := 0
	for ins < len(entries) && bytes.Compare(entries[ins].key, pk) < 0 {
		ins++
	}
	entries = append(entries, entry{})
	copy(entries[ins+1:], entries[ins:])
	entries[ins] = entry{pk, pendChild}

	mid := len(entries) / 2
	sep := entries[mid]
	leftmost := next(p)

	// Rebuild left page with entries[:mid].
	typ := p[offType]
	for i := range p {
		p[i] = 0
	}
	p[offType] = typ
	setFreeEnd(p, len(p))
	setNext(p, leftmost)
	for i, e := range entries[:mid] {
		if !insertCell(p, i, buildInternalCell(e.key, e.child)) {
			return nil, 0, fmt.Errorf("btree: internal split left overflow")
		}
	}

	// Right page: leftmost child = sep.child; cells = entries[mid+1:].
	rightNo, err := tr.pager.Alloc(t)
	if err != nil {
		return nil, 0, err
	}
	rf, err := tr.pager.Get(t, rightNo)
	if err != nil {
		return nil, 0, err
	}
	rp := rf.Data
	for i := range rp {
		rp[i] = 0
	}
	rp[offType] = typeInternal
	setFreeEnd(rp, len(rp))
	setNext(rp, sep.child)
	for i, e := range entries[mid+1:] {
		if !insertCell(rp, i, buildInternalCell(e.key, e.child)) {
			rf.Release()
			return nil, 0, fmt.Errorf("btree: internal split right overflow")
		}
	}
	rf.MarkDirty()
	rf.Release()
	return sep.key, rightNo, nil
}

// Delete removes key; it reports whether the key existed. Pages are not
// rebalanced (deleted space is reclaimed by compaction on later inserts),
// which matches the workloads here — InnoDB similarly leaves pages
// underfull until merge thresholds are hit.
func (tr *Tree) Delete(t *sim.Task, key []byte) (bool, error) {
	pageNo := tr.root
	for {
		f, err := tr.pager.Get(t, pageNo)
		if err != nil {
			return false, err
		}
		p := f.Data
		if isLeaf(p) {
			idx, found := search(p, key, true)
			if found {
				removeSlot(p, idx)
				f.MarkDirty()
			}
			f.Release()
			return found, nil
		}
		pageNo = childFor(p, key)
		f.Release()
	}
}

// Scan walks keys in [start, end) in order, calling fn for each; fn
// returning false stops the scan. A nil end scans to the tree's end.
func (tr *Tree) Scan(t *sim.Task, start, end []byte, fn func(key, val []byte) bool) error {
	// Descend to the leaf covering start.
	pageNo := tr.root
	for {
		f, err := tr.pager.Get(t, pageNo)
		if err != nil {
			return err
		}
		p := f.Data
		if isLeaf(p) {
			f.Release()
			break
		}
		pageNo = childFor(p, start)
		f.Release()
	}
	for pageNo != 0 {
		f, err := tr.pager.Get(t, pageNo)
		if err != nil {
			return err
		}
		p := f.Data
		n := nKeys(p)
		idx, _ := search(p, start, true)
		for i := idx; i < n; i++ {
			k, v := leafCell(p, i)
			if end != nil && bytes.Compare(k, end) >= 0 {
				f.Release()
				return nil
			}
			if !fn(k, v) {
				f.Release()
				return nil
			}
		}
		nextNo := next(p)
		f.Release()
		pageNo = nextNo
		start = []byte{} // subsequent leaves are scanned from their start
	}
	return nil
}
