package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"share/internal/bufpool"
	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/ssd"
)

// memPager backs a tree with a buffer pool over a simulated file, using a
// trivial high-water-mark allocator.
type memPager struct {
	pool *bufpool.Pool
	hwm  uint32
}

func (m *memPager) Get(t *sim.Task, pageNo uint32) (*bufpool.Frame, error) {
	return m.pool.Get(t, pageNo)
}
func (m *memPager) Alloc(t *sim.Task) (uint32, error) {
	m.hwm++
	return m.hwm, nil
}
func (m *memPager) Free(t *sim.Task, pageNo uint32) error { return nil }
func (m *memPager) PageSize() int                         { return m.pool.PageSize() }

type nopFlusher struct {
	file     *fsim.File
	pageSize int
}

func (d *nopFlusher) FlushBatch(t *sim.Task, pages []bufpool.PageImage) error {
	for _, pg := range pages {
		if _, err := d.file.WriteAt(t, pg.Data, int64(pg.PageNo)*int64(d.pageSize)); err != nil {
			return err
		}
	}
	return nil
}

func testTree(t *testing.T, pageSize, poolPages int) (*Tree, *sim.Task) {
	t.Helper()
	cfg := ssd.DefaultConfig(512)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	dev, err := ssd.New("d", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	fs, err := fsim.Format(task, dev, 16)
	if err != nil {
		t.Fatal(err)
	}
	file, err := fs.Create(task, "tree")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := bufpool.New(file, pageSize, poolPages, &nopFlusher{file: file, pageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	pager := &memPager{pool: pool}
	// Page 1 is the root (page 0 reserved for engine metadata by callers).
	root, _ := pager.Alloc(task)
	f, err := pool.Get(task, root)
	if err != nil {
		t.Fatal(err)
	}
	InitPage(f.Data)
	f.MarkDirty()
	f.Release()
	return Open(pager, root, nil), task
}

func key(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestPutGetSingle(t *testing.T) {
	tr, task := testTree(t, 512, 64)
	if err := tr.Put(task, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get(task, []byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := tr.Get(task, []byte("b")); ok {
		t.Fatal("phantom key")
	}
}

func TestPutReplace(t *testing.T) {
	tr, task := testTree(t, 512, 64)
	if err := tr.Put(task, []byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(task, []byte("k"), []byte("newer-and-longer")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tr.Get(task, []byte("k"))
	if !ok || string(v) != "newer-and-longer" {
		t.Fatalf("get = %q", v)
	}
}

func TestManyInsertsSplitLeaves(t *testing.T) {
	tr, task := testTree(t, 512, 256)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Put(task, key(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	h, err := tr.Height(task)
	if err != nil {
		t.Fatal(err)
	}
	if h < 3 {
		t.Fatalf("height = %d; expected multi-level tree", h)
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(task, key(i))
		if err != nil || !ok {
			t.Fatalf("get %d: %v %v", i, ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d value %q", i, v)
		}
	}
}

func TestRandomOrderInserts(t *testing.T) {
	tr, task := testTree(t, 512, 256)
	rng := rand.New(rand.NewSource(9))
	perm := rng.Perm(1500)
	for _, i := range perm {
		if err := tr.Put(task, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1500; i++ {
		v, ok, _ := tr.Get(task, key(i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d missing or wrong", i)
		}
	}
}

func TestDelete(t *testing.T) {
	tr, task := testTree(t, 512, 128)
	for i := 0; i < 500; i++ {
		if err := tr.Put(task, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 2 {
		ok, err := tr.Delete(task, key(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if ok, _ := tr.Delete(task, key(0)); ok {
		t.Fatal("double delete reported success")
	}
	for i := 0; i < 500; i++ {
		_, ok, _ := tr.Get(task, key(i))
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("surviving key %d lost", i)
		}
	}
}

func TestScanOrderedAndBounded(t *testing.T) {
	tr, task := testTree(t, 512, 256)
	for i := 0; i < 1000; i++ {
		if err := tr.Put(task, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Scan(task, key(100), key(200), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("scan returned %d keys", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("scan out of order")
	}
	if got[0] != string(key(100)) || got[99] != string(key(199)) {
		t.Fatalf("bounds wrong: %s .. %s", got[0], got[99])
	}
	// Early stop.
	count := 0
	if err := tr.Scan(task, nil, nil, func(k, v []byte) bool {
		count++
		return count < 10
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("early stop scanned %d", count)
	}
}

func TestEntryTooLarge(t *testing.T) {
	tr, task := testTree(t, 512, 64)
	big := make([]byte, 400)
	if err := tr.Put(task, []byte("k"), big); err == nil {
		t.Fatal("oversized entry accepted")
	}
}

func TestVariableLengthWorkload(t *testing.T) {
	tr, task := testTree(t, 512, 256)
	rng := rand.New(rand.NewSource(3))
	model := map[string]string{}
	for step := 0; step < 4000; step++ {
		k := fmt.Sprintf("k%04d", rng.Intn(800))
		switch rng.Intn(10) {
		case 0, 1: // delete
			delete(model, k)
			if _, err := tr.Delete(task, []byte(k)); err != nil {
				t.Fatal(err)
			}
		default: // upsert with variable-size value
			v := make([]byte, 1+rng.Intn(60))
			rng.Read(v)
			model[k] = string(v)
			if err := tr.Put(task, []byte(k), v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k, v := range model {
		got, ok, err := tr.Get(task, []byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(got) != v {
			t.Fatalf("key %s mismatch", k)
		}
	}
	// Full scan equals the model.
	seen := 0
	if err := tr.Scan(task, nil, nil, func(k, v []byte) bool {
		if model[string(k)] != string(v) {
			t.Fatalf("scan key %q mismatch", k)
		}
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != len(model) {
		t.Fatalf("scan saw %d keys, model has %d", seen, len(model))
	}
}

func TestLargerPages(t *testing.T) {
	for _, ps := range []int{1024, 2048} {
		tr, task := testTree(t, ps, 128)
		for i := 0; i < 800; i++ {
			if err := tr.Put(task, key(i), val(i)); err != nil {
				t.Fatalf("pageSize %d put %d: %v", ps, i, err)
			}
		}
		for i := 0; i < 800; i++ {
			if _, ok, _ := tr.Get(task, key(i)); !ok {
				t.Fatalf("pageSize %d key %d lost", ps, i)
			}
		}
	}
}
