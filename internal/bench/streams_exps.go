package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"share/internal/couch"
	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/ssd"
	"share/internal/ycsb"
)

// The streams experiment measures multi-stream, object-aware write
// placement: the same zipfian update traffic ages three identical
// 4-channel devices — one legacy single-stream device (hints off), one
// with two host streams and explicit hot/cold hints from the host, and
// one with two host streams steered by the FTL's auto-stream
// update-frequency classifier. Segregating short-lived (hot) pages from
// long-lived (cold) ones means GC victims are either mostly dead (hot
// blocks) or not picked at all (cold blocks), so the hinted and auto legs
// must show fewer GC copybacks and lower measured write amplification
// than the unhinted leg. A second table runs the whole stack — couch on
// fsim with per-file stream attributes — under YCSB-A to show the
// engine-level hint plumbing (append log vs compaction output) reaching
// the device. The BENCH_streams.json regression pins the WA and copyback
// reductions (TestStreamsWAReduction).
func init() {
	register(Experiment{
		ID:    "streams",
		Title: "Streams: write placement under zipfian aging — hints off vs on vs auto",
		Run:   runStreams,
	})
}

const (
	streamsBlocks = 256 // 4-channel geometry, one die per channel
	// Smaller blocks than the OpenSSD default keep three full
	// fill+churn+measure legs in the seconds range without changing the
	// GC dynamics the experiment measures.
	streamsPageSize  = 2048
	streamsPagesPerB = 64
	// Hot set: the zipfian head. With s=1.1 the first 1/16th of the
	// address space receives roughly three quarters of the updates, so
	// "is the lpn in the head?" is the hint an object-aware host would
	// derive from its own write skew.
	streamsHotFrac = 16
	// Enough over-provisioning that the extra open blocks multi-stream
	// mode pins per die (one per host stream) are a small fraction of the
	// free pool; at the default 10% the open-block tax on a 256-block
	// device swamps the segregation benefit being measured.
	streamsOverProvision = 0.20
	// Churn multiple of logical capacity, applied once as unmeasured
	// aging and once as the measured epoch.
	streamsChurn = 2
)

// streamsLeg ages one device through fill + zipfian churn and measures a
// second churn epoch. mode: "off" (legacy single stream, no hints),
// "hints" (two streams, host tags the zipfian head), "auto" (two
// streams, FTL update-frequency classifier, no hints).
func streamsLeg(p Params, mode string) (*ssd.Device, ssd.Stats, error) {
	cfg := ssd.DefaultConfig(streamsBlocks)
	cfg.Geometry.PageSize = streamsPageSize
	cfg.Geometry.PagesPerBlock = streamsPagesPerB
	cfg.Geometry.Channels = 4
	cfg.Geometry.DiesPerChannel = 1
	cfg.FTL.OverProvision = streamsOverProvision
	switch mode {
	case "hints":
		cfg.FTL.HostStreams = 2
	case "auto":
		cfg.FTL.HostStreams = 2
		cfg.FTL.AutoStream = true
	}
	dev, err := ssd.New("streams-"+mode, cfg)
	if err != nil {
		return nil, ssd.Stats{}, err
	}
	t := sim.NewSoloTask("streams-" + mode)
	capacity := dev.Capacity()
	hotCut := uint64(capacity / streamsHotFrac)
	page := make([]byte, dev.PageSize())
	rng := newRand(p.Seed + 31)
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(capacity-1))

	hint := func(lpn uint64) int {
		if mode != "hints" {
			return -1 // off: single stream; auto: classifier decides
		}
		if lpn < hotCut {
			return 1
		}
		return 0
	}
	write := func(lpn uint64) error {
		rng.Read(page[:16])
		return dev.WritePageStream(t, uint32(lpn), page, hint(lpn))
	}

	// Fill the whole logical space (everything starts cold), then one
	// unmeasured churn epoch so GC is active and blocks are scrambled
	// before measurement starts.
	for lpn := 0; lpn < capacity; lpn++ {
		if err := write(uint64(lpn)); err != nil {
			return nil, ssd.Stats{}, fmt.Errorf("streams %s: fill lpn %d: %w", mode, lpn, err)
		}
	}
	churn := streamsChurn * capacity
	for i := 0; i < churn; i++ {
		if err := write(zipf.Uint64()); err != nil {
			return nil, ssd.Stats{}, fmt.Errorf("streams %s: aging write %d: %w", mode, i, err)
		}
	}
	dev.ResetStats()
	for i := 0; i < churn; i++ {
		if err := write(zipf.Uint64()); err != nil {
			return nil, ssd.Stats{}, fmt.Errorf("streams %s: measured write %d: %w", mode, i, err)
		}
	}
	if err := dev.Flush(t); err != nil {
		return nil, ssd.Stats{}, err
	}
	return dev, dev.Stats(), nil
}

// streamsCouchLeg runs the whole-stack leg: couch on fsim under YCSB-A,
// with or without engine stream hints, on a two-stream device. It returns
// the measured epoch stats (post-load).
func streamsCouchLeg(p Params, hints bool) (ssd.Stats, error) {
	name := "streams-couch-off"
	if hints {
		name = "streams-couch-on"
	}
	blocks := scaled(paperDeviceBlocks, p.Scale)
	// Two host streams need one open block per stream per die on top of
	// the gc/meta streams and the GC low-water reserve; 256 blocks is the
	// smallest 4-die device whose over-provisioned pool covers that.
	if blocks < 256 {
		blocks = 256
	}
	cfg := ssd.DefaultConfig(blocks)
	cfg.Geometry.Channels = 4
	cfg.Geometry.DiesPerChannel = 1
	cfg.FTL.HostStreams = 2
	dev, err := ssd.New(name, cfg)
	if err != nil {
		return ssd.Stats{}, err
	}
	task := sim.NewSoloTask(name)
	if err := dev.Age(task, 0.95, 0.3, p.Seed); err != nil {
		return ssd.Stats{}, err
	}
	if err := dev.Trim(task, 0, dev.Capacity()); err != nil {
		return ssd.Stats{}, err
	}
	fs, err := fsim.Format(task, dev, 256)
	if err != nil {
		return ssd.Stats{}, err
	}
	records := scaled(paperYCSBRecords, p.Scale)
	st, err := couch.Open(task, fs, couch.Config{
		BatchSize:        16,
		CompactThreshold: 0.45,
		DocCacheEntries:  records / 10,
		MaxFanout:        fanoutForDepth3(records),
		StreamHints:      hints,
	})
	if err != nil {
		return ssd.Stats{}, err
	}
	ycfg := ycsb.Config{
		Records: records, ValueSize: 4000, Ops: records,
		Workload: ycsb.WorkloadA, Seed: p.Seed, AutoCompact: true,
	}
	if err := ycsb.Load(task, st, ycfg); err != nil {
		return ssd.Stats{}, err
	}
	dev.ResetStats()
	if _, err := ycsb.Run(task, st, ycfg); err != nil {
		return ssd.Stats{}, err
	}
	if err := dev.Flush(task); err != nil {
		return ssd.Stats{}, err
	}
	return dev.Stats(), nil
}

func runStreams(p Params, r *Report) (string, error) {
	p.setDefaults()
	var out strings.Builder
	fmt.Fprintf(&out, "streams: zipfian updates (%dx capacity) on 4-channel %d-block devices\n",
		streamsChurn, streamsBlocks)
	fmt.Fprintf(&out, "%-8s %10s %10s %10s %14s\n", "leg", "WA", "copybacks", "GC-events", "stream-writes")

	type legResult struct {
		wa        float64
		copybacks int64
	}
	results := map[string]legResult{}
	for _, mode := range []string{"off", "hints", "auto"} {
		dev, st, err := streamsLeg(p, mode)
		if err != nil {
			return "", err
		}
		wa := st.WriteAmplification()
		results[mode] = legResult{wa: wa, copybacks: st.FTL.Copybacks}
		r.Metric("wa_"+mode, wa, "x")
		r.Metric("copybacks_"+mode, float64(st.FTL.Copybacks), "pages")
		r.Metric("gc_events_"+mode, float64(st.FTL.GCEvents), "events")
		sw := "-"
		if len(st.FTL.StreamWrites) == 2 {
			sw = fmt.Sprintf("%d/%d", st.FTL.StreamWrites[0], st.FTL.StreamWrites[1])
			r.Metric("stream0_writes_"+mode, float64(st.FTL.StreamWrites[0]), "pages")
			r.Metric("stream1_writes_"+mode, float64(st.FTL.StreamWrites[1]), "pages")
			r.Metric("stream0_copybacks_"+mode, float64(st.FTL.StreamCopybacks[0]), "pages")
			r.Metric("stream1_copybacks_"+mode, float64(st.FTL.StreamCopybacks[1]), "pages")
		}
		fmt.Fprintf(&out, "%-8s %10.3f %10d %10d %14s\n", mode, wa, st.FTL.Copybacks, st.FTL.GCEvents, sw)
		if mode == "hints" {
			r.Device("hints", dev)
		}
	}
	off, hints, auto := results["off"], results["hints"], results["auto"]
	waRed := reduction(off.wa, hints.wa)
	cbRed := reduction(float64(off.copybacks), float64(hints.copybacks))
	r.Metric("wa_reduction_hints", waRed, "frac")
	r.Metric("copyback_reduction_hints", cbRed, "frac")
	r.Metric("wa_reduction_auto", reduction(off.wa, auto.wa), "frac")
	r.Metric("copyback_reduction_auto", reduction(float64(off.copybacks), float64(auto.copybacks)), "frac")
	fmt.Fprintf(&out, "hints: WA -%.1f%%, copybacks -%.1f%%; auto: WA -%.1f%%, copybacks -%.1f%%\n",
		100*waRed, 100*cbRed,
		100*reduction(off.wa, auto.wa), 100*reduction(float64(off.copybacks), float64(auto.copybacks)))

	// Whole-stack leg: the hint travels engine -> fsim -> device.
	fmt.Fprintf(&out, "\ncouch YCSB-A on two-stream device (append log vs compaction output)\n")
	fmt.Fprintf(&out, "%-8s %10s %10s %14s\n", "hints", "WA", "copybacks", "stream-writes")
	for _, hintsOn := range []bool{false, true} {
		st, err := streamsCouchLeg(p, hintsOn)
		if err != nil {
			return "", err
		}
		label := "off"
		if hintsOn {
			label = "on"
		}
		r.Metric("couch_wa_"+label, st.WriteAmplification(), "x")
		r.Metric("couch_copybacks_"+label, float64(st.FTL.Copybacks), "pages")
		sw := "-"
		if len(st.FTL.StreamWrites) == 2 {
			sw = fmt.Sprintf("%d/%d", st.FTL.StreamWrites[0], st.FTL.StreamWrites[1])
			r.Metric("couch_stream0_writes_"+label, float64(st.FTL.StreamWrites[0]), "pages")
			r.Metric("couch_stream1_writes_"+label, float64(st.FTL.StreamWrites[1]), "pages")
		}
		fmt.Fprintf(&out, "%-8s %10.3f %10d %14s\n", label, st.WriteAmplification(), st.FTL.Copybacks, sw)
	}
	return out.String(), nil
}

// reduction returns how much b improves on a, as a fraction of a
// (0.25 = "b is 25% lower than a").
func reduction(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}
