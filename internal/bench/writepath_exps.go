package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"share/internal/randfill"
	"share/internal/sim"
	"share/internal/ssd"
)

// The writepath experiment is a taxonomy sweep of the write path: IO size
// (pages per operation) × queue depth × placement strategy (legacy single
// stream vs host-hinted streams vs the FTL's auto-stream classifier) on
// the same aged 4-channel device. Each cell measures zipfian update
// throughput and write amplification; the crossover map names the winning
// strategy per cell, which is the decision table a host would consult
// when choosing whether hinting is worth plumbing through its stack:
// hints pay at small sequential-run sizes where per-page placement
// matters most, while at large IO sizes the runs self-segregate and the
// legacy path catches up. Placement strategies age separate prototypes
// (their FTL configs differ), but within a strategy every (size, depth)
// cell clones one aged prototype, so the sweep measures the cells, not
// repeated aging.
func init() {
	register(Experiment{
		ID:    "writepath",
		Title: "Writepath: IO size × queue depth × placement strategy crossover",
		Run:   runWritepath,
	})
}

const (
	writepathBlocks = 256 // 4-channel geometry, one die per channel
	// Same compact geometry as the streams experiment: small pages keep
	// three aged prototypes and 27 measured cells in the seconds range
	// without changing the GC dynamics under study.
	writepathPageSize  = 2048
	writepathPagesPerB = 64
	writepathOverProv  = 0.20
	writepathHotFrac   = 16 // zipfian head treated as hot by host hints
	writepathChurn     = 1  // unmeasured churn multiple of capacity while aging
	// Pages written per measured cell (split across clients, grouped into
	// ops of the cell's IO size).
	writepathCellPages = 4096
)

var (
	writepathSizes      = []int{1, 4, 16}
	writepathDepths     = []int{1, 4, 8}
	writepathStrategies = []string{"legacy", "streams", "auto"}
)

// writepathProto builds and ages one placement strategy's device: fill
// plus one zipfian churn epoch, so GC is live and blocks are scrambled
// before any cell is measured. Returns the device and the aging end time.
func writepathProto(p Params, strategy string) (*ssd.Device, int64, error) {
	cfg := ssd.DefaultConfig(writepathBlocks)
	cfg.Geometry.PageSize = writepathPageSize
	cfg.Geometry.PagesPerBlock = writepathPagesPerB
	cfg.Geometry.Channels = 4
	cfg.Geometry.DiesPerChannel = 1
	cfg.FTL.OverProvision = writepathOverProv
	switch strategy {
	case "streams":
		cfg.FTL.HostStreams = 2
	case "auto":
		cfg.FTL.HostStreams = 2
		cfg.FTL.AutoStream = true
	}
	dev, err := ssd.New("writepath-"+strategy, cfg)
	if err != nil {
		return nil, 0, err
	}
	t := sim.NewSoloTask("writepath-" + strategy)
	capacity := dev.Capacity()
	page := make([]byte, dev.PageSize())
	rng := newRand(p.Seed + 61)
	fill := randfill.New(rng)
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(capacity-1))
	hot := uint32(capacity / writepathHotFrac)
	write := func(lpn uint32) error {
		fill.Fill(page[:16])
		return dev.WritePageStream(t, lpn, page, writepathHint(strategy, lpn, hot))
	}
	for lpn := 0; lpn < capacity; lpn++ {
		if err := write(uint32(lpn)); err != nil {
			return nil, 0, fmt.Errorf("writepath %s: fill lpn %d: %w", strategy, lpn, err)
		}
	}
	for i := 0; i < writepathChurn*capacity; i++ {
		if err := write(uint32(zipf.Uint64())); err != nil {
			return nil, 0, fmt.Errorf("writepath %s: churn write %d: %w", strategy, i, err)
		}
	}
	return dev, t.Now(), nil
}

// writepathHint is the host's placement decision: tag the zipfian head
// hot on the hinted leg, let the device decide otherwise.
func writepathHint(strategy string, lpn, hot uint32) int {
	if strategy != "streams" {
		return -1 // legacy: single stream; auto: classifier decides
	}
	if lpn < hot {
		return 1
	}
	return 0
}

// writepathCell measures one (strategy, ioSize, depth) cell on a clone of
// the strategy's aged prototype: depth concurrent clients issue zipfian
// updates of ioSize contiguous pages each. Returns throughput in pages/s
// and the epoch write amplification.
func writepathCell(p Params, proto *ssd.Device, strategy string, ioSize, depth int, t0 int64) (float64, float64, error) {
	dev, err := proto.Clone(fmt.Sprintf("writepath-%s-s%d-qd%d", strategy, ioSize, depth))
	if err != nil {
		return 0, 0, err
	}
	dev.ResetStats()
	capacity := dev.Capacity()
	hot := uint32(capacity / writepathHotFrac)
	span := capacity - ioSize // ops stay in bounds without wrapping
	opsPerClient := writepathCellPages / (ioSize * depth)
	s := sim.NewScheduler()
	errs := make([]error, depth)
	for c := 0; c < depth; c++ {
		c := c
		s.Go(fmt.Sprintf("cli%d", c), func(task *sim.Task) {
			task.AdvanceTo(t0)
			rng := newRand(p.Seed + int64(100*ioSize+10*depth+c))
			fill := randfill.New(rng)
			zipf := rand.NewZipf(rng, 1.1, 1, uint64(span-1))
			page := make([]byte, dev.PageSize())
			for n := 0; n < opsPerClient; n++ {
				base := uint32(zipf.Uint64())
				for k := 0; k < ioSize; k++ {
					lpn := base + uint32(k)
					fill.Fill(page[:16])
					if err := dev.WritePageStream(task, lpn, page, writepathHint(strategy, lpn, hot)); err != nil {
						errs[c] = err
						return
					}
				}
			}
		})
	}
	end := s.Run()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	flusher := sim.NewSoloTask("flush")
	flusher.AdvanceTo(end)
	if err := dev.Flush(flusher); err != nil {
		return 0, 0, err
	}
	st := dev.Stats()
	elapsed := float64(end-t0) / float64(sim.Second)
	pages := float64(opsPerClient * ioSize * depth)
	return pages / elapsed, st.WriteAmplification(), nil
}

func runWritepath(p Params, r *Report) (string, error) {
	p.setDefaults()
	var out strings.Builder
	fmt.Fprintf(&out, "writepath: zipfian updates on 4-channel %d-block devices, %d pages per cell\n",
		writepathBlocks, writepathCellPages)

	type cell struct{ tput, wa float64 }
	results := map[string]map[[2]int]cell{}
	for _, strategy := range writepathStrategies {
		proto, t0, err := writepathProto(p, strategy)
		if err != nil {
			return "", err
		}
		results[strategy] = map[[2]int]cell{}
		fmt.Fprintf(&out, "\n%s (pages/s, WA)\n%-8s", strategy, "size")
		for _, qd := range writepathDepths {
			fmt.Fprintf(&out, " qd=%-14d", qd)
		}
		out.WriteByte('\n')
		for _, size := range writepathSizes {
			fmt.Fprintf(&out, "%-8d", size)
			for _, qd := range writepathDepths {
				tput, wa, err := writepathCell(p, proto, strategy, size, qd, t0)
				if err != nil {
					return "", err
				}
				results[strategy][[2]int{size, qd}] = cell{tput: tput, wa: wa}
				r.Metric(fmt.Sprintf("tput_%s_s%d_qd%d", strategy, size, qd), tput, "pages/s")
				r.Metric(fmt.Sprintf("wa_%s_s%d_qd%d", strategy, size, qd), wa, "x")
				fmt.Fprintf(&out, " %-9s %-7.3f", fmtThroughput(tput), wa)
			}
			out.WriteByte('\n')
		}
	}

	// Crossover map: the throughput winner per (size, depth) cell, with
	// the winner's index recorded as a metric so the regression pins the
	// shape of the map, not just individual magnitudes.
	fmt.Fprintf(&out, "\ncrossover map (throughput winner)\n%-8s", "size")
	for _, qd := range writepathDepths {
		fmt.Fprintf(&out, " qd=%-10d", qd)
	}
	out.WriteByte('\n')
	for _, size := range writepathSizes {
		fmt.Fprintf(&out, "%-8d", size)
		for _, qd := range writepathDepths {
			winner, best := 0, -1.0
			for i, strategy := range writepathStrategies {
				if c := results[strategy][[2]int{size, qd}]; c.tput > best {
					winner, best = i, c.tput
				}
			}
			r.Metric(fmt.Sprintf("winner_s%d_qd%d", size, qd), float64(winner), "idx")
			fmt.Fprintf(&out, " %-13s", writepathStrategies[winner])
		}
		out.WriteByte('\n')
	}
	return out.String(), nil
}
