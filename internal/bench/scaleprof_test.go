package bench

import "testing"

func BenchmarkScaleExp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, _ := Get("scale")
		_, _, err := e.RunWithReport(Params{Scale: 0.02, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
	}
}
