package bench

import (
	"errors"
	"fmt"

	"share/internal/ftl"
	"share/internal/randfill"
	"share/internal/sim"
	"share/internal/ssd"
)

// The smoke experiment is the fast end-to-end check behind `make
// bench-json`: a small aged device driven at queue depth 4 by
// concurrent clients mixing every command class, reported through the
// full telemetry pipeline. It doubles as the determinism fixture — two
// runs with the same Params must produce byte-identical reports.
func init() {
	register(Experiment{
		ID:    "smoke",
		Title: "Smoke: mixed read/write/share/trim workload at queue depth 4 on an aged device",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			const (
				clients   = 4
				opsPerCli = 400
			)
			cfg := ssd.DefaultConfig(128)
			cfg.QueueDepth = 4
			dev, err := ssd.New("smoke", cfg)
			if err != nil {
				return "", err
			}
			setup := sim.NewSoloTask("setup")
			if err := dev.Age(setup, 0.5, 0.2, p.Seed); err != nil {
				return "", err
			}
			dev.ResetStats() // measure the mixed workload only, not the aging

			span := dev.Capacity() / 2
			s := sim.NewScheduler()
			var end sim.Duration
			errs := make([]error, clients)
			for i := 0; i < clients; i++ {
				i := i
				s.Go(fmt.Sprintf("cli%d", i), func(task *sim.Task) {
					rng := newRand(p.Seed + int64(i) + 1)
					fill := randfill.New(rng)
					page := make([]byte, dev.PageSize())
					for n := 0; n < opsPerCli; n++ {
						lpn := uint32(rng.Intn(span))
						var err error
						switch n % 8 {
						case 0, 1, 2:
							fill.Fill(page)
							err = dev.WritePage(task, lpn, page)
						case 3, 4:
							if rerr := dev.ReadPage(task, lpn, page); rerr != nil &&
								!errors.Is(rerr, ftl.ErrUnmapped) {
								err = rerr
							}
						case 5:
							src := uint32(rng.Intn(span))
							if serr := dev.Share(task, []ssd.Pair{{Dst: lpn, Src: src, Len: 1}}); serr != nil &&
								!errors.Is(serr, ftl.ErrUnmapped) {
								err = serr
							}
						case 6:
							err = dev.Trim(task, lpn, 1)
						case 7:
							err = dev.Flush(task)
						}
						if err != nil {
							errs[i] = err
							return
						}
					}
					if err := dev.Flush(task); err != nil {
						errs[i] = err
					}
					if task.Now() > end {
						end = task.Now()
					}
				})
			}
			s.Run()
			for _, err := range errs {
				if err != nil {
					return "", err
				}
			}

			st := dev.Stats()
			elapsed := float64(end) / float64(sim.Second)
			totalOps := float64(clients * opsPerCli)
			r.Metric("ops", totalOps, "ops")
			r.Metric("throughput", totalOps/elapsed, "ops/s")
			r.Metric("write_amplification", st.WriteAmplification(), "x")
			r.Device("smoke", dev)

			out := fmt.Sprintf(
				"smoke: %d clients x %d ops at queue depth %d in %.3fs virtual (%.0f ops/s)\n"+
					"host writes %d, NAND programs %d, WA %.3f, GC events %d, shares %d\n",
				clients, opsPerCli, dev.QueueDepth(), elapsed, totalOps/elapsed,
				st.FTL.HostWrites, st.Chip.Programs, st.WriteAmplification(),
				st.FTL.GCEvents, st.FTL.Shares)
			return out, nil
		},
	})
}
