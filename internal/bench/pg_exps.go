package bench

import (
	"fmt"

	"share/internal/fsim"
	"share/internal/pgmini"
	"share/internal/sim"
	"share/internal/ssd"
	"share/internal/stats"
)

func ssdDefault(blocks int) ssd.Config {
	if blocks < 64 {
		blocks = 64
	}
	return ssd.DefaultConfig(blocks)
}

func ssdNew(name string, cfg ssd.Config) (*ssd.Device, error) { return ssd.New(name, cfg) }

func init() {
	register(Experiment{
		ID:    "pgfpw",
		Title: "§5.3.1 in-text: PostgreSQL full_page_writes with pgbench",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			txns := scaled(40_000, p.Scale)
			// pgbench scale: large enough that account touches are mostly
			// first touches since the last checkpoint (uniform access on a
			// big table), which is what makes full_page_writes expensive.
			scale := scaled(500, p.Scale)
			if scale < 10 {
				scale = 10
			}
			tb := stats.NewTable("Mode", "TPS", "WAL MB", "WAL pages", "Full images")
			var tps [3]float64
			var walMB [3]float64
			modes := []pgmini.Mode{pgmini.FPWOn, pgmini.FPWOff, pgmini.FPWShare}
			for i, mode := range modes {
				dev, task, err := newDataDevice(p, "pgdev")
				if err != nil {
					return "", err
				}
				fs, err := fsim.Format(task, dev, 256)
				if err != nil {
					return "", err
				}
				// PostgreSQL keeps its WAL on the same class of flash as
				// the data (no separate enterprise log drive here), so WAL
				// volume translates directly into transaction latency.
				lcfg := ssdDefault(scaled(paperLogBlocks, p.Scale))
				// Power-loss-protected, so the fsync cost is the WAL page
				// programs themselves — making WAL volume the bottleneck,
				// as in the paper's observation that the throughput gain
				// mirrors the WAL reduction.
				lcfg.FTL.PowerCapacitor = true
				logDev, err := ssdNew("pgwal", lcfg)
				if err != nil {
					return "", err
				}
				// shared_buffers sized to hold the working set, as a tuned
				// PostgreSQL would be: the backend then waits only on WAL.
				poolBytes := int64(scale)*2500/40*4096*2 + 1<<20
				db, err := pgmini.Open(task, fs, logDev, pgmini.Config{
					Scale:           scale,
					Mode:            mode,
					PoolBytes:       poolBytes,
					CheckpointEvery: txns / 8,
				})
				if err != nil {
					return "", err
				}
				db.Background = sim.NewSoloTask("checkpointer")
				rng := newRand(p.Seed)
				start := task.Now()
				for n := 0; n < txns; n++ {
					if err := db.RunTxn(task, rng); err != nil {
						return "", err
					}
				}
				elapsed := float64(task.Now()-start) / float64(sim.Second)
				st := db.Stats()
				tps[i] = float64(st.Commits) / elapsed
				walMB[i] = mb(db.WALBytes())
				tb.AddRow(mode.String(), fmtThroughput(tps[i]),
					fmt.Sprintf("%.1f", walMB[i]), st.WALPages, st.FullImages)
				r.Metric(mode.String()+"_tps", tps[i], "tps")
				r.Metric(mode.String()+"_wal", walMB[i], "MB")
				r.Device(mode.String()+"-data", dev)
				r.Engine(mode.String(), st.Degraded, map[string]int64{
					"commits":               st.Commits,
					"full_images":           st.FullImages,
					"wal_read_truncations":  st.WALReadTruncations,
					"read_only_transitions": st.ReadOnlyTransitions,
				})
			}
			out := tb.String()
			out += fmt.Sprintf("\nfull_page_writes off vs on: %.2fx throughput, WAL shrinks by %.1f MB.\n",
				tps[1]/tps[0], walMB[0]-walMB[1])
			out += "Paper: throughput approximately doubled with the option off; the WAL\n" +
				"reduction matched the total data pages written. SHARE achieves the\n" +
				"off-mode speed while keeping torn-page safety.\n"
			return out, nil
		},
	})
}
