package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// TestWritepathJSONDeterministic: the writepath taxonomy report — 27
// cloned-device cells across three placement strategies — must serialize
// to byte-identical JSON across identically-seeded runs (CI regenerates
// BENCH_writepath.json and diffs it), and the crossover map must carry a
// winner metric for every (IO size, queue depth) cell.
func TestWritepathJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("ages three devices, twice; skipped in -short")
	}
	e, err := Get("writepath")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		_, rep, err := e.RunWithReport(Params{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateReportJSON(data); err != nil {
			t.Fatalf("invalid report: %v\n%s", err, data)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identically-seeded writepath runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}

	var rep Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	metrics := map[string]float64{}
	for _, m := range rep.Metrics {
		metrics[m.Name] = m.Value
	}
	for _, size := range writepathSizes {
		for _, qd := range writepathDepths {
			name := fmt.Sprintf("winner_s%d_qd%d", size, qd)
			w, ok := metrics[name]
			if !ok {
				t.Fatalf("crossover map missing %s", name)
			}
			if w < 0 || int(w) >= len(writepathStrategies) {
				t.Fatalf("%s = %v, not a strategy index", name, w)
			}
			for _, strategy := range writepathStrategies {
				tn := fmt.Sprintf("tput_%s_s%d_qd%d", strategy, size, qd)
				if metrics[tn] <= 0 {
					t.Fatalf("cell metric %s missing or non-positive", tn)
				}
			}
		}
	}
}
