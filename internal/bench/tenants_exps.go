package bench

import (
	"fmt"
	"strings"

	"share/internal/couch"
	"share/internal/fsim"
	"share/internal/qos"
	"share/internal/sim"
	"share/internal/ssd"
)

// The tenants experiment measures the concurrent multi-tenant serving
// stack: several closed-loop clients, spread across per-tenant couch
// stores in one file system on one 4-channel device behind fair-share
// admission, write batched documents at the same virtual time. Within a
// tenant the store latch serializes sessions; across tenants the only
// shared stages are the file-system metadata latch and the device, so
// throughput must scale with client count until the channels saturate.
// The BENCH_tenants.json regression pins that scaling (client speedup at
// 4 tenants) and the fairness of admission (per-tenant billed service
// stays balanced).
func init() {
	register(Experiment{
		ID:    "tenants",
		Title: "Tenants: multi-tenant serving throughput vs clients and tenants",
		Run:   runTenants,
	})
}

const (
	tenantsBlocks    = 256
	tenantsOpsPerCli = 150
	tenantsValBytes  = 1024
	tenantsBatch     = 8
)

var (
	tenantsTenants = []int{1, 2, 4}
	tenantsClients = []int{1, 2, 4, 8}
)

// tenantsPoint runs one (tenants, clients) sweep point and returns the
// write throughput in ops/s, the per-tenant billed service from the
// admission gate, and the device for telemetry.
func tenantsPoint(p Params, tenants, clients int) (float64, map[string]sim.Duration, *ssd.Device, error) {
	cfg := ssd.DefaultConfig(tenantsBlocks)
	cfg.Geometry.Channels = 4
	cfg.Geometry.DiesPerChannel = 1
	dev, err := ssd.New(fmt.Sprintf("tenants-t%d-c%d", tenants, clients), cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	adm := qos.NewFairShare(0)
	dev.SetAdmission(adm)
	setup := sim.NewSoloTask("setup")
	fs, err := fsim.Format(setup, dev, 64)
	if err != nil {
		return 0, nil, nil, err
	}
	stores := make([]*couch.Store, tenants)
	for i := range stores {
		stores[i], err = couch.Open(setup, fs, couch.Config{
			Name:      fmt.Sprintf("tenant%d.couch", i),
			BatchSize: tenantsBatch,
		})
		if err != nil {
			return 0, nil, nil, err
		}
	}
	t0 := setup.Now()

	s := sim.NewScheduler()
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		c := c
		tenant := c % tenants
		s.Go(fmt.Sprintf("cli%d", c), func(task *sim.Task) {
			task.AdvanceTo(t0)
			task.SetTenant(fmt.Sprintf("tenant%d", tenant))
			rng := newRand(p.Seed + int64(c) + 1)
			st := stores[tenant]
			val := make([]byte, tenantsValBytes)
			for n := 0; n < tenantsOpsPerCli; n++ {
				rng.Read(val)
				key := []byte(fmt.Sprintf("c%dk%03d", c, rng.Intn(64)))
				if err := st.Set(task, key, val); err != nil {
					errs[c] = err
					return
				}
			}
			if err := st.Commit(task); err != nil {
				errs[c] = err
			}
		})
	}
	end := s.Run()
	for _, err := range errs {
		if err != nil {
			return 0, nil, nil, err
		}
	}
	elapsed := float64(end-t0) / float64(sim.Second)
	tput := float64(clients*tenantsOpsPerCli) / elapsed
	consumed := adm.Stats(sim.NewSoloTask("stats")).Consumed
	return tput, consumed, dev, nil
}

func runTenants(p Params, r *Report) (string, error) {
	p.setDefaults()
	tput := map[int]map[int]float64{}
	var out strings.Builder
	fmt.Fprintf(&out, "tenants: batched 1 KiB document writes, %d-block 4-channel device, fair-share admission\n",
		tenantsBlocks)
	fmt.Fprintf(&out, "%-10s", "tenants")
	for _, c := range tenantsClients {
		fmt.Fprintf(&out, " cli=%-8d", c)
	}
	out.WriteByte('\n')
	maxTenants := tenantsTenants[len(tenantsTenants)-1]
	maxClients := tenantsClients[len(tenantsClients)-1]
	for _, tn := range tenantsTenants {
		tput[tn] = map[int]float64{}
		fmt.Fprintf(&out, "%-10d", tn)
		for _, cl := range tenantsClients {
			v, consumed, dev, err := tenantsPoint(p, tn, cl)
			if err != nil {
				return "", err
			}
			tput[tn][cl] = v
			r.Metric(fmt.Sprintf("tput_t%d_c%d", tn, cl), v, "ops/s")
			fmt.Fprintf(&out, " %-11s", fmtThroughput(v))
			if tn == maxTenants && cl == maxClients {
				r.Device(fmt.Sprintf("t%d_c%d", tn, cl), dev)
				// Fairness: smallest over largest per-tenant billed
				// service at the fullest sweep point — 1.0 is perfectly
				// even, small values mean a tenant was starved.
				var min, max sim.Duration
				for _, c := range consumed {
					if min == 0 || c < min {
						min = c
					}
					if c > max {
						max = c
					}
				}
				fair := 0.0
				if max > 0 {
					fair = float64(min) / float64(max)
				}
				r.Metric(fmt.Sprintf("fairness_t%d_c%d", tn, cl), fair, "ratio")
			}
		}
		out.WriteByte('\n')
	}
	speedup := 0.0
	if base := tput[maxTenants][1]; base > 0 {
		speedup = tput[maxTenants][maxClients] / base
	}
	r.Metric(fmt.Sprintf("speedup_t%d_c%d_over_c1", maxTenants, maxClients), speedup, "x")
	fmt.Fprintf(&out, "%d-tenant speedup from 1 to %d clients: %s\n",
		maxTenants, maxClients, ratio(tput[maxTenants][maxClients], tput[maxTenants][1]))
	return out.String(), nil
}
