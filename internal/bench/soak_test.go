package bench

import (
	"bytes"
	"testing"
)

// TestSoakScrubberHoldsZero is the acceptance check for media aging and
// self-healing: across >= 3 simulated drive-writes on endogenously
// decaying media, the patrol scrubber must hold host-visible uncorrectable
// reads (and pages lost during relocation) at zero, while the unscrubbed
// control demonstrably degrades — the contrast that proves the scrubber is
// load-bearing rather than the model being toothless.
func TestSoakScrubberHoldsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("ages a device through several drive-writes; skipped in -short")
	}
	e, err := Get("soak")
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := e.RunWithReport(Params{})
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]float64{}
	for _, m := range rep.Metrics {
		metrics[m.Name] = m.Value
	}
	if dw := metrics["drive_writes"]; dw < 3 {
		t.Fatalf("soak covered only %.2f drive-writes, want >= 3\n%s", dw, out)
	}
	if u := metrics["uncorrectable_on"]; u != 0 {
		t.Fatalf("patrol run lost %.0f reads, want 0\n%s", u, out)
	}
	if l := metrics["lost_pages_on"]; l != 0 {
		t.Fatalf("patrol run lost %.0f pages during relocation, want 0\n%s", l, out)
	}
	if u := metrics["uncorrectable_off"]; u == 0 {
		t.Fatalf("unscrubbed control lost nothing — the control is not a control\n%s", out)
	}
	if r := metrics["patrol_refreshes"]; r == 0 {
		t.Fatalf("patrol never refreshed a block\n%s", out)
	}
	// The ECC ladder must have been exercised on the way down: the control
	// run escalates reads into soft decodes before losing them.
	if sd := metrics["soft_decodes_off"]; sd == 0 {
		t.Fatalf("control run never soft-decoded a read\n%s", out)
	}
	// Health telemetry: the control's worst-block error rate must exceed
	// the patrolled device's — refreshing resets retention and disturb.
	if on, off := metrics["rber_max_on"], metrics["rber_max_off"]; on <= 0 || off <= on {
		t.Fatalf("RBER contrast missing: patrol %.3g vs control %.3g\n%s", on, off, out)
	}
}

// TestSoakJSONDeterministic pins the soak report bytes: two
// identically-seeded runs of the full aging workload — media decay, ECC
// escalations, patrol scheduling and all — must serialize identically.
func TestSoakJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("ages two devices twice; skipped in -short")
	}
	e, err := Get("soak")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Seed: 7}
	run := func() []byte {
		_, rep, err := e.RunWithReport(p)
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateReportJSON(data); err != nil {
			t.Fatalf("invalid report: %v\n%s", err, data)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identically-seeded soak runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
