package bench

import (
	"fmt"
	"math/rand"

	"share/internal/extcache"
	"share/internal/fsim"
	"share/internal/innodb"
	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

// The cache experiment measures the flash-extended buffer cache (FaCE-
// style second tier behind the InnoDB pool, internal/extcache): the
// steady-state throughput gain from serving pool misses off a fast
// low-latency cache device instead of the slow MLC data drive, and the
// headline robustness number — recovery-to-peak-throughput after a
// whole-machine crash — for three restart legs:
//
//	warm    — the persistent cache map survives the crash; entries are
//	          content-revalidated at mount and hits resume immediately.
//	cold    — the cache device is lost (replaced blank); the tier must
//	          re-warm through evictions, paying fill programs on top of
//	          slow-tier misses.
//	faulted — the cache device survives but returns seeded uncorrectable
//	          reads; revalidation and verify-on-read drop entries, and
//	          the tier limps back to peak between warm and cold.
//
// Sizing is fixed rather than Scale-derived: the recovery contrast
// depends on the balance between pool frames, working-set pages and the
// two tiers' latencies, so the rig is always the same small stack and
// only Seed varies (as the soak experiment does).

const (
	cacheKeys        = 384 // ~90 leaf pages, 11x the 8-frame pool
	cacheWarmTxns    = 250
	cacheSteadyTxns  = 250
	cacheReadsPerTxn = 3
	cacheWindowTxns  = 25  // recovery throughput window
	cacheMaxWindows  = 80  // give up and report the cap
	cachePeakFrac    = 0.9 // "back to peak" = 90% of steady-state
)

// cacheRig is one full stack: slow MLC data drive + fsim, fast
// power-capped WAL drive, and (unless baseline) the fast cache tier.
type cacheRig struct {
	task  *sim.Task
	data  *ssd.Device
	log   *ssd.Device
	cache *ssd.Device
	eng   *innodb.Engine
	tbl   *innodb.Table
	cfg   innodb.Config
}

// newCacheTierDevice builds the dedicated cache drive: small, with the
// read-optimized timing of a low-latency NVMe part — 3.5x faster reads
// than the MLC data drive, which is the whole point of the tier.
func newCacheTierDevice(name string) (*ssd.Device, error) {
	cfg := ssd.DefaultConfig(128)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.Timing = nand.Timing{
		ReadPage: 25 * sim.Microsecond,
		Program:  200 * sim.Microsecond,
		Erase:    1000 * sim.Microsecond,
		Transfer: 5 * sim.Microsecond,
	}
	return ssd.New(name, cfg)
}

func newCacheRig(p Params, withCache bool) (*cacheRig, error) {
	dataCfg := ssd.DefaultConfig(512)
	dataCfg.Geometry.PageSize = 512
	dataCfg.Geometry.PagesPerBlock = 32
	data, err := ssd.New("cachebench-data", dataCfg)
	if err != nil {
		return nil, err
	}
	task := sim.NewSoloTask("cachebench")
	fs, err := fsim.Format(task, data, 64)
	if err != nil {
		return nil, err
	}
	logCfg := ssd.DefaultConfig(256)
	logCfg.Geometry.PageSize = 512
	logCfg.Geometry.PagesPerBlock = 32
	logCfg.Timing = nand.Timing{
		ReadPage: 20 * sim.Microsecond,
		Program:  50 * sim.Microsecond,
		Erase:    500 * sim.Microsecond,
		Transfer: 5 * sim.Microsecond,
	}
	logCfg.FTL.PowerCapacitor = true
	logDev, err := ssd.New("cachebench-log", logCfg)
	if err != nil {
		return nil, err
	}
	cfg := innodb.Config{
		PageSize:  1024,
		PoolBytes: 8 * 1024, // 8 frames: the working set lives in the cache tier
		FlushMode: innodb.DWBOn,
		DWBPages:  8,
		DataBytes: 1024 * 1024,
		LogPages:  4096,
	}
	var cacheDev *ssd.Device
	if withCache {
		cacheDev, err = newCacheTierDevice("cachebench-cache")
		if err != nil {
			return nil, err
		}
		cfg.CacheDev = cacheDev
	}
	eng, err := innodb.Open(task, fs, logDev, cfg)
	if err != nil {
		return nil, err
	}
	tbl, err := eng.CreateTable(task, "t")
	if err != nil {
		return nil, err
	}
	r := &cacheRig{task: task, data: data, log: logDev, cache: cacheDev,
		eng: eng, tbl: tbl, cfg: cfg}
	// Load one key per transaction: the no-steal protocol pins a
	// transaction's dirty pages, and the pool is far smaller than the
	// working set.
	for i := 0; i < cacheKeys; i++ {
		tx := eng.Begin(task)
		if err := tx.Put(tbl, cacheBenchKey(i), cacheBenchVal(i)); err != nil {
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	if err := eng.Checkpoint(task); err != nil {
		return nil, err
	}
	return r, nil
}

func cacheBenchKey(i int) []byte { return []byte(fmt.Sprintf("bk%04d", i)) }

// cacheBenchVal pads values to ~160 bytes so the 384-key table spans far
// more btree pages than the pool holds.
func cacheBenchVal(i int) []byte {
	v := make([]byte, 160)
	copy(v, fmt.Sprintf("val%04d-", i))
	for j := 8; j < len(v); j++ {
		v[j] = byte(i*5 + j)
	}
	return v
}

// readTxns runs n read-only transactions of cacheReadsPerTxn zipfian
// point reads each and returns the ops-per-virtual-second throughput.
func (r *cacheRig) readTxns(n int, zipf *rand.Zipf) (float64, error) {
	start := r.task.Now()
	for i := 0; i < n; i++ {
		tx := r.eng.Begin(r.task)
		for k := 0; k < cacheReadsPerTxn; k++ {
			key := cacheBenchKey(int(zipf.Uint64()))
			if _, ok, err := tx.Get(r.tbl, key); err != nil {
				tx.Rollback()
				return 0, err
			} else if !ok {
				tx.Rollback()
				return 0, fmt.Errorf("key %s lost", key)
			}
		}
		tx.Rollback()
	}
	return opsPerSec(n*cacheReadsPerTxn, r.task.Now()-start), nil
}

func opsPerSec(ops int, elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / (float64(elapsed) / float64(sim.Second))
}

// cacheLeg is the outcome of one crash-restart leg.
type cacheLeg struct {
	recoveryNS int64 // virtual time from crash to the first at-peak window
	windows    int   // read windows consumed before reaching peak
	reached    bool
	kept       int64 // map entries surviving revalidation
	dropped    int64
	hitRate    float64 // cache hit rate over the recovery windows
	stats      innodb.Stats
}

// runCacheLeg builds the cached rig, measures steady state, then
// crash-restarts it in the given mode ("warm", "cold", "faulted") and
// measures the virtual time back to cachePeakFrac of steady throughput.
// The pre-crash phase is seed-identical across legs.
func runCacheLeg(p Params, leg string) (*cacheRig, float64, float64, *cacheLeg, error) {
	r, err := newCacheRig(p, true)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	zipf := rand.NewZipf(newRand(p.Seed+7), 1.1, 1, uint64(cacheKeys-1))
	if _, err := r.readTxns(cacheWarmTxns, zipf); err != nil {
		return nil, 0, 0, nil, err
	}
	before := r.eng.Cache().Stats()
	steady, err := r.readTxns(cacheSteadyTxns, zipf)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	after := r.eng.Cache().Stats()
	steadyHit := hitRate(after.Hits-before.Hits, after.Misses-before.Misses)
	// Persist the cache map (and quiesce the engine) so the warm leg has
	// something to revalidate, then power-cut everything.
	if err := r.eng.Checkpoint(r.task); err != nil {
		return nil, 0, 0, nil, err
	}
	crashStart := r.task.Now()
	for _, d := range []*ssd.Device{r.data, r.log, r.cache} {
		d.Crash()
		if err := d.Recover(r.task); err != nil {
			return nil, 0, 0, nil, err
		}
	}
	switch leg {
	case "warm":
	case "cold":
		// The cache device is lost in the crash: restart on a blank one.
		r.cache, err = newCacheTierDevice("cachebench-cache-cold")
		if err != nil {
			return nil, 0, 0, nil, err
		}
	case "faulted":
		// The cache device survives but its media is damaged: scheduled
		// uncorrectable reads land across revalidation and the first
		// recovery windows. The map header and entry pages load first, so
		// the bursts (starting at read 120) hit entry slots instead —
		// revalidation drops part of the working set and verify-on-read
		// drops more, putting this leg between warm and cold. Each burst
		// is three consecutive faulting reads: the FTL's ECC ladder
		// (plain, shifted-sense, soft-decode) absorbs anything shorter.
		plan := nand.NewFaultPlan(p.Seed + 31)
		for base := int64(120); base < 700; base += 32 {
			plan.AtRead(base, nand.FaultReadUncorrectable)
			plan.AtRead(base+1, nand.FaultReadUncorrectable)
			plan.AtRead(base+2, nand.FaultReadUncorrectable)
		}
		if err := r.cache.SetFaultPlan(plan); err != nil {
			return nil, 0, 0, nil, err
		}
	default:
		return nil, 0, 0, nil, fmt.Errorf("unknown leg %q", leg)
	}
	r.cfg.CacheDev = r.cache
	fs, err := fsim.Mount(r.task, r.data)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	r.eng, err = innodb.Open(r.task, fs, r.log, r.cfg)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	if r.tbl = r.eng.Table("t"); r.tbl == nil {
		return nil, 0, 0, nil, fmt.Errorf("table lost across recovery")
	}
	cst := r.eng.Cache().Stats()
	out := &cacheLeg{kept: cst.RevalidatedKept, dropped: cst.RevalidatedDropped}
	// Post-crash reads continue the zipfian stream; windows are scored
	// individually so the one-time mount cost lands in recoveryNS, not in
	// any window's throughput.
	recBefore := cst
	for w := 0; w < cacheMaxWindows; w++ {
		tput, err := r.readTxns(cacheWindowTxns, zipf)
		if err != nil {
			return nil, 0, 0, nil, err
		}
		out.windows = w + 1
		if tput >= cachePeakFrac*steady {
			out.reached = true
			break
		}
	}
	out.recoveryNS = r.task.Now() - crashStart
	recAfter := r.eng.Cache().Stats()
	out.hitRate = hitRate(recAfter.Hits-recBefore.Hits, recAfter.Misses-recBefore.Misses)
	out.stats = r.eng.Stats()
	return r, steady, steadyHit, out, nil
}

func hitRate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

func cacheEngineCounters(st innodb.Stats, cst extcache.Stats) map[string]int64 {
	m := innoEngineCounters(st)
	m["cache_hits"] = st.CacheHits
	m["cache_fills"] = st.CacheFills
	m["cache_verify_fails"] = st.CacheVerifyFails
	m["cache_revalidated_kept"] = cst.RevalidatedKept
	m["cache_revalidated_dropped"] = cst.RevalidatedDropped
	return m
}

func init() {
	register(Experiment{
		ID: "cache",
		Title: "Flash-extended buffer cache: steady-state gain and " +
			"recovery-to-peak-throughput, warm vs cold vs faulted restarts",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			// Baseline: identical stack and workload, no cache tier.
			base, err := newCacheRig(p, false)
			if err != nil {
				return "", err
			}
			zipf := rand.NewZipf(newRand(p.Seed+7), 1.1, 1, uint64(cacheKeys-1))
			if _, err := base.readTxns(cacheWarmTxns, zipf); err != nil {
				return "", err
			}
			baseTput, err := base.readTxns(cacheSteadyTxns, zipf)
			if err != nil {
				return "", err
			}

			legs := make(map[string]*cacheLeg, 3)
			var steady, steadyHit float64
			var warmRig *cacheRig
			for _, leg := range []string{"warm", "cold", "faulted"} {
				rig, s, h, out, err := runCacheLeg(p, leg)
				if err != nil {
					return "", fmt.Errorf("%s leg: %w", leg, err)
				}
				legs[leg] = out
				steady, steadyHit = s, h
				if leg == "warm" {
					warmRig = rig
				}
			}

			r.Metric("throughput_nocache", baseTput, "ops/s")
			r.Metric("throughput_cache", steady, "ops/s")
			r.Metric("cache_gain", steady/baseTput, "x")
			r.Metric("hit_rate_steady", steadyHit, "frac")
			for _, leg := range []string{"warm", "cold", "faulted"} {
				out := legs[leg]
				r.Metric("recovery_to_peak_"+leg, float64(out.recoveryNS)/float64(sim.Millisecond), "ms")
				r.Metric("recovery_windows_"+leg, float64(out.windows), "windows")
				r.Metric("revalidated_kept_"+leg, float64(out.kept), "pages")
				r.Metric("revalidated_dropped_"+leg, float64(out.dropped), "pages")
				r.Metric("recovery_hit_rate_"+leg, out.hitRate, "frac")
			}
			r.Device("cache_tier", warmRig.cache)
			r.Device("data_tier", warmRig.data)
			r.Engine("innodb_cache_warm", warmRig.eng.Stats().CacheDegraded,
				cacheEngineCounters(warmRig.eng.Stats(), warmRig.eng.Cache().Stats()))

			out := fmt.Sprintf(
				"cache: steady state %s ops/s with the cache tier vs %s without (%s, hit rate %.2f)\n"+
					"recovery to %.0f%% of peak after crash:\n"+
					"  warm    %8.1f ms  (%2d windows, %3d entries revalidated, recovery hit rate %.2f)\n"+
					"  faulted %8.1f ms  (%2d windows, %3d kept / %d dropped, recovery hit rate %.2f)\n"+
					"  cold    %8.1f ms  (%2d windows, blank cache, recovery hit rate %.2f)\n",
				fmtThroughput(steady), fmtThroughput(baseTput), ratio(steady, baseTput), steadyHit,
				cachePeakFrac*100,
				float64(legs["warm"].recoveryNS)/float64(sim.Millisecond), legs["warm"].windows,
				legs["warm"].kept, legs["warm"].hitRate,
				float64(legs["faulted"].recoveryNS)/float64(sim.Millisecond), legs["faulted"].windows,
				legs["faulted"].kept, legs["faulted"].dropped, legs["faulted"].hitRate,
				float64(legs["cold"].recoveryNS)/float64(sim.Millisecond), legs["cold"].windows,
				legs["cold"].hitRate)
			return out, nil
		},
	})
}
