package bench

import (
	"fmt"

	"share/internal/couch"
	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/ssd"
	"share/internal/stats"
	"share/internal/ycsb"
)

// couchRig builds an aged device + fs + couch store and loads the YCSB
// records.
func newCouchRig(p Params, share bool, batch int) (*couch.Store, *ssd.Device, *sim.Task, ycsb.Config, error) {
	dev, task, err := newDataDevice(p, "openssd")
	if err != nil {
		return nil, nil, nil, ycsb.Config{}, err
	}
	fs, err := fsim.Format(task, dev, 256)
	if err != nil {
		return nil, nil, nil, ycsb.Config{}, err
	}
	records := scaled(paperYCSBRecords, p.Scale)
	st, err := couch.Open(task, fs, couch.Config{
		ShareMode: share,
		BatchSize: batch,
		// Compact early enough that the old and new files fit side by
		// side during the swap (live data is ~25% of the drive).
		CompactThreshold: 0.45,
		DocCacheEntries:  records / 10,
		// Keep the index at the paper's depth (3 levels) at reduced
		// scale, so each original-mode update wanders the same number of
		// node pages as on the authors' 250k-document store.
		MaxFanout: fanoutForDepth3(records),
	})
	if err != nil {
		return nil, nil, nil, ycsb.Config{}, err
	}
	cfg := ycsb.Config{
		Records:   records,
		ValueSize: 4000,
		// Sized so even original-mode batch-1 amplification fits the
		// drive without a mid-run compaction; Figures 7 and 8 measure the
		// update path (compaction is Table 2's subject).
		Ops:  scaled(paperYCSBRecords, p.Scale) / 4,
		Seed: p.Seed,
	}
	if err := ycsb.Load(task, st, cfg); err != nil {
		return nil, nil, nil, ycsb.Config{}, err
	}
	dev.ResetStats()
	return st, dev, task, cfg, nil
}

// fanoutForDepth3 returns a per-node entry cap that makes a B+tree over
// n keys three levels deep (root -> internal -> leaf), as the paper's
// 250k-document index was.
func fanoutForDepth3(n int) int {
	f := 2
	for f*f*f < n {
		f++
	}
	if f < 4 {
		f = 4
	}
	return f
}

var batchSweep = []int{1, 4, 16, 64, 256}

func runYCSBSweep(p Params, w ycsb.Workload, r *Report) (*stats.Table, error) {
	tb := stats.NewTable("Batch", "Original (OPS)", "SHARE (OPS)", "Tput ratio",
		"Original (MB)", "SHARE (MB)", "Write ratio")
	lastBatch := batchSweep[len(batchSweep)-1]
	for _, batch := range batchSweep {
		var tput [2]float64
		var bytes [2]int64
		for i, share := range []bool{false, true} {
			st, dev, task, cfg, err := newCouchRig(p, share, batch)
			if err != nil {
				return nil, err
			}
			cfg.Workload = w
			before := st.Stats()
			res, err := ycsb.Run(task, st, cfg)
			if err != nil {
				return nil, err
			}
			after := st.Stats()
			// Update-path writes only (docs + wandering index nodes +
			// commit headers), as Figure 7(b) reports; compaction traffic
			// is Table 2's subject.
			pages := (after.DocPagesWritten - before.DocPagesWritten) +
				(after.NodePagesWritten - before.NodePagesWritten) +
				(after.HeaderPages - before.HeaderPages)
			tput[i] = res.Throughput
			bytes[i] = pages * int64(dev.PageSize())
			if batch == lastBatch {
				label := "original"
				if share {
					label = "share"
				}
				r.Device(fmt.Sprintf("%s-b%d", label, batch), dev)
				r.Engine(fmt.Sprintf("%s-b%d", label, batch), after.Degraded, map[string]int64{
					"commits":               after.Commits,
					"share_pairs":           after.SharePairs,
					"compactions":           after.Compactions,
					"read_only_transitions": after.ReadOnlyTransitions,
				})
			}
		}
		r.Metric(fmt.Sprintf("original_ops_b%d", batch), tput[0], "ops/s")
		r.Metric(fmt.Sprintf("share_ops_b%d", batch), tput[1], "ops/s")
		r.Metric(fmt.Sprintf("original_written_b%d", batch), mb(bytes[0]), "MB")
		r.Metric(fmt.Sprintf("share_written_b%d", batch), mb(bytes[1]), "MB")
		tb.AddRow(batch,
			fmtThroughput(tput[0]), fmtThroughput(tput[1]), ratio(tput[1], tput[0]),
			fmt.Sprintf("%.1f", mb(bytes[0])), fmt.Sprintf("%.1f", mb(bytes[1])),
			ratio(float64(bytes[0]), float64(bytes[1])))
	}
	return tb, nil
}

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Figure 7: YCSB workload-F on Couchbase — throughput and written data vs batch size",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			tb, err := runYCSBSweep(p, ycsb.WorkloadF, r)
			if err != nil {
				return "", err
			}
			return tb.String() + "\nPaper: SHARE wins 3.45x (batch 1) to 1.96x (batch 256);\n" +
				"write gap narrows 7.86x -> 1.64x as batching amortizes tree writes.\n", nil
		},
	})

	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8: YCSB workload-A on Couchbase — throughput vs batch size",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			tb, err := runYCSBSweep(p, ycsb.WorkloadA, r)
			if err != nil {
				return "", err
			}
			return tb.String() + "\nPaper: SHARE wins 2.23x (batch 1) to 1.61x (batch 256).\n", nil
		},
	})

	register(Experiment{
		ID:    "table2",
		Title: "Table 2: Couchbase compaction — elapsed time and written bytes",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			tb := stats.NewTable("Mode", "Elapsed (s)", "Written (MB)", "Docs moved")
			var elapsed [2]float64
			var written [2]float64
			for i, share := range []bool{false, true} {
				st, dev, task, cfg, err := newCouchRig(p, share, 16)
				if err != nil {
					return "", err
				}
				// Churn updates until the store holds substantial stale
				// data, as a long-running Couchbase would before its
				// compaction threshold trips.
				cfg.Workload = ycsb.WorkloadF
				cfg.Ops = cfg.Records / 4
				cfg.AutoCompact = false // accumulate stale data for one big compaction
				if _, err := ycsb.Run(task, st, cfg); err != nil {
					return "", err
				}
				dev.ResetStats()
				cs, err := st.Compact(task)
				if err != nil {
					return "", err
				}
				elapsed[i] = float64(cs.Elapsed) / float64(sim.Second)
				written[i] = mb(cs.BytesWritten)
				name := "Original"
				if share {
					name = "SHARE"
				}
				tb.AddRow(name, fmt.Sprintf("%.2f", elapsed[i]),
					fmt.Sprintf("%.1f", written[i]), cs.DocsMoved)
				key := "original"
				if share {
					key = "share"
				}
				r.Metric(key+"_compact_elapsed", elapsed[i], "s")
				r.Metric(key+"_compact_written", written[i], "MB")
				r.Device(key, dev)
			}
			out := tb.String()
			out += fmt.Sprintf("\nElapsed ratio %.1fx (paper 3.1x), written ratio %.1fx (paper 7.5x).\n",
				elapsed[0]/elapsed[1], written[0]/written[1])
			return out, nil
		},
	})
}

func init() {
	register(Experiment{
		ID: "abl-ycsb",
		Title: "Extension: all six YCSB workloads — SHARE's gain tracks the write " +
			"fraction (why the paper measured only A and F)",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			tb := stats.NewTable("Workload", "Mix", "Original (OPS)", "SHARE (OPS)", "Gain")
			mixes := map[ycsb.Workload]string{
				ycsb.WorkloadA: "50r/50u",
				ycsb.WorkloadB: "95r/5u",
				ycsb.WorkloadC: "100r",
				ycsb.WorkloadD: "95r/5i latest",
				ycsb.WorkloadE: "95scan/5i",
				ycsb.WorkloadF: "100 rmw",
			}
			for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC,
				ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadF} {
				var tput [2]float64
				for i, share := range []bool{false, true} {
					st, _, task, cfg, err := newCouchRig(p, share, 4)
					if err != nil {
						return "", err
					}
					cfg.Workload = w
					res, err := ycsb.Run(task, st, cfg)
					if err != nil {
						return "", err
					}
					tput[i] = res.Throughput
				}
				tb.AddRow(w.String(), mixes[w],
					fmtThroughput(tput[0]), fmtThroughput(tput[1]), ratio(tput[1], tput[0]))
				r.Metric("original_ops_"+w.String(), tput[0], "ops/s")
				r.Metric("share_ops_"+w.String(), tput[1], "ops/s")
			}
			return tb.String() + "\nSHARE leaves the read path untouched, so the read-intensive\nworkloads (B-E) see little change — exactly why §5.2 selects A and F.\n", nil
		},
	})
}
