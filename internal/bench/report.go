package bench

import (
	"encoding/json"
	"fmt"

	"share/internal/ftl"
	"share/internal/nand"
	"share/internal/ssd"
	"share/internal/stats"
)

// ReportSchema identifies the BENCH_*.json layout; bump it when a field
// changes meaning or disappears (adding fields is compatible).
const ReportSchema = "share-bench/v1"

// Metric is one named scalar an experiment reports (a cell of a paper
// table or a point on a figure).
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// ConfigInfo records the provenance of a run: everything needed to
// reproduce it bit-for-bit.
type ConfigInfo struct {
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
	// OpScale is recorded only when it departs from the default of 1, so
	// default-run reports stay byte-identical to their pinned fixtures.
	OpScale int `json:"op_scale,omitempty"`
}

// DeviceReport is the telemetry snapshot of one device at the end of the
// measured epoch: counters are epoch-scoped (post-ResetStats), latency
// distributions come from the device's metrics recorder, all in virtual
// time.
type DeviceReport struct {
	Label              string                   `json:"label"`
	Blocks             int                      `json:"blocks"`
	PageSize           int                      `json:"page_size"`
	QueueDepth         int                      `json:"queue_depth"`
	CapacityPages      int                      `json:"capacity_pages"`
	WriteAmplification float64                  `json:"write_amplification"`
	FTL                ftl.Stats                `json:"ftl"`
	Chip               nand.Stats               `json:"chip"`
	Latency            map[string]stats.Summary `json:"latency_ms,omitempty"`
	GCStallByCmd       map[string]int64         `json:"gc_stall_ns,omitempty"`
	Events             map[string]int64         `json:"events,omitempty"`

	// Parallelism telemetry, present only for die-scheduled devices
	// (explicit channel/die geometry); geometry-blind devices omit all
	// four fields, keeping their reports byte-identical to earlier runs.
	Channels       int               `json:"channels,omitempty"`
	DiesPerChannel int               `json:"dies_per_channel,omitempty"`
	Dies           []ssd.DieStat     `json:"dies,omitempty"`
	ChannelUtil    []ssd.ChannelStat `json:"channel_util,omitempty"`
}

// EngineReport is a host engine's robustness telemetry: recovery work
// (torn pages restored, redo applied, WAL replay truncations) and
// degradation state (read-only transitions), keyed by counter name so
// each engine reports the fields it has. Maps marshal with sorted keys,
// preserving report determinism.
type EngineReport struct {
	Label    string           `json:"label"`
	Counters map[string]int64 `json:"counters"`
	Degraded bool             `json:"degraded,omitempty"`
}

// Report is the machine-readable result of one experiment run, written
// as BENCH_<experiment>.json by cmd/sharebench -json. Two runs with the
// same Params produce byte-identical reports: every field derives from
// the deterministic virtual-time simulation, maps render with sorted
// keys, and no wall-clock time is recorded.
type Report struct {
	Schema     string         `json:"schema"`
	Experiment string         `json:"experiment"`
	Title      string         `json:"title"`
	Config     ConfigInfo     `json:"config"`
	Metrics    []Metric       `json:"metrics,omitempty"`
	Devices    []DeviceReport `json:"devices,omitempty"`
	Engines    []EngineReport `json:"engines,omitempty"`
	Output     string         `json:"output"`
}

// NewReport starts a report for one experiment run; p's defaults are
// applied first so the recorded provenance matches what actually ran.
func NewReport(e Experiment, p Params) *Report {
	p.setDefaults()
	c := ConfigInfo{Scale: p.Scale, Seed: p.Seed}
	if p.OpScale > 1 {
		c.OpScale = p.OpScale
	}
	return &Report{
		Schema:     ReportSchema,
		Experiment: e.ID,
		Title:      e.Title,
		Config:     c,
	}
}

// Metric appends one named scalar result.
func (r *Report) Metric(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// Device appends the full telemetry snapshot of dev under label: the
// epoch counters, derived write amplification, per-command latency
// summaries, GC-stall attribution and FTL event counts.
func (r *Report) Device(label string, dev *ssd.Device) {
	st := dev.Stats()
	rec := dev.Metrics()
	geo := dev.Geometry()
	dr := DeviceReport{
		Label:              label,
		Blocks:             geo.Blocks,
		PageSize:           geo.PageSize,
		QueueDepth:         dev.QueueDepth(),
		CapacityPages:      dev.Capacity(),
		WriteAmplification: st.WriteAmplification(),
		FTL:                st.FTL,
		Chip:               st.Chip,
		Latency:            rec.LatencySummaries(),
		GCStallByCmd:       rec.GCStallByCmd(),
		Events:             rec.EventCounts(),
	}
	if dev.DieScheduled() {
		dr.Channels = geo.NumChannels()
		dr.DiesPerChannel = geo.DiesPerChannel
		dr.Dies = dev.DieTelemetry()
		dr.ChannelUtil = dev.ChannelTelemetry()
	}
	r.Devices = append(r.Devices, dr)
}

// Engine appends a host engine's robustness counters under label.
func (r *Report) Engine(label string, degraded bool, counters map[string]int64) {
	r.Engines = append(r.Engines, EngineReport{Label: label, Counters: counters, Degraded: degraded})
}

// JSON renders the report with stable formatting (indented, sorted map
// keys, trailing newline).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ValidateReportJSON checks that data parses as a report of the current
// schema with the identity fields present — the smoke check `make
// bench-json` applies to generated files.
func ValidateReportJSON(data []byte) error {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench: report does not parse: %w", err)
	}
	if r.Schema != ReportSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.Experiment == "" || r.Title == "" {
		return fmt.Errorf("bench: report missing experiment identity")
	}
	if r.Config.Scale <= 0 || r.Config.Seed == 0 {
		return fmt.Errorf("bench: report missing config provenance")
	}
	if r.Output == "" {
		return fmt.Errorf("bench: report has no output")
	}
	return nil
}
