// Package bench is the experiment harness: one named experiment per table
// and figure in the paper's evaluation (§5), each rebuilding the full
// stack — aged SHARE SSD, file system, engine, workload — and printing
// paper-style rows. cmd/sharebench and the repository's bench_test.go are
// thin wrappers around this registry.
package bench

import (
	"fmt"

	"share/internal/fsim"
	"share/internal/innodb"
	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

// Params control an experiment run.
type Params struct {
	// Scale multiplies every size against the paper's setup (device 4 GiB,
	// LinkBench DB 1.5 GiB, 50–150 MiB buffer pool, YCSB 250k×4 KiB docs).
	// The shipped defaults keep runs in seconds; Scale=1 reproduces the
	// paper's sizes.
	Scale float64
	Seed  int64
	// OpScale multiplies the operation counts of throughput-style
	// experiments (currently the scale sweep) without touching device
	// sizes: OpScale=10 issues 10× the writes against the same geometry,
	// for profiling and soak-style stress at 10–100× the default volume.
	OpScale int
}

func (p *Params) setDefaults() {
	if p.Scale == 0 {
		p.Scale = 0.02
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.OpScale < 1 {
		p.OpScale = 1
	}
}

// paper-sized baselines (Scale == 1).
const (
	paperDeviceBlocks = 8192 // 4 GiB of 128×4 KiB blocks (OpenSSD)
	paperLogBlocks    = 4096
	paperLinkNodes    = 400_000
	paperLinkRequests = 10_000 // per client, 16 clients
	paperBufferMB     = 50
	paperYCSBRecords  = 250_000
	paperYCSBOps      = 250_000
)

func scaled(base int, scale float64) int {
	v := int(float64(base) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// newDataDevice builds the OpenSSD-like data drive and pre-ages it so
// garbage collection is active during the measured run, as §5.1 does.
func newDataDevice(p Params, name string) (*ssd.Device, *sim.Task, error) {
	blocks := scaled(paperDeviceBlocks, p.Scale)
	if blocks < 64 {
		blocks = 64
	}
	cfg := ssd.DefaultConfig(blocks)
	dev, err := ssd.New(name, cfg)
	if err != nil {
		return nil, nil, err
	}
	task := sim.NewSoloTask("setup")
	// Aging: fill the logical space with junk and churn part of it so the
	// flash is worn and block contents are scrambled, then discard the
	// logical space the way mke2fs does before the file system is laid
	// down. The drive starts the benchmark with its free-block pool low
	// (reclaim happens lazily through GC), which is the aged steady state
	// §5.1 prepares.
	if err := dev.Age(task, 0.95, 0.3, p.Seed); err != nil {
		return nil, nil, err
	}
	if err := dev.Trim(task, 0, dev.Capacity()); err != nil {
		return nil, nil, err
	}
	return dev, task, nil
}

// newLogDevice models the Samsung PM853T used for the MySQL redo log: a
// fast, power-loss-protected drive.
func newLogDevice(p Params) (*ssd.Device, error) {
	blocks := scaled(paperLogBlocks, p.Scale)
	if blocks < 64 {
		blocks = 64
	}
	cfg := ssd.DefaultConfig(blocks)
	cfg.Timing = nand.Timing{
		ReadPage: 20 * sim.Microsecond,
		Program:  50 * sim.Microsecond,
		Erase:    500 * sim.Microsecond,
		Transfer: 5 * sim.Microsecond,
	}
	cfg.FTL.PowerCapacitor = true
	return ssd.New("logdev", cfg)
}

// linkRig is a ready-to-run MySQL/InnoDB + LinkBench setup.
type linkRig struct {
	dev  *ssd.Device
	eng  *innodb.Engine
	task *sim.Task
}

// newLinkRig builds device, fs and engine; the caller sizes and loads the
// LinkBench graph against the device capacity.
func newLinkRig(p Params, mode innodb.FlushMode, pageSize int, bufferMB float64) (*linkRig, error) {
	dev, task, err := newDataDevice(p, "openssd")
	if err != nil {
		return nil, err
	}
	fs, err := fsim.Format(task, dev, 256)
	if err != nil {
		return nil, err
	}
	logDev, err := newLogDevice(p)
	if err != nil {
		return nil, err
	}
	poolBytes := int64(bufferMB * 1024 * 1024 * p.Scale)
	if poolBytes < int64(pageSize)*64 {
		poolBytes = int64(pageSize) * 64
	}
	// Size the tablespace to ~60% of the device; the loaded database fills
	// ~2/3 of it, like 1.5 GiB on 4 GiB.
	dataBytes := dev.CapacityBytes() * 60 / 100
	eng, err := innodb.Open(task, fs, logDev, innodb.Config{
		PageSize:  pageSize,
		PoolBytes: poolBytes,
		FlushMode: mode,
		DWBPages:  32,
		DataBytes: dataBytes,
		LogPages:  uint32(logDev.Capacity()) / 2,
	})
	if err != nil {
		return nil, err
	}
	return &linkRig{dev: dev, eng: eng, task: task}, nil
}

func fmtThroughput(v float64) string { return fmt.Sprintf("%.0f", v) }

func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

func mb(bytes int64) float64 { return float64(bytes) / (1024 * 1024) }

// innoEngineCounters converts innodb stats into the report's engine
// robustness counters: recovery work and degradation visibility.
func innoEngineCounters(st innodb.Stats) map[string]int64 {
	return map[string]int64{
		"commits":               st.Commits,
		"share_pairs":           st.SharePairs,
		"torn_restored":         st.TornRestored,
		"redo_applied":          st.RedoApplied,
		"read_only_transitions": st.ReadOnlyTransitions,
	}
}
