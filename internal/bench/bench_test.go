package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact and ablation must be registered.
	want := []string{
		"fig5a", "fig5b", "fig6", "table1", "fig7", "fig8", "table2",
		"pgfpw", "abl-sharetable", "abl-batch", "abl-op", "abl-atomic", "abl-sqlite", "abl-queue", "abl-ycsb",
		"smoke", "scale", "soak", "streams", "tenants", "writepath", "cache",
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Errorf("experiment %s missing: %v", id, err)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("registry not sorted: %s >= %s", all[i-1].ID, all[i].ID)
		}
	}
	for _, e := range all {
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

// TestExperimentsRunTiny executes a representative subset end to end at a
// very small scale; the full set runs via bench_test.go benchmarks and
// cmd/sharebench.
func TestExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long; skipped in -short")
	}
	for _, id := range []string{"table2", "pgfpw", "abl-batch"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			out, rep, err := e.RunWithReport(Params{Scale: 0.004, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, "\n") {
				t.Fatalf("suspiciously short output: %q", out)
			}
			data, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateReportJSON(data); err != nil {
				t.Fatalf("report invalid: %v", err)
			}
			if len(rep.Metrics) == 0 {
				t.Fatal("experiment reported no metrics")
			}
		})
	}
}

// TestScaleSpeedup is the acceptance check for die-level parallelism:
// the scale experiment must show the 4-channel array at least doubling
// 1-channel throughput at queue depth 8, with die telemetry attached to
// the deepest sweep points.
func TestScaleSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 15 sweep points; skipped in -short")
	}
	e, err := Get("scale")
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := e.RunWithReport(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "speedup") {
		t.Fatalf("output missing speedup row:\n%s", out)
	}
	metrics := map[string]float64{}
	for _, m := range rep.Metrics {
		metrics[m.Name] = m.Value
	}
	if sp := metrics["speedup_c4_over_c1_qd8"]; sp < 2 {
		t.Fatalf("4-channel speedup %.2fx < 2x at qd=8\n%s", sp, out)
	}
	var withDies int
	for _, d := range rep.Devices {
		if len(d.Dies) > 0 {
			withDies++
			for _, ds := range d.Dies {
				if ds.BusyNs <= 0 {
					t.Fatalf("device %s die %d idle: %+v", d.Label, ds.Die, ds)
				}
			}
		}
	}
	if withDies != 3 {
		t.Fatalf("%d device reports carry die telemetry, want 3", withDies)
	}
}

// TestTenantsScaling is the acceptance check for concurrent multi-tenant
// serving: at 4 tenants, adding clients must keep raising throughput
// (at least 2x going from 1 to 8 clients), per-tenant fair-share billing
// must stay balanced, and the deepest sweep point must carry device
// telemetry with every die busy.
func TestTenantsScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 12 sweep points; skipped in -short")
	}
	e, err := Get("tenants")
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := e.RunWithReport(Params{})
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]float64{}
	for _, m := range rep.Metrics {
		metrics[m.Name] = m.Value
	}
	if sp := metrics["speedup_t4_c8_over_c1"]; sp < 2 {
		t.Fatalf("4-tenant client speedup %.2fx < 2x\n%s", sp, out)
	}
	// With symmetric closed-loop clients, no tenant should be starved:
	// min/max billed service at the deepest point stays above half.
	if f := metrics["fairness_t4_c8"]; f < 0.5 {
		t.Fatalf("fair-share billing ratio %.2f < 0.5 at t4/c8\n%s", f, out)
	}
	if len(rep.Devices) != 1 {
		t.Fatalf("%d device reports, want 1 (deepest point)", len(rep.Devices))
	}
	for _, ds := range rep.Devices[0].Dies {
		if ds.BusyNs <= 0 {
			t.Fatalf("die %d idle at t4/c8: %+v", ds.Die, ds)
		}
	}
}

// TestStreamsWAReduction is the acceptance check for multi-stream write
// placement: under zipfian aging on the 4-channel geometry, explicit
// host hints and the auto-stream classifier must both reduce GC
// copybacks and measured write amplification versus the single-stream
// baseline, and the couch whole-stack leg must show engine hints
// actually steering pages into the second stream.
func TestStreamsWAReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("ages three devices; skipped in -short")
	}
	e, err := Get("streams")
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := e.RunWithReport(Params{})
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]float64{}
	for _, m := range rep.Metrics {
		metrics[m.Name] = m.Value
	}
	// The run is deterministic for fixed Params, so these floors are well
	// below the measured reductions (~7-18%) yet still catch a placement
	// or accounting regression that erases the benefit.
	for _, mode := range []string{"hints", "auto"} {
		if red := metrics["wa_reduction_"+mode]; red < 0.03 {
			t.Errorf("%s: WA reduction %.3f < 0.03 vs hints-off\n%s", mode, red, out)
		}
		if red := metrics["copyback_reduction_"+mode]; red < 0.05 {
			t.Errorf("%s: copyback reduction %.3f < 0.05 vs hints-off\n%s", mode, red, out)
		}
		// Both streams must carry traffic — a dead stream means the
		// classifier or the hint plumbing collapsed to single-stream.
		for s := 0; s < 2; s++ {
			if metrics[fmt.Sprintf("stream%d_writes_%s", s, mode)] <= 0 {
				t.Errorf("%s: stream %d received no writes\n%s", mode, s, out)
			}
		}
	}
	// Whole-stack plumbing: with engine hints off every page lands in
	// stream 0; with hints on, compaction output flows into stream 1.
	if metrics["couch_stream1_writes_off"] != 0 {
		t.Errorf("couch hints-off wrote %v pages to stream 1", metrics["couch_stream1_writes_off"])
	}
	if metrics["couch_stream1_writes_on"] <= 0 {
		t.Errorf("couch hints-on steered no pages into stream 1\n%s", out)
	}
	// The hints leg carries full device telemetry for the report.
	if len(rep.Devices) != 1 || rep.Devices[0].Label != "hints" {
		t.Fatalf("want one device report labeled hints, got %+v", rep.Devices)
	}
	if len(rep.Devices[0].FTL.StreamWrites) != 2 {
		t.Fatalf("hints device report missing per-stream counters: %+v", rep.Devices[0].FTL)
	}
}

func TestScaledHelper(t *testing.T) {
	if scaled(1000, 0.5) != 500 {
		t.Fatal("scaled arithmetic wrong")
	}
	if scaled(10, 0.0001) != 1 {
		t.Fatal("scaled must clamp to 1")
	}
}

func TestLinkRigBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a device; skipped in -short")
	}
	p := Params{Scale: 0.004, Seed: 1}
	rig, err := newLinkRig(p, 0, 4096, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rig.dev.Capacity() == 0 {
		t.Fatal("empty device")
	}
	if n := nodesForDevice(rig.dev.CapacityBytes()); n < 500 {
		t.Fatalf("nodesForDevice = %d", n)
	}
}
