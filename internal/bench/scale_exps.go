package bench

import (
	"fmt"
	"strings"

	"share/internal/randfill"
	"share/internal/sim"
	"share/internal/ssd"
)

// The scale experiment measures how die-level parallelism converts queue
// depth into throughput: the same concurrent random-write workload runs
// against 1-, 2- and 4-channel arrays (one die per channel) at increasing
// client counts. With one channel every program serializes through the
// single die; with four, programs on different dies overlap, so at queue
// depth >= 8 the 4-channel array must sustain at least twice the
// 1-channel throughput. Per-die busy/wait telemetry for the deepest
// sweep point of each array lands in the report, which is how the
// BENCH_scale.json regression pins both the speedup and the evenness of
// die-striped allocation.
func init() {
	register(Experiment{
		ID:    "scale",
		Title: "Scale: write throughput vs queue depth across 1/2/4-channel die arrays",
		Run:   runScale,
	})
}

// scaleBlocks keeps every array the same total size, so the sweep varies
// only the parallelism degree, never the capacity or GC pressure.
const scaleBlocks = 256

var (
	scaleChannels = []int{1, 2, 4}
	scaleDepths   = []int{1, 2, 4, 8, 16}
)

// scaleProto builds and ages the device for one channel count. Aging is
// by far the most expensive part of a sweep point and depends only on
// (geometry, seed), so every depth point of a channel count clones this
// prototype instead of re-aging from scratch — identical results (the
// clone contract, pinned by ssd's TestCloneEquivalence and the
// BENCH_scale.json fixture) at a fifth of the wall-clock cost. The
// returned time is the aging completion, where measured clients start.
func scaleProto(p Params, channels int) (*ssd.Device, int64, error) {
	cfg := ssd.DefaultConfig(scaleBlocks)
	cfg.Geometry.Channels = channels
	cfg.Geometry.DiesPerChannel = 1 // explicit: the baseline uses the same per-die scheduler
	dev, err := ssd.New(fmt.Sprintf("scale-c%d", channels), cfg)
	if err != nil {
		return nil, 0, err
	}
	setup := sim.NewSoloTask("setup")
	if err := dev.Age(setup, 0.5, 0.2, p.Seed); err != nil {
		return nil, 0, err
	}
	return dev, setup.Now(), nil
}

// scalePoint runs one (channels, queueDepth) sweep point against a clone
// of the aged prototype and returns the measured write throughput in
// ops/s plus the device for telemetry.
func scalePoint(p Params, proto *ssd.Device, channels, depth int, t0 int64) (float64, *ssd.Device, error) {
	writesPerClient := 250 * p.OpScale
	dev, err := proto.Clone(fmt.Sprintf("scale-c%d", channels))
	if err != nil {
		return 0, nil, err
	}
	dev.ResetStats() // measure the sweep workload, not the aging

	span := dev.Capacity() / 2
	s := sim.NewScheduler()
	errs := make([]error, depth)
	for i := 0; i < depth; i++ {
		i := i
		s.Go(fmt.Sprintf("cli%d", i), func(task *sim.Task) {
			task.AdvanceTo(t0)
			rng := newRand(p.Seed + int64(i) + 1)
			fill := randfill.New(rng)
			page := make([]byte, dev.PageSize())
			for n := 0; n < writesPerClient; n++ {
				fill.Fill(page)
				if err := dev.WritePage(task, uint32(rng.Intn(span)), page); err != nil {
					errs[i] = err
					return
				}
			}
		})
	}
	end := s.Run()
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	elapsed := float64(end-t0) / float64(sim.Second)
	return float64(depth*writesPerClient) / elapsed, dev, nil
}

func runScale(p Params, r *Report) (string, error) {
	p.setDefaults()
	tput := map[int]map[int]float64{}
	var out strings.Builder
	fmt.Fprintf(&out, "scale: random writes, %d-block arrays, 1 die per channel\n", scaleBlocks)
	fmt.Fprintf(&out, "%-10s", "channels")
	for _, qd := range scaleDepths {
		fmt.Fprintf(&out, " qd=%-8d", qd)
	}
	out.WriteByte('\n')
	maxDepth := scaleDepths[len(scaleDepths)-1]
	for _, ch := range scaleChannels {
		proto, t0, err := scaleProto(p, ch)
		if err != nil {
			return "", err
		}
		tput[ch] = map[int]float64{}
		fmt.Fprintf(&out, "%-10d", ch)
		for _, qd := range scaleDepths {
			v, dev, err := scalePoint(p, proto, ch, qd, t0)
			if err != nil {
				return "", err
			}
			tput[ch][qd] = v
			r.Metric(fmt.Sprintf("tput_c%d_qd%d", ch, qd), v, "ops/s")
			fmt.Fprintf(&out, " %-11s", fmtThroughput(v))
			if qd == maxDepth {
				// Telemetry snapshot at the deepest point per array.
				r.Device(fmt.Sprintf("c%d_qd%d", ch, qd), dev)
			}
		}
		out.WriteByte('\n')
	}
	speedup := 0.0
	if base := tput[1][8]; base > 0 {
		speedup = tput[4][8] / base
	}
	r.Metric("speedup_c4_over_c1_qd8", speedup, "x")
	fmt.Fprintf(&out, "4-channel speedup over 1-channel at qd=8: %s\n",
		ratio(tput[4][8], tput[1][8]))
	return out.String(), nil
}
