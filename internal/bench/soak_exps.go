package bench

import (
	"errors"
	"fmt"
	"math/rand"

	"share/internal/nand"
	"share/internal/randfill"
	"share/internal/sim"
	"share/internal/ssd"
)

// The soak experiment is the device-lifetime robustness anchor: it ages
// one device through several full drive-writes of zipfian traffic on
// endogenously decaying media (read disturb + retention + wear, see
// nand.MediaModel) twice — once with the background patrol scrubber
// running at a low duty cycle, once without — and audits every logical
// page at the end. The patrol run must finish with zero uncorrectable
// reads; the unscrubbed control accumulates them as its cold data rots
// past the soft-decode limit. TestSoakScrubberHoldsZero pins that
// contrast as a regression oracle, and BENCH_soak.json carries the full
// telemetry (RBER gauges, blocks refreshed, ECC ladder escalations).
//
// Sizing is fixed rather than Scale-derived: the oracle depends on the
// balance between retention rot rate, patrol duty cycle and drive
// geometry, so the soak device is always the same small 4-die array and
// only Seed varies.

const (
	soakBlocks       = 128
	soakRounds       = 10
	soakWritesPerRnd = 800
	soakReadsPerRnd  = 400
	soakPatrolEvery  = 8              // foreground ops between patrol steps
	soakIdlePerRound = 1 * sim.Second // declared idle time aging retained data
)

// soakMediaModel is deliberately aggressive so a ~20k-op run spans a
// device lifetime. The media clock ticks with NAND service time as well as
// declared idle, so the whole run covers a few tens of virtual seconds;
// at 150 risk/s retained data rots past the 5000 soft-decode limit well
// within the run, while the 2000 patrol threshold (80% of FastLimit)
// leaves the scrubber roughly twenty virtual seconds of headroom to reach
// a block after it crosses.
func soakMediaModel(seed int64) *nand.MediaModel {
	return &nand.MediaModel{
		Seed:            seed,
		WearWeight:      2,
		DisturbWeight:   1,
		RetentionWeight: 150, // per virtual second
		RetentionUnit:   sim.Second,
		PageNoise:       50,
		FastLimit:       2500,
		RetryLimit:      3500,
		SoftLimit:       5000,
	}
}

type soakOutcome struct {
	dev           *ssd.Device
	driveWrites   float64
	uncorrectable int64
	health        ssd.Health
}

// runSoak ages one device through the full soak workload. The patrol flag
// is the only difference between the measured run and the control.
func runSoak(p Params, patrol bool) (*soakOutcome, error) {
	name := "soak-ctl"
	if patrol {
		name = "soak-patrol"
	}
	cfg := ssd.DefaultConfig(soakBlocks)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.Geometry.Channels = 2
	cfg.Geometry.DiesPerChannel = 2
	cfg.FTL.CheckpointLogPages = 64
	// The soak fills 100% of logical capacity, so the reserve must cover
	// the per-die GC watermarks plus resident mapping metadata with slack
	// left for relocation; the default 10% leaves none on this small a
	// device.
	cfg.FTL.OverProvision = 0.22
	cfg.Media = soakMediaModel(p.Seed)
	dev, err := ssd.New(name, cfg)
	if err != nil {
		return nil, err
	}
	t := sim.NewSoloTask(name)
	cap := dev.Capacity()
	page := make([]byte, dev.PageSize())
	rng := newRand(p.Seed + 101)
	fill := randfill.New(rng)
	// Write skew and read skew are deliberately offset by a third of the
	// address space: write-cold-but-read-hot pages accumulate pure read
	// disturb, write-cold-read-cold pages accumulate pure retention — the
	// two rot modes only a patrol sweep (not reactive scrubbing alone)
	// fully covers.
	wZipf := rand.NewZipf(rng, 1.2, 1, uint64(cap-1))
	rZipf := rand.NewZipf(rng, 1.2, 1, uint64(cap-1))

	ops := 0
	var uncorrectable int64
	step := func(fn func() error) error {
		if err := fn(); err != nil {
			if errors.Is(err, nand.ErrUncorrectable) {
				uncorrectable++
			} else {
				return err
			}
		}
		ops++
		if patrol && ops%soakPatrolEvery == 0 {
			if _, err := dev.PatrolStep(t); err != nil {
				return fmt.Errorf("patrol step: %w", err)
			}
		}
		return nil
	}

	// Fill the whole logical space once; pages never rewritten after this
	// are the retention-rot population.
	for lpn := 0; lpn < cap; lpn++ {
		fill.Fill(page)
		if err := step(func() error { return dev.WritePage(t, uint32(lpn), page) }); err != nil {
			return nil, fmt.Errorf("%s: fill lpn %d: %w", name, lpn, err)
		}
	}
	for round := 0; round < soakRounds; round++ {
		for i := 0; i < soakWritesPerRnd; i++ {
			lpn := uint32(wZipf.Uint64())
			fill.Fill(page)
			if err := step(func() error { return dev.WritePage(t, lpn, page) }); err != nil {
				return nil, fmt.Errorf("%s: round %d write %d (lpn %d): %w", name, round, i, lpn, err)
			}
		}
		for i := 0; i < soakReadsPerRnd; i++ {
			lpn := uint32((uint64(cap/3) + rZipf.Uint64()) % uint64(cap))
			if err := step(func() error { return dev.ReadPage(t, lpn, page) }); err != nil {
				return nil, fmt.Errorf("%s: round %d read %d (lpn %d): %w", name, round, i, lpn, err)
			}
		}
		if err := dev.Flush(t); err != nil {
			return nil, fmt.Errorf("%s: round %d flush: %w", name, round, err)
		}
		// A burst-idle duty cycle: retained data keeps aging while the
		// host is quiet.
		dev.AdvanceMediaTime(soakIdlePerRound)
	}
	// Final audit: every logical page must still be readable. On the
	// patrol run this is the zero-uncorrectable oracle; on the control it
	// is where the unrefreshed cold data surfaces as loss.
	for lpn := 0; lpn < cap; lpn++ {
		if err := step(func() error { return dev.ReadPage(t, uint32(lpn), page) }); err != nil {
			return nil, fmt.Errorf("%s: audit lpn %d: %w", name, lpn, err)
		}
	}
	st := dev.LifetimeStats()
	// The device counter also covers internal relocation reads (GC and
	// scrub hitting rotten pages), so it bounds the host-visible count from
	// above.
	if st.FTL.UncorrectableReads < uncorrectable {
		return nil, fmt.Errorf("soak: host saw %d uncorrectable reads but device counted only %d",
			uncorrectable, st.FTL.UncorrectableReads)
	}
	return &soakOutcome{
		dev:           dev,
		driveWrites:   float64(st.FTL.HostWrites) / float64(cap),
		uncorrectable: uncorrectable,
		health:        dev.Health(),
	}, nil
}

func init() {
	register(Experiment{
		ID: "soak",
		Title: "Soak: device lifetime under zipfian load on aging media — " +
			"patrol scrubber vs unscrubbed control",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			on, err := runSoak(p, true)
			if err != nil {
				return "", err
			}
			off, err := runSoak(p, false)
			if err != nil {
				return "", err
			}
			onSt, offSt := on.dev.LifetimeStats(), off.dev.LifetimeStats()

			r.Metric("drive_writes", on.driveWrites, "x")
			r.Metric("uncorrectable_on", float64(on.uncorrectable), "reads")
			r.Metric("uncorrectable_off", float64(off.uncorrectable), "reads")
			r.Metric("patrol_refreshes", float64(onSt.FTL.PatrolRefreshes), "blocks")
			r.Metric("blocks_refreshed_on", float64(onSt.FTL.ScrubbedBlocks), "blocks")
			r.Metric("blocks_refreshed_off", float64(offSt.FTL.ScrubbedBlocks), "blocks")
			r.Metric("read_retries_on", float64(onSt.FTL.ReadRetries), "reads")
			r.Metric("read_retries_off", float64(offSt.FTL.ReadRetries), "reads")
			r.Metric("soft_decodes_on", float64(onSt.FTL.SoftDecodes), "reads")
			r.Metric("soft_decodes_off", float64(offSt.FTL.SoftDecodes), "reads")
			r.Metric("lost_pages_on", float64(onSt.FTL.LostPages), "pages")
			r.Metric("lost_pages_off", float64(offSt.FTL.LostPages), "pages")
			r.Metric("rber_max_on", on.health.MaxRBER, "rber")
			r.Metric("rber_max_off", off.health.MaxRBER, "rber")
			r.Metric("rber_mean_on", on.health.MeanRBER, "rber")
			r.Metric("rber_mean_off", off.health.MeanRBER, "rber")
			r.Metric("patrol_backlog_on", float64(on.health.PatrolBacklog), "blocks")
			r.Metric("write_amplification_on", onSt.WriteAmplification(), "x")
			r.Device("soak_patrol_on", on.dev)
			r.Device("soak_patrol_off", off.dev)

			out := fmt.Sprintf(
				"soak: %.2f drive-writes over %d rounds on aging media (4-die array, %d blocks)\n"+
					"patrol on : uncorrectable %d, refreshes %d (patrol %d), retries %d, soft %d, max RBER %.2e\n"+
					"patrol off: uncorrectable %d, refreshes %d, retries %d, soft %d, max RBER %.2e\n",
				on.driveWrites, soakRounds, soakBlocks,
				on.uncorrectable, onSt.FTL.ScrubbedBlocks, onSt.FTL.PatrolRefreshes,
				onSt.FTL.ReadRetries, onSt.FTL.SoftDecodes, on.health.MaxRBER,
				off.uncorrectable, offSt.FTL.ScrubbedBlocks,
				offSt.FTL.ReadRetries, offSt.FTL.SoftDecodes, off.health.MaxRBER)
			return out, nil
		},
	})
}
