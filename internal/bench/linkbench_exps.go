package bench

import (
	"fmt"
	"strings"

	"share/internal/innodb"
	"share/internal/linkbench"
	"share/internal/stats"
)

func linkCfg(p Params) linkbench.Config {
	return linkbench.Config{
		Clients:  16,
		Requests: scaled(paperLinkRequests, p.Scale),
		Warmup:   scaled(paperLinkRequests, p.Scale) / 10,
		Seed:     p.Seed,
	}
}

// nodesForDevice sizes the social graph so the loaded database occupies
// ~38% of the drive, the paper's 1.5 GiB-on-4 GiB ratio that keeps
// garbage collection active.
func nodesForDevice(capacityBytes int64) int {
	const bytesPerNode = 1500 // measured: rows + links + counts at ~50% B+tree fill
	n := int(capacityBytes * 38 / 100 / bytesPerNode)
	if n < 500 {
		n = 500
	}
	return n
}

// runLink loads and runs one LinkBench configuration, returning the
// result and the rig (for device statistics).
func runLink(p Params, mode innodb.FlushMode, pageSize int, bufferMB float64) (*linkbench.Result, *linkRig, error) {
	return runLinkN(p, mode, pageSize, bufferMB, 1)
}

// runLinkN scales the request count by reqMult (longer runs for the GC
// statistics of Figure 6).
func runLinkN(p Params, mode innodb.FlushMode, pageSize int, bufferMB float64, reqMult int) (*linkbench.Result, *linkRig, error) {
	cfg := linkCfg(p)
	cfg.Requests *= reqMult
	rig, err := newLinkRig(p, mode, pageSize, bufferMB)
	if err != nil {
		return nil, nil, err
	}
	cfg.Nodes = nodesForDevice(rig.dev.CapacityBytes())
	if err := linkbench.Load(rig.task, rig.eng, cfg); err != nil {
		return nil, nil, err
	}
	rig.dev.ResetStats() // measure the benchmark window only
	res, err := linkbench.Run(rig.eng, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, rig, nil
}

func init() {
	register(Experiment{
		ID:    "fig5a",
		Title: "Figure 5(a): LinkBench throughput vs page size (50 MB buffer)",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			tb := stats.NewTable("PageSize", "DWB-On (tps)", "SHARE (tps)", "SHARE/DWB")
			for _, ps := range []int{4096, 8192, 16384} {
				on, onRig, err := runLink(p, innodb.DWBOn, ps, paperBufferMB)
				if err != nil {
					return "", err
				}
				sh, shRig, err := runLink(p, innodb.Share, ps, paperBufferMB)
				if err != nil {
					return "", err
				}
				r.Metric(fmt.Sprintf("dwb_on_tps_%dk", ps/1024), on.Throughput, "tps")
				r.Metric(fmt.Sprintf("share_tps_%dk", ps/1024), sh.Throughput, "tps")
				if ps == 4096 {
					r.Device("dwb-on-4k", onRig.dev)
					r.Device("share-4k", shRig.dev)
					onSt, shSt := onRig.eng.Stats(), shRig.eng.Stats()
					r.Engine("dwb-on-4k", onSt.Degraded, innoEngineCounters(onSt))
					r.Engine("share-4k", shSt.Degraded, innoEngineCounters(shSt))
				}
				tb.AddRow(fmt.Sprintf("%dKB", ps/1024),
					fmtThroughput(on.Throughput), fmtThroughput(sh.Throughput),
					ratio(sh.Throughput, on.Throughput))
			}
			return tb.String(), nil
		},
	})

	register(Experiment{
		ID:    "fig5b",
		Title: "Figure 5(b): LinkBench throughput vs buffer pool size (4 KB pages)",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			tb := stats.NewTable("Buffer", "DWB-On (tps)", "DWB-Off (tps)", "SHARE (tps)", "SHARE/DWB-On", "SHARE/DWB-Off")
			for _, buf := range []float64{50, 100, 150} {
				on, _, err := runLink(p, innodb.DWBOn, 4096, buf)
				if err != nil {
					return "", err
				}
				off, _, err := runLink(p, innodb.DWBOff, 4096, buf)
				if err != nil {
					return "", err
				}
				sh, _, err := runLink(p, innodb.Share, 4096, buf)
				if err != nil {
					return "", err
				}
				r.Metric(fmt.Sprintf("dwb_on_tps_%.0fmb", buf), on.Throughput, "tps")
				r.Metric(fmt.Sprintf("dwb_off_tps_%.0fmb", buf), off.Throughput, "tps")
				r.Metric(fmt.Sprintf("share_tps_%.0fmb", buf), sh.Throughput, "tps")
				tb.AddRow(fmt.Sprintf("%.0fMB", buf),
					fmtThroughput(on.Throughput), fmtThroughput(off.Throughput),
					fmtThroughput(sh.Throughput),
					ratio(sh.Throughput, on.Throughput), ratio(sh.Throughput, off.Throughput))
			}
			return tb.String() + "\nPaper: SHARE > 2x DWB-On at every point; SHARE within ~1% of DWB-Off.\n", nil
		},
	})

	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6: IO activities inside the SSD (host writes, GC events, copybacks)",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			// GC statistics need sustained churn — several full device
			// turnovers — so steady-state garbage collection (not the
			// aging transient) dominates the counters.
			p4 := p
			tb := stats.NewTable("Buffer", "Metric", "DWB-On", "SHARE", "Reduction")
			for _, buf := range []float64{50, 100, 150} {
				_, onRig, err := runLinkN(p4, innodb.DWBOn, 4096, buf, 24)
				if err != nil {
					return "", err
				}
				_, shRig, err := runLinkN(p4, innodb.Share, 4096, buf, 24)
				if err != nil {
					return "", err
				}
				on := onRig.dev.Stats()
				sh := shRig.dev.Stats()
				red := func(a, b int64) string {
					if a == 0 {
						return "n/a"
					}
					return fmt.Sprintf("%.0f%%", 100*(1-float64(b)/float64(a)))
				}
				label := fmt.Sprintf("%.0fMB", buf)
				tb.AddRow(label, "host page writes", on.FTL.HostWrites, sh.FTL.HostWrites, red(on.FTL.HostWrites, sh.FTL.HostWrites))
				tb.AddRow(label, "GC events", on.FTL.GCEvents, sh.FTL.GCEvents, red(on.FTL.GCEvents, sh.FTL.GCEvents))
				tb.AddRow(label, "copyback pages", on.FTL.Copybacks, sh.FTL.Copybacks, red(on.FTL.Copybacks, sh.FTL.Copybacks))
				r.Metric(fmt.Sprintf("dwb_on_wa_%.0fmb", buf), on.WriteAmplification(), "x")
				r.Metric(fmt.Sprintf("share_wa_%.0fmb", buf), sh.WriteAmplification(), "x")
				if buf == 50 {
					r.Device("dwb-on-50mb", onRig.dev)
					r.Device("share-50mb", shRig.dev)
					onSt, shSt := onRig.eng.Stats(), shRig.eng.Stats()
					r.Engine("dwb-on-50mb", onSt.Degraded, innoEngineCounters(onSt))
					r.Engine("share-50mb", shSt.Degraded, innoEngineCounters(shSt))
				}
			}
			return tb.String() + "\nPaper: ~45% fewer host writes, ~55% fewer GCs, ~75% fewer copybacks.\n", nil
		},
	})

	register(Experiment{
		ID:    "table1",
		Title: "Table 1: LinkBench latency distribution (50 MB buffer, 4 KB pages)",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			on, _, err := runLink(p, innodb.DWBOn, 4096, paperBufferMB)
			if err != nil {
				return "", err
			}
			sh, _, err := runLink(p, innodb.Share, 4096, paperBufferMB)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			b.WriteString("DWB-On (ms):\n")
			b.WriteString(on.Table())
			b.WriteString("\nSHARE (ms):\n")
			b.WriteString(sh.Table())
			// Paper-style aggregate: mean/P99 reduction factors.
			var meanMin, meanMax, p99Min, p99Max float64
			first := true
			for op := linkbench.Op(0); op < 10; op++ {
				so := sh.Latency[op].Summarize()
				oo := on.Latency[op].Summarize()
				if so.Mean <= 0 || so.P99 <= 0 {
					continue
				}
				mr := oo.Mean / so.Mean
				pr := oo.P99 / so.P99
				if first {
					meanMin, meanMax, p99Min, p99Max = mr, mr, pr, pr
					first = false
				}
				if mr < meanMin {
					meanMin = mr
				}
				if mr > meanMax {
					meanMax = mr
				}
				if pr < p99Min {
					p99Min = pr
				}
				if pr > p99Max {
					p99Max = pr
				}
			}
			fmt.Fprintf(&b, "\nMean latency reduced by %.1fx-%.1fx; P99 by %.1fx-%.1fx.\n",
				meanMin, meanMax, p99Min, p99Max)
			r.Metric("mean_reduction_min", meanMin, "x")
			r.Metric("mean_reduction_max", meanMax, "x")
			r.Metric("p99_reduction_min", p99Min, "x")
			r.Metric("p99_reduction_max", p99Max, "x")
			b.WriteString("Paper: mean reduced 2.1x-4.2x, P99 reduced 2.0x-8.3x.\n")
			return b.String(), nil
		},
	})
}
