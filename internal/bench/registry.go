package bench

import (
	"fmt"
	"sort"
)

// Experiment is one reproducible table/figure from the paper. Run
// returns the human-readable rows and fills r with the machine-readable
// results (metrics, device telemetry); callers normally invoke it
// through RunWithReport.
type Experiment struct {
	ID    string
	Title string
	Run   func(p Params, r *Report) (string, error)
}

// RunWithReport executes e and returns both the printed output and the
// completed machine-readable report (with Output set).
func (e Experiment) RunWithReport(p Params) (string, *Report, error) {
	r := NewReport(e, p)
	out, err := e.Run(p, r)
	if err != nil {
		return out, nil, err
	}
	r.Output = out
	return out, r, nil
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (try 'list')", id)
	}
	return e, nil
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
