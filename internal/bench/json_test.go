package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSmokeJSONDeterministic is the acceptance check for the report
// pipeline: two identically-seeded smoke runs — queue depth 4, multiple
// concurrent clients — must serialize to byte-identical JSON, and the WA
// field must exclude the aging phase.
func TestSmokeJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a device workload; skipped in -short")
	}
	e, err := Get("smoke")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Scale: 0.01, Seed: 7}
	run := func() []byte {
		_, rep, err := e.RunWithReport(p)
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateReportJSON(data); err != nil {
			t.Fatalf("invalid report: %v\n%s", err, data)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identically-seeded runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}

	var rep Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	var wa float64
	found := false
	for _, m := range rep.Metrics {
		if m.Name == "write_amplification" {
			wa, found = m.Value, true
		}
	}
	if !found {
		t.Fatal("smoke report missing write_amplification metric")
	}
	// The device is aged to 50% full before ResetStats; if the aging
	// programs leaked into the epoch the WA would be far above any
	// plausible steady-state value for this light workload.
	if wa <= 0 || wa > 3 {
		t.Fatalf("write_amplification %.3f outside sane epoch range (aging leak?)", wa)
	}
	if len(rep.Devices) == 0 {
		t.Fatal("smoke report has no device telemetry")
	}
	d := rep.Devices[0]
	if d.QueueDepth != 4 {
		t.Fatalf("queue depth %d, want 4", d.QueueDepth)
	}
	if len(d.Latency) == 0 {
		t.Fatal("no latency summaries in device report")
	}
	if d.FTL.HostWrites == 0 || d.Chip.Programs == 0 {
		t.Fatal("epoch counters empty")
	}
}

// TestLegacyReportsOmitStreamCounters guards the legacy report format:
// a device without host streams must serialize with no per-stream fields
// at all — the pre-streams BENCH_*.json files stay byte-identical, which
// CI enforces by regenerating them and diffing.
func TestLegacyReportsOmitStreamCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a device workload; skipped in -short")
	}
	e, err := Get("smoke")
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := e.RunWithReport(Params{Scale: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"StreamWrites", "StreamCopybacks"} {
		if bytes.Contains(data, []byte(field)) {
			t.Fatalf("legacy smoke report leaks %s:\n%s", field, data)
		}
	}
}

// TestStreamsJSONDeterministic: the streams report must be reproducible
// byte for byte (CI regenerates BENCH_streams.json and diffs it), and the
// hints device telemetry must carry the per-stream counters the legacy
// reports omit.
func TestStreamsJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("ages three devices, twice; skipped in -short")
	}
	e, err := Get("streams")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		_, rep, err := e.RunWithReport(Params{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateReportJSON(data); err != nil {
			t.Fatalf("invalid report: %v\n%s", err, data)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identically-seeded streams runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte("StreamWrites")) {
		t.Fatalf("streams report missing per-stream counters:\n%s", a)
	}
}

func TestValidateReportJSON(t *testing.T) {
	if err := ValidateReportJSON([]byte("{")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if err := ValidateReportJSON([]byte(`{"schema":"nope"}`)); err == nil {
		t.Fatal("accepted wrong schema")
	}
	good := Report{
		Schema: ReportSchema, Experiment: "x", Title: "y",
		Config: ConfigInfo{Scale: 1, Seed: 42}, Output: "ok\n",
	}
	data, err := good.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReportJSON(data); err != nil {
		t.Fatalf("rejected valid report: %v", err)
	}
}
