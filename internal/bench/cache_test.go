package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func runCacheReport(t *testing.T) []byte {
	t.Helper()
	e, err := Get("cache")
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := e.RunWithReport(Params{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReportJSON(data); err != nil {
		t.Fatalf("invalid report: %v\n%s", err, data)
	}
	return data
}

// TestCacheJSONDeterministic: the cache report — four full engine stacks,
// three of them crash-restarted — must serialize to byte-identical JSON
// across identically-seeded runs (CI regenerates BENCH_cache.json and
// diffs it).
func TestCacheJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds four engine stacks, twice; skipped in -short")
	}
	a, b := runCacheReport(t), runCacheReport(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("identically-seeded cache runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestCacheRecoveryFloors pins the experiment's qualitative claims as
// regression floors: the cache tier must pay off at steady state, the
// warm restart must revalidate a useful map and get back to peak
// measurably faster than the cold one, and the faulted restart must keep
// part of the map (it dropped the entries the damaged media corrupted).
func TestCacheRecoveryFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds four engine stacks; skipped in -short")
	}
	var rep Report
	if err := json.Unmarshal(runCacheReport(t), &rep); err != nil {
		t.Fatal(err)
	}
	m := map[string]float64{}
	for _, mt := range rep.Metrics {
		m[mt.Name] = mt.Value
	}
	need := func(name string) float64 {
		v, ok := m[name]
		if !ok {
			t.Fatalf("report missing metric %s", name)
		}
		return v
	}
	if gain := need("cache_gain"); gain < 1.2 {
		t.Errorf("cache_gain = %.2fx, want >= 1.2x over the no-cache baseline", gain)
	}
	if hr := need("hit_rate_steady"); hr < 0.8 {
		t.Errorf("hit_rate_steady = %.2f, want >= 0.8", hr)
	}
	warm, cold, faulted := need("recovery_to_peak_warm"), need("recovery_to_peak_cold"), need("recovery_to_peak_faulted")
	if warm >= cold {
		t.Errorf("warm recovery %.1f ms not faster than cold %.1f ms: the persistent map bought nothing", warm, cold)
	}
	if faulted >= 2*cold {
		t.Errorf("faulted recovery %.1f ms more than twice cold %.1f ms: fault fallback is too slow", faulted, cold)
	}
	if need("revalidated_kept_warm") == 0 {
		t.Error("warm restart revalidated no entries")
	}
	if need("revalidated_dropped_faulted") == 0 {
		t.Error("faulted restart dropped no entries: the fault schedule never surfaced")
	}
	if kept := need("revalidated_kept_faulted"); kept == 0 {
		t.Error("faulted restart kept no entries: the whole map was lost, not just the damaged slots")
	}
	if need("recovery_hit_rate_warm") <= need("recovery_hit_rate_cold") {
		t.Error("warm recovery hit rate not above cold")
	}
}
