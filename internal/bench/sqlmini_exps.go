package bench

import (
	"fmt"

	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/sqlmini"
	"share/internal/stats"
)

func init() {
	register(Experiment{
		ID: "abl-sqlite",
		Title: "§3.3/§7 extension: SQLite-style commit protocols — rollback journal " +
			"vs WAL vs journaling turned off with SHARE",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			txns := scaled(100_000, p.Scale)
			if txns < 200 {
				txns = 200
			}
			tb := stats.NewTable("Mode", "TPS", "Host writes", "Syncs/commit", "Commit writes/commit")
			var tps [3]float64
			modes := []sqlmini.Mode{sqlmini.Rollback, sqlmini.WAL, sqlmini.Share}
			for i, mode := range modes {
				dev, task, err := newDataDevice(p, "sqldev")
				if err != nil {
					return "", err
				}
				fs, err := fsim.Format(task, dev, 256)
				if err != nil {
					return "", err
				}
				db, err := sqlmini.Open(task, fs, sqlmini.Config{
					Mode:            mode,
					CacheBytes:      1 << 20,
					CheckpointEvery: 128,
				})
				if err != nil {
					return "", err
				}
				// Small-transaction OLTP: one update per commit, skewed keys
				// (SQLite's worst case for journaling overhead).
				rng := newRand(p.Seed)
				val := make([]byte, 120)
				dev.ResetStats()
				start := task.Now()
				for n := 0; n < txns; n++ {
					k := []byte(fmt.Sprintf("row%06d", rng.Intn(2000)))
					rng.Read(val)
					if err := db.Update(task, func(tx *sqlmini.Tx) error {
						return tx.Put(k, val)
					}); err != nil {
						return "", err
					}
				}
				elapsed := float64(task.Now()-start) / float64(sim.Second)
				st := dev.Stats()
				dst := db.Stats()
				tps[i] = float64(txns) / elapsed
				syncs := map[sqlmini.Mode]string{
					sqlmini.Rollback: "3", sqlmini.WAL: "1 (+ckpt)", sqlmini.Share: "1",
				}[mode]
				tb.AddRow(mode.String(), fmtThroughput(tps[i]), st.FTL.HostWrites,
					syncs, fmt.Sprintf("%.1f", float64(st.FTL.HostWrites)/float64(dst.Commits)))
				r.Metric(mode.String()+"_tps", tps[i], "tps")
				r.Metric(mode.String()+"_host_writes", float64(st.FTL.HostWrites), "pages")
				r.Device(mode.String(), dev)
			}
			out := tb.String()
			out += fmt.Sprintf("\nSHARE vs rollback journal: %.2fx; SHARE vs WAL: %.2fx.\n",
				tps[2]/tps[0], tps[2]/tps[1])
			out += "§3.3: \"it can simply turn them off, because SHARE supports\n" +
				"transactional atomicity and durability at the storage level.\"\n"
			return out, nil
		},
	})
}
