package bench

import (
	"fmt"
	"math/rand"

	"share/internal/couch"
	"share/internal/fsim"
	"share/internal/innodb"
	"share/internal/linkbench"
	"share/internal/sim"
	"share/internal/ssd"
	"share/internal/stats"
	"share/internal/ycsb"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func init() {
	register(Experiment{
		ID: "abl-sharetable",
		Title: "Ablation: bounded reverse-mapping (share) table size — forced copies " +
			"when the OpenSSD's 250/500-entry budget is exceeded",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			tb := stats.NewTable("Table cap", "OPS", "Share pairs", "Forced copies", "Forced %")
			for _, cap := range []int{64, 250, 500, 0} {
				dev, task, err := newDataDevice(p, "openssd")
				if err != nil {
					return "", err
				}
				dev.FTLForTest().SetShareTableCap(cap)
				fs, err := fsim.Format(task, dev, 256)
				if err != nil {
					return "", err
				}
				st, err := couch.Open(task, fs, couch.Config{
					ShareMode: true, BatchSize: 16,
					DocCacheEntries: scaled(paperYCSBRecords, p.Scale) / 10,
				})
				if err != nil {
					return "", err
				}
				cfg := ycsb.Config{
					Records: scaled(paperYCSBRecords, p.Scale), ValueSize: 4000,
					Ops: scaled(paperYCSBOps, p.Scale), Workload: ycsb.WorkloadF, Seed: p.Seed,
				}
				if err := ycsb.Load(task, st, cfg); err != nil {
					return "", err
				}
				dev.ResetStats()
				res, err := ycsb.Run(task, st, cfg)
				if err != nil {
					return "", err
				}
				fst := dev.Stats().FTL
				total := fst.SharePairs + fst.ForcedCopies
				pct := 0.0
				if total > 0 {
					pct = 100 * float64(fst.ForcedCopies) / float64(total)
				}
				capLabel := fmt.Sprintf("%d", cap)
				if cap == 0 {
					capLabel = "unlimited"
				}
				tb.AddRow(capLabel, fmtThroughput(res.Throughput),
					fst.SharePairs, fst.ForcedCopies, fmt.Sprintf("%.1f%%", pct))
				r.Metric("ops_cap_"+capLabel, res.Throughput, "ops/s")
				r.Metric("forced_pct_cap_"+capLabel, pct, "%")
			}
			return tb.String() + "\nSmaller tables degrade SHAREs into physical copies between\nmapping checkpoints; the paper sized 250 (4KB) / 500 (8KB) entries.\n", nil
		},
	})

	register(Experiment{
		ID:    "abl-batch",
		Title: "Ablation: batched vs per-pair SHARE commands (round trips and delta-log programs)",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			pairsN := 512
			tb := stats.NewTable("Issue", "Commands", "Delta-log pages", "Elapsed (ms)")
			for _, batched := range []bool{true, false} {
				cfg := ssd.DefaultConfig(256)
				dev, err := ssd.New("dev", cfg)
				if err != nil {
					return "", err
				}
				task := sim.NewSoloTask("t")
				buf := make([]byte, dev.PageSize())
				var pairs []ssd.Pair
				for i := 0; i < pairsN; i++ {
					if err := dev.WritePage(task, uint32(10000+i), buf); err != nil {
						return "", err
					}
					pairs = append(pairs, ssd.Pair{Dst: uint32(i), Src: uint32(10000 + i), Len: 1})
				}
				if err := dev.Flush(task); err != nil {
					return "", err
				}
				dev.ResetStats()
				start := task.Now()
				if batched {
					max := dev.MaxShareBatch()
					for i := 0; i < len(pairs); i += max {
						end := i + max
						if end > len(pairs) {
							end = len(pairs)
						}
						if err := dev.Share(task, pairs[i:end]); err != nil {
							return "", err
						}
					}
				} else {
					for _, pr := range pairs {
						if err := dev.Share(task, []ssd.Pair{pr}); err != nil {
							return "", err
						}
					}
				}
				st := dev.Stats().FTL
				label := "per-pair"
				if batched {
					label = "batched"
				}
				elapsedMS := float64(task.Now()-start) / float64(sim.Millisecond)
				tb.AddRow(label, st.Shares, st.LogPagesWritten,
					fmt.Sprintf("%.2f", elapsedMS))
				r.Metric(label+"_commands", float64(st.Shares), "cmds")
				r.Metric(label+"_log_pages", float64(st.LogPagesWritten), "pages")
				r.Metric(label+"_elapsed", elapsedMS, "ms")
				r.Device(label, dev)
			}
			return tb.String() + "\nBatching amortizes both the command round trip and the\nmapping-delta page program (§3.2).\n", nil
		},
	})

	register(Experiment{
		ID: "abl-atomic",
		Title: "Ablation: SHARE vs the atomic-write FTL baseline (§6.1) vs doublewrite " +
			"on LinkBench",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			tb := stats.NewTable("Mode", "Throughput (tps)", "Host writes", "GC events")
			for _, mode := range []innodb.FlushMode{innodb.DWBOn, innodb.AtomicWrite, innodb.Share} {
				res, rig, err := runLink(p, mode, 4096, paperBufferMB)
				if err != nil {
					return "", err
				}
				st := rig.dev.Stats()
				tb.AddRow(mode.String(), fmtThroughput(res.Throughput),
					st.FTL.HostWrites, st.FTL.GCEvents)
				r.Metric(mode.String()+"_tps", res.Throughput, "tps")
				r.Metric(mode.String()+"_host_writes", float64(st.FTL.HostWrites), "pages")
				r.Device(mode.String(), rig.dev)
			}
			return tb.String() +
				"\nThe atomic-write FTL matches SHARE for in-place engines like\n" +
				"InnoDB (both write each page once), but its interface cannot express\n" +
				"Couchbase's zero-copy compaction (Table 2) — the paper's key contrast\n" +
				"with prior work.\n", nil
		},
	})

	register(Experiment{
		ID:    "abl-op",
		Title: "Ablation: over-provisioning vs GC copyback under DWB-On and SHARE",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			tb := stats.NewTable("OP", "Mode", "GC events", "Copybacks", "WAF")
			for _, op := range []float64{0.07, 0.15, 0.28} {
				for _, mode := range []innodb.FlushMode{innodb.DWBOn, innodb.Share} {
					blocks := scaled(paperDeviceBlocks, p.Scale)
					if blocks < 64 {
						blocks = 64
					}
					cfg := ssd.DefaultConfig(blocks)
					cfg.FTL.OverProvision = op
					dev, err := ssd.New("dev", cfg)
					if err != nil {
						return "", err
					}
					task := sim.NewSoloTask("setup")
					if err := dev.Age(task, 0.85, 0.3, p.Seed); err != nil {
						return "", err
					}
					fs, err := fsim.Format(task, dev, 256)
					if err != nil {
						return "", err
					}
					logDev, err := newLogDevice(p)
					if err != nil {
						return "", err
					}
					eng, err := innodb.Open(task, fs, logDev, innodb.Config{
						PageSize:  4096,
						PoolBytes: int64(paperBufferMB * 1024 * 1024 * p.Scale),
						FlushMode: mode,
						DWBPages:  32,
						DataBytes: dev.CapacityBytes() * 60 / 100,
						LogPages:  uint32(logDev.Capacity()) / 2,
					})
					if err != nil {
						return "", err
					}
					cfg2 := linkCfg(p)
					cfg2.Nodes = nodesForDevice(dev.CapacityBytes())
					// Sustained churn so GC reaches steady state.
					cfg2.Requests *= 12
					if err := linkbench.Load(task, eng, cfg2); err != nil {
						return "", err
					}
					dev.ResetStats()
					if _, err := linkbench.Run(eng, cfg2); err != nil {
						return "", err
					}
					st := dev.Stats()
					waf := st.WriteAmplification()
					tb.AddRow(fmt.Sprintf("%.0f%%", op*100), mode.String(),
						st.FTL.GCEvents, st.FTL.Copybacks,
						fmt.Sprintf("%.2f", waf))
					r.Metric(fmt.Sprintf("%s_waf_op%.0f", mode.String(), op*100), waf, "x")
					r.Metric(fmt.Sprintf("%s_gc_op%.0f", mode.String(), op*100), float64(st.FTL.GCEvents), "events")
				}
			}
			return tb.String() + "\nSHARE's halved host writes relax GC pressure most when\nover-provisioning is scarce.\n", nil
		},
	})
}

func init() {
	register(Experiment{
		ID: "abl-queue",
		Title: "Ablation: device queue depth (internal parallelism) vs the SHARE advantage " +
			"on LinkBench",
		Run: func(p Params, r *Report) (string, error) {
			p.setDefaults()
			tb := stats.NewTable("QueueDepth", "DWB-On (tps)", "SHARE (tps)", "SHARE/DWB")
			for _, depth := range []int{1, 4, 16} {
				var tput [2]float64
				for i, mode := range []innodb.FlushMode{innodb.DWBOn, innodb.Share} {
					blocks := scaled(paperDeviceBlocks, p.Scale)
					if blocks < 64 {
						blocks = 64
					}
					cfg := ssd.DefaultConfig(blocks)
					cfg.QueueDepth = depth
					dev, err := ssd.New("dev", cfg)
					if err != nil {
						return "", err
					}
					task := sim.NewSoloTask("setup")
					if err := dev.Age(task, 0.95, 0.3, p.Seed); err != nil {
						return "", err
					}
					if err := dev.Trim(task, 0, dev.Capacity()); err != nil {
						return "", err
					}
					fs, err := fsim.Format(task, dev, 256)
					if err != nil {
						return "", err
					}
					logDev, err := newLogDevice(p)
					if err != nil {
						return "", err
					}
					eng, err := innodb.Open(task, fs, logDev, innodb.Config{
						PageSize:  4096,
						PoolBytes: int64(paperBufferMB * 1024 * 1024 * p.Scale),
						FlushMode: mode,
						DWBPages:  32,
						DataBytes: dev.CapacityBytes() * 60 / 100,
						LogPages:  uint32(logDev.Capacity()) / 2,
					})
					if err != nil {
						return "", err
					}
					cfg2 := linkCfg(p)
					cfg2.Nodes = nodesForDevice(dev.CapacityBytes())
					if err := linkbench.Load(task, eng, cfg2); err != nil {
						return "", err
					}
					dev.ResetStats()
					res, err := linkbench.Run(eng, cfg2)
					if err != nil {
						return "", err
					}
					tput[i] = res.Throughput
				}
				tb.AddRow(depth, fmtThroughput(tput[0]), fmtThroughput(tput[1]),
					ratio(tput[1], tput[0]))
				r.Metric(fmt.Sprintf("dwb_on_tps_qd%d", depth), tput[0], "tps")
				r.Metric(fmt.Sprintf("share_tps_qd%d", depth), tput[1], "tps")
			}
			return tb.String() + "\nThe OpenSSD prototype is effectively serial (depth 1); modern\ndrives overlap commands, which absorbs part of the doubled write\ntraffic and narrows (but does not erase) the SHARE advantage.\n", nil
		},
	})
}
