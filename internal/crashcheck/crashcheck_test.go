package crashcheck

import (
	"testing"

	"share/internal/innodb"
	"share/internal/nand"
	"share/internal/pgmini"
)

// Transaction counts per workload. Small enough that the exhaustive
// boundary space stays tractable, large enough to cross several engine
// checkpoints and couch batch commits.
const (
	innoTxns  = 24
	pgTxns    = 24
	couchTxns = 26
)

func TestCrashMatrixInnoDBDWB(t *testing.T) {
	Matrix(t, "innodb/dwb", func() (Stack, error) { return NewInnoDB(innodb.DWBOn) }, innoTxns)
}

func TestCrashMatrixInnoDBShare(t *testing.T) {
	Matrix(t, "innodb/share", func() (Stack, error) { return NewInnoDB(innodb.Share) }, innoTxns)
}

func TestCrashMatrixPgFPW(t *testing.T) {
	Matrix(t, "pgmini/fpw", func() (Stack, error) { return NewPg(pgmini.FPWOn, pgTxns) }, pgTxns)
}

func TestCrashMatrixPgShare(t *testing.T) {
	Matrix(t, "pgmini/share", func() (Stack, error) { return NewPg(pgmini.FPWShare, pgTxns) }, pgTxns)
}

func TestCrashMatrixCouchCopy(t *testing.T) {
	Matrix(t, "couch/copy", func() (Stack, error) { return NewCouch(false) }, couchTxns)
}

func TestCrashMatrixCouchShare(t *testing.T) {
	Matrix(t, "couch/share", func() (Stack, error) { return NewCouch(true) }, couchTxns)
}

// faultPlan builds the standard absorbable-fault schedule used by the
// per-engine fault runs: a transient program fault, a permanent program
// failure (block retirement mid-workload), an ECC-corrected read and an
// ECC-uncorrectable read that the FTL read-retry path recovers.
func faultPlan(seed int64) *nand.FaultPlan {
	return nand.NewFaultPlan(seed).
		AtProgram(5, nand.FaultProgramTransient).
		AtProgram(40, nand.FaultProgramPermanent).
		AtRead(9, nand.FaultReadCorrectable).
		AtRead(25, nand.FaultReadUncorrectable)
}

func TestFaultPlanInnoDB(t *testing.T) {
	for _, mode := range []innodb.FlushMode{innodb.DWBOn, innodb.Share} {
		s, err := NewInnoDB(mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Devices()[0].SetFaultPlan(faultPlan(7)); err != nil {
			t.Fatal(err)
		}
		FaultRun(t, "innodb/"+mode.String(), s, innoTxns)
	}
}

func TestFaultPlanPg(t *testing.T) {
	for _, mode := range []pgmini.Mode{pgmini.FPWOn, pgmini.FPWShare} {
		s, err := NewPg(mode, pgTxns)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Devices()[0].SetFaultPlan(faultPlan(11)); err != nil {
			t.Fatal(err)
		}
		FaultRun(t, "pgmini", s, pgTxns)
	}
}

func TestFaultPlanCouch(t *testing.T) {
	for _, share := range []bool{false, true} {
		s, err := NewCouch(share)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Devices()[0].SetFaultPlan(faultPlan(13)); err != nil {
			t.Fatal(err)
		}
		FaultRun(t, "couch", s, couchTxns)
	}
}
