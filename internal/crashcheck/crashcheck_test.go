package crashcheck

import (
	"testing"

	"share/internal/innodb"
	"share/internal/nand"
	"share/internal/pgmini"
)

// Transaction counts per workload. Small enough that the exhaustive
// boundary space stays tractable, large enough to cross several engine
// checkpoints and couch batch commits.
const (
	innoTxns        = 24
	pgTxns          = 24
	couchTxns       = 26
	couchPatrolTxns = 14
)

func TestCrashMatrixInnoDBDWB(t *testing.T) {
	Matrix(t, "innodb/dwb", func() (Stack, error) { return NewInnoDB(innodb.DWBOn) }, innoTxns)
}

func TestCrashMatrixInnoDBShare(t *testing.T) {
	Matrix(t, "innodb/share", func() (Stack, error) { return NewInnoDB(innodb.Share) }, innoTxns)
}

func TestCrashMatrixPgFPW(t *testing.T) {
	Matrix(t, "pgmini/fpw", func() (Stack, error) { return NewPg(pgmini.FPWOn, pgTxns) }, pgTxns)
}

func TestCrashMatrixPgShare(t *testing.T) {
	Matrix(t, "pgmini/share", func() (Stack, error) { return NewPg(pgmini.FPWShare, pgTxns) }, pgTxns)
}

func TestCrashMatrixCouchCopy(t *testing.T) {
	Matrix(t, "couch/copy", func() (Stack, error) { return NewCouch(false) }, couchTxns)
}

func TestCrashMatrixCouchShare(t *testing.T) {
	Matrix(t, "couch/share", func() (Stack, error) { return NewCouch(true) }, couchTxns)
}

// TestCrashMatrixCouchPatrol power-cuts inside patrol-scrub refresh windows:
// the stack runs on aging media with the patrol scrubber interleaved between
// transactions, so block refreshes (relocate + erase) are part of the
// measured boundary space and the matrix crashes inside them. A preliminary
// clean run proves the patrol actually refreshes blocks under this tuning —
// otherwise the matrix would be the plain couch test wearing a costume.
func TestCrashMatrixCouchPatrol(t *testing.T) {
	build := func() (Stack, error) { return NewCouchPatrol() }
	s, err := build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < couchPatrolTxns; i++ {
		if err := s.Step(i); err != nil {
			t.Fatalf("clean patrol run step %d: %v", i, err)
		}
	}
	st := s.Devices()[0].LifetimeStats()
	if st.FTL.PatrolRefreshes == 0 {
		t.Fatal("patrol never refreshed a block; the crash matrix would not cover refresh windows")
	}
	if st.FTL.UncorrectableReads != 0 || st.FTL.LostPages != 0 {
		t.Fatalf("aging model lost data in the clean run (uncorrectable %d, lost pages %d); "+
			"crash tests require fully recoverable media", st.FTL.UncorrectableReads, st.FTL.LostPages)
	}
	Matrix(t, "couch/patrol", build, couchPatrolTxns)
}

// faultPlan builds the standard absorbable-fault schedule used by the
// per-engine fault runs: a transient program fault, a permanent program
// failure (block retirement mid-workload), an ECC-corrected read and an
// ECC-uncorrectable read that the FTL read-retry path recovers.
func faultPlan(seed int64) *nand.FaultPlan {
	return nand.NewFaultPlan(seed).
		AtProgram(5, nand.FaultProgramTransient).
		AtProgram(40, nand.FaultProgramPermanent).
		AtRead(9, nand.FaultReadCorrectable).
		AtRead(25, nand.FaultReadUncorrectable)
}

func TestFaultPlanInnoDB(t *testing.T) {
	for _, mode := range []innodb.FlushMode{innodb.DWBOn, innodb.Share} {
		s, err := NewInnoDB(mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Devices()[0].SetFaultPlan(faultPlan(7)); err != nil {
			t.Fatal(err)
		}
		FaultRun(t, "innodb/"+mode.String(), s, innoTxns)
	}
}

func TestFaultPlanPg(t *testing.T) {
	for _, mode := range []pgmini.Mode{pgmini.FPWOn, pgmini.FPWShare} {
		s, err := NewPg(mode, pgTxns)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Devices()[0].SetFaultPlan(faultPlan(11)); err != nil {
			t.Fatal(err)
		}
		FaultRun(t, "pgmini", s, pgTxns)
	}
}

func TestFaultPlanCouch(t *testing.T) {
	for _, share := range []bool{false, true} {
		s, err := NewCouch(share)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Devices()[0].SetFaultPlan(faultPlan(13)); err != nil {
			t.Fatal(err)
		}
		FaultRun(t, "couch", s, couchTxns)
	}
}

// TestCrashConcurrentInnoDBDWB and ...Share are the concurrent-session
// crash cells: four scheduler sessions commit multi-key transactions
// through the group-commit path while the power cut lands — including
// inside coalesced log flushes carrying several commit records — and the
// partitioned oracle checks per-session atomicity and durability.
func TestCrashConcurrentInnoDBDWB(t *testing.T) {
	ConcurrentMatrix(t, "innodb-conc/dwb", innodb.DWBOn)
}

func TestCrashConcurrentInnoDBShare(t *testing.T) {
	ConcurrentMatrix(t, "innodb-conc/share", innodb.Share)
}
