// Package crashcheck is the whole-stack crash-recovery harness: a shared
// durability oracle drives a deterministic transaction workload against
// each host engine (innodb, pgmini, couch) over the simulated flash
// stack, injects a power cut at every device program/erase boundary (or a
// seeded sample in -short mode), restarts the stack — FTL recovery, file
// system journal replay, engine recovery — and asserts that no
// acknowledged transaction was lost and no unacknowledged transaction
// surfaced partially.
//
// The oracle is a pure model of the workload: transaction i's effects are
// a deterministic function of i, so the recovered engine state must equal
// the model after exactly `committed` transactions, or after
// `committed+1` when the in-flight transaction's commit record became
// durable just before the ack was lost. Anything else — a lost commit, a
// phantom write, a torn multi-key transaction — fails the run.
//
// Sampling is controlled by the CRASHCHECK_SEED environment variable
// (default seed 1), so a failing sampled run can be reproduced exactly by
// exporting the same seed.
package crashcheck

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"

	"share/internal/ssd"
)

// Stack is one engine + device stack under crash test.
type Stack interface {
	// Devices returns the devices whose program/erase boundaries the
	// harness cuts. Index 0 is the data device.
	Devices() []*ssd.Device
	// Step applies transaction i. A non-nil error means the transaction
	// was not acknowledged (the device lost power mid-flight).
	Step(i int) error
	// Reopen power-cycles every device and reopens the whole stack,
	// running crash recovery at each layer.
	Reopen() error
	// Verify checks the recovered state against the oracle: it must equal
	// the model state after `committed` transactions, or after `attempted`
	// when the in-flight commit became durable before its ack. Any other
	// state is an error.
	Verify(committed, attempted int) error
}

// shortSample is how many crash points are sampled per device in -short
// mode (the first and last boundary are always included).
const shortSample = 8

// Seed returns the crash-point sampling seed: the CRASHCHECK_SEED
// environment variable if set, else 1.
func Seed() int64 {
	if s := os.Getenv("CRASHCHECK_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// cutPoints selects which boundaries in [1, total] to crash at. Long mode
// is exhaustive; -short samples shortSample points seeded by Seed()^salt.
func cutPoints(total int64, short bool, salt int64) []int64 {
	if total <= 0 {
		return nil
	}
	if !short || total <= shortSample {
		all := make([]int64, total)
		for i := range all {
			all[i] = int64(i) + 1
		}
		return all
	}
	rng := rand.New(rand.NewSource(Seed() ^ salt))
	picked := map[int64]bool{1: true, total: true}
	for len(picked) < shortSample {
		picked[2+rng.Int63n(total-2)] = true
	}
	out := make([]int64, 0, len(picked))
	for c := range picked {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Matrix runs the crash matrix for one stack configuration: it measures
// the boundary space of the workload on every device with a clean run
// (verifying recovery of the complete workload along the way), then
// crashes a fresh stack at each selected boundary of each device and
// verifies the durability oracle after recovery.
func Matrix(t testing.TB, name string, build func() (Stack, error), txns int) {
	s, err := build()
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}
	devs := s.Devices()
	before := make([]int64, len(devs))
	for i, d := range devs {
		before[i] = d.MutatingOps()
	}
	for i := 0; i < txns; i++ {
		if err := s.Step(i); err != nil {
			t.Fatalf("%s: clean run step %d: %v", name, i, err)
		}
	}
	totals := make([]int64, len(devs))
	for i, d := range devs {
		totals[i] = d.MutatingOps() - before[i]
	}
	// A crash after the full workload must preserve everything.
	if err := s.Reopen(); err != nil {
		t.Fatalf("%s: clean run reopen: %v", name, err)
	}
	if err := s.Verify(txns, txns); err != nil {
		t.Fatalf("%s: clean run: %v", name, err)
	}

	short := testing.Short()
	for di := range devs {
		cuts := cutPoints(totals[di], short, int64(di)*7919+int64(len(name)))
		for _, cut := range cuts {
			runCut(t, name, build, txns, di, cut, totals[di])
		}
	}
}

// runCut builds a fresh stack, arms a power cut after `cut` more
// program/erase operations on device di, drives the workload until it
// fails (or completes), then restarts the stack and checks the oracle.
func runCut(t testing.TB, name string, build func() (Stack, error), txns, di int, cut, total int64) {
	s, err := build()
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}
	devs := s.Devices()
	devs[di].PowerCutAfter(cut)
	committed, attempted := 0, 0
	for i := 0; i < txns; i++ {
		attempted = i + 1
		if err := s.Step(i); err != nil {
			break
		}
		committed = i + 1
	}
	for _, d := range devs {
		d.DisablePowerCut()
	}
	where := fmt.Sprintf("%s: dev %d cut %d/%d (committed %d, attempted %d, seed %d)",
		name, di, cut, total, committed, attempted, Seed())
	if err := s.Reopen(); err != nil {
		t.Fatalf("%s: reopen: %v", where, err)
	}
	if err := s.Verify(committed, attempted); err != nil {
		t.Fatalf("%s: %v", where, err)
	}
}

// FaultRun drives the full workload under a NAND fault plan already
// installed on the stack's devices, then crashes and verifies complete
// recovery. The plan's faults must be ones the stack absorbs (transient
// program faults, retired blocks, ECC-corrected or retried reads) so every
// transaction still acknowledges.
func FaultRun(t testing.TB, name string, s Stack, txns int) {
	for i := 0; i < txns; i++ {
		if err := s.Step(i); err != nil {
			t.Fatalf("%s: step %d under fault plan: %v", name, i, err)
		}
	}
	if err := s.Reopen(); err != nil {
		t.Fatalf("%s: reopen after faults: %v", name, err)
	}
	if err := s.Verify(txns, txns); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

// diffStates compares an engine state snapshot against the two acceptable
// model states and returns nil when either matches exactly.
func diffStates(got, afterCommitted, afterAttempted map[string]string) error {
	if equalState(got, afterCommitted) || equalState(got, afterAttempted) {
		return nil
	}
	// Report the first divergence against the committed-state model.
	for k, w := range afterCommitted {
		g, ok := got[k]
		if !ok {
			return fmt.Errorf("durability violation: %q missing (want %q)", k, w)
		}
		if g != w && afterAttempted[k] != g {
			return fmt.Errorf("durability violation: %q = %q, want %q (committed) or %q (in-flight)",
				k, g, w, afterAttempted[k])
		}
	}
	return fmt.Errorf("torn recovery: state mixes committed and in-flight transaction effects")
}

func equalState(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
