package crashcheck

import (
	"fmt"
	"testing"

	"share/internal/fsim"
	"share/internal/innodb"
	"share/internal/sim"
	"share/internal/ssd"
)

// Concurrent-session crash cell: several sessions commit multi-key
// transactions through the engine's group-commit path at the same
// (virtual) time when the power cut lands, so a cut can fall inside a
// coalesced log flush that carries several transactions' commit records.
// Sessions run as scheduler tasks, which makes the interleaving — and
// therefore every cut point — deterministic and reproducible.
//
// The sequential Matrix oracle (state equals the model after `committed`
// or `attempted` transactions) does not apply when commits interleave,
// so this cell partitions the keyspace: session s owns concKeysPer keys
// that only its own transactions touch, and transaction j of a session
// writes value j to every owned key. After recovery each partition must
// be atomic and durable on its own: all of a session's keys carry the
// same transaction index j*, with acked <= j* <= attempted. A smaller j*
// is a lost acknowledged commit; a larger one is a phantom; disagreeing
// keys are a torn transaction — the multi-tenant torn-write bug class
// that page stealing from an unsynced transaction would produce.
const (
	concSessions = 4
	concTxnsPer  = 10
	concKeysPer  = 3
)

type concInnoStack struct {
	task *sim.Task
	data *ssd.Device
	log  *ssd.Device
	eng  *innodb.Engine
	tbl  *innodb.Table
	cfg  innodb.Config
}

func concKey(sess, k int) []byte { return []byte(fmt.Sprintf("s%dk%d", sess, k)) }
func concVal(sess, j int) []byte { return []byte(fmt.Sprintf("s%d-t%03d", sess, j)) }

// newConcInno builds an innodb stack preloaded with every session's keys
// at transaction index 0.
func newConcInno(mode innodb.FlushMode) (*concInnoStack, error) {
	data, err := newDataDevice("cc-conc-data")
	if err != nil {
		return nil, err
	}
	task := sim.NewSoloTask("crashcheck-conc")
	fs, err := fsim.Format(task, data, 32)
	if err != nil {
		return nil, err
	}
	logDev, err := newLogDevice("cc-conc-log")
	if err != nil {
		return nil, err
	}
	cfg := innodb.Config{
		PageSize:  1024,
		PoolBytes: 64 * 1024,
		FlushMode: mode,
		DWBPages:  8,
		DataBytes: 1024 * 1024,
		LogPages:  2048,
	}
	eng, err := innodb.Open(task, fs, logDev, cfg)
	if err != nil {
		return nil, err
	}
	tbl, err := eng.CreateTable(task, "t")
	if err != nil {
		return nil, err
	}
	tx := eng.Begin(task)
	for sess := 0; sess < concSessions; sess++ {
		for k := 0; k < concKeysPer; k++ {
			if err := tx.Put(tbl, concKey(sess, k), concVal(sess, 0)); err != nil {
				return nil, err
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	if err := eng.Checkpoint(task); err != nil {
		return nil, err
	}
	return &concInnoStack{task: task, data: data, log: logDev, eng: eng, tbl: tbl, cfg: cfg}, nil
}

// runSessions drives every session's transactions on one scheduler and
// reports, per session, the last acknowledged transaction index and the
// last attempted one (attempted == acked+1 when a commit died mid-flight).
func (s *concInnoStack) runSessions() (acked, attempted [concSessions]int) {
	sched := sim.NewScheduler()
	for sess := 0; sess < concSessions; sess++ {
		sess := sess
		sched.Go(fmt.Sprintf("sess%d", sess), func(task *sim.Task) {
			for j := 1; j <= concTxnsPer; j++ {
				attempted[sess] = j
				tx := s.eng.Begin(task)
				ok := true
				for k := 0; k < concKeysPer; k++ {
					if err := tx.Put(s.tbl, concKey(sess, k), concVal(sess, j)); err != nil {
						tx.Rollback()
						ok = false
						break
					}
				}
				if !ok {
					return
				}
				if err := tx.Commit(); err != nil {
					return
				}
				acked[sess] = j
			}
		})
	}
	sched.Run()
	return acked, attempted
}

func (s *concInnoStack) reopen() error {
	for _, d := range []*ssd.Device{s.data, s.log} {
		d.Crash()
		if err := d.Recover(s.task); err != nil {
			return err
		}
	}
	fs, err := fsim.Mount(s.task, s.data)
	if err != nil {
		return err
	}
	eng, err := innodb.Open(s.task, fs, s.log, s.cfg)
	if err != nil {
		return err
	}
	s.eng = eng
	s.tbl = eng.Table("t")
	if s.tbl == nil {
		return fmt.Errorf("table lost across recovery")
	}
	return nil
}

// verify checks each session's partition for atomicity and durability.
func (s *concInnoStack) verify(acked, attempted [concSessions]int) error {
	tx := s.eng.Begin(s.task)
	defer tx.Rollback()
	for sess := 0; sess < concSessions; sess++ {
		vals := make([]string, concKeysPer)
		for k := 0; k < concKeysPer; k++ {
			v, ok, err := tx.Get(s.tbl, concKey(sess, k))
			if err != nil {
				return fmt.Errorf("read %s: %v", concKey(sess, k), err)
			}
			if !ok {
				return fmt.Errorf("key %s missing after recovery", concKey(sess, k))
			}
			vals[k] = string(v)
		}
		for k := 1; k < concKeysPer; k++ {
			if vals[k] != vals[0] {
				return fmt.Errorf("torn transaction: session %d keys disagree after recovery: %q vs %q",
					sess, vals[0], vals[k])
			}
		}
		// Map the recovered value back to a transaction index.
		jStar := -1
		for j := 0; j <= concTxnsPer; j++ {
			if vals[0] == string(concVal(sess, j)) {
				jStar = j
				break
			}
		}
		if jStar < 0 {
			return fmt.Errorf("session %d: unrecognized recovered value %q", sess, vals[0])
		}
		if jStar < acked[sess] {
			return fmt.Errorf("lost commit: session %d recovered txn %d, acked through %d",
				sess, jStar, acked[sess])
		}
		if jStar > attempted[sess] {
			return fmt.Errorf("phantom commit: session %d recovered txn %d, attempted only %d",
				sess, jStar, attempted[sess])
		}
	}
	return nil
}

// ConcurrentMatrix is the concurrent-session crash cell: it measures the
// boundary space with a clean run (all sessions must fully commit and
// survive a crash), then power-cuts a fresh stack at each selected
// boundary of each device while the sessions are running, recovers, and
// checks the partitioned oracle.
func ConcurrentMatrix(t testing.TB, name string, mode innodb.FlushMode) {
	s, err := newConcInno(mode)
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}
	devs := []*ssd.Device{s.data, s.log}
	before := make([]int64, len(devs))
	for i, d := range devs {
		before[i] = d.MutatingOps()
	}
	acked, attempted := s.runSessions()
	for sess := 0; sess < concSessions; sess++ {
		if acked[sess] != concTxnsPer {
			t.Fatalf("%s: clean run: session %d acked %d/%d", name, sess, acked[sess], concTxnsPer)
		}
	}
	totals := make([]int64, len(devs))
	for i, d := range devs {
		totals[i] = d.MutatingOps() - before[i]
	}
	if err := s.reopen(); err != nil {
		t.Fatalf("%s: clean run reopen: %v", name, err)
	}
	if err := s.verify(acked, attempted); err != nil {
		t.Fatalf("%s: clean run: %v", name, err)
	}

	short := testing.Short()
	for di := range devs {
		cuts := cutPoints(totals[di], short, int64(di)*104729+int64(len(name)))
		for _, cut := range cuts {
			runConcurrentCut(t, name, mode, di, cut, totals[di])
		}
	}
}

func runConcurrentCut(t testing.TB, name string, mode innodb.FlushMode, di int, cut, total int64) {
	s, err := newConcInno(mode)
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}
	devs := []*ssd.Device{s.data, s.log}
	devs[di].PowerCutAfter(cut)
	acked, attempted := s.runSessions()
	for _, d := range devs {
		d.DisablePowerCut()
	}
	where := fmt.Sprintf("%s: dev %d cut %d/%d (acked %v, attempted %v, seed %d)",
		name, di, cut, total, acked, attempted, Seed())
	if err := s.reopen(); err != nil {
		t.Fatalf("%s: reopen: %v", where, err)
	}
	if err := s.verify(acked, attempted); err != nil {
		t.Fatalf("%s: %v", where, err)
	}
}
