package crashcheck

import (
	"fmt"
	"math/rand"

	"share/internal/couch"
	"share/internal/fsim"
	"share/internal/innodb"
	"share/internal/nand"
	"share/internal/pgmini"
	"share/internal/sim"
	"share/internal/ssd"
)

// newDataDevice builds the standard small data device every stack uses.
func newDataDevice(name string) (*ssd.Device, error) {
	cfg := ssd.DefaultConfig(512)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	return ssd.New(name, cfg)
}

// newLogDevice builds the fast, power-capacitor-backed WAL device that
// innodb and pgmini put their logs on.
func newLogDevice(name string) (*ssd.Device, error) {
	cfg := ssd.DefaultConfig(256)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.Timing = nand.Timing{
		ReadPage: 20 * sim.Microsecond,
		Program:  50 * sim.Microsecond,
		Erase:    500 * sim.Microsecond,
		Transfer: 5 * sim.Microsecond,
	}
	cfg.FTL.PowerCapacitor = true
	return ssd.New(name, cfg)
}

// ---------------------------------------------------------------------------
// innodb

const (
	innoKeys     = 17
	innoCkptStep = 8 // checkpoint (flush batch through DWB/SHARE) cadence
)

type innoStack struct {
	task *sim.Task
	data *ssd.Device
	log  *ssd.Device
	eng  *innodb.Engine
	tbl  *innodb.Table
	cfg  innodb.Config
}

// NewInnoDB builds an innodb stack: data device + fsim + fast WAL device,
// one table preloaded with innoKeys rows.
func NewInnoDB(mode innodb.FlushMode) (Stack, error) {
	data, err := newDataDevice("cc-inno-data")
	if err != nil {
		return nil, err
	}
	task := sim.NewSoloTask("crashcheck")
	fs, err := fsim.Format(task, data, 32)
	if err != nil {
		return nil, err
	}
	logDev, err := newLogDevice("cc-inno-log")
	if err != nil {
		return nil, err
	}
	cfg := innodb.Config{
		PageSize:  1024,
		PoolBytes: 64 * 1024,
		FlushMode: mode,
		DWBPages:  8,
		DataBytes: 1024 * 1024,
		LogPages:  2048,
	}
	eng, err := innodb.Open(task, fs, logDev, cfg)
	if err != nil {
		return nil, err
	}
	tbl, err := eng.CreateTable(task, "t")
	if err != nil {
		return nil, err
	}
	tx := eng.Begin(task)
	for i := 0; i < innoKeys; i++ {
		if err := tx.Put(tbl, innoKey(i), []byte("init")); err != nil {
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	if err := eng.Checkpoint(task); err != nil {
		return nil, err
	}
	return &innoStack{task: task, data: data, log: logDev, eng: eng, tbl: tbl, cfg: cfg}, nil
}

func innoKey(i int) []byte { return []byte(fmt.Sprintf("key%02d", i)) }

// innoTxnKeys returns the three keys transaction i updates — spread so
// consecutive transactions overlap, making torn multi-key commits visible.
func innoTxnKeys(i int) []int {
	return []int{i % innoKeys, (i*5 + 1) % innoKeys, (i*11 + 3) % innoKeys}
}

func innoVal(i int) []byte { return []byte(fmt.Sprintf("txn%03d", i)) }

func (s *innoStack) Devices() []*ssd.Device { return []*ssd.Device{s.data, s.log} }

func (s *innoStack) Step(i int) error {
	tx := s.eng.Begin(s.task)
	for _, k := range innoTxnKeys(i) {
		if err := tx.Put(s.tbl, innoKey(k), innoVal(i)); err != nil {
			tx.Rollback()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if (i+1)%innoCkptStep == 0 {
		return s.eng.Checkpoint(s.task)
	}
	return nil
}

func (s *innoStack) Reopen() error {
	for _, d := range []*ssd.Device{s.data, s.log} {
		d.Crash()
		if err := d.Recover(s.task); err != nil {
			return err
		}
	}
	fs, err := fsim.Mount(s.task, s.data)
	if err != nil {
		return err
	}
	eng, err := innodb.Open(s.task, fs, s.log, s.cfg)
	if err != nil {
		return err
	}
	s.eng = eng
	s.tbl = eng.Table("t")
	if s.tbl == nil {
		return fmt.Errorf("table lost across recovery")
	}
	return nil
}

// innoModel is the oracle state after the first n transactions.
func innoModel(n int) map[string]string {
	m := make(map[string]string, innoKeys)
	for i := 0; i < innoKeys; i++ {
		m[string(innoKey(i))] = "init"
	}
	for i := 0; i < n; i++ {
		for _, k := range innoTxnKeys(i) {
			m[string(innoKey(k))] = string(innoVal(i))
		}
	}
	return m
}

func (s *innoStack) Verify(committed, attempted int) error {
	got := make(map[string]string, innoKeys)
	tx := s.eng.Begin(s.task)
	for i := 0; i < innoKeys; i++ {
		v, ok, err := tx.Get(s.tbl, innoKey(i))
		if err != nil {
			tx.Rollback()
			return fmt.Errorf("read %s: %v", innoKey(i), err)
		}
		if !ok {
			tx.Rollback()
			return fmt.Errorf("key %s missing after recovery", innoKey(i))
		}
		got[string(innoKey(i))] = string(v)
	}
	tx.Rollback()
	return diffStates(got, innoModel(committed), innoModel(attempted))
}

// ---------------------------------------------------------------------------
// pgmini

const pgCkptEvery = 10 // transactions per checkpoint: the matrix crosses it

type pgStack struct {
	task   *sim.Task
	data   *ssd.Device
	log    *ssd.Device
	db     *pgmini.DB
	cfg    pgmini.Config
	params []pgmini.TxnParams
}

// NewPg builds a pgmini stack with a deterministic TPC-B parameter list
// of `txns` transactions (seeded independently of the crash sampling).
func NewPg(mode pgmini.Mode, txns int) (Stack, error) {
	data, err := newDataDevice("cc-pg-data")
	if err != nil {
		return nil, err
	}
	task := sim.NewSoloTask("crashcheck")
	fs, err := fsim.Format(task, data, 32)
	if err != nil {
		return nil, err
	}
	logDev, err := newLogDevice("cc-pg-log")
	if err != nil {
		return nil, err
	}
	cfg := pgmini.Config{
		Scale: 1, Mode: mode, PageSize: 512, PoolBytes: 64 * 1024,
		CheckpointEvery: pgCkptEvery,
	}
	db, err := pgmini.Open(task, fs, logDev, cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(42))
	params := make([]pgmini.TxnParams, txns)
	for i := range params {
		params[i] = pgmini.TxnParams{
			Account:    rng.Intn(db.Accounts()),
			Teller:     rng.Intn(db.Tellers()),
			Branch:     rng.Intn(db.Branches()),
			Delta:      int64(rng.Intn(10000) - 5000),
			HistoryVal: uint64(rng.Int63()) | 1,
		}
	}
	return &pgStack{task: task, data: data, log: logDev, db: db, cfg: cfg, params: params}, nil
}

func (s *pgStack) Devices() []*ssd.Device { return []*ssd.Device{s.data, s.log} }

func (s *pgStack) Step(i int) error { return s.db.Txn(s.task, s.params[i]) }

func (s *pgStack) Reopen() error {
	for _, d := range []*ssd.Device{s.data, s.log} {
		d.Crash()
		if err := d.Recover(s.task); err != nil {
			return err
		}
	}
	fs, err := fsim.Mount(s.task, s.data)
	if err != nil {
		return err
	}
	db, err := pgmini.Open(s.task, fs, s.log, s.cfg)
	if err != nil {
		return err
	}
	s.db = db
	return nil
}

// pgModel returns the oracle balances of every touched row after the
// first n transactions, keyed "a<row>"/"t<row>"/"b<row>".
func (s *pgStack) pgModel(n int) map[string]string {
	m := make(map[string]string)
	for _, p := range s.params {
		m[fmt.Sprintf("a%d", p.Account)] = "0"
		m[fmt.Sprintf("t%d", p.Teller)] = "0"
		m[fmt.Sprintf("b%d", p.Branch)] = "0"
	}
	bal := make(map[string]int64)
	for i := 0; i < n; i++ {
		p := s.params[i]
		bal[fmt.Sprintf("a%d", p.Account)] += p.Delta
		bal[fmt.Sprintf("t%d", p.Teller)] += p.Delta
		bal[fmt.Sprintf("b%d", p.Branch)] += p.Delta
	}
	for k := range m {
		m[k] = fmt.Sprintf("%d", bal[k])
	}
	return m
}

func (s *pgStack) Verify(committed, attempted int) error {
	got := make(map[string]string)
	for _, p := range s.params {
		ab, err := s.db.Balance(s.task, p.Account)
		if err != nil {
			return fmt.Errorf("read account %d: %v", p.Account, err)
		}
		tb, err := s.db.TellerBalance(s.task, p.Teller)
		if err != nil {
			return fmt.Errorf("read teller %d: %v", p.Teller, err)
		}
		bb, err := s.db.BranchBalance(s.task, p.Branch)
		if err != nil {
			return fmt.Errorf("read branch %d: %v", p.Branch, err)
		}
		got[fmt.Sprintf("a%d", p.Account)] = fmt.Sprintf("%d", ab)
		got[fmt.Sprintf("t%d", p.Teller)] = fmt.Sprintf("%d", tb)
		got[fmt.Sprintf("b%d", p.Branch)] = fmt.Sprintf("%d", bb)
	}
	return diffStates(got, s.pgModel(committed), s.pgModel(attempted))
}

// ---------------------------------------------------------------------------
// couch

const couchKeys = 13

type couchStack struct {
	task  *sim.Task
	data  *ssd.Device
	store *couch.Store
	cfg   couch.Config
}

// NewCouch builds a couch stack preloaded with couchKeys documents.
// BatchSize 1 makes every Set an acknowledged commit.
func NewCouch(share bool) (Stack, error) {
	data, err := newDataDevice("cc-couch")
	if err != nil {
		return nil, err
	}
	task := sim.NewSoloTask("crashcheck")
	fs, err := fsim.Format(task, data, 32)
	if err != nil {
		return nil, err
	}
	cfg := couch.Config{BatchSize: 1, ShareMode: share}
	st, err := couch.Open(task, fs, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < couchKeys; i++ {
		if err := st.Set(task, couchKey(i), couchVal(-1)); err != nil {
			return nil, err
		}
	}
	return &couchStack{task: task, data: data, store: st, cfg: cfg}, nil
}

func couchKey(i int) []byte { return []byte(fmt.Sprintf("doc%02d", i)) }

// couchVal pads values to ~600 bytes so documents span two device pages
// (a torn document write would be visible as a corrupt read).
func couchVal(i int) []byte {
	v := make([]byte, 600)
	copy(v, fmt.Sprintf("txn%03d-", i))
	for j := 8; j < len(v); j++ {
		v[j] = byte(i + j)
	}
	return v
}

func (s *couchStack) Devices() []*ssd.Device { return []*ssd.Device{s.data} }

func (s *couchStack) Step(i int) error {
	return s.store.Set(s.task, couchKey(i%couchKeys), couchVal(i))
}

func (s *couchStack) Reopen() error {
	s.data.Crash()
	if err := s.data.Recover(s.task); err != nil {
		return err
	}
	fs, err := fsim.Mount(s.task, s.data)
	if err != nil {
		return err
	}
	st, err := couch.Open(s.task, fs, s.cfg)
	if err != nil {
		return err
	}
	s.store = st
	return nil
}

func (s *couchStack) couchModel(n int) map[string]string {
	m := make(map[string]string, couchKeys)
	for i := 0; i < couchKeys; i++ {
		m[string(couchKey(i))] = string(couchVal(-1))
	}
	for i := 0; i < n; i++ {
		m[string(couchKey(i%couchKeys))] = string(couchVal(i))
	}
	return m
}

func (s *couchStack) Verify(committed, attempted int) error {
	got := make(map[string]string, couchKeys)
	for i := 0; i < couchKeys; i++ {
		v, ok, err := s.store.Get(s.task, couchKey(i))
		if err != nil {
			return fmt.Errorf("read %s: %v", couchKey(i), err)
		}
		if !ok {
			return fmt.Errorf("doc %s missing after recovery", couchKey(i))
		}
		got[string(couchKey(i))] = string(v)
	}
	return diffStates(got, s.couchModel(committed), s.couchModel(attempted))
}

// ---------------------------------------------------------------------------
// couch on aging media under patrol scrubbing

const (
	// couchPatrolIdle is declared per transaction so retention risk climbs
	// fast enough that blocks keep crossing the patrol threshold.
	couchPatrolIdle = 150 * sim.Millisecond
	// couchPatrolSteps patrol steps run after every transaction.
	couchPatrolSteps = 2
)

// newAgingDataDevice builds the couch data device on endogenously decaying
// media tuned for crash testing: retention pulls blocks over the (lowered)
// patrol threshold within a few transactions so refreshes are frequent,
// while the effectively infinite retry/soft ECC limits guarantee every read
// stays recoverable. The point is to power-cut inside patrol refresh
// relocation/erase windows — never to lose data, which would change the
// durability oracle's semantics.
func newAgingDataDevice(name string) (*ssd.Device, error) {
	cfg := ssd.DefaultConfig(512)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.Media = &nand.MediaModel{
		Seed:            3,
		WearWeight:      1,
		DisturbWeight:   2,
		RetentionWeight: 400,
		RetentionUnit:   sim.Second,
		PageNoise:       20,
		FastLimit:       600,
		RetryLimit:      1 << 40,
		SoftLimit:       1 << 41,
	}
	cfg.FTL.PatrolThresholdPct = 50
	return ssd.New(name, cfg)
}

// couchPatrolStack ages its data device and drives the background patrol
// scrubber between transactions, so the crash matrix's program/erase
// boundary space includes points inside patrol refresh windows (a refresh
// relocates a whole block's live pages and erases it).
type couchPatrolStack struct {
	couchStack
}

// NewCouchPatrol builds a couch stack on aging media whose Step interleaves
// patrol scrubbing with the workload.
func NewCouchPatrol() (Stack, error) {
	data, err := newAgingDataDevice("cc-couch-patrol")
	if err != nil {
		return nil, err
	}
	task := sim.NewSoloTask("crashcheck")
	fs, err := fsim.Format(task, data, 32)
	if err != nil {
		return nil, err
	}
	cfg := couch.Config{BatchSize: 1, ShareMode: true}
	st, err := couch.Open(task, fs, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < couchKeys; i++ {
		if err := st.Set(task, couchKey(i), couchVal(-1)); err != nil {
			return nil, err
		}
	}
	return &couchPatrolStack{couchStack{task: task, data: data, store: st, cfg: cfg}}, nil
}

func (s *couchPatrolStack) Step(i int) error {
	if err := s.couchStack.Step(i); err != nil {
		return err
	}
	// Retained data ages between transactions, then the patrol gets its
	// duty-cycle slice. A power cut armed on the device fires inside these
	// refresh windows exactly as it does inside foreground commits.
	s.data.AdvanceMediaTime(couchPatrolIdle)
	for k := 0; k < couchPatrolSteps; k++ {
		if _, err := s.data.PatrolStep(s.task); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// innodb + flash-extended cache tier

// innoCacheKeys spreads the workload over enough btree pages that the
// deliberately tiny buffer pool keeps evicting through the cache tier.
const innoCacheKeys = 33

// newCacheDevice builds the dedicated flash-extended cache device: small
// and fast, contributing its own program/erase boundary space (cache
// fills, mapping-journal appends, map checkpoints, writebacks) to the
// crash matrix. spares, when non-zero, shrinks the block-retirement
// budget so injected permanent faults degrade it to read-only mid-run.
func newCacheDevice(name string, spares int) (*ssd.Device, error) {
	cfg := ssd.DefaultConfig(128)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.Timing = nand.Timing{
		ReadPage: 25 * sim.Microsecond,
		Program:  200 * sim.Microsecond,
		Erase:    1000 * sim.Microsecond,
		Transfer: 5 * sim.Microsecond,
	}
	if spares != 0 {
		cfg.FTL.SpareBlocks = spares
	}
	return ssd.New(name, cfg)
}

type innoCacheStack struct {
	task  *sim.Task
	data  *ssd.Device
	log   *ssd.Device
	cache *ssd.Device
	eng   *innodb.Engine
	tbl   *innodb.Table
	cfg   innodb.Config
}

// NewInnoDBCache builds an innodb stack with a flash-extended cache tier:
// data device + fsim + fast WAL device + dedicated cache device, and a
// buffer pool small enough that reads and flushes constantly spill
// through the cache. writeBack selects the durable-dirty cache mode
// (flush batches absorbed by the cache, written home at checkpoints);
// fault, when non-nil, installs a NAND fault plan on the cache device
// after the preload; cacheSpares, when non-zero, shrinks the cache
// device's block-retirement budget so injected permanent faults drive it
// into read-only degradation mid-run.
func NewInnoDBCache(writeBack bool, fault *nand.FaultPlan, cacheSpares int) (Stack, error) {
	data, err := newDataDevice("cc-innocache-data")
	if err != nil {
		return nil, err
	}
	task := sim.NewSoloTask("crashcheck")
	fs, err := fsim.Format(task, data, 32)
	if err != nil {
		return nil, err
	}
	logDev, err := newLogDevice("cc-innocache-log")
	if err != nil {
		return nil, err
	}
	cacheDev, err := newCacheDevice("cc-innocache-cache", cacheSpares)
	if err != nil {
		return nil, err
	}
	cfg := innodb.Config{
		PageSize:       1024,
		PoolBytes:      8 * 1024, // 8 frames: every step evicts through the cache
		FlushMode:      innodb.DWBOn,
		DWBPages:       8,
		DataBytes:      1024 * 1024,
		LogPages:       2048,
		CacheDev:       cacheDev,
		CacheWriteBack: writeBack,
	}
	eng, err := innodb.Open(task, fs, logDev, cfg)
	if err != nil {
		return nil, err
	}
	tbl, err := eng.CreateTable(task, "t")
	if err != nil {
		return nil, err
	}
	// Preload one key per transaction: the no-steal protocol protects a
	// transaction's dirty pages until commit, and the pool is deliberately
	// far smaller than the 33-key working set.
	for i := 0; i < innoCacheKeys; i++ {
		tx := eng.Begin(task)
		if err := tx.Put(tbl, innoCacheKey(i), innoCacheVal(-1)); err != nil {
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	if err := eng.Checkpoint(task); err != nil {
		return nil, err
	}
	if fault != nil {
		if err := cacheDev.SetFaultPlan(fault); err != nil {
			return nil, err
		}
	}
	return &innoCacheStack{task: task, data: data, log: logDev, cache: cacheDev,
		eng: eng, tbl: tbl, cfg: cfg}, nil
}

func innoCacheKey(i int) []byte { return []byte(fmt.Sprintf("ck%03d", i)) }

// innoCacheVal pads values to ~200 bytes so the working set spans far
// more pages than the pool holds — every transaction drives evictions
// (cache fills) and pool misses (cache reads).
func innoCacheVal(i int) []byte {
	v := make([]byte, 200)
	copy(v, fmt.Sprintf("txn%03d-", i))
	for j := 8; j < len(v); j++ {
		v[j] = byte(i*3 + j)
	}
	return v
}

// innoCacheTxnKeys returns the three keys transaction i updates.
func innoCacheTxnKeys(i int) []int {
	return []int{i % innoCacheKeys, (i*5 + 1) % innoCacheKeys, (i*11 + 3) % innoCacheKeys}
}

// Devices exposes all three tiers: the matrix power-cuts the cache
// device's fill/journal/checkpoint/writeback boundaries just like the
// data and log devices' commit boundaries.
func (s *innoCacheStack) Devices() []*ssd.Device {
	return []*ssd.Device{s.data, s.log, s.cache}
}

func (s *innoCacheStack) Step(i int) error {
	tx := s.eng.Begin(s.task)
	for _, k := range innoCacheTxnKeys(i) {
		if err := tx.Put(s.tbl, innoCacheKey(k), innoCacheVal(i)); err != nil {
			tx.Rollback()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	// Read a stride of keys so pool misses exercise the cache read path
	// (verify-on-read) between commits, not just the fill path.
	rtx := s.eng.Begin(s.task)
	for k := 0; k < 3; k++ {
		if _, _, err := rtx.Get(s.tbl, innoCacheKey((i*7+k*13)%innoCacheKeys)); err != nil {
			rtx.Rollback()
			return err
		}
	}
	rtx.Rollback()
	if (i+1)%innoCkptStep == 0 {
		return s.eng.Checkpoint(s.task)
	}
	return nil
}

func (s *innoCacheStack) Reopen() error {
	for _, d := range s.Devices() {
		d.Crash()
		if err := d.Recover(s.task); err != nil {
			return err
		}
	}
	fs, err := fsim.Mount(s.task, s.data)
	if err != nil {
		return err
	}
	eng, err := innodb.Open(s.task, fs, s.log, s.cfg)
	if err != nil {
		return err
	}
	s.eng = eng
	s.tbl = eng.Table("t")
	if s.tbl == nil {
		return fmt.Errorf("table lost across recovery")
	}
	return nil
}

// innoCacheModel is the oracle state after the first n transactions.
func innoCacheModel(n int) map[string]string {
	m := make(map[string]string, innoCacheKeys)
	for i := 0; i < innoCacheKeys; i++ {
		m[string(innoCacheKey(i))] = string(innoCacheVal(-1))
	}
	for i := 0; i < n; i++ {
		for _, k := range innoCacheTxnKeys(i) {
			m[string(innoCacheKey(k))] = string(innoCacheVal(i))
		}
	}
	return m
}

func (s *innoCacheStack) Verify(committed, attempted int) error {
	got := make(map[string]string, innoCacheKeys)
	tx := s.eng.Begin(s.task)
	for i := 0; i < innoCacheKeys; i++ {
		v, ok, err := tx.Get(s.tbl, innoCacheKey(i))
		if err != nil {
			tx.Rollback()
			return fmt.Errorf("read %s: %v", innoCacheKey(i), err)
		}
		if !ok {
			tx.Rollback()
			return fmt.Errorf("key %s missing after recovery", innoCacheKey(i))
		}
		got[string(innoCacheKey(i))] = string(v)
	}
	tx.Rollback()
	return diffStates(got, innoCacheModel(committed), innoCacheModel(attempted))
}
