package crashcheck

import (
	"testing"

	"share/internal/nand"
)

// innoCacheTxns is sized like the other cells: enough to cross several
// engine checkpoints (cache writebacks in durable mode) and wrap the
// mapping journal's fill cadence.
const innoCacheTxns = 24

// TestCrashMatrixInnoDBCache power-cuts at every program/erase boundary
// of all three tiers — data, log, and the flash-extended cache device —
// with the cache in clean (read-cache) mode. A cut on the cache device
// leaves it dead for the rest of the workload (fills degrade, reads fall
// back), so each matrix cell doubles as a mid-run cache-loss run; the
// durability oracle must hold everywhere.
func TestCrashMatrixInnoDBCache(t *testing.T) {
	Matrix(t, "innodb/cache", func() (Stack, error) {
		return NewInnoDBCache(false, nil, 0)
	}, innoCacheTxns)
}

// TestCrashMatrixInnoDBCacheWriteBack runs the same matrix with the
// durable-dirty cache: flush batches land on the cache device and reach
// their tablespace homes only at checkpoints, so the cache device's
// boundary space now includes dirty fills, mapping-journal appends and
// writeback-then-truncate windows. Zero committed loss is still required
// at every cut — dirty cache content is always redo-covered.
func TestCrashMatrixInnoDBCacheWriteBack(t *testing.T) {
	Matrix(t, "innodb/cache-wb", func() (Stack, error) {
		return NewInnoDBCache(true, nil, 0)
	}, innoCacheTxns)
}

// TestFaultPlanInnoDBCache drives the full workload with the standard
// absorbable-fault schedule installed on the *cache* device, in both
// cache modes, then crashes and requires complete recovery: cache-tier
// faults must never surface as transaction failures.
func TestFaultPlanInnoDBCache(t *testing.T) {
	for _, wb := range []bool{false, true} {
		s, err := NewInnoDBCache(wb, faultPlan(17), 0)
		if err != nil {
			t.Fatal(err)
		}
		name := "innodb/cache-fault"
		if wb {
			name = "innodb/cache-wb-fault"
		}
		FaultRun(t, name, s, innoCacheTxns)
	}
}

// TestCacheReadOnlyDegradationZeroLoss drives the cache device into
// read-only degradation mid-run: seeded permanent program faults retire
// blocks until the deliberately tiny spare budget is exhausted. The
// engine must keep acknowledging every transaction, surface the
// degradation in its stats, and recover the complete workload after a
// whole-machine crash.
func TestCacheReadOnlyDegradationZeroLoss(t *testing.T) {
	plan := nand.NewFaultPlan(23)
	plan.PProgramPermanent = 0.15
	stack, err := NewInnoDBCache(false, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := stack.(*innoCacheStack)
	for i := 0; i < innoCacheTxns; i++ {
		if err := s.Step(i); err != nil {
			t.Fatalf("step %d failed during cache degradation: %v", i, err)
		}
	}
	if !s.eng.Stats().CacheDegraded {
		t.Fatal("cache never degraded; raise the fault rate or shrink the spare budget")
	}
	if got := s.cache.Metrics().EventCounts()["cache-degraded"]; got != 1 {
		t.Fatalf("cache-degraded events = %d, want 1", got)
	}
	if err := s.Reopen(); err != nil {
		t.Fatalf("reopen after degradation: %v", err)
	}
	if err := s.Verify(innoCacheTxns, innoCacheTxns); err != nil {
		t.Fatal(err)
	}
}
