package bufpool

import (
	"bytes"
	"testing"

	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/ssd"
)

// directFlusher writes pages straight to the file (DWB-Off behaviour).
type directFlusher struct {
	file     *fsim.File
	pageSize int
	batches  int
	pages    int
}

func (d *directFlusher) FlushBatch(t *sim.Task, pages []PageImage) error {
	for _, pg := range pages {
		if _, err := d.file.WriteAt(t, pg.Data, int64(pg.PageNo)*int64(d.pageSize)); err != nil {
			return err
		}
	}
	d.batches++
	d.pages += len(pages)
	return d.file.Sync(t)
}

func testPool(t *testing.T, capacity int) (*Pool, *directFlusher, *sim.Task) {
	t.Helper()
	cfg := ssd.DefaultConfig(128)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 16
	dev, err := ssd.New("d", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	fs, err := fsim.Format(task, dev, 16)
	if err != nil {
		t.Fatal(err)
	}
	file, err := fs.Create(task, "data")
	if err != nil {
		t.Fatal(err)
	}
	fl := &directFlusher{file: file, pageSize: 512}
	pool, err := New(file, 512, capacity, fl)
	if err != nil {
		t.Fatal(err)
	}
	return pool, fl, task
}

func TestGetMissReadsZeroFreshPage(t *testing.T) {
	pool, _, task := testPool(t, 8)
	f, err := pool.Get(task, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	for _, b := range f.Data {
		if b != 0 {
			t.Fatal("fresh page not zero")
		}
	}
	if f.PageNo() != 3 {
		t.Fatalf("pageNo = %d", f.PageNo())
	}
}

func TestHitAfterMiss(t *testing.T) {
	pool, _, task := testPool(t, 8)
	f, _ := pool.Get(task, 1)
	f.Release()
	g, _ := pool.Get(task, 1)
	g.Release()
	st := pool.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDirtyPageFlushedOnEviction(t *testing.T) {
	pool, fl, task := testPool(t, 4)
	f, _ := pool.Get(task, 0)
	copy(f.Data, bytes.Repeat([]byte{0xAD}, 512))
	f.MarkDirty()
	f.Release()
	// Fill the pool far past capacity with dirty pages to force flushes.
	for i := uint32(1); i < 12; i++ {
		g, err := pool.Get(task, i)
		if err != nil {
			t.Fatal(err)
		}
		g.Data[0] = byte(i)
		g.MarkDirty()
		g.Release()
	}
	if fl.pages == 0 {
		t.Fatal("eviction never flushed dirty pages")
	}
	// Page 0 must read back with its data whether from pool or file.
	h, err := pool.Get(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Data[0] != 0xAD {
		t.Fatalf("page 0 data lost: %x", h.Data[0])
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	pool, _, task := testPool(t, 3)
	a, _ := pool.Get(task, 0)
	b, _ := pool.Get(task, 1)
	c, _ := pool.Get(task, 2)
	// All pinned: the next Get must fail.
	if _, err := pool.Get(task, 3); err == nil {
		t.Fatal("over-pinned pool did not error")
	}
	a.Release()
	b.Release()
	c.Release()
	d, err := pool.Get(task, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.Release()
}

func TestFlushAllCleansEverything(t *testing.T) {
	pool, _, task := testPool(t, 16)
	for i := uint32(0); i < 10; i++ {
		f, _ := pool.Get(task, i)
		f.Data[0] = byte(i + 1)
		f.MarkDirty()
		f.Release()
	}
	if pool.DirtyCount() != 10 {
		t.Fatalf("dirty = %d", pool.DirtyCount())
	}
	if err := pool.FlushAll(task); err != nil {
		t.Fatal(err)
	}
	if pool.DirtyCount() != 0 {
		t.Fatalf("dirty after FlushAll = %d", pool.DirtyCount())
	}
}

func TestReleasePanicsWhenUnpinned(t *testing.T) {
	pool, _, task := testPool(t, 4)
	f, _ := pool.Get(task, 0)
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	f.Release()
}

func TestDropDiscardsFrames(t *testing.T) {
	pool, _, task := testPool(t, 4)
	f, _ := pool.Get(task, 0)
	f.Data[0] = 0xFF
	f.MarkDirty()
	f.Release()
	pool.Drop()
	if pool.Len() != 0 {
		t.Fatal("frames survived Drop")
	}
	g, _ := pool.Get(task, 0)
	defer g.Release()
	if g.Data[0] == 0xFF {
		t.Fatal("dirty data survived Drop without a flush")
	}
}

func TestCapacityValidation(t *testing.T) {
	if _, err := New(nil, 512, 1, nil); err == nil {
		t.Fatal("capacity 1 accepted")
	}
}
