// Package bufpool implements the database buffer pool: a fixed number of
// page frames cached over a file, with LRU replacement, pin counts, a
// dirty (flush) list, and a pluggable batch flusher so the engine decides
// *how* dirty pages reach storage — in place (DWB-Off), through the
// doublewrite buffer (DWB-On), or via a doublewrite plus SHARE remap.
package bufpool

import (
	"container/list"
	"fmt"
	"io"

	"share/internal/fsim"
	"share/internal/sim"
)

// Flusher writes a batch of dirty pages to the data file durably. The
// engine supplies the policy (doublewrite, share, in-place).
type Flusher interface {
	FlushBatch(t *sim.Task, pages []PageImage) error
}

// PageImage is one dirty page handed to the Flusher.
type PageImage struct {
	PageNo uint32
	Data   []byte // owned by the pool frame; flushers must not retain it
}

// Frame is a pinned page in the pool. Callers mutate Data in place and
// call MarkDirty, then Release.
type Frame struct {
	pool   *Pool
	pageNo uint32
	Data   []byte
	pins   int
	dirty  bool
	elem   *list.Element // position in LRU
}

// Pool is a buffer pool over one file.
type Pool struct {
	file     *fsim.File
	pageSize int
	capacity int
	flusher  Flusher

	frames map[uint32]*Frame
	lru    *list.List // front = most recently used
	// FlushBatchSize is how many dirty pages are flushed together when
	// eviction or a checkpoint needs clean frames (the doublewrite batch).
	FlushBatchSize int
	// Protected, when set, excludes pages from FlushSome — the engine's
	// no-steal guard for pages dirtied by the transaction being applied.
	Protected func(pageNo uint32) bool
	// OnDirty, when set, is called each time a frame is marked dirty; the
	// engine uses it to collect the pages a transaction touched so their
	// images can be logged at commit.
	OnDirty func(pageNo uint32)
	// MissOverlay, when set, is consulted on a cache miss before the file:
	// a non-nil return supplies the page content. WAL-style engines use it
	// to serve pages whose newest version lives in the log, not the file.
	MissOverlay func(pageNo uint32) []byte
	// CacheRead, when set, is consulted on a miss after MissOverlay and
	// before the file read: returning true means dst was filled from a
	// second-tier cache (the flash-extended cache). On (false, nil) dst
	// must be left zeroed and the pool falls back to the file; an error
	// fails the Get (the cache holds the only live copy but cannot
	// produce it — falling back would serve stale data).
	CacheRead func(t *sim.Task, pageNo uint32, dst []byte) (bool, error)
	// OnEvict, when set, observes every clean frame leaving the pool with
	// its final content — the fill point of a flash-extended cache. The
	// callback must not retain data.
	OnEvict func(t *sim.Task, pageNo uint32, data []byte)

	// Stats.
	hits, misses int64
	evictions    int64
	flushedPages int64
}

// New builds a pool of capacity pages of pageSize bytes over file.
func New(file *fsim.File, pageSize, capacity int, flusher Flusher) (*Pool, error) {
	if capacity < 2 {
		return nil, fmt.Errorf("bufpool: capacity %d too small", capacity)
	}
	return &Pool{
		file:           file,
		pageSize:       pageSize,
		capacity:       capacity,
		flusher:        flusher,
		frames:         make(map[uint32]*Frame),
		lru:            list.New(),
		FlushBatchSize: 32,
	}, nil
}

// PageSize returns the pool's page size.
func (p *Pool) PageSize() int { return p.pageSize }

// Capacity returns the frame count.
func (p *Pool) Capacity() int { return p.capacity }

// Get pins the frame for pageNo, reading it from the file on a miss.
// Pages beyond EOF read as zeroes (fresh pages).
func (p *Pool) Get(t *sim.Task, pageNo uint32) (*Frame, error) {
	return p.get(t, pageNo, true)
}

// GetFresh pins the frame for pageNo without reading the file on a miss:
// the caller guarantees the page's current on-storage content is dead
// (e.g. the first touch of a newly extended heap page). The frame arrives
// zeroed.
func (p *Pool) GetFresh(t *sim.Task, pageNo uint32) (*Frame, error) {
	return p.get(t, pageNo, false)
}

func (p *Pool) get(t *sim.Task, pageNo uint32, read bool) (*Frame, error) {
	if f, ok := p.frames[pageNo]; ok {
		p.hits++
		f.pins++
		p.lru.MoveToFront(f.elem)
		return f, nil
	}
	p.misses++
	if err := p.makeRoom(t); err != nil {
		return nil, err
	}
	data := make([]byte, p.pageSize)
	served := false
	if ov := p.overlay(pageNo); ov != nil {
		copy(data, ov)
		served = true
	} else if read && p.CacheRead != nil {
		hit, err := p.CacheRead(t, pageNo, data)
		if err != nil {
			return nil, err
		}
		served = hit
	}
	if !served {
		off := int64(pageNo) * int64(p.pageSize)
		if read && off < p.file.Size() {
			if _, err := p.file.ReadAt(t, data, off); err != nil && err != io.EOF {
				return nil, err
			}
		}
	}
	f := &Frame{pool: p, pageNo: pageNo, Data: data, pins: 1}
	f.elem = p.lru.PushFront(f)
	p.frames[pageNo] = f
	return f, nil
}

// makeRoom evicts the least recently used unpinned clean frame, flushing a
// batch of dirty pages first if no clean victim exists.
func (p *Pool) makeRoom(t *sim.Task) error {
	for len(p.frames) >= p.capacity {
		victim := p.cleanVictim()
		if victim == nil {
			if err := p.FlushSome(t, p.FlushBatchSize); err != nil {
				return err
			}
			victim = p.cleanVictim()
			if victim == nil {
				return fmt.Errorf("bufpool: all %d frames pinned", p.capacity)
			}
		}
		if p.OnEvict != nil {
			p.OnEvict(t, victim.pageNo, victim.Data)
		}
		p.lru.Remove(victim.elem)
		delete(p.frames, victim.pageNo)
		p.evictions++
	}
	return nil
}

// cleanVictim returns the LRU unpinned clean frame, or nil.
func (p *Pool) cleanVictim() *Frame {
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins == 0 && !f.dirty {
			return f
		}
	}
	return nil
}

// FlushSome flushes up to n dirty unpinned pages (LRU-first) through the
// engine's Flusher as one batch.
func (p *Pool) FlushSome(t *sim.Task, n int) error {
	var batch []PageImage
	var frames []*Frame
	for e := p.lru.Back(); e != nil && len(batch) < n; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.dirty && f.pins == 0 && (p.Protected == nil || !p.Protected(f.pageNo)) {
			batch = append(batch, PageImage{PageNo: f.pageNo, Data: f.Data})
			frames = append(frames, f)
		}
	}
	if len(batch) == 0 {
		return nil
	}
	if err := p.flusher.FlushBatch(t, batch); err != nil {
		return err
	}
	for _, f := range frames {
		f.dirty = false
	}
	p.flushedPages += int64(len(batch))
	return nil
}

// FlushAll flushes every dirty page (checkpoint).
func (p *Pool) FlushAll(t *sim.Task) error {
	for {
		var batch []PageImage
		var frames []*Frame
		for e := p.lru.Back(); e != nil && len(batch) < p.FlushBatchSize; e = e.Prev() {
			f := e.Value.(*Frame)
			if f.dirty {
				batch = append(batch, PageImage{PageNo: f.pageNo, Data: f.Data})
				frames = append(frames, f)
			}
		}
		if len(batch) == 0 {
			return nil
		}
		if err := p.flusher.FlushBatch(t, batch); err != nil {
			return err
		}
		for _, f := range frames {
			f.dirty = false
		}
		p.flushedPages += int64(len(batch))
	}
}

// DirtyCount returns the number of dirty frames.
func (p *Pool) DirtyCount() int {
	n := 0
	for _, f := range p.frames {
		if f.dirty {
			n++
		}
	}
	return n
}

// Len returns the number of resident frames.
func (p *Pool) Len() int { return len(p.frames) }

// Stats reports pool activity.
type Stats struct {
	Hits, Misses, Evictions, FlushedPages int64
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	return Stats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions, FlushedPages: p.flushedPages}
}

// PageNo returns the frame's page number.
func (f *Frame) PageNo() uint32 { return f.pageNo }

// MarkDirty flags the frame for the next flush.
func (f *Frame) MarkDirty() {
	f.dirty = true
	if f.pool.OnDirty != nil {
		f.pool.OnDirty(f.pageNo)
	}
}

// Release unpins the frame.
func (f *Frame) Release() {
	if f.pins <= 0 {
		panic("bufpool: release of unpinned frame")
	}
	f.pins--
}

func (p *Pool) overlay(pageNo uint32) []byte {
	if p.MissOverlay == nil {
		return nil
	}
	return p.MissOverlay(pageNo)
}

// CleanAll marks every frame clean without writing anything — used by
// engines whose commit protocol made the content durable elsewhere (e.g.
// a write-ahead log) so the frames no longer need flushing.
func (p *Pool) CleanAll() {
	for _, f := range p.frames {
		f.dirty = false
	}
}

// Drop discards all frames without flushing (crash simulation).
func (p *Pool) Drop() {
	p.frames = make(map[uint32]*Frame)
	p.lru = list.New()
}
