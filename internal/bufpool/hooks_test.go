package bufpool

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"share/internal/sim"
)

func TestCacheReadServesMiss(t *testing.T) {
	pool, _, task := testPool(t, 4)
	want := bytes.Repeat([]byte{0xCD}, 512)
	var asked []uint32
	pool.CacheRead = func(_ *sim.Task, pageNo uint32, dst []byte) (bool, error) {
		asked = append(asked, pageNo)
		if pageNo == 7 {
			copy(dst, want)
			return true, nil
		}
		return false, nil
	}
	f, err := pool.Get(task, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Data, want) {
		t.Fatal("miss not served from CacheRead")
	}
	f.Release()
	// A resident page never consults the cache again.
	f2, err := pool.Get(task, 7)
	if err != nil {
		t.Fatal(err)
	}
	f2.Release()
	if len(asked) != 1 {
		t.Fatalf("CacheRead consulted %d times, want 1", len(asked))
	}
	// A cache miss (false, nil) falls through to the file: zero page here.
	f3, err := pool.Get(task, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Release()
	if !bytes.Equal(f3.Data, make([]byte, 512)) {
		t.Fatal("cache miss did not fall back to the file")
	}
}

func TestCacheReadErrorFailsGet(t *testing.T) {
	pool, _, task := testPool(t, 4)
	boom := errors.New("dirty entry unreadable")
	pool.CacheRead = func(_ *sim.Task, _ uint32, _ []byte) (bool, error) {
		return false, boom
	}
	if _, err := pool.Get(task, 1); !errors.Is(err, boom) {
		t.Fatalf("Get = %v, want the cache error", err)
	}
	// GetFresh skips reads entirely — the cache must not be consulted.
	pool.CacheRead = func(_ *sim.Task, _ uint32, _ []byte) (bool, error) {
		t.Fatal("CacheRead consulted on GetFresh")
		return false, nil
	}
	f, err := pool.GetFresh(task, 2)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
}

func TestOnEvictObservesCleanEvictions(t *testing.T) {
	pool, _, task := testPool(t, 4)
	evicted := map[uint32][]byte{}
	pool.OnEvict = func(_ *sim.Task, pageNo uint32, data []byte) {
		evicted[pageNo] = append([]byte(nil), data...)
	}
	// Touch 8 distinct pages through a 4-frame pool; each page gets
	// recognizable content via MarkDirty + flush before eviction.
	for p := uint32(0); p < 8; p++ {
		f, err := pool.Get(task, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Data {
			f.Data[i] = byte(p)
		}
		f.MarkDirty()
		f.Release()
		if err := pool.FlushAll(task); err != nil {
			t.Fatal(err)
		}
	}
	if len(evicted) == 0 {
		t.Fatal("no evictions observed")
	}
	for p, data := range evicted {
		if !bytes.Equal(data, bytes.Repeat([]byte{byte(p)}, 512)) {
			t.Fatalf("eviction of page %d carried wrong content", p)
		}
	}
	if pool.Stats().Evictions != int64(len(evicted)) {
		t.Fatalf("OnEvict calls %d != evictions %d", len(evicted), pool.Stats().Evictions)
	}
}

func TestHooksNilAreNoOps(t *testing.T) {
	pool, _, task := testPool(t, 2)
	for p := uint32(0); p < 6; p++ {
		f, err := pool.Get(task, p)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	if fmt.Sprint(pool.Stats()) == "" {
		t.Fatal("unprintable stats")
	}
}
