// Package randfill provides a fast drop-in replacement for
// math/rand.(*Rand).Read for workload generators that fill whole pages.
//
// The stock Read unpacks one Int63 into seven bytes with a per-byte
// shift-and-store loop, which profiles as the single hottest function in
// write-heavy experiments — more expensive than the simulated flash it
// feeds. Filler produces the identical byte stream with one 8-byte store
// per draw.
//
// The load-bearing property is source-stream equivalence, not just the
// bytes: benchmark clients interleave payload fills with placement draws
// (Intn) on the same *rand.Rand, and experiment results are pinned to the
// byte level by BENCH_*.json regression files. Filler therefore consumes
// exactly as many source draws as Read would — one Int63 per seven bytes,
// with the leftover bits carried across calls — so every interleaved Intn
// sees the value it always did. The one rule: once a Rand's fills are
// routed through a Filler, all of them must be; mixing Filler.Fill with
// direct rng.Read on the same Rand diverges the two carry states.
package randfill

import (
	"encoding/binary"
	"math/rand"
)

// Filler fills byte slices from a *rand.Rand with rand.Read's exact draw
// accounting. The zero carry state matches a Rand that has never had Read
// called on it.
type Filler struct {
	rng *rand.Rand
	val uint64 // carried bits of the last draw, low bytes valid
	rem int    // valid bytes remaining in val
}

// New returns a Filler drawing from rng. The rng may still be used for
// Intn/Int63/etc; only its Read method must not be called directly.
func New(rng *rand.Rand) *Filler { return &Filler{rng: rng} }

// Fill overwrites b with the same bytes rng.Read(b) would have produced,
// leaving the underlying source advanced by the same number of draws.
func (f *Filler) Fill(b []byte) {
	i := 0
	for f.rem > 0 && i < len(b) {
		b[i] = byte(f.val)
		f.val >>= 8
		f.rem--
		i++
	}
	for i+8 <= len(b) {
		// One draw covers seven payload bytes; the eighth lands in-bounds
		// and is overwritten by the next chunk (or the tail loop) exactly
		// where rand.Read would put the following draw's first byte.
		binary.LittleEndian.PutUint64(b[i:], uint64(f.rng.Int63()))
		i += 7
	}
	for i < len(b) {
		v := uint64(f.rng.Int63())
		n := 7
		for n > 0 && i < len(b) {
			b[i] = byte(v)
			v >>= 8
			n--
			i++
		}
		f.val, f.rem = v, n
	}
}
