package randfill

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestMatchesRandRead pins the two properties everything depends on: Fill
// produces byte-for-byte what rand.Read produces, and it leaves the source
// in the same state, so interleaved non-Read draws are unaffected. Sizes
// exercise the carry: multiples of 7, of 8, primes, and tiny fills that
// never drain the carried value.
func TestMatchesRandRead(t *testing.T) {
	sizes := []int{0, 1, 3, 6, 7, 8, 9, 13, 14, 56, 63, 64, 100, 4096, 8192, 8191}
	ref := rand.New(rand.NewSource(42))
	got := rand.New(rand.NewSource(42))
	f := New(got)
	for round := 0; round < 3; round++ {
		for _, n := range sizes {
			want := make([]byte, n)
			have := make([]byte, n)
			ref.Read(want)
			f.Fill(have)
			if !bytes.Equal(want, have) {
				t.Fatalf("round %d size %d: bytes diverge", round, n)
			}
			// Interleave a non-Read draw: both streams must agree, proving
			// Fill consumed exactly as many source values as Read.
			if a, b := ref.Int63(), got.Int63(); a != b {
				t.Fatalf("round %d size %d: source stream diverged (%d != %d)", round, n, a, b)
			}
		}
	}
}

func BenchmarkFill(b *testing.B) {
	f := New(rand.New(rand.NewSource(1)))
	page := make([]byte, 8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		f.Fill(page)
	}
}

func BenchmarkRandRead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	page := make([]byte, 8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		rng.Read(page)
	}
}
