package ftl

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"share/internal/nand"
)

// Property test: under a seeded random fault plan mixing transient and
// permanent program faults, erase faults and ECC-corrected reads, a long
// mixed workload completes with ZERO data loss — every acknowledged
// operation remains readable, shared-page refcounts and per-block valid
// counters reconcile after every recovery, and the device enters read-only
// mode only when the spare budget is provably exhausted.
func TestSeededFaultPlanZeroDataLoss(t *testing.T) {
	ops := 10000
	if testing.Short() {
		ops = 2500
	}
	chip, err := nand.New(nand.Geometry{PageSize: 512, PagesPerBlock: 16, Blocks: 64}, nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	plan := nand.NewFaultPlan(7)
	plan.PProgramTransient = 0.005
	plan.PProgramPermanent = 0.0001
	plan.PErase = 0.001
	plan.PReadCorrectable = 0.01
	if err := chip.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CheckpointLogPages = 8
	cfg.OverProvision = 0.25
	cfg.SpareBlocks = 8
	f, err := New(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	model := make([]uint16, f.Capacity())
	nextID := uint16(1)
	newID := func() uint16 {
		id := nextID
		nextID++
		if nextID == 0 {
			nextID = 1
		}
		return id
	}
	readBack := func(context string) {
		t.Helper()
		buf := make([]byte, f.PageSize())
		for l, want := range model {
			if _, err := f.Read(uint32(l), buf); err != nil {
				t.Fatalf("%s: read lpn %d: %v", context, l, err)
			}
			if got := binary.LittleEndian.Uint16(buf); got != want {
				t.Fatalf("%s: lpn %d = id %d, want %d (data loss)", context, l, got, want)
			}
		}
	}
	mappedLPN := func() (uint32, bool) {
		for try := 0; try < 20; try++ {
			l := rng.Intn(len(model))
			if model[l] != 0 {
				return uint32(l), true
			}
		}
		return 0, false
	}

	degraded := false
	executed := 0
workload:
	for i := 0; i < ops; i++ {
		if f.ReadOnly() {
			degraded = true
			break
		}
		var opErr error
		switch r := rng.Float64(); {
		case r < 0.55: // write
			lpn := uint32(rng.Intn(len(model)))
			id := newID()
			if _, opErr = f.Write(lpn, cpPage(f.PageSize(), id)); opErr == nil {
				model[lpn] = id
			}
		case r < 0.65: // trim
			lpn := uint32(rng.Intn(len(model)))
			if _, opErr = f.Trim(lpn, 1); opErr == nil {
				model[lpn] = 0
			}
		case r < 0.75: // share one pair
			src, ok := mappedLPN()
			if !ok {
				continue
			}
			dst := uint32(rng.Intn(len(model)))
			if dst == src {
				continue
			}
			if _, opErr = f.Share([]Pair{{Dst: dst, Src: src, Len: 1}}); opErr == nil {
				model[dst] = model[src]
			}
		case r < 0.83: // atomic multi-page write
			n := 2 + rng.Intn(3)
			base := rng.Intn(len(model) - n)
			pages := make([]AtomicPage, n)
			ids := make([]uint16, n)
			for k := 0; k < n; k++ {
				ids[k] = newID()
				pages[k] = AtomicPage{LPN: uint32(base + k), Data: cpPage(f.PageSize(), ids[k])}
			}
			if _, opErr = f.WriteAtomic(pages); opErr == nil {
				for k := 0; k < n; k++ {
					model[base+k] = ids[k]
				}
			}
		case r < 0.93: // flush
			_, opErr = f.Flush()
		default: // checkpoint
			_, opErr = f.Checkpoint()
		}
		if opErr != nil {
			if errors.Is(opErr, ErrReadOnly) {
				degraded = true
				break workload
			}
			t.Fatalf("op %d: %v", i, opErr)
		}
		executed++
		// Periodically crash after a flush and require exact recovery:
		// everything acknowledged before a flush must survive, and the
		// rebuilt refcounts/valid counters must reconcile.
		if executed%1000 == 0 {
			if _, err := f.Flush(); err != nil {
				t.Fatalf("periodic flush: %v", err)
			}
			f.Crash()
			if _, err := f.Recover(); err != nil {
				t.Fatalf("recover after %d ops: %v", executed, err)
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("invariants after %d ops: %v", executed, err)
			}
			readBack("after recovery")
		}
	}

	st := f.Stats()
	if st.ProgramRetries == 0 {
		t.Error("fault plan injected no transient program faults; raise probabilities")
	}
	// The permanent-fault rate is low enough that the truncated -short run
	// may legitimately see no retirement; the full run must.
	if st.RetiredBlocks == 0 && !testing.Short() {
		t.Error("fault plan retired no blocks; raise probabilities")
	}
	if chip.Stats().EccCorrected == 0 {
		t.Error("fault plan injected no correctable read faults")
	}
	if degraded {
		// Read-only is only legitimate once the spare budget is used up.
		if f.SpareBlocksLeft() != 0 {
			t.Fatalf("device degraded with %d spare blocks left", f.SpareBlocksLeft())
		}
		if st.RetiredBlocks <= int64(cfg.SpareBlocks) {
			t.Fatalf("device degraded after only %d retirements (budget %d)", st.RetiredBlocks, cfg.SpareBlocks)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	readBack("final") // zero data loss, degraded or not
	t.Logf("executed %d/%d ops; retries=%d retired=%d eraseFails=%d ecc=%d readOnly=%v",
		executed, ops, st.ProgramRetries, st.RetiredBlocks, st.EraseFails,
		chip.Stats().EccCorrected, degraded)
}

// TestSpareExhaustionDegradesGracefully drives an aggressive permanent-
// fault rate into a tiny spare budget until the device degrades, then
// verifies the degradation is honest: spares fully spent, reads intact.
func TestSpareExhaustionDegradesGracefully(t *testing.T) {
	chip, err := nand.New(nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32}, nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	plan := nand.NewFaultPlan(3)
	plan.PProgramPermanent = 0.02
	if err := chip.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CheckpointLogPages = 8
	cfg.SpareBlocks = 3
	f, err := New(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := make([]uint16, f.Capacity())
	id := uint16(1)
	for i := 0; i < 20000 && !f.ReadOnly(); i++ {
		lpn := uint32(i % f.Capacity())
		if _, err := f.Write(lpn, cpPage(f.PageSize(), id)); err != nil {
			if errors.Is(err, ErrReadOnly) {
				break
			}
			t.Fatalf("write %d: %v", i, err)
		}
		model[lpn] = id
		id++
		if id == 0 {
			id = 1
		}
	}
	if !f.ReadOnly() {
		t.Fatal("aggressive fault plan never exhausted the spare budget")
	}
	if f.SpareBlocksLeft() != 0 {
		t.Fatalf("read-only with %d spares left", f.SpareBlocksLeft())
	}
	if st := f.Stats(); st.RetiredBlocks <= int64(cfg.SpareBlocks) {
		t.Fatalf("read-only after only %d retirements (budget %d)", st.RetiredBlocks, cfg.SpareBlocks)
	}
	buf := make([]byte, f.PageSize())
	for l, want := range model {
		if _, err := f.Read(uint32(l), buf); err != nil {
			t.Fatalf("read lpn %d in degraded mode: %v", l, err)
		}
		if got := binary.LittleEndian.Uint16(buf); got != want {
			t.Fatalf("lpn %d = id %d, want %d: acknowledged write lost", l, got, want)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
