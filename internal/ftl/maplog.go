package ftl

import (
	"encoding/binary"
	"fmt"

	"share/internal/nand"
	"share/internal/sim"
)

// On-flash metadata layout. Both page kinds carry a 16-byte header followed
// by fixed-size entries. The ordering sequence number recovery relies on is
// embedded in the payload (not the OOB) so that garbage collection can
// relocate metadata pages without disturbing recovery order.
const (
	logMagic  = 0x464C4F47 // "FLOG"
	mapMagic  = 0x464D4150 // "FMAP"
	hdrSize   = 16
	deltaSize = 12
)

func (f *FTL) entriesPerLogPage() int { return (f.geo.PageSize - hdrSize) / deltaSize }
func (f *FTL) entriesPerMapPage() int { return (f.geo.PageSize - hdrSize) / 4 }

// markMapDirty records that the mapping page covering lpn diverges from its
// latest on-flash snapshot.
func (f *FTL) markMapDirty(lpn uint32) {
	f.mapDirty[int(lpn)/f.entriesPerMapPage()] = true
}

// appendDelta buffers one mapping change and flushes a full buffer. While a
// batch (SHARE / atomic write) is open, its own deltas (batchDelta true)
// accumulate in batchBuf until commitBatch, and a GC relocation touching an
// uncommitted page is folded into the pending delta — the relocated copy
// holds the same data, so one delta from the pre-batch page to the final
// location recovers correctly whichever side of the commit a crash lands.
func (f *FTL) appendDelta(d delta, batchDelta bool) (sim.Duration, error) {
	if f.inBatch {
		if i, ok := f.batchIdx[d.lpn]; ok {
			f.batchBuf[i].newPPN = d.newPPN // keep the pre-batch oldPPN
			return 0, nil
		}
		if batchDelta {
			f.batchIdx[d.lpn] = len(f.batchBuf)
			f.batchBuf = append(f.batchBuf, d)
			return 0, nil
		}
	}
	f.deltaBuf = append(f.deltaBuf, d)
	if len(f.deltaBuf) >= f.entriesPerLogPage() {
		return f.flushDeltaPage()
	}
	return 0, nil
}

// beginBatch opens an atomic batch: subsequent batch deltas are held back
// from the delta buffer until commitBatch.
func (f *FTL) beginBatch() {
	f.inBatch = true
	f.batchBuf = nil
	f.batchIdx = make(map[uint32]int)
}

// endBatch closes the batch unconditionally (deferred by the batch
// commands). After a successful commitBatch it is a no-op; on an error path
// the partial batch's deltas rejoin the ordinary buffer — atomicity is void
// for a failed command, but the in-memory mappings they describe must still
// become durable before GC may erase the superseded pages.
func (f *FTL) endBatch() {
	if !f.inBatch {
		return
	}
	f.inBatch = false
	f.deltaBuf = append(f.deltaBuf, f.batchBuf...)
	f.batchBuf, f.batchIdx = nil, nil
}

// commitBatch makes the open batch durable as one atomic delta-log page:
// older buffered deltas are flushed out first if the batch would not share
// a page with them, then the batch is programmed in a single page — the
// commit record. With a power capacitor the buffer itself is durable and
// the program is deferred.
func (f *FTL) commitBatch() (sim.Duration, error) {
	var total sim.Duration
	if len(f.deltaBuf) > 0 && len(f.deltaBuf)+len(f.batchBuf) > f.entriesPerLogPage() {
		d, err := f.flushDeltaPage()
		total += d
		if err != nil {
			return total, err
		}
	}
	f.inBatch = false
	f.deltaBuf = append(f.deltaBuf, f.batchBuf...)
	f.batchBuf, f.batchIdx = nil, nil
	if !f.cfg.PowerCapacitor && len(f.deltaBuf) > 0 {
		d, err := f.flushDeltaPage()
		total += d
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// flushDeltaPage programs the buffered deltas as atomic delta-log pages
// (one page per entriesPerLogPage chunk; the buffer exceeds a page only
// after an aborted batch folds back in).
func (f *FTL) flushDeltaPage() (sim.Duration, error) {
	var total sim.Duration
	for len(f.deltaBuf) > 0 {
		n := len(f.deltaBuf)
		if epp := f.entriesPerLogPage(); n > epp {
			n = epp
		}
		// Snapshot this page's entries into a recycled scratch slice and
		// compact the shared buffer in place. The copy is load-bearing:
		// programPage below can trigger GC whose relocation deltas append
		// to — and may re-entrantly flush — f.deltaBuf, so the entries
		// being programmed must not alias its backing array.
		entries := append(f.getDeltaBuf(), f.deltaBuf[:n]...)
		m := copy(f.deltaBuf, f.deltaBuf[n:])
		f.deltaBuf = f.deltaBuf[:m]
		f.logSeq++
		seq := f.logSeq
		buf := f.getPageBuf()
		for i := range buf {
			buf[i] = 0 // recycled scratch: the unused tail must program as zeros
		}
		binary.LittleEndian.PutUint32(buf[0:], logMagic)
		binary.LittleEndian.PutUint16(buf[6:], uint16(len(entries)))
		binary.LittleEndian.PutUint64(buf[8:], seq)
		off := hdrSize
		for _, e := range entries {
			binary.LittleEndian.PutUint32(buf[off:], e.lpn)
			binary.LittleEndian.PutUint32(buf[off+4:], e.oldPPN)
			binary.LittleEndian.PutUint32(buf[off+8:], e.newPPN)
			off += deltaSize
		}
		d, ppn, err := f.programPage(&f.meta, buf, nand.OOB{LPN: InvalidLPN, Tag: nand.TagMapLog})
		f.putPageBuf(buf)
		total += d
		if err != nil {
			// Fold the batch back into the buffer rather than dropping it:
			// on a capacitor-backed device these deltas may cover writes
			// already acknowledged to the host, and the crash-time capacitor
			// flush retries them once external power (and with it the
			// program path) is restored. The skipped seq leaves a harmless
			// gap — recovery orders log pages by seq, not contiguity. The
			// scratch slice migrates into deltaBuf here instead of returning
			// to the free list.
			f.deltaBuf = append(entries, f.deltaBuf...)
			return total, err
		}
		f.putDeltaBuf(entries)
		f.metaLive[ppn] = true
		f.blockValid[f.chip.BlockOf(ppn)]++
		f.logPPNs = append(f.logPPNs, ppn)
		f.logSeqs = append(f.logSeqs, seq)
		f.st.LogPagesWritten++
	}
	// A checkpoint mid-batch would snapshot uncommitted mappings; mid-GC it
	// would re-enter the GC that triggered this flush.
	if len(f.logPPNs) >= f.cfg.CheckpointLogPages && !f.inGC && !f.inBatch {
		cd, err := f.checkpoint()
		total += cd
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Checkpoint forces the buffered deltas out and snapshots every dirty
// mapping page, truncating the delta log.
func (f *FTL) Checkpoint() (sim.Duration, error) {
	total, err := f.flushDeltaPage()
	if err != nil {
		return total, err
	}
	d, err := f.checkpoint()
	return total + d, err
}

// checkpoint writes the dirty mapping pages and truncates the delta log.
// The reverse-mapping (share) table occupancy is released: every SHARE
// delta is now reflected in a durable snapshot.
func (f *FTL) checkpoint() (sim.Duration, error) {
	f.st.Checkpoints++
	mapBefore := f.st.MapPagesWritten
	var total sim.Duration
	epp := f.entriesPerMapPage()
	seq := f.logSeq
	buf := f.getPageBuf()
	defer f.putPageBuf(buf)
	for idx := range f.mapDirty {
		if !f.mapDirty[idx] {
			continue
		}
		for i := range buf {
			buf[i] = 0 // recycled scratch: the unused tail must program as zeros
		}
		binary.LittleEndian.PutUint32(buf[0:], mapMagic)
		binary.LittleEndian.PutUint32(buf[4:], uint32(idx))
		binary.LittleEndian.PutUint64(buf[8:], seq)
		start := idx * epp
		end := start + epp
		if end > f.capacity {
			end = f.capacity
		}
		off := hdrSize
		for i := start; i < end; i++ {
			binary.LittleEndian.PutUint32(buf[off:], f.l2p[i])
			off += 4
		}
		d, ppn, err := f.programPage(&f.meta, buf, nand.OOB{LPN: uint32(idx), Tag: nand.TagMapBase})
		total += d
		if err != nil {
			return total, err
		}
		f.st.MapPagesWritten++
		if old := f.mapDir[idx]; old != InvalidPPN && f.metaLive[old] {
			delete(f.metaLive, old)
			f.blockValid[f.chip.BlockOf(old)]--
		}
		f.metaLive[ppn] = true
		f.blockValid[f.chip.BlockOf(ppn)]++
		f.mapDir[idx] = ppn
		f.mapSeq[idx] = seq
		f.mapDirty[idx] = false
	}
	// Truncate every log page the new snapshots cover: those programmed
	// before this checkpoint began (payload seq <= the snapshot seq). Pages
	// appended during the checkpoint — GC relocation deltas, which may
	// cover map pages this checkpoint did not rewrite — stay live. The
	// decision is by sequence number, not position: GC may relocate a log
	// page mid-checkpoint, and a nested early checkpoint (GC running out of
	// space during the snapshot writes) may already have truncated part of
	// the list.
	// The kept entries compact in place (write index never passes the read
	// index, and no FTL call in this loop can touch the log lists), so
	// truncation allocates nothing.
	keptP := f.logPPNs[:0]
	keptS := f.logSeqs[:0]
	truncated := int64(0)
	for i, p := range f.logPPNs {
		if f.logSeqs[i] <= seq {
			if f.metaLive[p] {
				delete(f.metaLive, p)
				f.blockValid[f.chip.BlockOf(p)]--
			}
			truncated++
			continue
		}
		keptP = append(keptP, p)
		keptS = append(keptS, f.logSeqs[i])
	}
	f.logPPNs, f.logSeqs = keptP, keptS
	f.pendingShares = 0
	f.emit(Event{Type: EvCheckpoint, Block: -1,
		A: f.st.MapPagesWritten - mapBefore, B: truncated})
	return total, nil
}

func parseLogPage(buf []byte) (seq uint64, out []delta, err error) {
	if binary.LittleEndian.Uint32(buf[0:]) != logMagic {
		return 0, nil, fmt.Errorf("ftl: bad delta-log magic")
	}
	n := int(binary.LittleEndian.Uint16(buf[6:]))
	seq = binary.LittleEndian.Uint64(buf[8:])
	off := hdrSize
	for i := 0; i < n; i++ {
		out = append(out, delta{
			lpn:    binary.LittleEndian.Uint32(buf[off:]),
			oldPPN: binary.LittleEndian.Uint32(buf[off+4:]),
			newPPN: binary.LittleEndian.Uint32(buf[off+8:]),
		})
		off += deltaSize
	}
	return seq, out, nil
}

func parseMapPage(buf []byte) (idx int, seq uint64, err error) {
	if binary.LittleEndian.Uint32(buf[0:]) != mapMagic {
		return 0, 0, fmt.Errorf("ftl: bad map-page magic")
	}
	return int(binary.LittleEndian.Uint32(buf[4:])), binary.LittleEndian.Uint64(buf[8:]), nil
}
