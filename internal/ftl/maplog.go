package ftl

import (
	"encoding/binary"
	"fmt"

	"share/internal/nand"
	"share/internal/sim"
)

// On-flash metadata layout. Both page kinds carry a 16-byte header followed
// by fixed-size entries. The ordering sequence number recovery relies on is
// embedded in the payload (not the OOB) so that garbage collection can
// relocate metadata pages without disturbing recovery order.
const (
	logMagic  = 0x464C4F47 // "FLOG"
	mapMagic  = 0x464D4150 // "FMAP"
	hdrSize   = 16
	deltaSize = 12
)

func (f *FTL) entriesPerLogPage() int { return (f.geo.PageSize - hdrSize) / deltaSize }
func (f *FTL) entriesPerMapPage() int { return (f.geo.PageSize - hdrSize) / 4 }

// markMapDirty records that the mapping page covering lpn diverges from its
// latest on-flash snapshot.
func (f *FTL) markMapDirty(lpn uint32) {
	f.mapDirty[int(lpn)/f.entriesPerMapPage()] = true
}

// appendDelta buffers one mapping change and flushes a full buffer. The
// inShareBatch flag only documents call sites; batching policy is handled
// by Share itself.
func (f *FTL) appendDelta(d delta, inShareBatch bool) (sim.Duration, error) {
	_ = inShareBatch
	f.deltaBuf = append(f.deltaBuf, d)
	if len(f.deltaBuf) >= f.entriesPerLogPage() {
		return f.flushDeltaPage()
	}
	return 0, nil
}

// flushDeltaPage programs the buffered deltas as one atomic delta-log page.
func (f *FTL) flushDeltaPage() (sim.Duration, error) {
	if len(f.deltaBuf) == 0 {
		return 0, nil
	}
	entries := f.deltaBuf
	f.deltaBuf = nil
	if len(entries) > f.entriesPerLogPage() {
		panic("ftl: delta buffer overflow")
	}
	f.logSeq++
	seq := f.logSeq
	buf := make([]byte, f.geo.PageSize)
	binary.LittleEndian.PutUint32(buf[0:], logMagic)
	binary.LittleEndian.PutUint16(buf[6:], uint16(len(entries)))
	binary.LittleEndian.PutUint64(buf[8:], seq)
	off := hdrSize
	for _, e := range entries {
		binary.LittleEndian.PutUint32(buf[off:], e.lpn)
		binary.LittleEndian.PutUint32(buf[off+4:], e.oldPPN)
		binary.LittleEndian.PutUint32(buf[off+8:], e.newPPN)
		off += deltaSize
	}
	d, ppn, err := f.allocDataPage(&f.meta)
	if err != nil {
		return d, err
	}
	total := d
	pd, err := f.chip.Program(ppn, buf, nand.OOB{LPN: InvalidLPN, Tag: nand.TagMapLog})
	total += pd
	if err != nil {
		return total, err
	}
	f.metaLive[ppn] = true
	f.blockValid[f.chip.BlockOf(ppn)]++
	f.logPPNs = append(f.logPPNs, ppn)
	f.st.LogPagesWritten++
	if len(f.logPPNs) >= f.cfg.CheckpointLogPages && !f.inGC {
		cd, err := f.checkpoint()
		total += cd
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Checkpoint forces the buffered deltas out and snapshots every dirty
// mapping page, truncating the delta log.
func (f *FTL) Checkpoint() (sim.Duration, error) {
	total, err := f.flushDeltaPage()
	if err != nil {
		return total, err
	}
	d, err := f.checkpoint()
	return total + d, err
}

// checkpoint writes the dirty mapping pages and truncates the delta log.
// The reverse-mapping (share) table occupancy is released: every SHARE
// delta is now reflected in a durable snapshot.
func (f *FTL) checkpoint() (sim.Duration, error) {
	f.st.Checkpoints++
	var total sim.Duration
	epp := f.entriesPerMapPage()
	seq := f.logSeq
	// Snapshot writes below may trigger GC, whose relocation deltas land in
	// log pages appended during this checkpoint. Those deltas may cover map
	// pages this checkpoint does not rewrite, so only the log pages present
	// now — whose deltas are all covered by the dirty set — may be
	// truncated at the end.
	cut := len(f.logPPNs)
	for idx := range f.mapDirty {
		if !f.mapDirty[idx] {
			continue
		}
		buf := make([]byte, f.geo.PageSize)
		binary.LittleEndian.PutUint32(buf[0:], mapMagic)
		binary.LittleEndian.PutUint32(buf[4:], uint32(idx))
		binary.LittleEndian.PutUint64(buf[8:], seq)
		start := idx * epp
		end := start + epp
		if end > f.capacity {
			end = f.capacity
		}
		off := hdrSize
		for i := start; i < end; i++ {
			binary.LittleEndian.PutUint32(buf[off:], f.l2p[i])
			off += 4
		}
		d, ppn, err := f.allocDataPage(&f.meta)
		total += d
		if err != nil {
			return total, err
		}
		pd, err := f.chip.Program(ppn, buf, nand.OOB{LPN: uint32(idx), Tag: nand.TagMapBase})
		total += pd
		if err != nil {
			return total, err
		}
		f.st.MapPagesWritten++
		if old := f.mapDir[idx]; old != InvalidPPN && f.metaLive[old] {
			delete(f.metaLive, old)
			f.blockValid[f.chip.BlockOf(old)]--
		}
		f.metaLive[ppn] = true
		f.blockValid[f.chip.BlockOf(ppn)]++
		f.mapDir[idx] = ppn
		f.mapSeq[idx] = seq
		f.mapDirty[idx] = false
	}
	// Truncate the delta log prefix: every record in it is covered by a
	// snapshot now. Pages appended during the checkpoint stay live.
	for _, p := range f.logPPNs[:cut] {
		if f.metaLive[p] {
			delete(f.metaLive, p)
			f.blockValid[f.chip.BlockOf(p)]--
		}
	}
	f.logPPNs = append([]uint32(nil), f.logPPNs[cut:]...)
	f.pendingShares = 0
	return total, nil
}

func parseLogPage(buf []byte) (seq uint64, out []delta, err error) {
	if binary.LittleEndian.Uint32(buf[0:]) != logMagic {
		return 0, nil, fmt.Errorf("ftl: bad delta-log magic")
	}
	n := int(binary.LittleEndian.Uint16(buf[6:]))
	seq = binary.LittleEndian.Uint64(buf[8:])
	off := hdrSize
	for i := 0; i < n; i++ {
		out = append(out, delta{
			lpn:    binary.LittleEndian.Uint32(buf[off:]),
			oldPPN: binary.LittleEndian.Uint32(buf[off+4:]),
			newPPN: binary.LittleEndian.Uint32(buf[off+8:]),
		})
		off += deltaSize
	}
	return seq, out, nil
}

func parseMapPage(buf []byte) (idx int, seq uint64, err error) {
	if binary.LittleEndian.Uint32(buf[0:]) != mapMagic {
		return 0, 0, fmt.Errorf("ftl: bad map-page magic")
	}
	return int(binary.LittleEndian.Uint32(buf[4:])), binary.LittleEndian.Uint64(buf[8:]), nil
}
