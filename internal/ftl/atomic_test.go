package ftl

import (
	"errors"
	"testing"
)

func TestWriteAtomicBasic(t *testing.T) {
	f, _ := testFTL(t, nil)
	var batch []AtomicPage
	for i := uint32(0); i < 6; i++ {
		batch = append(batch, AtomicPage{LPN: 10 + i, Data: fill(byte(0x30+i), f.PageSize())})
	}
	if _, err := f.WriteAtomic(batch); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 6; i++ {
		if got := mustRead(t, f, 10+i); got[0] != byte(0x30+i) {
			t.Fatalf("lpn %d = %x", 10+i, got[0])
		}
	}
	if f.Stats().AtomicWrites != 1 {
		t.Fatalf("atomic writes = %d", f.Stats().AtomicWrites)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtomicDurableOnReturn(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 5, 0x01)
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	batch := []AtomicPage{
		{LPN: 5, Data: fill(0x02, f.PageSize())},
		{LPN: 6, Data: fill(0x03, f.PageSize())},
	}
	if _, err := f.WriteAtomic(batch); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, f) // no explicit Flush: the command itself commits
	if got := mustRead(t, f, 5); got[0] != 0x02 {
		t.Fatalf("lpn 5 = %x; atomic batch lost", got[0])
	}
	if got := mustRead(t, f, 6); got[0] != 0x03 {
		t.Fatalf("lpn 6 = %x; atomic batch lost", got[0])
	}
}

func TestWriteAtomicValidation(t *testing.T) {
	f, _ := testFTL(t, nil)
	if _, err := f.WriteAtomic(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	big := make([]AtomicPage, f.MaxShareBatch()+1)
	for i := range big {
		big[i] = AtomicPage{LPN: uint32(i), Data: fill(0, f.PageSize())}
	}
	if _, err := f.WriteAtomic(big); !errors.Is(err, ErrBatch) {
		t.Fatalf("oversize batch err = %v", err)
	}
	if _, err := f.WriteAtomic([]AtomicPage{{LPN: uint32(f.Capacity()), Data: fill(0, f.PageSize())}}); !errors.Is(err, ErrBounds) {
		t.Fatalf("bounds err = %v", err)
	}
	if _, err := f.WriteAtomic([]AtomicPage{{LPN: 0, Data: []byte{1}}}); err == nil {
		t.Fatal("short page accepted")
	}
}

func TestWriteAtomicOverwritesAndGC(t *testing.T) {
	f, _ := testFTL(t, nil)
	// Churn atomic batches over the whole space; correctness under GC.
	for round := 0; round < 8; round++ {
		for base := 0; base+8 <= f.Capacity(); base += 8 {
			var batch []AtomicPage
			for i := 0; i < 8; i++ {
				batch = append(batch, AtomicPage{
					LPN:  uint32(base + i),
					Data: fill(byte(round*8+i), f.PageSize()),
				})
			}
			if _, err := f.WriteAtomic(batch); err != nil {
				t.Fatalf("round %d base %d: %v", round, base, err)
			}
		}
	}
	for base := 0; base+8 <= f.Capacity(); base += 8 {
		for i := 0; i < 8; i++ {
			if got := mustRead(t, f, uint32(base+i)); got[0] != byte(7*8+i) {
				t.Fatalf("lpn %d = %x", base+i, got[0])
			}
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtomicMixedWithShare(t *testing.T) {
	f, _ := testFTL(t, nil)
	if _, err := f.WriteAtomic([]AtomicPage{
		{LPN: 1, Data: fill(0xA1, f.PageSize())},
		{LPN: 2, Data: fill(0xA2, f.PageSize())},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Share([]Pair{{Dst: 3, Src: 1, Len: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, f, 3); got[0] != 0xA1 {
		t.Fatalf("share after atomic write: %x", got[0])
	}
	crashAndRecover(t, f)
	if got := mustRead(t, f, 3); got[0] != 0xA1 {
		t.Fatalf("after crash: %x", got[0])
	}
}
