package ftl

import (
	"sort"

	"share/internal/nand"
	"share/internal/sim"
)

// Crash discards every volatile (DRAM) structure, modeling a power
// failure. Data already programmed to NAND — including durable mapping
// snapshots and delta-log pages — survives; buffered deltas do not,
// except on a capacitor-backed device, whose residual charge powers one
// final delta-page program: RAM-buffered deltas are exactly what
// PowerCapacitor promises are durable, so they must survive the cut. (If
// that last program itself fails — e.g. the NAND power-cut injector is
// still armed — the deltas are lost, modeling a dead capacitor.)
func (f *FTL) Crash() {
	if f.cfg.PowerCapacitor && len(f.deltaBuf) > 0 {
		_, _ = f.flushDeltaPage()
	}
	f.initVolatile()
	for i := range f.mapDir {
		f.mapDir[i] = InvalidPPN
		f.mapSeq[i] = 0
		f.mapDirty[i] = false
	}
	f.logSeq = 0
}

// oobScanCost models the firmware's per-page spare-area scan at boot.
const oobScanCost = 2 * sim.Microsecond

// Recover rebuilds the FTL state from flash alone: it scans every
// programmed page's OOB, loads the newest snapshot of each mapping page,
// replays newer delta-log pages in sequence order, and reconstructs the
// reverse mappings, block validity counters, append points and free list.
// A SHARE batch whose delta page was programmed is fully visible; one whose
// page was not is fully invisible — the paper's atomicity guarantee.
func (f *FTL) Recover() (sim.Duration, error) {
	var total sim.Duration
	geo := f.geo
	type logRef struct {
		seq uint64
		ppn uint32
	}
	var logs []logRef
	oobLPN := make([]uint32, geo.TotalPages())
	for i := range oobLPN {
		oobLPN[i] = InvalidLPN
	}
	lastSeqInBlock := make([]uint64, geo.Blocks)
	programmed := make([]int, geo.Blocks) // programmed pages per block (prefix length)
	buf := make([]byte, geo.PageSize)

	oldMapDir := make([]uint32, len(f.mapDir)) // latest snapshot ppn per idx
	for i := range oldMapDir {
		oldMapDir[i] = InvalidPPN
	}
	mapSeqSeen := make([]uint64, len(f.mapDir))
	var maxSeq uint64

	for p := 0; p < geo.TotalPages(); p++ {
		ppn := uint32(p)
		if f.chip.State(ppn) != nand.PageProgrammed {
			continue
		}
		total += oobScanCost
		oob, err := f.chip.ReadOOB(ppn)
		if err != nil {
			return total, err
		}
		b := f.chip.BlockOf(ppn)
		programmed[b]++
		if oob.Seq > lastSeqInBlock[b] {
			lastSeqInBlock[b] = oob.Seq
		}
		switch oob.Tag {
		case nand.TagData:
			oobLPN[ppn] = oob.LPN
		case nand.TagMapBase:
			_, rd, err := f.chipRead(ppn, buf)
			total += rd
			if err != nil {
				return total, err
			}
			idx, seq, err := parseMapPage(buf)
			if err != nil {
				return total, err
			}
			if idx < len(oldMapDir) && seq >= mapSeqSeen[idx] {
				mapSeqSeen[idx] = seq
				oldMapDir[idx] = ppn
			}
			if seq > maxSeq {
				maxSeq = seq
			}
		case nand.TagMapLog:
			_, rd, err := f.chipRead(ppn, buf)
			total += rd
			if err != nil {
				return total, err
			}
			seq, _, err := parseLogPage(buf)
			if err != nil {
				return total, err
			}
			logs = append(logs, logRef{seq: seq, ppn: ppn})
			if seq > maxSeq {
				maxSeq = seq
			}
		}
	}

	// Reset volatile state and load the forward map from snapshots.
	f.initVolatile()
	copy(f.mapDir, oldMapDir)
	copy(f.mapSeq, mapSeqSeen)
	f.logSeq = maxSeq
	epp := f.entriesPerMapPage()
	for idx, ppn := range oldMapDir {
		if ppn == InvalidPPN {
			continue
		}
		if _, rd, err := f.chipRead(ppn, buf); err != nil {
			return total, err
		} else {
			total += rd
		}
		start := idx * epp
		end := start + epp
		if end > f.capacity {
			end = f.capacity
		}
		off := hdrSize
		for i := start; i < end; i++ {
			f.l2p[i] = leUint32(buf[off:])
			off += 4
		}
	}

	// Replay delta-log pages newer than the snapshot covering each LPN.
	sort.Slice(logs, func(i, j int) bool { return logs[i].seq < logs[j].seq })
	minMapSeq := ^uint64(0)
	for idx := range f.mapSeq {
		if f.mapDir[idx] == InvalidPPN {
			minMapSeq = 0
			break
		}
		if f.mapSeq[idx] < minMapSeq {
			minMapSeq = f.mapSeq[idx]
		}
	}
	if len(f.mapSeq) == 0 {
		minMapSeq = 0
	}
	for _, lr := range logs {
		_, rd, err := f.chipRead(lr.ppn, buf)
		total += rd
		if err != nil {
			return total, err
		}
		seq, deltas, err := parseLogPage(buf)
		if err != nil {
			return total, err
		}
		for _, d := range deltas {
			idx := int(d.lpn) / epp
			if idx >= len(f.mapSeq) || seq <= f.mapSeq[idx] {
				continue
			}
			f.l2p[d.lpn] = d.newPPN
			// The delta outlives its snapshot: the covering map page must
			// be rewritten before this log page may be truncated.
			f.mapDirty[idx] = true
		}
		if seq > minMapSeq {
			f.logPPNs = append(f.logPPNs, lr.ppn)
			f.logSeqs = append(f.logSeqs, seq)
			f.metaLive[lr.ppn] = true
			f.blockValid[f.chip.BlockOf(lr.ppn)]++
		}
	}
	for idx, ppn := range f.mapDir {
		_ = idx
		if ppn != InvalidPPN {
			f.metaLive[ppn] = true
			f.blockValid[f.chip.BlockOf(ppn)]++
		}
	}

	// Rebuild reverse mappings and reference counts from the forward map.
	for l := 0; l < f.capacity; l++ {
		ppn := f.l2p[l]
		if ppn == InvalidPPN {
			continue
		}
		lpn := uint32(l)
		f.addRef(ppn)
		if oobLPN[ppn] == lpn && f.primary[ppn] == InvalidLPN {
			f.primary[ppn] = lpn
		} else {
			f.extra[ppn] = append(f.extra[ppn], lpn)
		}
	}

	// Classify blocks: erased -> free; full -> GC candidates; partial ->
	// append points (newest first), leftovers sealed as full. Blocks the
	// chip knows are bad (factory marks, program/erase failures — the
	// persistent bad-block table real firmware keeps in the spare area)
	// are re-retired first and never become free or append points.
	type partial struct {
		block   int
		lastSeq uint64
	}
	partialsByDie := make([][]partial, f.dies)
	for b := 0; b < geo.Blocks; b++ {
		if f.chip.IsBad(b) {
			f.noteRetired(b)
			f.blockFull[b] = true
			continue
		}
		die := geo.DieOfBlock(b)
		switch {
		case programmed[b] == 0:
			f.freeByDie[die] = append(f.freeByDie[die], b)
		case programmed[b] == geo.PagesPerBlock:
			f.blockFull[b] = true
		default:
			partialsByDie[die] = append(partialsByDie[die], partial{block: b, lastSeq: lastSeqInBlock[b]})
		}
	}
	// Each die's partial blocks become its append points, newest first —
	// the same host/meta/gc assignment as before, now applied per die.
	for die, partials := range partialsByDie {
		sort.Slice(partials, func(i, j int) bool { return partials[i].lastSeq > partials[j].lastSeq })
		assign := []*stream{&f.host, &f.meta, &f.gc}
		for i, p := range partials {
			if i < len(assign) {
				assign[i].open[die] = appendPoint{block: p.block, next: programmed[p.block]}
			} else {
				f.blockFull[p.block] = true
			}
		}
	}
	return total, nil
}

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
