package ftl

import (
	"sort"

	"share/internal/nand"
	"share/internal/sim"
)

// Crash discards every volatile (DRAM) structure, modeling a power
// failure. Data already programmed to NAND — including durable mapping
// snapshots and delta-log pages — survives; buffered deltas do not,
// except on a capacitor-backed device, whose residual charge powers one
// final delta-page program: RAM-buffered deltas are exactly what
// PowerCapacitor promises are durable, so they must survive the cut. (If
// that last program itself fails — e.g. the NAND power-cut injector is
// still armed — the deltas are lost, modeling a dead capacitor.)
func (f *FTL) Crash() {
	if f.cfg.PowerCapacitor && len(f.deltaBuf) > 0 {
		_, _ = f.flushDeltaPage()
	}
	f.initVolatile()
	for i := range f.mapDir {
		f.mapDir[i] = InvalidPPN
		f.mapSeq[i] = 0
		f.mapDirty[i] = false
	}
	f.logSeq = 0
}

// oobScanCost models the firmware's per-page spare-area scan at boot.
const oobScanCost = 2 * sim.Microsecond

// Recover rebuilds the FTL state from flash alone: it scans every
// programmed page's OOB, loads the newest snapshot of each mapping page,
// replays newer delta-log pages in sequence order, and reconstructs the
// reverse mappings, block validity counters, append points and free list.
// A SHARE batch whose delta page was programmed is fully visible; one whose
// page was not is fully invisible — the paper's atomicity guarantee.
func (f *FTL) Recover() (sim.Duration, error) {
	var total sim.Duration
	geo := f.geo
	type logRef struct {
		seq uint64
		ppn uint32
	}
	var logs []logRef
	oobLPN := make([]uint32, geo.TotalPages())
	for i := range oobLPN {
		oobLPN[i] = InvalidLPN
	}
	lastSeqInBlock := make([]uint64, geo.Blocks)
	lastStream := make([]uint8, geo.Blocks)      // stream that wrote each block's newest page
	oobStream := make([]uint8, geo.TotalPages()) // writing stream per data page
	// frontier is each block's append frontier: one past its highest
	// programmed page. This is deliberately not a count — a power cut can
	// land between the append point advancing and the page programming, and
	// the capacitor's final delta flush then programs the following page,
	// leaving a permanent hole. Appending at the count would collide with
	// the page beyond the hole; holes are simply wasted until erase.
	frontier := make([]int, geo.Blocks)
	buf := make([]byte, geo.PageSize)

	oldMapDir := make([]uint32, len(f.mapDir)) // latest snapshot ppn per idx
	for i := range oldMapDir {
		oldMapDir[i] = InvalidPPN
	}
	mapSeqSeen := make([]uint64, len(f.mapDir))
	var maxSeq uint64

	for p := 0; p < geo.TotalPages(); p++ {
		ppn := uint32(p)
		if f.chip.State(ppn) != nand.PageProgrammed {
			continue
		}
		total += oobScanCost
		oob, err := f.chip.ReadOOB(ppn)
		if err != nil {
			return total, err
		}
		b := f.chip.BlockOf(ppn)
		frontier[b] = f.chip.PageIndexInBlock(ppn) + 1
		if oob.Seq > lastSeqInBlock[b] {
			lastSeqInBlock[b] = oob.Seq
		}
		// Pages within a block are programmed in ascending order, so the
		// last programmed page this scan sees is the block's newest — its
		// OOB stream stamp identifies the block's current owner.
		lastStream[b] = oob.Stream
		switch oob.Tag {
		case nand.TagData:
			oobLPN[ppn] = oob.LPN
			oobStream[ppn] = oob.Stream
		case nand.TagMapBase:
			_, rd, err := f.chipRead(ppn, buf)
			total += rd
			if err != nil {
				return total, err
			}
			idx, seq, err := parseMapPage(buf)
			if err != nil {
				return total, err
			}
			if idx < len(oldMapDir) && seq >= mapSeqSeen[idx] {
				mapSeqSeen[idx] = seq
				oldMapDir[idx] = ppn
			}
			if seq > maxSeq {
				maxSeq = seq
			}
		case nand.TagMapLog:
			_, rd, err := f.chipRead(ppn, buf)
			total += rd
			if err != nil {
				return total, err
			}
			seq, _, err := parseLogPage(buf)
			if err != nil {
				return total, err
			}
			logs = append(logs, logRef{seq: seq, ppn: ppn})
			if seq > maxSeq {
				maxSeq = seq
			}
		}
	}

	// Reset volatile state and load the forward map from snapshots.
	f.initVolatile()
	copy(f.mapDir, oldMapDir)
	copy(f.mapSeq, mapSeqSeen)
	f.logSeq = maxSeq
	epp := f.entriesPerMapPage()
	for idx, ppn := range oldMapDir {
		if ppn == InvalidPPN {
			continue
		}
		if _, rd, err := f.chipRead(ppn, buf); err != nil {
			return total, err
		} else {
			total += rd
		}
		start := idx * epp
		end := start + epp
		if end > f.capacity {
			end = f.capacity
		}
		off := hdrSize
		for i := start; i < end; i++ {
			f.l2p[i] = leUint32(buf[off:])
			off += 4
		}
	}

	// Replay delta-log pages newer than the snapshot covering each LPN.
	sort.Slice(logs, func(i, j int) bool { return logs[i].seq < logs[j].seq })
	minMapSeq := ^uint64(0)
	for idx := range f.mapSeq {
		if f.mapDir[idx] == InvalidPPN {
			minMapSeq = 0
			break
		}
		if f.mapSeq[idx] < minMapSeq {
			minMapSeq = f.mapSeq[idx]
		}
	}
	if len(f.mapSeq) == 0 {
		minMapSeq = 0
	}
	for _, lr := range logs {
		_, rd, err := f.chipRead(lr.ppn, buf)
		total += rd
		if err != nil {
			return total, err
		}
		seq, deltas, err := parseLogPage(buf)
		if err != nil {
			return total, err
		}
		for _, d := range deltas {
			idx := int(d.lpn) / epp
			if idx >= len(f.mapSeq) || seq <= f.mapSeq[idx] {
				continue
			}
			f.l2p[d.lpn] = d.newPPN
			// The delta outlives its snapshot: the covering map page must
			// be rewritten before this log page may be truncated.
			f.mapDirty[idx] = true
		}
		if seq > minMapSeq {
			f.logPPNs = append(f.logPPNs, lr.ppn)
			f.logSeqs = append(f.logSeqs, seq)
			f.metaLive[lr.ppn] = true
			f.blockValid[f.chip.BlockOf(lr.ppn)]++
		}
	}
	for idx, ppn := range f.mapDir {
		_ = idx
		if ppn != InvalidPPN {
			f.metaLive[ppn] = true
			f.blockValid[f.chip.BlockOf(ppn)]++
		}
	}

	// Rebuild reverse mappings and reference counts from the forward map.
	for l := 0; l < f.capacity; l++ {
		ppn := f.l2p[l]
		if ppn == InvalidPPN {
			continue
		}
		lpn := uint32(l)
		f.addRef(ppn)
		if oobLPN[ppn] == lpn && f.primary[ppn] == InvalidLPN {
			f.primary[ppn] = lpn
		} else {
			f.extra[ppn] = append(f.extra[ppn], lpn)
		}
	}

	// Rebuild per-page origin streams best-effort from the OOB stamps: a
	// page the host wrote carries its stream index; a GC-relocated copy
	// carries StreamGC (the origin is lost across power cuts) and is billed
	// to stream 0 from here on.
	for p := range f.pageStream {
		if oobLPN[p] == InvalidLPN {
			continue
		}
		if s := oobStream[p]; int(s) < len(f.hosts) {
			f.pageStream[p] = s
		}
	}

	// Classify blocks: erased -> free; full -> GC candidates; partial ->
	// append points (newest first), leftovers sealed as full. Blocks the
	// chip knows are bad (factory marks, program/erase failures — the
	// persistent bad-block table real firmware keeps in the spare area)
	// are re-retired first and never become free or append points.
	type partial struct {
		block   int
		lastSeq uint64
	}
	partialsByDie := make([][]partial, f.dies)
	for b := 0; b < geo.Blocks; b++ {
		if f.chip.IsBad(b) {
			f.noteRetired(b)
			f.blockFull[b] = true
			continue
		}
		die := geo.DieOfBlock(b)
		switch {
		case frontier[b] == 0:
			f.freeByDie[die] = append(f.freeByDie[die], b)
		case frontier[b] == geo.PagesPerBlock:
			// No appendable pages left — full even if a power-cut hole
			// means fewer than PagesPerBlock pages actually programmed.
			f.blockFull[b] = true
		default:
			partialsByDie[die] = append(partialsByDie[die], partial{block: b, lastSeq: lastSeqInBlock[b]})
		}
	}
	// Each die's partial blocks become its append points again: the OOB
	// stream stamp on a block's newest page names the exact stream that was
	// filling it at the cut. If two partials claim the same stream on one
	// die (possible after retirement re-steering), the newest wins and the
	// older is sealed full; a stamp with no live stream (host count shrank
	// across the reboot) seals the block too.
	for die, partials := range partialsByDie {
		sort.Slice(partials, func(i, j int) bool { return partials[i].lastSeq > partials[j].lastSeq })
		for _, p := range partials {
			var s *stream
			switch id := lastStream[p.block]; {
			case id == nand.StreamGC:
				s = &f.gc
			case id == nand.StreamMeta:
				s = &f.meta
			case int(id) < len(f.hosts):
				s = &f.hosts[id]
			}
			if s == nil || s.open[die].block >= 0 {
				f.blockFull[p.block] = true
				continue
			}
			s.open[die] = appendPoint{block: p.block, next: frontier[p.block]}
		}
	}
	return total, nil
}

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
