package ftl

import (
	"errors"
	"testing"

	"share/internal/nand"
)

// faultFTL builds the standard test device with a spare budget large enough
// to absorb a few injected retirements (the default geometry derives a
// budget of ~2, too tight for fault scenarios).
func faultFTL(t *testing.T, spares int, mut func(*Config)) (*FTL, *nand.Chip) {
	t.Helper()
	return testFTL(t, func(cfg *Config) {
		cfg.SpareBlocks = spares
		if mut != nil {
			mut(cfg)
		}
	})
}

func TestTransientProgramFaultIsRetried(t *testing.T) {
	f, chip := faultFTL(t, 4, nil)
	if err := chip.SetFaultPlan(nand.NewFaultPlan(1).AtProgram(1, nand.FaultProgramTransient)); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, 7, 0xAB)
	if got := mustRead(t, f, 7); got[0] != 0xAB {
		t.Fatalf("lpn 7 = %x after transient fault", got[0])
	}
	st := f.Stats()
	if st.ProgramRetries != 1 {
		t.Fatalf("ProgramRetries = %d, want 1", st.ProgramRetries)
	}
	if st.ProgramFails != 0 || st.RetiredBlocks != 0 {
		t.Fatalf("transient fault escalated: fails=%d retired=%d", st.ProgramFails, st.RetiredBlocks)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPermanentProgramFaultRetiresAndResteers(t *testing.T) {
	f, chip := faultFTL(t, 4, nil)
	// Populate the host block so retirement has live pages to rescue.
	for l := uint32(0); l < 5; l++ {
		mustWrite(t, f, l, byte(l+1))
	}
	if err := chip.SetFaultPlan(nand.NewFaultPlan(1).AtProgram(1, nand.FaultProgramPermanent)); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, 5, 0xCC) // fails, retries into the now-bad page, re-steers
	for l := uint32(0); l < 5; l++ {
		if got := mustRead(t, f, l); got[0] != byte(l+1) {
			t.Fatalf("rescued lpn %d = %x, want %x", l, got[0], l+1)
		}
	}
	if got := mustRead(t, f, 5); got[0] != 0xCC {
		t.Fatalf("re-steered lpn 5 = %x", got[0])
	}
	st := f.Stats()
	if st.ProgramFails != 1 {
		t.Fatalf("ProgramFails = %d, want 1", st.ProgramFails)
	}
	if st.RetiredBlocks != 1 {
		t.Fatalf("RetiredBlocks = %d, want 1", st.RetiredBlocks)
	}
	if st.SpareBlocksLeft != 3 {
		t.Fatalf("SpareBlocksLeft = %d, want 3", st.SpareBlocksLeft)
	}
	if f.ReadOnly() {
		t.Fatal("read-only after a single retirement with spares left")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetirementSurvivesRecovery(t *testing.T) {
	f, chip := faultFTL(t, 4, nil)
	for l := uint32(0); l < 5; l++ {
		mustWrite(t, f, l, byte(l+1))
	}
	if err := chip.SetFaultPlan(nand.NewFaultPlan(1).AtProgram(1, nand.FaultProgramPermanent)); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, 5, 0xCC)
	if err := chip.SetFaultPlan(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	// The chip's persistent bad-block mark must keep the block retired —
	// without recounting it in the stats.
	if st := f.Stats(); st.RetiredBlocks != 1 {
		t.Fatalf("RetiredBlocks = %d after recovery, want 1", st.RetiredBlocks)
	}
	if f.SpareBlocksLeft() != 3 {
		t.Fatalf("SpareBlocksLeft = %d after recovery, want 3", f.SpareBlocksLeft())
	}
	for l := uint32(0); l < 6; l++ {
		want := byte(l + 1)
		if l == 5 {
			want = 0xCC
		}
		if got := mustRead(t, f, l); got[0] != want {
			t.Fatalf("lpn %d = %x after recovery, want %x", l, got[0], want)
		}
	}
	// The retired block must never be written again.
	mustWrite(t, f, 20, 0x77)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEraseFaultRetiresViaGC(t *testing.T) {
	f, chip := faultFTL(t, 4, nil)
	if err := chip.SetFaultPlan(nand.NewFaultPlan(1).AtErase(1, nand.FaultErase)); err != nil {
		t.Fatal(err)
	}
	lastGood := make([]byte, f.Capacity())
	for round := 1; round <= 4; round++ {
		for l := 0; l < f.Capacity(); l++ {
			b := byte(round + l)
			mustWrite(t, f, uint32(l), b)
			lastGood[l] = b
		}
	}
	st := f.Stats()
	if st.EraseFails != 1 {
		t.Fatalf("EraseFails = %d, want 1", st.EraseFails)
	}
	if st.RetiredBlocks == 0 {
		t.Fatal("erase fault did not retire the victim")
	}
	for l := 0; l < f.Capacity(); l++ {
		if got := mustRead(t, f, uint32(l)); got[0] != lastGood[l] {
			t.Fatalf("lpn %d = %x, want %x", l, got[0], lastGood[l])
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUncorrectableReadSurfaces(t *testing.T) {
	f, chip := faultFTL(t, 4, nil)
	mustWrite(t, f, 3, 0x99)
	// The fault must hold through the whole retry budget (first attempt
	// plus readRetryLimit re-reads) to surface as data loss.
	plan := nand.NewFaultPlan(1)
	for n := int64(1); n <= readRetryLimit+1; n++ {
		plan.AtRead(n, nand.FaultReadUncorrectable)
	}
	if err := chip.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, f.PageSize())
	if _, err := f.Read(3, buf); !errors.Is(err, nand.ErrUncorrectable) {
		t.Fatalf("read error = %v, want ErrUncorrectable", err)
	}
	st := f.Stats()
	if st.UncorrectableReads != 1 {
		t.Fatalf("UncorrectableReads = %d, want 1", st.UncorrectableReads)
	}
	if st.ReadRetries != readRetryLimit {
		t.Fatalf("ReadRetries = %d, want %d", st.ReadRetries, readRetryLimit)
	}
	// A later, clean read still works: the data itself was not destroyed.
	if got := mustRead(t, f, 3); got[0] != 0x99 {
		t.Fatalf("lpn 3 = %x on clean retry", got[0])
	}
}

func TestTransientReadFaultRetriedAndScrubbed(t *testing.T) {
	f, chip := faultFTL(t, 4, nil)
	// Fill past one block so lpn 3's block is closed: scrubbing skips the
	// stream's open append point (it is still being written).
	for l := uint32(0); l < 9; l++ {
		mustWrite(t, f, l, byte(l+1))
	}
	// One scheduled fault: the first attempt fails, the retry succeeds.
	if err := chip.SetFaultPlan(nand.NewFaultPlan(1).AtRead(1, nand.FaultReadUncorrectable)); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, f, 3); got[0] != 4 {
		t.Fatalf("lpn 3 = %x after retried read", got[0])
	}
	st := f.Stats()
	if st.ReadRetries != 1 {
		t.Fatalf("ReadRetries = %d, want 1", st.ReadRetries)
	}
	if st.UncorrectableReads != 0 {
		t.Fatalf("recovered read counted as uncorrectable: %d", st.UncorrectableReads)
	}
	if len(f.scrubQueue) != 1 {
		t.Fatalf("scrub queue length = %d, want 1", len(f.scrubQueue))
	}
	// The next mutating command drains the scrub queue: the suspect
	// block's live pages move to fresh flash and the block is refreshed.
	mustWrite(t, f, 12, 0x66)
	st = f.Stats()
	if st.ScrubbedBlocks != 1 {
		t.Fatalf("ScrubbedBlocks = %d, want 1", st.ScrubbedBlocks)
	}
	if st.ScrubRelocations == 0 {
		t.Fatal("scrub relocated no pages")
	}
	for l := uint32(0); l < 9; l++ {
		if got := mustRead(t, f, l); got[0] != byte(l+1) {
			t.Fatalf("lpn %d = %x after scrub, want %x", l, got[0], l+1)
		}
	}
	if got := mustRead(t, f, 12); got[0] != 0x66 {
		t.Fatalf("lpn 12 = %x after scrub", got[0])
	}
	if st.RetiredBlocks != 0 {
		t.Fatalf("scrub retired a healthy block: %d", st.RetiredBlocks)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectableReadIsTransparent(t *testing.T) {
	f, chip := faultFTL(t, 4, nil)
	mustWrite(t, f, 3, 0x99)
	if err := chip.SetFaultPlan(nand.NewFaultPlan(1).AtRead(1, nand.FaultReadCorrectable)); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, f, 3); got[0] != 0x99 {
		t.Fatalf("lpn 3 = %x through ECC correction", got[0])
	}
	if cs := chip.Stats(); cs.EccCorrected != 1 {
		t.Fatalf("EccCorrected = %d, want 1", cs.EccCorrected)
	}
	if st := f.Stats(); st.UncorrectableReads != 0 {
		t.Fatalf("correctable error miscounted as uncorrectable")
	}
}

func TestFactoryBadBlocksAreAvoided(t *testing.T) {
	chip, err := nand.New(nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32}, nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	plan := nand.NewFaultPlan(1)
	plan.FactoryBad = []int{3, 17}
	if err := chip.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CheckpointLogPages = 8
	cfg.SpareBlocks = 4
	f, err := New(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.RetiredBlocks != 2 {
		t.Fatalf("RetiredBlocks = %d, want 2 factory-bad", st.RetiredBlocks)
	}
	if f.SpareBlocksLeft() != 2 {
		t.Fatalf("SpareBlocksLeft = %d, want 2", f.SpareBlocksLeft())
	}
	for l := 0; l < f.Capacity(); l++ {
		mustWrite(t, f, uint32(l), byte(l))
	}
	for l := 0; l < f.Capacity(); l++ {
		if got := mustRead(t, f, uint32(l)); got[0] != byte(l) {
			t.Fatalf("lpn %d = %x", l, got[0])
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFactoryBadBeyondBudgetRefused(t *testing.T) {
	chip, err := nand.New(nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32}, nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	plan := nand.NewFaultPlan(1)
	plan.FactoryBad = []int{1, 2, 3}
	if err := chip.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SpareBlocks = 2
	if _, err := New(chip, cfg); err == nil {
		t.Fatal("New accepted more factory-bad blocks than the spare budget")
	}
}

func TestReadOnlyAfterSparesExhausted(t *testing.T) {
	f, chip := faultFTL(t, 1, nil)
	mustWrite(t, f, 0, 0x11)
	// Two permanent program failures on two different blocks: the second
	// retirement exceeds the budget of 1 and degrades the device.
	for i := 0; i < 2; i++ {
		if err := chip.SetFaultPlan(nand.NewFaultPlan(1).AtProgram(1, nand.FaultProgramPermanent)); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(1, fill(byte(0x20+i), f.PageSize())); err != nil {
			t.Fatalf("write %d during degradation: %v", i, err)
		}
	}
	if err := chip.SetFaultPlan(nil); err != nil {
		t.Fatal(err)
	}
	if !f.ReadOnly() {
		t.Fatal("device not read-only after exceeding the spare budget")
	}
	st := f.Stats()
	if !st.ReadOnly || st.SpareBlocksLeft != 0 {
		t.Fatalf("stats: ReadOnly=%v SpareBlocksLeft=%d", st.ReadOnly, st.SpareBlocksLeft)
	}
	// Every mutating command is refused...
	if _, err := f.Write(2, fill(0xFF, f.PageSize())); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Write error = %v, want ErrReadOnly", err)
	}
	if _, err := f.Trim(0, 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Trim error = %v, want ErrReadOnly", err)
	}
	if _, err := f.Share([]Pair{{Dst: 2, Src: 0, Len: 1}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Share error = %v, want ErrReadOnly", err)
	}
	if _, err := f.WriteAtomic([]AtomicPage{{LPN: 2, Data: fill(1, f.PageSize())}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("WriteAtomic error = %v, want ErrReadOnly", err)
	}
	// ...but every acknowledged write is still readable.
	if got := mustRead(t, f, 0); got[0] != 0x11 {
		t.Fatalf("lpn 0 = %x in read-only mode", got[0])
	}
	if got := mustRead(t, f, 1); got[0] != 0x21 {
		t.Fatalf("lpn 1 = %x in read-only mode", got[0])
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
