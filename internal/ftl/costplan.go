package ftl

import "share/internal/sim"

// Cost plans. Every FTL command still returns one lump-sum sim.Duration —
// the interface the whole host stack is written against — but a device
// that schedules per-die parallelism needs to know *where* that time
// would be spent: which die each NAND operation occupies, and how the
// operation splits between the channel bus (page transfer) and the die
// itself (cell read/program/erase). When recording is enabled, the FTL
// appends one OpCost per NAND operation it issues, in issue order; the
// device drains the plan after each command and replays it onto per-die
// and per-channel resources. Recording is off by default so FTLs used
// directly (tests, tools) pay nothing and never accumulate a plan.

// OpKind classifies one NAND operation in a cost plan.
type OpKind uint8

const (
	// OpRead occupies the die for the cell read, then the channel for the
	// outbound page transfer.
	OpRead OpKind = iota
	// OpProgram occupies the channel for the inbound page transfer, then
	// the die for the cell program.
	OpProgram
	// OpErase occupies the die only; no page crosses the bus.
	OpErase
)

// OpCost is one NAND operation of a command's cost plan: the die it
// occupies, the channel bus-transfer slice, and the die-resident cell
// slice. Bus + Cell equals the chip's reported service time for the
// operation.
type OpCost struct {
	Die  int
	Kind OpKind
	Bus  sim.Duration
	Cell sim.Duration
}

// EnableCostPlan switches on per-operation cost recording. The device
// layer calls it once when the geometry opts into per-die scheduling.
func (f *FTL) EnableCostPlan() {
	f.planOn = true
	f.transfer = f.chip.Timing().Transfer
}

// TakeCostPlan returns the NAND operations recorded since the last call
// (in issue order) and installs recycle — emptied — as the buffer for the
// next command's plan. The device layer cycles a drained plan back in on
// the following call, so steady-state recording never allocates; passing
// nil simply starts a fresh buffer.
func (f *FTL) TakeCostPlan(recycle []OpCost) []OpCost {
	p := f.plan
	f.plan = recycle[:0:cap(recycle)]
	return p
}

// notePPNOp records one page-granular NAND operation (read or program)
// against the die holding ppn. d is the chip's reported service time; the
// bus-transfer share is split off so the device can arbitrate the channel
// separately from the die.
func (f *FTL) notePPNOp(kind OpKind, ppn uint32, d sim.Duration) {
	if !f.planOn || d <= 0 {
		return
	}
	bus := f.transfer
	if bus > d {
		bus = d
	}
	f.plan = append(f.plan, OpCost{
		Die:  (int(ppn) / f.geo.PagesPerBlock) % f.dies,
		Kind: kind,
		Bus:  bus,
		Cell: d - bus,
	})
}

// noteEraseOp records a block erase against the block's die. Erases move
// no data, so the whole duration is die-resident.
func (f *FTL) noteEraseOp(block int, d sim.Duration) {
	if !f.planOn || d <= 0 {
		return
	}
	f.plan = append(f.plan, OpCost{Die: block % f.dies, Kind: OpErase, Cell: d})
}
