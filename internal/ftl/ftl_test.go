package ftl

import (
	"bytes"
	"errors"
	"testing"

	"share/internal/nand"
)

// testFTL builds a small device: 512-byte pages, 8 pages/block, 32 blocks
// (256 raw pages, 192 logical after over-provisioning).
func testFTL(t *testing.T, mut func(*Config)) (*FTL, *nand.Chip) {
	t.Helper()
	return testFTLGeo(t, nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32}, mut)
}

func testFTLGeo(t *testing.T, geo nand.Geometry, mut func(*Config)) (*FTL, *nand.Chip) {
	t.Helper()
	chip, err := nand.New(geo, nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CheckpointLogPages = 8
	if mut != nil {
		mut(&cfg)
	}
	f, err := New(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, chip
}

func fill(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func mustWrite(t *testing.T, f *FTL, lpn uint32, b byte) {
	t.Helper()
	if _, err := f.Write(lpn, fill(b, f.PageSize())); err != nil {
		t.Fatalf("write lpn %d: %v", lpn, err)
	}
}

func mustRead(t *testing.T, f *FTL, lpn uint32) []byte {
	t.Helper()
	buf := make([]byte, f.PageSize())
	if _, err := f.Read(lpn, buf); err != nil {
		t.Fatalf("read lpn %d: %v", lpn, err)
	}
	return buf
}

func TestWriteReadRoundTrip(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 10, 0x11)
	mustWrite(t, f, 11, 0x22)
	if got := mustRead(t, f, 10); got[0] != 0x11 {
		t.Fatalf("lpn 10 = %x", got[0])
	}
	if got := mustRead(t, f, 11); got[0] != 0x22 {
		t.Fatalf("lpn 11 = %x", got[0])
	}
	mustWrite(t, f, 10, 0x33) // overwrite goes out of place
	if got := mustRead(t, f, 10); got[0] != 0x33 {
		t.Fatalf("lpn 10 after overwrite = %x", got[0])
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmappedReadsZero(t *testing.T) {
	f, _ := testFTL(t, nil)
	buf := fill(0xFF, f.PageSize())
	if _, err := f.Read(5, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unmapped read returned nonzero data")
		}
	}
}

func TestBounds(t *testing.T) {
	f, _ := testFTL(t, nil)
	buf := make([]byte, f.PageSize())
	if _, err := f.Read(uint32(f.Capacity()), buf); !errors.Is(err, ErrBounds) {
		t.Fatalf("read err = %v", err)
	}
	if _, err := f.Write(uint32(f.Capacity()), buf); !errors.Is(err, ErrBounds) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := f.Trim(uint32(f.Capacity()-1), 2); !errors.Is(err, ErrBounds) {
		t.Fatalf("trim err = %v", err)
	}
}

func TestShareRemapsDst(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 1, 0xAA) // dst original
	mustWrite(t, f, 2, 0xBB) // src (e.g. the doublewrite copy)
	if _, err := f.Share([]Pair{{Dst: 1, Src: 2, Len: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, f, 1); got[0] != 0xBB {
		t.Fatalf("dst after share = %x, want BB", got[0])
	}
	if got := mustRead(t, f, 2); got[0] != 0xBB {
		t.Fatalf("src after share = %x, want BB", got[0])
	}
	if f.Mapping(1) != f.Mapping(2) {
		t.Fatal("share did not make LPNs share one PPN")
	}
	st := f.Stats()
	if st.Shares != 1 || st.SharePairs != 1 || st.ForcedCopies != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShareThenOverwriteSrcLeavesDstIntact(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 1, 0xAA)
	mustWrite(t, f, 2, 0xBB)
	if _, err := f.Share([]Pair{{Dst: 1, Src: 2, Len: 1}}); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, 2, 0xCC) // src moves on; shared page keeps dst's view
	if got := mustRead(t, f, 1); got[0] != 0xBB {
		t.Fatalf("dst = %x, want BB", got[0])
	}
	if got := mustRead(t, f, 2); got[0] != 0xCC {
		t.Fatalf("src = %x, want CC", got[0])
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShareRangeLen(t *testing.T) {
	f, _ := testFTL(t, nil)
	for i := uint32(0); i < 4; i++ {
		mustWrite(t, f, 10+i, byte(0x10+i))
		mustWrite(t, f, 20+i, byte(0x20+i))
	}
	if _, err := f.Share([]Pair{{Dst: 10, Src: 20, Len: 4}}); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4; i++ {
		if got := mustRead(t, f, 10+i); got[0] != byte(0x20+i) {
			t.Fatalf("lpn %d = %x", 10+i, got[0])
		}
	}
}

func TestShareErrors(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 1, 0xAA)
	if _, err := f.Share([]Pair{{Dst: 2, Src: 3, Len: 1}}); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped src err = %v", err)
	}
	if _, err := f.Share([]Pair{{Dst: 4, Src: 4, Len: 1}}); !errors.Is(err, ErrOverlap) {
		t.Fatalf("dst==src err = %v", err)
	}
	if _, err := f.Share([]Pair{{Dst: 10, Src: 12, Len: 4}}); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap err = %v", err)
	}
	if _, err := f.Share([]Pair{{Dst: 1, Src: 2, Len: 0}}); err == nil {
		t.Fatal("zero length accepted")
	}
	big := uint32(f.MaxShareBatch() + 1)
	if _, err := f.Share([]Pair{{Dst: 0, Src: big, Len: big}}); !errors.Is(err, ErrBatch) {
		t.Fatalf("oversize batch err = %v", err)
	}
	if _, err := f.Share([]Pair{{Dst: uint32(f.Capacity()), Src: 1, Len: 1}}); !errors.Is(err, ErrBounds) {
		t.Fatalf("bounds err = %v", err)
	}
	// A failed command must not have mutated anything.
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.Mapping(1) == InvalidPPN {
		t.Fatal("lpn 1 lost its mapping")
	}
}

func TestShareBatchMultiplePairs(t *testing.T) {
	f, _ := testFTL(t, nil)
	var pairs []Pair
	for i := uint32(0); i < 8; i++ {
		mustWrite(t, f, i, byte(i))          // home locations
		mustWrite(t, f, 100+i, byte(0x80+i)) // journal copies
		pairs = append(pairs, Pair{Dst: i, Src: 100 + i, Len: 1})
	}
	if _, err := f.Share(pairs); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 8; i++ {
		if got := mustRead(t, f, i); got[0] != byte(0x80+i) {
			t.Fatalf("lpn %d = %x", i, got[0])
		}
	}
	if got := f.Stats().Shares; got != 1 {
		t.Fatalf("share commands = %d, want 1 (batched)", got)
	}
}

func TestTrimFreesPages(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 3, 0xDD)
	if _, err := f.Trim(3, 1); err != nil {
		t.Fatal(err)
	}
	if f.Mapping(3) != InvalidPPN {
		t.Fatal("trim left mapping")
	}
	got := mustRead(t, f, 3)
	if got[0] != 0 {
		t.Fatal("trimmed page not zero")
	}
	// Trimming unmapped pages is a no-op.
	if _, err := f.Trim(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrimSharedPageKeepsOtherReferrer(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 1, 0xAA)
	mustWrite(t, f, 2, 0xBB)
	if _, err := f.Share([]Pair{{Dst: 1, Src: 2, Len: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Trim(2, 1); err != nil { // drop the source referrer
		t.Fatal(err)
	}
	if got := mustRead(t, f, 1); got[0] != 0xBB {
		t.Fatalf("dst lost shared data: %x", got[0])
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCReclaimsAndPreservesData(t *testing.T) {
	f, _ := testFTL(t, nil)
	cap := f.Capacity()
	// Fill the logical space, then overwrite repeatedly to force GC.
	for round := 0; round < 4; round++ {
		for l := 0; l < cap; l++ {
			mustWrite(t, f, uint32(l), byte(round*31+l%191))
		}
	}
	st := f.Stats()
	if st.GCEvents == 0 {
		t.Fatal("expected garbage collection under overwrite pressure")
	}
	for l := 0; l < cap; l++ {
		want := byte(3*31 + l%191)
		if got := mustRead(t, f, uint32(l)); got[0] != want {
			t.Fatalf("lpn %d = %x, want %x", l, got[0], want)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCRelocatesSharedPages(t *testing.T) {
	f, _ := testFTL(t, nil)
	// Create shared pairs then churn the rest of the space until GC has
	// certainly relocated some shared pages.
	for i := uint32(0); i < 8; i++ {
		mustWrite(t, f, i, byte(0x40+i))
		mustWrite(t, f, 50+i, byte(0x40+i))
	}
	var pairs []Pair
	for i := uint32(0); i < 8; i++ {
		pairs = append(pairs, Pair{Dst: i, Src: 50 + i, Len: 1})
	}
	if _, err := f.Share(pairs); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		for l := 100; l < f.Capacity(); l++ {
			mustWrite(t, f, uint32(l), byte(round+l))
		}
	}
	if f.Stats().GCEvents == 0 {
		t.Fatal("no GC happened")
	}
	for i := uint32(0); i < 8; i++ {
		if got := mustRead(t, f, i); got[0] != byte(0x40+i) {
			t.Fatalf("shared dst %d = %x", i, got[0])
		}
		if got := mustRead(t, f, 50+i); got[0] != byte(0x40+i) {
			t.Fatalf("shared src %d = %x", 50+i, got[0])
		}
		if f.Mapping(i) != f.Mapping(50+i) {
			t.Fatalf("pair %d no longer shares after GC", i)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShareTableOverflowForcesCopies(t *testing.T) {
	f, _ := testFTL(t, func(c *Config) {
		c.ShareTableCap = 2
		c.CheckpointLogPages = 1000 // avoid checkpoint releasing entries
	})
	for i := uint32(0); i < 6; i++ {
		mustWrite(t, f, i, byte(i))
		mustWrite(t, f, 50+i, byte(0x60+i))
	}
	for i := uint32(0); i < 6; i++ {
		if _, err := f.Share([]Pair{{Dst: i, Src: 50 + i, Len: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.ForcedCopies != 4 {
		t.Fatalf("forced copies = %d, want 4 (cap 2 of 6)", st.ForcedCopies)
	}
	// Data is correct either way.
	for i := uint32(0); i < 6; i++ {
		if got := mustRead(t, f, i); got[0] != byte(0x60+i) {
			t.Fatalf("lpn %d = %x", i, got[0])
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointReleasesShareTable(t *testing.T) {
	f, _ := testFTL(t, func(c *Config) { c.ShareTableCap = 4; c.CheckpointLogPages = 1000 })
	for i := uint32(0); i < 4; i++ {
		mustWrite(t, f, i, byte(i))
		mustWrite(t, f, 50+i, byte(0x70+i))
		if _, err := f.Share([]Pair{{Dst: i, Src: 50 + i, Len: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if f.ShareTableLoad() != 4 {
		t.Fatalf("share table load = %d", f.ShareTableLoad())
	}
	if _, err := f.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if f.ShareTableLoad() != 0 {
		t.Fatalf("share table not released by checkpoint: %d", f.ShareTableLoad())
	}
	// More shares fit again without forced copies.
	mustWrite(t, f, 20, 0x01)
	mustWrite(t, f, 60, 0x02)
	if _, err := f.Share([]Pair{{Dst: 20, Src: 60, Len: 1}}); err != nil {
		t.Fatal(err)
	}
	if f.Stats().ForcedCopies != 0 {
		t.Fatal("unexpected forced copy after checkpoint")
	}
}

func TestDeviceFull(t *testing.T) {
	f, _ := testFTL(t, nil)
	buf := make([]byte, f.PageSize())
	var sawFull bool
	// Writing unique data to every logical page repeatedly can exhaust the
	// device only if valid data exceeds physical capacity — it cannot, so
	// all writes must succeed.
	for round := 0; round < 3; round++ {
		for l := 0; l < f.Capacity(); l++ {
			if _, err := f.Write(uint32(l), buf); err != nil {
				if errors.Is(err, ErrFull) {
					sawFull = true
					break
				}
				t.Fatal(err)
			}
		}
	}
	if sawFull {
		t.Fatal("device reported full while logical space fits")
	}
}

func TestWriteAmplificationAccounting(t *testing.T) {
	f, chip := testFTL(t, nil)
	// Cold data that stays valid, interleaved with hot overwrites: victim
	// blocks then contain a mix of stale and valid pages, forcing copyback.
	for l := 0; l < f.Capacity(); l++ {
		mustWrite(t, f, uint32(l), byte(l))
	}
	hot := f.Capacity() / 4
	for round := 0; round < 20; round++ {
		for l := 0; l < hot; l++ {
			mustWrite(t, f, uint32(l*3%f.Capacity()), byte(l+round))
		}
	}
	st := f.Stats()
	cs := chip.Stats()
	if cs.Programs <= st.HostWrites {
		t.Fatalf("expected WAF > 1: programs %d, host writes %d", cs.Programs, st.HostWrites)
	}
	if st.Copybacks == 0 {
		t.Fatal("expected copybacks under GC pressure")
	}
	// Every program is accounted: host data + copybacks + meta moves +
	// log pages + map pages + forced copies.
	expect := st.HostWrites + st.Copybacks + st.MetaMoves +
		st.LogPagesWritten + st.MapPagesWritten + st.ForcedCopies
	if cs.Programs != expect {
		t.Fatalf("program accounting: chip %d, sum %d (%+v)", cs.Programs, expect, st)
	}
}

func TestWearLevelingEvensEraseCounts(t *testing.T) {
	spread := func(delta int64) (int64, int64) {
		f, chip := testFTL(t, func(c *Config) { c.WearLevelDelta = delta })
		// Cold data fills half the space once; the other half churns hard.
		half := f.Capacity() / 2
		for l := 0; l < half; l++ {
			mustWrite(t, f, uint32(l), byte(l))
		}
		for round := 0; round < 60; round++ {
			for l := half; l < f.Capacity(); l++ {
				mustWrite(t, f, uint32(l), byte(l+round))
			}
		}
		st := chip.Stats()
		// Cold data must be intact regardless of the policy.
		for l := 0; l < half; l++ {
			if got := mustRead(t, f, uint32(l)); got[0] != byte(l) {
				t.Fatalf("cold lpn %d corrupted", l)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return st.MaxWear - st.MinWear, st.MaxWear
	}
	offSpread, _ := spread(0)
	onSpread, _ := spread(4)
	if onSpread >= offSpread {
		t.Fatalf("wear leveling did not narrow spread: off=%d on=%d", offSpread, onSpread)
	}
	if onSpread > 8 {
		t.Fatalf("wear spread %d with leveling on (delta 4)", onSpread)
	}
}

func TestWornBlocksAreRetired(t *testing.T) {
	chip, err := nand.New(nand.Geometry{
		PageSize: 512, PagesPerBlock: 8, Blocks: 32, Endurance: 6,
	}, nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CheckpointLogPages = 8
	cfg.OverProvision = 0.3 // headroom to survive retirements
	f, err := New(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Churn past the endurance budget until the drive reaches end of
	// life. lastGood[l] tracks the newest acknowledged value per page.
	lastGood := make([]byte, f.Capacity())
	dead := false
churn:
	for round := 1; round < 200; round++ {
		for l := 0; l < f.Capacity(); l++ {
			b := byte(round + l)
			if _, err := f.Write(uint32(l), fill(b, f.PageSize())); err != nil {
				// Both end-of-life signals are graceful: out of erasable
				// space, or so many retirements that writes are refused.
				if errors.Is(err, ErrFull) || errors.Is(err, ErrReadOnly) {
					dead = true
					break churn
				}
				t.Fatalf("round %d: %v", round, err)
			}
			lastGood[l] = b
		}
	}
	st := f.Stats()
	if st.RetiredBlocks == 0 {
		t.Fatal("no blocks retired despite endurance 6")
	}
	if !dead {
		t.Fatal("drive never reached end of life under 200 rounds")
	}
	// End of life is graceful: every acknowledged write is still readable.
	for l := 0; l < f.Capacity(); l++ {
		if got := mustRead(t, f, uint32(l)); got[0] != lastGood[l] {
			t.Fatalf("lpn %d = %x, want %x", l, got[0], lastGood[l])
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
