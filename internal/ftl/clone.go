package ftl

import "share/internal/nand"

// Clone returns an independent FTL over chip — which must itself be a
// clone of the FTL's current chip (nand.Chip.Clone) — replicating every piece of volatile
// and durable-state bookkeeping: mapping tables, reference counts, free
// stacks, stream append points, delta buffers, log directories,
// statistics. A command stream issued to the clone produces exactly the
// results it would have produced against the original.
//
// The event sink is not carried over (the caller wires the clone to its
// own recorder), and the scratch free lists start empty — they affect
// allocation behavior only.
//
// Every field of FTL must either be copied here or be deliberately reset.
// A field added to FTL and missed here corrupts cloned runs silently —
// the BENCH_*.json determinism gates are the backstop.
func (f *FTL) Clone(chip *nand.Chip) *FTL {
	n := &FTL{
		chip:     chip,
		cfg:      f.cfg,
		geo:      f.geo,
		capacity: f.capacity,
		dies:     f.dies,
		gcLowDie: f.gcLowDie, gcHighDie: f.gcHighDie,
		planOn:   f.planOn,
		transfer: f.transfer,

		l2p:     append([]uint32(nil), f.l2p...),
		primary: append([]uint32(nil), f.primary...),
		refs:    append([]uint16(nil), f.refs...),
		extra:   make(map[uint32][]uint32, len(f.extra)),

		blockValid:  append([]int(nil), f.blockValid...),
		blockFull:   append([]bool(nil), f.blockFull...),
		retired:     append([]bool(nil), f.retired...),
		retiredN:    f.retiredN,
		spareBudget: f.spareBudget,
		readOnly:    f.readOnly,
		freeByDie:   make([][]int, len(f.freeByDie)),
		hosts:       make([]stream, len(f.hosts)),
		gc:          f.gc.clone(),
		meta:        f.meta.clone(),

		pageStream: append([]uint8(nil), f.pageStream...),
		heat:       append([]uint8(nil), f.heat...),
		heatTicks:  f.heatTicks,

		scrubQueue: append([]int(nil), f.scrubQueue...),
		metaHeal:   f.metaHeal,

		mapDir:        append([]uint32(nil), f.mapDir...),
		mapDirty:      append([]bool(nil), f.mapDirty...),
		mapSeq:        append([]uint64(nil), f.mapSeq...),
		deltaBuf:      append([]delta(nil), f.deltaBuf...),
		logPPNs:       append([]uint32(nil), f.logPPNs...),
		logSeqs:       append([]uint64(nil), f.logSeqs...),
		pendingShares: f.pendingShares,
		metaLive:      make(map[uint32]bool, len(f.metaLive)),
		logSeq:        f.logSeq,
		inGC:          f.inGC,

		inBatch:  f.inBatch,
		batchBuf: append([]delta(nil), f.batchBuf...),

		st: f.st,
	}
	n.st.StreamWrites = append([]int64(nil), f.st.StreamWrites...)
	n.st.StreamCopybacks = append([]int64(nil), f.st.StreamCopybacks...)
	for p, lpns := range f.extra {
		n.extra[p] = append([]uint32(nil), lpns...)
	}
	for die, free := range f.freeByDie {
		n.freeByDie[die] = append([]int(nil), free...)
	}
	for i := range f.hosts {
		n.hosts[i] = f.hosts[i].clone()
	}
	if f.scrubSet != nil {
		n.scrubSet = make(map[int]bool, len(f.scrubSet))
		for b, v := range f.scrubSet {
			n.scrubSet[b] = v
		}
	}
	if f.poisoned != nil {
		n.poisoned = make(map[uint32]bool, len(f.poisoned))
		for p, v := range f.poisoned {
			n.poisoned[p] = v
		}
	}
	for p, v := range f.metaLive {
		n.metaLive[p] = v
	}
	if f.batchIdx != nil {
		n.batchIdx = make(map[uint32]int, len(f.batchIdx))
		for lpn, i := range f.batchIdx {
			n.batchIdx[lpn] = i
		}
	}
	return n
}

func (s stream) clone() stream {
	return stream{open: append([]appendPoint(nil), s.open...), rr: s.rr, id: s.id}
}
