//go:build race

package ftl

const raceEnabled = true
