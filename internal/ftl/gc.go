package ftl

import (
	"errors"

	"share/internal/nand"
	"share/internal/sim"
)

func nandDataOOB(lpn uint32) nand.OOB { return nand.OOB{LPN: lpn, Tag: nand.TagData} }

// maybeGC runs garbage collection until the free-block pool is back above
// the high-water mark, if it has dropped below the low-water mark. The
// returned duration is the stall imposed on the triggering command — this
// is the "IO operations jitter" the paper attributes to copyback traffic.
//
// Watermarks are policed per die: cleaning is die-local (victim, copyback
// destination and erase all stay on one die), so a multi-die device can
// clean one die while host traffic proceeds on the others. A die with no
// reclaimable victim is skipped when other dies can still serve
// allocations; ErrFull surfaces only when every die is stuck (or, on a
// single-die device, its only die — preserving historical behavior).
func (f *FTL) maybeGC() (sim.Duration, error) {
	if f.inGC {
		return 0, nil
	}
	var total sim.Duration
	defer func() { f.st.GCStallNanos += total }()
	fullDies := 0
	for die := 0; die < f.dies; die++ {
		d, err := f.refillDie(die)
		total += d
		if err == ErrFull && f.dies > 1 {
			fullDies++
			continue
		}
		if err != nil {
			return total, err
		}
	}
	if fullDies == f.dies {
		return total, ErrFull
	}
	return total, nil
}

// refillDie drives one die's free stack back above the per-die high-water
// mark once it has dropped below the low-water mark.
func (f *FTL) refillDie(die int) (sim.Duration, error) {
	var total sim.Duration
	for len(f.freeByDie[die]) < f.gcLowDie {
		d, err := f.gcOnce(die)
		total += d
		// No reclaimable victim can mean live delta-log pages are pinning
		// blocks, or a rotten metadata page needs rewriting from RAM before
		// its block can go: an early checkpoint retires them and the pass
		// retries. The loop makes progress — every heal turns at least one
		// unreadable live metadata page stale — and exits as soon as a pass
		// succeeds or a checkpoint has nothing left to clear. The checkpoint
		// itself must not re-enter GC.
		for err == ErrFull && (len(f.logPPNs) > 0 || f.metaHeal) && !f.inBatch {
			f.inGC = true
			cd, cerr := f.Checkpoint()
			f.inGC = false
			f.metaHeal = false
			total += cd
			if cerr != nil {
				return total, cerr
			}
			d, err = f.gcOnce(die)
			total += d
		}
		if err != nil {
			return total, err
		}
		if len(f.freeByDie[die]) >= f.gcHighDie {
			break
		}
	}
	return total, nil
}

// gcOnce selects the fullest-of-stale victim block on one die (greedy:
// fewest valid pages), relocates its valid pages — within the same die —
// and erases it. When static wear leveling is enabled and the die's wear
// spread is too wide, the coldest full block is migrated instead, so
// long-idle data stops pinning low-wear flash (§5.3.1's lifespan
// argument). Victim, copyback destination and erase all stay on the given
// die, so cleaning occupies exactly one die's schedule.
func (f *FTL) gcOnce(die int) (sim.Duration, error) {
	f.inGC = true
	defer func() { f.inGC = false }()

	victim := -1
	best := f.geo.PagesPerBlock + 1
	coldest, coldWear := -1, int64(-1)
	var maxWear int64
	pins := f.batchPins()
	for b := die; b < f.geo.Blocks; b += f.dies {
		if w := f.chip.EraseCount(b); w > maxWear {
			maxWear = w
		}
		if !f.blockFull[b] || f.retired[b] || pins[b] || f.isOpenBlock(b) {
			continue
		}
		if f.blockValid[b] < best {
			best = f.blockValid[b]
			victim = b
		}
		if w := f.chip.EraseCount(b); coldWear < 0 || w < coldWear {
			coldWear = w
			coldest = b
		}
	}
	kind := EvGCVictim
	if f.cfg.WearLevelDelta > 0 && coldest >= 0 &&
		maxWear-coldWear > f.cfg.WearLevelDelta && coldest != victim {
		// Wear-leveling pass: migrate the coldest block even though it may
		// be fully valid; its erase counter starts catching up.
		victim = coldest
		best = f.blockValid[coldest]
		f.st.WearLevelMoves++
		kind = EvWearLevel
	} else if victim < 0 || best >= f.geo.PagesPerBlock {
		// Nothing reclaimable: every full block is entirely valid.
		return 0, ErrFull
	}
	f.st.GCEvents++
	f.emit(Event{Type: kind, Block: victim, A: int64(best)})

	buf := f.getPageBuf()
	total, err := f.relocateLive(victim, buf)
	f.putPageBuf(buf)
	if err != nil {
		return total, err
	}
	// The relocation deltas must be durable before the old copies are
	// destroyed, or a crash would recover mappings into an erased block.
	if len(f.deltaBuf) > 0 {
		d, err := f.flushDeltaPage()
		total += d
		if err != nil {
			return total, err
		}
	}
	d, err := f.chip.EraseBlock(victim)
	f.noteEraseOp(victim, d)
	total += d
	if nand.Retirable(err) {
		// Worn out, injected erase failure, or a block already marked bad:
		// its valid pages were relocated above, so simply never return it
		// to the free pool. Logical capacity is backed by the remaining
		// over-provisioning headroom until the spare budget runs out.
		if !errors.Is(err, nand.ErrWornOut) {
			f.st.EraseFails++
		}
		f.retireBlock(victim)
		return total, nil
	}
	if err != nil {
		return total, err
	}
	f.st.Erases++
	f.clearPoison(victim)
	f.blockFull[victim] = false
	f.blockValid[victim] = 0
	f.freeByDie[die] = append(f.freeByDie[die], victim)
	return total, nil
}

// isOpenBlock reports whether b is any stream's current append point on
// any die; open blocks are never GC victims.
func (f *FTL) isOpenBlock(b int) bool {
	for h := range f.hosts {
		for i := range f.hosts[h].open {
			if f.hosts[h].open[i].block == b {
				return true
			}
		}
	}
	for _, s := range [...]*stream{&f.gc, &f.meta} {
		for i := range s.open {
			if s.open[i].block == b {
				return true
			}
		}
	}
	return false
}

// batchPins returns the blocks holding pages an uncommitted batch delta
// still names as oldPPN. Until the batch commits, a crash must be able to
// recover those pre-batch pages, so GC may not erase their blocks.
func (f *FTL) batchPins() map[int]bool {
	if !f.inBatch || len(f.batchBuf) == 0 {
		return nil
	}
	pins := make(map[int]bool, len(f.batchBuf))
	for _, d := range f.batchBuf {
		if d.oldPPN != InvalidPPN {
			pins[f.chip.BlockOf(d.oldPPN)] = true
		}
	}
	return pins
}

// relocateData copies one valid data page to the GC stream and re-points
// every logical referrer — including SHARE co-referrers — at the new copy.
func (f *FTL) relocateData(ppn uint32, buf []byte) (sim.Duration, error) {
	lpns := f.referrers(ppn, f.getLPNBuf())
	defer f.putLPNBuf(lpns)
	if len(lpns) == 0 {
		// Defensive: refcount said valid but no live referrer.
		panic("ftl: valid page with no referrers")
	}
	wasPoisoned := len(f.poisoned) != 0 && f.poisoned[ppn]
	_, rd, err := f.chipRead(ppn, buf)
	total := rd
	lost := false
	if errors.Is(err, nand.ErrUncorrectable) {
		// The data is gone — every ECC rung failed and there is no
		// on-device redundancy to rebuild from. The block is still about to
		// be reclaimed, so the loss itself is relocated: a blank replacement
		// is programmed and remembered as a pending sector that keeps
		// reading back uncorrectable until the host rewrites the logical
		// page. Aborting instead would wedge GC on the rotten block forever.
		for i := range buf {
			buf[i] = 0
		}
		if !wasPoisoned {
			f.st.LostPages++
		}
		lost = true
	} else if err != nil {
		return total, err
	}
	src := f.pageStream[ppn]
	d, dst, err := f.programPageOn(&f.gc, f.geo.DieOfPPN(ppn), buf, nandDataOOB(lpns[0]))
	total += d
	if err != nil {
		return total, err
	}
	// The copied page keeps its origin stream, and the copyback is billed
	// to that stream: auto/hint quality shows up as a per-stream skew.
	f.pageStream[dst] = src
	if int(src) < len(f.st.StreamCopybacks) {
		f.st.StreamCopybacks[src]++
	}
	f.st.Copybacks++
	if lost {
		f.poisoned[dst] = true
	}
	if len(f.poisoned) != 0 {
		delete(f.poisoned, ppn)
	}
	if f.geo.DieOfPPN(dst) != f.geo.DieOfPPN(ppn) {
		f.st.CrossDieCopybacks++
	}
	for idx, lpn := range lpns {
		f.dropRef(ppn, lpn)
		f.l2p[lpn] = dst
		f.addRef(dst)
		if idx == 0 {
			f.primary[dst] = lpn
		} else {
			f.extra[dst] = append(f.extra[dst], lpn)
		}
		f.markMapDirty(lpn)
		ld, err := f.appendDelta(delta{lpn: lpn, oldPPN: ppn, newPPN: dst}, false)
		total += ld
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// relocateMeta copies a live FTL metadata page (mapping snapshot or delta
// log) to the GC stream and fixes the in-memory directory that points at it.
// The ordering information recovery depends on lives in the page payload,
// so relocation does not disturb it.
func (f *FTL) relocateMeta(ppn uint32, oob nand.OOB, buf []byte) (sim.Duration, error) {
	_, rd, err := f.chipRead(ppn, buf)
	if errors.Is(err, nand.ErrUncorrectable) {
		// The flash copy is unreadable, but its contents are not lost: the
		// RAM mapping is authoritative while the device is powered. Mark the
		// covering snapshot dirty (map pages) and request a metadata heal —
		// a forced checkpoint rewrites the state from RAM and truncates the
		// log, leaving this copy stale. Until then the block cannot be
		// reclaimed, exactly like one pinned by live log pages, so report
		// ErrFull and let the caller's checkpoint-and-retry path run.
		if oob.Tag == nand.TagMapBase {
			if idx := int(oob.LPN); idx < len(f.mapDirty) {
				f.mapDirty[idx] = true
			}
		}
		f.st.MetaFaults++
		f.metaHeal = true
		return rd, ErrFull
	}
	if err != nil {
		return rd, err
	}
	total := rd
	d, dst, err := f.programPageOn(&f.gc, f.geo.DieOfPPN(ppn), buf, nand.OOB{LPN: oob.LPN, Tag: oob.Tag})
	total += d
	if err != nil {
		return total, err
	}
	f.st.MetaMoves++
	if f.geo.DieOfPPN(dst) != f.geo.DieOfPPN(ppn) {
		f.st.CrossDieCopybacks++
	}
	delete(f.metaLive, ppn)
	f.blockValid[f.chip.BlockOf(ppn)]--
	f.metaLive[dst] = true
	f.blockValid[f.chip.BlockOf(dst)]++
	switch oob.Tag {
	case nand.TagMapBase:
		idx := int(oob.LPN)
		if idx < len(f.mapDir) && f.mapDir[idx] == ppn {
			f.mapDir[idx] = dst
		}
	case nand.TagMapLog:
		for i, p := range f.logPPNs {
			if p == ppn {
				f.logPPNs[i] = dst
				break
			}
		}
	}
	return total, nil
}
