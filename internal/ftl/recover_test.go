package ftl

import (
	"bytes"
	"errors"
	"testing"

	"share/internal/nand"
)

func crashAndRecover(t *testing.T, f *FTL) {
	t.Helper()
	f.Crash()
	if _, err := f.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("post-recovery invariants: %v", err)
	}
}

func TestRecoverFlushedWrites(t *testing.T) {
	f, _ := testFTL(t, nil)
	for i := uint32(0); i < 32; i++ {
		mustWrite(t, f, i, byte(i+1))
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, f)
	for i := uint32(0); i < 32; i++ {
		if got := mustRead(t, f, i); got[0] != byte(i+1) {
			t.Fatalf("lpn %d = %x after recovery", i, got[0])
		}
	}
}

func TestRecoverEmptyDevice(t *testing.T) {
	f, _ := testFTL(t, nil)
	crashAndRecover(t, f)
	if got := mustRead(t, f, 0); got[0] != 0 {
		t.Fatal("empty device returned data after recovery")
	}
	// Device remains usable.
	mustWrite(t, f, 7, 0x7A)
	if got := mustRead(t, f, 7); got[0] != 0x7A {
		t.Fatal("write after recovery failed")
	}
}

func TestUnflushedWriteEitherOldOrNew(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 5, 0x01)
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, 5, 0x02) // not flushed: may be lost
	crashAndRecover(t, f)
	got := mustRead(t, f, 5)
	if got[0] != 0x01 && got[0] != 0x02 {
		t.Fatalf("lpn 5 = %x, want old (01) or new (02)", got[0])
	}
}

// SHARE durability at command completion (§4.2.2) and batch atomicity
// across power cuts are covered exhaustively — at every NAND program/erase
// boundary, not at sampled points — by the power-cut injector tests in
// crashpoint_test.go (TestShareCrashAtEveryProgramBoundary and
// TestWriteAtomicCrashAtEveryProgramBoundary).

func TestRecoverAfterCheckpointAndMoreWrites(t *testing.T) {
	f, _ := testFTL(t, nil)
	for i := uint32(0); i < 64; i++ {
		mustWrite(t, f, i, byte(i))
	}
	if _, err := f.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 16; i++ {
		mustWrite(t, f, i, byte(0x80+i)) // post-checkpoint deltas
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, f)
	for i := uint32(0); i < 64; i++ {
		want := byte(i)
		if i < 16 {
			want = byte(0x80 + i)
		}
		if got := mustRead(t, f, i); got[0] != want {
			t.Fatalf("lpn %d = %x, want %x", i, got[0], want)
		}
	}
}

func TestRecoverSurvivesGCRelocatedMetadata(t *testing.T) {
	f, _ := testFTL(t, func(c *Config) { c.CheckpointLogPages = 4 })
	// Heavy churn: forces GC to relocate live map/log pages.
	for round := 0; round < 8; round++ {
		for l := 0; l < f.Capacity(); l++ {
			mustWrite(t, f, uint32(l), byte(round^l))
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if f.Stats().MetaMoves == 0 {
		t.Skip("churn did not relocate metadata; adjust workload")
	}
	crashAndRecover(t, f)
	for l := 0; l < f.Capacity(); l++ {
		if got := mustRead(t, f, uint32(l)); got[0] != byte(7^l) {
			t.Fatalf("lpn %d = %x, want %x", l, got[0], byte(7^l))
		}
	}
}

func TestRecoverPreservesTrim(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 9, 0x99)
	if _, err := f.Trim(9, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, f)
	if got := mustRead(t, f, 9); got[0] != 0 {
		t.Fatalf("trimmed page resurrected: %x", got[0])
	}
}

func TestDoubleCrashRecover(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 1, 0x11)
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, f)
	mustWrite(t, f, 2, 0x22)
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, f)
	if got := mustRead(t, f, 1); got[0] != 0x11 {
		t.Fatalf("lpn 1 = %x", got[0])
	}
	if got := mustRead(t, f, 2); got[0] != 0x22 {
		t.Fatalf("lpn 2 = %x", got[0])
	}
}

func TestRecoveredDeviceContinuesUnderLoad(t *testing.T) {
	f, _ := testFTL(t, nil)
	payload := func(round, l int) []byte {
		b := fill(byte(round*13+l), f.PageSize())
		b[1] = byte(l >> 3)
		return b
	}
	for round := 0; round < 3; round++ {
		for l := 0; l < f.Capacity(); l++ {
			if _, err := f.Write(uint32(l), payload(round, l)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := f.Flush(); err != nil {
			t.Fatal(err)
		}
		crashAndRecover(t, f)
	}
	for l := 0; l < f.Capacity(); l++ {
		want := payload(2, l)
		if got := mustRead(t, f, uint32(l)); !bytes.Equal(got, want) {
			t.Fatalf("lpn %d mismatch after repeated crashes", l)
		}
	}
}

// TestRecoverPowerCutHole: a power cut can land between the append point
// advancing and the page programming, and a post-cut program (the
// capacitor's final delta flush in the field; an explicit resume here)
// then lands on the following page, leaving a permanent hole in the
// block. Recovery must resume appending past the highest programmed page
// (the frontier), not at the programmed-page count — counting would aim
// the append point at a programmed page and every subsequent write in
// that block would fail with a non-free-page program error.
func TestRecoverPowerCutHole(t *testing.T) {
	f, chip := testFTL(t, nil)
	mustWrite(t, f, 0, 0x01)
	mustWrite(t, f, 1, 0x02)

	// The cut program advances the host append point but leaves its page
	// free; restoring power and writing again programs the next page of
	// the same block, so the block now has a hole.
	chip.PowerCutAfter(0)
	if _, err := f.Write(2, fill(0x03, f.PageSize())); !errors.Is(err, nand.ErrPowerCut) {
		t.Fatalf("cut write: %v, want ErrPowerCut", err)
	}
	chip.DisablePowerCut()
	mustWrite(t, f, 2, 0x03)
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}

	crashAndRecover(t, f)

	// Filling the rest of the device must never collide with the pages
	// beyond the hole.
	for round := 0; round < 2; round++ {
		for l := uint32(0); l < 16; l++ {
			mustWrite(t, f, l, byte(0x10+round))
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for l := uint32(0); l < 16; l++ {
		if got := mustRead(t, f, l); got[0] != 0x11 {
			t.Fatalf("lpn %d = %x after post-recovery writes", l, got[0])
		}
	}
}
