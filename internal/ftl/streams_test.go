package ftl

import (
	"errors"
	"testing"

	"share/internal/nand"
)

// streamFTL builds a device with headroom for several host streams:
// 64 blocks of 8 pages, 25% over-provisioned (reserve 16, max 10 streams
// on one die).
func streamFTL(t *testing.T, mut func(*Config)) (*FTL, *nand.Chip) {
	t.Helper()
	return testFTLGeo(t, nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 64}, func(cfg *Config) {
		cfg.OverProvision = 0.25
		if mut != nil {
			mut(cfg)
		}
	})
}

func mustWriteStream(t *testing.T, f *FTL, lpn uint32, b byte, stream int) {
	t.Helper()
	if _, err := f.WriteStream(lpn, fill(b, f.PageSize()), stream); err != nil {
		t.Fatalf("write lpn %d stream %d: %v", lpn, stream, err)
	}
}

func TestStreamConfigValidation(t *testing.T) {
	geo := nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32}
	chip, err := nand.New(geo, nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig() // reserve 8, 1 die: max = 8 - 2 - 4 = 2 streams
	cfg.HostStreams = 3
	_, err = New(chip, cfg)
	var sce *StreamConfigError
	if !errors.As(err, &sce) {
		t.Fatalf("3 streams on tiny geometry: got %v, want StreamConfigError", err)
	}
	if sce.Streams != 3 || sce.Max != 2 {
		t.Fatalf("error detail = %+v, want Streams=3 Max=2", sce)
	}

	cfg.HostStreams = 1
	cfg.AutoStream = true
	if _, err := New(chip, cfg); !errors.As(err, &sce) {
		t.Fatalf("auto-stream with 1 stream: got %v, want StreamConfigError", err)
	}

	cfg.HostStreams = 2
	if _, err := New(chip, cfg); err != nil {
		t.Fatalf("2 streams with auto should mount: %v", err)
	}
}

// TestStreamSegregation pins the tentpole invariant: pages written to
// different streams never share a NAND block, and GC copybacks are billed
// to the stream whose data was relocated.
func TestStreamSegregation(t *testing.T) {
	f, chip := streamFTL(t, func(cfg *Config) { cfg.HostStreams = 4 })

	// Fill the whole logical space with each stream's lpns interleaved
	// hot/cold, so every initial block mixes write-once pages with pages
	// about to go stale — then rewrite the hot halves. The free pool is
	// only the over-provisioned reserve, so GC must reclaim the mixed
	// blocks and copy their still-live cold pages: guaranteed copybacks.
	span := uint32(f.Capacity() / 4)
	for s := 0; s < 4; s++ {
		for i := uint32(0); i < span; i++ {
			mustWriteStream(t, f, uint32(s)*span+i, byte(s), s)
		}
	}
	for round := 0; round < 3; round++ {
		for s := 0; s < 4; s++ {
			for i := uint32(0); i < span; i += 2 {
				mustWriteStream(t, f, uint32(s)*span+i, byte(0x40+round), s)
			}
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Every host-written (non-GC-relocated) page's block must be owned by
	// exactly one stream: group live mapped pages by block via OOB stream.
	blockStream := make(map[int]uint8)
	for l := 0; l < f.Capacity(); l++ {
		ppn := f.Mapping(uint32(l))
		if ppn == InvalidPPN {
			continue
		}
		oob, err := chip.ReadOOB(ppn)
		if err != nil {
			t.Fatal(err)
		}
		if oob.Stream >= uint8(f.HostStreamCount()) {
			continue // GC-relocated copy lives in a gc-stream block
		}
		b := chip.BlockOf(ppn)
		if prev, ok := blockStream[b]; ok && prev != oob.Stream {
			t.Fatalf("block %d holds pages from streams %d and %d", b, prev, oob.Stream)
		}
		blockStream[b] = oob.Stream
	}
	if len(blockStream) < 4 {
		t.Fatalf("only %d host blocks observed; segregation untested", len(blockStream))
	}

	st := f.Stats()
	if len(st.StreamWrites) != 4 || len(st.StreamCopybacks) != 4 {
		t.Fatalf("per-stream stats lengths = %d/%d, want 4/4", len(st.StreamWrites), len(st.StreamCopybacks))
	}
	var writes, copybacks int64
	for i := range st.StreamWrites {
		writes += st.StreamWrites[i]
		copybacks += st.StreamCopybacks[i]
	}
	if writes != st.HostWrites {
		t.Fatalf("sum(StreamWrites) = %d, HostWrites = %d", writes, st.HostWrites)
	}
	if copybacks != st.Copybacks {
		t.Fatalf("sum(StreamCopybacks) = %d, Copybacks = %d", copybacks, st.Copybacks)
	}
	if st.Copybacks == 0 {
		t.Fatal("workload produced no GC copybacks; attribution untested")
	}
}

// TestStreamHintClamped: an out-of-range hint degrades to the highest
// stream instead of failing.
func TestStreamHintClamped(t *testing.T) {
	f, _ := streamFTL(t, func(cfg *Config) { cfg.HostStreams = 2 })
	mustWriteStream(t, f, 1, 0xAA, 99)
	st := f.Stats()
	if st.StreamWrites[1] != 1 {
		t.Fatalf("clamped hint landed in %v, want stream 1", st.StreamWrites)
	}
}

// TestLegacyStreamStatsOmitted: with HostStreams unset the telemetry
// slices stay nil so legacy JSON reports are byte-identical.
func TestLegacyStreamStatsOmitted(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 0, 1)
	st := f.Stats()
	if st.StreamWrites != nil || st.StreamCopybacks != nil {
		t.Fatalf("legacy mode leaked stream stats: %v / %v", st.StreamWrites, st.StreamCopybacks)
	}
	if f.HostStreamCount() != 1 {
		t.Fatalf("legacy host stream count = %d", f.HostStreamCount())
	}
}

// TestAutoStreamSeparatesHotFromCold: under a skewed unhinted workload
// the classifier moves frequently rewritten pages out of stream 0.
func TestAutoStreamSeparatesHotFromCold(t *testing.T) {
	f, _ := streamFTL(t, func(cfg *Config) {
		cfg.HostStreams = 2
		cfg.AutoStream = true
	})
	if !f.AutoStreamEnabled() {
		t.Fatal("auto-stream not armed")
	}
	// 8 hot pages rewritten constantly, 100 cold pages written once.
	for i := uint32(0); i < 100; i++ {
		mustWrite(t, f, 20+i, 0x01)
	}
	for round := 0; round < 40; round++ {
		for h := uint32(0); h < 8; h++ {
			mustWrite(t, f, h, byte(round))
		}
	}
	st := f.Stats()
	if st.StreamWrites[1] == 0 {
		t.Fatal("no write ever classified hot")
	}
	// The hot pages' current copies should be classified into stream 1.
	hotIn1 := 0
	for h := uint32(0); h < 8; h++ {
		if f.pageStream[f.Mapping(h)] == 1 {
			hotIn1++
		}
	}
	if hotIn1 < 6 {
		t.Fatalf("only %d/8 hot pages in the hot stream", hotIn1)
	}
	// Cold pages must stay in stream 0.
	for i := uint32(20); i < 120; i++ {
		if ppn := f.Mapping(i); ppn != InvalidPPN && f.pageStream[ppn] == 1 {
			t.Fatalf("cold lpn %d classified hot", i)
		}
	}
}

// TestStreamRecovery: after a crash the OOB stream stamps hand each
// partial block back to its exact owner stream, on every die.
func TestStreamRecovery(t *testing.T) {
	geo := nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 64, Channels: 2, DiesPerChannel: 1}
	f, _ := testFTLGeo(t, geo, func(cfg *Config) {
		cfg.OverProvision = 0.25
		cfg.HostStreams = 3
	})
	// Leave every stream mid-block on both dies: 8 pages/block and 2 dies
	// means 3 pages per stream guarantees partial fills.
	for s := 0; s < 3; s++ {
		for i := uint32(0); i < 6; i++ {
			mustWriteStream(t, f, uint32(s)*16+i, byte(s+1), s)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	before := f.StreamInfos()
	crashAndRecover(t, f)
	after := f.StreamInfos()
	for i := range before {
		if before[i].Name != after[i].Name {
			t.Fatalf("stream order changed: %s vs %s", before[i].Name, after[i].Name)
		}
		for die := range before[i].Open {
			b, a := before[i].Open[die], after[i].Open[die]
			if b.Block != a.Block || b.NextPage != a.NextPage {
				t.Fatalf("stream %s die %d open block %d@%d recovered as %d@%d",
					before[i].Name, die, b.Block, b.NextPage, a.Block, a.NextPage)
			}
		}
	}
	// Data survived, and the device keeps segregating after recovery.
	for s := 0; s < 3; s++ {
		for i := uint32(0); i < 6; i++ {
			if got := mustRead(t, f, uint32(s)*16+i); got[0] != byte(s+1) {
				t.Fatalf("stream %d lpn %d = %x after recovery", s, uint32(s)*16+i, got[0])
			}
			mustWriteStream(t, f, uint32(s)*16+i, byte(s+0x10), s)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamRecoveryRebuildsOrigins: pageStream survives recovery for
// host-written pages (OOB carries the writer), so copyback attribution
// keeps working across a power cycle.
func TestStreamRecoveryRebuildsOrigins(t *testing.T) {
	f, _ := streamFTL(t, func(cfg *Config) { cfg.HostStreams = 2 })
	mustWriteStream(t, f, 0, 0x01, 0)
	mustWriteStream(t, f, 1, 0x02, 1)
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	crashAndRecover(t, f)
	if got := f.pageStream[f.Mapping(0)]; got != 0 {
		t.Fatalf("lpn 0 origin = %d after recovery, want 0", got)
	}
	if got := f.pageStream[f.Mapping(1)]; got != 1 {
		t.Fatalf("lpn 1 origin = %d after recovery, want 1", got)
	}
}

// TestCrashPointStreams is the multi-stream crashpoint cell: with three
// host streams filling blocks on two dies, power-cut the device at every
// program/erase boundary of a mixed workload, recover, and verify that
// the per-stream open-block state rebuilds correctly — every recovered
// append point belongs to the stream whose OOB stamp its block carries,
// and every stream keeps writing (segregated) after the cut.
func TestCrashPointStreams(t *testing.T) {
	geo := nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 64, Channels: 2, DiesPerChannel: 1}
	mut := func(cfg *Config) {
		cfg.OverProvision = 0.25
		cfg.HostStreams = 3
	}
	workload := func(f *FTL) error {
		for round := 0; round < 4; round++ {
			for s := 0; s < 3; s++ {
				for i := uint32(0); i < 9; i++ {
					if _, err := f.WriteStream(uint32(s)*32+i, fill(byte(16*s+round), f.PageSize()), s); err != nil {
						return err
					}
				}
			}
			if _, err := f.Flush(); err != nil {
				return err
			}
		}
		return nil
	}

	dry, dryChip := testFTLGeo(t, geo, mut)
	if err := workload(dry); err != nil {
		t.Fatal(err)
	}
	boundaries := int(dryChip.MutatingOps())

	for cut := 1; cut <= boundaries; cut++ {
		f, chip := testFTLGeo(t, geo, mut)
		chip.PowerCutAfter(int64(cut))
		if err := workload(f); err != nil && !errors.Is(err, nand.ErrPowerCut) {
			t.Fatalf("cut %d: workload died with %v", cut, err)
		}
		chip.DisablePowerCut()
		f.Crash()
		if _, err := f.Recover(); err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Every recovered append point must point one past its block's
		// frontier and belong to the stream that was filling the block:
		// the newest programmed page below it carries the owner's stamp.
		for _, in := range f.StreamInfos() {
			for _, ob := range in.Open {
				if ob.Block < 0 {
					continue
				}
				if ob.NextPage <= 0 || ob.NextPage >= geo.PagesPerBlock {
					t.Fatalf("cut %d: stream %s die %d open block %d with next %d",
						cut, in.Name, ob.Die, ob.Block, ob.NextPage)
				}
				last := uint32(ob.Block*geo.PagesPerBlock + ob.NextPage - 1)
				if chip.State(last) != nand.PageProgrammed {
					t.Fatalf("cut %d: stream %s die %d: page before append point not programmed", cut, in.Name, ob.Die)
				}
				oob, err := chip.ReadOOB(last)
				if err != nil {
					t.Fatal(err)
				}
				want := map[string]uint8{"host0": 0, "host1": 1, "host2": 2, "gc": nand.StreamGC, "meta": nand.StreamMeta}[in.Name]
				if oob.Stream != want {
					t.Fatalf("cut %d: stream %s die %d recovered block %d stamped for stream %d",
						cut, in.Name, ob.Die, ob.Block, oob.Stream)
				}
			}
		}
		// The device keeps serving segregated writes after recovery.
		for s := 0; s < 3; s++ {
			for i := uint32(0); i < 4; i++ {
				mustWriteStream(t, f, uint32(s)*32+i, byte(0x70+s), s)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("cut %d: post-resume: %v", cut, err)
		}
	}
}
