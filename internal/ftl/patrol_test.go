package ftl

import (
	"testing"

	"share/internal/nand"
	"share/internal/sim"
)

// patrolModel is an aggressive aging model for patrol tests: retention
// rots blocks at 100 risk/second against a fast limit of 1000, so the
// 80% patrol threshold trips after 8 idle seconds and data loss (past the
// 1500 soft limit) after 15.
func patrolModel() *nand.MediaModel {
	return &nand.MediaModel{
		Seed:            3,
		RetentionWeight: 100,
		RetentionUnit:   sim.Second,
		FastLimit:       1000,
		RetryLimit:      1200,
		SoftLimit:       1500,
	}
}

// mediaFTL builds the standard test FTL with an aging model installed.
func mediaFTL(t *testing.T, m *nand.MediaModel, mut func(*Config)) (*FTL, *nand.Chip) {
	t.Helper()
	f, chip := testFTL(t, mut)
	if err := chip.SetMediaModel(m); err != nil {
		t.Fatal(err)
	}
	return f, chip
}

func TestPatrolNoopWithoutMedia(t *testing.T) {
	f, _ := testFTL(t, nil)
	mustWrite(t, f, 0, 0x11)
	d, b, err := f.PatrolStep()
	if err != nil || b != -1 || d != 0 {
		t.Fatalf("PatrolStep without media: d=%d b=%d err=%v, want 0/-1/nil", d, b, err)
	}
	if f.Stats().PatrolScans != 0 {
		t.Fatal("patrol scan counted without media model")
	}
}

func TestPatrolIdleBelowThreshold(t *testing.T) {
	f, _ := mediaFTL(t, patrolModel(), nil)
	for i := 0; i < 24; i++ {
		mustWrite(t, f, uint32(i), byte(i))
	}
	d, b, err := f.PatrolStep()
	if err != nil {
		t.Fatal(err)
	}
	if b != -1 {
		t.Fatalf("patrol refreshed fresh block %d", b)
	}
	if d == 0 {
		t.Fatal("patrol sweep consumed no virtual time")
	}
	st := f.Stats()
	if st.PatrolScans != 1 || st.PatrolRefreshes != 0 {
		t.Fatalf("scans=%d refreshes=%d, want 1/0", st.PatrolScans, st.PatrolRefreshes)
	}
}

// TestPatrolRefreshesRottingBlocks lets retention push full blocks over
// the patrol threshold, then drives PatrolStep until the backlog drains
// and confirms the data survived unharmed.
func TestPatrolRefreshesRottingBlocks(t *testing.T) {
	f, chip := mediaFTL(t, patrolModel(), nil)
	const n = 24
	for i := 0; i < n; i++ {
		mustWrite(t, f, uint32(i), byte(i+1))
	}
	// 9 idle seconds: risk 900, over the 800 threshold but still inside
	// the fast ECC limit — patrol should act before any read suffers.
	chip.AdvanceMediaTime(9 * sim.Second)
	if f.PatrolBacklog() == 0 {
		t.Fatal("no patrol backlog after rotting")
	}
	refreshed := 0
	for i := 0; i < 64; i++ {
		_, b, err := f.PatrolStep()
		if err != nil {
			t.Fatalf("patrol step %d: %v", i, err)
		}
		if b == -1 {
			break
		}
		refreshed++
		if f.IsRetired(b) {
			t.Fatalf("patrol retired healthy block %d", b)
		}
	}
	if refreshed == 0 {
		t.Fatal("patrol refreshed nothing")
	}
	if got := f.PatrolBacklog(); got != 0 {
		t.Fatalf("patrol backlog %d after drain", got)
	}
	st := f.Stats()
	if st.PatrolRefreshes != int64(refreshed) {
		t.Fatalf("PatrolRefreshes = %d, want %d", st.PatrolRefreshes, refreshed)
	}
	for i := 0; i < n; i++ {
		if got := mustRead(t, f, uint32(i)); got[0] != byte(i+1) {
			t.Fatalf("lpn %d = %x after patrol refresh", i, got[0])
		}
	}
	if st := f.Stats(); st.UncorrectableReads != 0 {
		t.Fatalf("UncorrectableReads = %d with patrol running", st.UncorrectableReads)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRetentionLossWithoutPatrol is the control: the same rot with no
// patrol steps ends in uncorrectable reads once risk passes the soft
// decode limit.
func TestRetentionLossWithoutPatrol(t *testing.T) {
	f, chip := mediaFTL(t, patrolModel(), nil)
	const n = 24
	for i := 0; i < n; i++ {
		mustWrite(t, f, uint32(i), byte(i+1))
	}
	chip.AdvanceMediaTime(16 * sim.Second) // risk 1600 > soft limit 1500
	lost := 0
	buf := make([]byte, f.PageSize())
	for i := 0; i < n; i++ {
		if _, err := f.Read(uint32(i), buf); err != nil {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("no reads lost without patrol — control is not a control")
	}
	if st := f.Stats(); st.UncorrectableReads != int64(lost) {
		t.Fatalf("UncorrectableReads = %d, want %d", st.UncorrectableReads, lost)
	}
}

// TestMediaLadderEscalation drives one block's read disturb through every
// ECC rung via the FTL read path: fast reads degrade into shifted-sense
// retries, then soft decodes, with the suspect block queued for scrubbing.
func TestMediaLadderEscalation(t *testing.T) {
	m := &nand.MediaModel{
		Seed:          3,
		DisturbWeight: 1,
		FastLimit:     50,
		RetryLimit:    500,
		SoftLimit:     5000,
		RetentionUnit: sim.Second,
	}
	f, chip := mediaFTL(t, m, nil)
	mustWrite(t, f, 0, 0x7E)
	ppnBlock := -1
	buf := make([]byte, f.PageSize())
	for i := 0; i < 600; i++ {
		if _, err := f.Read(0, buf); err != nil {
			t.Fatalf("read %d lost: %v", i, err)
		}
		if buf[0] != 0x7E {
			t.Fatalf("read %d returned %x", i, buf[0])
		}
		if ppnBlock == -1 {
			ppnBlock = chip.BlockOf(f.l2p[0])
		}
	}
	st := f.Stats()
	if st.ReadRetries == 0 {
		t.Fatal("disturb never escalated past the fast read")
	}
	if st.SoftDecodes == 0 {
		t.Fatal("disturb never escalated to soft decode")
	}
	if st.UncorrectableReads != 0 {
		t.Fatalf("UncorrectableReads = %d, ladder should have recovered all", st.UncorrectableReads)
	}
	if len(f.scrubQueue) == 0 && st.ScrubbedBlocks == 0 {
		t.Fatal("retry-recovered reads never flagged the block for scrubbing")
	}
}
