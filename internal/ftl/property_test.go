package ftl

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"share/internal/nand"
)

// shadow is the reference model: a plain map of the logical address space.
type shadow struct {
	pages map[uint32][]byte
	size  int
}

func newShadow(size int) *shadow { return &shadow{pages: make(map[uint32][]byte), size: size} }

func (s *shadow) write(lpn uint32, data []byte) {
	b := make([]byte, len(data))
	copy(b, data)
	s.pages[lpn] = b
}

func (s *shadow) trim(lpn uint32)       { delete(s.pages, lpn) }
func (s *shadow) share(dst, src uint32) { s.pages[dst] = s.pages[src] }

func (s *shadow) read(lpn uint32) []byte {
	if b, ok := s.pages[lpn]; ok {
		return b
	}
	return make([]byte, s.size)
}

// TestPropertyRandomOpsMatchShadow drives the FTL with random writes,
// trims, shares, flushes, checkpoints, and crash/recover cycles, checking
// after every flush+crash that recovered contents equal the shadow model
// and that internal invariants hold.
func TestPropertyRandomOpsMatchShadow(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 42, 1234}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			runRandomOps(t, seed)
		})
	}
}

func runRandomOps(t *testing.T, seed int64) {
	chip, err := nand.New(nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 48}, nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CheckpointLogPages = 6
	f, err := New(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	sh := newShadow(f.PageSize())
	capacity := uint32(f.Capacity())
	buf := make([]byte, f.PageSize())

	verifyAll := func(where string) {
		t.Helper()
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", where, err)
		}
		for l := uint32(0); l < capacity; l++ {
			if _, err := f.Read(l, buf); err != nil {
				t.Fatalf("%s: read %d: %v", where, l, err)
			}
			if want := sh.read(l); !bytes.Equal(buf, want) {
				t.Fatalf("%s: lpn %d: got %x... want %x... (seed %d)",
					where, l, buf[:4], want[:4], seed)
			}
		}
	}

	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(100); {
		case op < 55: // write
			lpn := uint32(rng.Intn(int(capacity)))
			rng.Read(buf)
			if _, err := f.Write(lpn, buf); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			sh.write(lpn, buf)
		case op < 65: // trim a small range
			lpn := uint32(rng.Intn(int(capacity)))
			n := rng.Intn(4) + 1
			if int(lpn)+n > int(capacity) {
				n = int(capacity) - int(lpn)
			}
			if _, err := f.Trim(lpn, n); err != nil {
				t.Fatalf("step %d trim: %v", step, err)
			}
			for i := 0; i < n; i++ {
				sh.trim(lpn + uint32(i))
			}
		case op < 85: // share batch of 1..5 pairs
			n := rng.Intn(5) + 1
			var pairs []Pair
			used := map[uint32]bool{}
			for i := 0; i < n; i++ {
				src := uint32(rng.Intn(int(capacity)))
				dst := uint32(rng.Intn(int(capacity)))
				if src == dst || f.Mapping(src) == InvalidPPN || used[src] || used[dst] {
					continue
				}
				used[src] = true
				used[dst] = true
				pairs = append(pairs, Pair{Dst: dst, Src: src, Len: 1})
			}
			if len(pairs) == 0 {
				continue
			}
			if _, err := f.Share(pairs); err != nil {
				t.Fatalf("step %d share: %v", step, err)
			}
			for _, p := range pairs {
				sh.share(p.Dst, p.Src)
			}
		case op < 90: // flush
			if _, err := f.Flush(); err != nil {
				t.Fatalf("step %d flush: %v", step, err)
			}
		case op < 93: // checkpoint
			if _, err := f.Checkpoint(); err != nil {
				t.Fatalf("step %d checkpoint: %v", step, err)
			}
		case op < 96: // flush + crash + recover, then full verify
			if _, err := f.Flush(); err != nil {
				t.Fatalf("step %d pre-crash flush: %v", step, err)
			}
			f.Crash()
			if _, err := f.Recover(); err != nil {
				t.Fatalf("step %d recover: %v", step, err)
			}
			verifyAll("post-crash")
		default: // read spot-check
			lpn := uint32(rng.Intn(int(capacity)))
			if _, err := f.Read(lpn, buf); err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			if want := sh.read(lpn); !bytes.Equal(buf, want) {
				t.Fatalf("step %d lpn %d mismatch (seed %d)", step, lpn, seed)
			}
		}
		if step%500 == 499 {
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyAll("final")
}

// TestQuickShareIdempotentMapping uses testing/quick to check an algebraic
// property of SHARE: after share(dst, src), both LPNs map to the same PPN,
// and sharing again is a no-op on the mapping.
func TestQuickShareIdempotentMapping(t *testing.T) {
	chip, err := nand.New(nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32}, nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	capacity := uint32(f.Capacity())
	buf := make([]byte, f.PageSize())
	prop := func(a, b uint16, fillByte byte) bool {
		dst := uint32(a) % capacity
		src := uint32(b) % capacity
		if dst == src {
			return true
		}
		for i := range buf {
			buf[i] = fillByte
		}
		if _, err := f.Write(src, buf); err != nil {
			return false
		}
		if _, err := f.Share([]Pair{{Dst: dst, Src: src, Len: 1}}); err != nil {
			return false
		}
		if f.Mapping(dst) != f.Mapping(src) {
			return false
		}
		first := f.Mapping(dst)
		if _, err := f.Share([]Pair{{Dst: dst, Src: src, Len: 1}}); err != nil {
			return false
		}
		return f.Mapping(dst) == first && f.Mapping(src) == first &&
			f.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTrimReadsZero checks that any trimmed page reads back as zeros
// regardless of prior contents.
func TestQuickTrimReadsZero(t *testing.T) {
	chip, err := nand.New(nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32}, nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	capacity := uint32(f.Capacity())
	buf := make([]byte, f.PageSize())
	zero := make([]byte, f.PageSize())
	prop := func(a uint16, fillByte byte) bool {
		lpn := uint32(a) % capacity
		for i := range buf {
			buf[i] = fillByte
		}
		if _, err := f.Write(lpn, buf); err != nil {
			return false
		}
		if _, err := f.Trim(lpn, 1); err != nil {
			return false
		}
		if _, err := f.Read(lpn, buf); err != nil {
			return false
		}
		return bytes.Equal(buf, zero)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
