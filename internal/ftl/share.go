package ftl

import (
	"fmt"

	"share/internal/sim"
)

// Share executes one SHARE command carrying a batch of remapping pairs.
// For each pair, Dst's logical pages are remapped onto the physical pages
// currently mapped by Src's logical pages; Dst's previous physical pages
// lose one referrer (and become reclaimable when unreferenced), exactly as
// the paper's SHARE(LPN1, LPN2, length) defines.
//
// Atomicity: the whole batch is applied to the in-memory table, then its
// deltas are persisted inside a single mapping-delta page program (§4.2.2),
// so across a power failure either every pair or no pair survives. Batches
// larger than one delta page are rejected with ErrBatch; the host library
// splits such batches into independently atomic commands.
//
// If the bounded reverse-mapping table is full, a pair is resolved by a
// forced physical copy instead of a remap; the command still succeeds and
// the event is counted in Stats.ForcedCopies.
func (f *FTL) Share(pairs []Pair) (sim.Duration, error) {
	if f.readOnly {
		return 0, ErrReadOnly
	}
	total := f.cfg.CommandOverhead
	units := 0
	for _, p := range pairs {
		if p.Len == 0 {
			return total, fmt.Errorf("ftl: share pair with zero length")
		}
		if p.Dst == p.Src {
			return total, fmt.Errorf("%w: dst == src (%d)", ErrOverlap, p.Dst)
		}
		if p.Len > 1 && rangesOverlap(p.Dst, p.Src, p.Len) {
			return total, fmt.Errorf("%w: dst %d src %d len %d", ErrOverlap, p.Dst, p.Src, p.Len)
		}
		if err := f.checkRange(p.Dst, int(p.Len)); err != nil {
			return total, err
		}
		if err := f.checkRange(p.Src, int(p.Len)); err != nil {
			return total, err
		}
		units += int(p.Len)
	}
	if units > f.entriesPerLogPage() {
		return total, fmt.Errorf("%w: %d units > %d", ErrBatch, units, f.entriesPerLogPage())
	}
	// Validate sources before mutating anything so the command is
	// all-or-nothing even against command errors.
	for _, p := range pairs {
		for i := uint32(0); i < p.Len; i++ {
			if f.l2p[p.Src+i] == InvalidPPN {
				return total, fmt.Errorf("%w: lpn %d", ErrUnmapped, p.Src+i)
			}
		}
	}
	f.st.Shares++
	sd, err := f.maybeScrub()
	total += sd
	if err != nil {
		return total, err
	}
	// Hold the batch's deltas back from the ordinary buffer so a GC flush
	// mid-command (forced copies may trigger one) cannot persist a torn batch.
	f.beginBatch()
	defer f.endBatch()
	for _, p := range pairs {
		for i := uint32(0); i < p.Len; i++ {
			d, err := f.shareOne(p.Dst+i, p.Src+i)
			total += d
			if err != nil {
				return total, err
			}
		}
		f.st.SharePairs++
		total += f.cfg.FirmwarePairOverhead * sim.Duration(p.Len)
	}
	// The command returns only after its deltas are durable (§4.2.2): the
	// whole batch commits inside a single delta-page program.
	d, err := f.commitBatch()
	return total + d, err
}

func rangesOverlap(a, b, n uint32) bool {
	return a < b+n && b < a+n
}

// shareOne remaps a single mapping unit dst -> current physical page of src.
func (f *FTL) shareOne(dst, src uint32) (sim.Duration, error) {
	srcPPN := f.l2p[src]
	if f.cfg.ShareTableCap > 0 && f.pendingShares >= f.cfg.ShareTableCap {
		// Reverse-mapping table exhausted: fall back to a physical copy.
		return f.forcedCopy(dst, srcPPN)
	}
	old := f.l2p[dst]
	f.dropRef(old, dst)
	f.l2p[dst] = srcPPN
	f.addRef(srcPPN)
	f.extra[srcPPN] = append(f.extra[srcPPN], dst)
	f.pendingShares++
	f.markMapDirty(dst)
	return f.appendDelta(delta{lpn: dst, oldPPN: old, newPPN: srcPPN}, true)
}

// forcedCopy implements the overflow path: read the shared source page and
// program a private copy for dst. Costs a real page write, like the
// pre-SHARE world.
func (f *FTL) forcedCopy(dst, srcPPN uint32) (sim.Duration, error) {
	f.st.ForcedCopies++
	buf := make([]byte, f.geo.PageSize)
	_, rd, err := f.chipRead(srcPPN, buf)
	if err != nil {
		return rd, err
	}
	total := rd
	d, ppn, err := f.programPage(&f.hosts[0], buf, nandDataOOB(dst))
	total += d
	if err != nil {
		return total, err
	}
	old := f.l2p[dst]
	f.dropRef(old, dst)
	f.l2p[dst] = ppn
	f.primary[ppn] = dst
	f.addRef(ppn)
	f.markMapDirty(dst)
	ld, err := f.appendDelta(delta{lpn: dst, oldPPN: old, newPPN: ppn}, true)
	return total + ld, err
}
