package ftl

import "fmt"

// Multi-stream write placement. The host (or the auto-classifier) steers
// each write into one of N host streams; every stream fills its own open
// block per die, so objects with different lifetimes — redo logs vs heap
// pages, append logs vs compaction output — stop sharing erase units and
// GC stops copying long-lived data out of the way of short-lived data.
// This is the "Enlightening Flash Storage to Stream Writes by Objects"
// sequel to the SHARE paper, grafted onto the same per-die stream
// machinery the FTL already used for its internal gc/meta traffic.

// heatStep is the auto-stream classifier's per-write heat increment. With
// 8-bit saturating counters and halving decay every capacity writes, a
// page needs a sustained rewrite rate well above uniform to climb bins.
const heatStep = 16

// StreamConfigError reports a stream configuration the geometry cannot
// support: every host stream holds one open block per die, and the per-die
// free pool must keep the GC low-water reserve plus the internal gc/meta
// streams' open blocks available even with every host stream mid-block.
type StreamConfigError struct {
	Streams int // requested host streams
	Max     int // most this geometry/over-provisioning can support
	Reason  string
}

func (e *StreamConfigError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("ftl: invalid stream config (%d streams): %s", e.Streams, e.Reason)
	}
	return fmt.Sprintf("ftl: %d host streams exceed per-die free-block headroom (max %d for this geometry)",
		e.Streams, e.Max)
}

// validateStreams rejects stream configs at mount that would otherwise
// fail mid-GC with an opaque out-of-space error. reserve is the global
// over-provisioned block count.
func (f *FTL) validateStreams(reserve int) error {
	cfg := f.cfg
	if cfg.HostStreams < 0 {
		return &StreamConfigError{Streams: cfg.HostStreams, Reason: "count must be >= 0"}
	}
	if cfg.AutoStream && cfg.HostStreams < 2 {
		return &StreamConfigError{Streams: cfg.HostStreams, Reason: "auto-stream needs at least 2 host streams"}
	}
	if cfg.HostStreams == 0 {
		return nil
	}
	// Per die: the open blocks of all host streams plus gc and meta must
	// coexist with the GC low-water reserve, or refilling a die can wedge.
	max := reserve/f.dies - 2 - f.gcLowDie
	if cfg.HostStreams > max {
		return &StreamConfigError{Streams: cfg.HostStreams, Max: max}
	}
	return nil
}

// pickStream resolves a write's placement: an explicit hint >= 0 names a
// host stream directly (clamped to the configured count); without a hint
// the auto-classifier bins the LPN by update frequency, and with the
// classifier off everything lands in stream 0.
func (f *FTL) pickStream(hint int, lpn uint32) int {
	if hint >= 0 {
		if hint >= len(f.hosts) {
			return len(f.hosts) - 1
		}
		return hint
	}
	if f.heat == nil {
		return 0
	}
	// Bin on the pre-bump heat so the first write of a page is cold, then
	// bump with saturation. Heat decays by halving once per capacity's
	// worth of unhinted writes, so bins track recent update frequency
	// rather than lifetime totals.
	h := f.heat[lpn]
	s := int(h) * len(f.hosts) / 256
	if int(h)+heatStep < 255 {
		f.heat[lpn] = h + heatStep
	} else {
		f.heat[lpn] = 255
	}
	f.heatTicks++
	if f.heatTicks >= f.capacity {
		f.heatTicks = 0
		for i, v := range f.heat {
			f.heat[i] = v / 2
		}
	}
	return s
}

// HostStreamCount reports the number of host write streams (1 in legacy
// single-stream mode).
func (f *FTL) HostStreamCount() int { return len(f.hosts) }

// AutoStreamEnabled reports whether the update-frequency classifier is
// placing unhinted writes.
func (f *FTL) AutoStreamEnabled() bool { return f.heat != nil }

// OpenBlockInfo describes one stream's append point on one die.
type OpenBlockInfo struct {
	Die        int
	Block      int // -1 when no block is open
	NextPage   int // pages already programmed in the open block
	ValidPages int // still-valid pages in the open block
}

// StreamInfo is one stream's placement state and telemetry, for the
// inspector: where it is writing on each die, and how much traffic and GC
// copyback debt it has accumulated.
type StreamInfo struct {
	Name      string // "host0".."hostN-1", "gc", "meta"
	Open      []OpenBlockInfo
	Written   int64 // host pages programmed (host streams only)
	Copybacks int64 // GC copybacks attributed to this stream's data
}

// StreamInfos snapshots every stream — host streams first, then the
// internal gc and meta streams.
func (f *FTL) StreamInfos() []StreamInfo {
	infos := make([]StreamInfo, 0, len(f.hosts)+2)
	snap := func(name string, s *stream) StreamInfo {
		in := StreamInfo{Name: name, Open: make([]OpenBlockInfo, len(s.open))}
		for die := range s.open {
			ap := s.open[die]
			ob := OpenBlockInfo{Die: die, Block: ap.block, NextPage: ap.next}
			if ap.block >= 0 {
				ob.ValidPages = f.blockValid[ap.block]
			}
			in.Open[die] = ob
		}
		return in
	}
	for i := range f.hosts {
		in := snap(fmt.Sprintf("host%d", i), &f.hosts[i])
		if i < len(f.st.StreamWrites) {
			in.Written = f.st.StreamWrites[i]
			in.Copybacks = f.st.StreamCopybacks[i]
		}
		infos = append(infos, in)
	}
	infos = append(infos, snap("gc", &f.gc), snap("meta", &f.meta))
	return infos
}
