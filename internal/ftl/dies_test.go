package ftl

import (
	"testing"

	"share/internal/nand"
)

func multiDieGeo() nand.Geometry {
	return nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32, Channels: 2, DiesPerChannel: 2}
}

// TestDieStripedAllocation checks that consecutive host writes round-robin
// the dies, so a sequential stream exercises the whole array.
func TestDieStripedAllocation(t *testing.T) {
	f, _ := testFTLGeo(t, multiDieGeo(), nil)
	if f.Dies() != 4 {
		t.Fatalf("Dies = %d, want 4", f.Dies())
	}
	for i := 0; i < 8; i++ {
		mustWrite(t, f, uint32(i), byte(i+1))
	}
	for i := 0; i < 8; i++ {
		die := f.geo.DieOfPPN(f.Mapping(uint32(i)))
		if die != i%4 {
			t.Fatalf("write %d landed on die %d, want %d (round-robin)", i, die, i%4)
		}
	}
}

// TestGCCopybacksStayOnDie is the die-locality invariant: garbage
// collection (including wear leveling and block retirement) must relocate
// pages within the victim's die. CrossDieCopybacks is computed from the
// actual source/destination addresses, so a regression in the pinning
// logic cannot hide.
func TestGCCopybacksStayOnDie(t *testing.T) {
	f, _ := testFTLGeo(t, multiDieGeo(), func(c *Config) { c.WearLevelDelta = 4 })
	// Churn a working set larger than one die's share of capacity so GC
	// fires on every die repeatedly.
	n := f.Capacity() / 2
	for round := 0; round < 12; round++ {
		for l := 0; l < n; l++ {
			mustWrite(t, f, uint32(l), byte(round+l))
		}
	}
	st := f.Stats()
	if st.GCEvents == 0 || st.Copybacks == 0 {
		t.Fatalf("workload triggered no GC copybacks (events=%d copybacks=%d)", st.GCEvents, st.Copybacks)
	}
	if st.CrossDieCopybacks != 0 {
		t.Fatalf("%d of %d copybacks crossed dies; GC must be die-local",
			st.CrossDieCopybacks, st.Copybacks+st.MetaMoves)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every die ends with free blocks in reach of its watermarks.
	for die := 0; die < f.Dies(); die++ {
		if f.FreeBlocksOnDie(die) == 0 {
			t.Fatalf("die %d starved of free blocks", die)
		}
	}
}

// TestDieLocalGCUnderFaults re-checks the locality invariant with NAND
// program/erase faults injected: the retirement path re-steers data
// through the same per-die machinery.
func TestDieLocalGCUnderFaults(t *testing.T) {
	// Transient program faults keep the retry path hot; one scheduled
	// permanent program fail and one erase fail exercise block retirement
	// without shrinking the tiny array into read-only mode.
	plan := nand.NewFaultPlan(17)
	plan.PProgramTransient = 0.01
	plan.AtProgram(200, nand.FaultProgramPermanent)
	plan.AtErase(10, nand.FaultErase)
	chip, err := nand.New(multiDieGeo(), nand.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CheckpointLogPages = 8
	cfg.SpareBlocks = 6 // the 32-block array derives a near-zero budget
	f, err := New(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := f.Capacity() / 2
	for round := 0; round < 10; round++ {
		for l := 0; l < n; l++ {
			if _, err := f.Write(uint32(l), fill(byte(round+l), f.PageSize())); err != nil {
				t.Fatalf("round %d lpn %d: %v", round, l, err)
			}
		}
	}
	st := f.Stats()
	if st.Copybacks == 0 {
		t.Fatal("no copybacks under fault churn")
	}
	if st.CrossDieCopybacks != 0 {
		t.Fatalf("%d copybacks crossed dies under faults", st.CrossDieCopybacks)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiDieRecoverPreservesDieState checks that recovery rebuilds the
// per-die free lists and append points: post-recovery writes still stripe
// and GC still works per die.
func TestMultiDieRecoverPreservesDieState(t *testing.T) {
	f, _ := testFTLGeo(t, multiDieGeo(), nil)
	n := f.Capacity() / 2
	for round := 0; round < 4; round++ {
		for l := 0; l < n; l++ {
			mustWrite(t, f, uint32(l), byte(round+l))
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for die := 0; die < f.Dies(); die++ {
		total += f.FreeBlocksOnDie(die)
	}
	if total != f.FreeBlocks() {
		t.Fatalf("per-die free blocks sum %d != total %d", total, f.FreeBlocks())
	}
	// Keep writing past another GC cycle.
	for round := 0; round < 6; round++ {
		for l := 0; l < n; l++ {
			mustWrite(t, f, uint32(l), byte(round+l+7))
		}
	}
	if st := f.Stats(); st.CrossDieCopybacks != 0 {
		t.Fatalf("cross-die copybacks after recovery: %d", st.CrossDieCopybacks)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
