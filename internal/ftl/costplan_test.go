package ftl

import "testing"

// TestTakeCostPlanRecycles pins the buffer-exchange contract: the device
// drains a command's plan, replays it, and hands the emptied slice back
// on the next TakeCostPlan call, so steady-state recording reuses one
// backing array instead of growing a fresh one per command.
func TestTakeCostPlanRecycles(t *testing.T) {
	f, _ := testFTL(t, nil)
	f.EnableCostPlan()
	mustWrite(t, f, 1, 0xaa)
	plan := f.TakeCostPlan(nil)
	if len(plan) == 0 {
		t.Fatal("write recorded no cost plan")
	}
	backing := &plan[:1][0]
	mustWrite(t, f, 2, 0xbb)
	next := f.TakeCostPlan(plan)
	if len(next) == 0 {
		t.Fatal("second write recorded no cost plan")
	}
	mustWrite(t, f, 3, 0xcc)
	again := f.TakeCostPlan(next)
	if len(again) == 0 || &again[:1][0] != backing {
		t.Fatal("recycled buffer was not reused for the next plan")
	}
}

// TestCostPlanSteadyStateZeroAlloc: with the exchange in steady state —
// every host write's plan fits the recycled buffer's capacity — the
// record/drain cycle must not allocate. This is the FTL-layer half of
// the ssd package's hot-path guards; it catches a regression in the
// plan buffer itself even if the device layer compensates.
func TestCostPlanSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector's shadow allocations break AllocsPerRun")
	}
	f, _ := testFTL(t, nil)
	f.EnableCostPlan()
	page := fill(0x5a, f.PageSize())
	lpn := uint32(0)
	write := func() {
		if _, err := f.Write(lpn%64, page); err != nil {
			t.Fatal(err)
		}
		lpn++
	}
	plan := f.TakeCostPlan(nil)
	for i := 0; i < 500; i++ { // warm free lists and grow the plan buffer to its GC-episode high-water mark
		write()
		plan = f.TakeCostPlan(plan)
	}
	avg := testing.AllocsPerRun(2000, func() {
		write()
		plan = f.TakeCostPlan(plan)
	})
	if avg > 0.05 {
		t.Fatalf("steady-state cost-plan cycle allocates %.3f objects/op, want ~0", avg)
	}
}
