package ftl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"share/internal/nand"
)

// Crash-point fuzzing: run a mixed workload, cut power at EVERY successful
// program/erase boundary (the chip's power-cut injector), recover, and check
// the recovered state against a prefix oracle.
//
// The oracle: number the workload's events 0..N-1 and let S(j) be the
// logical state after the first j events. Deltas reach flash in event order
// and each event's mapping updates are confined to one delta-log page
// (single-delta writes/trims trivially; SHARE and atomic-write batches by
// the commit-record design), so the recovered state must equal S(j) for
// some j between the durable watermark — the last completed event whose
// return guarantees durability (Flush, Checkpoint, Share, WriteAtomic) —
// and the event in flight when power died. Anything else is either lost
// acknowledged data or a torn batch.

const (
	evWrite = iota
	evTrim
	evShare
	evAtomic
	evFlush
	evCheckpoint
)

type cpEvent struct {
	kind  int
	lpn   uint32   // evWrite, evTrim
	id    uint16   // evWrite payload id
	pairs []Pair   // evShare
	pages []uint32 // evAtomic
	ids   []uint16 // evAtomic payload ids
}

// barrier reports whether completing the event makes every prior effect
// durable.
func (e cpEvent) barrier() bool {
	switch e.kind {
	case evFlush, evCheckpoint, evShare, evAtomic:
		return true
	}
	return false
}

// cpPage builds a page payload carrying a 16-bit id.
func cpPage(size int, id uint16) []byte {
	buf := make([]byte, size)
	binary.LittleEndian.PutUint16(buf, id)
	for i := 2; i < size; i++ {
		buf[i] = byte(id)
	}
	return buf
}

func cpApply(f *FTL, ev cpEvent) error {
	var err error
	switch ev.kind {
	case evWrite:
		_, err = f.Write(ev.lpn, cpPage(f.PageSize(), ev.id))
	case evTrim:
		_, err = f.Trim(ev.lpn, 1)
	case evShare:
		_, err = f.Share(ev.pairs)
	case evAtomic:
		pages := make([]AtomicPage, len(ev.pages))
		for i, lpn := range ev.pages {
			pages[i] = AtomicPage{LPN: lpn, Data: cpPage(f.PageSize(), ev.ids[i])}
		}
		_, err = f.WriteAtomic(pages)
	case evFlush:
		_, err = f.Flush()
	case evCheckpoint:
		_, err = f.Checkpoint()
	}
	return err
}

// cpModel applies ev to the logical ground-truth state.
func cpModel(m []uint16, ev cpEvent) {
	switch ev.kind {
	case evWrite:
		m[ev.lpn] = ev.id
	case evTrim:
		m[ev.lpn] = 0
	case evShare:
		for _, p := range ev.pairs {
			for i := uint32(0); i < p.Len; i++ {
				m[p.Dst+i] = m[p.Src+i]
			}
		}
	case evAtomic:
		for i, lpn := range ev.pages {
			m[lpn] = ev.ids[i]
		}
	}
}

// cpWorkload builds the deterministic mixed workload: host writes and
// overwrites, SHARE batches over data that is then overwritten, atomic
// multi-page writes spanning block boundaries, trims, flushes, a checkpoint,
// and enough churn that garbage collection relocates data and metadata.
func cpWorkload() []cpEvent {
	var evs []cpEvent
	id := uint16(1)
	w := func(lpn int) {
		evs = append(evs, cpEvent{kind: evWrite, lpn: uint32(lpn), id: id})
		id++
	}
	const hot = 48
	for l := 0; l < hot; l++ {
		w(l)
	}
	evs = append(evs, cpEvent{kind: evFlush})
	// Snapshot-style SHARE; the sources are overwritten right after, so the
	// shared destinations pin the old physical pages (refcount > 1).
	evs = append(evs, cpEvent{kind: evShare, pairs: []Pair{{Dst: 60, Src: 0, Len: 8}}})
	for l := 0; l < 16; l++ {
		w(l)
	}
	at := cpEvent{kind: evAtomic}
	for i := 0; i < 6; i++ {
		at.pages = append(at.pages, uint32(80+i))
		at.ids = append(at.ids, id)
		id++
	}
	evs = append(evs, at)
	evs = append(evs, cpEvent{kind: evTrim, lpn: 40})
	evs = append(evs, cpEvent{kind: evTrim, lpn: 41})
	evs = append(evs, cpEvent{kind: evCheckpoint})
	for round := 0; round < 3; round++ { // churn: forces GC
		for l := 0; l < hot; l++ {
			w(l)
		}
	}
	evs = append(evs, cpEvent{
		kind:  evShare,
		pairs: []Pair{{Dst: 100, Src: 16, Len: 4}, {Dst: 110, Src: 30, Len: 2}},
	})
	at2 := cpEvent{kind: evAtomic}
	for i := 0; i < 4; i++ {
		at2.pages = append(at2.pages, uint32(90+i))
		at2.ids = append(at2.ids, id)
		id++
	}
	evs = append(evs, at2)
	evs = append(evs, cpEvent{kind: evFlush})
	return evs
}

// cpStates returns S(0..N): S[j] is the logical state after j events.
func cpStates(evs []cpEvent, capacity int) [][]uint16 {
	states := make([][]uint16, len(evs)+1)
	states[0] = make([]uint16, capacity)
	for j, ev := range evs {
		next := append([]uint16(nil), states[j]...)
		cpModel(next, ev)
		states[j+1] = next
	}
	return states
}

// cpReadState reads back every logical page's id after recovery.
func cpReadState(t *testing.T, f *FTL) []uint16 {
	t.Helper()
	got := make([]uint16, f.Capacity())
	buf := make([]byte, f.PageSize())
	for l := range got {
		if _, err := f.Read(uint32(l), buf); err != nil {
			t.Fatalf("post-recovery read lpn %d: %v", l, err)
		}
		got[l] = binary.LittleEndian.Uint16(buf)
	}
	return got
}

func cpEqual(a, b []uint16) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cpDiff(got, want []uint16) string {
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("first diff at lpn %d: got id %d want %d", i, got[i], want[i])
		}
	}
	return "equal"
}

func TestCrashAtEveryMutationBoundary(t *testing.T) {
	// The same exhaustive fuzz runs on the classic single-die geometry and
	// on a multi-die one: die-striped allocation, die-local GC and per-die
	// append-point recovery must preserve the prefix-oracle guarantee.
	t.Run("single-die", func(t *testing.T) {
		runCrashFuzz(t, nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32})
	})
	t.Run("multi-die-2x2", func(t *testing.T) {
		runCrashFuzz(t, nand.Geometry{PageSize: 512, PagesPerBlock: 8, Blocks: 32, Channels: 2, DiesPerChannel: 2})
	})
}

func runCrashFuzz(t *testing.T, geo nand.Geometry) {
	evs := cpWorkload()

	// Dry run: how many program/erase boundaries does the workload cross?
	dry, dryChip := testFTLGeo(t, geo, nil)
	states := cpStates(evs, dry.Capacity())
	base := dryChip.MutatingOps()
	for i, ev := range evs {
		if err := cpApply(dry, ev); err != nil {
			t.Fatalf("dry run event %d: %v", i, err)
		}
	}
	boundaries := int(dryChip.MutatingOps() - base)
	if boundaries < len(evs) {
		t.Fatalf("workload crossed only %d boundaries for %d events", boundaries, len(evs))
	}

	for cut := 0; cut <= boundaries; cut++ {
		f, chip := testFTLGeo(t, geo, nil)
		chip.PowerCutAfter(int64(cut))
		watermark, crashed := 0, len(evs)
		for i, ev := range evs {
			if err := cpApply(f, ev); err != nil {
				if !errors.Is(err, nand.ErrPowerCut) {
					t.Fatalf("cut %d: event %d failed with %v", cut, i, err)
				}
				crashed = i
				break
			}
			if ev.barrier() {
				watermark = i + 1
			}
		}
		chip.DisablePowerCut()
		f.Crash()
		if _, err := f.Recover(); err != nil {
			t.Fatalf("cut %d (event %d): recover: %v", cut, crashed, err)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("cut %d (event %d): %v", cut, crashed, err)
		}
		got := cpReadState(t, f)
		hi := crashed + 1
		if hi > len(evs) {
			hi = len(evs)
		}
		matched := -1
		for j := watermark; j <= hi; j++ {
			if cpEqual(got, states[j]) {
				matched = j
				break
			}
		}
		if matched < 0 {
			t.Fatalf("cut %d: recovered state matches no S(%d..%d) — vs S(%d): %s; vs S(%d): %s",
				cut, watermark, hi, watermark, cpDiff(got, states[watermark]), hi, cpDiff(got, states[hi]))
		}
	}
}

// TestCrashedDeviceResumesService spot-checks that a device recovered from
// an arbitrary mid-GC cut point keeps serving writes afterward.
func TestCrashedDeviceResumesService(t *testing.T) {
	evs := cpWorkload()
	dry, dryChip := testFTL(t, nil)
	for _, ev := range evs {
		if err := cpApply(dry, ev); err != nil {
			t.Fatal(err)
		}
	}
	boundaries := int(dryChip.MutatingOps())
	for _, cut := range []int{boundaries / 3, boundaries / 2, 2 * boundaries / 3} {
		f, chip := testFTL(t, nil)
		chip.PowerCutAfter(int64(cut))
		for _, ev := range evs {
			if err := cpApply(f, ev); err != nil {
				break
			}
		}
		chip.DisablePowerCut()
		f.Crash()
		if _, err := f.Recover(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for l := 0; l < 32; l++ {
			mustWrite(t, f, uint32(l), byte(l+3))
		}
		for l := 0; l < 32; l++ {
			if got := mustRead(t, f, uint32(l)); got[0] != byte(l+3) {
				t.Fatalf("cut %d: lpn %d = %x after resumed writes", cut, l, got[0])
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
	}
}

// shareCrashDevice preloads sources (0..7) and destinations (20..27) with
// distinct payloads and flushes, so a SHARE of the whole range has a clean
// old/new distinction per destination page.
func shareCrashDevice(t *testing.T, tableCap int) (*FTL, *nand.Chip) {
	t.Helper()
	f, chip := testFTL(t, func(c *Config) { c.ShareTableCap = tableCap })
	for i := uint32(0); i < 8; i++ {
		mustWrite(t, f, i, byte(0x10+i))    // sources
		mustWrite(t, f, 20+i, byte(0x90+i)) // destinations (old data)
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	return f, chip
}

// TestShareCrashAtEveryProgramBoundary cuts power at every NAND boundary
// inside a SHARE command — both the pure-remap fast path and the overflow
// path where forced physical copies program data pages mid-command — and
// requires the batch to be all-or-nothing, and all-visible once the command
// returned.
func TestShareCrashAtEveryProgramBoundary(t *testing.T) {
	pairs := []Pair{{Dst: 20, Src: 0, Len: 8}}
	for _, tc := range []struct {
		name     string
		tableCap int
	}{
		{"remap", 0},
		{"forced-copies", 4}, // table cap 4: last 4 units degrade to copies
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, chip := shareCrashDevice(t, tc.tableCap)
			base := chip.MutatingOps()
			if _, err := f.Share(pairs); err != nil {
				t.Fatal(err)
			}
			n := int(chip.MutatingOps() - base)
			if tc.tableCap > 0 && f.Stats().ForcedCopies == 0 {
				t.Fatal("overflow variant triggered no forced copies")
			}
			for cut := 0; cut <= n; cut++ {
				f, chip := shareCrashDevice(t, tc.tableCap)
				chip.PowerCutAfter(int64(cut))
				_, serr := f.Share(pairs)
				if serr != nil && !errors.Is(serr, nand.ErrPowerCut) {
					t.Fatalf("cut %d: share failed with %v", cut, serr)
				}
				chip.DisablePowerCut()
				f.Crash()
				if _, err := f.Recover(); err != nil {
					t.Fatalf("cut %d: recover: %v", cut, err)
				}
				if err := f.CheckInvariants(); err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				applied := 0
				for i := uint32(0); i < 8; i++ {
					got := mustRead(t, f, 20+i)
					switch got[0] {
					case byte(0x10 + i):
						applied++
					case byte(0x90 + i):
					default:
						t.Fatalf("cut %d: dst %d holds neither old nor new data (%x)", cut, 20+i, got[0])
					}
					// Sources are never disturbed by a SHARE.
					if src := mustRead(t, f, i); src[0] != byte(0x10+i) {
						t.Fatalf("cut %d: src %d corrupted (%x)", cut, i, src[0])
					}
				}
				if applied != 0 && applied != 8 {
					t.Fatalf("cut %d: torn SHARE batch: %d of 8 pairs visible", cut, applied)
				}
				if serr == nil && applied != 8 {
					t.Fatalf("cut %d: completed SHARE lost after crash (%d of 8 visible)", cut, applied)
				}
			}
		})
	}
}

// TestWriteAtomicCrashAtEveryProgramBoundary does the same for the atomic
// multi-page write baseline: the batch spans block boundaries, and at every
// cut the recovered destinations are all-old or all-new — all-new whenever
// the command had returned.
func TestWriteAtomicCrashAtEveryProgramBoundary(t *testing.T) {
	const batch = 12 // > pages per block (8): spans at least two blocks
	setup := func(t *testing.T) (*FTL, *nand.Chip, []AtomicPage) {
		t.Helper()
		f, chip := testFTL(t, nil)
		for i := uint32(0); i < batch; i++ {
			mustWrite(t, f, 30+i, byte(0x40+i)) // old data
		}
		if _, err := f.Flush(); err != nil {
			t.Fatal(err)
		}
		pages := make([]AtomicPage, batch)
		for i := range pages {
			pages[i] = AtomicPage{LPN: 30 + uint32(i), Data: fill(byte(0xC0+i), f.PageSize())}
		}
		return f, chip, pages
	}
	f, chip, pages := setup(t)
	base := chip.MutatingOps()
	if _, err := f.WriteAtomic(pages); err != nil {
		t.Fatal(err)
	}
	n := int(chip.MutatingOps() - base)
	for cut := 0; cut <= n; cut++ {
		f, chip, pages := setup(t)
		chip.PowerCutAfter(int64(cut))
		_, werr := f.WriteAtomic(pages)
		if werr != nil && !errors.Is(werr, nand.ErrPowerCut) {
			t.Fatalf("cut %d: atomic write failed with %v", cut, werr)
		}
		chip.DisablePowerCut()
		f.Crash()
		if _, err := f.Recover(); err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		applied := 0
		for i := uint32(0); i < batch; i++ {
			got := mustRead(t, f, 30+i)
			switch got[0] {
			case byte(0xC0 + i):
				applied++
			case byte(0x40 + i):
			default:
				t.Fatalf("cut %d: lpn %d holds neither old nor new data (%x)", cut, 30+i, got[0])
			}
		}
		if applied != 0 && applied != batch {
			t.Fatalf("cut %d: torn atomic write: %d of %d pages visible", cut, applied, batch)
		}
		if werr == nil && applied != batch {
			t.Fatalf("cut %d: completed atomic write lost (%d of %d visible)", cut, applied, batch)
		}
	}
}
