//go:build !race

package ftl

// raceEnabled reports whether the race detector is instrumenting this
// build; the allocation guard skips under it because its shadow-memory
// bookkeeping allocates on paths the production build does not.
const raceEnabled = false
