// Package ftl implements a page-mapping flash translation layer with the
// paper's SHARE extension: an explicit host command that atomically remaps
// one logical page onto the physical page of another, so two logical pages
// share a single physical page and the host's second (redundant) write is
// avoided entirely.
//
// The design follows §4.2 of the paper:
//
//   - forward L2P page mapping kept entirely in (simulated) DRAM;
//   - a per-page reverse mapping: the primary P2L lives in each page's OOB
//     spare area, written at program time; additional referrers created by
//     SHARE live in a bounded reverse-mapping ("share") table;
//   - mapping durability via a base snapshot of mapping-table pages plus a
//     delta log of (LPN, old PPN, new PPN) records; a delta page is the
//     atomicity unit, so a batched SHARE of up to one page of deltas is
//     all-or-nothing across power failure;
//   - greedy garbage collection with copyback accounting; a physical page
//     is valid iff some logical page's L2P entry points at it.
package ftl

import (
	"errors"
	"fmt"

	"share/internal/nand"
	"share/internal/sim"
)

// InvalidPPN marks unmapped L2P entries.
const InvalidPPN = ^uint32(0)

// InvalidLPN re-exports the NAND sentinel for convenience.
const InvalidLPN = nand.InvalidLPN

var (
	// ErrFull is returned when the device has no reclaimable space left.
	ErrFull = errors.New("ftl: device full")
	// ErrBounds is returned for logical addresses outside the exported capacity.
	ErrBounds = errors.New("ftl: logical address out of range")
	// ErrUnmapped is returned when a SHARE source has no physical page.
	ErrUnmapped = errors.New("ftl: share source unmapped")
	// ErrBatch is returned when a SHARE batch exceeds the atomic limit
	// (one mapping-delta page, as in the paper).
	ErrBatch = errors.New("ftl: share batch exceeds one delta page")
	// ErrOverlap is returned when a ranged SHARE's source and destination
	// ranges overlap, which the command definition forbids.
	ErrOverlap = errors.New("ftl: share ranges overlap")
)

// Pair is one SHARE remapping: after the command, Dst maps to the physical
// page(s) currently mapped by Src. Len is in mapping units (pages) and must
// be >= 1; for Len > 1 the two ranges must not overlap.
type Pair struct {
	Dst, Src uint32
	Len      uint32
}

// Config tunes the FTL.
type Config struct {
	// OverProvision is the fraction of raw blocks hidden from the host
	// (GC headroom). Typical consumer SSDs use ~0.07.
	OverProvision float64
	// GCLowWater triggers garbage collection when the free-block count
	// drops below it; GCHighWater is the refill target.
	GCLowWater, GCHighWater int
	// ShareTableCap bounds the number of un-checkpointed SHARE deltas the
	// device will hold in its reverse-mapping table (250 or 500 on the
	// OpenSSD prototype). A SHARE pair arriving with the table full is
	// resolved by physically copying the page instead (a "forced copy").
	// 0 means unlimited.
	ShareTableCap int
	// CheckpointLogPages is the number of delta-log pages after which the
	// FTL checkpoints dirty mapping pages and truncates the log.
	CheckpointLogPages int
	// PowerCapacitor, when true, models a capacitor-backed device: delta
	// records are durable once buffered in device RAM, so SHARE and FLUSH
	// do not force a delta-page program.
	PowerCapacitor bool
	// FirmwarePairOverhead is the per-pair CPU cost of a SHARE command in
	// the (slow, 87.5 MHz ARM) controller.
	FirmwarePairOverhead sim.Duration
	// CommandOverhead is the fixed per-command firmware/interface cost.
	CommandOverhead sim.Duration
	// WearLevelDelta enables static wear leveling: when the erase-count
	// spread between the most- and least-worn blocks exceeds it, garbage
	// collection migrates the coldest block so its barely-worn flash
	// rejoins the free pool. 0 disables wear leveling.
	WearLevelDelta int64
	// SpareBlocks is the retirement budget: how many blocks (factory-bad
	// plus failed in service) the device absorbs before degrading to
	// read-only. 0 derives it from the over-provisioned area, keeping the
	// GC working set out of reach of retirement.
	SpareBlocks int
	// PatrolThresholdPct tunes the background patrol scrubber (see
	// patrol.go): a block whose predicted worst-page risk reaches this
	// percentage of the media model's fast-ECC limit is refreshed on the
	// next patrol step. 0 selects the default of 80. Meaningless without a
	// media model on the chip.
	PatrolThresholdPct int
	// HostStreams is the number of host-visible write streams, each with
	// its own per-die open blocks, so the host can segregate objects with
	// different lifetimes into different NAND blocks (multi-stream write
	// placement). 0 selects the legacy single host stream and omits the
	// per-stream telemetry, keeping existing reports byte-identical. The
	// count is validated against the per-die free-block headroom at mount
	// (see StreamConfigError).
	HostStreams int
	// AutoStream classifies writes that carry no stream hint into streams
	// by per-LPN update frequency: frequently rewritten (hot) pages climb
	// to higher stream indices, cold pages stay in stream 0. Requires
	// HostStreams >= 2. The heat table is volatile — a crash resets the
	// classifier, which then re-learns from post-recovery traffic.
	AutoStream bool
}

// DefaultConfig returns the configuration used by the experiments unless
// a sweep overrides a field.
func DefaultConfig() Config {
	return Config{
		OverProvision:        0.10,
		GCLowWater:           4,
		GCHighWater:          6,
		ShareTableCap:        0,
		CheckpointLogPages:   256,
		PowerCapacitor:       false,
		FirmwarePairOverhead: 3 * sim.Microsecond,
		CommandOverhead:      20 * sim.Microsecond,
	}
}

// appendPoint is one open block being filled page by page.
type appendPoint struct {
	block int // -1 when no block is open
	next  int // next page index within block
}

// stream keeps one append point per die, so each host stream, GC copybacks
// and mapping metadata stripe across the whole array: consecutive
// allocations round-robin the dies, and a die that is busy cleaning never
// blocks the stream's progress on the others. With one die this collapses
// to the classic single open block. id is stamped into the OOB of every
// page the stream programs, so recovery can reassign partial blocks to
// their exact owner.
type stream struct {
	open []appendPoint
	rr   int   // next die in the round-robin rotation
	id   uint8 // host stream index, or nand.StreamGC / nand.StreamMeta
}

func newStream(dies int, id uint8) stream {
	open := make([]appendPoint, dies)
	for i := range open {
		open[i].block = -1
	}
	return stream{open: open, id: id}
}

// FTL is the translation layer over one NAND chip. It is not safe for
// concurrent use; the device layer serializes commands, as the single
// firmware thread on the prototype hardware does.
type FTL struct {
	chip *nand.Chip
	cfg  Config
	geo  nand.Geometry

	capacity int // logical pages exported to the host
	dies     int // geo.NumDies(), cached

	// Per-die GC watermarks, derived from the global Config values so a
	// single-die device keeps its historical behavior exactly.
	gcLowDie, gcHighDie int

	// Cost-plan recording (see costplan.go). Off unless the device layer
	// enables it for per-die scheduling.
	planOn   bool
	plan     []OpCost
	transfer sim.Duration // chip bus-transfer time, cached for notePPNOp

	// Scratch free lists for the hot paths. pageBufs holds page-sized
	// buffers recycled by GC relocation, scrubbing and metadata programs;
	// deltaBufs holds delta slices recycled by flushDeltaPage. Both are
	// free lists rather than single fields because the users nest: a
	// metadata program can trigger GC, whose relocation flushes deltas,
	// while an outer flush still holds its own buffers.
	pageBufs  [][]byte
	deltaBufs [][]delta
	lpnBufs   [][]uint32

	// Volatile (DRAM) state, rebuilt by Recover after a crash.
	l2p     []uint32            // logical -> physical
	primary []uint32            // physical -> logical recorded at program time (OOB mirror)
	refs    []uint16            // physical -> number of logical referrers
	extra   map[uint32][]uint32 // physical -> additional referrers from SHARE

	blockValid  []int // per block: physical pages with refs > 0 (or valid metadata)
	blockFull   []bool
	retired     []bool   // bad/worn-out blocks permanently out of service
	retiredN    int      // count of retired blocks (spare-budget usage)
	spareBudget int      // retirements tolerated before read-only
	readOnly    bool     // degraded mode: mutating commands are refused
	freeByDie   [][]int  // per-die free-block stacks (LIFO)
	hosts       []stream // host write streams (index = stream id; legacy mode has one)
	gc, meta    stream   // internal relocation and mapping-metadata streams

	// Multi-stream placement state (see streams.go). pageStream remembers
	// which host stream each data page's contents originated from, so GC
	// copybacks are attributed to the stream whose data caused them even
	// after relocation; heat is the auto-stream update-frequency table.
	pageStream []uint8
	heat       []uint8 // per-LPN saturating heat counter; nil unless AutoStream
	heatTicks  int     // unhinted writes since the last heat decay

	// Media scrubbing: blocks whose data needed a read retry to come back,
	// queued for relocation at the next safe point (see fault.go).
	scrubQueue []int
	scrubSet   map[int]bool
	// Pending sectors: physical pages whose data was lost to an
	// uncorrectable read during relocation. The replacement copy holds only
	// the loss marker; reads of it answer uncorrectable without burning the
	// ECC ladder. RAM-only — a power cycle forgets the marks, like a real
	// drive's pending-sector list collapsing after the sectors are remapped.
	poisoned map[uint32]bool
	// metaHeal requests a forced checkpoint: a live metadata page was found
	// unreadable during relocation and must be rewritten from RAM before its
	// block can be reclaimed (see healMeta).
	metaHeal bool

	// Mapping durability.
	mapDir        []uint32        // map-page index -> ppn of latest snapshot (InvalidPPN if none)
	mapDirty      []bool          // map pages touched since their last snapshot
	mapSeq        []uint64        // seq of the latest snapshot per map page
	deltaBuf      []delta         // RAM-buffered, not yet durable
	logPPNs       []uint32        // durable delta-log pages since last checkpoint, in order
	logSeqs       []uint64        // payload seq per logPPNs entry (stable across GC relocation)
	pendingShares int             // un-checkpointed SHARE deltas (reverse-table occupancy)
	metaLive      map[uint32]bool // live metadata pages (latest map snapshots + needed log pages)
	logSeq        uint64          // payload-embedded ordering for log/map pages
	inGC          bool            // re-entrancy guard: GC's own writes must not trigger GC

	// Uncommitted batch (SHARE / atomic write) deltas. They are kept out of
	// deltaBuf so that GC flushing buffered deltas mid-batch cannot make a
	// torn batch durable; commitBatch moves them into one delta-log page.
	inBatch  bool
	batchBuf []delta
	batchIdx map[uint32]int // lpn -> index in batchBuf

	st   Stats
	sink EventSink // optional trace hook (see event.go)
}

type delta struct {
	lpn, oldPPN, newPPN uint32
}

// New formats a fresh FTL over chip.
func New(chip *nand.Chip, cfg Config) (*FTL, error) {
	geo := chip.Geometry()
	if cfg.GCLowWater < 2 {
		cfg.GCLowWater = 2
	}
	if cfg.GCHighWater <= cfg.GCLowWater {
		cfg.GCHighWater = cfg.GCLowWater + 2
	}
	if cfg.CheckpointLogPages <= 0 {
		cfg.CheckpointLogPages = 256
	}
	reserve := int(float64(geo.Blocks)*cfg.OverProvision + 0.5)
	if reserve < cfg.GCHighWater+2 {
		reserve = cfg.GCHighWater + 2
	}
	if reserve >= geo.Blocks {
		return nil, fmt.Errorf("ftl: geometry too small for over-provisioning (%d blocks)", geo.Blocks)
	}
	capacity := (geo.Blocks - reserve) * geo.PagesPerBlock
	f := &FTL{
		chip:     chip,
		cfg:      cfg,
		geo:      geo,
		capacity: capacity,
		dies:     geo.NumDies(),
	}
	// The configured watermarks describe the whole free pool; each die
	// polices its proportional share so GC on one die cannot be starved by
	// abundance on another. The low mark keeps the same >= 2 floor as the
	// global clamp above — die-local copyback needs a free destination
	// block on the victim's own die — and with one die the global values
	// apply unchanged.
	f.gcLowDie = (cfg.GCLowWater + f.dies - 1) / f.dies
	if f.gcLowDie < 2 {
		f.gcLowDie = 2
	}
	f.gcHighDie = (cfg.GCHighWater + f.dies - 1) / f.dies
	if f.gcHighDie <= f.gcLowDie {
		f.gcHighDie = f.gcLowDie + 1
	}
	if err := f.validateStreams(reserve); err != nil {
		return nil, err
	}
	if cfg.HostStreams > 0 {
		// Multi-stream mode: per-stream telemetry is reported (and omitted
		// entirely — nil slices — in legacy mode, keeping those reports
		// byte-identical).
		f.st.StreamWrites = make([]int64, cfg.HostStreams)
		f.st.StreamCopybacks = make([]int64, cfg.HostStreams)
	}
	f.spareBudget = cfg.SpareBlocks
	if f.spareBudget <= 0 {
		// By default retirement may consume the over-provisioned headroom
		// down to (but not into) the GC working set.
		f.spareBudget = reserve - (cfg.GCHighWater + 2)
		if f.spareBudget < 0 {
			f.spareBudget = 0
		}
	}
	f.initVolatile()
	// All good blocks start free; factory-bad blocks are retired on the
	// spot and charged against the spare budget.
	for b := geo.Blocks - 1; b >= 0; b-- {
		if chip.IsBad(b) {
			f.retireBlock(b)
			f.blockFull[b] = true
			continue
		}
		die := geo.DieOfBlock(b)
		f.freeByDie[die] = append(f.freeByDie[die], b)
	}
	if f.readOnly {
		return nil, fmt.Errorf("ftl: %d factory-bad blocks exceed the spare budget (%d)", f.retiredN, f.spareBudget)
	}
	nMap := (capacity + f.entriesPerMapPage() - 1) / f.entriesPerMapPage()
	f.mapDir = make([]uint32, nMap)
	f.mapDirty = make([]bool, nMap)
	f.mapSeq = make([]uint64, nMap)
	for i := range f.mapDir {
		f.mapDir[i] = InvalidPPN
	}
	return f, nil
}

func (f *FTL) initVolatile() {
	total := f.geo.TotalPages()
	f.l2p = make([]uint32, f.capacity)
	for i := range f.l2p {
		f.l2p[i] = InvalidPPN
	}
	f.primary = make([]uint32, total)
	for i := range f.primary {
		f.primary[i] = InvalidLPN
	}
	f.refs = make([]uint16, total)
	f.extra = make(map[uint32][]uint32)
	f.blockValid = make([]int, f.geo.Blocks)
	f.blockFull = make([]bool, f.geo.Blocks)
	f.retired = make([]bool, f.geo.Blocks)
	f.retiredN = 0
	f.readOnly = false
	f.freeByDie = make([][]int, f.dies)
	n := f.cfg.HostStreams
	if n < 1 {
		n = 1
	}
	f.hosts = make([]stream, n)
	for i := range f.hosts {
		f.hosts[i] = newStream(f.dies, uint8(i))
	}
	f.gc = newStream(f.dies, nand.StreamGC)
	f.meta = newStream(f.dies, nand.StreamMeta)
	f.pageStream = make([]uint8, total)
	if f.cfg.AutoStream && n > 1 {
		f.heat = make([]uint8, f.capacity)
	} else {
		f.heat = nil
	}
	f.heatTicks = 0
	f.scrubQueue = nil
	f.scrubSet = make(map[int]bool)
	f.poisoned = make(map[uint32]bool)
	f.metaHeal = false
	f.deltaBuf = nil
	f.inBatch = false
	f.batchBuf = nil
	f.batchIdx = nil
	f.logPPNs = nil
	f.logSeqs = nil
	f.pendingShares = 0
	f.metaLive = make(map[uint32]bool)
	f.inGC = false
}

// getPageBuf pops a page-sized scratch buffer off the free list (or
// allocates the first time). Contents are undefined: callers either fully
// overwrite it (relocation reads) or must zero it first (metadata pages,
// whose unused tail must read back as zeros).
func (f *FTL) getPageBuf() []byte {
	if n := len(f.pageBufs); n > 0 {
		b := f.pageBufs[n-1]
		f.pageBufs[n-1] = nil
		f.pageBufs = f.pageBufs[:n-1]
		return b
	}
	return make([]byte, f.geo.PageSize)
}

// putPageBuf returns a scratch buffer to the free list.
func (f *FTL) putPageBuf(b []byte) { f.pageBufs = append(f.pageBufs, b) }

// getDeltaBuf pops an empty delta slice (capacity one log page) off the
// free list; putDeltaBuf returns it. flushDeltaPage snapshots each page's
// entries into one of these so the shared deltaBuf can be compacted in
// place without aliasing against re-entrant flushes.
func (f *FTL) getDeltaBuf() []delta {
	if n := len(f.deltaBufs); n > 0 {
		b := f.deltaBufs[n-1]
		f.deltaBufs[n-1] = nil
		f.deltaBufs = f.deltaBufs[:n-1]
		return b[:0]
	}
	return make([]delta, 0, f.entriesPerLogPage())
}

func (f *FTL) putDeltaBuf(b []delta) { f.deltaBufs = append(f.deltaBufs, b) }

// getLPNBuf / putLPNBuf recycle the small referrer slices the GC scan
// builds per relocated page.
func (f *FTL) getLPNBuf() []uint32 {
	if n := len(f.lpnBufs); n > 0 {
		b := f.lpnBufs[n-1]
		f.lpnBufs[n-1] = nil
		f.lpnBufs = f.lpnBufs[:n-1]
		return b[:0]
	}
	return make([]uint32, 0, 8)
}

func (f *FTL) putLPNBuf(b []uint32) { f.lpnBufs = append(f.lpnBufs, b) }

// Capacity returns the number of logical pages exported to the host.
func (f *FTL) Capacity() int { return f.capacity }

// PageSize returns the mapping unit in bytes.
func (f *FTL) PageSize() int { return f.geo.PageSize }

// MaxShareBatch returns the number of pairs a single SHARE command may
// carry while remaining atomic (one delta page).
func (f *FTL) MaxShareBatch() int { return f.entriesPerLogPage() }

// Mapping returns the current physical page of lpn (InvalidPPN if
// unmapped). Exposed for tests and the inspector tool.
func (f *FTL) Mapping(lpn uint32) uint32 {
	if int(lpn) >= f.capacity {
		return InvalidPPN
	}
	return f.l2p[lpn]
}

func (f *FTL) checkRange(lpn uint32, n int) error {
	if int(lpn) >= f.capacity || int(lpn)+n > f.capacity {
		return fmt.Errorf("%w: lpn %d (+%d) capacity %d", ErrBounds, lpn, n, f.capacity)
	}
	return nil
}

// Read copies the page mapped at lpn into dst. Reading an unmapped page
// yields zeros, as SSDs return for trimmed ranges.
func (f *FTL) Read(lpn uint32, dst []byte) (sim.Duration, error) {
	if err := f.checkRange(lpn, 1); err != nil {
		return 0, err
	}
	f.st.HostReads++
	ppn := f.l2p[lpn]
	if ppn == InvalidPPN {
		for i := range dst {
			dst[i] = 0
		}
		return f.cfg.CommandOverhead, nil
	}
	_, d, err := f.chipRead(ppn, dst)
	return f.cfg.CommandOverhead + d, err
}

// Write programs data (one page) for lpn at a new physical location and
// updates the mapping, logging the change. It may trigger garbage
// collection; the returned duration includes any GC stall. The write
// carries no stream hint: the auto-stream classifier places it if enabled,
// otherwise it goes to stream 0 (the only stream in legacy mode).
func (f *FTL) Write(lpn uint32, data []byte) (sim.Duration, error) {
	return f.WriteStream(lpn, data, -1)
}

// WriteStream is Write with an explicit placement hint: stream >= 0 names
// the host stream the page should join (clamped to the configured count),
// stream < 0 means no hint. Pages written to different streams fill
// different open blocks, so objects with different lifetimes stop sharing
// erase units.
func (f *FTL) WriteStream(lpn uint32, data []byte, stream int) (sim.Duration, error) {
	if err := f.checkRange(lpn, 1); err != nil {
		return 0, err
	}
	if f.readOnly {
		return 0, ErrReadOnly
	}
	f.st.HostWrites++
	total := f.cfg.CommandOverhead
	sd, err := f.maybeScrub()
	total += sd
	if err != nil {
		return total, err
	}
	s := f.pickStream(stream, lpn)
	d, ppn, err := f.programPage(&f.hosts[s], data, nand.OOB{LPN: lpn, Tag: nand.TagData})
	total += d
	if err != nil {
		return total, err
	}
	f.pageStream[ppn] = uint8(s)
	if s < len(f.st.StreamWrites) {
		f.st.StreamWrites[s]++
	}
	old := f.l2p[lpn]
	f.dropRef(old, lpn)
	f.l2p[lpn] = ppn
	f.primary[ppn] = lpn
	f.addRef(ppn)
	f.markMapDirty(lpn)
	ld, err := f.appendDelta(delta{lpn: lpn, oldPPN: old, newPPN: ppn}, false)
	return total + ld, err
}

// Trim invalidates n logical pages starting at lpn.
func (f *FTL) Trim(lpn uint32, n int) (sim.Duration, error) {
	if err := f.checkRange(lpn, n); err != nil {
		return 0, err
	}
	if f.readOnly {
		return 0, ErrReadOnly
	}
	total := f.cfg.CommandOverhead
	sd, err := f.maybeScrub()
	total += sd
	if err != nil {
		return total, err
	}
	for i := 0; i < n; i++ {
		l := lpn + uint32(i)
		if f.heat != nil {
			// Discarded data restarts cold: the page's update history says
			// nothing about whatever is written there next.
			f.heat[l] = 0
		}
		old := f.l2p[l]
		if old == InvalidPPN {
			continue
		}
		f.st.Trims++
		f.dropRef(old, l)
		f.l2p[l] = InvalidPPN
		f.markMapDirty(l)
		d, err := f.appendDelta(delta{lpn: l, oldPPN: old, newPPN: InvalidPPN}, false)
		total += d
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Flush persists any buffered mapping deltas, making all completed writes
// durable. It models the SATA FLUSH CACHE command issued by fsync.
func (f *FTL) Flush() (sim.Duration, error) {
	total := f.cfg.CommandOverhead
	if f.cfg.PowerCapacitor || len(f.deltaBuf) == 0 {
		return total, nil
	}
	d, err := f.flushDeltaPage()
	return total + d, err
}

// addRef notes one more logical referrer of ppn.
func (f *FTL) addRef(ppn uint32) {
	f.refs[ppn]++
	if f.refs[ppn] == 1 {
		f.blockValid[f.chip.BlockOf(ppn)]++
	}
}

// dropRef removes lpn's reference to ppn (no-op for InvalidPPN). The extra
// table is pruned if lpn was recorded there.
func (f *FTL) dropRef(ppn, lpn uint32) {
	if ppn == InvalidPPN {
		return
	}
	if f.refs[ppn] == 0 {
		panic(fmt.Sprintf("ftl: ref underflow ppn %d", ppn))
	}
	f.refs[ppn]--
	if f.refs[ppn] == 0 {
		f.blockValid[f.chip.BlockOf(ppn)]--
	}
	if f.primary[ppn] == lpn {
		f.primary[ppn] = InvalidLPN
		return
	}
	if len(f.extra) == 0 {
		return
	}
	if ex, ok := f.extra[ppn]; ok {
		for i, e := range ex {
			if e == lpn {
				ex[i] = ex[len(ex)-1]
				ex = ex[:len(ex)-1]
				break
			}
		}
		if len(ex) == 0 {
			delete(f.extra, ppn)
		} else {
			f.extra[ppn] = ex
		}
	}
}

// referrers appends the logical pages currently mapping to ppn onto dst
// (callers pass a reused scratch slice to keep the GC scan allocation-free)
// and returns the extended slice. The len guard skips the share-table map
// lookup entirely on the common no-SHARE path.
func (f *FTL) referrers(ppn uint32, dst []uint32) []uint32 {
	if p := f.primary[ppn]; p != InvalidLPN && int(p) < f.capacity && f.l2p[p] == ppn {
		dst = append(dst, p)
	}
	if len(f.extra) != 0 {
		for _, e := range f.extra[ppn] {
			if int(e) < f.capacity && f.l2p[e] == ppn {
				dst = append(dst, e)
			}
		}
	}
	return dst
}

// allocOn advances the stream's append point on one die and returns a
// fresh physical page there, opening a block from that die's free stack
// when needed. ErrFull means that die has no free block; the caller may
// fall over to another die.
func (f *FTL) allocOn(s *stream, die int) (uint32, error) {
	ap := &s.open[die]
	if ap.block < 0 || ap.next == f.geo.PagesPerBlock {
		if ap.block >= 0 {
			f.blockFull[ap.block] = true
		}
		free := f.freeByDie[die]
		if len(free) == 0 {
			return 0, ErrFull
		}
		ap.block = free[len(free)-1]
		f.freeByDie[die] = free[:len(free)-1]
		f.blockFull[ap.block] = false
		ap.next = 0
	}
	ppn := uint32(ap.block*f.geo.PagesPerBlock + ap.next)
	ap.next++
	return ppn, nil
}

// allocDataPage returns a fresh physical page from the given stream,
// running garbage collection first if free space is low. Dies are tried
// round-robin so consecutive allocations stripe across the array; a die
// with no free block is skipped, and ErrFull surfaces only when every die
// is exhausted. The returned duration covers any GC work performed.
func (f *FTL) allocDataPage(s *stream) (sim.Duration, uint32, error) {
	var total sim.Duration
	if s != &f.gc {
		d, err := f.maybeGC()
		total += d
		if err != nil {
			return total, 0, err
		}
	}
	for i := 0; i < f.dies; i++ {
		die := s.rr
		s.rr = (s.rr + 1) % f.dies
		ppn, err := f.allocOn(s, die)
		if err == nil {
			return total, ppn, nil
		}
	}
	return total, 0, ErrFull
}
