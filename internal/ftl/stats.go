package ftl

import "fmt"

// Stats counts FTL activity. Host* fields count commands from above;
// the GC and metadata fields expose the internal amplification the paper
// measures in Figure 6.
//
// Counter epoch semantics: every numeric field except the gauges
// (SpareBlocksLeft, ReadOnly) is a lifetime-monotonic counter — it only
// grows, and it is never reset. Experiment epochs (e.g. "after aging")
// are handled one layer up: ssd.Device.ResetStats records a baseline and
// ssd.Device.Stats reports the difference, so this struct stays a single
// source of truth. A new field added here must be classified in
// internal/ssd's epoch diff (counter: subtracted; gauge: passed through).
type Stats struct {
	HostReads    int64 // host READ pages
	HostWrites   int64 // host WRITE pages
	Trims        int64 // trimmed pages
	Shares       int64 // SHARE commands
	SharePairs   int64 // SHARE pairs applied by remapping
	AtomicWrites int64 // atomic multi-page write commands (the §6.1 baseline)

	ForcedCopies int64 // SHARE pairs degraded to physical copies (table full)

	// GC and block lifecycle. GCEvents counts victim selections (reclaim
	// passes plus the WearLevelMoves subset); a pass whose erase fails
	// retires the block instead, so:
	//
	//	Erases        = successful block erases from every path
	//	              = GCEvents - (GC passes ending in retirement)
	//	RetiredBlocks = factory-bad + program-failure + erase-failure
	//	                + wear-out blocks removed from service
	//
	// Erases always equals the NAND chip's successful-erase counter over
	// the same window (the FTL is the chip's only client); an ssd test
	// asserts that equivalence.
	GCEvents       int64 // GC victim selections (includes wear-level passes)
	WearLevelMoves int64 // GC passes spent migrating cold blocks
	RetiredBlocks  int64 // bad/worn-out blocks removed from service
	Copybacks      int64 // valid data pages relocated by GC/retirement
	MetaMoves      int64 // live metadata pages relocated by GC/retirement
	Erases         int64 // successful block erases (all paths)
	GCStallNanos   int64 // virtual time commands stalled waiting on GC

	// CrossDieCopybacks counts relocations whose destination landed on a
	// different die than the source. Die-local GC makes this zero by
	// construction; the counter (and its invariant test) exists to catch
	// regressions. Omitted from JSON when zero so single-die reports are
	// unchanged.
	CrossDieCopybacks int64 `json:",omitempty"`

	// Fault handling (bad-block management and media scrubbing).
	ProgramRetries     int64 // program faults absorbed by the retry path
	ProgramFails       int64 // permanent program failures (block retired, data re-steered)
	EraseFails         int64 // non-wear erase failures retired by GC
	ReadRetries        int64 // re-read attempts after an uncorrectable read
	UncorrectableReads int64 // reads lost beyond ECC and retry, surfaced to the host
	ScrubbedBlocks     int64 // suspect blocks refreshed after a retry-recovered read
	ScrubRelocations   int64 // live pages relocated by scrubbing
	SpareBlocksLeft    int64 // retirement budget remaining (snapshot, not a counter)
	ReadOnly           bool  // device degraded: mutating commands refused

	// ECC-ladder escalation and background patrol (zero without a media
	// model; omitted from JSON so aging-free reports are byte-identical).
	SoftDecodes     int64 `json:",omitempty"` // reads escalated to soft-decision decode
	PatrolScans     int64 `json:",omitempty"` // patrol sweep steps executed
	PatrolRefreshes int64 `json:",omitempty"` // blocks refreshed by patrol before failing
	LostPages       int64 `json:",omitempty"` // data pages relocated as pending sectors (contents lost)
	MetaFaults      int64 `json:",omitempty"` // live metadata pages found unreadable, healed from RAM

	LogPagesWritten int64 // mapping delta-log pages programmed
	MapPagesWritten int64 // mapping snapshot pages programmed
	Checkpoints     int64

	// Per-host-stream telemetry, indexed by stream id. Nil unless the
	// device was configured with explicit host streams (HostStreams > 0),
	// so legacy single-stream reports stay byte-identical. StreamCopybacks
	// bills each GC relocation to the stream that originally wrote the
	// page — segregation quality shows up as skew across these buckets.
	StreamWrites    []int64 `json:",omitempty"` // host pages programmed per stream
	StreamCopybacks []int64 `json:",omitempty"` // GC copybacks per origin stream
}

// Stats returns a snapshot of the counters plus the current health state.
func (f *FTL) Stats() Stats {
	st := f.st
	// The struct copy above shares slice backing arrays with the live
	// counters; snapshot them so callers' baselines stay frozen.
	if f.st.StreamWrites != nil {
		st.StreamWrites = append([]int64(nil), f.st.StreamWrites...)
		st.StreamCopybacks = append([]int64(nil), f.st.StreamCopybacks...)
	}
	st.SpareBlocksLeft = int64(f.SpareBlocksLeft())
	st.ReadOnly = f.readOnly
	return st
}

// GCStallTotal returns the lifetime virtual time commands have stalled
// on garbage collection — a cheap accessor the device layer diffs around
// each command to attribute its GC share.
func (f *FTL) GCStallTotal() int64 { return f.st.GCStallNanos }

// FreeBlocks reports the current size of the free-block pool across all
// dies.
func (f *FTL) FreeBlocks() int {
	n := 0
	for _, free := range f.freeByDie {
		n += len(free)
	}
	return n
}

// FreeBlocksOnDie reports one die's free-block count (inspection/tests).
func (f *FTL) FreeBlocksOnDie(die int) int { return len(f.freeByDie[die]) }

// Dies returns the die count the FTL stripes over.
func (f *FTL) Dies() int { return f.dies }

// ShareTableLoad reports the current occupancy of the bounded
// reverse-mapping table (un-checkpointed SHARE deltas).
func (f *FTL) ShareTableLoad() int { return f.pendingShares }

// SetShareTableCap adjusts the reverse-mapping table budget at run time
// (used by the ablation experiments). 0 means unlimited.
func (f *FTL) SetShareTableCap(cap int) { f.cfg.ShareTableCap = cap }

// CheckInvariants validates internal consistency; tests call it after
// random operation sequences. It returns a non-nil error describing the
// first violation found.
func (f *FTL) CheckInvariants() error {
	refs := make([]uint16, len(f.refs))
	for l := 0; l < f.capacity; l++ {
		if ppn := f.l2p[l]; ppn != InvalidPPN {
			refs[ppn]++
		}
	}
	for p := range refs {
		if refs[p] != f.refs[p] {
			return errInvariant("refcount", p, int(f.refs[p]), int(refs[p]))
		}
	}
	valid := make([]int, f.geo.Blocks)
	for p, r := range refs {
		if r > 0 {
			valid[f.chip.BlockOf(uint32(p))]++
		}
	}
	for p := range f.metaLive {
		valid[f.chip.BlockOf(p)]++
	}
	for b := range valid {
		if valid[b] != f.blockValid[b] {
			return errInvariant("blockValid", b, f.blockValid[b], valid[b])
		}
	}
	for l := 0; l < f.capacity; l++ {
		ppn := f.l2p[l]
		if ppn == InvalidPPN {
			continue
		}
		oob, err := f.chip.ReadOOB(ppn)
		if err != nil {
			return fmt.Errorf("ftl: lpn %d maps to unreadable ppn %d: %w", l, ppn, err)
		}
		if oob.Tag != 0 {
			return fmt.Errorf("ftl: lpn %d maps to metadata page %d (tag %d)", l, ppn, oob.Tag)
		}
	}
	return nil
}

func errInvariant(what string, where, got, want int) error {
	return fmt.Errorf("ftl: invariant %s violated at %d: got %d want %d", what, where, got, want)
}
