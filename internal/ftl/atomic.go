package ftl

import (
	"fmt"

	"share/internal/sim"
)

// AtomicPage is one page of an atomic multi-page write.
type AtomicPage struct {
	LPN  uint32
	Data []byte
}

// WriteAtomic implements the related-work baseline the paper contrasts
// SHARE with (§6.1): the atomic-write FTL of Park et al. and the FusionIO
// atomic-write extension that Ouyang et al. used to replace InnoDB's
// doublewrite buffer. All pages of the batch are programmed out of place,
// and then their mapping updates are committed in a single delta-log page
// — the commit record. A crash before that page is durable leaves every
// old mapping intact (the new programs are garbage); after it, all new
// mappings are visible. Unlike SHARE, the whole page set must be supplied
// in one request, which is why this interface cannot express Couchbase's
// zero-copy compaction.
func (f *FTL) WriteAtomic(pages []AtomicPage) (sim.Duration, error) {
	total := f.cfg.CommandOverhead
	if len(pages) == 0 {
		return total, nil
	}
	if len(pages) > f.entriesPerLogPage() {
		return total, fmt.Errorf("%w: %d pages > %d", ErrBatch, len(pages), f.entriesPerLogPage())
	}
	for _, p := range pages {
		if err := f.checkRange(p.LPN, 1); err != nil {
			return total, err
		}
		if len(p.Data) != f.geo.PageSize {
			return total, fmt.Errorf("ftl: atomic write size %d != page size %d", len(p.Data), f.geo.PageSize)
		}
	}
	// Keep the whole batch's deltas inside one log page.
	if len(f.deltaBuf)+len(pages) > f.entriesPerLogPage() {
		d, err := f.flushDeltaPage()
		total += d
		if err != nil {
			return total, err
		}
	}
	f.st.AtomicWrites++
	for _, p := range pages {
		f.st.HostWrites++
		d, ppn, err := f.allocDataPage(&f.host)
		total += d
		if err != nil {
			return total, err
		}
		pd, err := f.chip.Program(ppn, p.Data, nandDataOOB(p.LPN))
		total += pd
		if err != nil {
			return total, err
		}
		old := f.l2p[p.LPN]
		f.dropRef(old, p.LPN)
		f.l2p[p.LPN] = ppn
		f.primary[ppn] = p.LPN
		f.addRef(ppn)
		f.markMapDirty(p.LPN)
		ld, err := f.appendDelta(delta{lpn: p.LPN, oldPPN: old, newPPN: ppn}, true)
		total += ld
		if err != nil {
			return total, err
		}
	}
	// Commit record: the batch's deltas become durable atomically.
	if !f.cfg.PowerCapacitor && len(f.deltaBuf) > 0 {
		d, err := f.flushDeltaPage()
		total += d
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
