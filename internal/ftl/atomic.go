package ftl

import (
	"fmt"

	"share/internal/sim"
)

// AtomicPage is one page of an atomic multi-page write.
type AtomicPage struct {
	LPN  uint32
	Data []byte
}

// WriteAtomic implements the related-work baseline the paper contrasts
// SHARE with (§6.1): the atomic-write FTL of Park et al. and the FusionIO
// atomic-write extension that Ouyang et al. used to replace InnoDB's
// doublewrite buffer. All pages of the batch are programmed out of place,
// and then their mapping updates are committed in a single delta-log page
// — the commit record. A crash before that page is durable leaves every
// old mapping intact (the new programs are garbage); after it, all new
// mappings are visible. Unlike SHARE, the whole page set must be supplied
// in one request, which is why this interface cannot express Couchbase's
// zero-copy compaction.
func (f *FTL) WriteAtomic(pages []AtomicPage) (sim.Duration, error) {
	if f.readOnly {
		return 0, ErrReadOnly
	}
	total := f.cfg.CommandOverhead
	if len(pages) == 0 {
		return total, nil
	}
	if len(pages) > f.entriesPerLogPage() {
		return total, fmt.Errorf("%w: %d pages > %d", ErrBatch, len(pages), f.entriesPerLogPage())
	}
	for _, p := range pages {
		if err := f.checkRange(p.LPN, 1); err != nil {
			return total, err
		}
		if len(p.Data) != f.geo.PageSize {
			return total, fmt.Errorf("ftl: atomic write size %d != page size %d", len(p.Data), f.geo.PageSize)
		}
	}
	f.st.AtomicWrites++
	sd, err := f.maybeScrub()
	total += sd
	if err != nil {
		return total, err
	}
	// Hold the batch's deltas back from the ordinary buffer so a GC flush
	// between page programs cannot persist a torn batch.
	f.beginBatch()
	defer f.endBatch()
	for _, p := range pages {
		f.st.HostWrites++
		d, ppn, err := f.programPage(&f.hosts[0], p.Data, nandDataOOB(p.LPN))
		total += d
		if err != nil {
			return total, err
		}
		old := f.l2p[p.LPN]
		f.dropRef(old, p.LPN)
		f.l2p[p.LPN] = ppn
		f.primary[ppn] = p.LPN
		f.addRef(ppn)
		f.markMapDirty(p.LPN)
		ld, err := f.appendDelta(delta{lpn: p.LPN, oldPPN: old, newPPN: ppn}, true)
		total += ld
		if err != nil {
			return total, err
		}
	}
	// Commit record: the batch's deltas become durable atomically.
	d, err := f.commitBatch()
	return total + d, err
}
