package ftl

// FTL event hooks. Internal state transitions the host cannot see through
// command results — GC victim selection, relocation traffic, mapping
// checkpoints, block retirement, read-only degradation — are emitted
// through an optional sink, one Event per happening. The device layer
// installs a metrics recorder here and exposes the stream as a bounded
// trace ring (internal/metrics), so experiments and the inspector can
// attribute amplification to its cause rather than inferring it from
// counter deltas.

// EventType enumerates the traced FTL happenings.
type EventType uint8

const (
	// EvGCVictim: garbage collection picked a reclaim victim.
	// Block = victim, A = valid pages to relocate.
	EvGCVictim EventType = iota
	// EvWearLevel: the GC pass was a wear-leveling migration of the
	// coldest block. Block = victim, A = valid pages to relocate.
	EvWearLevel
	// EvCopyback: live pages were relocated out of a block (by GC or
	// block retirement). Block = source, A = data pages, B = metadata
	// pages moved.
	EvCopyback
	// EvCheckpoint: a mapping checkpoint completed. A = map snapshot
	// pages written, B = delta-log pages truncated.
	EvCheckpoint
	// EvBlockRetired: a block left service permanently (program/erase
	// failure or wear-out). Block = retired block.
	EvBlockRetired
	// EvReadOnly: retirements exhausted the spare budget; the device
	// degraded to read-only mode.
	EvReadOnly
	// EvReadRetry: an uncorrectable read was retried. Block = the page's
	// block, A = retry attempts used, B = 1 if a retry recovered the data
	// (the block is then queued for scrubbing), 0 if the loss stood.
	EvReadRetry
	// EvScrub: a suspect block was scrubbed — live pages relocated and the
	// block erased (or retired if the erase failed). Block = scrubbed
	// block, A = pages relocated.
	EvScrub
	// EvPatrolRefresh: the background patrol scrubber refreshed a block
	// whose predicted media risk crossed the patrol threshold. Block =
	// refreshed block, A = its risk level at refresh time.
	EvPatrolRefresh
	// EvCacheDegraded: a host-side extended cache stopped filling this
	// device after a write failure (read-only degradation or power loss).
	// Emitted by internal/extcache through the device's metrics recorder,
	// not by the FTL itself.
	EvCacheDegraded

	numEventTypes
)

// NumEventTypes is the number of distinct event types, for sinks that
// keep per-type counters.
const NumEventTypes = int(numEventTypes)

var eventNames = [numEventTypes]string{
	EvGCVictim:      "gc-victim",
	EvWearLevel:     "wear-level",
	EvCopyback:      "copyback",
	EvCheckpoint:    "checkpoint",
	EvBlockRetired:  "block-retired",
	EvReadOnly:      "read-only",
	EvReadRetry:     "read-retry",
	EvScrub:         "scrub",
	EvPatrolRefresh: "patrol-refresh",
	EvCacheDegraded: "cache-degraded",
}

func (e EventType) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "unknown"
}

// Event is one traced FTL happening. Block is -1 when no single block is
// involved; A and B carry type-specific detail (see the EventType docs).
type Event struct {
	Type  EventType
	Block int
	A, B  int64
}

// EventSink receives events synchronously, under the device lock, in the
// deterministic order the simulator produces them. Sinks must be cheap
// and must not call back into the FTL.
type EventSink func(Event)

// SetEventSink installs (or, with nil, removes) the event sink.
func (f *FTL) SetEventSink(s EventSink) { f.sink = s }

func (f *FTL) emit(ev Event) {
	if f.sink != nil {
		f.sink(ev)
	}
}
