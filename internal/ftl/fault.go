package ftl

import (
	"errors"

	"share/internal/nand"
	"share/internal/sim"
)

// Bad-block management. Every NAND program in the FTL goes through
// programPage, which absorbs the chip's failure modes: a failed program is
// retried once (transient faults clear), and if the retry fails too the
// block is treated as permanently bad — its live pages are rescued to other
// blocks, the block is retired, and the in-flight data is re-steered to a
// fresh page. Erase failures (injected or wear-out) retire the victim the
// same way via GC. Retirements consume the spare budget carved out of the
// over-provisioned area; once it is exhausted the device degrades to a
// read-only mode instead of corrupting state.

// ErrReadOnly is returned for mutating commands after the device has
// degraded: so many blocks were retired that the spare pool is exhausted
// and further writes could no longer be guaranteed durable. Reads — and
// flushing already-acknowledged state — still work.
var ErrReadOnly = errors.New("ftl: device degraded to read-only (spare blocks exhausted)")

// programPage allocates a page on stream s and programs data+oob into it.
// NAND program faults are handled here, in one place, for every write path
// (host writes, forced copies, atomic batches, GC relocation, mapping
// metadata): retry once on failure, then retire the block and re-steer.
func (f *FTL) programPage(s *stream, data []byte, oob nand.OOB) (sim.Duration, uint32, error) {
	var total sim.Duration
	for {
		d, ppn, err := f.allocDataPage(s)
		total += d
		if err != nil {
			return total, 0, err
		}
		d, ppn, ok, err := f.programAttempts(s, ppn, data, oob)
		total += d
		if err != nil {
			return total, 0, err
		}
		if ok {
			return total, ppn, nil
		}
		// Retirement re-steered the stream; loop to allocate a fresh page.
	}
}

// programPageOn is programPage pinned to one die — GC relocation uses it
// so a copyback never leaves the victim's die (no cross-die traffic, and
// cleaning one die stays off the others' schedules). It never triggers GC.
func (f *FTL) programPageOn(s *stream, die int, data []byte, oob nand.OOB) (sim.Duration, uint32, error) {
	var total sim.Duration
	for {
		ppn, err := f.allocOn(s, die)
		if err != nil {
			return total, 0, err
		}
		d, ppn, ok, aerr := f.programAttempts(s, ppn, data, oob)
		total += d
		if aerr != nil {
			return total, 0, aerr
		}
		if ok {
			return total, ppn, nil
		}
	}
}

// programAttempts runs the program-retry-retire state machine for one
// allocated page: program, retry once on a media fault, and on a second
// failure retire the page's block (rescuing its live pages) so the caller
// re-steers onto a fresh one. ok reports whether ppn now holds the data.
func (f *FTL) programAttempts(s *stream, ppn uint32, data []byte, oob nand.OOB) (sim.Duration, uint32, bool, error) {
	var total sim.Duration
	// Every program is stamped with the writing stream's identity so
	// recovery can hand partially-written blocks back to their exact owner.
	oob.Stream = s.id
	pd, err := f.chip.Program(ppn, data, oob)
	f.notePPNOp(OpProgram, ppn, pd)
	total += pd
	if err == nil {
		return total, ppn, true, nil
	}
	if !errors.Is(err, nand.ErrProgramFail) {
		return total, 0, false, err // power cut, bounds: not a media fault
	}
	f.st.ProgramRetries++
	pd, err = f.chip.Program(ppn, data, oob)
	f.notePPNOp(OpProgram, ppn, pd)
	total += pd
	if err == nil {
		return total, ppn, true, nil
	}
	if !errors.Is(err, nand.ErrProgramFail) {
		return total, 0, false, err
	}
	// The retry failed too: treat the block as permanently bad, rescue its
	// live pages, and let the caller re-steer the data onto a fresh block.
	f.st.ProgramFails++
	d, rerr := f.retireStreamBlock(s, f.geo.DieOfPPN(ppn))
	total += d
	if rerr != nil {
		return total, 0, false, rerr
	}
	return total, 0, false, nil
}

// retireStreamBlock takes s's current block on one die out of service
// after a permanent program failure: the append point is detached so the
// next allocation opens a fresh block, still-live pages are relocated (the
// block is suspect), and the block joins the retired set.
func (f *FTL) retireStreamBlock(s *stream, die int) (sim.Duration, error) {
	ap := &s.open[die]
	b := ap.block
	ap.block = -1
	ap.next = 0
	if b < 0 {
		return 0, nil
	}
	f.blockFull[b] = true
	buf := f.getPageBuf()
	total, err := f.relocateLive(b, buf)
	f.putPageBuf(buf)
	if err != nil {
		return total, err
	}
	f.retireBlock(b)
	return total, nil
}

// retireBlock permanently removes block b from service: it never rejoins
// the free pool. When retirements exceed the spare budget the device
// transitions to read-only — the remaining blocks can still back every
// acknowledged write, but no new ones.
func (f *FTL) retireBlock(b int) {
	if f.retired[b] {
		return
	}
	f.st.RetiredBlocks++
	f.clearPoison(b)
	f.noteRetired(b)
}

// noteRetired records b as out of service and checks the spare budget. The
// Recover path uses it directly: rediscovering the chip's persistent
// bad-block marks after a crash must not recount them in Stats.
func (f *FTL) noteRetired(b int) {
	if f.retired[b] {
		return
	}
	f.retired[b] = true
	f.retiredN++
	f.emit(Event{Type: EvBlockRetired, Block: b, A: int64(f.SpareBlocksLeft())})
	if f.retiredN > f.spareBudget && !f.readOnly {
		f.readOnly = true
		f.emit(Event{Type: EvReadOnly, Block: -1, A: int64(f.retiredN)})
	}
}

// relocateLive moves every live page — valid data and live FTL metadata —
// out of block b. Shared by GC (before erase) and block retirement.
func (f *FTL) relocateLive(b int, buf []byte) (sim.Duration, error) {
	var total sim.Duration
	dataBefore, metaBefore := f.st.Copybacks, f.st.MetaMoves
	defer func() {
		if d, m := f.st.Copybacks-dataBefore, f.st.MetaMoves-metaBefore; d+m > 0 {
			f.emit(Event{Type: EvCopyback, Block: b, A: d, B: m})
		}
	}()
	base := uint32(b * f.geo.PagesPerBlock)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		ppn := base + uint32(i)
		if f.chip.State(ppn) != nand.PageProgrammed {
			continue
		}
		oob, err := f.chip.ReadOOB(ppn)
		if err != nil {
			return total, err
		}
		switch oob.Tag {
		case nand.TagData:
			if f.refs[ppn] == 0 {
				continue // stale data page
			}
			d, err := f.relocateData(ppn, buf)
			total += d
			if err != nil {
				return total, err
			}
		case nand.TagMapBase, nand.TagMapLog:
			if !f.metaLive[ppn] {
				continue // superseded snapshot or truncated log page
			}
			d, err := f.relocateMeta(ppn, oob, buf)
			total += d
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// The ECC retry ladder and scrubbing. An uncorrectable fast read is often
// a recoverable condition (read disturb, charge drift) that a stronger —
// and slower — correction step can still decode, so chipRead escalates
// through the chip's read strengths before surfacing data loss: the fast
// on-the-fly ECC pass, then a shifted-sense re-read after a short firmware
// backoff, then a soft-decision decode over multiple sense levels at
// several times the read latency. A page that needed any escalation to
// come back is living on suspect media: its whole block is queued for
// scrubbing — live pages relocated to fresh flash, the block erased and
// returned to service — at the next safe point (outside GC and atomic
// batches), so the next read does not gamble on the same cells again.

const (
	// readRetryLimit is the number of escalation rungs above the fast read
	// (shifted-sense re-read, then soft decode).
	readRetryLimit = 2
	// readRetryBackoff is the extra firmware delay charged per escalation,
	// multiplied by the rung number (reconfigure sense voltages, resample).
	readRetryBackoff = 40 * sim.Microsecond
)

// chipRead reads a physical page through the ECC retry ladder. Only a read
// that stays uncorrectable after the full ladder is counted and surfaced
// to the caller as data loss: with no on-device redundancy beyond per-page
// ECC it cannot be rehomed. A read recovered by any escalation queues its
// block for scrubbing.
func (f *FTL) chipRead(ppn uint32, dst []byte) (nand.OOB, sim.Duration, error) {
	if len(f.poisoned) != 0 && f.poisoned[ppn] {
		// Pending sector: an earlier relocation already proved this data
		// lost, and the copy here is only the loss marker. Firmware answers
		// from the pending list after the plain sense — no point running the
		// ladder over bits it knows are gone.
		oob, d, _ := f.chip.Read(ppn, dst)
		f.notePPNOp(OpRead, ppn, d)
		f.st.UncorrectableReads++
		return oob, d, nand.ErrUncorrectable
	}
	oob, d, err := f.chip.Read(ppn, dst)
	f.notePPNOp(OpRead, ppn, d)
	total := d
	retries := 0
	if errors.Is(err, nand.ErrUncorrectable) {
		// Rung 2: re-read with a shifted sense voltage.
		retries++
		f.st.ReadRetries++
		total += readRetryBackoff
		oob, d, err = f.chip.ReadShifted(ppn, dst)
		f.notePPNOp(OpRead, ppn, d)
		total += d
	}
	if errors.Is(err, nand.ErrUncorrectable) {
		// Rung 3: soft-decision decode, the strongest correction available.
		retries++
		f.st.ReadRetries++
		f.st.SoftDecodes++
		total += 2 * readRetryBackoff
		oob, d, err = f.chip.ReadSoft(ppn, dst)
		f.notePPNOp(OpRead, ppn, d)
		total += d
	}
	if retries > 0 {
		b := f.chip.BlockOf(ppn)
		recovered := int64(0)
		if err == nil {
			recovered = 1
			f.queueScrub(b)
		}
		f.emit(Event{Type: EvReadRetry, Block: b, A: int64(retries), B: recovered})
	}
	if errors.Is(err, nand.ErrUncorrectable) {
		f.st.UncorrectableReads++
	}
	return oob, total, err
}

// queueScrub marks block b for relocation at the next safe point. Already
// retired or already queued blocks are skipped.
func (f *FTL) queueScrub(b int) {
	if f.retired[b] || f.scrubSet[b] {
		return
	}
	f.scrubSet[b] = true
	f.scrubQueue = append(f.scrubQueue, b)
}

// maybeScrub drains the scrub queue. It runs only at safe points — from a
// host mutating command, never re-entrantly from GC or inside an atomic
// batch, and not once the device is read-only (scrubbing writes). A block
// that cannot be scrubbed right now (no relocation headroom) is requeued
// rather than failing the host command.
func (f *FTL) maybeScrub() (sim.Duration, error) {
	if len(f.scrubQueue) == 0 || f.inGC || f.inBatch || f.readOnly {
		return 0, nil
	}
	var total sim.Duration
	for len(f.scrubQueue) > 0 {
		b := f.scrubQueue[0]
		f.scrubQueue = f.scrubQueue[1:]
		delete(f.scrubSet, b)
		if f.retired[b] || f.isOpenBlock(b) || !f.blockFull[b] {
			continue // retired meanwhile, still filling, or back in the free pool
		}
		d, err := f.scrubBlock(b)
		total += d
		if err == ErrFull && f.metaHeal {
			// A rotten live metadata page blocks this scrub; heal it from
			// RAM (forced checkpoint) and retry the block once.
			hd, herr := f.healMeta()
			total += hd
			if herr != nil {
				return total, herr
			}
			d, err = f.scrubBlock(b)
			total += d
		}
		if err == ErrFull {
			f.queueScrub(b)
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// scrubBlock refreshes one suspect block: relocate its live pages, make the
// relocation deltas durable, erase it and return it to the free pool. An
// erase failure retires the block instead — exactly the GC path.
func (f *FTL) scrubBlock(b int) (sim.Duration, error) {
	f.inGC = true
	defer func() { f.inGC = false }()
	movedBefore := f.st.Copybacks + f.st.MetaMoves
	buf := f.getPageBuf()
	total, err := f.relocateLive(b, buf)
	f.putPageBuf(buf)
	if err != nil {
		return total, err
	}
	// The relocation deltas must be durable before the suspect copies are
	// destroyed, or a crash would recover mappings into an erased block.
	if len(f.deltaBuf) > 0 {
		d, err := f.flushDeltaPage()
		total += d
		if err != nil {
			return total, err
		}
	}
	d, err := f.chip.EraseBlock(b)
	f.noteEraseOp(b, d)
	total += d
	moved := f.st.Copybacks + f.st.MetaMoves - movedBefore
	f.st.ScrubRelocations += moved
	f.st.ScrubbedBlocks++
	f.emit(Event{Type: EvScrub, Block: b, A: moved})
	if nand.Retirable(err) {
		if !errors.Is(err, nand.ErrWornOut) {
			f.st.EraseFails++
		}
		f.retireBlock(b)
		return total, nil
	}
	if err != nil {
		return total, err
	}
	f.st.Erases++
	f.blockFull[b] = false
	f.blockValid[b] = 0
	f.clearPoison(b)
	die := f.geo.DieOfBlock(b)
	f.freeByDie[die] = append(f.freeByDie[die], b)
	return total, nil
}

// clearPoison forgets a block's pending-sector marks: erasure destroys the
// poisoned replacement copies, and a retired block is never read again.
func (f *FTL) clearPoison(b int) {
	if len(f.poisoned) == 0 {
		return
	}
	base := uint32(b * f.geo.PagesPerBlock)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		delete(f.poisoned, base+uint32(i))
	}
}

// healMeta rewrites rotten on-flash metadata from RAM. A live mapping
// snapshot or delta-log page that no ECC rung could read is not data loss
// while the device is powered — the in-memory mapping is authoritative — so
// the repair is a forced checkpoint: dirty snapshots (including any marked
// dirty because their flash copy was unreadable) are rewritten fresh and
// the delta log is truncated, after which the unreadable copies are stale
// and their blocks reclaim normally.
func (f *FTL) healMeta() (sim.Duration, error) {
	if !f.metaHeal || f.inBatch {
		return 0, nil
	}
	f.metaHeal = false
	wasGC := f.inGC
	f.inGC = true // the checkpoint's own programs must not re-enter GC
	d, err := f.Checkpoint()
	f.inGC = wasGC
	return d, err
}

// ReadOnly reports whether the device has degraded to read-only mode.
func (f *FTL) ReadOnly() bool { return f.readOnly }

// SpareBlocksLeft reports how many more block retirements the device can
// absorb before degrading to read-only.
func (f *FTL) SpareBlocksLeft() int {
	if left := f.spareBudget - f.retiredN; left > 0 {
		return left
	}
	return 0
}
