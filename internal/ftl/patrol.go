package ftl

import (
	"share/internal/sim"
)

// Background patrol scrubbing. The reactive scrub path (fault.go) only
// heals blocks a read already stumbled over — it can never reach data that
// is rotting unread. Retention errors accumulate precisely on such cold
// blocks, so a device that relies on reactive scrubbing alone eventually
// loses data that nobody touched. The patrol scrubber closes that gap: a
// low-priority background sweep that ranks every block by its predicted
// media risk — the chip model's combination of erase count (wear), read
// count since erase (disturb), retention age, and static page weakness —
// and refreshes the riskiest block once it crosses a threshold safely
// below the fast-ECC correction limit. A refresh is an ordinary scrub:
// live pages relocate to fresh flash, the mapping deltas are made durable,
// and the block is erased back into the free pool, resetting its disturb
// and retention clocks.
//
// Scheduling is the host's business: the device layer exposes one
// PatrolStep per invocation and replays its NAND cost plan onto the
// per-die resource servers, so patrol traffic queues behind foreground
// I/O in virtual time exactly like any other internal work, and a host
// that calls PatrolStep at a low duty cycle gets a scrubber that yields
// to foreground load.

// defaultPatrolThresholdPct is the refresh trigger as a percentage of the
// media model's FastLimit: refreshing at 80% keeps even a freshly-crossed
// block two full escalation rungs away from data loss.
const defaultPatrolThresholdPct = 80

// patrolThreshold returns the risk level at which patrol refreshes a
// block, or 0 if no media model is installed.
func (f *FTL) patrolThreshold() int64 {
	m := f.chip.Media()
	if m == nil {
		return 0
	}
	pct := int64(f.cfg.PatrolThresholdPct)
	if pct <= 0 {
		pct = defaultPatrolThresholdPct
	}
	return m.FastLimit * pct / 100
}

// patrolEligible reports whether block b is a candidate for a patrol
// refresh: holding live data, fully written (an open block is still being
// filled and will be handled by its stream), and still in service.
func (f *FTL) patrolEligible(b int) bool {
	return !f.retired[b] && f.blockFull[b] && f.blockValid[b] > 0 && !f.isOpenBlock(b)
}

// PatrolStep performs one increment of background patrol: sweep the
// per-block risk predictions and refresh the single riskiest block at or
// above the patrol threshold. It returns the virtual time consumed and
// the refreshed block, or -1 when nothing needed refreshing. A step that
// cannot refresh right now (no relocation headroom, device read-only,
// mid-GC or mid-batch) is a no-op; the block stays ranked for the next
// step. Callers invoke it periodically at whatever duty cycle they can
// afford — each step does at most one block of work, so patrol never
// monopolizes the device.
func (f *FTL) PatrolStep() (sim.Duration, int, error) {
	if !f.chip.MediaEnabled() || f.readOnly || f.inGC || f.inBatch {
		return 0, -1, nil
	}
	f.st.PatrolScans++
	thr := f.patrolThreshold()
	victim, worst := -1, int64(0)
	for b := 0; b < f.geo.Blocks; b++ {
		if !f.patrolEligible(b) {
			continue
		}
		if r := f.chip.BlockRisk(b); r >= thr && r > worst {
			victim, worst = b, r
		}
	}
	// The sweep itself is firmware work over in-RAM counters: one command
	// overhead, no NAND traffic.
	if victim < 0 {
		return f.cfg.CommandOverhead, -1, nil
	}
	d, err := f.scrubBlock(victim)
	total := f.cfg.CommandOverhead + d
	if err == ErrFull {
		// No headroom to relocate into right now — or a rotten live
		// metadata page that must be rewritten from RAM first. Heal the
		// metadata if that is what blocked the scrub; either way a later
		// step retries the same block.
		if f.metaHeal {
			hd, herr := f.healMeta()
			total += hd
			if herr != nil {
				return total, -1, herr
			}
		}
		return total, -1, nil
	}
	if err != nil {
		return total, -1, err
	}
	f.st.PatrolRefreshes++
	f.emit(Event{Type: EvPatrolRefresh, Block: victim, A: worst})
	return total, victim, nil
}

// PatrolBacklog reports how many blocks currently sit at or above the
// patrol refresh threshold — the queue depth a healthy patrol duty cycle
// keeps near zero. Returns 0 without a media model.
func (f *FTL) PatrolBacklog() int {
	if !f.chip.MediaEnabled() {
		return 0
	}
	thr := f.patrolThreshold()
	n := 0
	for b := 0; b < f.geo.Blocks; b++ {
		if f.patrolEligible(b) && f.chip.BlockRisk(b) >= thr {
			n++
		}
	}
	return n
}

// ScrubQueueLen reports the reactive scrub queue depth (blocks flagged by
// retry-recovered reads, awaiting a safe point).
func (f *FTL) ScrubQueueLen() int { return len(f.scrubQueue) }

// IsRetired reports whether block b has been permanently taken out of
// service.
func (f *FTL) IsRetired(b int) bool { return f.retired[b] }
