// Package ycsb implements the Yahoo! Cloud Serving Benchmark workloads
// the paper uses against the mini-Couchbase store (§5.3.2): workload A
// (50% reads / 50% updates) and workload F (100% read-modify-write),
// zipfian key skew, single-threaded clients, ~4 KiB records.
package ycsb

import (
	"fmt"
	"math/rand"

	"share/internal/couch"
	"share/internal/sim"
)

// Workload selects the YCSB operation mix.
type Workload int

// All six core YCSB workloads. The paper measured A and F (the
// write-heavy ones); B-E are implemented for completeness and used by the
// abl-ycsb experiment to confirm the paper's observation that the
// read-intensive workloads have little to gain from SHARE.
const (
	WorkloadA Workload = iota // 50% read, 50% update
	WorkloadB                 // 95% read, 5% update
	WorkloadC                 // 100% read
	WorkloadD                 // 95% read (latest distribution), 5% insert
	WorkloadE                 // 95% short scans, 5% insert
	WorkloadF                 // 100% read-modify-write
)

func (w Workload) String() string {
	switch w {
	case WorkloadA:
		return "workload-A"
	case WorkloadB:
		return "workload-B"
	case WorkloadC:
		return "workload-C"
	case WorkloadD:
		return "workload-D"
	case WorkloadE:
		return "workload-E"
	case WorkloadF:
		return "workload-F"
	}
	return "?"
}

// Config sizes a run.
type Config struct {
	Records     int // database size in documents
	ValueSize   int // bytes per document value (paper: ~4 KiB records)
	Ops         int // measured operations
	Workload    Workload
	Seed        int64
	ZipfS       float64 // zipfian skew (default 1.1)
	AutoCompact bool    // run compaction when the store's threshold trips
	// Background, when set, is the task compaction time is charged to —
	// Couchbase compacts on a background thread, so the client stream
	// slows only through device contention, not by executing the copy
	// itself.
	Background *sim.Task
}

func (c *Config) setDefaults() {
	if c.Records == 0 {
		c.Records = 1000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 4000
	}
	if c.Ops == 0 {
		c.Ops = 1000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
}

// Result of one run.
type Result struct {
	Ops          int64
	Elapsed      sim.Duration
	Throughput   float64 // operations per virtual second
	BytesWritten int64   // host bytes written to the data device
	Compactions  int64
}

// Key returns the i-th record key (YCSB's hashed "user" keys).
func Key(i int) []byte {
	h := uint64(i) * 0xff51afd7ed558ccd
	return []byte(fmt.Sprintf("user%016x", h))
}

// Load inserts the initial records with a large commit batch (YCSB's
// load phase is bulk), then restores the configured batch size.
func Load(t *sim.Task, s *couch.Store, cfg Config) error {
	cfg.setDefaults()
	restore := s.BatchSize()
	s.SetBatchSize(256)
	rng := rand.New(rand.NewSource(cfg.Seed))
	val := make([]byte, cfg.ValueSize)
	for i := 0; i < cfg.Records; i++ {
		rng.Read(val)
		if err := s.Set(t, Key(i), val); err != nil {
			return err
		}
	}
	if err := s.Commit(t); err != nil {
		return err
	}
	s.SetBatchSize(restore)
	return nil
}

// Run executes the workload single-threaded (as in the paper) and returns
// throughput in virtual time plus device write volume.
func Run(t *sim.Task, s *couch.Store, cfg Config) (*Result, error) {
	cfg.setDefaults()
	dev := s.FS().Device()
	before := dev.Stats()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 8, uint64(cfg.Records-1))
	val := make([]byte, cfg.ValueSize)
	start := t.Now()
	var compactions int64
	inserted := cfg.Records // next insert index for workloads D and E
	for i := 0; i < cfg.Ops; i++ {
		rank := zipf.Uint64()
		key := Key(int((rank * 2654435761) % uint64(cfg.Records)))
		switch cfg.Workload {
		case WorkloadA:
			if rng.Intn(2) == 0 {
				if _, _, err := s.Get(t, key); err != nil {
					return nil, err
				}
			} else {
				rng.Read(val)
				if err := s.Set(t, key, val); err != nil {
					return nil, err
				}
			}
		case WorkloadB:
			if rng.Intn(100) < 95 {
				if _, _, err := s.Get(t, key); err != nil {
					return nil, err
				}
			} else {
				rng.Read(val)
				if err := s.Set(t, key, val); err != nil {
					return nil, err
				}
			}
		case WorkloadC:
			if _, _, err := s.Get(t, key); err != nil {
				return nil, err
			}
		case WorkloadD:
			if rng.Intn(100) < 95 {
				// Read-latest: skew toward the most recent inserts.
				back := int(zipf.Uint64())
				idx := inserted - 1 - back
				if idx < 0 {
					idx = 0
				}
				if _, _, err := s.Get(t, Key(idx)); err != nil {
					return nil, err
				}
			} else {
				rng.Read(val)
				if err := s.Set(t, Key(inserted), val); err != nil {
					return nil, err
				}
				inserted++
			}
		case WorkloadE:
			if rng.Intn(100) < 95 {
				// Short range scan: up to 20 documents from a random key.
				limit := 1 + rng.Intn(20)
				if err := s.Scan(t, key, nil, func(k, v []byte) bool {
					limit--
					return limit > 0
				}); err != nil {
					return nil, err
				}
			} else {
				rng.Read(val)
				if err := s.Set(t, Key(inserted), val); err != nil {
					return nil, err
				}
				inserted++
			}
		case WorkloadF:
			if _, _, err := s.Get(t, key); err != nil {
				return nil, err
			}
			rng.Read(val)
			if err := s.Set(t, key, val); err != nil {
				return nil, err
			}
		}
		if cfg.AutoCompact && s.NeedsCompaction() {
			ct := t
			if cfg.Background != nil {
				cfg.Background.AdvanceTo(t.Now())
				ct = cfg.Background
			}
			if _, err := s.Compact(ct); err != nil {
				return nil, err
			}
			compactions++
		}
	}
	if err := s.Commit(t); err != nil {
		return nil, err
	}
	after := dev.Stats()
	res := &Result{
		Ops:          int64(cfg.Ops),
		Elapsed:      t.Now() - start,
		BytesWritten: (after.FTL.HostWrites - before.FTL.HostWrites) * int64(dev.PageSize()),
		Compactions:  compactions,
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / (float64(res.Elapsed) / float64(sim.Second))
	}
	return res, nil
}
