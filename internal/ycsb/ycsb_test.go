package ycsb

import (
	"testing"

	"share/internal/couch"
	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/ssd"
)

func testStore(t *testing.T, share bool, batch int) (*couch.Store, *sim.Task) {
	t.Helper()
	cfg := ssd.DefaultConfig(2048)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	dev, err := ssd.New("couch", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	fs, err := fsim.Format(task, dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	s, err := couch.Open(task, fs, couch.Config{
		ShareMode:       share,
		BatchSize:       batch,
		DocCacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, task
}

func TestLoadAndRunWorkloadF(t *testing.T) {
	s, task := testStore(t, false, 4)
	cfg := Config{Records: 150, ValueSize: 900, Ops: 300, Workload: WorkloadF}
	if err := Load(task, s, cfg); err != nil {
		t.Fatal(err)
	}
	if s.DocCount() != 150 {
		t.Fatalf("docs = %d", s.DocCount())
	}
	res, err := Run(task, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.BytesWritten <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// Workload F is 100% RMW: every op writes a doc page at least.
	if res.BytesWritten < int64(cfg.Ops)*512 {
		t.Fatalf("too few bytes written: %d", res.BytesWritten)
	}
}

func TestWorkloadAWritesLessThanF(t *testing.T) {
	run := func(w Workload) int64 {
		s, task := testStore(t, false, 4)
		cfg := Config{Records: 150, ValueSize: 900, Ops: 400, Workload: w}
		if err := Load(task, s, cfg); err != nil {
			t.Fatal(err)
		}
		res, err := Run(task, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.BytesWritten
	}
	a := run(WorkloadA)
	f := run(WorkloadF)
	if a >= f {
		t.Fatalf("workload A wrote %d >= F %d", a, f)
	}
}

func TestShareOutperformsOriginal(t *testing.T) {
	run := func(share bool) (float64, int64) {
		s, task := testStore(t, share, 1)
		cfg := Config{Records: 200, ValueSize: 900, Ops: 400, Workload: WorkloadF}
		if err := Load(task, s, cfg); err != nil {
			t.Fatal(err)
		}
		res, err := Run(task, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput, res.BytesWritten
	}
	origTp, origBytes := run(false)
	shareTp, shareBytes := run(true)
	if shareTp <= origTp {
		t.Fatalf("share tput %.1f <= original %.1f", shareTp, origTp)
	}
	if shareBytes >= origBytes {
		t.Fatalf("share bytes %d >= original %d", shareBytes, origBytes)
	}
}

func TestBatchSizeNarrowsGap(t *testing.T) {
	written := func(share bool, batch int) int64 {
		s, task := testStore(t, share, batch)
		cfg := Config{Records: 200, ValueSize: 900, Ops: 600, Workload: WorkloadF}
		if err := Load(task, s, cfg); err != nil {
			t.Fatal(err)
		}
		res, err := Run(task, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.BytesWritten
	}
	gap1 := float64(written(false, 1)) / float64(written(true, 1))
	gap64 := float64(written(false, 64)) / float64(written(true, 64))
	if gap64 >= gap1 {
		t.Fatalf("write gap did not narrow with batch size: %.2f -> %.2f", gap1, gap64)
	}
	if gap1 < 2 {
		t.Fatalf("batch-1 write gap %.2f too small; paper reports ~7.9x", gap1)
	}
}

func TestKeysAreStable(t *testing.T) {
	if string(Key(5)) != string(Key(5)) {
		t.Fatal("Key not deterministic")
	}
	if string(Key(5)) == string(Key(6)) {
		t.Fatal("Key collision")
	}
}

func TestAutoCompact(t *testing.T) {
	s, task := testStore(t, false, 1)
	cfg := Config{Records: 100, ValueSize: 900, Ops: 1500, Workload: WorkloadF, AutoCompact: true}
	if err := Load(task, s, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(task, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compactions == 0 {
		t.Fatal("auto-compaction never triggered")
	}
	// Data still correct after compactions.
	for i := 0; i < 100; i++ {
		if _, ok, err := s.Get(task, Key(i)); err != nil || !ok {
			t.Fatalf("key %d lost: %v %v", i, ok, err)
		}
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF} {
		t.Run(w.String(), func(t *testing.T) {
			s, task := testStore(t, false, 8)
			cfg := Config{Records: 120, ValueSize: 600, Ops: 200, Workload: w, Seed: 2}
			if err := Load(task, s, cfg); err != nil {
				t.Fatal(err)
			}
			res, err := Run(task, s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Throughput <= 0 {
				t.Fatalf("%v: throughput %f", w, res.Throughput)
			}
		})
	}
}

func TestReadOnlyWorkloadWritesAlmostNothing(t *testing.T) {
	s, task := testStore(t, false, 8)
	cfg := Config{Records: 120, ValueSize: 600, Ops: 300, Workload: WorkloadC, Seed: 2}
	if err := Load(task, s, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(task, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only the final commit's header may be written.
	if res.BytesWritten > 16*512 {
		t.Fatalf("workload C wrote %d bytes", res.BytesWritten)
	}
}
