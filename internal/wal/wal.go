// Package wal implements an append-only write-ahead log on its own
// device, matching the paper's setup where the MySQL redo log lives on a
// separate (fast, power-protected) SSD. The log is a byte stream of
// length-prefixed records segmented into pages; records may span pages, so
// engines can log full page images. Sync writes the buffered tail and
// flushes the device — the group-commit unit.
//
// Records are opaque byte slices to the log; the database engines define
// their own record encodings and replay logic.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"share/internal/sim"
	"share/internal/ssd"
)

// ErrFull is returned when the ring has no space left; the engine must
// checkpoint and Truncate.
var ErrFull = errors.New("wal: log ring full; checkpoint required")

const (
	pageMagic = 0x57414C50 // "WALP"
	pageHdr   = 16         // magic u32, seq u64, used u32
	recHdr    = 4          // record length prefix
)

// Log is an append-only record log over a contiguous LPN range of a
// device. Old space is reclaimed by Truncate after engine checkpoints.
//
// The log is safe for concurrent use: a latch serializes Append, Sync,
// Truncate and ReadAll, and it is held across the device I/O — the tail
// slot is rewritten by both Append (when a page fills) and Sync (partial
// tail), and interleaving a stale tail image between those writes would
// corrupt the stream”s record boundaries. Scalar counters (head, lsn,
// durable, written, bytes) are mirrored through atomics so the getters
// need no latch and never queue behind a leader”s fsync.
type Log struct {
	dev      *ssd.Device
	start    uint32 // first LPN of the log area
	pages    uint32 // log area length
	pageSize int
	stream   int // device write-stream hint; < 0 means unhinted

	latch sim.Mutex // serializes mutators, held across device I/O

	head    atomic.Uint32 // slot holding the current (partial) page
	seq     uint64        // page sequence number (latch only)
	pending []byte        // stream bytes not yet part of a full page (latch only)
	lsn     atomic.Int64  // next record LSN (monotonic record counter)
	durable atomic.Int64  // highest LSN guaranteed durable
	written atomic.Int64  // page writes issued
	bytes   atomic.Int64  // record payload bytes appended

	readTruncations atomic.Int64 // ReadAll scans ended early by an unreadable page
	lastReadErr     error        // device error that ended the last truncated scan (latch)
}

// New creates an empty log over [start, start+pages) of dev.
func New(dev *ssd.Device, start, pages uint32) (*Log, error) {
	if pages < 2 {
		return nil, fmt.Errorf("wal: need at least 2 pages")
	}
	return &Log{dev: dev, start: start, pages: pages, pageSize: dev.PageSize(), stream: -1}, nil
}

// SetStream pins every log page write to one device write stream, so a
// group commit stays a single coalesced flush into one open block even on
// a multi-stream device. A negative value restores unhinted writes.
// Set before concurrent appenders start; the field is not latch-protected.
func (l *Log) SetStream(s int) { l.stream = s }

// Stream returns the log's device write-stream hint (< 0 when unhinted).
func (l *Log) Stream() int { return l.stream }

// capacityPerPage returns usable stream bytes per log page.
func (l *Log) capacityPerPage() int { return l.pageSize - pageHdr }

// Remaining returns how many whole pages of ring space are left.
func (l *Log) Remaining() int { return int(l.pages - l.head.Load()) }

// Append buffers one record and returns its LSN. Records may exceed a
// page; they are segmented across pages. The record becomes durable only
// after Sync returns.
func (l *Log) Append(t *sim.Task, rec []byte) (int64, error) {
	l.latch.Lock(t)
	defer l.latch.Unlock(t)
	need := (len(l.pending) + recHdr + len(rec) + l.capacityPerPage() - 1) / l.capacityPerPage()
	if int(l.head.Load())+need > int(l.pages) {
		return 0, ErrFull
	}
	var hdr [recHdr]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	l.pending = append(l.pending, hdr[:]...)
	l.pending = append(l.pending, rec...)
	l.bytes.Add(int64(len(rec)))
	// Emit full pages eagerly.
	for len(l.pending) >= l.capacityPerPage() {
		if err := l.emit(t, l.capacityPerPage(), true); err != nil {
			return 0, err
		}
	}
	return l.lsn.Add(1) - 1, nil
}

// emit writes the first n pending bytes into the current slot. advance
// moves to the next slot (used when the page is full); otherwise the slot
// will be rewritten by later emits (partial sync of the tail page).
func (l *Log) emit(t *sim.Task, n int, advance bool) error {
	head := l.head.Load()
	if head >= l.pages {
		return ErrFull
	}
	buf := make([]byte, l.pageSize)
	l.seq++
	binary.LittleEndian.PutUint32(buf[0:], pageMagic)
	binary.LittleEndian.PutUint64(buf[4:], l.seq)
	binary.LittleEndian.PutUint32(buf[12:], uint32(n))
	copy(buf[pageHdr:], l.pending[:n])
	if err := l.dev.WritePageStream(t, l.start+head, buf, l.stream); err != nil {
		return err
	}
	l.written.Add(1)
	if advance {
		l.pending = l.pending[n:]
		l.head.Store(head + 1)
	}
	return nil
}

// Sync makes every appended record durable: it writes the partial tail
// page and issues a device flush. This is the fsync in a commit. The
// latch is held across the flush, so the durable horizon recorded on
// return covers exactly the records appended before this Sync.
func (l *Log) Sync(t *sim.Task) error {
	l.latch.Lock(t)
	defer l.latch.Unlock(t)
	if len(l.pending) > 0 {
		if err := l.emit(t, len(l.pending), false); err != nil {
			return err
		}
	}
	if err := l.dev.Flush(t); err != nil {
		return err
	}
	l.durable.Store(l.lsn.Load())
	return nil
}

// Truncate discards the log contents after an engine checkpoint: all
// records are reflected in the data files, so the ring restarts. The freed
// pages are trimmed.
func (l *Log) Truncate(t *sim.Task) error {
	l.latch.Lock(t)
	defer l.latch.Unlock(t)
	if err := l.dev.Trim(t, l.start, int(l.pages)); err != nil {
		return err
	}
	l.head.Store(0)
	l.pending = nil
	return nil
}

// LSN returns the next record LSN (== count of records appended).
func (l *Log) LSN() int64 { return l.lsn.Load() }

// DurableLSN returns the highest LSN guaranteed durable by a prior Sync.
func (l *Log) DurableLSN() int64 { return l.durable.Load() }

// PagesWritten returns the number of log page writes issued — the measure
// the PostgreSQL full-page-writes experiment compares.
func (l *Log) PagesWritten() int64 { return l.written.Load() }

// BytesAppended returns total record payload bytes appended.
func (l *Log) BytesAppended() int64 { return l.bytes.Load() }

// ReadTruncations returns how many ReadAll scans ended early because a log
// page was unreadable (replay stopped at the last recoverable record).
func (l *Log) ReadTruncations() int64 { return l.readTruncations.Load() }

// LastReadError returns the device error that ended the most recent
// truncated scan, or nil if every scan completed.
func (l *Log) LastReadError() error { return l.lastReadErr }

// ReadAll returns every complete record currently readable from the log
// area in append order, for crash recovery. It scans pages in slot order
// with increasing sequence numbers and reassembles the byte stream; a torn
// or missing tail ends the scan, dropping any trailing partial record.
//
// An unreadable page — a device read fault the FTL's retry path could not
// recover — also ends the scan rather than failing recovery outright: the
// log is replayable up to the last readable record, exactly like a torn
// tail, and the truncation is counted (ReadTruncations, LastReadError) so
// the engine can report it. Records past the bad page are lost.
func (l *Log) ReadAll(t *sim.Task) ([][]byte, error) {
	l.latch.Lock(t)
	defer l.latch.Unlock(t)
	buf := make([]byte, l.pageSize)
	var stream []byte
	var lastSeq uint64
	for slot := uint32(0); slot < l.pages; slot++ {
		if err := l.dev.ReadPage(t, l.start+slot, buf); err != nil {
			l.readTruncations.Add(1)
			l.lastReadErr = err
			break
		}
		if binary.LittleEndian.Uint32(buf[0:]) != pageMagic {
			break
		}
		seq := binary.LittleEndian.Uint64(buf[4:])
		if seq <= lastSeq {
			break
		}
		lastSeq = seq
		used := int(binary.LittleEndian.Uint32(buf[12:]))
		if used > l.capacityPerPage() {
			break
		}
		stream = append(stream, buf[pageHdr:pageHdr+used]...)
	}
	var out [][]byte
	off := 0
	for off+recHdr <= len(stream) {
		n := int(binary.LittleEndian.Uint32(stream[off:]))
		if off+recHdr+n > len(stream) {
			break // torn tail record
		}
		rec := make([]byte, n)
		copy(rec, stream[off+recHdr:])
		out = append(out, rec)
		off += recHdr + n
	}
	return out, nil
}
