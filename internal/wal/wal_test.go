package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"share/internal/sim"
	"share/internal/ssd"
)

func testLog(t *testing.T, pages uint32) (*Log, *ssd.Device, *sim.Task) {
	t.Helper()
	cfg := ssd.DefaultConfig(64)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 16
	dev, err := ssd.New("log", cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(dev, 0, pages)
	if err != nil {
		t.Fatal(err)
	}
	return l, dev, sim.NewSoloTask("t")
}

func TestAppendSyncReadAll(t *testing.T) {
	l, _, task := testLog(t, 16)
	var want [][]byte
	for i := 0; i < 30; i++ {
		rec := []byte(fmt.Sprintf("record-%02d-%s", i, bytes.Repeat([]byte{'x'}, i)))
		lsn, err := l.Append(task, rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != int64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
		want = append(want, rec)
	}
	if err := l.Sync(task); err != nil {
		t.Fatal(err)
	}
	got, err := l.ReadAll(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestDurableLSNTracksSync(t *testing.T) {
	l, _, task := testLog(t, 16)
	if _, err := l.Append(task, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() != 0 {
		t.Fatal("durable before sync")
	}
	if err := l.Sync(task); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() != 1 {
		t.Fatalf("durable = %d", l.DurableLSN())
	}
}

func TestSyncedRecordsSurviveCrash(t *testing.T) {
	l, dev, task := testLog(t, 16)
	if _, err := l.Append(task, []byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(task); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(task, []byte("maybe-lost")); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	l2, err := New(dev, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := l2.ReadAll(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 1 || string(recs[0]) != "keep-me" {
		t.Fatalf("synced record lost: %q", recs)
	}
}

func TestLargeRecordSpansPages(t *testing.T) {
	l, _, task := testLog(t, 16)
	big := bytes.Repeat([]byte{0xB6}, 1700) // > 3 log pages at 512B
	if _, err := l.Append(task, big); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(task, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(task); err != nil {
		t.Fatal(err)
	}
	recs, err := l.ReadAll(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !bytes.Equal(recs[0], big) || string(recs[1]) != "after" {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestAppendFullRing(t *testing.T) {
	l, _, task := testLog(t, 2)
	if _, err := l.Append(task, make([]byte, 2000)); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestRingFullAndTruncate(t *testing.T) {
	l, _, task := testLog(t, 2)
	rec := make([]byte, 200)
	sawFull := false
	for i := 0; i < 50; i++ {
		if _, err := l.Append(task, rec); err != nil {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("ring never filled")
	}
	if err := l.Truncate(task); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(task, rec); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	if err := l.Sync(task); err != nil {
		t.Fatal(err)
	}
	recs, err := l.ReadAll(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("after truncate read %d records", len(recs))
	}
}

func TestPartialPageRewrittenBySync(t *testing.T) {
	l, _, task := testLog(t, 16)
	if _, err := l.Append(task, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(task); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(task, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(task); err != nil {
		t.Fatal(err)
	}
	recs, err := l.ReadAll(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "one" || string(recs[1]) != "two" {
		t.Fatalf("records = %q", recs)
	}
}

func TestPagesWrittenCounts(t *testing.T) {
	l, _, task := testLog(t, 16)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(task, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(task); err != nil {
			t.Fatal(err)
		}
	}
	if l.PagesWritten() < 5 {
		t.Fatalf("pages written = %d", l.PagesWritten())
	}
}

func TestNewValidation(t *testing.T) {
	_, dev, _ := testLog(t, 16)
	if _, err := New(dev, 0, 1); err == nil {
		t.Fatal("1-page log accepted")
	}
}
