// Package qos provides per-tenant fair-share admission ahead of the
// device queue. A multi-tenant front-end (cmd/shareserver) funnels every
// tenant's commands into one simulated SSD; without admission control a
// tenant issuing large or frequent commands starves the others at the
// device FIFO. FairShare implements ssd.Admission with a start-time-fair
// policy: each tenant is billed the device service time it consumes, and
// a command from a tenant whose bill runs ahead of the least-billed
// *present* tenant by more than a quantum has its start delayed — the
// submitting task's virtual clock is advanced to the time the lagging
// tenant, consuming continuously, would have caught up.
//
// Delaying the start tag instead of parking the goroutine keeps the
// controller deadlock-free by construction: no command ever waits on a
// wakeup that another tenant may never deliver. In scheduler mode the
// advanced clock pushes the command behind other tenants' earlier
// arrivals (the scheduler always runs the earliest clock), so shaping is
// exact and deterministic; in solo mode the penalty lands in the
// command's measured virtual latency the same way queueing at a busy
// device resource does. The penalty is recomputed per command, so a
// one-off overshoot (the lagging tenant stops consuming) corrects itself
// at the next admit.
//
// Idle tenants earn no credit: on return from a real idle period — more
// than a quantum of virtual time since the tenant's last completion — a
// tenant's bill is bumped up to the present minimum, so sleeping does
// not bank burst capacity (the classic start-time fair queueing rule).
// The same grace window keeps a closed-loop client, which is "inactive"
// for zero virtual width between a completion and its next submit, both
// billed continuously and counted in the minimum that throttles others.
package qos

import (
	"share/internal/sim"
)

// FairShare is a per-tenant admission gate. Install on a device with
// ssd.Device.SetAdmission. The zero value is not usable; construct with
// NewFairShare.
type FairShare struct {
	quantum sim.Duration

	mu  sim.Mutex
	ten map[string]*tenantState

	admits    int64        // total tagged commands admitted
	throttles int64        // commands that were delayed
	delayed   sim.Duration // total virtual time of start delays
}

type tenantState struct {
	consumed sim.Duration // billed device service time
	active   int          // commands submitted and not yet completed
	lastDone int64        // virtual time of the last completion
}

// DefaultQuantum bounds how far one tenant's billed service may run
// ahead of the least-billed present tenant. Larger values admit burstier
// schedules; smaller values interleave tenants more strictly at the cost
// of more frequent delays.
const DefaultQuantum = 2 * sim.Millisecond

// NewFairShare returns a controller with the given fairness quantum;
// quantum <= 0 selects DefaultQuantum.
func NewFairShare(quantum sim.Duration) *FairShare {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &FairShare{quantum: quantum, ten: make(map[string]*tenantState)}
}

// minPresentLocked returns the smallest bill among present tenants: those
// with commands in flight, or whose last completion is within the grace
// window of now (a closed-loop client between ops). ok is false when no
// tenant is present. Callers hold f.mu.
func (f *FairShare) minPresentLocked(now int64) (sim.Duration, bool) {
	var min sim.Duration
	found := false
	for _, u := range f.ten {
		if u.active == 0 && now-u.lastDone > f.quantum {
			continue
		}
		if !found || u.consumed < min {
			min = u.consumed
			found = true
		}
	}
	return min, found
}

// Admit delays task t's command start until its tenant is within quantum
// of the least-billed present tenant's consumption horizon. Commands with
// an empty tenant bypass the gate entirely (single-tenant stacks pay
// nothing).
func (f *FairShare) Admit(t *sim.Task, tenant string) {
	if tenant == "" {
		return
	}
	f.mu.Lock(t)
	u := f.ten[tenant]
	if u == nil {
		u = &tenantState{lastDone: -1 << 62} // never completed: no grace
		f.ten[tenant] = u
	}
	if u.active == 0 && t.Now()-u.lastDone > f.quantum {
		// Returning from a real idle period (or arriving for the first
		// time): forfeit banked credit so a long-idle tenant cannot burst
		// past the tenants that kept working, and a newcomer does not
		// drag the minimum down and stall everyone while it catches up
		// from zero.
		if m, ok := f.minPresentLocked(t.Now()); ok && u.consumed < m {
			u.consumed = m
		}
	}
	u.active++
	var delay sim.Duration
	if m, _ := f.minPresentLocked(t.Now()); u.consumed-m > f.quantum {
		// The lagging tenant consumes service continuously while present,
		// so it reaches our bill minus the quantum after this much more
		// virtual time. Push this command's start tag there.
		delay = u.consumed - m - f.quantum
		f.throttles++
		f.delayed += delay
	}
	f.admits++
	f.mu.Unlock(t)
	if delay > 0 {
		t.Advance(delay)
	}
}

// Done bills the tenant for the service time its command consumed and
// records the completion time that keeps a closed-loop tenant present
// through its zero-width resubmit gap.
func (f *FairShare) Done(t *sim.Task, tenant string, svc sim.Duration) {
	if tenant == "" {
		return
	}
	f.mu.Lock(t)
	u := f.ten[tenant]
	if u == nil || u.active == 0 {
		f.mu.Unlock(t)
		panic("qos: Done without matching Admit for tenant " + tenant)
	}
	u.consumed += svc
	u.active--
	if t.Now() > u.lastDone {
		u.lastDone = t.Now()
	}
	f.mu.Unlock(t)
}

// Stats is a point-in-time snapshot of the controller.
type Stats struct {
	Admits    int64                   // tagged commands admitted
	Throttles int64                   // commands whose start was delayed
	Delayed   sim.Duration            // total virtual start-delay imposed
	Consumed  map[string]sim.Duration // billed service time per tenant
}

// Stats snapshots admission counters and per-tenant bills.
func (f *FairShare) Stats(t *sim.Task) Stats {
	f.mu.Lock(t)
	defer f.mu.Unlock(t)
	st := Stats{
		Admits:    f.admits,
		Throttles: f.throttles,
		Delayed:   f.delayed,
		Consumed:  make(map[string]sim.Duration, len(f.ten)),
	}
	for name, u := range f.ten {
		st.Consumed[name] = u.consumed
	}
	return st
}
