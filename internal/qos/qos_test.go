package qos

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"share/internal/sim"
	"share/internal/ssd"
)

// TestFairShareBoundsSkew: a hog submitting from four parallel streams
// consumes device service four times faster than a single-stream light
// tenant, so the gate must delay it. While the light tenant is present, the
// hog's billed service may not run ahead of the light tenant's by more
// than quantum plus the commands already in flight when the cap was
// crossed.
func TestFairShareBoundsSkew(t *testing.T) {
	const quantum = 1 * sim.Millisecond
	const hogSvc = 200 * sim.Microsecond
	const lightSvc = 50 * sim.Microsecond
	const hogStreams = 4
	const hogOps = 100 // per stream
	const lightOps = 400
	f := NewFairShare(quantum)

	sched := sim.NewScheduler()
	for s := 0; s < hogStreams; s++ {
		sched.Go(fmt.Sprintf("hog%d", s), func(task *sim.Task) {
			for i := 0; i < hogOps; i++ {
				f.Admit(task, "hog")
				task.Advance(hogSvc)
				f.Done(task, "hog", hogSvc)
			}
		})
	}
	var hogAtLightDone sim.Duration
	sched.Go("light", func(task *sim.Task) {
		for i := 0; i < lightOps; i++ {
			f.Admit(task, "light")
			task.Advance(lightSvc)
			f.Done(task, "light", lightSvc)
		}
		hogAtLightDone = f.Stats(task).Consumed["hog"]
	})
	sched.Run()

	task := sim.NewSoloTask("check")
	st := f.Stats(task)
	if want := int64(hogStreams*hogOps + lightOps); st.Admits != want {
		t.Fatalf("Admits = %d, want %d", st.Admits, want)
	}
	if st.Throttles == 0 {
		t.Fatal("Throttles = 0: the hog was never delayed")
	}
	const lightTotal = lightOps * lightSvc
	// At the moment the light tenant finished its last command it had
	// lightTotal billed; the hog may lead by quantum plus its in-flight
	// commands at that instant.
	if maxHog := lightTotal + quantum + hogStreams*hogSvc; hogAtLightDone > maxHog {
		t.Fatalf("hog consumed %dus while light was active, cap %dus",
			hogAtLightDone/sim.Microsecond, maxHog/sim.Microsecond)
	}
	// After the light tenant went idle the hog free-runs to completion.
	if want := sim.Duration(hogStreams * hogOps * hogSvc); st.Consumed["hog"] != want {
		t.Fatalf("hog total = %d, want %d", st.Consumed["hog"], want)
	}
	t.Logf("hog@light-done=%dus light-total=%dus throttles=%d delayed=%dus",
		hogAtLightDone/sim.Microsecond, lightTotal/sim.Microsecond, st.Throttles, st.Delayed/sim.Microsecond)
}

// TestFairShareSingleTenantNeverParks: with one tenant (or untagged
// commands) the gate must be free.
func TestFairShareSingleTenantNeverParks(t *testing.T) {
	f := NewFairShare(0)
	task := sim.NewSoloTask("solo")
	for i := 0; i < 100; i++ {
		f.Admit(task, "only")
		f.Done(task, "only", 1*sim.Millisecond)
		f.Admit(task, "") // untagged bypasses entirely
		f.Done(task, "", 1*sim.Millisecond)
	}
	st := f.Stats(task)
	if st.Throttles != 0 {
		t.Fatalf("Throttles = %d, want 0 for a single tenant", st.Throttles)
	}
	if st.Admits != 100 {
		t.Fatalf("Admits = %d, want 100 (untagged commands are not counted)", st.Admits)
	}
}

// TestFairShareSoloRace hammers the controller from real goroutines under
// -race: many workers across few tenants, with idle gaps (workers drop
// out and return) to exercise the idle-credit-forfeit path.
func TestFairShareSoloRace(t *testing.T) {
	f := NewFairShare(200 * sim.Microsecond)
	const workers = 8
	const tenants = 3
	const ops = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			task := sim.NewSoloTask(fmt.Sprintf("w%d", w))
			tenant := fmt.Sprintf("t%d", w%tenants)
			rng := rand.New(rand.NewSource(int64(77 + w)))
			for i := 0; i < ops; i++ {
				svc := sim.Duration(10+rng.Intn(90)) * sim.Microsecond
				f.Admit(task, tenant)
				task.Advance(svc)
				f.Done(task, tenant, svc)
			}
		}(w)
	}
	wg.Wait()
	task := sim.NewSoloTask("check")
	st := f.Stats(task)
	if st.Admits != workers*ops {
		t.Fatalf("Admits = %d, want %d", st.Admits, workers*ops)
	}
	var total sim.Duration
	for _, c := range st.Consumed {
		total += c
	}
	if total == 0 {
		t.Fatal("no service billed")
	}
}

// TestFairShareOnDevice wires the controller into a real simulated SSD:
// two tenants submit concurrently through the admission gate; both finish
// and both get billed.
func TestFairShareOnDevice(t *testing.T) {
	cfg := ssd.DefaultConfig(256)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	dev, err := ssd.New("qos", cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFairShare(500 * sim.Microsecond)
	dev.SetAdmission(f)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, tenant := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			task := sim.NewSoloTask(tenant)
			task.SetTenant(tenant)
			buf := make([]byte, 512)
			copy(buf, tenant)
			for i := 0; i < 64; i++ {
				if err := dev.WritePage(task, uint32(i), buf); err != nil {
					errs <- err
					return
				}
			}
		}(tenant)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("check")
	st := f.Stats(task)
	if st.Consumed["alpha"] == 0 || st.Consumed["beta"] == 0 {
		t.Fatalf("both tenants must be billed: %v", st.Consumed)
	}
	if st.Admits != 128 {
		t.Fatalf("Admits = %d, want 128", st.Admits)
	}
}
