package couch

import (
	"sync/atomic"

	"share/internal/core"
	"share/internal/sim"
	"share/internal/ssd"
)

// CompactStats reports one compaction run.
type CompactStats struct {
	Elapsed      sim.Duration // virtual time spent
	DocsMoved    int64
	BytesWritten int64 // host bytes written to the device during compaction
	SharePairs   int64 // documents transferred by remapping (SHARE mode)
}

// Compact rewrites the database into a new file containing only live
// data, then atomically swaps it in.
//
// Original mode reads every live document and writes it into the new
// file, rebuilding the index — the heavy copy the paper measures in
// Table 2. SHARE mode fallocates the new file, reads only each document's
// header page (the length check §5.3.2 describes), transfers the document
// bodies by SHARE remapping, and writes just the new index nodes.
func (s *Store) Compact(t *sim.Task) (CompactStats, error) {
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	if s.degraded.Load() {
		return CompactStats{}, ErrReadOnly
	}
	cs, err := s.compact(t)
	return cs, s.noteDeviceErr(err)
}

func (s *Store) compact(t *sim.Task) (CompactStats, error) {
	var cs CompactStats
	// The open batch references current file offsets; make it durable
	// before the file is rewritten.
	if err := s.commitLocked(t); err != nil {
		return cs, err
	}
	start := t.Now()
	devBefore := s.fs.Device().Stats()

	tmpName := s.cfg.Name + ".compact"
	if s.fs.Exists(tmpName) {
		// A crashed compaction leaves a partial file; restart from scratch
		// (§4.3: "the partially compacted new file is deleted and the
		// whole compaction process restarts").
		if err := s.fs.Remove(t, tmpName); err != nil {
			return cs, err
		}
	}
	dst, err := s.fs.Create(t, tmpName)
	if err != nil {
		return cs, err
	}
	if s.cfg.StreamHints && s.fs.Device().Streams() > 1 {
		// Compaction output is live-only data that will sit cold until the
		// next compaction; keep it out of the append stream's blocks.
		dst.SetStream(streamCompact)
	}

	var entries []entryKV
	var dstEOF int64

	if s.cfg.ShareMode {
		// Pass 1: size the document area and fallocate it.
		var total int64
		if err := s.walkDocs(t, func(key []byte, ref docRef) error {
			total += int64(ref.pages) * int64(s.page)
			return nil
		}); err != nil {
			return cs, err
		}
		if total > 0 {
			if err := dst.Allocate(t, 0, total); err != nil {
				return cs, err
			}
		}
		// Pass 2: remap every live document into the new file. The header
		// page of each document is read from the old file to obtain the
		// length for the share command.
		hdr := make([]byte, s.page)
		var pairs []ssd.Pair
		if err := s.walkDocs(t, func(key []byte, ref docRef) error {
			if _, err := s.file.ReadAt(t, hdr, ref.off); err != nil {
				return err
			}
			bytes := int64(ref.pages) * int64(s.page)
			se, err := s.file.MapRange(ref.off, bytes)
			if err != nil {
				return err
			}
			de, err := dst.MapRange(dstEOF, bytes)
			if err != nil {
				return err
			}
			di, si := 0, 0
			var dOff, sOff uint32
			for di < len(de) && si < len(se) {
				run := de[di].Len - dOff
				if r := se[si].Len - sOff; r < run {
					run = r
				}
				pairs = append(pairs, ssd.Pair{Dst: de[di].Start + dOff, Src: se[si].Start + sOff, Len: run})
				dOff += run
				sOff += run
				if dOff == de[di].Len {
					di++
					dOff = 0
				}
				if sOff == se[si].Len {
					si++
					sOff = 0
				}
			}
			k := append([]byte(nil), key...)
			entries = append(entries, entryKV{key: k, ref: docRef{off: dstEOF, pages: ref.pages, vlen: ref.vlen}})
			dstEOF += bytes
			cs.DocsMoved++
			cs.SharePairs++
			return nil
		}); err != nil {
			return cs, err
		}
		if err := core.ShareAll(t, s.fs.Device(), pairs); err != nil {
			return cs, err
		}
	} else {
		// Original couchstore compaction: physically copy every live doc.
		if err := s.walkDocs(t, func(key []byte, ref docRef) error {
			buf := make([]byte, int(ref.pages)*int(s.page))
			if _, err := s.file.ReadAt(t, buf, ref.off); err != nil {
				return err
			}
			if _, err := dst.WriteAt(t, buf, dstEOF); err != nil {
				return err
			}
			k := append([]byte(nil), key...)
			entries = append(entries, entryKV{key: k, ref: docRef{off: dstEOF, pages: ref.pages, vlen: ref.vlen}})
			dstEOF += int64(len(buf))
			cs.DocsMoved++
			return nil
		}); err != nil {
			return cs, err
		}
	}

	// Rebuild the index into the new file the way couchstore does: by
	// inserting every key into a fresh copy-on-write tree and flushing it
	// periodically. The wandering-tree appends make the index build cost
	// real I/O in both modes — in SHARE mode it is the only write traffic
	// compaction produces.
	old := s.file
	oldName := s.cfg.Name
	s.file = dst
	s.eof = dstEOF
	s.stale = 0
	s.root = newLeaf()
	s.nodeCache = make(map[int64]*node)
	for i, e := range entries {
		if err := s.treeInsert(t, e.key, e.ref); err != nil {
			return cs, err
		}
		if (i+1)%compactFlushEvery == 0 {
			if err := s.writeHeader(t); err != nil {
				return cs, err
			}
		}
	}
	if err := s.writeHeader(t); err != nil {
		return cs, err
	}
	if err := dst.Sync(t); err != nil {
		return cs, err
	}

	// Swap: drop the old file, move the new one into place.
	if err := s.fs.Remove(t, oldName); err != nil {
		return cs, err
	}
	if err := s.fs.Rename(t, tmpName, oldName); err != nil {
		return cs, err
	}
	if err := s.fs.SyncMeta(t); err != nil {
		return cs, err
	}
	_ = old
	if s.cfg.StreamHints && s.fs.Device().Streams() > 1 {
		// The new file is the append log now; fresh appends are hot again.
		s.file.SetStream(streamAppend)
	}
	atomic.AddInt64(&s.st.Compactions, 1)
	// Outstanding snapshots reference the removed file; fence them.
	s.compactEpoch.Add(1)

	devAfter := s.fs.Device().Stats()
	cs.BytesWritten = (devAfter.FTL.HostWrites - devBefore.FTL.HostWrites) * int64(s.page)
	cs.Elapsed = t.Now() - start
	return cs, nil
}

// entryKV is one live document carried through compaction.
type entryKV struct {
	key []byte
	ref docRef // reference in the new file
}

// compactFlushEvery is how many documents are indexed between header
// flushes while rebuilding the compaction index (couchstore's batched
// commit during compaction).
const compactFlushEvery = 1000
