package couch

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"share/internal/fsim"
	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

func testStore(t *testing.T, blocks int, mut func(*Config)) (*Store, *ssd.Device, *sim.Task) {
	t.Helper()
	cfg := ssd.DefaultConfig(blocks)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	dev, err := ssd.New("couch", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	fs, err := fsim.Format(task, dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := Config{BatchSize: 1}
	if mut != nil {
		mut(&ccfg)
	}
	st, err := Open(task, fs, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, dev, task
}

func val(i, size int) []byte {
	v := bytes.Repeat([]byte{byte('a' + i%26)}, size)
	copy(v, fmt.Sprintf("v%06d|", i))
	return v
}

func TestSetGetRoundTrip(t *testing.T) {
	for _, share := range []bool{false, true} {
		t.Run(fmt.Sprintf("share=%v", share), func(t *testing.T) {
			s, _, task := testStore(t, 256, func(c *Config) { c.ShareMode = share })
			for i := 0; i < 100; i++ {
				if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 300)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 100; i++ {
				v, ok, err := s.Get(task, []byte(fmt.Sprintf("user%04d", i)))
				if err != nil || !ok {
					t.Fatalf("get %d: %v %v", i, ok, err)
				}
				if !bytes.Equal(v, val(i, 300)) {
					t.Fatalf("doc %d mismatch", i)
				}
			}
			if s.DocCount() != 100 {
				t.Fatalf("docs = %d", s.DocCount())
			}
			if _, ok, _ := s.Get(task, []byte("missing")); ok {
				t.Fatal("phantom doc")
			}
		})
	}
}

func TestUpdatesVisible(t *testing.T) {
	for _, share := range []bool{false, true} {
		t.Run(fmt.Sprintf("share=%v", share), func(t *testing.T) {
			s, _, task := testStore(t, 256, func(c *Config) { c.ShareMode = share; c.DocCacheEntries = 0 })
			key := []byte("doc1")
			for i := 0; i < 20; i++ {
				if err := s.Set(task, key, val(i, 400)); err != nil {
					t.Fatal(err)
				}
				v, ok, err := s.Get(task, key)
				if err != nil || !ok || !bytes.Equal(v, val(i, 400)) {
					t.Fatalf("iter %d: get mismatch (%v %v)", i, ok, err)
				}
			}
			if s.DocCount() != 1 {
				t.Fatalf("docs = %d", s.DocCount())
			}
		})
	}
}

func TestShareModeAvoidsTreeWrites(t *testing.T) {
	load := func(share bool) (nodePages int64, docPages int64) {
		s, _, task := testStore(t, 512, func(c *Config) {
			c.ShareMode = share
			c.BatchSize = 1
			c.DocCacheEntries = 0
		})
		// Load 200 docs (inserts go through the tree in both modes).
		for i := 0; i < 200; i++ {
			if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 900)); err != nil {
				t.Fatal(err)
			}
		}
		base := s.Stats()
		// Update phase: this is where the modes diverge.
		for i := 0; i < 200; i++ {
			if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i*7%200)), val(i+1000, 900)); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		return st.NodePagesWritten - base.NodePagesWritten, st.DocPagesWritten - base.DocPagesWritten
	}
	origNodes, origDocs := load(false)
	shareNodes, shareDocs := load(true)
	if origNodes == 0 {
		t.Fatal("original mode wrote no index nodes")
	}
	if shareNodes != 0 {
		t.Fatalf("share mode wrote %d node pages during updates; want 0", shareNodes)
	}
	if origDocs != shareDocs {
		t.Fatalf("doc writes differ: %d vs %d", origDocs, shareDocs)
	}
}

func TestBatchSizeReducesOriginalWrites(t *testing.T) {
	run := func(batch int) int64 {
		s, dev, task := testStore(t, 512, func(c *Config) {
			c.BatchSize = batch
			c.DocCacheEntries = 0
		})
		for i := 0; i < 100; i++ {
			if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 900)); err != nil {
				t.Fatal(err)
			}
		}
		dev.ResetStats()
		for i := 0; i < 200; i++ {
			if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i%100)), val(i, 900)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Commit(task); err != nil {
			t.Fatal(err)
		}
		return dev.Stats().FTL.HostWrites
	}
	small := run(1)
	big := run(32)
	if big >= small {
		t.Fatalf("batch 32 wrote %d pages, batch 1 wrote %d; batching should amortize tree writes", big, small)
	}
}

func TestCommittedDataSurvivesCrash(t *testing.T) {
	for _, share := range []bool{false, true} {
		t.Run(fmt.Sprintf("share=%v", share), func(t *testing.T) {
			s, dev, task := testStore(t, 512, func(c *Config) {
				c.ShareMode = share
				c.BatchSize = 4
			})
			for i := 0; i < 60; i++ {
				if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i%20)), val(i, 700)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Commit(task); err != nil {
				t.Fatal(err)
			}
			dev.Crash()
			if err := dev.Recover(task); err != nil {
				t.Fatal(err)
			}
			fs2, err := fsim.Mount(task, dev)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Open(task, fs2, Config{ShareMode: share, BatchSize: 4})
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 20; k++ {
				// Last write to each key: find the largest i with i%20==k.
				last := 40 + k
				v, ok, err := s2.Get(task, []byte(fmt.Sprintf("user%04d", k)))
				if err != nil || !ok {
					t.Fatalf("key %d lost: %v %v", k, ok, err)
				}
				if !bytes.Equal(v, val(last, 700)) {
					t.Fatalf("key %d stale content", k)
				}
			}
		})
	}
}

func TestUncommittedBatchLostOnCrash(t *testing.T) {
	s, dev, task := testStore(t, 512, func(c *Config) { c.BatchSize = 100 })
	if err := s.Set(task, []byte("committed"), val(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(task); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(task, []byte("uncommitted"), val(2, 100)); err != nil {
		t.Fatal(err)
	}
	// No commit: crash.
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	fs2, err := fsim.Mount(task, dev)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(task, fs2, Config{BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s2.Get(task, []byte("committed")); !ok {
		t.Fatal("committed doc lost")
	}
	if _, ok, _ := s2.Get(task, []byte("uncommitted")); ok {
		t.Fatal("uncommitted doc visible after crash")
	}
}

func TestStaleRatioGrowsSlowerWithShare(t *testing.T) {
	grow := func(share bool) float64 {
		s, _, task := testStore(t, 512, func(c *Config) {
			c.ShareMode = share
			c.DocCacheEntries = 0
		})
		for i := 0; i < 100; i++ {
			if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 900)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 200; i++ {
			if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i%100)), val(i, 900)); err != nil {
				t.Fatal(err)
			}
		}
		return s.StaleRatio()
	}
	orig := grow(false)
	shared := grow(true)
	if shared >= orig {
		t.Fatalf("stale ratio with SHARE (%.2f) not below original (%.2f)", shared, orig)
	}
}

func TestCompactionOriginal(t *testing.T) {
	s, _, task := testStore(t, 1024, func(c *Config) { c.DocCacheEntries = 0 })
	for i := 0; i < 80; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 900)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 240; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i%80)), val(i+500, 900)); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := s.FileSize()
	cs, err := s.Compact(task)
	if err != nil {
		t.Fatal(err)
	}
	if cs.DocsMoved != 80 {
		t.Fatalf("moved %d docs", cs.DocsMoved)
	}
	if s.FileSize() >= sizeBefore {
		t.Fatalf("compaction did not shrink file: %d -> %d", sizeBefore, s.FileSize())
	}
	if s.StaleRatio() != 0 {
		t.Fatalf("stale ratio after compaction = %f", s.StaleRatio())
	}
	for i := 0; i < 80; i++ {
		want := val(160+i+500, 900) // last writer of key i: i+160 in update loop
		_ = want
		v, ok, err := s.Get(task, []byte(fmt.Sprintf("user%04d", i)))
		if err != nil || !ok {
			t.Fatalf("key %d lost after compaction: %v %v", i, ok, err)
		}
		if len(v) != 900 {
			t.Fatalf("key %d truncated", i)
		}
	}
}

func TestCompactionShareZeroCopy(t *testing.T) {
	s, dev, task := testStore(t, 1024, func(c *Config) {
		c.ShareMode = true
		c.DocCacheEntries = 0
	})
	for i := 0; i < 80; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 900)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 240; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i%80)), val(i+500, 900)); err != nil {
			t.Fatal(err)
		}
	}
	before := dev.Stats()
	cs, err := s.Compact(task)
	if err != nil {
		t.Fatal(err)
	}
	after := dev.Stats()
	dataWrites := after.FTL.HostWrites - before.FTL.HostWrites
	// Only index nodes, headers and fs metadata may be written — far less
	// than the ~160 doc pages that a copy would need.
	if dataWrites > 60 {
		t.Fatalf("share compaction wrote %d pages; expected only index/meta", dataWrites)
	}
	if cs.SharePairs != 80 {
		t.Fatalf("share pairs = %d", cs.SharePairs)
	}
	for i := 0; i < 80; i++ {
		v, ok, err := s.Get(task, []byte(fmt.Sprintf("user%04d", i)))
		if err != nil || !ok || len(v) != 900 {
			t.Fatalf("key %d bad after share compaction: %v %v", i, ok, err)
		}
	}
}

func TestCompactionPreservesAcrossCrash(t *testing.T) {
	for _, share := range []bool{false, true} {
		t.Run(fmt.Sprintf("share=%v", share), func(t *testing.T) {
			s, dev, task := testStore(t, 1024, func(c *Config) { c.ShareMode = share })
			for i := 0; i < 50; i++ {
				if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 600)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 100; i++ {
				if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i%50)), val(i+99, 600)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Compact(task); err != nil {
				t.Fatal(err)
			}
			dev.Crash()
			if err := dev.Recover(task); err != nil {
				t.Fatal(err)
			}
			fs2, err := fsim.Mount(task, dev)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Open(task, fs2, Config{ShareMode: share})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				v, ok, err := s2.Get(task, []byte(fmt.Sprintf("user%04d", i)))
				if err != nil || !ok {
					t.Fatalf("key %d lost: %v %v", i, ok, err)
				}
				if !bytes.Equal(v, val(50+i+99, 600)) {
					t.Fatalf("key %d content wrong after compaction+crash", i)
				}
			}
		})
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	for _, share := range []bool{false, true} {
		t.Run(fmt.Sprintf("share=%v", share), func(t *testing.T) {
			s, _, task := testStore(t, 1024, func(c *Config) {
				c.ShareMode = share
				c.BatchSize = 3
				c.DocCacheEntries = 8
			})
			rng := rand.New(rand.NewSource(21))
			model := map[string][]byte{}
			for step := 0; step < 600; step++ {
				k := fmt.Sprintf("user%03d", rng.Intn(80))
				switch rng.Intn(10) {
				case 0:
					if _, err := s.Delete(task, []byte(k)); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				case 1:
					if s.NeedsCompaction() {
						if _, err := s.Compact(task); err != nil {
							t.Fatal(err)
						}
					}
				default:
					v := val(step, 200+rng.Intn(500))
					if err := s.Set(task, []byte(k), v); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				}
			}
			if err := s.Commit(task); err != nil {
				t.Fatal(err)
			}
			for k, v := range model {
				got, ok, err := s.Get(task, []byte(k))
				if err != nil || !ok {
					t.Fatalf("key %s: %v %v", k, ok, err)
				}
				if !bytes.Equal(got, v) {
					t.Fatalf("key %s mismatch", k)
				}
			}
			if int64(len(model)) != s.DocCount() {
				t.Fatalf("doc count %d, model %d", s.DocCount(), len(model))
			}
		})
	}
}

func TestTreeDepthGrows(t *testing.T) {
	s, _, task := testStore(t, 2048, func(c *Config) { c.BatchSize = 64 })
	for i := 0; i < 3000; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%08d", i)), val(i, 60)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(task); err != nil {
		t.Fatal(err)
	}
	h, err := s.Height(task)
	if err != nil {
		t.Fatal(err)
	}
	if h < 3 {
		t.Fatalf("height = %d; want a real tree", h)
	}
}

func TestCrashMidCompactionRestarts(t *testing.T) {
	// §4.3: "Upon crashing during this compaction, the partially compacted
	// new file is deleted and the whole compaction process restarts."
	// Simulate the crash by leaving a partial .compact file behind, then
	// reopening and compacting again.
	for _, share := range []bool{false, true} {
		t.Run(fmt.Sprintf("share=%v", share), func(t *testing.T) {
			s, dev, task := testStore(t, 1024, func(c *Config) { c.ShareMode = share })
			for i := 0; i < 60; i++ {
				if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 700)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 120; i++ {
				if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i%60)), val(i+200, 700)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Commit(task); err != nil {
				t.Fatal(err)
			}
			// Fake a crashed compaction: a partial new file exists.
			partial, err := s.fs.Create(task, s.cfg.Name+".compact")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := partial.WriteAt(task, make([]byte, 5*512), 0); err != nil {
				t.Fatal(err)
			}
			if err := s.fs.SyncMeta(task); err != nil {
				t.Fatal(err)
			}
			dev.Crash()
			if err := dev.Recover(task); err != nil {
				t.Fatal(err)
			}
			fs2, err := fsim.Mount(task, dev)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Open(task, fs2, Config{ShareMode: share})
			if err != nil {
				t.Fatal(err)
			}
			// The restarted compaction must discard the partial file and
			// complete correctly.
			cs, err := s2.Compact(task)
			if err != nil {
				t.Fatal(err)
			}
			if cs.DocsMoved != 60 {
				t.Fatalf("moved %d docs", cs.DocsMoved)
			}
			if fs2.Exists(s2.cfg.Name + ".compact") {
				t.Fatal("partial compaction file left behind")
			}
			for i := 0; i < 60; i++ {
				v, ok, err := s2.Get(task, []byte(fmt.Sprintf("user%04d", i)))
				if err != nil || !ok {
					t.Fatalf("key %d lost: %v %v", i, ok, err)
				}
				if !bytes.Equal(v, val(60+i+200, 700)) {
					t.Fatalf("key %d content wrong after restart", i)
				}
			}
		})
	}
}

// TestCompactionCrashAtEveryBoundary power-cuts a compaction after every
// program/erase the device performs (a seeded sample in short mode) and
// checks that the reopened store always serves the full committed
// document set — the recovered tree is the pre-compaction one, the
// post-compaction one, or a restartable intermediate, but never loses or
// corrupts a document.
func TestCompactionCrashAtEveryBoundary(t *testing.T) {
	for _, share := range []bool{false, true} {
		t.Run(fmt.Sprintf("share=%v", share), func(t *testing.T) {
			build := func() (*Store, *ssd.Device, *sim.Task, map[string][]byte) {
				s, dev, task := testStore(t, 1024, func(c *Config) {
					c.ShareMode = share
					c.DocCacheEntries = 0
				})
				docs := map[string][]byte{}
				for i := 0; i < 40; i++ {
					k := fmt.Sprintf("user%04d", i)
					v := val(i, 600)
					if err := s.Set(task, []byte(k), v); err != nil {
						t.Fatal(err)
					}
					docs[k] = v
				}
				for i := 0; i < 80; i++ {
					k := fmt.Sprintf("user%04d", i%40)
					v := val(i+300, 600)
					if err := s.Set(task, []byte(k), v); err != nil {
						t.Fatal(err)
					}
					docs[k] = v
				}
				if err := s.Commit(task); err != nil {
					t.Fatal(err)
				}
				return s, dev, task, docs
			}

			// Measure the boundary space with an uninterrupted run.
			s0, dev0, task0, _ := build()
			opsBefore := dev0.MutatingOps()
			if _, err := s0.Compact(task0); err != nil {
				t.Fatal(err)
			}
			total := int(dev0.MutatingOps() - opsBefore)
			if total == 0 {
				t.Fatal("compaction performed no device mutations")
			}

			step := 1
			if testing.Short() {
				step = total/16 + 1
			}
			for cut := 1; cut <= total; cut += step {
				s, dev, task, docs := build()
				dev.PowerCutAfter(int64(cut))
				_, cErr := s.Compact(task)
				dev.DisablePowerCut()
				dev.Crash()
				if err := dev.Recover(task); err != nil {
					t.Fatalf("cut %d/%d: device recovery: %v", cut, total, err)
				}
				fs2, err := fsim.Mount(task, dev)
				if err != nil {
					t.Fatalf("cut %d/%d: mount: %v", cut, total, err)
				}
				if err := fs2.Fsck(); err != nil {
					t.Fatalf("cut %d/%d: fsck: %v", cut, total, err)
				}
				s2, err := Open(task, fs2, Config{ShareMode: share, DocCacheEntries: 0})
				if err != nil {
					t.Fatalf("cut %d/%d (compact err %v): reopen: %v", cut, total, cErr, err)
				}
				if got := s2.DocCount(); got != int64(len(docs)) {
					t.Fatalf("cut %d/%d: doc count %d, want %d", cut, total, got, len(docs))
				}
				for k, v := range docs {
					got, ok, err := s2.Get(task, []byte(k))
					if err != nil || !ok {
						t.Fatalf("cut %d/%d: doc %s lost: %v %v", cut, total, k, ok, err)
					}
					if !bytes.Equal(got, v) {
						t.Fatalf("cut %d/%d: doc %s corrupted", cut, total, k)
					}
				}
				// A restarted compaction completes from any recovered state.
				if cut == 1 || cut == total {
					if cs, err := s2.Compact(task); err != nil {
						t.Fatalf("cut %d/%d: restarted compaction: %v", cut, total, err)
					} else if cs.DocsMoved != int64(len(docs)) {
						t.Fatalf("cut %d/%d: restarted compaction moved %d docs", cut, total, cs.DocsMoved)
					}
				}
			}
		})
	}
}

// TestCouchReadOnlyDegradation exhausts the device's spare blocks and
// checks graceful degradation: Set/Delete/Commit/Compact fail fast with
// ErrReadOnly while Get and Scan keep serving committed documents.
func TestCouchReadOnlyDegradation(t *testing.T) {
	cfg := ssd.DefaultConfig(1024)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.FTL.SpareBlocks = 1
	dev, err := ssd.New("couch", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	fs, err := fsim.Format(task, dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(task, fs, Config{BatchSize: 1, DocCacheEntries: 0})
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string][]byte{}
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("user%04d", i)
		v := val(i, 600)
		if err := s.Set(task, []byte(k), v); err != nil {
			t.Fatal(err)
		}
		docs[k] = v
	}
	if err := s.Commit(task); err != nil {
		t.Fatal(err)
	}
	for round := 0; !dev.ReadOnly() && round < 10; round++ {
		if err := dev.SetFaultPlan(nand.NewFaultPlan(int64(round+1)).AtProgram(1, nand.FaultProgramPermanent)); err != nil {
			t.Fatal(err)
		}
		_ = s.Set(task, []byte("wear"), val(round, 600))
	}
	if err := dev.SetFaultPlan(nil); err != nil {
		t.Fatal(err)
	}
	if !dev.ReadOnly() {
		t.Fatal("device did not degrade to read-only")
	}
	if err := s.Set(task, []byte("late"), val(1, 100)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Set error = %v, want ErrReadOnly", err)
	}
	if _, err := s.Delete(task, []byte("user0000")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete error = %v, want ErrReadOnly", err)
	}
	if _, err := s.Compact(task); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Compact error = %v, want ErrReadOnly", err)
	}
	st := s.Stats()
	if !st.Degraded || st.ReadOnlyTransitions != 1 {
		t.Fatalf("stats: Degraded=%v ReadOnlyTransitions=%d", st.Degraded, st.ReadOnlyTransitions)
	}
	if !s.Degraded() {
		t.Fatal("Degraded() = false after transition")
	}
	// Committed documents keep serving.
	for k, v := range docs {
		got, ok, err := s.Get(task, []byte(k))
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("doc %s unreadable in read-only mode: %v %v", k, ok, err)
		}
	}
	// A wear-key Set may have committed before the device latched
	// read-only, so the scan asserts the committed set is a subset.
	seen := map[string]bool{}
	if err := s.Scan(task, nil, nil, func(k, v []byte) bool { seen[string(k)] = true; return true }); err != nil {
		t.Fatal(err)
	}
	for k := range docs {
		if !seen[k] {
			t.Fatalf("scan missed doc %s in read-only mode", k)
		}
	}
}

func TestMaxFanoutControlsDepth(t *testing.T) {
	s, _, task := testStore(t, 2048, func(c *Config) {
		c.BatchSize = 64
		c.MaxFanout = 8
	})
	for i := 0; i < 600; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%06d", i)), val(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(task); err != nil {
		t.Fatal(err)
	}
	h, err := s.Height(task)
	if err != nil {
		t.Fatal(err)
	}
	// 600 keys at fanout 8: depth must be at least 3 (8^2=64 < 600).
	if h < 3 {
		t.Fatalf("height %d with fanout 8 and 600 keys", h)
	}
	for i := 0; i < 600; i++ {
		if _, ok, err := s.Get(task, []byte(fmt.Sprintf("user%06d", i))); err != nil || !ok {
			t.Fatalf("key %d lost under fanout cap: %v %v", i, ok, err)
		}
	}
}

func TestScanOrderedRange(t *testing.T) {
	s, _, task := testStore(t, 512, func(c *Config) { c.BatchSize = 16 })
	for i := 0; i < 300; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%05d", i)), val(i, 120)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(task); err != nil {
		t.Fatal(err)
	}
	var keys []string
	if err := s.Scan(task, []byte("user00050"), []byte("user00100"), func(k, v []byte) bool {
		keys = append(keys, string(k))
		if len(v) != 120 {
			t.Fatalf("value len %d", len(v))
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 50 {
		t.Fatalf("scan returned %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan out of order at %d: %s >= %s", i, keys[i-1], keys[i])
		}
	}
	// Early stop.
	n := 0
	if err := s.Scan(task, nil, nil, func(k, v []byte) bool {
		n++
		return n < 7
	}); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("early stop scanned %d", n)
	}
}
