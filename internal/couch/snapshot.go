package couch

import (
	"bytes"
	"errors"
	"sync"

	"share/internal/sim"
)

// ErrSnapshotStale is returned by snapshot reads after the store compacted:
// the file the snapshot references has been swapped away and its pages
// trimmed.
var ErrSnapshotStale = errors.New("couch: snapshot predates a compaction")

// Snapshot is a point-in-time reader over the last committed index root.
// Because the tree is copy-on-write — nodes and documents are immutable
// once written — a snapshot can be read by any number of concurrent tasks
// without taking the store latch: it resolves nodes through its own
// private cache and never touches the store's mutable state. Writers keep
// committing while snapshot reads are in flight.
//
// Two caveats, both inherent to the storage design:
//
//   - SHARE-mode commits remap a same-sized document's *old* location onto
//     the new version without touching the index (§4.3), so a snapshot
//     taken before such an update reads the new value through the old
//     reference. The snapshot is point-in-time for the index structure,
//     not for documents updated via the SHARE fast path — the same
//     aliasing the device-level remap creates for any stale file reader.
//   - Compaction swaps the database file and trims the old one; snapshot
//     reads from before the swap fail with ErrSnapshotStale.
type Snapshot struct {
	s       *Store
	file    fsimFile
	rootOff int64
	epoch   int64

	cmu   sync.Mutex // guards cache: one snapshot may serve many readers
	cache map[int64]*node
}

// fsimFile is the minimal file surface a snapshot needs; it lets tests
// substitute a failing reader.
type fsimFile interface {
	ReadAt(t *sim.Task, p []byte, off int64) (int, error)
}

// Snapshot captures the last committed tree root. The returned snapshot
// serves reads concurrently with later writes; it observes no write that
// commits after this call (modulo the SHARE aliasing documented above).
func (s *Store) Snapshot(t *sim.Task) *Snapshot {
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	return &Snapshot{
		s:       s,
		file:    s.file,
		rootOff: s.committedRoot,
		epoch:   s.compactEpoch.Load(),
		cache:   make(map[int64]*node),
	}
}

// stale reports whether the snapshot's file has been compacted away.
func (sn *Snapshot) stale() bool { return sn.s.compactEpoch.Load() != sn.epoch }

// node loads (or returns the cached copy of) the node at off.
func (sn *Snapshot) node(t *sim.Task, off int64) (*node, error) {
	sn.cmu.Lock()
	n, ok := sn.cache[off]
	sn.cmu.Unlock()
	if ok {
		return n, nil
	}
	buf := make([]byte, sn.s.cfg.NodeSize)
	if _, err := sn.file.ReadAt(t, buf, off); err != nil {
		return nil, err
	}
	n, err := parseNode(buf, off)
	if err != nil {
		return nil, err
	}
	sn.cmu.Lock()
	sn.cache[off] = n
	sn.cmu.Unlock()
	return n, nil
}

// Get returns the value of key as of the snapshot.
func (sn *Snapshot) Get(t *sim.Task, key []byte) ([]byte, bool, error) {
	if sn.stale() {
		return nil, false, ErrSnapshotStale
	}
	if sn.rootOff < 0 {
		return nil, false, nil // empty tree at snapshot time
	}
	off := sn.rootOff
	for {
		n, err := sn.node(t, off)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			i, ok := n.exactIdx(key)
			if !ok {
				return nil, false, nil
			}
			v, err := sn.readDoc(t, n.refs[i], key)
			if err != nil {
				return nil, false, err
			}
			return v, true, nil
		}
		if len(n.kids) == 0 {
			return nil, false, nil
		}
		off = n.kids[n.findIdx(key)].off
	}
}

// readDoc fetches a document through the snapshot's file handle without
// touching the store's document cache.
func (sn *Snapshot) readDoc(t *sim.Task, ref docRef, wantKey []byte) ([]byte, error) {
	st := sn.s
	buf := make([]byte, int(ref.pages)*st.page)
	if _, err := sn.file.ReadAt(t, buf, ref.off); err != nil {
		return nil, err
	}
	return decodeDoc(buf, ref.off, wantKey)
}

// Scan iterates snapshot documents with keys in [start, end) in key
// order; fn returning false stops the scan. A nil end scans to the end.
func (sn *Snapshot) Scan(t *sim.Task, start, end []byte, fn func(key, value []byte) bool) error {
	if sn.stale() {
		return ErrSnapshotStale
	}
	if sn.rootOff < 0 {
		return nil
	}
	stop := errors.New("couch: snapshot scan stopped") // sentinel
	err := sn.scanAt(t, sn.rootOff, start, end, fn, stop)
	if err == stop {
		return nil
	}
	return err
}

func (sn *Snapshot) scanAt(t *sim.Task, off int64, start, end []byte, fn func(k, v []byte) bool, stop error) error {
	n, err := sn.node(t, off)
	if err != nil {
		return err
	}
	if n.leaf {
		i := 0
		if len(start) > 0 {
			i, _ = n.exactIdx(start)
			for i < len(n.keys) && bytes.Compare(n.keys[i], start) < 0 {
				i++
			}
		}
		for ; i < len(n.keys); i++ {
			if end != nil && bytes.Compare(n.keys[i], end) >= 0 {
				return stop
			}
			v, err := sn.readDoc(t, n.refs[i], n.keys[i])
			if err != nil {
				return err
			}
			if !fn(n.keys[i], v) {
				return stop
			}
		}
		return nil
	}
	i := 0
	if len(start) > 0 {
		i = n.findIdx(start)
	}
	for ; i < len(n.kids); i++ {
		if end != nil && i > 0 && bytes.Compare(n.keys[i], end) >= 0 {
			return stop
		}
		if err := sn.scanAt(t, n.kids[i].off, start, end, fn, stop); err != nil {
			return err
		}
		start = nil // later subtrees scan from their beginning
	}
	return nil
}
