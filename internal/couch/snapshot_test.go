package couch

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"share/internal/sim"
)

// TestSnapshotIsolation: a snapshot taken after N documents must keep
// serving exactly those N documents — same keys, same values — while a
// writer keeps inserting and updating behind it. Original (non-SHARE)
// mode, so even same-sized updates wander the tree and the old versions
// stay intact on disk.
func TestSnapshotIsolation(t *testing.T) {
	s, _, task := testStore(t, 512, func(c *Config) { c.BatchSize = 8 })
	const initial = 200
	for i := 0; i < initial; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 300)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(task); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot(task)

	// Writer: overwrite every doc with different content and add new ones.
	for i := 0; i < initial; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i+7, 301)); err != nil {
			t.Fatal(err)
		}
	}
	for i := initial; i < initial+50; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 300)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(task); err != nil {
		t.Fatal(err)
	}

	// Snapshot still sees the old world.
	for i := 0; i < initial; i++ {
		v, ok, err := snap.Get(task, []byte(fmt.Sprintf("user%04d", i)))
		if err != nil || !ok {
			t.Fatalf("snapshot get %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, val(i, 300)) {
			t.Fatalf("snapshot get %d: value changed under snapshot", i)
		}
	}
	if _, ok, err := snap.Get(task, []byte(fmt.Sprintf("user%04d", initial+10))); err != nil || ok {
		t.Fatalf("snapshot sees later insert: ok=%v err=%v", ok, err)
	}
	count := 0
	if err := snap.Scan(task, nil, nil, func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != initial {
		t.Fatalf("snapshot scan saw %d docs, want %d", count, initial)
	}

	// The live store sees the new world.
	v, ok, err := s.Get(task, []byte("user0003"))
	if err != nil || !ok || !bytes.Equal(v, val(10, 301)) {
		t.Fatalf("live get after update: ok=%v err=%v", ok, err)
	}
}

// TestSnapshotConcurrentReaders serves one shared snapshot from many real
// goroutines while a writer mutates the store — the -race regression for
// the latch-free snapshot read path.
func TestSnapshotConcurrentReaders(t *testing.T) {
	s, _, task := testStore(t, 512, func(c *Config) { c.BatchSize = 8 })
	const docs = 150
	for i := 0; i < docs; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 300)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(task); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot(task)

	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rt := sim.NewSoloTask(fmt.Sprintf("reader%d", r))
			for i := 0; i < docs; i++ {
				k := []byte(fmt.Sprintf("user%04d", (i*7+r)%docs))
				v, ok, err := snap.Get(rt, k)
				if err != nil || !ok || len(v) != 300 {
					errs <- fmt.Errorf("reader %d key %s: ok=%v err=%v", r, k, ok, err)
					return
				}
			}
		}(r)
	}
	// Concurrent writer on its own task.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wt := sim.NewSoloTask("writer")
		for i := 0; i < docs; i++ {
			if err := s.Set(wt, []byte(fmt.Sprintf("user%04d", i)), val(i+3, 320)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSnapshotStaleAfterCompaction: compaction swaps the database file,
// so older snapshots must refuse with ErrSnapshotStale instead of reading
// trimmed pages.
func TestSnapshotStaleAfterCompaction(t *testing.T) {
	s, _, task := testStore(t, 512, func(c *Config) { c.BatchSize = 4 })
	for i := 0; i < 100; i++ {
		if err := s.Set(task, []byte(fmt.Sprintf("user%04d", i)), val(i, 300)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(task); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot(task)
	if _, _, err := snap.Get(task, []byte("user0000")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(task); err != nil {
		t.Fatal(err)
	}
	if _, _, err := snap.Get(task, []byte("user0000")); !errors.Is(err, ErrSnapshotStale) {
		t.Fatalf("snapshot read after compaction = %v, want ErrSnapshotStale", err)
	}
	// A fresh snapshot over the compacted file works.
	fresh := s.Snapshot(task)
	if v, ok, err := fresh.Get(task, []byte("user0042")); err != nil || !ok || !bytes.Equal(v, val(42, 300)) {
		t.Fatalf("fresh snapshot get: ok=%v err=%v", ok, err)
	}
}
