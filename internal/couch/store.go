// Package couch implements a miniature Couchbase/couchstore storage
// engine: an append-only database file holding page-aligned documents and
// a copy-on-write (wandering) B+tree index, with batched commits and a
// stale-ratio-triggered compaction — plus the paper's two SHARE
// integrations:
//
//   - SHARE commit (§4.3): an updated document is appended once and the
//     document's *old* location is remapped onto the new copy, so no index
//     node is rewritten and the wandering-tree write amplification
//     disappears; the appended tail is then reclaimed.
//   - SHARE compaction (§3.3): the new database file is fallocated and
//     every live document is transferred by remapping instead of copying;
//     only the new index nodes are actually written.
package couch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"share/internal/fsim"
	"share/internal/ftl"
	"share/internal/sim"
)

// ErrReadOnly is returned by mutating operations after the underlying
// device degraded to read-only (spare blocks exhausted). Get and Scan
// keep serving from the still-readable file and the caches.
var ErrReadOnly = errors.New("couch: store is read-only (device degraded)")

// Config tunes the store.
type Config struct {
	Name      string // database file name
	NodeSize  int    // index node size in bytes (device page multiple)
	ShareMode bool   // use SHARE for commits and compaction
	// BatchSize is the number of Set operations per fsync (the paper's
	// batch-size knob, swept 1..256 in Figures 7 and 8).
	BatchSize int
	// CompactThreshold triggers compaction when stale bytes exceed this
	// fraction of the file.
	CompactThreshold float64
	// DocCacheEntries bounds the in-memory document cache (Couchbase's
	// object cache); 0 disables caching.
	DocCacheEntries int
	// MaxFanout, when > 0, caps the entries per index node below what the
	// node size allows. Scaled-down experiments use it to keep the tree
	// depth equal to the paper's (three levels for 250k documents), so the
	// wandering-tree write amplification per update is preserved.
	MaxFanout int
	// StreamHints tags device writes with per-object stream hints on
	// multi-stream devices: ordinary append-log traffic (documents, index
	// nodes, headers) takes stream 0 and compaction output stream 1, so the
	// long-lived compacted data stops sharing erase blocks with the churning
	// append tail. No effect when the device is single-stream.
	StreamHints bool
}

func (c *Config) setDefaults(devPage int) error {
	if c.Name == "" {
		c.Name = "db.couch"
	}
	if c.NodeSize == 0 {
		c.NodeSize = devPage
	}
	if c.NodeSize%devPage != 0 {
		return fmt.Errorf("couch: node size %d not a multiple of device page %d", c.NodeSize, devPage)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
	if c.CompactThreshold == 0 {
		c.CompactThreshold = 0.6
	}
	return nil
}

// Stats counts store activity.
type Stats struct {
	Sets             int64
	Gets             int64
	Commits          int64 // fsync batches
	DocPagesWritten  int64
	NodePagesWritten int64
	HeaderPages      int64
	SharePairs       int64 // document versions installed by remapping
	Compactions      int64

	ReadOnlyTransitions int64 // device degradations observed (0 or 1)
	Degraded            bool  // gauge: store is serving read-only
}

// Store is one Couchbase-style database.
//
// Concurrency: a store latch (s.mu) serializes every mutating operation
// and the cache-touching read paths (Get, Scan, Height resolve nodes into
// shared caches). Point-in-time readers that must not queue behind
// writers use Snapshot, which walks the last committed tree root through
// a private node cache and touches no shared mutable state. The
// unlatched accessors FileSize, StaleRatio, NeedsCompaction and DocCount
// are quiescent-only: call them while no writer is active.
type Store struct {
	fs   *fsim.FS
	file *fsim.File
	cfg  Config
	page int // device page size

	mu sim.Mutex // store latch: tree, caches, file append point

	root    *node
	eof     int64 // append point
	stale   int64 // bytes occupied by stale document/node versions
	docs    int64 // live document count
	hdrSeq  uint64
	pending int // Sets since the last commit

	// SHARE-mode deferred remaps of the current batch: old location <-
	// new tail location.
	shares []sharePending

	nodeCache map[int64]*node
	docCache  map[string][]byte
	docOrder  []string // FIFO eviction for the doc cache

	// committedRoot is the index root offset written by the last header —
	// the point-in-time tree Snapshot readers traverse. -1 until the first
	// header commits a non-empty tree.
	committedRoot int64
	// compactEpoch counts completed compactions; snapshots record it and
	// refuse to read after the file they reference has been swapped away.
	compactEpoch atomic.Int64

	// degraded is latched when a device write fails with ftl.ErrReadOnly;
	// mutating operations then fail fast with ErrReadOnly while reads keep
	// serving.
	degraded atomic.Bool

	st Stats // counters updated via atomics; read with Stats()
}

type sharePending struct {
	oldOff, newOff int64
	pages          uint16
}

// Open creates or reopens a store. Reopening scans backward for the last
// committed header, recovering from a crash (uncommitted tail data is
// truncated away).
func Open(t *sim.Task, fs *fsim.FS, cfg Config) (*Store, error) {
	if err := cfg.setDefaults(fs.Device().PageSize()); err != nil {
		return nil, err
	}
	s := &Store{
		fs:            fs,
		cfg:           cfg,
		page:          fs.Device().PageSize(),
		nodeCache:     make(map[int64]*node),
		docCache:      make(map[string][]byte),
		committedRoot: -1,
	}
	if fs.Exists(cfg.Name) {
		f, err := fs.Open(t, cfg.Name)
		if err != nil {
			return nil, err
		}
		s.file = f
		if err := s.recover(t); err != nil {
			return nil, err
		}
	} else {
		f, err := fs.Create(t, cfg.Name)
		if err != nil {
			return nil, err
		}
		s.file = f
		s.root = newLeaf()
		if err := s.writeHeader(t); err != nil {
			return nil, err
		}
		if err := s.file.Sync(t); err != nil {
			return nil, err
		}
	}
	if cfg.StreamHints && fs.Device().Streams() > 1 {
		s.file.SetStream(streamAppend)
	}
	return s, nil
}

// Stream layout when StreamHints is on (clamped by the device, so fewer
// configured streams degrade toward sharing).
const (
	streamAppend  = 0 // append log: documents, wandering-tree nodes, headers
	streamCompact = 1 // compaction output: live data, cold after the swap
)

// header layout: u32 checksum, u32 magic, u64 seq, i64 rootOff,
// i64 stale, i64 docs. Headers are NodeSize-aligned blocks at the file
// tail after every commit, as couchstore writes them.
func (s *Store) writeHeader(t *sim.Task) error {
	// Serialize any dirty index nodes first so the header's root offset
	// refers to durable nodes.
	rootOff, err := s.flushNodes(t, s.root)
	if err != nil {
		return err
	}
	buf := make([]byte, s.cfg.NodeSize)
	binary.LittleEndian.PutUint32(buf[4:], headerMagic)
	s.hdrSeq++
	binary.LittleEndian.PutUint64(buf[8:], s.hdrSeq)
	binary.LittleEndian.PutUint64(buf[16:], uint64(rootOff))
	binary.LittleEndian.PutUint64(buf[24:], uint64(s.stale))
	binary.LittleEndian.PutUint64(buf[32:], uint64(s.docs))
	binary.LittleEndian.PutUint32(buf[0:], checksum32(buf[4:]))
	if _, err := s.file.WriteAt(t, buf, s.eof); err != nil {
		return err
	}
	s.eof += int64(s.cfg.NodeSize)
	atomic.AddInt64(&s.st.HeaderPages, int64(s.cfg.NodeSize/s.page))
	s.committedRoot = rootOff
	return nil
}

// flushNodes serializes the dirty subtree bottom-up at the file tail and
// returns the root's file offset. Clean subtrees are left untouched —
// this is exactly the wandering-tree write pattern: one dirty leaf forces
// a new copy of every node up to the root.
func (s *Store) flushNodes(t *sim.Task, n *node) (int64, error) {
	if !n.dirty && n.off >= 0 {
		return n.off, nil
	}
	var childOffs []int64
	if !n.leaf {
		childOffs = make([]int64, len(n.kids))
		for i := range n.kids {
			if n.kids[i].mem != nil {
				off, err := s.flushNodes(t, n.kids[i].mem)
				if err != nil {
					return 0, err
				}
				childOffs[i] = off
				// Keep the in-memory child but record its clean offset.
				n.kids[i].off = off
			} else {
				childOffs[i] = n.kids[i].off
			}
		}
	}
	buf := s.serializeNode(n, childOffs)
	off := s.eof
	if _, err := s.file.WriteAt(t, buf, off); err != nil {
		return 0, err
	}
	s.eof += int64(s.cfg.NodeSize)
	atomic.AddInt64(&s.st.NodePagesWritten, int64(s.cfg.NodeSize/s.page))
	// The previous version of this node is now stale.
	if n.off >= 0 {
		s.stale += int64(s.cfg.NodeSize)
		delete(s.nodeCache, n.off)
	}
	n.off = off
	n.dirty = false
	s.nodeCache[off] = n
	return off, nil
}

// recover finds the newest committed header by scanning backward from the
// end of the file, loads the root, and truncates uncommitted tail blocks.
func (s *Store) recover(t *sim.Task) error {
	size := s.file.Size()
	ns := int64(s.cfg.NodeSize)
	buf := make([]byte, s.cfg.NodeSize)
	for off := size - ns; off >= 0; off -= ns {
		if off%ns != 0 {
			off = off / ns * ns
		}
		if _, err := s.file.ReadAt(t, buf, off); err != nil {
			continue
		}
		if binary.LittleEndian.Uint32(buf[4:]) != headerMagic {
			continue
		}
		if binary.LittleEndian.Uint32(buf[0:]) != checksum32(buf[4:]) {
			continue
		}
		s.hdrSeq = binary.LittleEndian.Uint64(buf[8:])
		rootOff := int64(binary.LittleEndian.Uint64(buf[16:]))
		s.committedRoot = rootOff
		s.stale = int64(binary.LittleEndian.Uint64(buf[24:]))
		s.docs = int64(binary.LittleEndian.Uint64(buf[32:]))
		s.eof = off + ns
		if err := s.file.Truncate(t, s.eof); err != nil {
			return err
		}
		if rootOff >= 0 {
			root, err := s.loadNode(t, rootOff)
			if err != nil {
				return err
			}
			s.root = root
		} else {
			s.root = newLeaf()
		}
		return nil
	}
	return fmt.Errorf("couch: no committed header found in %s", s.cfg.Name)
}

// FileSize returns the current database file size in bytes.
func (s *Store) FileSize() int64 { return s.eof }

// StaleRatio returns the fraction of the file occupied by stale data.
func (s *Store) StaleRatio() float64 {
	if s.eof == 0 {
		return 0
	}
	return float64(s.stale) / float64(s.eof)
}

// NeedsCompaction reports whether the stale ratio exceeds the threshold.
func (s *Store) NeedsCompaction() bool {
	return s.StaleRatio() > s.cfg.CompactThreshold
}

// DocCount returns the number of live documents.
func (s *Store) DocCount() int64 { return s.docs }

// Stats returns a snapshot of store counters. Counters are maintained
// with atomics, so the snapshot is safe to take while sessions run.
func (s *Store) Stats() Stats {
	var st Stats
	st.Sets = atomic.LoadInt64(&s.st.Sets)
	st.Gets = atomic.LoadInt64(&s.st.Gets)
	st.Commits = atomic.LoadInt64(&s.st.Commits)
	st.DocPagesWritten = atomic.LoadInt64(&s.st.DocPagesWritten)
	st.NodePagesWritten = atomic.LoadInt64(&s.st.NodePagesWritten)
	st.HeaderPages = atomic.LoadInt64(&s.st.HeaderPages)
	st.SharePairs = atomic.LoadInt64(&s.st.SharePairs)
	st.Compactions = atomic.LoadInt64(&s.st.Compactions)
	st.ReadOnlyTransitions = atomic.LoadInt64(&s.st.ReadOnlyTransitions)
	st.Degraded = s.degraded.Load()
	return st
}

// Degraded reports whether the store has switched to read-only serving.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// noteDeviceErr translates a device-level read-only failure into the
// typed store error, latching the degraded state on first sight.
func (s *Store) noteDeviceErr(err error) error {
	if err == nil || !errors.Is(err, ftl.ErrReadOnly) {
		return err
	}
	if s.degraded.CompareAndSwap(false, true) {
		atomic.AddInt64(&s.st.ReadOnlyTransitions, 1)
	}
	return ErrReadOnly
}

// FS returns the file system the store lives on.
func (s *Store) FS() *fsim.FS { return s.fs }

// BatchSize returns the current commit batch size.
func (s *Store) BatchSize() int { return s.cfg.BatchSize }

// SetBatchSize changes the commit batch size at run time. Bulk loaders use
// a large batch, then restore the benchmark's setting.
func (s *Store) SetBatchSize(n int) {
	if n < 1 {
		n = 1
	}
	s.cfg.BatchSize = n
}

// Height returns the index depth.
func (s *Store) Height(t *sim.Task) (int, error) {
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	h := 1
	n := s.root
	for !n.leaf {
		if len(n.kids) == 0 {
			break
		}
		c := n.kids[0]
		if c.mem != nil {
			n = c.mem
		} else {
			ld, err := s.loadNode(t, c.off)
			if err != nil {
				return 0, err
			}
			n = ld
		}
		h++
	}
	return h, nil
}
