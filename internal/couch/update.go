package couch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"share/internal/core"
	"share/internal/sim"
	"share/internal/ssd"
)

const (
	docMagic  = 0x43444F43 // "CDOC"
	docHdrLen = 16         // checksum u32, magic u32, klen u16, pad u16, vlen u32
)

// docPages returns the page-aligned allocation for a document.
func (s *Store) docPages(klen, vlen int) uint16 {
	n := (docHdrLen + klen + vlen + s.page - 1) / s.page
	if n == 0 {
		n = 1
	}
	return uint16(n)
}

// writeDoc appends one document at the current end of file and returns
// its reference.
func (s *Store) writeDoc(t *sim.Task, key, value []byte) (docRef, error) {
	pages := s.docPages(len(key), len(value))
	buf := make([]byte, int(pages)*s.page)
	binary.LittleEndian.PutUint32(buf[4:], docMagic)
	binary.LittleEndian.PutUint16(buf[8:], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(value)))
	copy(buf[docHdrLen:], key)
	copy(buf[docHdrLen+len(key):], value)
	binary.LittleEndian.PutUint32(buf[0:], checksum32(buf[4:]))
	ref := docRef{off: s.eof, pages: pages, vlen: uint32(len(value))}
	if _, err := s.file.WriteAt(t, buf, s.eof); err != nil {
		return docRef{}, err
	}
	s.eof += int64(len(buf))
	atomic.AddInt64(&s.st.DocPagesWritten, int64(pages))
	return ref, nil
}

// readDoc fetches and validates a document; n limits how many of its
// pages are read (0 = all).
func (s *Store) readDoc(t *sim.Task, ref docRef, wantKey []byte) ([]byte, error) {
	buf := make([]byte, int(ref.pages)*s.page)
	if _, err := s.file.ReadAt(t, buf, ref.off); err != nil {
		return nil, err
	}
	return decodeDoc(buf, ref.off, wantKey)
}

// decodeDoc validates a serialized document and returns its value. It
// touches no store state, so Snapshot readers share it without the latch.
func decodeDoc(buf []byte, off int64, wantKey []byte) ([]byte, error) {
	if binary.LittleEndian.Uint32(buf[0:]) != checksum32(buf[4:]) {
		return nil, fmt.Errorf("couch: doc checksum mismatch at %d", off)
	}
	if binary.LittleEndian.Uint32(buf[4:]) != docMagic {
		return nil, fmt.Errorf("couch: bad doc magic at %d", off)
	}
	klen := int(binary.LittleEndian.Uint16(buf[8:]))
	vlen := int(binary.LittleEndian.Uint32(buf[12:]))
	key := buf[docHdrLen : docHdrLen+klen]
	if wantKey != nil && !bytes.Equal(key, wantKey) {
		return nil, fmt.Errorf("couch: doc key mismatch at %d", off)
	}
	return buf[docHdrLen+klen : docHdrLen+klen+vlen], nil
}

// resolve returns the in-memory node for a child slot, loading it on
// demand and caching the pointer in the slot.
func (s *Store) resolve(t *sim.Task, c *child) (*node, error) {
	if c.mem != nil {
		return c.mem, nil
	}
	n, err := s.loadNode(t, c.off)
	if err != nil {
		return nil, err
	}
	c.mem = n
	return n, nil
}

// lookup descends to the leaf entry for key.
func (s *Store) lookup(t *sim.Task, key []byte) (docRef, bool, error) {
	n := s.root
	for !n.leaf {
		if len(n.kids) == 0 {
			return docRef{}, false, nil
		}
		c := &n.kids[n.findIdx(key)]
		child, err := s.resolve(t, c)
		if err != nil {
			return docRef{}, false, err
		}
		n = child
	}
	i, ok := n.exactIdx(key)
	if !ok {
		return docRef{}, false, nil
	}
	return n.refs[i], true, nil
}

// Get returns the current value of key. It takes the store latch (the
// lookup resolves nodes into the shared caches); use Snapshot for reads
// that must not queue behind writers.
func (s *Store) Get(t *sim.Task, key []byte) ([]byte, bool, error) {
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	atomic.AddInt64(&s.st.Gets, 1)
	if v, ok := s.docCache[string(key)]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, true, nil
	}
	ref, ok, err := s.lookup(t, key)
	if err != nil || !ok {
		return nil, false, err
	}
	v, err := s.readDoc(t, ref, key)
	if err != nil {
		return nil, false, err
	}
	s.cacheDoc(key, v)
	return v, true, nil
}

func (s *Store) cacheDoc(key, v []byte) {
	if s.cfg.DocCacheEntries <= 0 {
		return
	}
	ks := string(key)
	if _, ok := s.docCache[ks]; !ok {
		s.docOrder = append(s.docOrder, ks)
		for len(s.docOrder) > s.cfg.DocCacheEntries {
			old := s.docOrder[0]
			s.docOrder = s.docOrder[1:]
			delete(s.docCache, old)
		}
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	s.docCache[ks] = cp
}

// Set inserts or updates a document. The write is durable once the batch
// it belongs to commits (every Config.BatchSize sets, or at an explicit
// Commit call). After the device degrades to read-only, Set fails fast
// with ErrReadOnly.
func (s *Store) Set(t *sim.Task, key, value []byte) error {
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	if s.degraded.Load() {
		return ErrReadOnly
	}
	return s.noteDeviceErr(s.set(t, key, value))
}

func (s *Store) set(t *sim.Task, key, value []byte) error {
	atomic.AddInt64(&s.st.Sets, 1)
	old, found, err := s.lookup(t, key)
	if err != nil {
		return err
	}
	newPages := s.docPages(len(key), len(value))

	if s.cfg.ShareMode && found && old.pages == newPages {
		// SHARE commit path: append the new version once and defer a
		// remap of the old location onto it; the index is not touched, so
		// no wandering-tree writes happen at all.
		ref, err := s.writeDoc(t, key, value)
		if err != nil {
			return err
		}
		s.shares = append(s.shares, sharePending{oldOff: old.off, newOff: ref.off, pages: ref.pages})
	} else {
		// Original couchstore path: append the document and update the
		// index copy-on-write; the old version becomes stale.
		ref, err := s.writeDoc(t, key, value)
		if err != nil {
			return err
		}
		if err := s.treeInsert(t, key, ref); err != nil {
			return err
		}
		if found {
			s.stale += int64(old.pages) * int64(s.page)
		} else {
			s.docs++
		}
	}
	s.cacheDoc(key, value)
	s.pending++
	if s.pending >= s.cfg.BatchSize {
		return s.commitLocked(t)
	}
	return nil
}

// Delete removes a document (original path only; YCSB does not delete).
func (s *Store) Delete(t *sim.Task, key []byte) (bool, error) {
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	if s.degraded.Load() {
		return false, ErrReadOnly
	}
	found, err := s.del(t, key)
	return found, s.noteDeviceErr(err)
}

func (s *Store) del(t *sim.Task, key []byte) (bool, error) {
	old, found, err := s.lookup(t, key)
	if err != nil || !found {
		return false, err
	}
	if err := s.treeDelete(t, key); err != nil {
		return false, err
	}
	s.stale += int64(old.pages) * int64(s.page)
	s.docs--
	delete(s.docCache, string(key))
	s.pending++
	if s.pending >= s.cfg.BatchSize {
		return true, s.commitLocked(t)
	}
	return true, nil
}

// Commit makes the current batch durable: an fsync covers the appended
// documents, then (SHARE mode) the deferred remaps are issued — each
// SHARE command is durable on return — and the redundant tail copies are
// trimmed; (original mode, or when the index changed) the dirty index
// nodes wander to the tail and a new header is written under a second
// fsync-covered write sequence.
func (s *Store) Commit(t *sim.Task) error {
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	return s.commitLocked(t)
}

// commitLocked is Commit with the store latch already held.
func (s *Store) commitLocked(t *sim.Task) error {
	if s.pending == 0 && len(s.shares) == 0 && !s.root.dirty {
		return nil
	}
	if s.degraded.Load() {
		return ErrReadOnly
	}
	return s.noteDeviceErr(s.commit(t))
}

func (s *Store) commit(t *sim.Task) error {
	if err := s.file.Sync(t); err != nil {
		return err
	}
	if len(s.shares) > 0 {
		if err := s.applyShares(t); err != nil {
			return err
		}
	}
	if s.root.dirty {
		if err := s.writeHeader(t); err != nil {
			return err
		}
		if err := s.file.Sync(t); err != nil {
			return err
		}
	}
	s.pending = 0
	atomic.AddInt64(&s.st.Commits, 1)
	return nil
}

// applyShares issues the batch's remaps and trims the tail copies.
func (s *Store) applyShares(t *sim.Task) error {
	dev := s.fs.Device()
	var pairs []ssd.Pair
	for _, sh := range s.shares {
		dst, err := s.file.MapRange(sh.oldOff, int64(sh.pages)*int64(s.page))
		if err != nil {
			return err
		}
		src, err := s.file.MapRange(sh.newOff, int64(sh.pages)*int64(s.page))
		if err != nil {
			return err
		}
		di, si := 0, 0
		var dOff, sOff uint32
		for di < len(dst) && si < len(src) {
			run := dst[di].Len - dOff
			if r := src[si].Len - sOff; r < run {
				run = r
			}
			pairs = append(pairs, ssd.Pair{Dst: dst[di].Start + dOff, Src: src[si].Start + sOff, Len: run})
			dOff += run
			sOff += run
			if dOff == dst[di].Len {
				di++
				dOff = 0
			}
			if sOff == src[si].Len {
				si++
				sOff = 0
			}
		}
		atomic.AddInt64(&s.st.SharePairs, 1)
	}
	if err := core.ShareAll(t, dev, pairs); err != nil {
		return err
	}
	// The tail copies are now redundant: the old locations carry the new
	// content. Trim them so the device reclaims the space; the file-level
	// bytes stay accounted as stale until compaction shrinks the file.
	for _, sh := range s.shares {
		exts, err := s.file.MapRange(sh.newOff, int64(sh.pages)*int64(s.page))
		if err != nil {
			return err
		}
		for _, e := range exts {
			if err := dev.Trim(t, e.Start, int(e.Len)); err != nil {
				return err
			}
		}
		s.stale += int64(sh.pages) * int64(s.page)
	}
	s.shares = s.shares[:0]
	return nil
}

// treeInsert adds key -> ref to the working tree, splitting as needed.
func (s *Store) treeInsert(t *sim.Task, key []byte, ref docRef) error {
	sp, err := s.insertAt(t, s.root, key, ref)
	if err != nil {
		return err
	}
	if sp != nil {
		old := s.root
		root := newInner()
		root.innerInsertChild(0, old.keys[0], child{mem: old})
		root.innerInsertChild(1, sp.keys[0], child{mem: sp})
		s.root = root
	}
	return nil
}

// overfull reports whether a node must split.
func (s *Store) overfull(n *node) bool {
	if n.size > s.cfg.NodeSize {
		return true
	}
	return s.cfg.MaxFanout > 0 && len(n.keys) > s.cfg.MaxFanout
}

func (s *Store) insertAt(t *sim.Task, n *node, key []byte, ref docRef) (*node, error) {
	if n.leaf {
		n.leafInsert(key, ref)
		if s.overfull(n) {
			return n.split(), nil
		}
		return nil, nil
	}
	if len(n.kids) == 0 {
		return nil, fmt.Errorf("couch: internal node with no children")
	}
	i := n.findIdx(key)
	childNode, err := s.resolve(t, &n.kids[i])
	if err != nil {
		return nil, err
	}
	sp, err := s.insertAt(t, childNode, key, ref)
	if err != nil {
		return nil, err
	}
	// The child was (potentially) rewritten: this node must wander too.
	n.dirty = true
	if bytes.Compare(key, n.keys[i]) < 0 {
		n.keys[i] = append([]byte(nil), key...) // maintain first-key label
	}
	if sp != nil {
		n.innerInsertChild(i+1, sp.keys[0], child{mem: sp})
		if s.overfull(n) {
			return n.split(), nil
		}
	}
	return nil, nil
}

// treeDelete removes key from the working tree.
func (s *Store) treeDelete(t *sim.Task, key []byte) error {
	n := s.root
	var path []*node
	for !n.leaf {
		if len(n.kids) == 0 {
			return nil
		}
		path = append(path, n)
		c, err := s.resolve(t, &n.kids[n.findIdx(key)])
		if err != nil {
			return err
		}
		n = c
	}
	if n.leafDelete(key) {
		for _, p := range path {
			p.dirty = true
		}
	}
	return nil
}

// walkDocs iterates live documents in key order (used by compaction).
func (s *Store) walkDocs(t *sim.Task, fn func(key []byte, ref docRef) error) error {
	return s.walkNode(t, s.root, fn)
}

func (s *Store) walkNode(t *sim.Task, n *node, fn func(key []byte, ref docRef) error) error {
	if n.leaf {
		for i, k := range n.keys {
			if err := fn(k, n.refs[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range n.kids {
		c, err := s.resolve(t, &n.kids[i])
		if err != nil {
			return err
		}
		if err := s.walkNode(t, c, fn); err != nil {
			return err
		}
	}
	return nil
}

// Scan iterates live documents with keys in [start, end) in key order,
// loading each document's value; fn returning false stops the scan. A nil
// end scans to the end of the index. Used by YCSB workload E. It holds
// the store latch for the whole scan; use Snapshot.Scan for long scans
// that must not block writers.
func (s *Store) Scan(t *sim.Task, start, end []byte, fn func(key, value []byte) bool) error {
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	stop := fmt.Errorf("couch: scan stopped") // sentinel
	err := s.scanNode(t, s.root, start, end, fn, stop)
	if err == stop {
		return nil
	}
	return err
}

func (s *Store) scanNode(t *sim.Task, n *node, start, end []byte, fn func(k, v []byte) bool, stop error) error {
	if n.leaf {
		i := 0
		if len(start) > 0 {
			i, _ = n.exactIdx(start)
			// exactIdx returns the covering slot; advance past smaller keys.
			for i < len(n.keys) && bytes.Compare(n.keys[i], start) < 0 {
				i++
			}
		}
		for ; i < len(n.keys); i++ {
			if end != nil && bytes.Compare(n.keys[i], end) >= 0 {
				return stop
			}
			v, err := s.readDoc(t, n.refs[i], n.keys[i])
			if err != nil {
				return err
			}
			if !fn(n.keys[i], v) {
				return stop
			}
		}
		return nil
	}
	i := 0
	if len(start) > 0 {
		i = n.findIdx(start)
	}
	for ; i < len(n.kids); i++ {
		if end != nil && i > 0 && bytes.Compare(n.keys[i], end) >= 0 {
			return stop
		}
		c, err := s.resolve(t, &n.kids[i])
		if err != nil {
			return err
		}
		if err := s.scanNode(t, c, start, end, fn, stop); err != nil {
			return err
		}
		start = nil // later subtrees scan from their beginning
	}
	return nil
}
