package couch

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"share/internal/sim"
)

// The index is an append-only (copy-on-write) B+tree: nodes are immutable
// once written; updating a leaf produces a new leaf at the end of the
// file, which forces a new parent, and so on to the root — the wandering
// tree of §2.2. In memory, the store keeps a working tree whose dirty
// nodes exist only in RAM until a commit serializes them.
//
// Node pages (NodeSize bytes):
//
//	u32 checksum (over the rest), u32 magic, u8 kind, u16 count, entries:
//	leaf:     [klen u16][key][off i64][pages u16][vlen u32]
//	internal: [klen u16][key][childOff i64]
//
// Internal entries are labeled with the first key of their child.
const (
	nodeMagic   = 0x434E4F44 // "CNOD"
	headerMagic = 0x43484452 // "CHDR"
	nodeHdr     = 11
)

// docRef locates one document version in the file.
type docRef struct {
	off   int64  // byte offset (page aligned)
	pages uint16 // allocation length in device pages
	vlen  uint32 // value length
}

type node struct {
	leaf  bool
	keys  [][]byte
	refs  []docRef // leaf payloads
	kids  []child  // internal children
	size  int      // serialized byte estimate
	dirty bool
	off   int64 // file offset of the clean version (-1 if never written)
}

type child struct {
	off int64 // on-disk offset, valid when mem == nil
	mem *node // in-memory (possibly dirty) version
}

func leafEntrySize(key []byte) int     { return 2 + len(key) + 8 + 2 + 4 }
func internalEntrySize(key []byte) int { return 2 + len(key) + 8 }

func newLeaf() *node  { return &node{leaf: true, size: nodeHdr, off: -1, dirty: true} }
func newInner() *node { return &node{leaf: false, size: nodeHdr, off: -1, dirty: true} }

// findIdx returns the index of the child/entry that covers key: the last
// entry whose key is <= target, or 0.
func (n *node) findIdx(key []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// exactIdx returns (index, true) if key is present in a leaf.
func (n *node) exactIdx(key []byte) (int, bool) {
	i := n.findIdx(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return i, true
	}
	// findIdx returns the covering slot; an exact match can only be there.
	return i, false
}

// leafInsert adds or replaces key in the leaf; returns the size delta.
func (n *node) leafInsert(key []byte, ref docRef) {
	i, ok := n.exactIdx(key)
	if ok {
		n.refs[i] = ref
		n.dirty = true
		return
	}
	// Insert after the covering slot (or at 0 when key precedes all).
	pos := 0
	if len(n.keys) > 0 {
		if bytes.Compare(key, n.keys[0]) < 0 {
			pos = 0
		} else {
			pos = n.findIdx(key) + 1
		}
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[pos+1:], n.keys[pos:])
	n.keys[pos] = append([]byte(nil), key...)
	n.refs = append(n.refs, docRef{})
	copy(n.refs[pos+1:], n.refs[pos:])
	n.refs[pos] = ref
	n.size += leafEntrySize(key)
	n.dirty = true
}

// leafDelete removes key if present; reports whether it was.
func (n *node) leafDelete(key []byte) bool {
	i, ok := n.exactIdx(key)
	if !ok {
		return false
	}
	n.size -= leafEntrySize(n.keys[i])
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.refs = append(n.refs[:i], n.refs[i+1:]...)
	n.dirty = true
	return true
}

// innerInsertChild inserts a child labeled with key after position pos.
func (n *node) innerInsertChild(pos int, key []byte, c child) {
	n.keys = append(n.keys, nil)
	copy(n.keys[pos+1:], n.keys[pos:])
	n.keys[pos] = append([]byte(nil), key...)
	n.kids = append(n.kids, child{})
	copy(n.kids[pos+1:], n.kids[pos:])
	n.kids[pos] = c
	n.size += internalEntrySize(key)
	n.dirty = true
}

// split divides an over-full node in half, returning the new right node.
func (n *node) split() *node {
	mid := len(n.keys) / 2
	var r *node
	if n.leaf {
		r = newLeaf()
		r.keys = append(r.keys, n.keys[mid:]...)
		r.refs = append(r.refs, n.refs[mid:]...)
		n.keys = n.keys[:mid]
		n.refs = n.refs[:mid]
	} else {
		r = newInner()
		r.keys = append(r.keys, n.keys[mid:]...)
		r.kids = append(r.kids, n.kids[mid:]...)
		n.keys = n.keys[:mid]
		n.kids = n.kids[:mid]
	}
	n.size = nodeHdr
	for _, k := range n.keys {
		if n.leaf {
			n.size += leafEntrySize(k)
		} else {
			n.size += internalEntrySize(k)
		}
	}
	r.size = nodeHdr
	for _, k := range r.keys {
		if r.leaf {
			r.size += leafEntrySize(k)
		} else {
			r.size += internalEntrySize(k)
		}
	}
	n.dirty = true
	return r
}

// serialize renders the node into a NodeSize buffer.
func (s *Store) serializeNode(n *node, childOffs []int64) []byte {
	buf := make([]byte, s.cfg.NodeSize)
	binary.LittleEndian.PutUint32(buf[4:], nodeMagic)
	if n.leaf {
		buf[8] = 1
	}
	binary.LittleEndian.PutUint16(buf[9:], uint16(len(n.keys)))
	off := nodeHdr
	for i, k := range n.keys {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
		off += 2
		copy(buf[off:], k)
		off += len(k)
		if n.leaf {
			binary.LittleEndian.PutUint64(buf[off:], uint64(n.refs[i].off))
			binary.LittleEndian.PutUint16(buf[off+8:], n.refs[i].pages)
			binary.LittleEndian.PutUint32(buf[off+10:], n.refs[i].vlen)
			off += 14
		} else {
			binary.LittleEndian.PutUint64(buf[off:], uint64(childOffs[i]))
			off += 8
		}
	}
	binary.LittleEndian.PutUint32(buf[0:], checksum32(buf[4:]))
	return buf
}

// loadNode reads and parses a node page at off, caching the result in
// the store's shared node cache (callers hold the store latch).
func (s *Store) loadNode(t *sim.Task, off int64) (*node, error) {
	if cached, ok := s.nodeCache[off]; ok {
		return cached, nil
	}
	buf := make([]byte, s.cfg.NodeSize)
	if _, err := s.file.ReadAt(t, buf, off); err != nil {
		return nil, err
	}
	n, err := parseNode(buf, off)
	if err != nil {
		return nil, err
	}
	s.nodeCache[off] = n
	return n, nil
}

// parseNode validates and decodes one serialized node page. It touches
// no store state, so Snapshot readers share it without the latch.
func parseNode(buf []byte, off int64) (*node, error) {
	if binary.LittleEndian.Uint32(buf[0:]) != checksum32(buf[4:]) {
		return nil, fmt.Errorf("couch: node checksum mismatch at %d", off)
	}
	if binary.LittleEndian.Uint32(buf[4:]) != nodeMagic {
		return nil, fmt.Errorf("couch: bad node magic at %d", off)
	}
	n := &node{leaf: buf[8] == 1, off: off, size: nodeHdr}
	count := int(binary.LittleEndian.Uint16(buf[9:]))
	p := nodeHdr
	for i := 0; i < count; i++ {
		kl := int(binary.LittleEndian.Uint16(buf[p:]))
		p += 2
		key := append([]byte(nil), buf[p:p+kl]...)
		p += kl
		n.keys = append(n.keys, key)
		if n.leaf {
			n.refs = append(n.refs, docRef{
				off:   int64(binary.LittleEndian.Uint64(buf[p:])),
				pages: binary.LittleEndian.Uint16(buf[p+8:]),
				vlen:  binary.LittleEndian.Uint32(buf[p+10:]),
			})
			p += 14
			n.size += leafEntrySize(key)
		} else {
			n.kids = append(n.kids, child{off: int64(binary.LittleEndian.Uint64(buf[p:]))})
			p += 8
			n.size += internalEntrySize(key)
		}
	}
	return n, nil
}

func checksum32(b []byte) uint32 {
	var h uint32 = 2166136261
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}
