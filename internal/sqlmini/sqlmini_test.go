package sqlmini

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/ssd"
)

func testDB(t *testing.T, mode Mode, mut func(*Config)) (*DB, *ssd.Device, *sim.Task) {
	t.Helper()
	cfg := ssd.DefaultConfig(512)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	dev, err := ssd.New("sql", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	fs, err := fsim.Format(task, dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := Config{Mode: mode}
	if mut != nil {
		mut(&dcfg)
	}
	db, err := Open(task, fs, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, task
}

func reopen(t *testing.T, db *DB, dev *ssd.Device, task *sim.Task) *DB {
	t.Helper()
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	fs2, err := fsim.Mount(task, dev)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(task, fs2, db.cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db2
}

func allModes() []Mode { return []Mode{Rollback, WAL, Share} }

func TestBasicPutGetAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			db, _, task := testDB(t, mode, nil)
			err := db.Update(task, func(tx *Tx) error {
				for i := 0; i < 50; i++ {
					if err := tx.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				v, ok, err := db.Get(task, []byte(fmt.Sprintf("k%03d", i)))
				if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("k%03d = %q %v %v", i, v, ok, err)
				}
			}
		})
	}
}

func TestAbortDiscardsAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			db, _, task := testDB(t, mode, nil)
			if err := db.Update(task, func(tx *Tx) error {
				return tx.Put([]byte("keep"), []byte("yes"))
			}); err != nil {
				t.Fatal(err)
			}
			wantErr := fmt.Errorf("boom")
			err := db.Update(task, func(tx *Tx) error {
				if err := tx.Put([]byte("ghost"), []byte("no")); err != nil {
					return err
				}
				return wantErr
			})
			if err != wantErr {
				t.Fatalf("err = %v", err)
			}
			if _, ok, _ := db.Get(task, []byte("ghost")); ok {
				t.Fatal("aborted write visible")
			}
			if v, ok, _ := db.Get(task, []byte("keep")); !ok || string(v) != "yes" {
				t.Fatal("committed write lost after abort")
			}
		})
	}
}

func TestCommittedSurvivesCrashAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			db, dev, task := testDB(t, mode, nil)
			for round := 0; round < 10; round++ {
				round := round
				if err := db.Update(task, func(tx *Tx) error {
					for i := 0; i < 10; i++ {
						k := fmt.Sprintf("k%03d", (round*10+i)%40)
						if err := tx.Put([]byte(k), []byte(fmt.Sprintf("r%d-%d", round, i))); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			db2 := reopen(t, db, dev, task)
			// Last writers win: round 9 wrote keys (90..99)%40 = 10..19;
			// round 7 wrote 30..39.
			for i := 0; i < 10; i++ {
				k := fmt.Sprintf("k%03d", 10+i)
				v, ok, err := db2.Get(task, []byte(k))
				if err != nil || !ok {
					t.Fatalf("%s: %v %v", k, ok, err)
				}
				if string(v) != fmt.Sprintf("r9-%d", i) {
					t.Fatalf("%s = %q", k, v)
				}
				k = fmt.Sprintf("k%03d", 30+i)
				v, ok, err = db2.Get(task, []byte(k))
				if err != nil || !ok {
					t.Fatalf("%s: %v %v", k, ok, err)
				}
				if string(v) != fmt.Sprintf("r7-%d", i) {
					t.Fatalf("%s = %q", k, v)
				}
			}
		})
	}
}

func TestRollbackJournalRollsBackTornCommit(t *testing.T) {
	// Crash between journal sync and commit point: the journaled
	// before-images must restore the pre-transaction state.
	db, dev, task := testDB(t, Rollback, nil)
	if err := db.Update(task, func(tx *Tx) error {
		return tx.Put([]byte("acct"), []byte("balance=100"))
	}); err != nil {
		t.Fatal(err)
	}
	// Manually run half a commit: journal + in-place writes, then "crash"
	// before the journal truncate (the commit point).
	db.inTxn = true
	db.txnPages = make(map[uint32]bool)
	tree := newTreeForTest(db)
	if err := tree.Put(task, []byte("acct"), []byte("balance=999")); err != nil {
		t.Fatal(err)
	}
	f, err := db.pool.Get(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.renderMeta(f.Data)
	f.MarkDirty()
	f.Release()
	pages := db.dirtySorted()
	buf := make([]byte, db.cfg.PageSize)
	ps := int64(db.cfg.PageSize)
	if _, err := db.writeGroup(task, db.jrnl, 0, pages, func(p uint32) ([]byte, error) {
		for i := range buf {
			buf[i] = 0
		}
		if ps*int64(p) < db.file.Size() {
			db.file.ReadAt(task, buf, ps*int64(p))
		}
		stamp(buf, p)
		return buf, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.jrnl.Sync(task); err != nil {
		t.Fatal(err)
	}
	if err := db.pool.FlushAll(task); err != nil {
		t.Fatal(err)
	}
	if err := db.file.Sync(task); err != nil {
		t.Fatal(err)
	}
	// CRASH before journal truncate: hot journal remains.
	db2 := reopen(t, db, dev, task)
	if db2.Stats().RolledBack == 0 {
		t.Fatal("hot journal not rolled back")
	}
	v, ok, err := db2.Get(task, []byte("acct"))
	if err != nil || !ok {
		t.Fatalf("acct: %v %v", ok, err)
	}
	if string(v) != "balance=100" {
		t.Fatalf("torn transaction leaked: %q", v)
	}
}

func TestWALRecoversCommittedGroups(t *testing.T) {
	db, dev, task := testDB(t, WAL, func(c *Config) { c.CheckpointEvery = 10000 })
	for i := 0; i < 20; i++ {
		if err := db.Update(task, func(tx *Tx) error {
			return tx.Put([]byte(fmt.Sprintf("w%02d", i)), []byte(fmt.Sprintf("v%d", i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Checkpoints != 0 {
		t.Fatal("premature checkpoint; widen CheckpointEvery")
	}
	// Home file is stale for most pages; recovery must come from the WAL.
	db2 := reopen(t, db, dev, task)
	if db2.Stats().WALRecovered == 0 {
		t.Fatal("nothing replayed from WAL")
	}
	for i := 0; i < 20; i++ {
		v, ok, err := db2.Get(task, []byte(fmt.Sprintf("w%02d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("w%02d = %q %v %v", i, v, ok, err)
		}
	}
}

func TestWALCheckpointResetsLog(t *testing.T) {
	db, _, task := testDB(t, WAL, func(c *Config) { c.CheckpointEvery = 8 })
	for i := 0; i < 30; i++ {
		if err := db.Update(task, func(tx *Tx) error {
			return tx.Put([]byte(fmt.Sprintf("w%02d", i)), bytes.Repeat([]byte{byte(i)}, 40))
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints")
	}
	if st.PagesToHome == 0 {
		t.Fatal("checkpoint wrote nothing home")
	}
}

func TestShareCommitWritesOnce(t *testing.T) {
	writes := func(mode Mode) int64 {
		db, dev, task := testDB(t, mode, func(c *Config) { c.CheckpointEvery = 16 })
		dev.ResetStats()
		for i := 0; i < 60; i++ {
			if err := db.Update(task, func(tx *Tx) error {
				return tx.Put([]byte(fmt.Sprintf("k%03d", i%20)), bytes.Repeat([]byte{byte(i)}, 60))
			}); err != nil {
				t.Fatal(err)
			}
		}
		return dev.Stats().FTL.HostWrites
	}
	rb := writes(Rollback)
	wal := writes(WAL)
	sh := writes(Share)
	if sh >= wal {
		t.Fatalf("SHARE wrote %d pages, WAL wrote %d; expected fewer", sh, wal)
	}
	if sh >= rb {
		t.Fatalf("SHARE wrote %d pages, rollback wrote %d; expected far fewer", sh, rb)
	}
	if wal >= rb {
		t.Fatalf("WAL wrote %d pages, rollback wrote %d; expected fewer", wal, rb)
	}
}

func TestShareCommitIsFastest(t *testing.T) {
	elapsed := func(mode Mode) int64 {
		db, _, task := testDB(t, mode, nil)
		start := task.Now()
		for i := 0; i < 40; i++ {
			if err := db.Update(task, func(tx *Tx) error {
				return tx.Put([]byte(fmt.Sprintf("k%03d", i%15)), bytes.Repeat([]byte{byte(i)}, 60))
			}); err != nil {
				t.Fatal(err)
			}
		}
		return task.Now() - start
	}
	rb := elapsed(Rollback)
	sh := elapsed(Share)
	if sh >= rb {
		t.Fatalf("SHARE took %d, rollback took %d; journaling off should win", sh, rb)
	}
}

func TestRandomizedAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			db, dev, task := testDB(t, mode, func(c *Config) { c.CheckpointEvery = 20 })
			rng := rand.New(rand.NewSource(77))
			model := map[string][]byte{}
			for step := 0; step < 40; step++ {
				batch := map[string][]byte{}
				del := map[string]bool{}
				err := db.Update(task, func(tx *Tx) error {
					for j := 0; j < 1+rng.Intn(4); j++ {
						k := fmt.Sprintf("k%03d", rng.Intn(60))
						if rng.Intn(6) == 0 {
							if _, err := tx.Delete([]byte(k)); err != nil {
								return err
							}
							del[k] = true
							delete(batch, k)
						} else {
							v := make([]byte, 20+rng.Intn(80))
							rng.Read(v)
							if err := tx.Put([]byte(k), v); err != nil {
								return err
							}
							batch[k] = v
							delete(del, k)
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for k, v := range batch {
					model[k] = v
				}
				for k := range del {
					delete(model, k)
				}
				if step%13 == 12 {
					db = reopen(t, db, dev, task)
				}
			}
			db = reopen(t, db, dev, task)
			for k, v := range model {
				got, ok, err := db.Get(task, []byte(k))
				if err != nil || !ok {
					t.Fatalf("%s: %v %v", k, ok, err)
				}
				if !bytes.Equal(got, v) {
					t.Fatalf("%s mismatch", k)
				}
			}
		})
	}
}

// helpers

func newTreeForTest(db *DB) *treeHandle {
	return &treeHandle{db: db}
}

type treeHandle struct{ db *DB }

func (h *treeHandle) Put(t *sim.Task, k, v []byte) error {
	tree := btreeOpen(h.db)
	return tree.Put(t, k, v)
}
