package sqlmini

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"share/internal/btree"
	"share/internal/core"
	"share/internal/sim"
	"share/internal/ssd"
)

// Log-file group layout (journal and WAL share it): a header page
// [crc u32][magic u32][seq u64][count u32][pageNos ...] followed by count
// page images (each carrying its own btree checksum). A group is valid
// only if the header checksum and every image checksum verify.
const (
	groupMagic = 0x53514C47 // "SQLG"
)

func checksum32(b []byte) uint32 {
	var h uint32 = 2166136261
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// dirtySorted returns the txn's dirty pages in ascending order.
func (db *DB) dirtySorted() []uint32 {
	out := make([]uint32, 0, len(db.txnPages))
	for p := range db.txnPages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// commit makes the finished transaction durable per the configured mode.
func (db *DB) commit(t *sim.Task) error {
	if len(db.txnPages) == 0 {
		return nil
	}
	var err error
	switch db.cfg.Mode {
	case Rollback:
		err = db.commitRollback(t)
	case WAL:
		err = db.commitWAL(t)
	case Share:
		err = db.commitShare(t)
	default:
		err = fmt.Errorf("sqlmini: unknown mode %d", db.cfg.Mode)
	}
	if err == nil {
		db.st.Commits++
		db.txnPages = make(map[uint32]bool)
	}
	return err
}

// writeGroup appends a header + images group at off in file f, reading
// image content through get. Returns the new end offset.
func (db *DB) writeGroup(t *sim.Task, f groupFile, off int64, pages []uint32,
	get func(pageNo uint32) ([]byte, error)) (int64, error) {
	ps := int64(db.cfg.PageSize)
	hdr := make([]byte, db.cfg.PageSize)
	binary.LittleEndian.PutUint32(hdr[4:], groupMagic)
	db.walSeq++
	binary.LittleEndian.PutUint64(hdr[8:], db.walSeq)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(pages)))
	for i, p := range pages {
		binary.LittleEndian.PutUint32(hdr[20+4*i:], p)
	}
	binary.LittleEndian.PutUint32(hdr[0:], checksum32(hdr[4:]))
	if _, err := f.WriteAt(t, hdr, off); err != nil {
		return 0, err
	}
	off += ps
	for _, p := range pages {
		img, err := get(p)
		if err != nil {
			return 0, err
		}
		if _, err := f.WriteAt(t, img, off); err != nil {
			return 0, err
		}
		off += ps
	}
	return off, nil
}

type groupFile interface {
	WriteAt(t *sim.Task, p []byte, off int64) (int, error)
	ReadAt(t *sim.Task, p []byte, off int64) (int, error)
	Size() int64
	Truncate(t *sim.Task, size int64) error
	Sync(t *sim.Task) error
}

// commitRollback: SQLite's classic three-sync protocol.
func (db *DB) commitRollback(t *sim.Task) error {
	pages := db.dirtySorted()
	if len(pages)*4+20 > db.cfg.PageSize {
		return fmt.Errorf("sqlmini: transaction touches %d pages; header overflow", len(pages))
	}
	ps := int64(db.cfg.PageSize)
	// 1. Journal the before-images (read from the file — the cache holds
	//    the new content) and fsync.
	buf := make([]byte, db.cfg.PageSize)
	if _, err := db.writeGroup(t, db.jrnl, 0, pages, func(p uint32) ([]byte, error) {
		for i := range buf {
			buf[i] = 0
		}
		if ps*int64(p) < db.file.Size() {
			if _, err := db.file.ReadAt(t, buf, ps*int64(p)); err != nil && err != io.EOF {
				return nil, err
			}
		}
		// Stamp so the image self-validates even for fresh pages.
		btree.SetPageNo(buf, p)
		btree.SetChecksum(buf)
		return buf, nil
	}); err != nil {
		return err
	}
	db.st.PagesJournaled += int64(len(pages))
	if err := db.jrnl.Sync(t); err != nil {
		return err
	}
	// 2. Write the new pages in place and fsync.
	if err := db.pool.FlushAll(t); err != nil {
		return err
	}
	if err := db.file.Sync(t); err != nil {
		return err
	}
	// 3. Invalidate the journal (truncate) and fsync — the commit point.
	if err := db.jrnl.Truncate(t, 0); err != nil {
		return err
	}
	return db.jrnl.Sync(t)
}

// commitWAL: one group append + one fsync; home pages stay stale until a
// checkpoint.
func (db *DB) commitWAL(t *sim.Task) error {
	pages := db.dirtySorted()
	if len(pages)*4+20 > db.cfg.PageSize {
		return fmt.Errorf("sqlmini: transaction touches %d pages; header overflow", len(pages))
	}
	end, err := db.writeGroup(t, db.wal, db.wal.Size(), pages, func(p uint32) ([]byte, error) {
		f, err := db.pool.Get(t, p)
		if err != nil {
			return nil, err
		}
		btree.SetPageNo(f.Data, p)
		btree.SetChecksum(f.Data)
		img := make([]byte, len(f.Data))
		copy(img, f.Data)
		f.Release()
		db.walMap[p] = img
		return img, nil
	})
	if err != nil {
		return err
	}
	_ = end
	db.st.PagesToWAL += int64(len(pages))
	db.walPages += len(pages)
	if err := db.wal.Sync(t); err != nil {
		return err
	}
	// The frames are durable in the WAL; they need no home flush now.
	db.pool.CleanAll()
	if db.walPages >= db.cfg.CheckpointEvery {
		return db.checkpointWAL(t)
	}
	return nil
}

// checkpointWAL writes the newest WAL image of every page into the
// database file and resets the log — the deferred second write.
func (db *DB) checkpointWAL(t *sim.Task) error {
	ps := int64(db.cfg.PageSize)
	pages := make([]uint32, 0, len(db.walMap))
	for p := range db.walMap {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, p := range pages {
		if _, err := db.file.WriteAt(t, db.walMap[p], ps*int64(p)); err != nil {
			return err
		}
		db.st.PagesToHome++
	}
	if err := db.file.Sync(t); err != nil {
		return err
	}
	if err := db.wal.Truncate(t, 0); err != nil {
		return err
	}
	if err := db.wal.Sync(t); err != nil {
		return err
	}
	db.walMap = make(map[uint32][]byte)
	db.walPages = 0
	db.st.Checkpoints++
	return nil
}

// commitShare: stage once, fsync, remap. No journal, no second write, no
// checkpoint debt; the SHARE command's delta page is the commit record.
func (db *DB) commitShare(t *sim.Task) error {
	pages := db.dirtySorted()
	if len(pages) > db.cfg.StagePages {
		return fmt.Errorf("sqlmini: transaction touches %d pages > stage area %d",
			len(pages), db.cfg.StagePages)
	}
	ps := int64(db.cfg.PageSize)
	// Ensure home pages are allocated so MapRange can translate them.
	maxPage := pages[len(pages)-1]
	if err := db.file.Allocate(t, 0, ps*int64(maxPage+1)); err != nil {
		return err
	}
	for i, p := range pages {
		f, err := db.pool.Get(t, p)
		if err != nil {
			return err
		}
		btree.SetPageNo(f.Data, p)
		btree.SetChecksum(f.Data)
		if _, err := db.stg.WriteAt(t, f.Data, ps*int64(i)); err != nil {
			f.Release()
			return err
		}
		f.Release()
		db.st.PagesStaged++
	}
	if err := db.stg.Sync(t); err != nil {
		return err
	}
	var pairs []ssd.Pair
	for i, p := range pages {
		dst, err := db.file.MapRange(ps*int64(p), ps)
		if err != nil {
			return err
		}
		src, err := db.stg.MapRange(ps*int64(i), ps)
		if err != nil {
			return err
		}
		for j := range dst {
			pairs = append(pairs, ssd.Pair{Dst: dst[j].Start, Src: src[j].Start, Len: dst[j].Len})
		}
		db.st.SharePairs++
	}
	if err := core.ShareAll(t, db.fs.Device(), pairs); err != nil {
		return err
	}
	// The staged copies are now redundant aliases; the pool frames are
	// exactly what the home locations read back.
	db.pool.CleanAll()
	return nil
}

// commitPages force-writes the current dirty set in place (used only for
// database initialization, before any transaction exists).
func (db *DB) commitPages(t *sim.Task) error {
	if err := db.pool.FlushAll(t); err != nil {
		return err
	}
	if err := db.file.Sync(t); err != nil {
		return err
	}
	db.txnPages = make(map[uint32]bool)
	return nil
}

// recoverMode runs the mode's crash-recovery protocol at open.
func (db *DB) recoverMode(t *sim.Task) error {
	switch db.cfg.Mode {
	case Rollback:
		// A hot journal means a transaction's in-place writes may have
		// landed without reaching the commit point: roll them back.
		n, err := db.replayGroups(t, db.jrnl, func(pageNo uint32, img []byte) error {
			_, werr := db.file.WriteAt(t, img, int64(pageNo)*int64(db.cfg.PageSize))
			return werr
		})
		if err != nil {
			return err
		}
		db.st.RolledBack += int64(n)
		if n > 0 {
			if err := db.file.Sync(t); err != nil {
				return err
			}
		}
		if err := db.jrnl.Truncate(t, 0); err != nil {
			return err
		}
		return db.jrnl.Sync(t)
	case WAL:
		// Replay committed WAL groups forward into the file, newest image
		// last (groups are scanned in order).
		n, err := db.replayGroups(t, db.wal, func(pageNo uint32, img []byte) error {
			_, werr := db.file.WriteAt(t, img, int64(pageNo)*int64(db.cfg.PageSize))
			return werr
		})
		if err != nil {
			return err
		}
		db.st.WALRecovered += int64(n)
		if n > 0 {
			if err := db.file.Sync(t); err != nil {
				return err
			}
		}
		if err := db.wal.Truncate(t, 0); err != nil {
			return err
		}
		return db.wal.Sync(t)
	case Share:
		return nil // SHARE commits are atomic at the device: nothing to do
	}
	return nil
}

// replayGroups scans a journal/WAL file and applies every fully valid
// group in order; a torn header or torn image ends the scan (that group
// never committed). Returns the number of images applied.
func (db *DB) replayGroups(t *sim.Task, f groupFile, apply func(pageNo uint32, img []byte) error) (int, error) {
	ps := int64(db.cfg.PageSize)
	hdr := make([]byte, db.cfg.PageSize)
	applied := 0
	var off int64
	var lastSeq uint64
	for off+ps <= f.Size() {
		if _, err := f.ReadAt(t, hdr, off); err != nil {
			break
		}
		if binary.LittleEndian.Uint32(hdr[4:]) != groupMagic {
			break
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != checksum32(hdr[4:]) {
			break
		}
		seq := binary.LittleEndian.Uint64(hdr[8:])
		if seq <= lastSeq {
			break
		}
		count := int(binary.LittleEndian.Uint32(hdr[16:]))
		if off+ps*int64(1+count) > f.Size() {
			break
		}
		// Validate every image before applying any of this group.
		imgs := make([][]byte, count)
		valid := true
		for i := 0; i < count; i++ {
			img := make([]byte, db.cfg.PageSize)
			if _, err := f.ReadAt(t, img, off+ps*int64(1+i)); err != nil {
				valid = false
				break
			}
			if !btree.VerifyChecksum(img) {
				valid = false
				break
			}
			imgs[i] = img
		}
		if !valid {
			break
		}
		for i := 0; i < count; i++ {
			pageNo := binary.LittleEndian.Uint32(hdr[20+4*i:])
			if err := apply(pageNo, imgs[i]); err != nil {
				return applied, err
			}
			applied++
		}
		lastSeq = seq
		off += ps * int64(1+count)
	}
	if db.walSeq < lastSeq {
		db.walSeq = lastSeq
	}
	return applied, nil
}
