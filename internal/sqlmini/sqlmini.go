// Package sqlmini is a miniature SQLite-style embedded database: one
// B+tree in one file, single-writer transactions, and — following §3.3
// and §7 of the paper — three durability modes:
//
//	Rollback — SQLite's classic rollback journal: before-images of every
//	           page a transaction touches are journaled and fsynced, the
//	           pages are written in place and fsynced, and the journal is
//	           invalidated with a third fsync. Three syncs and double
//	           writes per commit.
//	WAL      — write-ahead logging: after-images append to a log with one
//	           fsync; home pages are rewritten later at checkpoints (the
//	           second write is deferred and batched, not avoided).
//	Share    — the paper's proposal: journaling simply turned off. The
//	           transaction's pages are staged once and SHARE remaps them
//	           onto their home locations atomically. One write per page,
//	           ever; recovery is a no-op.
package sqlmini

import (
	"encoding/binary"
	"fmt"

	"share/internal/btree"
	"share/internal/bufpool"
	"share/internal/core"
	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/ssd"
)

// Mode selects the commit protocol.
type Mode int

// Commit protocols.
const (
	Rollback Mode = iota
	WAL
	Share
)

func (m Mode) String() string {
	switch m {
	case Rollback:
		return "rollback-journal"
	case WAL:
		return "wal"
	case Share:
		return "SHARE"
	}
	return "?"
}

// Config sizes the database.
type Config struct {
	Name       string
	Mode       Mode
	PageSize   int   // engine page size (device page multiple)
	CacheBytes int64 // page cache size
	// CheckpointEvery bounds the WAL: after this many logged pages the
	// WAL is checkpointed into the database file.
	CheckpointEvery int
	// StagePages bounds a transaction's dirty set in Share mode (the
	// scratch area size).
	StagePages int
}

func (c *Config) setDefaults(devPage int) error {
	if c.Name == "" {
		c.Name = "sql.db"
	}
	if c.PageSize == 0 {
		c.PageSize = devPage
	}
	if c.PageSize%devPage != 0 {
		return fmt.Errorf("sqlmini: page size %d not a device page multiple", c.PageSize)
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = int64(c.PageSize) * 256
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 256
	}
	if c.StagePages == 0 {
		c.StagePages = 64
	}
	return nil
}

const metaMagic = 0x53514C4D // "SQLM"

// Stats counts commit activity.
type Stats struct {
	Commits        int64
	PagesJournaled int64 // before-images (rollback mode)
	PagesToWAL     int64 // after-images (WAL mode)
	PagesToHome    int64 // in-place page writes
	PagesStaged    int64 // share-mode staged writes
	SharePairs     int64
	Checkpoints    int64
	RolledBack     int64 // pages restored by journal rollback at open
	WALRecovered   int64 // pages replayed from the WAL at open
}

// DB is one database handle.
type DB struct {
	fs   *fsim.FS
	file *fsim.File
	jrnl *fsim.File // rollback journal ("-journal")
	wal  *fsim.File // write-ahead log ("-wal")
	stg  *fsim.File // share-mode staging area ("-stage")
	pool *bufpool.Pool
	cfg  Config

	root uint32
	hwm  uint32

	txnPages map[uint32]bool
	inTxn    bool

	walMap   map[uint32][]byte // newest WAL image per page (read overlay)
	walPages int               // images in the WAL since last checkpoint
	walSeq   uint64

	st Stats
}

// Tx is one read-write transaction (single writer, like SQLite).
type Tx struct {
	db   *DB
	t    *sim.Task
	tree *btree.Tree
}

// Open creates or recovers a database.
func Open(t *sim.Task, fs *fsim.FS, cfg Config) (*DB, error) {
	if err := cfg.setDefaults(fs.Device().PageSize()); err != nil {
		return nil, err
	}
	db := &DB{fs: fs, cfg: cfg, txnPages: make(map[uint32]bool), walMap: make(map[uint32][]byte)}
	fresh := !fs.Exists(cfg.Name)
	var err error
	open := func(name string) (*fsim.File, error) {
		if fs.Exists(name) {
			return fs.Open(t, name)
		}
		return fs.Create(t, name)
	}
	if db.file, err = open(cfg.Name); err != nil {
		return nil, err
	}
	switch cfg.Mode {
	case Rollback:
		if db.jrnl, err = open(cfg.Name + "-journal"); err != nil {
			return nil, err
		}
	case WAL:
		if db.wal, err = open(cfg.Name + "-wal"); err != nil {
			return nil, err
		}
	case Share:
		if db.stg, err = open(cfg.Name + "-stage"); err != nil {
			return nil, err
		}
		if err = db.stg.Allocate(t, 0, int64(cfg.StagePages)*int64(cfg.PageSize)); err != nil {
			return nil, err
		}
	}
	pool, err := bufpool.New(db.file, cfg.PageSize, int(cfg.CacheBytes/int64(cfg.PageSize)), &homeFlusher{db: db})
	if err != nil {
		return nil, err
	}
	pool.OnDirty = func(pageNo uint32) {
		if db.inTxn {
			db.txnPages[pageNo] = true
		}
	}
	pool.MissOverlay = func(pageNo uint32) []byte {
		if db.cfg.Mode == WAL {
			return db.walMap[pageNo]
		}
		return nil
	}
	// Mid-transaction pages must not reach the file before the commit
	// protocol says so (no-steal).
	pool.Protected = func(pageNo uint32) bool { return db.inTxn && db.txnPages[pageNo] }
	db.pool = pool

	if fresh {
		if err := db.initMeta(t); err != nil {
			return nil, err
		}
		if err := db.commitPages(t); err != nil { // make page 0 + root durable
			return nil, err
		}
	} else {
		if err := db.recoverMode(t); err != nil {
			return nil, err
		}
		if err := db.loadMeta(t); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// homeFlusher writes pages in place; only the commit/checkpoint paths use
// it, each already holding whatever durability protocol applies.
type homeFlusher struct{ db *DB }

func (h *homeFlusher) FlushBatch(t *sim.Task, pages []bufpool.PageImage) error {
	ps := int64(h.db.cfg.PageSize)
	for _, pg := range pages {
		btree.SetPageNo(pg.Data, pg.PageNo)
		btree.SetChecksum(pg.Data)
		if _, err := h.db.file.WriteAt(t, pg.Data, ps*int64(pg.PageNo)); err != nil {
			return err
		}
		h.db.st.PagesToHome++
	}
	return nil
}

func (db *DB) initMeta(t *sim.Task) error {
	db.hwm = 2
	db.root = 1
	f, err := db.pool.Get(t, 0)
	if err != nil {
		return err
	}
	db.renderMeta(f.Data)
	f.MarkDirty()
	f.Release()
	r, err := db.pool.Get(t, 1)
	if err != nil {
		return err
	}
	btree.InitPage(r.Data)
	r.MarkDirty()
	r.Release()
	db.inTxn = false
	db.txnPages = map[uint32]bool{0: true, 1: true}
	return nil
}

// meta layout after the common header: 12 u32 magic, 16 u32 root,
// 20 u16 (unused), 26.. reserved (22..26 = flush-time page number).
func (db *DB) renderMeta(d []byte) {
	for i := 12; i < len(d); i++ {
		d[i] = 0
	}
	binary.LittleEndian.PutUint32(d[12:], metaMagic)
	binary.LittleEndian.PutUint32(d[16:], db.root)
	binary.LittleEndian.PutUint32(d[26:], db.hwm)
}

func (db *DB) loadMeta(t *sim.Task) error {
	f, err := db.pool.Get(t, 0)
	if err != nil {
		return err
	}
	defer f.Release()
	if binary.LittleEndian.Uint32(f.Data[12:]) != metaMagic {
		return fmt.Errorf("sqlmini: bad meta page")
	}
	db.root = binary.LittleEndian.Uint32(f.Data[16:])
	db.hwm = binary.LittleEndian.Uint32(f.Data[26:])
	return nil
}

// pager adapts DB to btree.Pager.
type pager struct {
	db *DB
}

func (p *pager) Get(t *sim.Task, pageNo uint32) (*bufpool.Frame, error) {
	return p.db.pool.Get(t, pageNo)
}

func (p *pager) Alloc(t *sim.Task) (uint32, error) {
	n := p.db.hwm
	p.db.hwm++
	// The meta page changes with the allocation; fold it into the txn.
	f, err := p.db.pool.Get(t, 0)
	if err != nil {
		return 0, err
	}
	p.db.renderMeta(f.Data)
	f.MarkDirty()
	f.Release()
	return n, nil
}

func (p *pager) Free(t *sim.Task, pageNo uint32) error { return nil }
func (p *pager) PageSize() int                         { return p.db.cfg.PageSize }

// Update runs fn inside a read-write transaction and commits it durably
// according to the configured mode. If fn returns an error the
// transaction is discarded (in-memory pages are dropped and re-read).
func (db *DB) Update(t *sim.Task, fn func(tx *Tx) error) error {
	if db.inTxn {
		return fmt.Errorf("sqlmini: nested transaction")
	}
	db.inTxn = true
	db.txnPages = make(map[uint32]bool)
	rootBefore := db.root
	hwmBefore := db.hwm
	tree := btree.Open(&pager{db: db}, db.root, func(newRoot uint32) {
		db.root = newRoot
	})
	tx := &Tx{db: db, t: t, tree: tree}
	if err := fn(tx); err != nil {
		// Abort: throw away every cached page the txn touched.
		db.pool.Drop()
		db.root = rootBefore
		db.hwm = hwmBefore
		db.inTxn = false
		if db.cfg.Mode == WAL {
			// Dropped frames whose truth lives in the WAL re-load via the
			// overlay; nothing else to do.
			return err
		}
		return err
	}
	// Root/hwm may have moved: refresh the meta page inside the txn.
	f, err := db.pool.Get(t, 0)
	if err != nil {
		db.inTxn = false
		return err
	}
	db.renderMeta(f.Data)
	f.MarkDirty()
	f.Release()
	err = db.commit(t)
	db.inTxn = false
	return err
}

// Get reads a key outside any transaction.
func (db *DB) Get(t *sim.Task, key []byte) ([]byte, bool, error) {
	tree := btree.Open(&pager{db: db}, db.root, nil)
	return tree.Get(t, key)
}

// Put stores key/value inside the transaction.
func (tx *Tx) Put(key, value []byte) error { return tx.tree.Put(tx.t, key, value) }

// Delete removes a key inside the transaction.
func (tx *Tx) Delete(key []byte) (bool, error) { return tx.tree.Delete(tx.t, key) }

// Get reads a key inside the transaction.
func (tx *Tx) Get(key []byte) ([]byte, bool, error) { return tx.tree.Get(tx.t, key) }

// Scan iterates [start, end) inside the transaction.
func (tx *Tx) Scan(start, end []byte, fn func(k, v []byte) bool) error {
	return tx.tree.Scan(tx.t, start, end, fn)
}

// Stats returns commit counters.
func (db *DB) Stats() Stats { return db.st }

// Root returns the current tree root (for tests).
func (db *DB) Root() uint32 { return db.root }

var _ = ssd.Pair{} // keep the ssd import for the share path below
var _ = core.ShareAll

// btreeOpen returns a tree handle bound to the current root; exported to
// the package tests, which drive partial commit protocols by hand.
func btreeOpen(db *DB) *btree.Tree {
	return btree.Open(&pager{db: db}, db.root, func(newRoot uint32) { db.root = newRoot })
}

// stamp sets page number and checksum on a raw page (test helper).
func stamp(p []byte, pageNo uint32) {
	btree.SetPageNo(p, pageNo)
	btree.SetChecksum(p)
}
