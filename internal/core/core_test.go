package core

import (
	"bytes"
	"testing"

	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/ssd"
)

func testDev(t *testing.T, blocks int) (*ssd.Device, *sim.Task) {
	t.Helper()
	cfg := ssd.DefaultConfig(blocks)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 16
	dev, err := ssd.New("dev", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, sim.NewSoloTask("t")
}

func TestShareAllSplitsBatches(t *testing.T) {
	dev, task := testDev(t, 128)
	n := dev.MaxShareBatch()*2 + 7
	buf := make([]byte, dev.PageSize())
	var pairs []Pair
	for i := 0; i < n; i++ {
		src := uint32(1000 + i)
		dst := uint32(i)
		buf[0] = byte(i)
		if err := dev.WritePage(task, src, buf); err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, Pair{Dst: dst, Src: src, Len: 1})
	}
	if err := ShareAll(task, dev, pairs); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, dev.PageSize())
	for i := 0; i < n; i++ {
		if err := dev.ReadPage(task, uint32(i), got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("dst %d = %x", i, got[0])
		}
	}
	if cmds := dev.Stats().FTL.Shares; cmds < 3 {
		t.Fatalf("expected >= 3 commands, got %d", cmds)
	}
}

func TestShareAllOversizedRangedPair(t *testing.T) {
	dev, task := testDev(t, 256)
	n := uint32(dev.MaxShareBatch() + 10)
	buf := make([]byte, dev.PageSize())
	for i := uint32(0); i < n; i++ {
		buf[0] = byte(i)
		if err := dev.WritePage(task, 2000+i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := ShareAll(task, dev, []Pair{{Dst: 0, Src: 2000, Len: n}}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, dev.PageSize())
	for i := uint32(0); i < n; i++ {
		if err := dev.ReadPage(task, i, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("page %d = %x", i, got[0])
		}
	}
}

func TestShareAllRejectsZeroLen(t *testing.T) {
	dev, task := testDev(t, 128)
	if err := ShareAll(task, dev, []Pair{{Dst: 0, Src: 1, Len: 0}}); err == nil {
		t.Fatal("zero-length pair accepted")
	}
}

func TestAtomicWriterCommit(t *testing.T) {
	dev, task := testDev(t, 128)
	buf := make([]byte, dev.PageSize())
	// Seed home pages.
	for i := uint32(0); i < 4; i++ {
		buf[0] = 0x10 + byte(i)
		if err := dev.WritePage(task, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	w, err := NewAtomicWriter(dev, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4; i++ {
		buf[0] = 0x20 + byte(i)
		if err := w.Stage(task, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if w.Staged() != 4 {
		t.Fatalf("staged = %d", w.Staged())
	}
	// Homes unchanged until commit.
	if err := dev.ReadPage(task, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x10 {
		t.Fatal("stage leaked to home")
	}
	n, err := w.Commit(task)
	if err != nil || n != 4 {
		t.Fatalf("commit n=%d err=%v", n, err)
	}
	for i := uint32(0); i < 4; i++ {
		if err := dev.ReadPage(task, i, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0x20+byte(i) {
			t.Fatalf("home %d = %x", i, buf[0])
		}
	}
}

func TestAtomicWriterCommitSurvivesCrash(t *testing.T) {
	dev, task := testDev(t, 128)
	buf := make([]byte, dev.PageSize())
	for i := uint32(0); i < 3; i++ {
		buf[0] = 1
		if err := dev.WritePage(task, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Flush(task); err != nil {
		t.Fatal(err)
	}
	w, _ := NewAtomicWriter(dev, 500, 8)
	for i := uint32(0); i < 3; i++ {
		buf[0] = 2
		if err := w.Stage(task, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Commit(task); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 3; i++ {
		if err := dev.ReadPage(task, i, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 2 {
			t.Fatalf("committed page %d rolled back to %x", i, buf[0])
		}
	}
}

func TestAtomicWriterAbort(t *testing.T) {
	dev, task := testDev(t, 128)
	buf := make([]byte, dev.PageSize())
	buf[0] = 9
	if err := dev.WritePage(task, 0, buf); err != nil {
		t.Fatal(err)
	}
	w, _ := NewAtomicWriter(dev, 500, 4)
	buf[0] = 7
	if err := w.Stage(task, 0, buf); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if n, err := w.Commit(task); err != nil || n != 0 {
		t.Fatalf("commit after abort: n=%d err=%v", n, err)
	}
	if err := dev.ReadPage(task, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Fatal("abort leaked staged data")
	}
}

func TestAtomicWriterLimits(t *testing.T) {
	dev, _ := testDev(t, 128)
	if _, err := NewAtomicWriter(dev, 0, 0); err == nil {
		t.Fatal("empty scratch accepted")
	}
	if _, err := NewAtomicWriter(dev, 0, uint32(dev.MaxShareBatch()+1)); err == nil {
		t.Fatal("oversized scratch accepted")
	}
	w, _ := NewAtomicWriter(dev, 500, 1)
	task := sim.NewSoloTask("t")
	buf := make([]byte, dev.PageSize())
	if err := w.Stage(task, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := w.Stage(task, 1, buf); err == nil {
		t.Fatal("scratch overflow accepted")
	}
}

func TestCopyFileZeroCopy(t *testing.T) {
	dev, task := testDev(t, 256)
	fs, err := fsim.Format(task, dev, 16)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := fs.Create(task, "orig")
	data := bytes.Repeat([]byte{0xE7}, 40*512+100) // partial tail page
	if _, err := src.WriteAt(task, data, 0); err != nil {
		t.Fatal(err)
	}
	before := dev.Stats().FTL.HostWrites
	dst, err := CopyFile(task, fs, "dup", "orig")
	if err != nil {
		t.Fatal(err)
	}
	writes := dev.Stats().FTL.HostWrites - before
	if writes > 3 {
		t.Fatalf("copy wrote %d pages; want <= 3 (tail only)", writes)
	}
	if dst.Size() != int64(len(data)) {
		t.Fatalf("size = %d", dst.Size())
	}
	got := make([]byte, len(data))
	if _, err := dst.ReadAt(task, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("copy content mismatch")
	}
}
