// Package core is the host-side SHARE library — the user-level protocol
// layer the paper describes between applications and the SHARE-capable
// device (its prototype speaks ioctl to the OpenSSD firmware). It provides
//
//   - batch management: arbitrarily large pair lists are split into
//     device-sized commands, each of which is individually atomic;
//   - an atomic multi-page commit primitive (journal-free shadow write +
//     one SHARE batch), the pattern InnoDB's doublewrite integration and
//     the SQLite discussion in §3.3 both reduce to;
//   - zero-copy file duplication through the file-system SHARE ioctl.
package core

import (
	"fmt"

	"share/internal/fsim"
	"share/internal/sim"
	"share/internal/ssd"
)

// Pair re-exports the SHARE remapping pair.
type Pair = ssd.Pair

// ShareAll issues pairs to the device, splitting into batches no larger
// than the device's atomic limit. Each issued command is atomic; the whole
// sequence is not (callers needing all-or-nothing across more pages than
// one batch must keep their journal copy valid until completion, which is
// exactly what the doublewrite integration does).
func ShareAll(t *sim.Task, dev *ssd.Device, pairs []Pair) error {
	maxUnits := dev.MaxShareBatch()
	var batch []Pair
	units := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := dev.Share(t, batch)
		batch = batch[:0]
		units = 0
		return err
	}
	for _, p := range pairs {
		if p.Len == 0 {
			return fmt.Errorf("core: zero-length share pair")
		}
		if int(p.Len) > maxUnits {
			// Split one oversized ranged pair across batches.
			if err := flush(); err != nil {
				return err
			}
			off := uint32(0)
			for off < p.Len {
				n := p.Len - off
				if int(n) > maxUnits {
					n = uint32(maxUnits)
				}
				if err := dev.Share(t, []Pair{{Dst: p.Dst + off, Src: p.Src + off, Len: n}}); err != nil {
					return err
				}
				off += n
			}
			continue
		}
		if units+int(p.Len) > maxUnits {
			if err := flush(); err != nil {
				return err
			}
		}
		batch = append(batch, p)
		units += int(p.Len)
	}
	return flush()
}

// AtomicWriter commits groups of page updates atomically without a
// redundant second write: new versions are first written to a scratch
// (shadow) region, then a single SHARE batch remaps every home page onto
// its shadow copy. If the batch fits the device's atomic limit, the commit
// is all-or-nothing across power failure.
type AtomicWriter struct {
	dev        *ssd.Device
	scratchLPN uint32
	scratchLen uint32
	next       uint32
	pending    []Pair
}

// NewAtomicWriter reserves [scratchLPN, scratchLPN+scratchLen) as the
// shadow area. The area must not overlap live data.
func NewAtomicWriter(dev *ssd.Device, scratchLPN, scratchLen uint32) (*AtomicWriter, error) {
	if scratchLen == 0 {
		return nil, fmt.Errorf("core: empty scratch area")
	}
	if int(scratchLen) > dev.MaxShareBatch() {
		return nil, fmt.Errorf("core: scratch area %d exceeds atomic batch limit %d",
			scratchLen, dev.MaxShareBatch())
	}
	return &AtomicWriter{dev: dev, scratchLPN: scratchLPN, scratchLen: scratchLen}, nil
}

// Stage writes one page's new content into the shadow area and records
// the intended home location. Nothing is visible at home yet.
func (w *AtomicWriter) Stage(t *sim.Task, home uint32, data []byte) error {
	if w.next >= w.scratchLen {
		return fmt.Errorf("core: scratch area full (%d pages)", w.scratchLen)
	}
	lpn := w.scratchLPN + w.next
	if err := w.dev.WritePage(t, lpn, data); err != nil {
		return err
	}
	w.pending = append(w.pending, Pair{Dst: home, Src: lpn, Len: 1})
	w.next++
	return nil
}

// Commit makes every staged page visible at its home location atomically:
// a device flush persists the shadow writes, then one SHARE batch remaps
// all homes. Returns the number of pages committed.
func (w *AtomicWriter) Commit(t *sim.Task) (int, error) {
	if len(w.pending) == 0 {
		return 0, nil
	}
	if err := w.dev.Flush(t); err != nil {
		return 0, err
	}
	if err := w.dev.Share(t, w.pending); err != nil {
		return 0, err
	}
	n := len(w.pending)
	w.pending = w.pending[:0]
	w.next = 0
	return n, nil
}

// Abort discards staged pages without touching home locations.
func (w *AtomicWriter) Abort() {
	w.pending = w.pending[:0]
	w.next = 0
}

// Staged reports how many pages are staged but uncommitted.
func (w *AtomicWriter) Staged() int { return len(w.pending) }

// CopyFile duplicates src into a new file named dstName without copying
// any data: it allocates the destination and SHAREs the whole range (the
// "file copy operations ... almost without copying data" case from §1).
// The trailing partial page, if any, is copied through the host since
// SHARE works in whole mapping units.
func CopyFile(t *sim.Task, fs *fsim.FS, dstName, srcName string) (*fsim.File, error) {
	src, err := fs.Open(t, srcName)
	if err != nil {
		return nil, err
	}
	dst, err := fs.Create(t, dstName)
	if err != nil {
		return nil, err
	}
	size := src.Size()
	ps := int64(fs.Device().PageSize())
	whole := size / ps * ps
	if whole > 0 {
		if err := dst.Allocate(t, 0, whole); err != nil {
			return nil, err
		}
		if err := fs.ShareRange(t, dst, 0, src, 0, whole); err != nil {
			return nil, err
		}
	}
	if tail := size - whole; tail > 0 {
		buf := make([]byte, tail)
		if _, err := src.ReadAt(t, buf, whole); err != nil {
			return nil, err
		}
		if _, err := dst.WriteAt(t, buf, whole); err != nil {
			return nil, err
		}
	}
	if err := dst.Truncate(t, size); err != nil {
		return nil, err
	}
	return dst, nil
}
