package fsim

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

// crashMount power-cycles the device and remounts the file system.
func crashMount(t *testing.T, dev *ssd.Device, task *sim.Task) *FS {
	t.Helper()
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(task, dev)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestFSSurvivesDeviceFaults is the end-to-end fault scenario: a device
// that ships with a factory-bad block and then suffers a transient program
// fault, a permanent program failure (block retirement mid-file-write) and
// ECC-corrected reads, followed by a power cut in the middle of a write
// burst. The file system above must keep every synced file intact through
// all of it, and the device must keep serving after recovery.
func TestFSSurvivesDeviceFaults(t *testing.T) {
	cfg := ssd.DefaultConfig(64)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 16
	cfg.FTL.SpareBlocks = 6
	plan := nand.NewFaultPlan(11)
	plan.FactoryBad = []int{9}
	plan.PReadCorrectable = 0.01
	// Scheduled media faults landing inside the file-write phase below.
	plan.AtProgram(60, nand.FaultProgramTransient)
	plan.AtProgram(110, nand.FaultProgramPermanent)
	cfg.Fault = plan
	dev, err := ssd.New("ssd", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("fs")
	fs, err := Format(task, dev, 16)
	if err != nil {
		t.Fatal(err)
	}

	want := map[string][]byte{}
	for i, nm := range []string{"log", "db", "blob"} {
		f, err := fs.Create(task, nm)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(0x30 + i)}, 40*512)
		if _, err := f.WriteAt(task, data, 0); err != nil {
			t.Fatalf("write %s through faults: %v", nm, err)
		}
		want[nm] = data
	}
	if err := fs.SyncMeta(task); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	if st.FTL.ProgramRetries == 0 {
		t.Error("transient fault not absorbed by the retry path")
	}
	if st.FTL.RetiredBlocks < 2 { // factory-bad + permanent failure
		t.Errorf("RetiredBlocks = %d, want >= 2", st.FTL.RetiredBlocks)
	}
	if dev.ReadOnly() {
		t.Fatal("device degraded with spares remaining")
	}

	// Power cut in the middle of an unsynced write burst.
	dev.PowerCutAfter(7)
	g, err := fs.Open(task, "db")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := g.WriteAt(task, bytes.Repeat([]byte{0xEE}, 512), int64(i)*512); err != nil {
			break // power died mid-burst, as intended
		}
	}
	dev.DisablePowerCut()
	fs2 := crashMount(t, dev, task)
	for nm, data := range want {
		f, err := fs2.Open(task, nm)
		if err != nil {
			t.Fatalf("synced file %s lost: %v", nm, err)
		}
		if f.Size() < int64(len(data)) {
			t.Fatalf("%s shrank to %d bytes", nm, f.Size())
		}
		if nm == "db" {
			continue // overwritten after the sync: content may be old or new
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(task, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("synced file %s corrupted after faults + power cut", nm)
		}
	}
	// The recovered device keeps serving.
	h, err := fs2.Create(task, "after")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(task, bytes.Repeat([]byte{0x5A}, 4*512), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs2.SyncMeta(task); err != nil {
		t.Fatal(err)
	}
	if err := dev.FTLForTest().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFastCommitPersistsInodeChanges(t *testing.T) {
	fs, dev, task := testFS(t, 64)
	f, _ := fs.Create(task, "fc")
	if _, err := f.WriteAt(task, bytes.Repeat([]byte{7}, 5*512), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil { // full txn: create dirties the directory
		t.Fatal(err)
	}
	jBefore := fs.Stats().MetaJournalWrites
	// Overwrite inside the file: only the inode (mtime) is dirty, so the
	// fsync should cost exactly one fast-commit journal block.
	if _, err := f.WriteAt(task, bytes.Repeat([]byte{8}, 2*512), 3*512); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats().MetaJournalWrites - jBefore; got != 1 {
		t.Fatalf("inode-only fsync wrote %d journal blocks, want 1 (fast commit)", got)
	}
	fs2 := crashMount(t, dev, task)
	g, err := fs2.Open(task, "fc")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 5*512 {
		t.Fatalf("size after fast-commit replay = %d, want %d", g.Size(), 5*512)
	}
	buf := make([]byte, 512)
	if _, err := g.ReadAt(task, buf, 4*512); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if buf[0] != 8 {
		t.Fatalf("overwritten data lost: %x", buf[0])
	}
}

func TestFastCommitThenFullTxnOrdering(t *testing.T) {
	fs, dev, task := testFS(t, 64)
	f, _ := fs.Create(task, "mix")
	if _, err := f.WriteAt(task, make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil { // full txn (dir dirty)
		t.Fatal(err)
	}
	if _, err := f.WriteAt(task, make([]byte, 512), 512); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil { // fast commit (inode only)
		t.Fatal(err)
	}
	// Create another file: directory dirty again -> full txn AFTER the fc.
	g, _ := fs.Create(task, "later")
	if _, err := g.WriteAt(task, make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil {
		t.Fatal(err)
	}
	fs2 := crashMount(t, dev, task)
	f2, err := fs2.Open(task, "mix")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 1024 {
		t.Fatalf("mix size = %d", f2.Size())
	}
	if !fs2.Exists("later") {
		t.Fatal("later lost")
	}
}

// TestPropertyRandomFSOpsSurviveCrashes drives random file-system
// operations, syncing and crash-remounting at random points. After every
// remount, files that were synced and untouched since must read back
// exactly; files touched after the sync may have lost the unsynced tail
// but must never corrupt previously synced bytes' structure (size never
// shrinks below the synced size).
func TestPropertyRandomFSOpsSurviveCrashes(t *testing.T) {
	seeds := []int64{3, 17, 99}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runRandomFSOps(t, seed)
		})
	}
}

func runRandomFSOps(t *testing.T, seed int64) {
	fs, dev, task := testFS(t, 256)
	rng := rand.New(rand.NewSource(seed))

	// State as of the last SyncMeta, read back from the fs itself, plus
	// which files were modified or removed since then.
	synced := map[string][]byte{}
	touched := map[string]bool{}

	snapshot := func() {
		synced = map[string][]byte{}
		touched = map[string]bool{}
		for _, nm := range []string{"a", "b", "c", "d"} {
			if !fs.Exists(nm) {
				continue
			}
			f, err := fs.Open(task, nm)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, f.Size())
			if len(data) > 0 {
				if _, err := f.ReadAt(task, data, 0); err != nil && err != io.EOF {
					t.Fatal(err)
				}
			}
			synced[nm] = data
		}
	}
	snapshot()

	names := []string{"a", "b", "c", "d"}
	for step := 0; step < 400; step++ {
		name := names[rng.Intn(len(names))]
		switch op := rng.Intn(10); {
		case op < 5: // write somewhere
			if !fs.Exists(name) {
				if _, err := fs.Create(task, name); err != nil {
					t.Fatalf("step %d create: %v", step, err)
				}
			}
			f, err := fs.Open(task, name)
			if err != nil {
				t.Fatalf("step %d open: %v", step, err)
			}
			off := rng.Intn(8) * 512
			buf := make([]byte, 512*(1+rng.Intn(3)))
			rng.Read(buf)
			if _, err := f.WriteAt(task, buf, int64(off)); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			touched[name] = true
		case op < 6: // remove
			if fs.Exists(name) {
				if err := fs.Remove(task, name); err != nil {
					t.Fatalf("step %d remove: %v", step, err)
				}
				touched[name] = true
			}
		case op < 8: // sync: current state becomes the durable truth
			if err := fs.SyncMeta(task); err != nil {
				t.Fatalf("step %d sync: %v", step, err)
			}
			snapshot()
		default: // crash + remount
			fs = crashMount(t, dev, task)
			for nm, want := range synced {
				if touched[nm] {
					// Modified since the sync: only structural guarantees.
					if fs.Exists(nm) {
						f, err := fs.Open(task, nm)
						if err != nil {
							t.Fatal(err)
						}
						_ = f
					}
					continue
				}
				f, err := fs.Open(task, nm)
				if err != nil {
					t.Fatalf("step %d: synced file %s lost: %v (seed %d)", step, nm, err, seed)
				}
				if f.Size() != int64(len(want)) {
					t.Fatalf("step %d: %s size %d, want %d (seed %d)", step, nm, f.Size(), len(want), seed)
				}
				got := make([]byte, len(want))
				if len(got) > 0 {
					if _, err := f.ReadAt(task, got, 0); err != nil && err != io.EOF {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d: %s content diverged (seed %d)", step, nm, seed)
					}
				}
			}
			snapshot() // resynchronize with what survived
		}
	}
}

// TestCheckpointDoesNotLeakUncommittedMetadata is the regression test for
// a journaling bug: checkpointMeta used to re-render metadata home pages
// from the *current* in-memory state instead of the images captured at
// commit time. When a journal-full checkpoint fired at the start of a
// transaction, uncommitted metadata (a freshly created file's inode) was
// flushed to its home location; a crash before the transaction's commit
// record then exposed the inode without its directory entry or bitmap
// bits. The test fills the journal, arms a power cut at every device
// mutation across the checkpoint-triggering transaction, and checks the
// recovered metadata stays self-consistent.
func TestCheckpointDoesNotLeakUncommittedMetadata(t *testing.T) {
	const pageBytes = 512
	content := func(i int) []byte {
		b := make([]byte, pageBytes)
		for j := range b {
			b[j] = byte(i + j)
		}
		return b
	}
	build := func() (*FS, *ssd.Device, *sim.Task, int) {
		fs, dev, task := testFS(t, 256)
		f, err := fs.Create(task, "a")
		if err != nil {
			t.Fatal(err)
		}
		// Fill the journal so the next multi-page transaction forces a
		// checkpoint before writing its own records.
		pages := 0
		for fs.jHead < fs.lay.journalPages-4 {
			if _, err := f.WriteAt(task, content(pages), int64(pages)*pageBytes); err != nil {
				t.Fatal(err)
			}
			pages++
			if err := fs.SyncMeta(task); err != nil {
				t.Fatal(err)
			}
		}
		return fs, dev, task, pages
	}
	vuln := func(fs *FS, task *sim.Task) error {
		b, err := fs.Create(task, "b")
		if err != nil {
			return err
		}
		if err := b.Allocate(task, 0, 32*pageBytes); err != nil {
			return err
		}
		return fs.SyncMeta(task)
	}

	// Boundary space of the vulnerable transaction, measured cleanly.
	fs0, dev0, task0, _ := build()
	homeBefore := fs0.metaHomeWrites
	before := dev0.MutatingOps()
	if err := vuln(fs0, task0); err != nil {
		t.Fatal(err)
	}
	total := int(dev0.MutatingOps() - before)
	if fs0.metaHomeWrites == homeBefore {
		t.Fatal("setup did not trigger a journal checkpoint")
	}

	for cut := 1; cut <= total; cut++ {
		fs, dev, task, pages := build()
		dev.PowerCutAfter(int64(cut))
		vErr := vuln(fs, task)
		dev.DisablePowerCut()
		fs2 := crashMount(t, dev, task)
		if err := fs2.Fsck(); err != nil {
			t.Fatalf("cut %d/%d (vuln err %v): fsck: %v", cut, total, vErr, err)
		}
		a, err := fs2.Open(task, "a")
		if err != nil {
			t.Fatalf("cut %d/%d: open a: %v", cut, total, err)
		}
		got := make([]byte, pageBytes)
		for i := 0; i < pages; i++ {
			if _, err := a.ReadAt(task, got, int64(i)*pageBytes); err != nil {
				t.Fatalf("cut %d/%d: read a page %d: %v", cut, total, i, err)
			}
			if !bytes.Equal(got, content(i)) {
				t.Fatalf("cut %d/%d: page %d of a corrupted", cut, total, i)
			}
		}
		// "b" must be all-or-nothing: if the directory entry survived, its
		// allocation must be fully recorded.
		if fs2.Exists("b") {
			b, err := fs2.Open(task, "b")
			if err != nil {
				t.Fatalf("cut %d/%d: open b: %v", cut, total, err)
			}
			if b.Size() != 32*pageBytes {
				t.Fatalf("cut %d/%d: b size %d", cut, total, b.Size())
			}
		}
	}
}

// TestFastCommitInLastJournalSlotReplays pins a fixed replay bug: the
// replay loop required two free slots (a descriptor transaction's
// minimum), so a single-block fast commit written to the very last
// journal slot was durable on flash yet silently skipped at mount — the
// fsync acked and the commit vanished across a crash.
func TestFastCommitInLastJournalSlotReplays(t *testing.T) {
	fs, dev, task := testFS(t, 256)
	f, err := fs.Create(task, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil {
		t.Fatal(err)
	}
	// Drive inode-only fast commits until the journal head sits on the
	// final slot, then land one more commit exactly there.
	page := make([]byte, fs.pageSize)
	grow := func(i int) {
		if _, err := f.WriteAt(task, page, int64(i)*int64(fs.pageSize)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(task); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	for fs.jHead != fs.lay.journalPages-1 {
		grow(i)
		i++
		if i > 4*int(fs.lay.journalPages) {
			t.Fatalf("journal head never reached the last slot (jHead %d)", fs.jHead)
		}
	}
	grow(i)
	if fs.jHead != fs.lay.journalPages {
		t.Fatalf("final commit not in the last slot (jHead %d of %d)", fs.jHead, fs.lay.journalPages)
	}
	wantSize := f.Size()

	fs2 := crashMount(t, dev, task)
	if err := fs2.Fsck(); err != nil {
		t.Fatal(err)
	}
	a, err := fs2.Open(task, "a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != wantSize {
		t.Fatalf("last-slot fast commit lost: size %d, want %d", a.Size(), wantSize)
	}
}
