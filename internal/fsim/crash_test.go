package fsim

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"share/internal/sim"
	"share/internal/ssd"
)

// crashMount power-cycles the device and remounts the file system.
func crashMount(t *testing.T, dev *ssd.Device, task *sim.Task) *FS {
	t.Helper()
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(task, dev)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFastCommitPersistsInodeChanges(t *testing.T) {
	fs, dev, task := testFS(t, 64)
	f, _ := fs.Create(task, "fc")
	if _, err := f.WriteAt(task, bytes.Repeat([]byte{7}, 5*512), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil { // full txn: create dirties the directory
		t.Fatal(err)
	}
	jBefore := fs.Stats().MetaJournalWrites
	// Overwrite inside the file: only the inode (mtime) is dirty, so the
	// fsync should cost exactly one fast-commit journal block.
	if _, err := f.WriteAt(task, bytes.Repeat([]byte{8}, 2*512), 3*512); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats().MetaJournalWrites - jBefore; got != 1 {
		t.Fatalf("inode-only fsync wrote %d journal blocks, want 1 (fast commit)", got)
	}
	fs2 := crashMount(t, dev, task)
	g, err := fs2.Open(task, "fc")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 5*512 {
		t.Fatalf("size after fast-commit replay = %d, want %d", g.Size(), 5*512)
	}
	buf := make([]byte, 512)
	if _, err := g.ReadAt(task, buf, 4*512); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if buf[0] != 8 {
		t.Fatalf("overwritten data lost: %x", buf[0])
	}
}

func TestFastCommitThenFullTxnOrdering(t *testing.T) {
	fs, dev, task := testFS(t, 64)
	f, _ := fs.Create(task, "mix")
	if _, err := f.WriteAt(task, make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil { // full txn (dir dirty)
		t.Fatal(err)
	}
	if _, err := f.WriteAt(task, make([]byte, 512), 512); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil { // fast commit (inode only)
		t.Fatal(err)
	}
	// Create another file: directory dirty again -> full txn AFTER the fc.
	g, _ := fs.Create(task, "later")
	if _, err := g.WriteAt(task, make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncMeta(task); err != nil {
		t.Fatal(err)
	}
	fs2 := crashMount(t, dev, task)
	f2, err := fs2.Open(task, "mix")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 1024 {
		t.Fatalf("mix size = %d", f2.Size())
	}
	if !fs2.Exists("later") {
		t.Fatal("later lost")
	}
}

// TestPropertyRandomFSOpsSurviveCrashes drives random file-system
// operations, syncing and crash-remounting at random points. After every
// remount, files that were synced and untouched since must read back
// exactly; files touched after the sync may have lost the unsynced tail
// but must never corrupt previously synced bytes' structure (size never
// shrinks below the synced size).
func TestPropertyRandomFSOpsSurviveCrashes(t *testing.T) {
	seeds := []int64{3, 17, 99}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runRandomFSOps(t, seed)
		})
	}
}

func runRandomFSOps(t *testing.T, seed int64) {
	fs, dev, task := testFS(t, 256)
	rng := rand.New(rand.NewSource(seed))

	// State as of the last SyncMeta, read back from the fs itself, plus
	// which files were modified or removed since then.
	synced := map[string][]byte{}
	touched := map[string]bool{}

	snapshot := func() {
		synced = map[string][]byte{}
		touched = map[string]bool{}
		for _, nm := range []string{"a", "b", "c", "d"} {
			if !fs.Exists(nm) {
				continue
			}
			f, err := fs.Open(task, nm)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, f.Size())
			if len(data) > 0 {
				if _, err := f.ReadAt(task, data, 0); err != nil && err != io.EOF {
					t.Fatal(err)
				}
			}
			synced[nm] = data
		}
	}
	snapshot()

	names := []string{"a", "b", "c", "d"}
	for step := 0; step < 400; step++ {
		name := names[rng.Intn(len(names))]
		switch op := rng.Intn(10); {
		case op < 5: // write somewhere
			if !fs.Exists(name) {
				if _, err := fs.Create(task, name); err != nil {
					t.Fatalf("step %d create: %v", step, err)
				}
			}
			f, err := fs.Open(task, name)
			if err != nil {
				t.Fatalf("step %d open: %v", step, err)
			}
			off := rng.Intn(8) * 512
			buf := make([]byte, 512*(1+rng.Intn(3)))
			rng.Read(buf)
			if _, err := f.WriteAt(task, buf, int64(off)); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			touched[name] = true
		case op < 6: // remove
			if fs.Exists(name) {
				if err := fs.Remove(task, name); err != nil {
					t.Fatalf("step %d remove: %v", step, err)
				}
				touched[name] = true
			}
		case op < 8: // sync: current state becomes the durable truth
			if err := fs.SyncMeta(task); err != nil {
				t.Fatalf("step %d sync: %v", step, err)
			}
			snapshot()
		default: // crash + remount
			fs = crashMount(t, dev, task)
			for nm, want := range synced {
				if touched[nm] {
					// Modified since the sync: only structural guarantees.
					if fs.Exists(nm) {
						f, err := fs.Open(task, nm)
						if err != nil {
							t.Fatal(err)
						}
						_ = f
					}
					continue
				}
				f, err := fs.Open(task, nm)
				if err != nil {
					t.Fatalf("step %d: synced file %s lost: %v (seed %d)", step, nm, err, seed)
				}
				if f.Size() != int64(len(want)) {
					t.Fatalf("step %d: %s size %d, want %d (seed %d)", step, nm, f.Size(), len(want), seed)
				}
				got := make([]byte, len(want))
				if len(got) > 0 {
					if _, err := f.ReadAt(task, got, 0); err != nil && err != io.EOF {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d: %s content diverged (seed %d)", step, nm, seed)
					}
				}
			}
			snapshot() // resynchronize with what survived
		}
	}
}
