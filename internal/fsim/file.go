package fsim

import (
	"fmt"
	"io"

	"share/internal/sim"
)

// Create makes a new empty file and returns an open handle.
func (fs *FS) Create(t *sim.Task, name string) (*File, error) {
	if len(name) == 0 || len(name) > MaxNameLen {
		return nil, fmt.Errorf("fsim: bad name %q", name)
	}
	fs.latch.Lock(t)
	defer fs.latch.Unlock(t)
	if _, ok := fs.dir[name]; ok {
		return nil, ErrExist
	}
	ino := -1
	for i := range fs.inodes {
		if !fs.inodes[i].used {
			ino = i
			break
		}
	}
	if ino < 0 {
		return nil, fmt.Errorf("%w: inode table full", ErrNoSpace)
	}
	fs.inodes[ino] = inode{used: true}
	fs.dir[name] = ino
	fs.markDirDirty()
	fs.markInodeDirty(ino)
	return &File{fs: fs, ino: ino, name: name, stream: -1}, nil
}

// Open returns a handle to an existing file.
func (fs *FS) Open(t *sim.Task, name string) (*File, error) {
	fs.latch.Lock(t)
	defer fs.latch.Unlock(t)
	ino, ok := fs.dir[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return &File{fs: fs, ino: ino, name: name, stream: -1}, nil
}

// Remove deletes a file. Its device pages are trimmed at the next fsync,
// after the journal commit recording the deletion is durable.
func (fs *FS) Remove(t *sim.Task, name string) error {
	fs.latch.Lock(t)
	defer fs.latch.Unlock(t)
	ino, ok := fs.dir[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	ind := &fs.inodes[ino]
	for _, ext := range ind.extents {
		fs.freeExtent(ext)
		fs.deferTrim(ext)
	}
	*ind = inode{}
	delete(fs.dir, name)
	fs.markDirDirty()
	fs.markInodeDirty(ino)
	return nil
}

// Exists reports whether name is present.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.dir[name]
	return ok
}

// Rename changes a file's name (used by compaction to swap the new
// database file into place).
func (fs *FS) Rename(t *sim.Task, oldName, newName string) error {
	fs.latch.Lock(t)
	defer fs.latch.Unlock(t)
	ino, ok := fs.dir[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldName)
	}
	if _, ok := fs.dir[newName]; ok {
		return ErrExist
	}
	delete(fs.dir, oldName)
	fs.dir[newName] = ino
	fs.markDirDirty()
	return nil
}

// Name returns the name the handle was opened with.
func (f *File) Name() string { return f.name }

// SetStream sets the handle's default device write-stream hint: every
// WriteAt through this handle carries it, so a whole file's pages land in
// one open NAND block per die (per-object placement, the fadvise-style
// knob of multi-stream SSDs). A negative value restores unhinted writes.
// Per-handle, not per-inode: two handles on one file may hint differently.
func (f *File) SetStream(s int) { f.stream = s }

// Stream returns the handle's default write-stream hint (< 0 unhinted).
func (f *File) Stream() int { return f.stream }

// Size returns the file length in bytes.
func (f *File) Size() int64 { return f.fs.inodes[f.ino].size }

// Extents returns a copy of the file's extent map (FIEMAP).
func (f *File) Extents() []Extent {
	src := f.fs.inodes[f.ino].extents
	out := make([]Extent, len(src))
	copy(out, src)
	return out
}

// AllocatedPages returns the number of device pages backing the file.
func (f *File) AllocatedPages() int {
	n := 0
	for _, e := range f.fs.inodes[f.ino].extents {
		n += int(e.Len)
	}
	return n
}

// lpnAt translates a page-aligned file offset to a device LPN, along with
// the number of contiguous pages available from there within one extent.
func (f *File) lpnAt(pageOff uint32) (lpn uint32, run uint32, err error) {
	for _, e := range f.fs.inodes[f.ino].extents {
		if pageOff < e.Len {
			return e.Start + pageOff, e.Len - pageOff, nil
		}
		pageOff -= e.Len
	}
	return 0, 0, fmt.Errorf("fsim: offset beyond allocation in %s", f.name)
}

// MapRange translates the page-aligned byte range [off, off+length) into
// device extents (a FIEMAP query). Engines use it to build scattered SHARE
// batches that fsim.ShareRange's single contiguous range cannot express.
func (f *File) MapRange(off, length int64) ([]Extent, error) {
	ps := int64(f.fs.pageSize)
	if off%ps != 0 || length%ps != 0 {
		return nil, fmt.Errorf("%w: off %d len %d", ErrAlign, off, length)
	}
	var out []Extent
	pageOff := uint32(off / ps)
	pages := uint32(length / ps)
	for pages > 0 {
		lpn, run, err := f.lpnAt(pageOff)
		if err != nil {
			return nil, err
		}
		if run > pages {
			run = pages
		}
		if n := len(out); n > 0 && out[n-1].Start+out[n-1].Len == lpn {
			out[n-1].Len += run
		} else {
			out = append(out, Extent{Start: lpn, Len: run})
		}
		pageOff += run
		pages -= run
	}
	return out, nil
}

// Allocate ensures pages backing [off, off+length) exist (fallocate).
// The file size is extended to cover the range if needed.
func (f *File) Allocate(t *sim.Task, off, length int64) error {
	f.fs.latch.Lock(t)
	defer f.fs.latch.Unlock(t)
	return f.allocate(t, off, length)
}

// allocate is Allocate with the latch already held.
func (f *File) allocate(t *sim.Task, off, length int64) error {
	if off < 0 || length < 0 {
		return fmt.Errorf("fsim: negative allocate range")
	}
	ps := int64(f.fs.pageSize)
	needPages := (off + length + ps - 1) / ps
	if err := f.fs.ensurePages(t, f.ino, needPages); err != nil {
		return err
	}
	ind := &f.fs.inodes[f.ino]
	if off+length > ind.size {
		ind.size = off + length
		f.fs.markInodeDirty(f.ino)
	}
	return nil
}

// Truncate sets the file size. Shrinking trims whole pages beyond the new
// size and returns them to the allocator.
func (f *File) Truncate(t *sim.Task, size int64) error {
	if size < 0 {
		return fmt.Errorf("fsim: negative truncate")
	}
	f.fs.latch.Lock(t)
	defer f.fs.latch.Unlock(t)
	ind := &f.fs.inodes[f.ino]
	ps := int64(f.fs.pageSize)
	keepPages := uint32((size + ps - 1) / ps)
	total := uint32(f.AllocatedPages())
	if keepPages < total {
		drop := total - keepPages
		for drop > 0 {
			last := &ind.extents[len(ind.extents)-1]
			n := last.Len
			if n > drop {
				n = drop
			}
			freed := Extent{Start: last.Start + last.Len - n, Len: n}
			last.Len -= n
			if last.Len == 0 {
				ind.extents = ind.extents[:len(ind.extents)-1]
			}
			f.fs.freeExtent(freed)
			f.fs.deferTrim(freed)
			drop -= n
		}
	}
	if ind.size != size {
		ind.size = size
	}
	f.fs.markInodeDirty(f.ino)
	return nil
}

// WriteAt writes p at byte offset off (direct I/O). Space is allocated as
// needed; partial-page writes perform a read-modify-write of the page.
// Allocation and extent resolution happen under the FS latch; the data
// page I/O runs outside it, so sessions writing different files overlap
// at the device. Device writes carry the handle's default stream hint.
func (f *File) WriteAt(t *sim.Task, p []byte, off int64) (int, error) {
	return f.WriteAtStream(t, p, off, f.stream)
}

// WriteAtStream is WriteAt with a per-write stream override: stream >= 0
// steers this write's pages to that device stream regardless of the
// handle default, stream < 0 writes unhinted.
func (f *File) WriteAtStream(t *sim.Task, p []byte, off int64, stream int) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("fsim: negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	fs := f.fs
	ps := int64(fs.pageSize)
	fs.latch.Lock(t)
	if err := f.allocate(t, off, int64(len(p))); err != nil {
		fs.latch.Unlock(t)
		return 0, err
	}
	firstPage := uint32(off / ps)
	lastPage := uint32((off + int64(len(p)) - 1) / ps)
	lpns := make([]uint32, 0, lastPage-firstPage+1)
	for pg := firstPage; pg <= lastPage; pg++ {
		lpn, _, err := f.lpnAt(pg)
		if err != nil {
			fs.latch.Unlock(t)
			return 0, err
		}
		lpns = append(lpns, lpn)
	}
	// Any write dirties the inode (mtime/size), which ordered-mode
	// journaling will carry into the next fsync transaction. allocate
	// already extended the size to cover the range.
	fs.markInodeDirty(f.ino)
	fs.latch.Unlock(t)

	written := 0
	buf := make([]byte, fs.pageSize)
	for written < len(p) {
		cur := off + int64(written)
		within := int(cur % ps)
		n := fs.pageSize - within
		if n > len(p)-written {
			n = len(p) - written
		}
		lpn := lpns[uint32(cur/ps)-firstPage]
		if within == 0 && n == fs.pageSize {
			if err := fs.dev.WritePageStream(t, lpn, p[written:written+n], stream); err != nil {
				return written, err
			}
		} else {
			if err := fs.dev.ReadPage(t, lpn, buf); err != nil {
				return written, err
			}
			copy(buf[within:], p[written:written+n])
			if err := fs.dev.WritePageStream(t, lpn, buf, stream); err != nil {
				return written, err
			}
		}
		written += n
	}
	return written, nil
}

// ReadAt reads into p from byte offset off. Reads past EOF return io.EOF
// after the available bytes. The size and extent map are snapshotted
// under the FS latch; the data page I/O runs outside it.
func (f *File) ReadAt(t *sim.Task, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("fsim: negative offset")
	}
	fs := f.fs
	ps := int64(fs.pageSize)
	fs.latch.Lock(t)
	size := fs.inodes[f.ino].size
	if off >= size {
		fs.latch.Unlock(t)
		return 0, io.EOF
	}
	max := int(size - off)
	want := len(p)
	if want > max {
		want = max
	}
	firstPage := uint32(off / ps)
	lastPage := uint32((off + int64(want) - 1) / ps)
	lpns := make([]uint32, 0, lastPage-firstPage+1)
	for pg := firstPage; pg <= lastPage; pg++ {
		lpn, _, err := f.lpnAt(pg)
		if err != nil {
			fs.latch.Unlock(t)
			return 0, err
		}
		lpns = append(lpns, lpn)
	}
	fs.latch.Unlock(t)

	buf := make([]byte, fs.pageSize)
	read := 0
	for read < want {
		cur := off + int64(read)
		within := int(cur % ps)
		n := fs.pageSize - within
		if n > want-read {
			n = want - read
		}
		lpn := lpns[uint32(cur/ps)-firstPage]
		if err := fs.dev.ReadPage(t, lpn, buf); err != nil {
			return read, err
		}
		copy(p[read:read+n], buf[within:within+n])
		read += n
	}
	if want < len(p) {
		return read, io.EOF
	}
	return read, nil
}

// Sync journals the dirty metadata and flushes the device — the fsync
// path. Data pages were written directly, so after Sync both data and
// metadata are durable (ordered mode).
func (f *File) Sync(t *sim.Task) error { return f.fs.SyncMeta(t) }
