package fsim

import (
	"encoding/binary"
	"sort"

	"share/internal/sim"
)

// crcJournal checksums journal block payloads (FNV-1a).
func crcJournal(b []byte) uint32 {
	var h uint32 = 2166136261
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// SyncMeta commits the dirty metadata pages as one journal transaction —
// descriptor, page images, commit record — then flushes the device. This
// is the ordered-journaling-mode fsync path: data pages were already
// written in place (O_DIRECT), only metadata goes through the journal.
func (fs *FS) SyncMeta(t *sim.Task) error {
	fs.latch.Lock(t)
	defer fs.latch.Unlock(t)
	if len(fs.dirtyMeta) == 0 {
		return fs.flushThenTrim(t)
	}
	// Fast-commit path (modeled on ext4 fast commits): when the only
	// dirty metadata is a handful of inodes — the overwhelmingly common
	// case for database fsyncs that just extended or touched their files —
	// a single journal block carrying the inode records replaces the
	// descriptor + page images + commit sequence.
	if fs.fastCommitEligible() {
		if err := fs.commitFast(t); err != nil {
			return err
		}
		fs.dirtyMeta = make(map[uint32]bool)
		fs.dirtyInos = make(map[int]bool)
		return fs.flushThenTrim(t)
	}
	all := make([]uint32, 0, len(fs.dirtyMeta))
	for p := range fs.dirtyMeta {
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	// A transaction is capped by the journal size; oversized dirty sets
	// commit as several transactions.
	maxPerTxn := int(fs.lay.journalPages) - 2
	for len(all) > 0 {
		n := len(all)
		if n > maxPerTxn {
			n = maxPerTxn
		}
		if err := fs.commitTxn(t, all[:n]); err != nil {
			return err
		}
		all = all[n:]
	}
	fs.dirtyMeta = make(map[uint32]bool)
	fs.dirtyInos = make(map[int]bool)
	return fs.flushThenTrim(t)
}

// flushThenTrim completes an fsync: the flush makes the committed journal
// durable, and only then are the trims queued by Remove/Truncate issued —
// the ordering that keeps a crash from destroying pages the on-disk
// metadata still references.
func (fs *FS) flushThenTrim(t *sim.Task) error {
	if err := fs.dev.Flush(t); err != nil {
		return err
	}
	return fs.runPendingTrims(t)
}

// fastCommitEligible reports whether every dirty metadata page is an inode
// page and the dirty inode records fit a single journal block.
func (fs *FS) fastCommitEligible() bool {
	if len(fs.dirtyInos) == 0 || len(fs.dirtyInos) > fs.maxFastInodes() {
		return false
	}
	for p := range fs.dirtyMeta {
		if p < fs.lay.inodeStart || p >= fs.lay.inodeStart+fs.lay.inodePages {
			return false
		}
	}
	return true
}

// maxFastInodes returns how many inode records fit one fast-commit block.
func (fs *FS) maxFastInodes() int { return (fs.pageSize - 20) / (2 + inodeSize) }

// commitFast writes one fast-commit journal block:
// [crc u32][magic u32][seq u64][count u32] then per inode
// [ino u16][used u8, pad u8][size i64][extCount u16][extents ...].
func (fs *FS) commitFast(t *sim.Task) error {
	if fs.jHead+1 > fs.lay.journalPages {
		if err := fs.checkpointMeta(t); err != nil {
			return err
		}
	}
	fs.seq++
	le := binary.LittleEndian
	buf := make([]byte, fs.pageSize)
	le.PutUint32(buf[4:], fcMagic)
	le.PutUint64(buf[8:], fs.seq)
	le.PutUint32(buf[16:], uint32(len(fs.dirtyInos)))
	off := 20
	// Sorted order, not map order: each record triggers device I/O
	// (committedImage reads, and checkpoint-time writes of the patched
	// pages), so Go's per-run map iteration randomization would otherwise
	// shuffle physical placement run to run and jitter per-die telemetry.
	inos := make([]int, 0, len(fs.dirtyInos))
	for ino := range fs.dirtyInos {
		inos = append(inos, ino)
	}
	sort.Ints(inos)
	for _, ino := range inos {
		le.PutUint16(buf[off:], uint16(ino))
		off += 2
		ind := &fs.inodes[ino]
		if ind.used {
			buf[off] = 1
		}
		le.PutUint64(buf[off+2:], uint64(ind.size))
		le.PutUint16(buf[off+10:], uint16(len(ind.extents)))
		for e, ext := range ind.extents {
			eo := off + 12 + e*8
			le.PutUint32(buf[eo:], ext.Start)
			le.PutUint32(buf[eo+4:], ext.Len)
		}
		// The inode's home page must reach disk at the next checkpoint:
		// patch this record into the captured committed image. The page
		// must not be re-rendered later — by checkpoint time the in-memory
		// page may hold uncommitted neighbours.
		home := fs.lay.inodeStart + uint32(ino/fs.inodesPerPage())
		img, err := fs.committedImage(t, home)
		if err != nil {
			return err
		}
		copy(img[(ino%fs.inodesPerPage())*inodeSize:], buf[off:off+inodeSize])
		fs.pending[home] = img
		off += inodeSize
	}
	le.PutUint32(buf[0:], crcJournal(buf[4:]))
	if err := fs.dev.WritePage(t, fs.lay.journalStart+fs.jHead, buf); err != nil {
		return err
	}
	fs.jHead++
	fs.metaJournalWrites++
	return nil
}

// commitTxn writes one journal transaction for the given home pages.
func (fs *FS) commitTxn(t *sim.Task, pages []uint32) error {
	need := uint32(len(pages) + 2) // descriptor + images + commit
	if fs.jHead+need > fs.lay.journalPages {
		// Journal full: checkpoint metadata home locations and restart it.
		if err := fs.checkpointMeta(t); err != nil {
			return err
		}
	}
	fs.seq++
	le := binary.LittleEndian

	// Descriptor.
	desc := make([]byte, fs.pageSize)
	le.PutUint32(desc[0:], descMagic)
	le.PutUint64(desc[4:], fs.seq)
	le.PutUint32(desc[12:], uint32(len(pages)))
	off := 16
	for _, p := range pages {
		le.PutUint32(desc[off:], p)
		off += 4
	}
	if err := fs.dev.WritePage(t, fs.lay.journalStart+fs.jHead, desc); err != nil {
		return err
	}
	fs.jHead++
	fs.metaJournalWrites++

	// Page images. The rendered image is captured into pending so the
	// eventual checkpoint writes exactly what this transaction committed,
	// never a later in-memory state that may hold uncommitted changes.
	for _, p := range pages {
		img := fs.renderMetaPage(p)
		if err := fs.dev.WritePage(t, fs.lay.journalStart+fs.jHead, img); err != nil {
			return err
		}
		fs.jHead++
		fs.metaJournalWrites++
		fs.pending[p] = img
	}

	// Commit record.
	cmt := make([]byte, fs.pageSize)
	le.PutUint32(cmt[0:], cmtMagic)
	le.PutUint64(cmt[4:], fs.seq)
	if err := fs.dev.WritePage(t, fs.lay.journalStart+fs.jHead, cmt); err != nil {
		return err
	}
	fs.jHead++
	fs.metaJournalWrites++
	return nil
}

// committedImage returns the last-committed image of metadata page p: the
// capture taken at commit time if p committed since the last checkpoint,
// otherwise the home copy on the device (which a checkpoint made current).
func (fs *FS) committedImage(t *sim.Task, p uint32) ([]byte, error) {
	if img, ok := fs.pending[p]; ok {
		return img, nil
	}
	img := make([]byte, fs.pageSize)
	if err := fs.dev.ReadPage(t, p, img); err != nil {
		return nil, err
	}
	return img, nil
}

// checkpointMeta writes journaled metadata pages to their home locations,
// advances the superblock's checkpoint sequence, and resets the journal.
// Only the page images captured at commit time are written; rendering the
// current in-memory state here would expose uncommitted metadata.
func (fs *FS) checkpointMeta(t *sim.Task) error {
	// Sorted order, not map order: home-location writes allocate flash
	// pages, so map-order iteration would vary die placement run to run.
	pages := make([]uint32, 0, len(fs.pending))
	for p := range fs.pending {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, p := range pages {
		if err := fs.dev.WritePage(t, p, fs.pending[p]); err != nil {
			return err
		}
		fs.metaHomeWrites++
	}
	fs.pending = make(map[uint32][]byte)
	fs.ckptSeq = fs.seq
	if err := fs.writeSuper(t); err != nil {
		return err
	}
	if err := fs.dev.Flush(t); err != nil {
		return err
	}
	// Journal space is logically reclaimed; trim it so the device can
	// recycle the pages.
	if fs.jHead > 0 {
		if err := fs.dev.Trim(t, fs.lay.journalStart, int(fs.jHead)); err != nil {
			return err
		}
	}
	fs.jHead = 0
	return nil
}

// replayJournal applies committed transactions with seq > ckptSeq to the
// metadata home locations. It is called during Mount, before metadata is
// loaded.
func (fs *FS) replayJournal(t *sim.Task) error {
	le := binary.LittleEndian
	buf := make([]byte, fs.pageSize)
	img := make([]byte, fs.pageSize)
	slot := uint32(0)
	lastSeq := fs.ckptSeq
	applied := false
	// The loop visits every slot: a fast commit is a single block, so even
	// the last journal slot can hold a committed transaction. (Descriptor
	// transactions need at least two more pages; their own bound check
	// below rejects a descriptor too close to the end.)
	for slot < fs.lay.journalPages {
		if err := fs.dev.ReadPage(t, fs.lay.journalStart+slot, buf); err != nil {
			return err
		}
		if le.Uint32(buf[4:]) == fcMagic {
			// Fast-commit block: verify and patch the inode records
			// directly into their home pages, preserving scan order.
			if le.Uint32(buf[0:]) != crcJournal(buf[4:]) {
				break
			}
			seq := le.Uint64(buf[8:])
			if seq <= lastSeq {
				break
			}
			count := int(le.Uint32(buf[16:]))
			off := 20
			ipp := fs.inodesPerPage()
			for i := 0; i < count; i++ {
				ino := int(le.Uint16(buf[off:]))
				home := fs.lay.inodeStart + uint32(ino/ipp)
				if err := fs.dev.ReadPage(t, home, img); err != nil {
					return err
				}
				copy(img[(ino%ipp)*inodeSize:], buf[off+2:off+2+inodeSize])
				if err := fs.dev.WritePage(t, home, img); err != nil {
					return err
				}
				fs.metaHomeWrites++
				off += 2 + inodeSize
			}
			applied = true
			lastSeq = seq
			slot++
			continue
		}
		if le.Uint32(buf[0:]) != descMagic {
			break
		}
		seq := le.Uint64(buf[4:])
		if seq <= lastSeq {
			break // stale transaction from a previous journal cycle
		}
		count := le.Uint32(buf[12:])
		if slot+1+count+1 > fs.lay.journalPages {
			break
		}
		// Verify the commit record before applying anything.
		if err := fs.dev.ReadPage(t, fs.lay.journalStart+slot+1+count, buf); err != nil {
			return err
		}
		if le.Uint32(buf[0:]) != cmtMagic || le.Uint64(buf[4:]) != seq {
			break // uncommitted tail: discard
		}
		// Re-read the descriptor for the home page list (buf was reused).
		if err := fs.dev.ReadPage(t, fs.lay.journalStart+slot, buf); err != nil {
			return err
		}
		for i := uint32(0); i < count; i++ {
			home := le.Uint32(buf[16+4*i:])
			if err := fs.dev.ReadPage(t, fs.lay.journalStart+slot+1+i, img); err != nil {
				return err
			}
			if err := fs.dev.WritePage(t, home, img); err != nil {
				return err
			}
			fs.metaHomeWrites++
		}
		applied = true
		lastSeq = seq
		slot += 1 + count + 1
	}
	fs.seq = lastSeq
	fs.ckptSeq = lastSeq
	if applied {
		if err := fs.writeSuper(t); err != nil {
			return err
		}
		if err := fs.dev.Flush(t); err != nil {
			return err
		}
	}
	// Start a fresh journal cycle; stale records are fenced by ckptSeq.
	fs.jHead = 0
	return nil
}
