package fsim

import (
	"encoding/binary"
	"sort"

	"share/internal/sim"
)

// crcJournal checksums journal block payloads (FNV-1a).
func crcJournal(b []byte) uint32 {
	var h uint32 = 2166136261
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// SyncMeta commits the dirty metadata pages as one journal transaction —
// descriptor, page images, commit record — then flushes the device. This
// is the ordered-journaling-mode fsync path: data pages were already
// written in place (O_DIRECT), only metadata goes through the journal.
func (fs *FS) SyncMeta(t *sim.Task) error {
	if len(fs.dirtyMeta) == 0 {
		return fs.dev.Flush(t)
	}
	// Fast-commit path (modeled on ext4 fast commits): when the only
	// dirty metadata is a handful of inodes — the overwhelmingly common
	// case for database fsyncs that just extended or touched their files —
	// a single journal block carrying the inode records replaces the
	// descriptor + page images + commit sequence.
	if fs.fastCommitEligible() {
		if err := fs.commitFast(t); err != nil {
			return err
		}
		fs.dirtyMeta = make(map[uint32]bool)
		fs.dirtyInos = make(map[int]bool)
		return fs.dev.Flush(t)
	}
	all := make([]uint32, 0, len(fs.dirtyMeta))
	for p := range fs.dirtyMeta {
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	// A transaction is capped by the journal size; oversized dirty sets
	// commit as several transactions.
	maxPerTxn := int(fs.lay.journalPages) - 2
	for len(all) > 0 {
		n := len(all)
		if n > maxPerTxn {
			n = maxPerTxn
		}
		if err := fs.commitTxn(t, all[:n]); err != nil {
			return err
		}
		all = all[n:]
	}
	fs.dirtyMeta = make(map[uint32]bool)
	fs.dirtyInos = make(map[int]bool)
	return fs.dev.Flush(t)
}

// fastCommitEligible reports whether every dirty metadata page is an inode
// page and the dirty inode records fit a single journal block.
func (fs *FS) fastCommitEligible() bool {
	if len(fs.dirtyInos) == 0 || len(fs.dirtyInos) > fs.maxFastInodes() {
		return false
	}
	for p := range fs.dirtyMeta {
		if p < fs.lay.inodeStart || p >= fs.lay.inodeStart+fs.lay.inodePages {
			return false
		}
	}
	return true
}

// maxFastInodes returns how many inode records fit one fast-commit block.
func (fs *FS) maxFastInodes() int { return (fs.pageSize - 20) / (2 + inodeSize) }

// commitFast writes one fast-commit journal block:
// [crc u32][magic u32][seq u64][count u32] then per inode
// [ino u16][used u8, pad u8][size i64][extCount u16][extents ...].
func (fs *FS) commitFast(t *sim.Task) error {
	if fs.jHead+1 > fs.lay.journalPages {
		if err := fs.checkpointMeta(t); err != nil {
			return err
		}
	}
	fs.seq++
	le := binary.LittleEndian
	buf := make([]byte, fs.pageSize)
	le.PutUint32(buf[4:], fcMagic)
	le.PutUint64(buf[8:], fs.seq)
	le.PutUint32(buf[16:], uint32(len(fs.dirtyInos)))
	off := 20
	for ino := range fs.dirtyInos {
		le.PutUint16(buf[off:], uint16(ino))
		off += 2
		ind := &fs.inodes[ino]
		if ind.used {
			buf[off] = 1
		}
		le.PutUint64(buf[off+2:], uint64(ind.size))
		le.PutUint16(buf[off+10:], uint16(len(ind.extents)))
		for e, ext := range ind.extents {
			eo := off + 12 + e*8
			le.PutUint32(buf[eo:], ext.Start)
			le.PutUint32(buf[eo+4:], ext.Len)
		}
		off += inodeSize
		// The inode's home page must reach disk at the next checkpoint.
		fs.pending[fs.lay.inodeStart+uint32(ino/fs.inodesPerPage())] = true
	}
	le.PutUint32(buf[0:], crcJournal(buf[4:]))
	if err := fs.dev.WritePage(t, fs.lay.journalStart+fs.jHead, buf); err != nil {
		return err
	}
	fs.jHead++
	fs.metaJournalWrites++
	return nil
}

// commitTxn writes one journal transaction for the given home pages.
func (fs *FS) commitTxn(t *sim.Task, pages []uint32) error {
	need := uint32(len(pages) + 2) // descriptor + images + commit
	if fs.jHead+need > fs.lay.journalPages {
		// Journal full: checkpoint metadata home locations and restart it.
		if err := fs.checkpointMeta(t); err != nil {
			return err
		}
	}
	fs.seq++
	le := binary.LittleEndian

	// Descriptor.
	desc := make([]byte, fs.pageSize)
	le.PutUint32(desc[0:], descMagic)
	le.PutUint64(desc[4:], fs.seq)
	le.PutUint32(desc[12:], uint32(len(pages)))
	off := 16
	for _, p := range pages {
		le.PutUint32(desc[off:], p)
		off += 4
	}
	if err := fs.dev.WritePage(t, fs.lay.journalStart+fs.jHead, desc); err != nil {
		return err
	}
	fs.jHead++
	fs.metaJournalWrites++

	// Page images.
	for _, p := range pages {
		if err := fs.dev.WritePage(t, fs.lay.journalStart+fs.jHead, fs.renderMetaPage(p)); err != nil {
			return err
		}
		fs.jHead++
		fs.metaJournalWrites++
		fs.pending[p] = true
	}

	// Commit record.
	cmt := make([]byte, fs.pageSize)
	le.PutUint32(cmt[0:], cmtMagic)
	le.PutUint64(cmt[4:], fs.seq)
	if err := fs.dev.WritePage(t, fs.lay.journalStart+fs.jHead, cmt); err != nil {
		return err
	}
	fs.jHead++
	fs.metaJournalWrites++
	return nil
}

// checkpointMeta writes journaled metadata pages to their home locations,
// advances the superblock's checkpoint sequence, and resets the journal.
func (fs *FS) checkpointMeta(t *sim.Task) error {
	for p := range fs.pending {
		if err := fs.dev.WritePage(t, p, fs.renderMetaPage(p)); err != nil {
			return err
		}
		fs.metaHomeWrites++
	}
	fs.pending = make(map[uint32]bool)
	fs.ckptSeq = fs.seq
	if err := fs.writeSuper(t); err != nil {
		return err
	}
	if err := fs.dev.Flush(t); err != nil {
		return err
	}
	// Journal space is logically reclaimed; trim it so the device can
	// recycle the pages.
	if fs.jHead > 0 {
		if err := fs.dev.Trim(t, fs.lay.journalStart, int(fs.jHead)); err != nil {
			return err
		}
	}
	fs.jHead = 0
	return nil
}

// replayJournal applies committed transactions with seq > ckptSeq to the
// metadata home locations. It is called during Mount, before metadata is
// loaded.
func (fs *FS) replayJournal(t *sim.Task) error {
	le := binary.LittleEndian
	buf := make([]byte, fs.pageSize)
	img := make([]byte, fs.pageSize)
	slot := uint32(0)
	lastSeq := fs.ckptSeq
	applied := false
	for slot+2 <= fs.lay.journalPages {
		if err := fs.dev.ReadPage(t, fs.lay.journalStart+slot, buf); err != nil {
			return err
		}
		if le.Uint32(buf[4:]) == fcMagic {
			// Fast-commit block: verify and patch the inode records
			// directly into their home pages, preserving scan order.
			if le.Uint32(buf[0:]) != crcJournal(buf[4:]) {
				break
			}
			seq := le.Uint64(buf[8:])
			if seq <= lastSeq {
				break
			}
			count := int(le.Uint32(buf[16:]))
			off := 20
			ipp := fs.inodesPerPage()
			for i := 0; i < count; i++ {
				ino := int(le.Uint16(buf[off:]))
				home := fs.lay.inodeStart + uint32(ino/ipp)
				if err := fs.dev.ReadPage(t, home, img); err != nil {
					return err
				}
				copy(img[(ino%ipp)*inodeSize:], buf[off+2:off+2+inodeSize])
				if err := fs.dev.WritePage(t, home, img); err != nil {
					return err
				}
				fs.metaHomeWrites++
				off += 2 + inodeSize
			}
			applied = true
			lastSeq = seq
			slot++
			continue
		}
		if le.Uint32(buf[0:]) != descMagic {
			break
		}
		seq := le.Uint64(buf[4:])
		if seq <= lastSeq {
			break // stale transaction from a previous journal cycle
		}
		count := le.Uint32(buf[12:])
		if slot+1+count+1 > fs.lay.journalPages {
			break
		}
		// Verify the commit record before applying anything.
		if err := fs.dev.ReadPage(t, fs.lay.journalStart+slot+1+count, buf); err != nil {
			return err
		}
		if le.Uint32(buf[0:]) != cmtMagic || le.Uint64(buf[4:]) != seq {
			break // uncommitted tail: discard
		}
		// Re-read the descriptor for the home page list (buf was reused).
		if err := fs.dev.ReadPage(t, fs.lay.journalStart+slot, buf); err != nil {
			return err
		}
		for i := uint32(0); i < count; i++ {
			home := le.Uint32(buf[16+4*i:])
			if err := fs.dev.ReadPage(t, fs.lay.journalStart+slot+1+i, img); err != nil {
				return err
			}
			if err := fs.dev.WritePage(t, home, img); err != nil {
				return err
			}
			fs.metaHomeWrites++
		}
		applied = true
		lastSeq = seq
		slot += 1 + count + 1
	}
	fs.seq = lastSeq
	fs.ckptSeq = lastSeq
	if applied {
		if err := fs.writeSuper(t); err != nil {
			return err
		}
		if err := fs.dev.Flush(t); err != nil {
			return err
		}
	}
	// Start a fresh journal cycle; stale records are fenced by ckptSeq.
	fs.jHead = 0
	return nil
}
