package fsim

import (
	"fmt"

	"share/internal/sim"
	"share/internal/ssd"
)

// ShareRange is the SHARE ioctl: it remaps length bytes of dst starting at
// dstOff onto the physical pages currently backing src at srcOff. Both
// offsets and the length must be page aligned; the destination range must
// already be allocated (use Allocate/fallocate first), matching how the
// paper's modified Couchbase prepares the new database file.
//
// The translation walks both files' extent maps, coalesces physically
// contiguous runs into ranged pairs, and splits the command stream at the
// device's atomic batch limit — each issued SHARE command is atomic on its
// own, exactly like the prototype's vendor-unique SATA command.
func (fs *FS) ShareRange(t *sim.Task, dst *File, dstOff int64, src *File, srcOff int64, length int64) error {
	fs.latch.Lock(t)
	defer fs.latch.Unlock(t)
	ps := int64(fs.pageSize)
	if dstOff%ps != 0 || srcOff%ps != 0 || length%ps != 0 {
		return fmt.Errorf("%w: dstOff %d srcOff %d len %d", ErrAlign, dstOff, srcOff, length)
	}
	if length == 0 {
		return nil
	}
	pages := uint32(length / ps)
	dstPage := uint32(dstOff / ps)
	srcPage := uint32(srcOff / ps)

	var pairs []ssd.Pair
	var batchUnits int
	maxBatch := fs.dev.MaxShareBatch()
	flush := func() error {
		if len(pairs) == 0 {
			return nil
		}
		err := fs.dev.Share(t, pairs)
		pairs = pairs[:0]
		batchUnits = 0
		return err
	}

	for pages > 0 {
		dstLPN, dstRun, err := dst.lpnAt(dstPage)
		if err != nil {
			return fmt.Errorf("fsim: share dst: %w", err)
		}
		srcLPN, srcRun, err := src.lpnAt(srcPage)
		if err != nil {
			return fmt.Errorf("fsim: share src: %w", err)
		}
		run := pages
		if dstRun < run {
			run = dstRun
		}
		if srcRun < run {
			run = srcRun
		}
		// A ranged pair must not overlap itself; and a batch must fit the
		// device's one-delta-page atomic limit.
		for run > 0 {
			chunk := run
			if room := uint32(maxBatch - batchUnits); chunk > room {
				chunk = room
			}
			if chunk == 0 {
				if err := flush(); err != nil {
					return err
				}
				continue
			}
			if overlaps(dstLPN, srcLPN, chunk) {
				// Degenerate layout (shared physical neighborhood):
				// fall back to single-page pairs.
				chunk = 1
			}
			pairs = append(pairs, ssd.Pair{Dst: dstLPN, Src: srcLPN, Len: chunk})
			batchUnits += int(chunk)
			dstLPN += chunk
			srcLPN += chunk
			run -= chunk
			dstPage += chunk
			srcPage += chunk
			pages -= chunk
			if batchUnits >= maxBatch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

func overlaps(a, b, n uint32) bool { return a < b+n && b < a+n }
