package fsim

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"share/internal/sim"
	"share/internal/ssd"
)

func testFS(t *testing.T, blocks int) (*FS, *ssd.Device, *sim.Task) {
	t.Helper()
	cfg := ssd.DefaultConfig(blocks)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 16
	dev, err := ssd.New("ssd", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("fs")
	fs, err := Format(task, dev, 16)
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev, task
}

func TestCreateWriteReadBack(t *testing.T) {
	fs, _, task := testFS(t, 64)
	f, err := fs.Create(task, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, flash world")
	if _, err := f.WriteAt(task, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(task, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestCreateDuplicateAndOpenMissing(t *testing.T) {
	fs, _, task := testFS(t, 64)
	if _, err := fs.Create(task, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(task, "x"); !errors.Is(err, ErrExist) {
		t.Fatalf("err = %v", err)
	}
	if _, err := fs.Open(task, "nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if _, err := fs.Create(task, ""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestUnalignedAndCrossPageIO(t *testing.T) {
	fs, _, task := testFS(t, 64)
	f, _ := fs.Create(task, "u")
	// Write across a page boundary at an odd offset.
	data := bytes.Repeat([]byte{0xC3}, 900)
	if _, err := f.WriteAt(task, data, 300); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 900)
	if _, err := f.ReadAt(task, got, 300); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page read mismatch")
	}
	// The hole before offset 300 reads as zeros.
	head := make([]byte, 300)
	if _, err := f.ReadAt(task, head, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range head {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

func TestReadPastEOF(t *testing.T) {
	fs, _, task := testFS(t, 64)
	f, _ := fs.Create(task, "e")
	if _, err := f.WriteAt(task, []byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := f.ReadAt(task, buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := f.ReadAt(task, buf, 100); err != io.EOF {
		t.Fatalf("err = %v", err)
	}
}

func TestAllocateAndExtents(t *testing.T) {
	fs, _, task := testFS(t, 64)
	f, _ := fs.Create(task, "a")
	if err := f.Allocate(task, 0, 20*512); err != nil {
		t.Fatal(err)
	}
	if f.AllocatedPages() < 20 {
		t.Fatalf("allocated %d pages", f.AllocatedPages())
	}
	if f.Size() != 20*512 {
		t.Fatalf("size = %d", f.Size())
	}
	if len(f.Extents()) == 0 {
		t.Fatal("no extents")
	}
}

func TestTruncateShrinksAndFrees(t *testing.T) {
	fs, _, task := testFS(t, 64)
	f, _ := fs.Create(task, "tr")
	data := bytes.Repeat([]byte{1}, 10*512)
	if _, err := f.WriteAt(task, data, 0); err != nil {
		t.Fatal(err)
	}
	free := fs.FreePages()
	if err := f.Truncate(task, 2*512); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2*512 {
		t.Fatalf("size = %d", f.Size())
	}
	if fs.FreePages() <= free {
		t.Fatal("truncate did not free pages")
	}
	// Remaining prefix intact.
	got := make([]byte, 2*512)
	if _, err := f.ReadAt(task, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:2*512]) {
		t.Fatal("prefix corrupted by truncate")
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	fs, _, task := testFS(t, 64)
	f, _ := fs.Create(task, "rm")
	if _, err := f.WriteAt(task, make([]byte, 50*512), 0); err != nil {
		t.Fatal(err)
	}
	free := fs.FreePages()
	if err := fs.Remove(task, "rm"); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() <= free {
		t.Fatal("remove did not free pages")
	}
	if fs.Exists("rm") {
		t.Fatal("file still exists")
	}
	if err := fs.Remove(task, "rm"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("second remove err = %v", err)
	}
}

func TestRename(t *testing.T) {
	fs, _, task := testFS(t, 64)
	f, _ := fs.Create(task, "old")
	if _, err := f.WriteAt(task, []byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(task, "old", "new"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("old") || !fs.Exists("new") {
		t.Fatal("rename did not move the entry")
	}
	g, err := fs.Open(task, "new")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := g.ReadAt(task, buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "payload" {
		t.Fatalf("got %q", buf)
	}
}

func TestSyncAndMountRoundTrip(t *testing.T) {
	fs, dev, task := testFS(t, 64)
	f, _ := fs.Create(task, "persist")
	data := bytes.Repeat([]byte{0xAB}, 3*512)
	if _, err := f.WriteAt(task, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(task); err != nil {
		t.Fatal(err)
	}
	// Crash the device and remount.
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(task, dev)
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs2.Open(task, "persist")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != int64(len(data)) {
		t.Fatalf("size after remount = %d", g.Size())
	}
	got := make([]byte, len(data))
	if _, err := g.ReadAt(task, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across crash")
	}
}

func TestUnsyncedMetadataLostButConsistent(t *testing.T) {
	fs, dev, task := testFS(t, 64)
	f, _ := fs.Create(task, "keep")
	if _, err := f.WriteAt(task, []byte("kept"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(task); err != nil {
		t.Fatal(err)
	}
	// Created but never synced: may vanish across a crash.
	if _, err := fs.Create(task, "ghost"); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(task, dev)
	if err != nil {
		t.Fatal(err)
	}
	if !fs2.Exists("keep") {
		t.Fatal("synced file lost")
	}
}

func TestJournalWrapCheckpoints(t *testing.T) {
	fs, dev, task := testFS(t, 64)
	f, _ := fs.Create(task, "wrap")
	buf := make([]byte, 512)
	for i := 0; i < 40; i++ {
		if _, err := f.WriteAt(task, buf, int64(i)*512); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(task); err != nil {
			t.Fatal(err)
		}
	}
	st := fs.Stats()
	if st.MetaHomeWrites == 0 {
		t.Fatal("journal never checkpointed despite wrapping")
	}
	// Still mountable and correct after all that.
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(task, dev); err != nil {
		t.Fatal(err)
	}
}

func TestShareRangeBasic(t *testing.T) {
	fs, _, task := testFS(t, 64)
	src, _ := fs.Create(task, "src")
	dst, _ := fs.Create(task, "dst")
	data := bytes.Repeat([]byte{0x5A}, 4*512)
	if _, err := src.WriteAt(task, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := dst.Allocate(task, 0, 4*512); err != nil {
		t.Fatal(err)
	}
	if err := fs.ShareRange(task, dst, 0, src, 0, 4*512); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*512)
	if _, err := dst.ReadAt(task, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("shared range mismatch")
	}
}

func TestShareRangeAlignment(t *testing.T) {
	fs, _, task := testFS(t, 64)
	src, _ := fs.Create(task, "s")
	dst, _ := fs.Create(task, "d")
	if _, err := src.WriteAt(task, make([]byte, 1024), 0); err != nil {
		t.Fatal(err)
	}
	if err := dst.Allocate(task, 0, 1024); err != nil {
		t.Fatal(err)
	}
	if err := fs.ShareRange(task, dst, 1, src, 0, 512); !errors.Is(err, ErrAlign) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.ShareRange(task, dst, 0, src, 0, 0); err != nil {
		t.Fatalf("zero-length share: %v", err)
	}
}

func TestShareRangeIsZeroCopy(t *testing.T) {
	fs, dev, task := testFS(t, 128)
	src, _ := fs.Create(task, "big")
	n := 64
	data := make([]byte, n*512)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := src.WriteAt(task, data, 0); err != nil {
		t.Fatal(err)
	}
	dst, _ := fs.Create(task, "copy")
	if err := dst.Allocate(task, 0, int64(n)*512); err != nil {
		t.Fatal(err)
	}
	before := dev.Stats()
	if err := fs.ShareRange(task, dst, 0, src, 0, int64(n)*512); err != nil {
		t.Fatal(err)
	}
	after := dev.Stats()
	if hostWrites := after.FTL.HostWrites - before.FTL.HostWrites; hostWrites != 0 {
		t.Fatalf("share performed %d host data writes; want 0", hostWrites)
	}
	got := make([]byte, n*512)
	if _, err := dst.ReadAt(task, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("zero-copy content mismatch")
	}
	if after.FTL.SharePairs == 0 {
		t.Fatal("no share pairs issued")
	}
	// Coalescing: contiguous extents need far fewer pairs than pages.
	if after.FTL.SharePairs >= int64(n) {
		t.Fatalf("no coalescing: %d pairs for %d pages", after.FTL.SharePairs, n)
	}
}

func TestShareRangeBatchesSplitAtomically(t *testing.T) {
	fs, dev, task := testFS(t, 256)
	src, _ := fs.Create(task, "s")
	// More pages than one SHARE command can carry atomically.
	n := dev.MaxShareBatch()*2 + 5
	if _, err := src.WriteAt(task, make([]byte, n*512), 0); err != nil {
		t.Fatal(err)
	}
	dst, _ := fs.Create(task, "d")
	if err := dst.Allocate(task, 0, int64(n)*512); err != nil {
		t.Fatal(err)
	}
	if err := fs.ShareRange(task, dst, 0, src, 0, int64(n)*512); err != nil {
		t.Fatal(err)
	}
	if got := dev.Stats().FTL.Shares; got < 3 {
		t.Fatalf("expected >= 3 SHARE commands, got %d", got)
	}
}

func TestDeviceFilesDoNotOverlap(t *testing.T) {
	fs, _, task := testFS(t, 64)
	a, _ := fs.Create(task, "a")
	b, _ := fs.Create(task, "b")
	da := bytes.Repeat([]byte{0xAA}, 5*512)
	db := bytes.Repeat([]byte{0xBB}, 5*512)
	if _, err := a.WriteAt(task, da, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteAt(task, db, 0); err != nil {
		t.Fatal(err)
	}
	ga := make([]byte, len(da))
	gb := make([]byte, len(db))
	if _, err := a.ReadAt(task, ga, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadAt(task, gb, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga, da) || !bytes.Equal(gb, db) {
		t.Fatal("files overlap on device")
	}
}

func TestNoSpace(t *testing.T) {
	fs, _, task := testFS(t, 16) // tiny device
	f, _ := fs.Create(task, "huge")
	_, err := f.WriteAt(task, make([]byte, 4096*512), 0)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
}

func TestManyFilesPersist(t *testing.T) {
	fs, dev, task := testFS(t, 64)
	for i := 0; i < 20; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		f, err := fs.Create(task, name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(task, []byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.SyncMeta(task); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(task, dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		g, err := fs2.Open(task, name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		b := make([]byte, 1)
		if _, err := g.ReadAt(task, b, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if b[0] != byte(i) {
			t.Fatalf("file %s content %d", name, b[0])
		}
	}
}

func TestShareRangeAcrossFragmentedExtents(t *testing.T) {
	fs, dev, task := testFS(t, 256)
	// Interleave allocations between two files so both end up with many
	// small extents.
	a, _ := fs.Create(task, "frag-a")
	b, _ := fs.Create(task, "frag-b")
	chunk := make([]byte, 4*512)
	for i := 0; i < 10; i++ {
		for j := range chunk {
			chunk[j] = byte(i)
		}
		if _, err := a.WriteAt(task, chunk, int64(i)*int64(len(chunk))); err != nil {
			t.Fatal(err)
		}
		if _, err := b.WriteAt(task, chunk, int64(i)*int64(len(chunk))); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.Extents()) < 2 || len(b.Extents()) < 2 {
		t.Skipf("allocator did not fragment (a=%d b=%d extents)", len(a.Extents()), len(b.Extents()))
	}
	dst, _ := fs.Create(task, "frag-dst")
	if err := dst.Allocate(task, 0, a.Size()); err != nil {
		t.Fatal(err)
	}
	if err := fs.ShareRange(task, dst, 0, a, 0, a.Size()); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, a.Size())
	if _, err := dst.ReadAt(task, got, 0); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, a.Size())
	if _, err := a.ReadAt(task, want, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fragmented share mismatch")
	}
	if err := dev.FTLForTest().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMapRangeMatchesExtents(t *testing.T) {
	fs, _, task := testFS(t, 128)
	f, _ := fs.Create(task, "map")
	if _, err := f.WriteAt(task, make([]byte, 20*512), 0); err != nil {
		t.Fatal(err)
	}
	// Whole-file MapRange must cover exactly the allocated prefix pages.
	exts, err := f.MapRange(0, 20*512)
	if err != nil {
		t.Fatal(err)
	}
	total := uint32(0)
	for _, e := range exts {
		total += e.Len
	}
	if total != 20 {
		t.Fatalf("MapRange covered %d pages, want 20", total)
	}
	// Unaligned requests are rejected.
	if _, err := f.MapRange(1, 512); err == nil {
		t.Fatal("unaligned MapRange accepted")
	}
	// Beyond allocation fails.
	if _, err := f.MapRange(0, 1<<20); err == nil {
		t.Fatal("oversized MapRange accepted")
	}
}

func TestFsckCleanAfterChurn(t *testing.T) {
	fs, dev, task := testFS(t, 256)
	rng := rand.New(rand.NewSource(6))
	names := []string{"p", "q", "r", "s", "t"}
	for step := 0; step < 300; step++ {
		name := names[rng.Intn(len(names))]
		switch rng.Intn(6) {
		case 0:
			if fs.Exists(name) {
				if err := fs.Remove(task, name); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			if fs.Exists(name) {
				f, _ := fs.Open(task, name)
				if err := f.Truncate(task, int64(rng.Intn(10))*512); err != nil {
					t.Fatal(err)
				}
			}
		default:
			if !fs.Exists(name) {
				if _, err := fs.Create(task, name); err != nil {
					t.Fatal(err)
				}
			}
			f, _ := fs.Open(task, name)
			if _, err := f.WriteAt(task, make([]byte, 512*(1+rng.Intn(4))), int64(rng.Intn(12))*512); err != nil {
				t.Fatal(err)
			}
		}
		if step%50 == 49 {
			if err := fs.Fsck(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := fs.SyncMeta(task); err != nil {
		t.Fatal(err)
	}
	// Fsck still clean after crash + remount.
	fs2 := crashMount(t, dev, task)
	if err := fs2.Fsck(); err != nil {
		t.Fatalf("post-remount: %v", err)
	}
}
