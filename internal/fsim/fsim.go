// Package fsim is a minimal extent-based file system over the simulated
// SSD, standing in for the ext4 (ordered journaling mode, O_DIRECT) setup
// the paper runs on. It provides exactly the facilities the database
// engines and the SHARE integration need:
//
//   - files with extent maps, preallocation (fallocate) and truncation;
//   - direct I/O: data reads and writes go straight to device pages;
//   - ordered-mode metadata journaling: fsync writes the dirty metadata
//     pages into a journal transaction (descriptor + images + commit) and
//     issues a device flush — this is the file-system write traffic that
//     keeps the paper's InnoDB host-write reduction below the ideal 50%;
//   - crash recovery at mount: committed journal transactions are replayed
//     into the metadata home locations;
//   - the SHARE ioctl: ShareRange translates file offsets to LPNs through
//     the extent maps of both files and issues device SHARE commands,
//     coalescing contiguous runs and splitting to the device's atomic
//     batch limit.
package fsim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"share/internal/sim"
	"share/internal/ssd"
)

// Tunables fixed at format time.
const (
	MaxFiles   = 96
	MaxExtents = 24
	MaxNameLen = 31

	sbMagic   = 0x4653494D // "FSIM"
	descMagic = 0x4A444553 // journal descriptor
	cmtMagic  = 0x4A434D54 // journal commit
	fcMagic   = 0x4A464153 // journal fast-commit block
)

var (
	// ErrExist is returned by Create for a duplicate name.
	ErrExist = errors.New("fsim: file exists")
	// ErrNotExist is returned for unknown names.
	ErrNotExist = errors.New("fsim: file does not exist")
	// ErrNoSpace is returned when the data area or an inode's extent list
	// is exhausted.
	ErrNoSpace = errors.New("fsim: no space")
	// ErrAlign is returned by ShareRange for unaligned arguments.
	ErrAlign = errors.New("fsim: share range must be page aligned")
)

// Extent is a contiguous run of file pages mapped to device pages.
type Extent struct {
	Start uint32 // first device LPN
	Len   uint32 // length in pages
}

type inode struct {
	used    bool
	size    int64
	extents []Extent
}

// layout describes where each metadata region lives, in device pages.
type layout struct {
	total        uint32
	dirStart     uint32
	dirPages     uint32
	inodeStart   uint32
	inodePages   uint32
	bitmapStart  uint32
	bitmapPages  uint32
	journalStart uint32
	journalPages uint32
	dataStart    uint32
}

// FS is a mounted file system.
//
// Concurrency: a dual-mode sim.Mutex latch serializes every operation
// that touches shared metadata (directory, inode table, bitmap, journal,
// trim queue), so multiple sessions — scheduler tasks or real solo-task
// goroutines — can drive one FS. Data-page I/O in ReadAt/WriteAt runs
// outside the latch (the extent map is resolved under it first), so
// sessions working on different files overlap at the device exactly like
// O_DIRECT traffic. Concurrent access to the *same* file is the
// application's job to coordinate, as with POSIX. Exists/Stats/Fsck/
// FreePages read without the latch and are meant for setup and
// post-run checks on a quiescent FS.
type FS struct {
	dev      *ssd.Device
	pageSize int
	lay      layout
	latch    sim.Mutex // guards all fields below

	dir    map[string]int
	inodes []inode
	bitmap []uint64 // one bit per data page, 1 = allocated

	dirtyMeta map[uint32]bool // home metadata pages needing journaling
	dirtyInos map[int]bool    // inodes changed since the last commit (fast-commit path)
	// pending maps journaled pages whose home copy is stale to the page
	// image as of the last commit. The checkpoint must write these captured
	// images — re-rendering in-memory state at checkpoint time would leak
	// uncommitted metadata (e.g. a freshly created file's inode) to home
	// locations, which a crash then exposes without the rest of its
	// transaction.
	pending map[uint32][]byte
	seq     uint64 // journal transaction sequence
	ckptSeq uint64 // all txns <= ckptSeq are reflected at home
	jHead   uint32 // next free journal slot

	// pendingTrims holds extents freed by Remove/Truncate whose device
	// trims are deferred until the journal commit recording the free is
	// durable (see runPendingTrims) — trimming earlier could destroy pages
	// the on-disk metadata still references across a crash.
	pendingTrims []Extent

	// Stats.
	metaJournalWrites int64
	metaHomeWrites    int64
}

// File is an open handle. Handles stay valid until Remove.
type File struct {
	fs     *FS
	ino    int
	name   string
	stream int // default device write-stream hint for this handle; < 0 unhinted
}

func (fs *FS) inodesPerPage() int     { return fs.pageSize / inodeSize }
func (fs *FS) dirEntriesPerPage() int { return (fs.pageSize - 4) / dirEntrySize }

const (
	inodeSize    = 2 + 8 + 2 + MaxExtents*8 // used, size, extent count, extents
	dirEntrySize = 2 + 1 + MaxNameLen       // ino, name length, name
)

// Format writes a fresh file system across the whole device and mounts it.
// journalPages sets the journal region size (64 is a reasonable default).
func Format(t *sim.Task, dev *ssd.Device, journalPages int) (*FS, error) {
	fs := &FS{dev: dev, pageSize: dev.PageSize()}
	if journalPages < 8 {
		journalPages = 8
	}
	total := uint32(dev.Capacity())
	ipp := fs.pageSize / inodeSize
	if ipp == 0 {
		return nil, fmt.Errorf("fsim: page size %d too small for inodes", fs.pageSize)
	}
	inodePages := uint32((MaxFiles + ipp - 1) / ipp)
	dpp := (fs.pageSize - 4) / dirEntrySize
	dirPages := uint32((MaxFiles + dpp - 1) / dpp)
	lay := layout{total: total}
	next := uint32(1) // page 0 is the superblock
	lay.dirStart, next = next, next+dirPages
	lay.dirPages = dirPages
	lay.inodeStart, next = next, next+inodePages
	lay.inodePages = inodePages
	// Bitmap covers the data region; sized against the whole device for
	// simplicity (slightly generous).
	bits := int(total)
	bitmapPages := uint32((bits + fs.pageSize*8 - 1) / (fs.pageSize * 8))
	lay.bitmapStart, next = next, next+bitmapPages
	lay.bitmapPages = bitmapPages
	lay.journalStart, next = next, next+uint32(journalPages)
	lay.journalPages = uint32(journalPages)
	lay.dataStart = next
	if lay.dataStart >= total {
		return nil, fmt.Errorf("fsim: device too small (%d pages)", total)
	}
	fs.lay = lay
	fs.dir = make(map[string]int)
	fs.inodes = make([]inode, MaxFiles)
	fs.bitmap = make([]uint64, (int(total)+63)/64)
	fs.dirtyMeta = make(map[uint32]bool)
	fs.dirtyInos = make(map[int]bool)
	fs.pending = make(map[uint32][]byte)

	// Write all metadata home pages and the superblock.
	for p := lay.dirStart; p < lay.dataStart; p++ {
		if p >= lay.journalStart && p < lay.journalStart+lay.journalPages {
			continue // journal pages are written lazily
		}
		if err := dev.WritePage(t, p, fs.renderMetaPage(p)); err != nil {
			return nil, err
		}
	}
	if err := fs.writeSuper(t); err != nil {
		return nil, err
	}
	if err := dev.Flush(t); err != nil {
		return nil, err
	}
	return fs, nil
}

func (fs *FS) writeSuper(t *sim.Task) error {
	buf := make([]byte, fs.pageSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], sbMagic)
	le.PutUint32(buf[4:], fs.lay.total)
	le.PutUint32(buf[8:], fs.lay.dirStart)
	le.PutUint32(buf[12:], fs.lay.dirPages)
	le.PutUint32(buf[16:], fs.lay.inodeStart)
	le.PutUint32(buf[20:], fs.lay.inodePages)
	le.PutUint32(buf[24:], fs.lay.bitmapStart)
	le.PutUint32(buf[28:], fs.lay.bitmapPages)
	le.PutUint32(buf[32:], fs.lay.journalStart)
	le.PutUint32(buf[36:], fs.lay.journalPages)
	le.PutUint32(buf[40:], fs.lay.dataStart)
	le.PutUint64(buf[44:], fs.ckptSeq)
	fs.metaHomeWrites++
	return fs.dev.WritePage(t, 0, buf)
}

// Mount loads the file system from the device, replaying any committed
// journal transactions (crash recovery).
func Mount(t *sim.Task, dev *ssd.Device) (*FS, error) {
	fs := &FS{dev: dev, pageSize: dev.PageSize()}
	buf := make([]byte, fs.pageSize)
	if err := dev.ReadPage(t, 0, buf); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != sbMagic {
		return nil, fmt.Errorf("fsim: bad superblock magic")
	}
	fs.lay = layout{
		total:        le.Uint32(buf[4:]),
		dirStart:     le.Uint32(buf[8:]),
		dirPages:     le.Uint32(buf[12:]),
		inodeStart:   le.Uint32(buf[16:]),
		inodePages:   le.Uint32(buf[20:]),
		bitmapStart:  le.Uint32(buf[24:]),
		bitmapPages:  le.Uint32(buf[28:]),
		journalStart: le.Uint32(buf[32:]),
		journalPages: le.Uint32(buf[36:]),
		dataStart:    le.Uint32(buf[40:]),
	}
	fs.ckptSeq = le.Uint64(buf[44:])
	fs.seq = fs.ckptSeq
	fs.dirtyMeta = make(map[uint32]bool)
	fs.dirtyInos = make(map[int]bool)
	fs.pending = make(map[uint32][]byte)

	if err := fs.replayJournal(t); err != nil {
		return nil, err
	}
	if err := fs.loadMeta(t); err != nil {
		return nil, err
	}
	return fs, nil
}

// loadMeta reads directory, inode and bitmap pages from home locations.
func (fs *FS) loadMeta(t *sim.Task) error {
	fs.dir = make(map[string]int)
	fs.inodes = make([]inode, MaxFiles)
	fs.bitmap = make([]uint64, (int(fs.lay.total)+63)/64)
	buf := make([]byte, fs.pageSize)
	le := binary.LittleEndian
	// Directory.
	dpp := fs.dirEntriesPerPage()
	for p := uint32(0); p < fs.lay.dirPages; p++ {
		if err := fs.dev.ReadPage(t, fs.lay.dirStart+p, buf); err != nil {
			return err
		}
		n := int(le.Uint32(buf[0:]))
		off := 4
		for i := 0; i < n && i < dpp; i++ {
			ino := int(le.Uint16(buf[off:]))
			nl := int(buf[off+2])
			name := string(buf[off+3 : off+3+nl])
			fs.dir[name] = ino
			off += dirEntrySize
		}
	}
	// Inodes.
	ipp := fs.inodesPerPage()
	for p := uint32(0); p < fs.lay.inodePages; p++ {
		if err := fs.dev.ReadPage(t, fs.lay.inodeStart+p, buf); err != nil {
			return err
		}
		for i := 0; i < ipp; i++ {
			idx := int(p)*ipp + i
			if idx >= MaxFiles {
				break
			}
			off := i * inodeSize
			ind := &fs.inodes[idx]
			ind.used = buf[off] == 1
			ind.size = int64(le.Uint64(buf[off+2:]))
			cnt := int(le.Uint16(buf[off+10:]))
			ind.extents = nil
			for e := 0; e < cnt && e < MaxExtents; e++ {
				eo := off + 12 + e*8
				ind.extents = append(ind.extents, Extent{
					Start: le.Uint32(buf[eo:]),
					Len:   le.Uint32(buf[eo+4:]),
				})
			}
		}
	}
	// Bitmap.
	for p := uint32(0); p < fs.lay.bitmapPages; p++ {
		if err := fs.dev.ReadPage(t, fs.lay.bitmapStart+p, buf); err != nil {
			return err
		}
		base := int(p) * fs.pageSize / 8
		for w := 0; w < fs.pageSize/8; w++ {
			if base+w < len(fs.bitmap) {
				fs.bitmap[base+w] = le.Uint64(buf[w*8:])
			}
		}
	}
	return nil
}

// renderMetaPage serializes the current in-memory state of one metadata
// home page (directory, inode or bitmap page).
func (fs *FS) renderMetaPage(p uint32) []byte {
	buf := make([]byte, fs.pageSize)
	le := binary.LittleEndian
	switch {
	case p >= fs.lay.dirStart && p < fs.lay.dirStart+fs.lay.dirPages:
		// Directory entries are packed densely in name order across the
		// dir pages; rebuild the global list and slice this page's part.
		names := make([]string, 0, len(fs.dir))
		for name := range fs.dir {
			names = append(names, name)
		}
		sortStrings(names)
		dpp := fs.dirEntriesPerPage()
		pageIdx := int(p - fs.lay.dirStart)
		start := pageIdx * dpp
		cnt := 0
		off := 4
		for i := start; i < len(names) && i < start+dpp; i++ {
			name := names[i]
			le.PutUint16(buf[off:], uint16(fs.dir[name]))
			buf[off+2] = byte(len(name))
			copy(buf[off+3:], name)
			off += dirEntrySize
			cnt++
		}
		le.PutUint32(buf[0:], uint32(cnt))
	case p >= fs.lay.inodeStart && p < fs.lay.inodeStart+fs.lay.inodePages:
		ipp := fs.inodesPerPage()
		pageIdx := int(p - fs.lay.inodeStart)
		for i := 0; i < ipp; i++ {
			idx := pageIdx*ipp + i
			if idx >= MaxFiles {
				break
			}
			off := i * inodeSize
			ind := &fs.inodes[idx]
			if ind.used {
				buf[off] = 1
			}
			le.PutUint64(buf[off+2:], uint64(ind.size))
			le.PutUint16(buf[off+10:], uint16(len(ind.extents)))
			for e, ext := range ind.extents {
				eo := off + 12 + e*8
				le.PutUint32(buf[eo:], ext.Start)
				le.PutUint32(buf[eo+4:], ext.Len)
			}
		}
	case p >= fs.lay.bitmapStart && p < fs.lay.bitmapStart+fs.lay.bitmapPages:
		pageIdx := int(p - fs.lay.bitmapStart)
		base := pageIdx * fs.pageSize / 8
		for w := 0; w < fs.pageSize/8; w++ {
			if base+w < len(fs.bitmap) {
				le.PutUint64(buf[w*8:], fs.bitmap[base+w])
			}
		}
	default:
		panic(fmt.Sprintf("fsim: renderMetaPage(%d) outside metadata", p))
	}
	return buf
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// markInodeDirty flags the home page holding ino for the next journal txn.
func (fs *FS) markInodeDirty(ino int) {
	fs.dirtyMeta[fs.lay.inodeStart+uint32(ino/fs.inodesPerPage())] = true
	fs.dirtyInos[ino] = true
}

// markDirDirty flags all directory pages (entries shift between pages).
func (fs *FS) markDirDirty() {
	for p := uint32(0); p < fs.lay.dirPages; p++ {
		fs.dirtyMeta[fs.lay.dirStart+p] = true
	}
}

// markBitmapDirty flags the bitmap page covering data page bit.
func (fs *FS) markBitmapDirty(bit uint32) {
	fs.dirtyMeta[fs.lay.bitmapStart+bit/uint32(fs.pageSize*8)] = true
}

// Stats reports metadata write activity.
type Stats struct {
	MetaJournalWrites int64 // journal descriptor/image/commit pages
	MetaHomeWrites    int64 // metadata pages written in place (checkpoint)
}

// Stats returns a snapshot of file-system metadata traffic.
func (fs *FS) Stats() Stats {
	return Stats{MetaJournalWrites: fs.metaJournalWrites, MetaHomeWrites: fs.metaHomeWrites}
}

// Device returns the underlying device (for stats and direct SHARE use).
func (fs *FS) Device() *ssd.Device { return fs.dev }

// Fsck validates the file system's internal consistency: every allocated
// bitmap bit is covered by exactly one file extent, no extent crosses into
// the metadata area, and no two files overlap. It returns the first
// violation found.
func (fs *FS) Fsck() error {
	owner := make(map[uint32]int) // data page -> inode
	for ino := range fs.inodes {
		ind := &fs.inodes[ino]
		if !ind.used {
			if len(ind.extents) != 0 {
				return fmt.Errorf("fsim: free inode %d has extents", ino)
			}
			continue
		}
		var pages int64
		for _, e := range ind.extents {
			if e.Len == 0 {
				return fmt.Errorf("fsim: inode %d has empty extent", ino)
			}
			if e.Start < fs.lay.dataStart || e.Start+e.Len > fs.lay.total {
				return fmt.Errorf("fsim: inode %d extent [%d,+%d) outside data area", ino, e.Start, e.Len)
			}
			for i := uint32(0); i < e.Len; i++ {
				p := e.Start + i
				if prev, dup := owner[p]; dup {
					return fmt.Errorf("fsim: page %d owned by inodes %d and %d", p, prev, ino)
				}
				owner[p] = ino
				if !fs.bitGet(p) {
					return fmt.Errorf("fsim: inode %d uses unallocated page %d", ino, p)
				}
			}
			pages += int64(e.Len)
		}
		if need := (ind.size + int64(fs.pageSize) - 1) / int64(fs.pageSize); pages < need {
			return fmt.Errorf("fsim: inode %d size %d exceeds allocation %d pages", ino, ind.size, pages)
		}
	}
	// Every set bitmap bit must have an owner.
	for bit := fs.lay.dataStart; bit < fs.lay.total; bit++ {
		if fs.bitGet(bit) {
			if _, ok := owner[bit]; !ok {
				return fmt.Errorf("fsim: leaked allocation at page %d", bit)
			}
		}
	}
	// Directory entries must reference used inodes, uniquely.
	seen := make(map[int]string)
	for name, ino := range fs.dir {
		if ino < 0 || ino >= len(fs.inodes) || !fs.inodes[ino].used {
			return fmt.Errorf("fsim: dir entry %q references bad inode %d", name, ino)
		}
		if prev, dup := seen[ino]; dup {
			return fmt.Errorf("fsim: inode %d referenced by %q and %q", ino, prev, name)
		}
		seen[ino] = name
	}
	return nil
}
