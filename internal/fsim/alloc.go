package fsim

import (
	"errors"
	"fmt"

	"share/internal/ftl"
	"share/internal/sim"
)

// allocChunk is the preferred contiguous allocation unit (pages). Larger
// requests allocate exactly what they need; smaller file extensions round
// up to reduce fragmentation and extent-count pressure.
const allocChunk = 256

func (fs *FS) bitGet(bit uint32) bool { return fs.bitmap[bit/64]&(1<<(bit%64)) != 0 }
func (fs *FS) bitSet(bit uint32)      { fs.bitmap[bit/64] |= 1 << (bit % 64) }
func (fs *FS) bitClear(bit uint32)    { fs.bitmap[bit/64] &^= 1 << (bit % 64) }

// ensurePages grows ino's allocation to at least want pages.
func (fs *FS) ensurePages(t *sim.Task, ino int, want int64) error {
	_ = t
	ind := &fs.inodes[ino]
	have := int64(0)
	for _, e := range ind.extents {
		have += int64(e.Len)
	}
	for have < want {
		need := want - have
		// Round small extensions up: at least 4 pages, growing with the
		// file (ext4-like preallocation) but capped at allocChunk.
		grow := have
		if grow > allocChunk {
			grow = allocChunk
		}
		if grow < 4 {
			grow = 4
		}
		chunk := need
		if chunk < grow {
			chunk = grow
		}
		ext, err := fs.allocExtent(uint32(chunk), uint32(need))
		if err != nil {
			return err
		}
		// Merge with the previous extent when physically adjacent.
		if n := len(ind.extents); n > 0 && ind.extents[n-1].Start+ind.extents[n-1].Len == ext.Start {
			ind.extents[n-1].Len += ext.Len
		} else {
			if len(ind.extents) >= MaxExtents {
				fs.freeExtent(ext)
				return fmt.Errorf("%w: file too fragmented (%d extents)", ErrNoSpace, MaxExtents)
			}
			ind.extents = append(ind.extents, ext)
		}
		have += int64(ext.Len)
	}
	fs.markInodeDirty(ino)
	return nil
}

// allocExtent finds a contiguous free run. It prefers `want` pages but
// accepts any run of at least `min` pages, and otherwise returns the
// largest run found (first-fit with fallback), so large requests degrade
// gracefully into multiple extents.
func (fs *FS) allocExtent(want, min uint32) (Extent, error) {
	if min == 0 {
		min = 1
	}
	if want < min {
		want = min
	}
	bestStart, bestLen := uint32(0), uint32(0)
	run := uint32(0)
	runStart := uint32(0)
	for bit := fs.lay.dataStart; bit < fs.lay.total; bit++ {
		if fs.bitGet(bit) {
			run = 0
			continue
		}
		if run == 0 {
			runStart = bit
		}
		run++
		if run >= want {
			bestStart, bestLen = runStart, run
			break
		}
		if run > bestLen {
			bestStart, bestLen = runStart, run
		}
	}
	if bestLen == 0 {
		return Extent{}, fmt.Errorf("%w: data area exhausted", ErrNoSpace)
	}
	if bestLen > want {
		bestLen = want
	}
	ext := Extent{Start: bestStart, Len: bestLen}
	for i := uint32(0); i < ext.Len; i++ {
		fs.bitSet(ext.Start + i)
		fs.markBitmapDirty(ext.Start + i)
	}
	fs.cancelPendingTrims(ext)
	return ext, nil
}

// freeExtent returns pages to the allocator.
func (fs *FS) freeExtent(ext Extent) {
	for i := uint32(0); i < ext.Len; i++ {
		fs.bitClear(ext.Start + i)
		fs.markBitmapDirty(ext.Start + i)
	}
}

// deferTrim queues ext for device trimming at the next SyncMeta, after the
// journal commit that records the free is durable.
func (fs *FS) deferTrim(ext Extent) {
	if ext.Len == 0 {
		return
	}
	fs.pendingTrims = append(fs.pendingTrims, ext)
}

// cancelPendingTrims clips any queued trim overlapping ext: the pages have
// been reallocated, so the new owner's writes supersede the old data and a
// later trim would destroy live content.
func (fs *FS) cancelPendingTrims(ext Extent) {
	if len(fs.pendingTrims) == 0 {
		return
	}
	out := fs.pendingTrims[:0]
	aStart, aEnd := ext.Start, ext.Start+ext.Len
	for _, p := range fs.pendingTrims {
		pStart, pEnd := p.Start, p.Start+p.Len
		if pEnd <= aStart || pStart >= aEnd {
			out = append(out, p)
			continue
		}
		if pStart < aStart {
			out = append(out, Extent{Start: pStart, Len: aStart - pStart})
		}
		if pEnd > aEnd {
			out = append(out, Extent{Start: aEnd, Len: pEnd - aEnd})
		}
	}
	fs.pendingTrims = out
}

// runPendingTrims issues the trims deferred by Remove and Truncate. It
// must run only after the journal commit that freed the pages is durable:
// the FTL may persist its mapping deltas at any moment (GC flushes the
// delta buffer), so an earlier trim could become durable before the
// commit record and leave recovered metadata pointing at destroyed pages.
func (fs *FS) runPendingTrims(t *sim.Task) error {
	for len(fs.pendingTrims) > 0 {
		ext := fs.pendingTrims[0]
		if err := fs.dev.Trim(t, ext.Start, int(ext.Len)); err != nil {
			if errors.Is(err, ftl.ErrReadOnly) {
				// Degraded device: space reclamation is moot; drop the queue
				// so fsyncs keep succeeding for what can still be flushed.
				fs.pendingTrims = nil
				return nil
			}
			return err
		}
		fs.pendingTrims = fs.pendingTrims[1:]
	}
	fs.pendingTrims = nil
	return nil
}

// FreePages reports how many data pages remain unallocated.
func (fs *FS) FreePages() int {
	n := 0
	for bit := fs.lay.dataStart; bit < fs.lay.total; bit++ {
		if !fs.bitGet(bit) {
			n++
		}
	}
	return n
}
