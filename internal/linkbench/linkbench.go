// Package linkbench implements the LinkBench social-graph benchmark
// (Armstrong et al., SIGMOD 2013) against the mini-InnoDB engine, as the
// paper uses it in §5.3.1: a node table, a link table and a link-count
// table; the Facebook request mix over ten operation types; power-law
// access skew; 16 closed-loop clients; and per-operation latency
// distributions (Table 1).
package linkbench

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"share/internal/innodb"
	"share/internal/sim"
	"share/internal/stats"
)

// Op identifies a LinkBench operation type.
type Op int

// Operation types, in the order the paper's Table 1 lists them.
const (
	GetNode Op = iota
	CountLink
	MultigetLink
	GetLinkList
	AddNode
	UpdateNode
	DeleteNode
	AddLink
	DeleteLink
	UpdateLink
	numOps
)

// Name returns the LinkBench operation name.
func (o Op) Name() string {
	return [...]string{
		"Get_Node", "Count_Link", "Multiget_Link", "Get_Link_List",
		"Add_Node", "Update_Node", "Delete_Node",
		"Add_Link", "Delete_Link", "Update_Link",
	}[o]
}

// IsRead reports whether the operation is read-only.
func (o Op) IsRead() bool { return o <= GetLinkList }

// mix is the default LinkBench workload mix in permille (the Facebook
// production mix from the LinkBench paper; ~69% reads / ~31% writes).
var mix = [numOps]int{
	GetNode:      129,
	CountLink:    49,
	MultigetLink: 5,
	GetLinkList:  507,
	AddNode:      26,
	UpdateNode:   74,
	DeleteNode:   10,
	AddLink:      90,
	DeleteLink:   30,
	UpdateLink:   80,
}

// Config sizes the benchmark.
type Config struct {
	Nodes         int     // initial graph size
	MeanLinks     float64 // mean out-degree at load
	NodePayload   int     // bytes of node data
	LinkPayload   int     // bytes of link data
	Clients       int     // concurrent closed-loop clients (paper: 16)
	Requests      int     // measured requests per client (paper: 10000)
	Warmup        int     // unmeasured requests per client
	Seed          int64
	LinkListLimit int // max links returned by Get_Link_List
}

func (c *Config) setDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 2000
	}
	if c.MeanLinks == 0 {
		c.MeanLinks = 5
	}
	if c.NodePayload == 0 {
		c.NodePayload = 120
	}
	if c.LinkPayload == 0 {
		c.LinkPayload = 16
	}
	if c.Clients == 0 {
		c.Clients = 16
	}
	if c.Requests == 0 {
		c.Requests = 1000
	}
	if c.LinkListLimit == 0 {
		c.LinkListLimit = 50
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Result of one benchmark run.
type Result struct {
	Ops        int64
	Elapsed    sim.Duration // measured window in virtual time
	Throughput float64      // requests per virtual second
	Latency    [numOps]*stats.Histogram
}

// Table renders the latency distribution in the style of Table 1
// (milliseconds).
func (r *Result) Table() string {
	tb := stats.NewTable("Op", "Mean", "P25", "P50", "P75", "P99", "Max")
	for op := Op(0); op < numOps; op++ {
		s := r.Latency[op].Summarize()
		tb.AddRow(op.Name(),
			fmt.Sprintf("%.2f", s.Mean), fmt.Sprintf("%.2f", s.P25),
			fmt.Sprintf("%.2f", s.P50), fmt.Sprintf("%.2f", s.P75),
			fmt.Sprintf("%.2f", s.P99), fmt.Sprintf("%.2f", s.Max))
	}
	return tb.String()
}

func nodeKey(id uint64) []byte {
	k := make([]byte, 9)
	k[0] = 'n'
	binary.BigEndian.PutUint64(k[1:], id)
	return k
}

// linkKey orders links by (id1, type, id2) so Get_Link_List is a prefix
// scan on (id1, type).
func linkKey(id1 uint64, ltype uint32, id2 uint64) []byte {
	k := make([]byte, 21)
	k[0] = 'l'
	binary.BigEndian.PutUint64(k[1:], id1)
	binary.BigEndian.PutUint32(k[9:], ltype)
	binary.BigEndian.PutUint64(k[13:], id2)
	return k
}

func linkPrefix(id1 uint64, ltype uint32) []byte {
	k := make([]byte, 13)
	k[0] = 'l'
	binary.BigEndian.PutUint64(k[1:], id1)
	binary.BigEndian.PutUint32(k[9:], ltype)
	return k
}

func countKey(id1 uint64, ltype uint32) []byte {
	k := make([]byte, 13)
	k[0] = 'c'
	binary.BigEndian.PutUint64(k[1:], id1)
	binary.BigEndian.PutUint32(k[9:], ltype)
	return k
}

const linkType = 1 // LinkBench's default single association type

// Load creates the tables and the initial power-law graph.
func Load(t *sim.Task, e *innodb.Engine, cfg Config) error {
	cfg.setDefaults()
	for _, name := range []string{"node", "link", "count"} {
		if _, err := e.CreateTable(t, name); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	payload := make([]byte, cfg.NodePayload)
	lpayload := make([]byte, cfg.LinkPayload)
	node := e.Table("node")
	link := e.Table("link")
	count := e.Table("count")
	for id := uint64(1); id <= uint64(cfg.Nodes); id++ {
		tx := e.Begin(t)
		rng.Read(payload)
		if err := tx.Put(node, nodeKey(id), payload); err != nil {
			return err
		}
		// Power-law out-degree: 80% of nodes few links, a heavy tail.
		deg := powerLawDegree(rng, cfg.MeanLinks)
		for j := 0; j < deg; j++ {
			id2 := uint64(rng.Intn(cfg.Nodes)) + 1
			rng.Read(lpayload)
			if err := tx.Put(link, linkKey(id, linkType, id2), lpayload); err != nil {
				return err
			}
		}
		cbuf := make([]byte, 8)
		binary.LittleEndian.PutUint64(cbuf, uint64(deg))
		if err := tx.Put(count, countKey(id, linkType), cbuf); err != nil {
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return e.Checkpoint(t)
}

// powerLawDegree samples an out-degree from a Pareto(α=2) distribution
// with the requested mean: x_m/√u has mean 2·x_m, so x_m = mean/2. The
// heavy tail is capped to keep single-node link lists bounded.
func powerLawDegree(rng *rand.Rand, mean float64) int {
	u := rng.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	d := int(mean / 2 / math.Sqrt(u))
	if d < 1 {
		d = 1
	}
	if d > 200 {
		d = 200
	}
	return d
}

// Run executes the request mix with cfg.Clients concurrent closed-loop
// clients over a deterministic virtual-time scheduler.
func Run(e *innodb.Engine, cfg Config) (*Result, error) {
	cfg.setDefaults()
	res := &Result{}
	for op := Op(0); op < numOps; op++ {
		res.Latency[op] = stats.NewHistogram()
	}
	sched := sim.NewScheduler()
	starts := make([]int64, cfg.Clients)
	ends := make([]int64, cfg.Clients)
	errs := make([]error, cfg.Clients)
	hists := make([][numOps]*stats.Histogram, cfg.Clients)
	// New node ids are partitioned per client to avoid coordination.
	nextID := make([]uint64, cfg.Clients)
	for c := range nextID {
		nextID[c] = uint64(cfg.Nodes) + 1 + uint64(c)*1_000_000_000
	}
	for c := 0; c < cfg.Clients; c++ {
		c := c
		for op := Op(0); op < numOps; op++ {
			hists[c][op] = stats.NewHistogram()
		}
		sched.Go(fmt.Sprintf("client%d", c), func(task *sim.Task) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			zipf := rand.NewZipf(rng, 1.2, 8, uint64(cfg.Nodes-1))
			for i := 0; i < cfg.Warmup; i++ {
				if err := runOne(task, e, cfg, rng, zipf, &nextID[c], nil); err != nil {
					errs[c] = err
					return
				}
			}
			starts[c] = task.Now()
			for i := 0; i < cfg.Requests; i++ {
				if err := runOne(task, e, cfg, rng, zipf, &nextID[c], &hists[c]); err != nil {
					errs[c] = err
					return
				}
			}
			ends[c] = task.Now()
		})
	}
	sched.Run()
	for c := 0; c < cfg.Clients; c++ {
		if errs[c] != nil {
			return nil, errs[c]
		}
	}
	var minStart, maxEnd int64
	minStart = starts[0]
	for c := 0; c < cfg.Clients; c++ {
		if starts[c] < minStart {
			minStart = starts[c]
		}
		if ends[c] > maxEnd {
			maxEnd = ends[c]
		}
		for op := Op(0); op < numOps; op++ {
			res.Latency[op].Merge(hists[c][op])
		}
	}
	res.Ops = int64(cfg.Clients) * int64(cfg.Requests)
	res.Elapsed = maxEnd - minStart
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / (float64(res.Elapsed) / float64(sim.Second))
	}
	return res, nil
}

// pickOp samples the request mix.
func pickOp(rng *rand.Rand) Op {
	r := rng.Intn(1000)
	for op := Op(0); op < numOps; op++ {
		r -= mix[op]
		if r < 0 {
			return op
		}
	}
	return GetLinkList
}

// pickNode samples a node id with power-law skew.
func pickNode(rng *rand.Rand, zipf *rand.Zipf, n int) uint64 {
	// Scramble the zipf rank so hot ids spread over the key space.
	rank := zipf.Uint64()
	return (rank*2654435761)%uint64(n) + 1
}

func runOne(t *sim.Task, e *innodb.Engine, cfg Config, rng *rand.Rand,
	zipf *rand.Zipf, nextID *uint64, hist *[numOps]*stats.Histogram) error {
	op := pickOp(rng)
	start := t.Now()
	if err := execOp(t, e, cfg, rng, zipf, nextID, op); err != nil {
		return fmt.Errorf("linkbench %s: %w", op.Name(), err)
	}
	if hist != nil {
		hist[op].Add(t.Now() - start)
	}
	return nil
}

func execOp(t *sim.Task, e *innodb.Engine, cfg Config, rng *rand.Rand,
	zipf *rand.Zipf, nextID *uint64, op Op) error {
	node := e.Table("node")
	link := e.Table("link")
	count := e.Table("count")
	id1 := pickNode(rng, zipf, cfg.Nodes)
	tx := e.Begin(t)
	defer tx.Rollback() // no-op after Commit

	switch op {
	case GetNode:
		if _, _, err := tx.Get(node, nodeKey(id1)); err != nil {
			return err
		}
	case CountLink:
		if _, _, err := tx.Get(count, countKey(id1, linkType)); err != nil {
			return err
		}
	case MultigetLink:
		for j := 0; j < 1+rng.Intn(3); j++ {
			id2 := pickNode(rng, zipf, cfg.Nodes)
			if _, _, err := tx.Get(link, linkKey(id1, linkType, id2)); err != nil {
				return err
			}
		}
	case GetLinkList:
		prefix := linkPrefix(id1, linkType)
		limit := cfg.LinkListLimit
		if err := tx.Scan(link, prefix, innodb.KeyUpperBound(prefix), func(k, v []byte) bool {
			limit--
			return limit > 0
		}); err != nil {
			return err
		}
	case AddNode:
		id := *nextID
		*nextID++
		payload := make([]byte, cfg.NodePayload)
		rng.Read(payload)
		if err := tx.Put(node, nodeKey(id), payload); err != nil {
			return err
		}
	case UpdateNode:
		payload := make([]byte, cfg.NodePayload)
		rng.Read(payload)
		if err := tx.Put(node, nodeKey(id1), payload); err != nil {
			return err
		}
	case DeleteNode:
		if err := tx.Delete(node, nodeKey(id1)); err != nil {
			return err
		}
	case AddLink:
		id2 := pickNode(rng, zipf, cfg.Nodes)
		payload := make([]byte, cfg.LinkPayload)
		rng.Read(payload)
		if err := tx.Put(link, linkKey(id1, linkType, id2), payload); err != nil {
			return err
		}
		if err := bumpCount(tx, count, id1, 1); err != nil {
			return err
		}
	case DeleteLink:
		id2 := pickNode(rng, zipf, cfg.Nodes)
		if err := tx.Delete(link, linkKey(id1, linkType, id2)); err != nil {
			return err
		}
		if err := bumpCount(tx, count, id1, -1); err != nil {
			return err
		}
	case UpdateLink:
		id2 := pickNode(rng, zipf, cfg.Nodes)
		payload := make([]byte, cfg.LinkPayload)
		rng.Read(payload)
		if err := tx.Put(link, linkKey(id1, linkType, id2), payload); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// bumpCount applies a read-modify-write to the link-count row.
func bumpCount(tx *innodb.Txn, count *innodb.Table, id1 uint64, delta int64) error {
	cur, ok, err := tx.Get(count, countKey(id1, linkType))
	if err != nil {
		return err
	}
	var v int64
	if ok {
		v = int64(binary.LittleEndian.Uint64(cur))
	}
	v += delta
	if v < 0 {
		v = 0
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(v))
	return tx.Put(count, countKey(id1, linkType), buf)
}
