package linkbench

import (
	"testing"

	"share/internal/fsim"
	"share/internal/innodb"
	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

func testEngine(t *testing.T, mode innodb.FlushMode) (*innodb.Engine, *sim.Task) {
	t.Helper()
	cfg := ssd.DefaultConfig(1024)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	data, err := ssd.New("data", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("setup")
	fs, err := fsim.Format(task, data, 32)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := ssd.DefaultConfig(512)
	lcfg.Geometry.PageSize = 512
	lcfg.Geometry.PagesPerBlock = 32
	lcfg.Timing = nand.Timing{
		ReadPage: 20 * sim.Microsecond, Program: 50 * sim.Microsecond,
		Erase: 500 * sim.Microsecond, Transfer: 5 * sim.Microsecond,
	}
	lcfg.FTL.PowerCapacitor = true
	logDev, err := ssd.New("log", lcfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := innodb.Open(task, fs, logDev, innodb.Config{
		PageSize:  1024,
		PoolBytes: 128 * 1024,
		FlushMode: mode,
		DWBPages:  16,
		DataBytes: 4 * 1024 * 1024,
		LogPages:  4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, task
}

func smallCfg() Config {
	return Config{
		Nodes:    300,
		Clients:  4,
		Requests: 100,
		Warmup:   20,
		Seed:     7,
	}
}

func TestLoadAndRun(t *testing.T) {
	eng, task := testEngine(t, innodb.Share)
	cfg := smallCfg()
	if err := Load(task, eng, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != int64(cfg.Clients)*int64(cfg.Requests) {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %f", res.Throughput)
	}
	// Every op type should have been exercised with 400 requests.
	for op := Op(0); op < numOps; op++ {
		if res.Latency[op].Count() == 0 {
			t.Fatalf("op %s never ran", op.Name())
		}
	}
	// Read ops must not be slower than the heaviest write op on average
	// is not guaranteed, but latencies must be positive.
	if res.Latency[GetNode].Mean() <= 0 {
		t.Fatal("zero latency recorded")
	}
	// Table renders without panic and mentions every op.
	tbl := res.Table()
	for op := Op(0); op < numOps; op++ {
		if !contains(tbl, op.Name()) {
			t.Fatalf("table missing %s:\n%s", op.Name(), tbl)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMixRoughlyMatches(t *testing.T) {
	eng, task := testEngine(t, innodb.DWBOff)
	cfg := smallCfg()
	cfg.Clients = 2
	cfg.Requests = 1000
	if err := Load(task, eng, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(res.Ops)
	gll := float64(res.Latency[GetLinkList].Count()) / total
	if gll < 0.40 || gll > 0.62 {
		t.Fatalf("Get_Link_List fraction %.2f; want ~0.51", gll)
	}
	writes := 0.0
	for op := AddNode; op < numOps; op++ {
		writes += float64(res.Latency[op].Count())
	}
	if frac := writes / total; frac < 0.22 || frac > 0.42 {
		t.Fatalf("write fraction %.2f; want ~0.31", frac)
	}
}

func TestShareFasterThanDWB(t *testing.T) {
	run := func(mode innodb.FlushMode) float64 {
		eng, task := testEngine(t, mode)
		cfg := smallCfg()
		cfg.Requests = 300
		if err := Load(task, eng, cfg); err != nil {
			t.Fatal(err)
		}
		res, err := Run(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	dwb := run(innodb.DWBOn)
	share := run(innodb.Share)
	if share <= dwb {
		t.Fatalf("SHARE throughput %.1f <= DWB-On %.1f", share, dwb)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, int64) {
		eng, task := testEngine(t, innodb.Share)
		cfg := smallCfg()
		if err := Load(task, eng, cfg); err != nil {
			t.Fatal(err)
		}
		res, err := Run(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput, res.Elapsed
	}
	tp1, el1 := run()
	tp2, el2 := run()
	if tp1 != tp2 || el1 != el2 {
		t.Fatalf("nondeterministic: %.3f/%d vs %.3f/%d", tp1, el1, tp2, el2)
	}
}
