// Package pgmini is a miniature PostgreSQL-style engine built for the
// paper's §5.3.1 side experiment: it runs a pgbench (TPC-B-like) workload
// against a heap-table store whose WAL can run with full_page_writes on
// (a full page image is logged on the first modification of a page after
// each checkpoint — PostgreSQL's torn-page defence), off (deltas only,
// fast but unsafe on plain storage), or in SHARE mode (deltas only, with
// checkpoint page propagation made atomic by SHARE remapping, which is
// the integration the paper proposes).
package pgmini

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"share/internal/bufpool"
	"share/internal/core"
	"share/internal/fsim"
	"share/internal/ftl"
	"share/internal/sim"
	"share/internal/ssd"
	"share/internal/wal"
)

// ErrReadOnly is returned by mutating operations after the data device
// degraded to read-only (spare blocks exhausted). Balance reads keep
// serving from the pool and the still-readable heap.
var ErrReadOnly = errors.New("pgmini: database is read-only (device degraded)")

// Mode selects the torn-page strategy.
type Mode int

// Torn-page strategies.
const (
	FPWOn Mode = iota
	FPWOff
	FPWShare
)

func (m Mode) String() string {
	switch m {
	case FPWOn:
		return "full_page_writes=on"
	case FPWOff:
		return "full_page_writes=off"
	case FPWShare:
		return "SHARE"
	}
	return "?"
}

// Config sizes the database.
type Config struct {
	Scale     int // pgbench scale factor: Scale*2500 accounts
	Mode      Mode
	PageSize  int
	PoolBytes int64
	LogPages  uint32
	// CheckpointEvery flushes dirty pages and truncates the WAL after
	// this many transactions.
	CheckpointEvery int
	// StreamHints tags device writes with per-object stream hints on
	// multi-stream devices: the heap takes stream 0 and the SHARE-mode
	// checkpoint staging file (full-page writes' stand-in) stream 1 on the
	// data device, and the WAL claims stream 0 of its own log device. No
	// effect when the devices are single-stream.
	StreamHints bool
}

const (
	tupleSize        = 100
	accountsPerScale = 2500
	tellersPerScale  = 10
	branchesPerScale = 1
	pageHdrSize      = 16 // checksum u32, lsn u64, reserved
)

// DB is one pgmini database.
//
// Concurrency: a database latch (db.mu) serializes the transaction apply
// phase — heap updates, WAL appends and the commit record. Sessions then
// release the latch and rendezvous at the group-commit state (gcMu): one
// leader fsyncs the WAL for every commit record appended so far, so the
// flush overlaps the next session”s apply, exactly as in the innodb
// engine. Pages dirtied by a transaction stay pinned (refcounted,
// no-steal) until its commit record is durable — PostgreSQL proper
// enforces the same WAL-before-data rule via page LSNs.
type DB struct {
	fs      *fsim.FS
	file    *fsim.File
	scratch *fsim.File // SHARE-mode checkpoint staging area
	logDev  *ssd.Device
	log     *wal.Log
	pool    *bufpool.Pool
	cfg     Config

	perPage                                      int
	branches                                     int
	tellers                                      int
	accounts                                     int
	pagesFor                                     func(rows int) int
	branchesAt, tellersAt, accountsAt, historyAt uint32
	historyRows                                  int

	mu sim.Mutex // database latch: pool, heap layout, WAL append order

	loggedSinceCkpt map[uint32]bool // FPW first-touch set
	txnsSinceCkpt   int

	// Apply-phase dirty tracking and refcounted no-steal pins, as in the
	// innodb engine (see Engine.protect).
	applying  bool
	txnPages  map[uint32]bool
	protMu    sync.Mutex
	protected map[uint32]int

	// Group commit rendezvous (see (*DB).groupSync).
	gcMu       sim.Mutex
	gcCond     sim.Cond
	gcDrain    sim.Cond
	gcSyncing  bool
	gcDurable  int64
	gcGen      uint64
	gcErr      error
	gcUnsynced int

	// Background, when set, is the task checkpoint and background-writer
	// flushes are charged to — PostgreSQL's checkpointer runs alongside
	// the backends, contending for the data device but not serializing
	// with the transaction stream.
	Background *sim.Task

	// degraded is latched when a data-device write fails with
	// ftl.ErrReadOnly; mutating operations then fail fast with ErrReadOnly
	// while reads keep serving.
	degraded atomic.Bool

	st Stats // counters updated via atomics; read with Stats()
}

// Stats counts engine activity.
type Stats struct {
	Commits          int64
	WALRecords       int64
	WALPages         int64 // log device pages written
	FullImages       int64 // full page images logged (FPW on)
	Checkpoints      int64
	DataPagesFlushed int64

	GroupCommits int64 // WAL syncs issued by group-commit leaders
	GroupedTxns  int64 // commits that rode another session's sync

	WALReadTruncations  int64 // WAL scans cut short by unrecoverable read faults
	ReadOnlyTransitions int64 // device degradations observed (0 or 1)
	Degraded            bool  // gauge: database is serving read-only
}

// WAL record kinds.
const (
	pgRecDelta  = 1 // [kind][pageNo u32][off u16][len u16][bytes]
	pgRecImage  = 2 // [kind][pageNo u32][image]
	pgRecCommit = 3
)

// Open creates a database, or — when a pgdata file already exists —
// recovers it: committed WAL records (full-page images and tuple deltas)
// are replayed in order onto the heap, then a checkpoint truncates the
// log. With Mode FPWOff a torn page cannot be repaired, which is exactly
// the unsafety the paper's experiment quantifies; FPWOn restores the page
// from its image, and FPWShare never tears (checkpoint propagation is an
// atomic remap).
func Open(t *sim.Task, fs *fsim.FS, logDev *ssd.Device, cfg Config) (*DB, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = fs.Device().PageSize()
	}
	if cfg.PageSize%fs.Device().PageSize() != 0 {
		return nil, fmt.Errorf("pgmini: page size %d not a device page multiple", cfg.PageSize)
	}
	if cfg.PoolBytes == 0 {
		cfg.PoolBytes = int64(cfg.PageSize) * 128
	}
	if cfg.LogPages == 0 {
		cfg.LogPages = 8192
	}
	if int(cfg.LogPages) > logDev.Capacity() {
		cfg.LogPages = uint32(logDev.Capacity())
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 2000
	}
	db := &DB{
		fs: fs, logDev: logDev, cfg: cfg,
		loggedSinceCkpt: make(map[uint32]bool),
		txnPages:        make(map[uint32]bool),
		protected:       make(map[uint32]int),
	}
	db.perPage = (cfg.PageSize - pageHdrSize) / tupleSize
	db.branches = branchesPerScale * cfg.Scale
	db.tellers = tellersPerScale * cfg.Scale
	db.accounts = accountsPerScale * cfg.Scale
	db.pagesFor = func(rows int) int { return (rows + db.perPage - 1) / db.perPage }

	db.branchesAt = 0
	db.tellersAt = db.branchesAt + uint32(db.pagesFor(db.branches))
	db.accountsAt = db.tellersAt + uint32(db.pagesFor(db.tellers))
	db.historyAt = db.accountsAt + uint32(db.pagesFor(db.accounts))

	existing := fs.Exists("pgdata")
	var file *fsim.File
	var err error
	if existing {
		if file, err = fs.Open(t, "pgdata"); err != nil {
			return nil, err
		}
	} else {
		if file, err = fs.Create(t, "pgdata"); err != nil {
			return nil, err
		}
	}
	db.file = file
	totalPages := int64(db.historyAt) + int64(db.pagesFor(db.accounts)) // history grows; preallocate some
	if err := file.Allocate(t, 0, totalPages*int64(cfg.PageSize)); err != nil {
		return nil, err
	}
	if cfg.Mode == FPWShare {
		if fs.Exists("pgdata.stage") {
			db.scratch, err = fs.Open(t, "pgdata.stage")
		} else {
			db.scratch, err = fs.Create(t, "pgdata.stage")
		}
		if err != nil {
			return nil, err
		}
		if err := db.scratch.Allocate(t, 0, int64(cfg.PageSize)*64); err != nil {
			return nil, err
		}
	}
	log, err := wal.New(logDev, 0, cfg.LogPages)
	if err != nil {
		return nil, err
	}
	db.log = log
	if cfg.StreamHints {
		if fs.Device().Streams() > 1 {
			db.file.SetStream(0) // heap pages: overwritten in place, zipfian-hot
			if db.scratch != nil {
				db.scratch.SetStream(1) // staging slots: dead after every checkpoint
			}
		}
		if logDev.Streams() > 0 {
			db.log.SetStream(0)
		}
	}
	pool, err := bufpool.New(file, cfg.PageSize, int(cfg.PoolBytes/int64(cfg.PageSize)), &pgFlusher{db: db})
	if err != nil {
		return nil, err
	}
	pool.Protected = func(pageNo uint32) bool {
		if db.applying && db.txnPages[pageNo] {
			return true
		}
		db.protMu.Lock()
		defer db.protMu.Unlock()
		return db.protected[pageNo] > 0
	}
	pool.OnDirty = func(pageNo uint32) {
		if db.applying {
			db.txnPages[pageNo] = true
		}
	}
	db.pool = pool
	if existing {
		if err := db.recover(t); err != nil {
			return nil, err
		}
	} else if err := db.initData(t); err != nil {
		return nil, err
	}
	return db, nil
}

// recover replays committed WAL records onto the heap, recounts the
// history rows, and checkpoints.
func (db *DB) recover(t *sim.Task) error {
	recs, err := db.log.ReadAll(t)
	if err != nil {
		return err
	}
	ps := int64(db.cfg.PageSize)
	// Records are grouped per transaction, terminated by a commit marker;
	// an incomplete trailing group is discarded.
	var pending [][]byte
	buf := make([]byte, db.cfg.PageSize)
	apply := func(rec []byte) error {
		switch rec[0] {
		case pgRecImage:
			pageNo := binary.LittleEndian.Uint32(rec[1:])
			if _, err := db.file.WriteAt(t, rec[5:5+db.cfg.PageSize], ps*int64(pageNo)); err != nil {
				return err
			}
		case pgRecDelta:
			pageNo := binary.LittleEndian.Uint32(rec[1:])
			off := int(binary.LittleEndian.Uint16(rec[5:]))
			n := int(binary.LittleEndian.Uint16(rec[7:]))
			if _, err := db.file.ReadAt(t, buf, ps*int64(pageNo)); err != nil {
				return err
			}
			copy(buf[off:off+n], rec[9:9+n])
			if _, err := db.file.WriteAt(t, buf, ps*int64(pageNo)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, rec := range recs {
		if len(rec) == 0 {
			continue
		}
		if rec[0] == pgRecCommit {
			for _, r := range pending {
				if err := apply(r); err != nil {
					return err
				}
			}
			pending = pending[:0]
			continue
		}
		pending = append(pending, rec)
	}
	if err := db.file.Sync(t); err != nil {
		return err
	}
	// Recount history rows: they were appended densely, and every live row
	// carries a nonzero random payload.
	db.historyRows = 0
scan:
	for p := db.historyAt; ; p++ {
		if ps*int64(p) >= db.file.Size() {
			break
		}
		if _, err := db.file.ReadAt(t, buf, ps*int64(p)); err != nil {
			break
		}
		for s := 0; s < db.perPage; s++ {
			off := pageHdrSize + s*tupleSize
			if binary.LittleEndian.Uint64(buf[off:]) == 0 {
				break scan
			}
			db.historyRows++
		}
	}
	return db.Checkpoint(t)
}

// initData zero-initializes balances (pages are already zero) and
// checkpoints so the measured run starts clean.
func (db *DB) initData(t *sim.Task) error {
	// Touch every table page so it exists on storage with a valid layout.
	last := db.historyAt
	for p := uint32(0); p < last; p++ {
		f, err := db.pool.Get(t, p)
		if err != nil {
			return err
		}
		f.MarkDirty()
		f.Release()
		// Flush incrementally to keep the pool small.
		if db.pool.DirtyCount() >= db.pool.Capacity()/2 {
			if err := db.pool.FlushAll(t); err != nil {
				return err
			}
		}
	}
	return db.Checkpoint(t)
}

// pgFlusher writes dirty pages in place; in SHARE mode each batch is
// staged in the scratch area and remapped, making page propagation atomic
// without any full-page WAL images.
type pgFlusher struct{ db *DB }

func (fl *pgFlusher) FlushBatch(t *sim.Task, pages []bufpool.PageImage) error {
	db := fl.db
	ps := int64(db.cfg.PageSize)
	atomic.AddInt64(&db.st.DataPagesFlushed, int64(len(pages)))
	if db.cfg.Mode == FPWShare {
		var pairs []ssd.Pair
		for i, pg := range pages {
			slot := int64(i % 64)
			if i > 0 && slot == 0 {
				// Stage area full: push this chunk first.
				if err := db.scratch.Sync(t); err != nil {
					return err
				}
				if err := core.ShareAll(t, db.fs.Device(), pairs); err != nil {
					return err
				}
				pairs = nil
			}
			if _, err := db.scratch.WriteAt(t, pg.Data, slot*ps); err != nil {
				return err
			}
			dst, err := db.file.MapRange(int64(pg.PageNo)*ps, ps)
			if err != nil {
				return err
			}
			src, err := db.scratch.MapRange(slot*ps, ps)
			if err != nil {
				return err
			}
			for j := range dst {
				pairs = append(pairs, ssd.Pair{Dst: dst[j].Start, Src: src[j].Start, Len: dst[j].Len})
			}
		}
		if err := db.scratch.Sync(t); err != nil {
			return err
		}
		return core.ShareAll(t, db.fs.Device(), pairs)
	}
	for _, pg := range pages {
		if _, err := db.file.WriteAt(t, pg.Data, int64(pg.PageNo)*ps); err != nil {
			return err
		}
	}
	return db.file.Sync(t)
}

// Checkpoint flushes dirty pages, truncates the WAL and resets the FPW
// first-touch set. Data flushing is charged to the dataTask (the
// background checkpointer when one is set); the WAL truncate runs on
// walTask so the log device's queue stays aligned with the backends.
// After degradation it refuses: truncating the WAL while dirty pages
// cannot reach the heap would lose committed transactions.
func (db *DB) Checkpoint(t *sim.Task) error {
	db.mu.Lock(t)
	defer db.mu.Unlock(t)
	if db.degraded.Load() {
		return ErrReadOnly
	}
	return db.noteDeviceErr(db.checkpoint(t, t))
}

// noteDeviceErr translates a device-level read-only failure into the
// typed engine error, latching the degraded state on first sight.
func (db *DB) noteDeviceErr(err error) error {
	if err == nil || !errors.Is(err, ftl.ErrReadOnly) {
		return err
	}
	if db.degraded.CompareAndSwap(false, true) {
		atomic.AddInt64(&db.st.ReadOnlyTransitions, 1)
	}
	return ErrReadOnly
}

// Degraded reports whether the database has switched to read-only serving.
func (db *DB) Degraded() bool { return db.degraded.Load() }

// checkpoint runs with db.mu held. It first drains in-flight group
// commits: their WAL records must be durable before the ring is
// truncated underneath them. The drain cannot deadlock — every unsynced
// commit released db.mu before joining groupSync, and holding db.mu here
// stops new commits from appending, so gcUnsynced only falls.
func (db *DB) checkpoint(dataTask, walTask *sim.Task) error {
	db.gcMu.Lock(walTask)
	for db.gcUnsynced > 0 {
		db.gcDrain.Wait(walTask, &db.gcMu)
	}
	db.gcMu.Unlock(walTask)
	if err := db.pool.FlushAll(dataTask); err != nil {
		return err
	}
	if err := db.fs.SyncMeta(dataTask); err != nil {
		return err
	}
	if err := db.log.Truncate(walTask); err != nil {
		return err
	}
	db.loggedSinceCkpt = make(map[uint32]bool)
	db.txnsSinceCkpt = 0
	atomic.AddInt64(&db.st.Checkpoints, 1)
	return nil
}

// protect pins pages against stealing until unprotect (refcounted).
func (db *DB) protect(pages []uint32) {
	db.protMu.Lock()
	for _, p := range pages {
		db.protected[p]++
	}
	db.protMu.Unlock()
}

// unprotect drops the pins taken by protect.
func (db *DB) unprotect(pages []uint32) {
	db.protMu.Lock()
	for _, p := range pages {
		if db.protected[p]--; db.protected[p] <= 0 {
			delete(db.protected, p)
		}
	}
	db.protMu.Unlock()
}

// groupSync makes the WAL record at myLSN durable, coalescing with
// concurrent commits (leader/follower rendezvous — see the innodb
// engine's groupSync for the protocol discussion).
func (db *DB) groupSync(t *sim.Task, myLSN int64) error {
	db.gcMu.Lock(t)
	grouped := false
	var err error
	for err == nil && db.gcDurable <= myLSN {
		if db.gcSyncing {
			grouped = true
			gen := db.gcGen
			db.gcCond.Wait(t, &db.gcMu)
			if db.gcGen != gen && db.gcErr != nil && db.gcDurable <= myLSN {
				err = db.gcErr
			}
			continue
		}
		db.gcSyncing = true
		db.gcMu.Unlock(t)
		serr := db.log.Sync(t)
		durable := db.log.DurableLSN()
		db.gcMu.Lock(t)
		db.gcSyncing = false
		db.gcGen++
		db.gcErr = serr
		if serr == nil {
			if durable > db.gcDurable {
				db.gcDurable = durable
			}
			atomic.AddInt64(&db.st.GroupCommits, 1)
		} else {
			err = serr
		}
		db.gcCond.Broadcast(t)
	}
	if grouped && err == nil {
		atomic.AddInt64(&db.st.GroupedTxns, 1)
	}
	db.gcUnsynced--
	if db.gcUnsynced == 0 {
		db.gcDrain.Broadcast(t)
	}
	db.gcMu.Unlock(t)
	return err
}

// updateTuple adds delta to the 8-byte balance of row in the table whose
// pages start at base, WAL-logging the change (and a full page image on
// first touch when FPW is on).
func (db *DB) updateTuple(t *sim.Task, base uint32, row int, delta int64) error {
	pageNo := base + uint32(row/db.perPage)
	off := pageHdrSize + (row%db.perPage)*tupleSize
	f, err := db.pool.Get(t, pageNo)
	if err != nil {
		return err
	}
	cur := int64(binary.LittleEndian.Uint64(f.Data[off:]))
	binary.LittleEndian.PutUint64(f.Data[off:], uint64(cur+delta))
	f.MarkDirty()

	if db.cfg.Mode == FPWOn && !db.loggedSinceCkpt[pageNo] {
		rec := make([]byte, 5+db.cfg.PageSize)
		rec[0] = pgRecImage
		binary.LittleEndian.PutUint32(rec[1:], pageNo)
		copy(rec[5:], f.Data)
		if _, err := db.log.Append(t, rec); err != nil {
			f.Release()
			return err
		}
		db.loggedSinceCkpt[pageNo] = true
		atomic.AddInt64(&db.st.FullImages, 1)
		atomic.AddInt64(&db.st.WALRecords, 1)
	}
	f.Release()

	rec := make([]byte, 1+4+2+2+8)
	rec[0] = pgRecDelta
	binary.LittleEndian.PutUint32(rec[1:], pageNo)
	binary.LittleEndian.PutUint16(rec[5:], uint16(off))
	binary.LittleEndian.PutUint16(rec[7:], 8)
	binary.LittleEndian.PutUint64(rec[9:], uint64(cur+delta))
	if _, err := db.log.Append(t, rec); err != nil {
		return err
	}
	atomic.AddInt64(&db.st.WALRecords, 1)
	return nil
}

// readBalance returns the balance of an account row.
func (db *DB) readBalance(t *sim.Task, base uint32, row int) (int64, error) {
	pageNo := base + uint32(row/db.perPage)
	off := pageHdrSize + (row%db.perPage)*tupleSize
	f, err := db.pool.Get(t, pageNo)
	if err != nil {
		return 0, err
	}
	v := int64(binary.LittleEndian.Uint64(f.Data[off:]))
	f.Release()
	return v, nil
}

// insertHistory appends a history row holding the nonzero value v.
func (db *DB) insertHistory(t *sim.Task, v uint64) error {
	row := db.historyRows
	db.historyRows++
	pageNo := db.historyAt + uint32(row/db.perPage)
	off := pageHdrSize + (row%db.perPage)*tupleSize
	var f *bufpool.Frame
	var err error
	if row%db.perPage == 0 {
		// First touch of a fresh heap page: no read needed.
		f, err = db.pool.GetFresh(t, pageNo)
	} else {
		f, err = db.pool.Get(t, pageNo)
	}
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(f.Data[off:], v)
	f.MarkDirty()
	if db.cfg.Mode == FPWOn && !db.loggedSinceCkpt[pageNo] {
		rec := make([]byte, 5+db.cfg.PageSize)
		rec[0] = pgRecImage
		binary.LittleEndian.PutUint32(rec[1:], pageNo)
		copy(rec[5:], f.Data)
		if _, err := db.log.Append(t, rec); err != nil {
			f.Release()
			return err
		}
		db.loggedSinceCkpt[pageNo] = true
		atomic.AddInt64(&db.st.FullImages, 1)
		atomic.AddInt64(&db.st.WALRecords, 1)
	}
	f.Release()
	rec := make([]byte, 17)
	rec[0] = pgRecDelta
	binary.LittleEndian.PutUint32(rec[1:], pageNo)
	binary.LittleEndian.PutUint16(rec[5:], uint16(off))
	binary.LittleEndian.PutUint16(rec[7:], 8)
	binary.LittleEndian.PutUint64(rec[9:], v)
	if _, err := db.log.Append(t, rec); err != nil {
		return err
	}
	atomic.AddInt64(&db.st.WALRecords, 1)
	return nil
}

// TxnParams fully determines one TPC-B transaction, so a harness driving
// Txn directly can model the expected post-state (the crashcheck
// durability oracle does exactly that).
type TxnParams struct {
	Account, Teller, Branch int
	Delta                   int64
	HistoryVal              uint64 // must be nonzero
}

// RunTxn executes one pgbench TPC-B transaction: update an account, its
// teller and branch, insert a history row, read the account balance, and
// commit (fsync the WAL).
func (db *DB) RunTxn(t *sim.Task, rng *rand.Rand) error {
	p := TxnParams{
		Account:    rng.Intn(db.accounts),
		Teller:     rng.Intn(db.tellers),
		Branch:     rng.Intn(db.branches),
		Delta:      int64(rng.Intn(10000) - 5000),
		HistoryVal: uint64(rng.Int63()) | 1,
	}
	return db.Txn(t, p)
}

// Txn executes one TPC-B transaction with explicit parameters. The apply
// phase (heap updates + WAL appends) runs under the database latch; the
// WAL fsync happens in the group-commit rendezvous with the latch
// released, so concurrent sessions share one flush.
func (db *DB) Txn(t *sim.Task, p TxnParams) error {
	if db.degraded.Load() {
		return ErrReadOnly
	}
	return db.noteDeviceErr(db.runTxn(t, p))
}

func (db *DB) runTxn(t *sim.Task, p TxnParams) error {
	db.mu.Lock(t)
	db.applying = true
	db.txnPages = make(map[uint32]bool)
	fail := func(err error) error {
		db.applying = false
		db.mu.Unlock(t)
		return err
	}
	if err := db.updateTuple(t, db.accountsAt, p.Account, p.Delta); err != nil {
		return fail(err)
	}
	if _, err := db.readBalance(t, db.accountsAt, p.Account); err != nil {
		return fail(err)
	}
	if err := db.updateTuple(t, db.tellersAt, p.Teller, p.Delta); err != nil {
		return fail(err)
	}
	if err := db.updateTuple(t, db.branchesAt, p.Branch, p.Delta); err != nil {
		return fail(err)
	}
	if err := db.insertHistory(t, p.HistoryVal|1); err != nil {
		return fail(err)
	}
	myLSN, err := db.log.Append(t, []byte{pgRecCommit})
	if err != nil {
		return fail(err)
	}

	// Hand the dirtied pages to the refcounted pin set (it outlives the
	// latch), register with the drain counter, and release the latch so
	// the next session applies while we sync.
	dirtied := make([]uint32, 0, len(db.txnPages))
	for pageNo := range db.txnPages {
		dirtied = append(dirtied, pageNo)
	}
	db.protect(dirtied)
	db.applying = false
	db.txnPages = make(map[uint32]bool)
	db.gcMu.Lock(t)
	db.gcUnsynced++
	db.gcMu.Unlock(t)
	db.mu.Unlock(t)

	err = db.groupSync(t, myLSN)
	db.unprotect(dirtied)
	if err != nil {
		return err
	}
	atomic.AddInt64(&db.st.Commits, 1)

	// Checkpoint / background-writer decisions need the latch back.
	db.mu.Lock(t)
	defer db.mu.Unlock(t)
	db.txnsSinceCkpt++
	bg := t
	if db.Background != nil {
		db.Background.AdvanceTo(t.Now())
		bg = db.Background
	}
	if db.txnsSinceCkpt >= db.cfg.CheckpointEvery || db.log.Remaining() < 128 {
		return db.checkpoint(bg, t)
	}
	// Background-writer stand-in: keep the dirty ratio bounded.
	if db.pool.DirtyCount() > db.pool.Capacity()*3/4 {
		return db.pool.FlushSome(bg, 16)
	}
	return nil
}

// Stats returns engine counters; WALPages reflects the log device.
// Counters are maintained with atomics, so the snapshot is safe to take
// while sessions run.
func (db *DB) Stats() Stats {
	var s Stats
	s.Commits = atomic.LoadInt64(&db.st.Commits)
	s.WALRecords = atomic.LoadInt64(&db.st.WALRecords)
	s.FullImages = atomic.LoadInt64(&db.st.FullImages)
	s.Checkpoints = atomic.LoadInt64(&db.st.Checkpoints)
	s.DataPagesFlushed = atomic.LoadInt64(&db.st.DataPagesFlushed)
	s.GroupCommits = atomic.LoadInt64(&db.st.GroupCommits)
	s.GroupedTxns = atomic.LoadInt64(&db.st.GroupedTxns)
	s.ReadOnlyTransitions = atomic.LoadInt64(&db.st.ReadOnlyTransitions)
	s.WALPages = db.log.PagesWritten()
	s.WALReadTruncations = db.log.ReadTruncations()
	s.Degraded = db.degraded.Load()
	return s
}

// WALBytes returns total WAL payload bytes appended.
func (db *DB) WALBytes() int64 { return db.log.BytesAppended() }

// LogDevice returns the WAL device (tests reopen against it).
func (db *DB) LogDevice() *ssd.Device { return db.logDev }

// Accounts returns the number of account rows.
func (db *DB) Accounts() int { return db.accounts }

// Balance exposes an account balance for tests and servers. It takes the
// database latch: the buffer pool is not safe for unlatched access.
func (db *DB) Balance(t *sim.Task, row int) (int64, error) {
	db.mu.Lock(t)
	defer db.mu.Unlock(t)
	return db.readBalance(t, db.accountsAt, row)
}

// Tellers returns the number of teller rows.
func (db *DB) Tellers() int { return db.tellers }

// Branches returns the number of branch rows.
func (db *DB) Branches() int { return db.branches }

// TellerBalance exposes a teller balance for tests.
func (db *DB) TellerBalance(t *sim.Task, row int) (int64, error) {
	db.mu.Lock(t)
	defer db.mu.Unlock(t)
	return db.readBalance(t, db.tellersAt, row)
}

// BranchBalance exposes a branch balance for tests.
func (db *DB) BranchBalance(t *sim.Task, row int) (int64, error) {
	db.mu.Lock(t)
	defer db.mu.Unlock(t)
	return db.readBalance(t, db.branchesAt, row)
}
