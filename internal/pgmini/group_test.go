package pgmini

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"share/internal/fsim"
	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

func groupRig(t *testing.T, mode Mode) (*DB, *ssd.Device) {
	t.Helper()
	cfg := ssd.DefaultConfig(512)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	data, err := ssd.New("data", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("setup")
	fs, err := fsim.Format(task, data, 32)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := ssd.DefaultConfig(256)
	lcfg.Geometry.PageSize = 512
	lcfg.Geometry.PagesPerBlock = 32
	lcfg.Timing = nand.Timing{
		ReadPage: 20 * sim.Microsecond,
		Program:  50 * sim.Microsecond,
		Erase:    500 * sim.Microsecond,
		Transfer: 5 * sim.Microsecond,
	}
	lcfg.FTL.PowerCapacitor = true
	logDev, err := ssd.New("log", lcfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(task, fs, logDev, Config{Scale: 1, Mode: mode, CheckpointEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	return db, data
}

// TestPgGroupCommitCoalesces drives concurrent scheduler backends through
// TPC-B transactions and checks that WAL syncs coalesced and the final
// balance invariant holds: sum(branches) == sum(tellers) == sum(accounts).
func TestPgGroupCommitCoalesces(t *testing.T) {
	db, _ := groupRig(t, FPWOn)

	const backends = 6
	const txnsPer = 25
	sched := sim.NewScheduler()
	var failMu sync.Mutex
	var failErr error
	for b := 0; b < backends; b++ {
		b := b
		sched.Go(fmt.Sprintf("backend%d", b), func(task *sim.Task) {
			rng := rand.New(rand.NewSource(int64(1000 + b)))
			for i := 0; i < txnsPer; i++ {
				if err := db.RunTxn(task, rng); err != nil {
					failMu.Lock()
					failErr = err
					failMu.Unlock()
					return
				}
			}
		})
	}
	sched.Run()
	if failErr != nil {
		t.Fatal(failErr)
	}

	st := db.Stats()
	if st.Commits != backends*txnsPer {
		t.Fatalf("Commits = %d, want %d", st.Commits, backends*txnsPer)
	}
	if st.GroupCommits >= st.Commits {
		t.Fatalf("GroupCommits = %d not < Commits = %d: no coalescing", st.GroupCommits, st.Commits)
	}
	if st.GroupedTxns == 0 {
		t.Fatal("GroupedTxns = 0: no transaction rode another backend's sync")
	}
	t.Logf("commits=%d leader-syncs=%d grouped=%d", st.Commits, st.GroupCommits, st.GroupedTxns)

	// TPC-B invariant: every delta hits one account, one teller and one
	// branch, so the three table sums must agree.
	task := sim.NewSoloTask("check")
	var accSum, telSum, brSum int64
	for i := 0; i < db.Accounts(); i++ {
		v, err := db.Balance(task, i)
		if err != nil {
			t.Fatal(err)
		}
		accSum += v
	}
	for i := 0; i < db.Tellers(); i++ {
		v, err := db.TellerBalance(task, i)
		if err != nil {
			t.Fatal(err)
		}
		telSum += v
	}
	for i := 0; i < db.Branches(); i++ {
		v, err := db.BranchBalance(task, i)
		if err != nil {
			t.Fatal(err)
		}
		brSum += v
	}
	if accSum != telSum || telSum != brSum {
		t.Fatalf("balance invariant broken: accounts=%d tellers=%d branches=%d", accSum, telSum, brSum)
	}
}
