package pgmini

import (
	"errors"
	"math/rand"
	"testing"

	"share/internal/fsim"
	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

func testDB(t *testing.T, mode Mode) (*DB, *sim.Task) {
	t.Helper()
	cfg := ssd.DefaultConfig(512)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	dev, err := ssd.New("pg", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	fs, err := fsim.Format(task, dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := ssd.DefaultConfig(256)
	lcfg.Geometry.PageSize = 512
	lcfg.Geometry.PagesPerBlock = 32
	lcfg.Timing = nand.Timing{
		ReadPage: 20 * sim.Microsecond, Program: 50 * sim.Microsecond,
		Erase: 500 * sim.Microsecond, Transfer: 5 * sim.Microsecond,
	}
	lcfg.FTL.PowerCapacitor = true
	logDev, err := ssd.New("pglog", lcfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(task, fs, logDev, Config{
		Scale: 1, Mode: mode, PageSize: 512, PoolBytes: 64 * 1024,
		CheckpointEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, task
}

func TestTxnUpdatesBalances(t *testing.T) {
	db, task := testDB(t, FPWOn)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if err := db.RunTxn(task, rng); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	st := db.Stats()
	if st.Commits != 50 {
		t.Fatalf("commits = %d", st.Commits)
	}
	// Balances changed: at least one account is nonzero.
	rng2 := rand.New(rand.NewSource(1))
	aid := rng2.Intn(db.Accounts())
	v, err := db.Balance(task, aid)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 {
		t.Log("first touched account balance is zero (possible but unlikely)")
	}
}

func TestFPWLogsImagesOnFirstTouchOnly(t *testing.T) {
	db, task := testDB(t, FPWOn)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if err := db.RunTxn(task, rng); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.FullImages == 0 {
		t.Fatal("FPW on logged no images")
	}
	// Far fewer images than updates: hot pages are logged once per ckpt.
	if st.FullImages >= st.WALRecords/2 {
		t.Fatalf("images %d vs records %d: first-touch not working", st.FullImages, st.WALRecords)
	}
}

func TestFPWOffWritesLessWAL(t *testing.T) {
	run := func(mode Mode) int64 {
		db, task := testDB(t, mode)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 300; i++ {
			if err := db.RunTxn(task, rng); err != nil {
				t.Fatal(err)
			}
		}
		return db.WALBytes()
	}
	on := run(FPWOn)
	off := run(FPWOff)
	if off >= on {
		t.Fatalf("FPW off WAL bytes %d >= on %d", off, on)
	}
	if float64(on) < 2*float64(off) {
		t.Fatalf("FPW on should write >2x the WAL: on=%d off=%d", on, off)
	}
}

func TestFPWOffIsFaster(t *testing.T) {
	run := func(mode Mode) int64 {
		db, task := testDB(t, mode)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 300; i++ {
			if err := db.RunTxn(task, rng); err != nil {
				t.Fatal(err)
			}
		}
		return task.Now()
	}
	on := run(FPWOn)
	off := run(FPWOff)
	if off >= on {
		t.Fatalf("FPW off took %d, on took %d; off should be faster", off, on)
	}
}

func TestShareModeRuns(t *testing.T) {
	db, task := testDB(t, FPWShare)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 600; i++ { // crosses a checkpoint
		if err := db.RunTxn(task, rng); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	st := db.Stats()
	if st.FullImages != 0 {
		t.Fatalf("SHARE mode logged %d full images", st.FullImages)
	}
	if st.Checkpoints < 2 {
		t.Fatalf("checkpoints = %d", st.Checkpoints)
	}
}

func TestBalanceConservation(t *testing.T) {
	// Every txn adds delta to exactly one account/teller/branch; the sum
	// of all branch balances must equal the sum of account balances.
	db, task := testDB(t, FPWOff)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		if err := db.RunTxn(task, rng); err != nil {
			t.Fatal(err)
		}
	}
	var accSum, brSum int64
	for i := 0; i < db.accounts; i++ {
		v, err := db.readBalance(task, db.accountsAt, i)
		if err != nil {
			t.Fatal(err)
		}
		accSum += v
	}
	for i := 0; i < db.branches; i++ {
		v, err := db.readBalance(task, db.branchesAt, i)
		if err != nil {
			t.Fatal(err)
		}
		brSum += v
	}
	if accSum != brSum {
		t.Fatalf("conservation violated: accounts %d, branches %d", accSum, brSum)
	}
}

func reopenPg(t *testing.T, db *DB, mode Mode) (*DB, *sim.Task) {
	t.Helper()
	dev := db.fs.Device()
	task := sim.NewSoloTask("reopen")
	dev.Crash()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	fs2, err := fsim.Mount(task, dev)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(task, fs2, db.LogDevice(), db.cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db2, task
}

func TestRecoveryPreservesConservation(t *testing.T) {
	for _, mode := range []Mode{FPWOn, FPWShare} {
		t.Run(mode.String(), func(t *testing.T) {
			db, task := testDB(t, mode)
			rng := rand.New(rand.NewSource(31))
			for i := 0; i < 150; i++ {
				if err := db.RunTxn(task, rng); err != nil {
					t.Fatal(err)
				}
			}
			db2, task2 := reopenPg(t, db, mode)
			var accSum, brSum int64
			for i := 0; i < db2.accounts; i++ {
				v, err := db2.readBalance(task2, db2.accountsAt, i)
				if err != nil {
					t.Fatal(err)
				}
				accSum += v
			}
			for i := 0; i < db2.branches; i++ {
				v, err := db2.readBalance(task2, db2.branchesAt, i)
				if err != nil {
					t.Fatal(err)
				}
				brSum += v
			}
			if accSum != brSum {
				t.Fatalf("conservation violated after crash: accounts %d, branches %d", accSum, brSum)
			}
			// The database keeps working after recovery.
			for i := 0; i < 20; i++ {
				if err := db2.RunTxn(task2, rng); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestWALReadFaultTruncatesReplay injects an unrecoverable read fault on
// a WAL page and checks the satellite contract: replay stops at the first
// unreadable record (no panic, no error), the truncation is visible in
// Stats, and the replayed prefix is still transactionally consistent.
func TestWALReadFaultTruncatesReplay(t *testing.T) {
	db, task := testDB(t, FPWOn)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 40; i++ {
		if err := db.RunTxn(task, rng); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(task); err != nil {
		t.Fatal(err)
	}
	// Work past the checkpoint, little enough that no background flush
	// runs: the heap holds exactly the checkpoint state and these
	// transactions live only in the WAL.
	for i := 0; i < 25; i++ {
		if err := db.RunTxn(task, rng); err != nil {
			t.Fatal(err)
		}
	}
	before := db.historyRows
	// Three consecutive scheduled faults on the log chip defeat the FTL's
	// read-retry budget, making one early WAL page unrecoverable.
	plan := nand.NewFaultPlan(99)
	for a := int64(4); a <= 6; a++ {
		plan.AtRead(a, nand.FaultReadUncorrectable)
	}
	if err := db.LogDevice().SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	db2, task2 := reopenPg(t, db, FPWOn)
	if err := db2.LogDevice().SetFaultPlan(nil); err != nil {
		t.Fatal(err)
	}
	st := db2.Stats()
	if st.WALReadTruncations == 0 {
		t.Fatal("WAL read truncation not reported in stats")
	}
	if db2.historyRows >= before {
		t.Fatalf("historyRows = %d, want < %d: replay was not truncated", db2.historyRows, before)
	}
	if db2.historyRows < 40 {
		t.Fatalf("historyRows = %d, want >= 40: checkpointed transactions lost", db2.historyRows)
	}
	// The surviving prefix is whole transactions: conservation holds.
	var accSum, telSum, brSum int64
	for i := 0; i < db2.accounts; i++ {
		v, err := db2.readBalance(task2, db2.accountsAt, i)
		if err != nil {
			t.Fatal(err)
		}
		accSum += v
	}
	for i := 0; i < db2.tellers; i++ {
		v, err := db2.readBalance(task2, db2.tellersAt, i)
		if err != nil {
			t.Fatal(err)
		}
		telSum += v
	}
	for i := 0; i < db2.branches; i++ {
		v, err := db2.readBalance(task2, db2.branchesAt, i)
		if err != nil {
			t.Fatal(err)
		}
		brSum += v
	}
	if accSum != brSum || accSum != telSum {
		t.Fatalf("conservation violated after truncated replay: acc=%d tel=%d br=%d", accSum, telSum, brSum)
	}
	// The database keeps working after the lossy recovery.
	for i := 0; i < 10; i++ {
		if err := db2.RunTxn(task2, rng); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPgReadOnlyDegradation exhausts the data device's spare blocks and
// checks graceful degradation: transactions fail fast with ErrReadOnly,
// balance reads keep serving, and the transition shows up in Stats.
func TestPgReadOnlyDegradation(t *testing.T) {
	cfg := ssd.DefaultConfig(512)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 32
	cfg.FTL.SpareBlocks = 1
	dev, err := ssd.New("pg", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	fs, err := fsim.Format(task, dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := ssd.DefaultConfig(256)
	lcfg.Geometry.PageSize = 512
	lcfg.Geometry.PagesPerBlock = 32
	lcfg.FTL.PowerCapacitor = true
	logDev, err := ssd.New("pglog", lcfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(task, fs, logDev, Config{
		Scale: 1, Mode: FPWOff, PageSize: 512, PoolBytes: 64 * 1024,
		CheckpointEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30; i++ {
		if err := db.RunTxn(task, rng); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(task); err != nil {
		t.Fatal(err)
	}
	wantBalance := make([]int64, db.accounts)
	for i := range wantBalance {
		v, err := db.readBalance(task, db.accountsAt, i)
		if err != nil {
			t.Fatal(err)
		}
		wantBalance[i] = v
	}
	// Exhaust the single spare block. Redirtying an unchanged page keeps
	// the balances stable while forcing data-device programs, so each
	// round's permanent fault retires one more block.
	for round := 0; !dev.ReadOnly() && round < 10; round++ {
		if err := dev.SetFaultPlan(nand.NewFaultPlan(int64(round+1)).AtProgram(1, nand.FaultProgramPermanent)); err != nil {
			t.Fatal(err)
		}
		f, err := db.pool.Get(task, uint32(round%4))
		if err != nil {
			t.Fatal(err)
		}
		f.MarkDirty()
		f.Release()
		_ = db.Checkpoint(task)
	}
	if err := dev.SetFaultPlan(nil); err != nil {
		t.Fatal(err)
	}
	if !dev.ReadOnly() {
		t.Fatal("data device did not degrade to read-only")
	}
	if err := db.Checkpoint(task); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Checkpoint error = %v, want ErrReadOnly", err)
	}
	if err := db.RunTxn(task, rng); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("RunTxn error = %v, want ErrReadOnly", err)
	}
	st := db.Stats()
	if !st.Degraded || st.ReadOnlyTransitions != 1 {
		t.Fatalf("stats: Degraded=%v ReadOnlyTransitions=%d", st.Degraded, st.ReadOnlyTransitions)
	}
	if !db.Degraded() {
		t.Fatal("Degraded() = false after transition")
	}
	// Reads keep serving the state durable before degradation.
	for i := range wantBalance {
		v, err := db.Balance(task, i)
		if err != nil {
			t.Fatal(err)
		}
		if v != wantBalance[i] {
			t.Fatalf("account %d = %d in read-only mode, want %d", i, v, wantBalance[i])
		}
	}
}

func TestRecoveryReplaysCommittedDeltas(t *testing.T) {
	db, task := testDB(t, FPWOn)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 60; i++ {
		if err := db.RunTxn(task, rng); err != nil {
			t.Fatal(err)
		}
	}
	// Record every account balance (from the pool: the newest state).
	want := make([]int64, db.accounts)
	for i := range want {
		v, err := db.readBalance(task, db.accountsAt, i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	db2, task2 := reopenPg(t, db, FPWOn)
	for i := range want {
		v, err := db2.readBalance(task2, db2.accountsAt, i)
		if err != nil {
			t.Fatal(err)
		}
		if v != want[i] {
			t.Fatalf("account %d = %d after crash, want %d", i, v, want[i])
		}
	}
	if db2.historyRows == 0 {
		t.Fatal("history rows not recovered")
	}
}
