package ssd

import (
	"testing"

	"share/internal/nand"
	"share/internal/sim"
)

// parallelConfig returns a small multi-die device configuration.
func parallelConfig(channels, diesPerChannel int) Config {
	cfg := Config{
		Geometry: nand.Geometry{
			PageSize: 512, PagesPerBlock: 8, Blocks: 64,
			Channels: channels, DiesPerChannel: diesPerChannel,
		},
		Timing: nand.DefaultTiming(),
		FTL:    DefaultConfig(64).FTL,
	}
	return cfg
}

// runParallelWrites drives clients concurrent writers, each issuing
// writesPer sequential distinct-LPN writes, and returns the virtual-time
// makespan.
func runParallelWrites(t *testing.T, d *Device, clients, writesPer int) int64 {
	t.Helper()
	sched := sim.NewScheduler()
	for c := 0; c < clients; c++ {
		c := c
		sched.Go("client", func(task *sim.Task) {
			page := make([]byte, d.PageSize())
			for i := 0; i < writesPer; i++ {
				lpn := uint32(c*writesPer + i)
				if err := d.WritePage(task, lpn, page); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	return sched.Run()
}

// TestDieOverlapSpeedup is the core scheduling property of the multi-die
// device: with four channels the same concurrent workload must finish at
// least twice as fast as on one channel, because programs on different
// dies overlap instead of serializing through a lump-sum queue.
func TestDieOverlapSpeedup(t *testing.T) {
	mk := func(channels int) *Device {
		d, err := New("par", parallelConfig(channels, 1))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	one := runParallelWrites(t, mk(1), 8, 50)
	four := runParallelWrites(t, mk(4), 8, 50)
	if one <= 0 || four <= 0 {
		t.Fatalf("degenerate makespans: 1ch=%d 4ch=%d", one, four)
	}
	if ratio := float64(one) / float64(four); ratio < 2 {
		t.Fatalf("4-channel speedup %.2fx < 2x (1ch=%dns, 4ch=%dns)", ratio, one, four)
	}
}

// TestDieSchedulingDeterministic pins that two identical multi-die runs
// produce identical makespans and telemetry.
func TestDieSchedulingDeterministic(t *testing.T) {
	run := func() (int64, []DieStat) {
		d, err := New("det", parallelConfig(2, 2))
		if err != nil {
			t.Fatal(err)
		}
		mk := runParallelWrites(t, d, 4, 30)
		return mk, d.DieTelemetry()
	}
	mk1, tel1 := run()
	mk2, tel2 := run()
	if mk1 != mk2 {
		t.Fatalf("makespans differ: %d vs %d", mk1, mk2)
	}
	for i := range tel1 {
		if tel1[i] != tel2[i] {
			t.Fatalf("die %d telemetry differs: %+v vs %+v", i, tel1[i], tel2[i])
		}
	}
}

// TestDieTelemetry checks that striped allocation keeps every die busy and
// that channel telemetry sees the bus transfers.
func TestDieTelemetry(t *testing.T) {
	d, err := New("tel", parallelConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !d.DieScheduled() {
		t.Fatal("explicit geometry must enable die scheduling")
	}
	runParallelWrites(t, d, 4, 40)
	tel := d.DieTelemetry()
	if len(tel) != 4 {
		t.Fatalf("telemetry for %d dies, want 4", len(tel))
	}
	var minBusy, maxBusy int64
	for i, ds := range tel {
		if ds.Die != i || ds.Channel != i%2 {
			t.Fatalf("die %d mislabeled: %+v", i, ds)
		}
		if ds.BusyNs <= 0 {
			t.Fatalf("die %d idle: %+v (striping failed)", i, ds)
		}
		if i == 0 || ds.BusyNs < minBusy {
			minBusy = ds.BusyNs
		}
		if ds.BusyNs > maxBusy {
			maxBusy = ds.BusyNs
		}
	}
	// Round-robin striping of a uniform workload must stay roughly even.
	if maxBusy > 2*minBusy {
		t.Fatalf("die busy skew too wide: min %d max %d", minBusy, maxBusy)
	}
	for _, cs := range d.ChannelTelemetry() {
		if cs.BusyNs <= 0 {
			t.Fatalf("channel %d bus idle: %+v", cs.Channel, cs)
		}
	}
	// Epoch scoping: a reset clears the telemetry.
	d.ResetStats()
	for _, ds := range d.DieTelemetry() {
		if ds.BusyNs != 0 || ds.WaitNs != 0 {
			t.Fatalf("telemetry survived ResetStats: %+v", ds)
		}
	}
}

// TestDieWaitAttribution: two clients hammering a single-die device must
// queue behind the one die, and that waiting is attributed to it.
func TestDieWaitAttribution(t *testing.T) {
	d, err := New("wait", parallelConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	runParallelWrites(t, d, 2, 20)
	tel := d.DieTelemetry()
	if len(tel) != 1 {
		t.Fatalf("telemetry for %d dies, want 1", len(tel))
	}
	if tel[0].WaitNs <= 0 {
		t.Fatalf("expected die-queue waiting on a contended single die: %+v", tel[0])
	}
}

// TestLegacyPathUntouched: a geometry without channel/die counts keeps the
// lump-sum queue and reports no die telemetry.
func TestLegacyPathUntouched(t *testing.T) {
	d := testDevice(t)
	if d.DieScheduled() {
		t.Fatal("default geometry must stay geometry-blind")
	}
	if d.DieTelemetry() != nil || d.ChannelTelemetry() != nil {
		t.Fatal("geometry-blind device must report nil die/channel telemetry")
	}
}
