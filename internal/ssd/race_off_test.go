//go:build !race

package ssd

// raceEnabled reports whether the race detector is instrumenting this
// build; the allocation guards skip under it because its shadow-memory
// bookkeeping allocates on paths the production build does not.
const raceEnabled = false
