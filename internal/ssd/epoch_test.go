package ssd

import (
	"math/rand"
	"testing"

	"share/internal/metrics"
	"share/internal/sim"
)

// runEpochWorkload runs the fixed measurement window used by the epoch
// tests — a deterministic burst of random-page writes followed by a
// flush — and returns the epoch stats at the end.
func runEpochWorkload(t *testing.T, d *Device) Stats {
	t.Helper()
	task := sim.NewSoloTask("epoch")
	rng := rand.New(rand.NewSource(7))
	page := make([]byte, d.PageSize())
	n := d.Capacity() / 4
	const writes = 4000
	for i := 0; i < writes; i++ {
		rng.Read(page)
		if err := d.WritePage(task, uint32(rng.Intn(n)), page); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(task); err != nil {
		t.Fatal(err)
	}
	return d.Stats()
}

// TestEpochWAExcludesAging is the regression test for the epoch-skew bug:
// write amplification measured after Age + ResetStats must equal the WA
// of a fresh device running the identical workload. Before the fix,
// Stats folded the aging phase's lifetime NAND programs into the epoch's
// host-write denominator, inflating aged-device WA several-fold. The
// aging level here is gentle enough that the measured window itself
// triggers no GC on either device, so the two epochs are bitwise the
// same workload against the same allocator state shape and must produce
// *identical* program counts.
func TestEpochWAExcludesAging(t *testing.T) {
	mk := func() *Device {
		cfg := DefaultConfig(256)
		d, err := New("ssd", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	fresh := mk()
	fresh.ResetStats()
	freshStats := runEpochWorkload(t, fresh)

	aged := mk()
	task := sim.NewSoloTask("age")
	if err := aged.Age(task, 0.3, 0.2, 99); err != nil {
		t.Fatal(err)
	}
	lifetime := aged.LifetimeStats()
	if lifetime.Chip.Programs == 0 || lifetime.FTL.HostWrites == 0 {
		t.Fatal("aging did not write")
	}
	aged.ResetStats()
	agedStats := runEpochWorkload(t, aged)

	if agedStats.FTL.HostWrites != freshStats.FTL.HostWrites {
		t.Fatalf("host writes differ: aged %d fresh %d",
			agedStats.FTL.HostWrites, freshStats.FTL.HostWrites)
	}
	if agedStats.Chip.Programs != freshStats.Chip.Programs {
		t.Fatalf("epoch programs differ: aged %d fresh %d",
			agedStats.Chip.Programs, freshStats.Chip.Programs)
	}
	if wa, fwa := agedStats.WriteAmplification(), freshStats.WriteAmplification(); wa != fwa {
		t.Fatalf("aged WA %.4f != fresh WA %.4f", wa, fwa)
	}
	// The buggy computation (lifetime programs over epoch host writes)
	// would have reported a WA inflated by the whole aging phase.
	buggy := float64(aged.LifetimeStats().Chip.Programs) / float64(agedStats.FTL.HostWrites)
	if buggy < 2*agedStats.WriteAmplification() {
		t.Fatalf("test lost its teeth: buggy WA %.2f not >> epoch WA %.2f",
			buggy, agedStats.WriteAmplification())
	}
}

// TestEpochCountersZeroAfterReset checks that every diffed counter starts
// the new epoch at zero while gauges keep their absolute values.
func TestEpochCountersZeroAfterReset(t *testing.T) {
	d := testDevice(t)
	task := sim.NewSoloTask("t")
	if err := d.Age(task, 0.8, 2.0, 3); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	st := d.Stats()
	lt := d.LifetimeStats()
	if st.FTL.HostWrites != 0 || st.FTL.GCEvents != 0 || st.FTL.Erases != 0 ||
		st.FTL.LogPagesWritten != 0 || st.FTL.Copybacks != 0 {
		t.Fatalf("FTL counters survived reset: %+v", st.FTL)
	}
	if st.Chip.Programs != 0 || st.Chip.Erases != 0 || st.Chip.Reads != 0 {
		t.Fatalf("chip counters survived reset: %+v", st.Chip)
	}
	if lt.Chip.MaxWear == 0 {
		t.Fatal("workload caused no erases; gauge check is vacuous")
	}
	if st.Chip.MaxWear != lt.Chip.MaxWear || st.Chip.MinWear != lt.Chip.MinWear {
		t.Fatalf("wear gauges must pass through: epoch %+v lifetime %+v", st.Chip, lt.Chip)
	}
	if st.FTL.SpareBlocksLeft != lt.FTL.SpareBlocksLeft {
		t.Fatal("SpareBlocksLeft gauge must pass through")
	}
	if lt.FTL.HostWrites == 0 || lt.Chip.Programs == 0 {
		t.Fatal("lifetime counters must be unaffected by ResetStats")
	}
}

// TestErasesMatchChip pins the documented invariant that the FTL's Erases
// counter equals the chip's successful-erase count: the FTL is the chip's
// only client and gcOnce is the only EraseBlock call site.
func TestErasesMatchChip(t *testing.T) {
	d := testDevice(t)
	task := sim.NewSoloTask("t")
	if err := d.Age(task, 0.8, 2.0, 11); err != nil {
		t.Fatal(err)
	}
	st := d.LifetimeStats()
	if st.FTL.GCEvents == 0 {
		t.Fatal("workload did not trigger GC")
	}
	if st.FTL.Erases != st.Chip.Erases {
		t.Fatalf("ftl erases %d != chip erases %d", st.FTL.Erases, st.Chip.Erases)
	}
}

// TestMetricsEpochScoped checks the recorder is cleared with the counter
// baseline and repopulated by the measured window only.
func TestMetricsEpochScoped(t *testing.T) {
	d := testDevice(t)
	task := sim.NewSoloTask("t")
	if err := d.Age(task, 0.5, 0.5, 5); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().Latency(metrics.CmdWrite).Count == 0 {
		t.Fatal("aging recorded no write latencies")
	}
	d.ResetStats()
	if got := d.Metrics().LatencySummaries(); len(got) != 0 {
		t.Fatalf("latency survived reset: %v", got)
	}
	buf := make([]byte, d.PageSize())
	for i := 0; i < 5; i++ {
		if err := d.WritePage(task, uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Metrics().Latency(metrics.CmdWrite).Count; got != 5 {
		t.Fatalf("write count = %d, want 5", got)
	}
}
