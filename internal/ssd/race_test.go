package ssd

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"share/internal/ftl"
	"share/internal/sim"
)

// Regression test for the single-submitter races: N real goroutines (solo
// tasks) hammer every command class while other goroutines read the
// epoch/telemetry surface (Stats, ResetStats, Health, DieTelemetry,
// Metrics). Before the sim resources and recorder grew internal locks,
// this raced on Resource.free/busy and the histogram state; run it under
// -race (make check does).
func TestConcurrentSubmitters(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"lump-sum-qd8", func() Config {
			c := DefaultConfig(128)
			c.QueueDepth = 8
			return c
		}()},
		{"die-scheduled-4ch", func() Config {
			c := DefaultConfig(256)
			c.Geometry.Channels = 4
			c.Geometry.DiesPerChannel = 2
			return c
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dev, err := New("racedev", tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			setup := sim.NewSoloTask("setup")
			if err := dev.Age(setup, 0.4, 0.1, 42); err != nil {
				t.Fatal(err)
			}
			dev.ResetStats()

			const workers, ops = 8, 150
			span := dev.Capacity() / 2
			var wg sync.WaitGroup
			errs := make([]error, workers)
			stop := make(chan struct{})
			// Telemetry readers poll concurrently with in-flight serves.
			var rg sync.WaitGroup
			for i := 0; i < 2; i++ {
				rg.Add(1)
				go func() {
					defer rg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_ = dev.Stats()
						_ = dev.LifetimeStats()
						_ = dev.Health()
						_ = dev.DieTelemetry()
						_ = dev.ChannelTelemetry()
						_ = dev.Metrics().LatencySummaries()
						_ = dev.ReadOnly()
					}
				}()
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					task := sim.NewSoloTask(fmt.Sprintf("cli%d", w))
					task.SetTenant(fmt.Sprintf("tenant%d", w%3))
					rng := rand.New(rand.NewSource(int64(w) + 1))
					page := make([]byte, dev.PageSize())
					for n := 0; n < ops; n++ {
						lpn := uint32(rng.Intn(span))
						var err error
						switch n % 8 {
						case 0, 1, 2:
							rng.Read(page)
							err = dev.WritePage(task, lpn, page)
						case 3, 4:
							if rerr := dev.ReadPage(task, lpn, page); rerr != nil &&
								!errors.Is(rerr, ftl.ErrUnmapped) {
								err = rerr
							}
						case 5:
							src := uint32(rng.Intn(span))
							if serr := dev.Share(task, []Pair{{Dst: lpn, Src: src, Len: 1}}); serr != nil &&
								!errors.Is(serr, ftl.ErrUnmapped) {
								err = serr
							}
						case 6:
							err = dev.Trim(task, lpn, 1)
						case 7:
							err = dev.Flush(task)
						}
						if err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			rg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}
			// ResetStats must be race-free against nothing in flight and
			// leave a clean epoch.
			dev.ResetStats()
			st := dev.Stats()
			if st.FTL.HostWrites != 0 || st.Chip.Programs != 0 {
				t.Fatalf("epoch not clean after ResetStats: %+v", st.FTL)
			}
		})
	}
}
