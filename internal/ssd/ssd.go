// Package ssd is the device front-end of the simulated flash drive: it
// owns the NAND chip and FTL, serializes commands the way a single SATA
// link does, charges virtual time to the issuing task through a sim
// Resource, and exposes the host-visible statistics the paper reports
// (host page writes, GC events, copyback pages).
package ssd

import (
	"fmt"
	"math/rand"
	"sync"

	"share/internal/ftl"
	"share/internal/metrics"
	"share/internal/nand"
	"share/internal/randfill"
	"share/internal/sim"
)

// Pair re-exports the FTL SHARE pair for host code.
type Pair = ftl.Pair

// Config assembles a device.
type Config struct {
	Geometry nand.Geometry
	Timing   nand.Timing
	FTL      ftl.Config
	// QueueDepth is the number of commands the device can service
	// concurrently when the geometry does not specify channel/die counts:
	// a geometry-blind k-server queue approximating internal parallelism.
	// 1 models the single-threaded OpenSSD prototype. When the geometry
	// sets Channels/DiesPerChannel the device schedules each command's
	// NAND operations onto real per-die servers and per-channel bus slots
	// instead, and QueueDepth does not gate admission — concurrency is
	// whatever the host offers (NCQ-style), bounded by the array itself.
	QueueDepth int
	// Fault optionally injects NAND failures (factory-bad blocks,
	// scheduled or seeded program/erase/read faults). Installed before the
	// FTL formats the chip, so factory marks are honored from the start.
	Fault *nand.FaultPlan
	// Media optionally installs an endogenous aging model (read disturb,
	// retention, wear — see nand.MediaModel): the device then degrades
	// with its own access pattern and the FTL's ECC ladder and patrol
	// scrubber have real work to do. Nil keeps media perfect, which also
	// keeps aging-free experiment output byte-identical.
	Media *nand.MediaModel
}

// DefaultConfig returns a small OpenSSD-like device: 4 KiB pages, 128
// pages per block. Capacity is set by Blocks; callers size it per
// experiment.
func DefaultConfig(blocks int) Config {
	return Config{
		Geometry: nand.Geometry{PageSize: 4096, PagesPerBlock: 128, Blocks: blocks},
		Timing:   nand.DefaultTiming(),
		FTL:      ftl.DefaultConfig(),
	}
}

// Admission gates command entry ahead of the device queue, e.g. for
// per-tenant fair-share scheduling (internal/qos). Admit may block the
// task (in virtual or real time) until its tenant is within its share;
// Done reports the service time the command consumed so the controller
// can bill it. Implementations must be safe for concurrent submitters.
type Admission interface {
	Admit(t *sim.Task, tenant string)
	Done(t *sim.Task, tenant string, svc sim.Duration)
}

// Device is a simulated SHARE-capable SSD.
//
// Concurrency: Device.mu serializes FTL/chip work (the firmware is
// single-threaded), while the virtual-time cost of each command is paid
// outside the lock on the sim resource servers, which carry their own
// internal locks — so multiple solo-task goroutines may submit commands
// concurrently, overlapping on distinct dies exactly like NCQ traffic.
type Device struct {
	mu   sync.Mutex
	chip *nand.Chip
	ftl  *ftl.FTL
	res  *sim.MultiResource
	cfg  Config
	rec  *metrics.Recorder
	adm  Admission // optional per-tenant admission gate; set before serving
	base Stats     // counter baseline recorded by ResetStats (epoch start)

	// Per-die scheduling state, nil/absent on geometry-blind devices.
	// Each die is a single-server resource (one NAND operation at a time);
	// each channel is a single-server bus shared by its dies for page
	// transfers. Commands replay their FTL cost plans onto these, so die
	// overlap — not a fixed queue depth — sets the device's concurrency.
	dieRes       []*sim.Resource
	chanRes      []*sim.Resource
	busOfDie     []*sim.Resource // die -> its channel's bus, cached for replay
	dieBusyBase  []int64         // busy-time baselines captured by ResetStats
	chanBusyBase []int64

	// planPool recycles cost-plan buffers between serve and the FTL: each
	// command hands a drained buffer back to TakeCostPlan while taking the
	// freshly recorded one, so steady-state recording never allocates.
	// A sync.Pool (rather than a single field) keeps concurrent solo-task
	// submitters race-free without extending d.mu over the replay.
	planPool sync.Pool
}

// planBuf boxes a cost-plan slice for planPool (a pointer target keeps
// Put/Get allocation-free).
type planBuf struct{ ops []ftl.OpCost }

// New builds a device from cfg.
func New(name string, cfg Config) (*Device, error) {
	if cfg.Geometry.ParallelismSpecified() {
		// Normalize so Channels=4 alone means 4×1 and DiesPerChannel=2
		// alone means 1×2.
		if cfg.Geometry.Channels < 1 {
			cfg.Geometry.Channels = 1
		}
		if cfg.Geometry.DiesPerChannel < 1 {
			cfg.Geometry.DiesPerChannel = 1
		}
	}
	chip, err := nand.New(cfg.Geometry, cfg.Timing)
	if err != nil {
		return nil, err
	}
	if cfg.Fault != nil {
		if err := chip.SetFaultPlan(cfg.Fault); err != nil {
			return nil, err
		}
	}
	if cfg.Media != nil {
		if err := chip.SetMediaModel(cfg.Media); err != nil {
			return nil, err
		}
	}
	f, err := ftl.New(chip, cfg.FTL)
	if err != nil {
		return nil, err
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	rec := metrics.NewRecorder(metrics.DefaultTraceCap)
	f.SetEventSink(rec.FTLEvent)
	d := &Device{chip: chip, ftl: f, res: sim.NewMultiResource(name, cfg.QueueDepth), cfg: cfg, rec: rec}
	if cfg.Geometry.ParallelismSpecified() {
		f.EnableCostPlan()
		dies := cfg.Geometry.NumDies()
		d.dieRes = make([]*sim.Resource, dies)
		for i := range d.dieRes {
			d.dieRes[i] = sim.NewResource(fmt.Sprintf("%s/die%d", name, i))
		}
		d.chanRes = make([]*sim.Resource, cfg.Geometry.NumChannels())
		for i := range d.chanRes {
			d.chanRes[i] = sim.NewResource(fmt.Sprintf("%s/ch%d", name, i))
		}
		d.busOfDie = make([]*sim.Resource, dies)
		for i := range d.busOfDie {
			d.busOfDie[i] = d.chanRes[cfg.Geometry.ChannelOfDie(i)]
		}
		d.planPool.New = func() any { return &planBuf{} }
		d.dieBusyBase = make([]int64, dies)
		d.chanBusyBase = make([]int64, len(d.chanRes))
		rec.SetDies(dies)
	}
	return d, nil
}

// PageSize returns the device mapping unit in bytes.
func (d *Device) PageSize() int { return d.cfg.Geometry.PageSize }

// Capacity returns the number of logical pages exported to the host.
func (d *Device) Capacity() int { return d.ftl.Capacity() }

// CapacityBytes returns the logical capacity in bytes.
func (d *Device) CapacityBytes() int64 {
	return int64(d.ftl.Capacity()) * int64(d.cfg.Geometry.PageSize)
}

// MaxShareBatch returns the largest atomically applied SHARE batch (in
// mapping units).
func (d *Device) MaxShareBatch() int { return d.ftl.MaxShareBatch() }

// serve runs op under the device lock and charges its service time to t.
// Geometry-blind devices push the whole lump sum through the k-server
// queue; die-scheduled devices replay the command's cost plan onto the
// per-die and per-channel resources, so only operations contending for
// the same die or bus serialize. The completed command — its total
// latency (service plus queueing) and the slice of its service time that
// was a GC stall — is recorded in the device's metrics recorder.
func (d *Device) serve(t *sim.Task, c metrics.Cmd, op func() (sim.Duration, error)) error {
	if d.adm != nil {
		d.adm.Admit(t, t.Tenant())
	}
	d.mu.Lock()
	stallBefore := d.ftl.GCStallTotal()
	svc, err := op()
	stall := d.ftl.GCStallTotal() - stallBefore
	var pb *planBuf
	if d.dieRes != nil {
		// Swap a drained buffer in for the freshly recorded plan; after the
		// replay the plan goes back to the pool for a later command. The
		// exchange happens under d.mu — only one command records at a time.
		pb = d.planPool.Get().(*planBuf)
		pb.ops = d.ftl.TakeCostPlan(pb.ops)
	}
	d.mu.Unlock()
	var lat sim.Duration
	if d.dieRes == nil {
		lat = d.res.Use(t, svc)
	} else {
		lat = d.schedule(t, svc, pb.ops)
		d.planPool.Put(pb)
	}
	if d.adm != nil {
		d.adm.Done(t, t.Tenant(), svc)
	}
	d.rec.Observe(c, lat, stall)
	return err
}

// SetAdmission installs (or, with nil, removes) a per-tenant admission
// gate ahead of the device queue. Install it before concurrent submitters
// start; the field itself is not lock-protected.
func (d *Device) SetAdmission(a Admission) { d.adm = a }

// schedule replays one command's cost plan in issue order: firmware time
// (the service-time residue no NAND operation accounts for) advances the
// task alone, reads occupy die then channel, programs channel then die,
// erases the die only. Queueing behind a busy die is attributed to that
// die in the recorder. Returns the command's total latency.
func (d *Device) schedule(t *sim.Task, svc sim.Duration, plan []ftl.OpCost) sim.Duration {
	arrival := t.Now()
	var planned sim.Duration
	for i := range plan {
		planned += plan[i].Bus + plan[i].Cell
	}
	if fw := svc - planned; fw > 0 {
		// Firmware/interface time (command overhead, OOB boot scans) is
		// CPU-side work that occupies no die or bus.
		t.Advance(fw)
	}
	for i := range plan {
		op := &plan[i]
		bus := d.busOfDie[op.Die]
		switch op.Kind {
		case ftl.OpRead:
			d.useDie(t, op.Die, op.Cell)
			if op.Bus > 0 {
				bus.Use(t, op.Bus)
			}
		case ftl.OpProgram:
			if op.Bus > 0 {
				bus.Use(t, op.Bus)
			}
			d.useDie(t, op.Die, op.Cell)
		case ftl.OpErase:
			d.useDie(t, op.Die, op.Cell)
		}
	}
	return t.Now() - arrival
}

// useDie occupies one die for dur, charging any queueing delay to the
// die's stall attribution.
func (d *Device) useDie(t *sim.Task, die int, dur sim.Duration) {
	if dur <= 0 {
		return
	}
	lat := d.dieRes[die].Use(t, dur)
	if wait := lat - dur; wait > 0 {
		d.rec.ObserveDieWait(die, wait)
	}
}

// ReadPage reads logical page lpn into dst.
func (d *Device) ReadPage(t *sim.Task, lpn uint32, dst []byte) error {
	return d.serve(t, metrics.CmdRead, func() (sim.Duration, error) { return d.ftl.Read(lpn, dst) })
}

// WritePage writes one page of data at logical page lpn with no stream
// hint (auto-classified when the device runs in auto-stream mode).
func (d *Device) WritePage(t *sim.Task, lpn uint32, data []byte) error {
	return d.serve(t, metrics.CmdWrite, func() (sim.Duration, error) { return d.ftl.Write(lpn, data) })
}

// WritePageStream writes one page with an explicit stream hint: stream
// >= 0 names the host write stream the page should join (clamped to the
// configured count), stream < 0 is equivalent to WritePage. The hint only
// steers NAND placement; cost plans and command semantics are unchanged.
func (d *Device) WritePageStream(t *sim.Task, lpn uint32, data []byte, stream int) error {
	return d.serve(t, metrics.CmdWrite, func() (sim.Duration, error) { return d.ftl.WriteStream(lpn, data, stream) })
}

// Streams reports the number of host-visible write streams the device was
// configured with (0 in legacy single-stream mode — hints are accepted but
// collapse to the one stream).
func (d *Device) Streams() int { return d.cfg.FTL.HostStreams }

// StreamInfos snapshots per-stream placement state (open blocks per die,
// pages written, GC copyback attribution) for the inspector.
func (d *Device) StreamInfos() []ftl.StreamInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ftl.StreamInfos()
}

// Trim invalidates n logical pages starting at lpn.
func (d *Device) Trim(t *sim.Task, lpn uint32, n int) error {
	return d.serve(t, metrics.CmdTrim, func() (sim.Duration, error) { return d.ftl.Trim(lpn, n) })
}

// Share issues one SHARE command. Batches wider than MaxShareBatch must be
// split by the caller (the core host library does this).
func (d *Device) Share(t *sim.Task, pairs []Pair) error {
	return d.serve(t, metrics.CmdShare, func() (sim.Duration, error) { return d.ftl.Share(pairs) })
}

// WriteAtomic writes a batch of pages whose mapping updates commit
// all-or-nothing (the atomic-write FTL baseline of §6.1). The batch must
// not exceed MaxShareBatch pages.
func (d *Device) WriteAtomic(t *sim.Task, pages []ftl.AtomicPage) error {
	return d.serve(t, metrics.CmdAtomic, func() (sim.Duration, error) { return d.ftl.WriteAtomic(pages) })
}

// AtomicPage re-exports the FTL atomic-write page for host code.
type AtomicPage = ftl.AtomicPage

// Flush persists buffered mapping state (the FLUSH CACHE behind fsync).
func (d *Device) Flush(t *sim.Task) error {
	return d.serve(t, metrics.CmdFlush, func() (sim.Duration, error) { return d.ftl.Flush() })
}

// Checkpoint forces an FTL mapping checkpoint.
func (d *Device) Checkpoint(t *sim.Task) error {
	return d.serve(t, metrics.CmdCheckpoint, func() (sim.Duration, error) { return d.ftl.Checkpoint() })
}

// Crash models a power failure: volatile device state is lost.
func (d *Device) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ftl.Crash()
}

// PowerCutAfter arms the NAND power-cut injector: after n more successful
// program/erase operations every further mutation fails, freezing flash at
// that exact boundary. Pair with Crash + DisablePowerCut + Recover to
// model a restart from an arbitrary crash point.
func (d *Device) PowerCutAfter(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chip.PowerCutAfter(n)
}

// DisablePowerCut restores power ahead of recovery.
func (d *Device) DisablePowerCut() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chip.DisablePowerCut()
}

// SetFaultPlan installs (or, with nil, removes) a NAND fault plan on a
// running device — fault-injection harnesses use it to switch faults on
// after a clean setup phase.
func (d *Device) SetFaultPlan(p *nand.FaultPlan) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.chip.SetFaultPlan(p)
}

// MutatingOps returns the chip's successful program+erase count — the
// boundary space a crash-point fuzzer iterates over.
func (d *Device) MutatingOps() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.chip.MutatingOps()
}

// ReadOnly reports whether the device has degraded to read-only mode
// (block retirements exhausted the spare budget).
func (d *Device) ReadOnly() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ftl.ReadOnly()
}

// SpareBlocksLeft reports the remaining block-retirement budget.
func (d *Device) SpareBlocksLeft() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ftl.SpareBlocksLeft()
}

// Recover rebuilds the FTL from flash after Crash.
func (d *Device) Recover(t *sim.Task) error {
	return d.serve(t, metrics.CmdRecover, func() (sim.Duration, error) { return d.ftl.Recover() })
}

// PatrolStep runs one increment of the background patrol scrubber: rank
// blocks by predicted media risk and refresh the riskiest one past the
// patrol threshold (see ftl.PatrolStep). The step's NAND work is served
// like any other command — replayed onto the per-die resource servers on
// die-scheduled devices — so patrol traffic queues behind foreground I/O
// in virtual time; hosts control its priority by how often they call it.
// Returns the refreshed block, or -1 if none needed refreshing.
func (d *Device) PatrolStep(t *sim.Task) (int, error) {
	refreshed := -1
	err := d.serve(t, metrics.CmdPatrol, func() (sim.Duration, error) {
		dur, b, err := d.ftl.PatrolStep()
		refreshed = b
		return dur, err
	})
	return refreshed, err
}

// AdvanceMediaTime ages retained data by idle virtual time (power-on idle
// between bursts of work). A no-op without a media model.
func (d *Device) AdvanceMediaTime(dur sim.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chip.AdvanceMediaTime(dur)
}

// MediaEnabled reports whether the device carries an endogenous aging
// model.
func (d *Device) MediaEnabled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.chip.MediaEnabled()
}

// Age pre-conditions the drive the way the paper does before measuring: it
// fills fillRatio of the logical space and then rewrites randomFrac of it
// in random order, so steady-state garbage collection is active during the
// measured run.
func (d *Device) Age(t *sim.Task, fillRatio, randomFrac float64, seed int64) error {
	if fillRatio < 0 || fillRatio > 1 || randomFrac < 0 {
		return fmt.Errorf("ssd: bad aging parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	fill := randfill.New(rng) // stream-equivalent to rng.Read, much faster
	n := int(float64(d.Capacity()) * fillRatio)
	page := make([]byte, d.PageSize())
	for i := 0; i < n; i++ {
		fill.Fill(page)
		if err := d.WritePage(t, uint32(i), page); err != nil {
			return err
		}
	}
	rewrites := int(float64(n) * randomFrac)
	for i := 0; i < rewrites; i++ {
		fill.Fill(page)
		if err := d.WritePage(t, uint32(rng.Intn(n)), page); err != nil {
			return err
		}
	}
	return d.Flush(t)
}

// Stats combines FTL and chip counters. As returned by Device.Stats,
// every counter covers the current measurement epoch — the window since
// the last ResetStats (or since New) — while gauges (wear extremes, bad
// blocks, spare budget, read-only flag) are always current absolute
// state. Device.LifetimeStats returns the undiffed since-birth counters.
type Stats struct {
	FTL  ftl.Stats
	Chip nand.Stats
}

// sub returns the epoch view of s given the baseline recorded at
// ResetStats: counters are differenced, gauges pass through from s. Any
// counter added to ftl.Stats or nand.Stats must be subtracted here, or
// epoch reports will silently mix in pre-epoch history — the bug this
// function exists to prevent.
func (s Stats) sub(base Stats) Stats {
	out := s
	// FTL counters.
	out.FTL.HostReads -= base.FTL.HostReads
	out.FTL.HostWrites -= base.FTL.HostWrites
	out.FTL.Trims -= base.FTL.Trims
	out.FTL.Shares -= base.FTL.Shares
	out.FTL.SharePairs -= base.FTL.SharePairs
	out.FTL.AtomicWrites -= base.FTL.AtomicWrites
	out.FTL.ForcedCopies -= base.FTL.ForcedCopies
	out.FTL.GCEvents -= base.FTL.GCEvents
	out.FTL.WearLevelMoves -= base.FTL.WearLevelMoves
	out.FTL.RetiredBlocks -= base.FTL.RetiredBlocks
	out.FTL.Copybacks -= base.FTL.Copybacks
	out.FTL.CrossDieCopybacks -= base.FTL.CrossDieCopybacks
	out.FTL.MetaMoves -= base.FTL.MetaMoves
	out.FTL.Erases -= base.FTL.Erases
	out.FTL.GCStallNanos -= base.FTL.GCStallNanos
	out.FTL.ProgramRetries -= base.FTL.ProgramRetries
	out.FTL.ProgramFails -= base.FTL.ProgramFails
	out.FTL.EraseFails -= base.FTL.EraseFails
	out.FTL.ReadRetries -= base.FTL.ReadRetries
	out.FTL.UncorrectableReads -= base.FTL.UncorrectableReads
	out.FTL.ScrubbedBlocks -= base.FTL.ScrubbedBlocks
	out.FTL.ScrubRelocations -= base.FTL.ScrubRelocations
	out.FTL.SoftDecodes -= base.FTL.SoftDecodes
	out.FTL.PatrolScans -= base.FTL.PatrolScans
	out.FTL.PatrolRefreshes -= base.FTL.PatrolRefreshes
	out.FTL.LostPages -= base.FTL.LostPages
	out.FTL.MetaFaults -= base.FTL.MetaFaults
	out.FTL.LogPagesWritten -= base.FTL.LogPagesWritten
	out.FTL.MapPagesWritten -= base.FTL.MapPagesWritten
	out.FTL.Checkpoints -= base.FTL.Checkpoints
	out.FTL.StreamWrites = subSlice(s.FTL.StreamWrites, base.FTL.StreamWrites)
	out.FTL.StreamCopybacks = subSlice(s.FTL.StreamCopybacks, base.FTL.StreamCopybacks)
	// FTL gauges pass through: SpareBlocksLeft, ReadOnly.

	// Chip counters.
	out.Chip.Reads -= base.Chip.Reads
	out.Chip.Programs -= base.Chip.Programs
	out.Chip.Erases -= base.Chip.Erases
	out.Chip.ProgramFails -= base.Chip.ProgramFails
	out.Chip.EraseFails -= base.Chip.EraseFails
	out.Chip.EccCorrected -= base.Chip.EccCorrected
	out.Chip.ReadFails -= base.Chip.ReadFails
	out.Chip.RetryReads -= base.Chip.RetryReads
	out.Chip.SoftReads -= base.Chip.SoftReads
	out.Chip.MediaHardReads -= base.Chip.MediaHardReads
	// Chip gauges pass through: MaxWear, MinWear, BadBlocks, MaxPageRisk,
	// MeanPageRisk.
	return out
}

// subSlice diffs per-stream counter slices elementwise into a fresh
// allocation (the inputs are snapshots other epochs still reference). A
// nil baseline (ResetStats never called, or the device predates streams)
// passes the current values through.
func subSlice(cur, base []int64) []int64 {
	if cur == nil {
		return nil
	}
	out := append([]int64(nil), cur...)
	for i := range out {
		if i < len(base) {
			out[i] -= base[i]
		}
	}
	return out
}

func (d *Device) lifetimeLocked() Stats {
	return Stats{FTL: d.ftl.Stats(), Chip: d.chip.Stats()}
}

// Stats returns the device counters for the current epoch: everything
// since the last ResetStats (or device creation), with gauges reflecting
// current absolute state.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lifetimeLocked().sub(d.base)
}

// LifetimeStats returns the since-birth counters, ignoring any epoch
// baseline — for wear studies and whole-life accounting.
func (d *Device) LifetimeStats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lifetimeLocked()
}

// ResetStats starts a new measurement epoch: the current counters (FTL
// and chip) become the baseline Stats diffs against, and the metrics
// recorder (latency histograms, GC-stall attribution, trace ring) is
// cleared. Experiments call it after aging/loading so write
// amplification, GC and erase figures cover only the measured window.
func (d *Device) ResetStats() {
	d.mu.Lock()
	d.base = d.lifetimeLocked()
	for i, r := range d.dieRes {
		d.dieBusyBase[i] = r.BusyTime()
	}
	for i, r := range d.chanRes {
		d.chanBusyBase[i] = r.BusyTime()
	}
	d.mu.Unlock()
	d.rec.Reset()
}

// WriteAmplification returns NAND programs per host page write over the
// stats window (the current epoch for Device.Stats snapshots, since both
// numerator and denominator are baseline-diffed there).
func (s Stats) WriteAmplification() float64 {
	if s.FTL.HostWrites == 0 {
		return 0
	}
	return float64(s.Chip.Programs) / float64(s.FTL.HostWrites)
}

// Metrics returns the device's observability recorder: per-command
// latency histograms, GC-stall attribution and the FTL trace ring, all
// scoped to the current epoch.
func (d *Device) Metrics() *metrics.Recorder { return d.rec }

// QueueDepth returns the configured lump-sum command parallelism. It is
// only an admission gate on geometry-blind devices; die-scheduled devices
// derive concurrency from the array itself.
func (d *Device) QueueDepth() int { return d.res.Servers() }

// Geometry returns the NAND geometry backing the device.
func (d *Device) Geometry() nand.Geometry { return d.cfg.Geometry }

// DieScheduled reports whether the device schedules per-die (geometry
// named explicit channel/die counts) rather than lump-sum.
func (d *Device) DieScheduled() bool { return d.dieRes != nil }

// DieStat is one die's epoch-scoped scheduling telemetry.
type DieStat struct {
	Die     int   `json:"die"`
	Channel int   `json:"channel"`
	BusyNs  int64 `json:"busy_ns"` // virtual time the die spent serving NAND operations
	WaitNs  int64 `json:"wait_ns"` // virtual time operations queued behind this die
}

// ChannelStat is one channel bus's epoch-scoped telemetry.
type ChannelStat struct {
	Channel int   `json:"channel"`
	BusyNs  int64 `json:"busy_ns"` // virtual time the bus spent transferring pages
}

// DieTelemetry returns per-die busy time and queue-stall attribution for
// the current epoch, or nil for a geometry-blind device.
func (d *Device) DieTelemetry() []DieStat {
	if d.dieRes == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	waits := d.rec.DieWaits()
	out := make([]DieStat, len(d.dieRes))
	for i, r := range d.dieRes {
		out[i] = DieStat{
			Die:     i,
			Channel: d.cfg.Geometry.ChannelOfDie(i),
			BusyNs:  r.BusyTime() - d.dieBusyBase[i],
			WaitNs:  waits[i],
		}
	}
	return out
}

// ChannelTelemetry returns per-channel bus busy time for the current
// epoch, or nil for a geometry-blind device.
func (d *Device) ChannelTelemetry() []ChannelStat {
	if d.chanRes == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ChannelStat, len(d.chanRes))
	for i, r := range d.chanRes {
		out[i] = ChannelStat{Channel: i, BusyNs: r.BusyTime() - d.chanBusyBase[i]}
	}
	return out
}

// DieHealth is one die's media-health summary: wear spread across its
// blocks plus (with a media model) predicted worst-page RBER.
type DieHealth struct {
	Die      int     `json:"die"`
	Channel  int     `json:"channel"`
	Blocks   int     `json:"blocks"`
	Retired  int     `json:"retired"`
	MinWear  int64   `json:"min_wear"`
	MaxWear  int64   `json:"max_wear"`
	MeanWear float64 `json:"mean_wear"`
	MeanRBER float64 `json:"mean_rber,omitempty"` // mean per-block worst-page RBER
	MaxRBER  float64 `json:"max_rber,omitempty"`  // worst block's predicted RBER
}

// Health is the device's self-assessment: per-die wear and predicted RBER,
// self-healing activity (blocks refreshed and retired), and the current
// patrol/scrub queue depths. Counters are lifetime totals — health is a
// whole-life view, not an epoch one.
type Health struct {
	MediaEnabled       bool        `json:"media_enabled"`
	Dies               []DieHealth `json:"dies"`
	BlocksRefreshed    int64       `json:"blocks_refreshed"` // scrubbed: reactive + patrol
	PatrolRefreshes    int64       `json:"patrol_refreshes"` // the patrol-initiated subset
	RetiredBlocks      int64       `json:"retired_blocks"`
	PatrolBacklog      int         `json:"patrol_backlog"`    // blocks at/over the refresh threshold
	ScrubQueueDepth    int         `json:"scrub_queue_depth"` // reactive queue from retry-recovered reads
	ReadRetries        int64       `json:"read_retries"`
	SoftDecodes        int64       `json:"soft_decodes"`
	UncorrectableReads int64       `json:"uncorrectable_reads"`
	LostPages          int64       `json:"lost_pages"` // pending sectors: data lost during relocation
	MeanRBER           float64     `json:"mean_rber,omitempty"`
	MaxRBER            float64     `json:"max_rber,omitempty"`
}

// Health computes the device health report.
func (d *Device) Health() Health {
	d.mu.Lock()
	defer d.mu.Unlock()
	geo := d.cfg.Geometry
	fst := d.ftl.Stats()
	h := Health{
		MediaEnabled:       d.chip.MediaEnabled(),
		Dies:               make([]DieHealth, geo.NumDies()),
		BlocksRefreshed:    fst.ScrubbedBlocks,
		PatrolRefreshes:    fst.PatrolRefreshes,
		RetiredBlocks:      fst.RetiredBlocks,
		PatrolBacklog:      d.ftl.PatrolBacklog(),
		ScrubQueueDepth:    d.ftl.ScrubQueueLen(),
		ReadRetries:        fst.ReadRetries,
		SoftDecodes:        fst.SoftDecodes,
		UncorrectableReads: fst.UncorrectableReads,
		LostPages:          fst.LostPages,
	}
	type agg struct {
		wearSum, riskSum int64
	}
	sums := make([]agg, len(h.Dies))
	for i := range h.Dies {
		h.Dies[i] = DieHealth{Die: i, Channel: geo.ChannelOfDie(i), MinWear: -1}
	}
	for b := 0; b < geo.Blocks; b++ {
		die := geo.DieOfBlock(b)
		dh := &h.Dies[die]
		dh.Blocks++
		if d.ftl.IsRetired(b) {
			dh.Retired++
		}
		w := d.chip.EraseCount(b)
		sums[die].wearSum += w
		if w > dh.MaxWear {
			dh.MaxWear = w
		}
		if dh.MinWear < 0 || w < dh.MinWear {
			dh.MinWear = w
		}
		if h.MediaEnabled {
			r := d.chip.BlockRisk(b)
			sums[die].riskSum += r
			rber := float64(r) * nand.RBERPerRiskUnit
			if rber > dh.MaxRBER {
				dh.MaxRBER = rber
			}
			if rber > h.MaxRBER {
				h.MaxRBER = rber
			}
		}
	}
	var riskTotal int64
	for i := range h.Dies {
		dh := &h.Dies[i]
		if dh.MinWear < 0 {
			dh.MinWear = 0
		}
		if dh.Blocks > 0 {
			dh.MeanWear = float64(sums[i].wearSum) / float64(dh.Blocks)
			if h.MediaEnabled {
				dh.MeanRBER = float64(sums[i].riskSum) * nand.RBERPerRiskUnit / float64(dh.Blocks)
			}
		}
		riskTotal += sums[i].riskSum
	}
	if h.MediaEnabled && geo.Blocks > 0 {
		h.MeanRBER = float64(riskTotal) * nand.RBERPerRiskUnit / float64(geo.Blocks)
	}
	return h
}

// FTLForTest exposes the FTL for white-box tests and the inspector tool.
func (d *Device) FTLForTest() *ftl.FTL { return d.ftl }

// Resource exposes the lump-sum device queue, e.g. for utilization
// reporting on geometry-blind devices.
func (d *Device) Resource() *sim.MultiResource { return d.res }
