package ssd

import (
	"math/rand"
	"testing"

	"share/internal/sim"
)

// newHotpathDevice builds a small die-scheduled device, pre-ages it into
// GC-active steady state, and resets stats so measurements cover only the
// benchmark loop.
func newHotpathDevice(b testing.TB, channels int) (*Device, *sim.Task) {
	cfg := DefaultConfig(256)
	if channels > 0 {
		cfg.Geometry.Channels = channels
		cfg.Geometry.DiesPerChannel = 1
	}
	dev, err := New("hotpath", cfg)
	if err != nil {
		b.Fatal(err)
	}
	task := sim.NewSoloTask("bench")
	if err := dev.Age(task, 0.9, 0.3, 42); err != nil {
		b.Fatal(err)
	}
	dev.ResetStats()
	return dev, task
}

// BenchmarkEndToEnd measures the wall-clock cost of one simulated host
// write on a die-scheduled device in GC-active steady state — the end-to-
// end hot path: FTL write (allocation, OOB, mapping delta), cost-plan
// recording, per-die replay, metrics observation.
func BenchmarkEndToEnd(b *testing.B) {
	dev, task := newHotpathDevice(b, 4)
	rng := rand.New(rand.NewSource(7))
	page := make([]byte, dev.PageSize())
	rng.Read(page)
	span := dev.Capacity() * 9 / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dev.WritePage(task, uint32(rng.Intn(span)), page); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndRead measures a read-hit on the same device.
func BenchmarkEndToEndRead(b *testing.B) {
	dev, task := newHotpathDevice(b, 4)
	rng := rand.New(rand.NewSource(7))
	page := make([]byte, dev.PageSize())
	span := dev.Capacity() * 9 / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dev.ReadPage(task, uint32(rng.Intn(span)), page); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndLegacy measures the geometry-blind lump-sum path.
func BenchmarkEndToEndLegacy(b *testing.B) {
	dev, task := newHotpathDevice(b, 0)
	rng := rand.New(rand.NewSource(7))
	page := make([]byte, dev.PageSize())
	rng.Read(page)
	span := dev.Capacity() * 9 / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dev.WritePage(task, uint32(rng.Intn(span)), page); err != nil {
			b.Fatal(err)
		}
	}
}
