package ssd

import (
	"math/rand"
	"reflect"
	"testing"

	"share/internal/randfill"
	"share/internal/sim"
)

// driveWorkload runs a deterministic mixed workload and returns the final
// virtual time.
func driveWorkload(t *testing.T, dev *Device, seed int64, t0 int64) int64 {
	t.Helper()
	s := sim.NewScheduler()
	for i := 0; i < 4; i++ {
		i := i
		s.Go("cli", func(task *sim.Task) {
			task.AdvanceTo(t0)
			rng := rand.New(rand.NewSource(seed + int64(i)))
			fill := randfill.New(rng)
			page := make([]byte, dev.PageSize())
			span := dev.Capacity() / 2
			for n := 0; n < 120; n++ {
				lpn := uint32(rng.Intn(span))
				switch n % 4 {
				case 0, 1:
					fill.Fill(page)
					if err := dev.WritePage(task, lpn, page); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				case 2:
					_ = dev.ReadPage(task, lpn, page) // unmapped ok
				case 3:
					if err := dev.Flush(task); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
		})
	}
	return s.Run()
}

// TestCloneEquivalence is the contract behind benchmark aging reuse: a
// cloned device must be indistinguishable from the original under an
// identical subsequent workload — same stats, same virtual completion
// time, same resource schedules. It ages a die-scheduled device (so GC,
// metadata flushes and per-die cost plans are all live state), clones it,
// and replays the same workload against both.
func TestCloneEquivalence(t *testing.T) {
	cfg := DefaultConfig(64)
	cfg.Geometry.Channels = 2
	cfg.Geometry.DiesPerChannel = 1
	dev, err := New("orig", cfg)
	if err != nil {
		t.Fatal(err)
	}
	setup := sim.NewSoloTask("setup")
	if err := dev.Age(setup, 0.6, 0.3, 7); err != nil {
		t.Fatal(err)
	}
	t0 := setup.Now()

	cl, err := dev.Clone("clone")
	if err != nil {
		t.Fatal(err)
	}

	dev.ResetStats()
	cl.ResetStats()
	endA := driveWorkload(t, dev, 99, t0)
	endB := driveWorkload(t, cl, 99, t0)
	if endA != endB {
		t.Fatalf("virtual completion diverged: original %d, clone %d", endA, endB)
	}
	sa, sb := dev.Stats(), cl.Stats()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("stats diverged:\noriginal: %+v\nclone:    %+v", sa, sb)
	}
	da, db := dev.DieTelemetry(), cl.DieTelemetry()
	if !reflect.DeepEqual(da, db) {
		t.Fatalf("die telemetry diverged: %v vs %v", da, db)
	}
}

// TestCloneIndependence pins that a clone shares no mutable state with
// its original: writing through one must not disturb data readable
// through the other.
func TestCloneIndependence(t *testing.T) {
	cfg := DefaultConfig(64)
	dev, err := New("orig", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("t")
	want := make([]byte, dev.PageSize())
	for i := range want {
		want[i] = byte(i)
	}
	if err := dev.WritePage(task, 3, want); err != nil {
		t.Fatal(err)
	}
	cl, err := dev.Clone("clone")
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite through the clone, including enough churn to recycle the
	// original physical page via GC on the clone's side.
	junk := make([]byte, dev.PageSize())
	for i := 0; i < dev.Capacity(); i++ {
		if err := cl.WritePage(task, uint32(i), junk); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, dev.PageSize())
	if err := dev.ReadPage(task, 3, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("original data corrupted by clone at byte %d", i)
		}
	}
}
