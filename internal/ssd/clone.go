package ssd

import (
	"fmt"

	"share/internal/sim"
)

// Clone returns an independent device that continues from d's exact
// simulation state: chip contents, FTL bookkeeping, per-die and
// per-channel queue schedules, metrics epoch and stats baselines. A
// workload run against the clone produces byte-for-byte the results it
// would have produced against the original — which is what lets sweep
// benchmarks pre-condition (age) a device once per geometry and fan the
// aged state out across sweep points instead of re-aging for every point.
//
// Devices with a fault plan, a media model or an admission gate refuse to
// clone; their mid-stream RNG / controller state is not replicated.
//
// d must be quiescent: no command may be in flight during Clone.
func (d *Device) Clone(name string) (*Device, error) {
	if d.adm != nil {
		return nil, fmt.Errorf("ssd: cannot clone a device with an admission gate")
	}
	if d.cfg.Fault != nil || d.cfg.Media != nil {
		return nil, fmt.Errorf("ssd: cannot clone a device with fault or media models")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	chip, err := d.chip.Clone()
	if err != nil {
		return nil, err
	}
	n := &Device{
		chip: chip,
		ftl:  d.ftl.Clone(chip),
		res:  d.res.Clone(name),
		cfg:  d.cfg,
		rec:  d.rec.Clone(),
		base: d.base,
	}
	n.base.FTL.StreamWrites = append([]int64(nil), d.base.FTL.StreamWrites...)
	n.base.FTL.StreamCopybacks = append([]int64(nil), d.base.FTL.StreamCopybacks...)
	n.ftl.SetEventSink(n.rec.FTLEvent)
	if d.dieRes != nil {
		n.dieRes = make([]*sim.Resource, len(d.dieRes))
		for i, r := range d.dieRes {
			n.dieRes[i] = r.Clone(fmt.Sprintf("%s/die%d", name, i))
		}
		n.chanRes = make([]*sim.Resource, len(d.chanRes))
		for i, r := range d.chanRes {
			n.chanRes[i] = r.Clone(fmt.Sprintf("%s/ch%d", name, i))
		}
		n.busOfDie = make([]*sim.Resource, len(d.busOfDie))
		for i := range n.busOfDie {
			n.busOfDie[i] = n.chanRes[d.cfg.Geometry.ChannelOfDie(i)]
		}
		n.planPool.New = func() any { return &planBuf{} }
		n.dieBusyBase = append([]int64(nil), d.dieBusyBase...)
		n.chanBusyBase = append([]int64(nil), d.chanBusyBase...)
	}
	return n, nil
}
