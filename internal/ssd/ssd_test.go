package ssd

import (
	"bytes"
	"testing"

	"share/internal/sim"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	cfg := DefaultConfig(32)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 8
	d, err := New("ssd", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceReadWriteShare(t *testing.T) {
	d := testDevice(t)
	task := sim.NewSoloTask("t")
	a := bytes.Repeat([]byte{0xA1}, d.PageSize())
	b := bytes.Repeat([]byte{0xB2}, d.PageSize())
	if err := d.WritePage(task, 1, a); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(task, 2, b); err != nil {
		t.Fatal(err)
	}
	if err := d.Share(task, []Pair{{Dst: 1, Src: 2, Len: 1}}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, d.PageSize())
	if err := d.ReadPage(task, 1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("share did not redirect dst")
	}
	if task.Now() == 0 {
		t.Fatal("no virtual time charged")
	}
}

func TestDeviceChargesQueueingAcrossTasks(t *testing.T) {
	d := testDevice(t)
	s := sim.NewScheduler()
	buf := bytes.Repeat([]byte{1}, d.PageSize())
	var t1, t2 int64
	s.Go("a", func(task *sim.Task) {
		for i := 0; i < 10; i++ {
			if err := d.WritePage(task, uint32(i), buf); err != nil {
				t.Error(err)
			}
		}
		t1 = task.Now()
	})
	s.Go("b", func(task *sim.Task) {
		for i := 0; i < 10; i++ {
			if err := d.WritePage(task, uint32(100+i), buf); err != nil {
				t.Error(err)
			}
		}
		t2 = task.Now()
	})
	s.Run()
	// Both clients share one device: each must observe more than 10
	// unqueued writes' worth of time.
	solo := sim.NewSoloTask("solo")
	d2 := testDevice(t)
	for i := 0; i < 10; i++ {
		if err := d2.WritePage(solo, uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	if t1 <= solo.Now() || t2 <= solo.Now() {
		t.Fatalf("queueing not charged: t1=%d t2=%d solo=%d", t1, t2, solo.Now())
	}
}

func TestDeviceCrashRecover(t *testing.T) {
	d := testDevice(t)
	task := sim.NewSoloTask("t")
	buf := bytes.Repeat([]byte{0x5C}, d.PageSize())
	if err := d.WritePage(task, 7, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(task); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if err := d.Recover(task); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, d.PageSize())
	if err := d.ReadPage(task, 7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("flushed write lost across crash")
	}
}

func TestAgingActivatesGC(t *testing.T) {
	d := testDevice(t)
	task := sim.NewSoloTask("t")
	if err := d.Age(task, 0.9, 1.5, 42); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.FTL.GCEvents == 0 {
		t.Fatal("aging produced no garbage collection")
	}
	if err := d.FTLForTest().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Aged drive still serves reads of the last written values: spot-check
	// via invariants plus a rewrite/read cycle.
	buf := bytes.Repeat([]byte{0x77}, d.PageSize())
	if err := d.WritePage(task, 0, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, d.PageSize())
	if err := d.ReadPage(task, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("read after aging mismatch")
	}
}

func TestAgingParameterValidation(t *testing.T) {
	d := testDevice(t)
	task := sim.NewSoloTask("t")
	if err := d.Age(task, -0.1, 0, 1); err == nil {
		t.Fatal("negative fill accepted")
	}
	if err := d.Age(task, 1.1, 0, 1); err == nil {
		t.Fatal("fill > 1 accepted")
	}
}

func TestStatsAndWAF(t *testing.T) {
	d := testDevice(t)
	task := sim.NewSoloTask("t")
	buf := make([]byte, d.PageSize())
	for round := 0; round < 6; round++ {
		for i := 0; i < d.Capacity(); i += 2 {
			if err := d.WritePage(task, uint32(i), buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := d.Stats()
	if st.FTL.HostWrites == 0 || st.Chip.Programs < st.FTL.HostWrites {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if waf := st.WriteAmplification(); waf < 1 {
		t.Fatalf("WAF = %f < 1", waf)
	}
	d.ResetStats()
	if d.Stats().FTL.HostWrites != 0 {
		t.Fatal("ResetStats did not clear FTL counters")
	}
}

func TestCapacityBytes(t *testing.T) {
	d := testDevice(t)
	if d.CapacityBytes() != int64(d.Capacity())*int64(d.PageSize()) {
		t.Fatal("capacity bytes mismatch")
	}
	if d.MaxShareBatch() <= 0 {
		t.Fatal("MaxShareBatch must be positive")
	}
}
