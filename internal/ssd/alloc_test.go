package ssd

import (
	"math/rand"
	"testing"

	"share/internal/sim"
)

// The hot-path allocation guards pin the perf contract the per-die
// scheduler depends on: once a device reaches GC-active steady state,
// serving a host op allocates nothing — the cost-plan buffer cycles
// through TakeCostPlan, OOB and page scratch come from free lists, and
// the metrics ring is pre-sized. A regression here doesn't fail
// functionally; it silently multiplies wall-clock on the 10-100x sweeps,
// so it has to be caught structurally.
//
// testing.AllocsPerRun disables parallelism but not the race detector's
// shadow allocations, so these guards skip under -race (the tier-1 gate
// runs the suite both ways; `go test ./internal/ssd/` covers them).

// allocSteadyDevice ages a 4-channel device into GC-active steady state
// and warms every free list and scratch pool with a few hundred ops so
// the measured runs see only steady-state behavior.
func allocSteadyDevice(t *testing.T) (*Device, *sim.Task, *rand.Rand, []byte, int) {
	t.Helper()
	if testing.Short() {
		t.Skip("ages a device; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race detector's shadow allocations break AllocsPerRun")
	}
	cfg := DefaultConfig(256)
	cfg.Geometry.Channels = 4
	cfg.Geometry.DiesPerChannel = 1
	dev, err := New("allocguard", cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := sim.NewSoloTask("allocguard")
	if err := dev.Age(task, 0.9, 0.3, 42); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	page := make([]byte, dev.PageSize())
	span := dev.Capacity() * 9 / 10
	for i := 0; i < 500; i++ {
		if err := dev.WritePage(task, uint32(rng.Intn(span)), page); err != nil {
			t.Fatal(err)
		}
	}
	return dev, task, rng, page, span
}

// TestWriteHotPathZeroAlloc: a steady-state host write — FTL allocation,
// OOB, mapping delta, cost-plan recording, per-die replay, latency
// observation — must not allocate. The aged device runs GC inline during
// these writes, so the guard covers the GC/copyback path too; the
// tolerance absorbs only rare amortized growth (map-log episodes,
// histogram buckets first touched late).
func TestWriteHotPathZeroAlloc(t *testing.T) {
	dev, task, rng, page, span := allocSteadyDevice(t)
	avg := testing.AllocsPerRun(2000, func() {
		if err := dev.WritePage(task, uint32(rng.Intn(span)), page); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.05 {
		t.Fatalf("steady-state write allocates %.3f objects/op, want ~0", avg)
	}
}

// TestReadHotPathZeroAlloc: a read hit must not allocate either — the
// read path shares the cost-plan replay and metrics machinery with
// writes but touches no scratch buffers at all.
func TestReadHotPathZeroAlloc(t *testing.T) {
	dev, task, rng, page, span := allocSteadyDevice(t)
	avg := testing.AllocsPerRun(2000, func() {
		if err := dev.ReadPage(task, uint32(rng.Intn(span)), page); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.05 {
		t.Fatalf("steady-state read hit allocates %.3f objects/op, want ~0", avg)
	}
}

// TestGCCopybackZeroAlloc isolates the GC-heavy regime: overwriting a
// narrow logical window on a nearly-full device forces the victim picker
// and copyback loop to run far more often per host write than the mixed
// guard above sees, so a regression specific to the GC path (victim
// scan, copyback scratch, erase bookkeeping) cannot hide in the average.
func TestGCCopybackZeroAlloc(t *testing.T) {
	dev, task, rng, page, _ := allocSteadyDevice(t)
	span := dev.Capacity() / 16
	for i := 0; i < 500; i++ { // settle GC into the narrow-window regime
		if err := dev.WritePage(task, uint32(rng.Intn(span)), page); err != nil {
			t.Fatal(err)
		}
	}
	before := dev.Stats().FTL.GCEvents
	avg := testing.AllocsPerRun(2000, func() {
		if err := dev.WritePage(task, uint32(rng.Intn(span)), page); err != nil {
			t.Fatal(err)
		}
	})
	if dev.Stats().FTL.GCEvents == before {
		t.Fatal("narrow-window overwrites triggered no GC; guard measured nothing")
	}
	if avg > 0.05 {
		t.Fatalf("GC-heavy write allocates %.3f objects/op, want ~0", avg)
	}
}
