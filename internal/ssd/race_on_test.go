//go:build race

package ssd

const raceEnabled = true
