// Package extcache implements a flash-extended buffer cache: a
// persistent, verify-on-read page cache on its own flash device, sitting
// behind a database buffer pool (the FaCE design, arXiv 1208.0289, on the
// SHARE stack's simulated devices).
//
// The cache holds engine pages evicted from the buffer pool so misses can
// be served from the (fast) cache device instead of the data device — and
// because the cache map is persisted on the cache device itself, the
// cache comes back *warm* after a crash, shrinking recovery-to-peak
// throughput time.
//
// The robustness contract is strict: the cache is an accelerator, never a
// durability dependency.
//
//   - Clean mode (the default): Put swallows every device error. A cache
//     device that faults, degrades to read-only or loses power mid-fill
//     can never fail a transaction — the engine simply stops getting
//     hits. Get verifies a content checksum on every read; a mismatch or
//     read fault invalidates the entry and reports a miss, so the caller
//     transparently falls back to the data device.
//   - Durable-dirty mode (Config.Durable): the buffer pool's flush
//     batches are written to the cache instead of the data device, with a
//     mapping journal on the cache device recording dirty entries.
//     Correctness never rests on the cache: every dirty entry's content
//     is also covered by the engine's redo log (the engine writes dirty
//     entries back to the data device before each redo truncation), so a
//     lost, torn or unreadable cache entry is always re-creatable from
//     redo replay.
//
// Crash recovery (Open on a device holding a previous map) revalidates
// every surviving entry against the *current* data-device content: an
// entry is kept only when its recorded content checksum matches both the
// cached bytes and the bytes the main device holds after the engine's own
// recovery. Matching content — rather than the page LSN alone — is
// deliberate: redo replay can install a page image whose stamped LSN
// equals a stale cache entry's while the content differs, so an
// LSN-equality check could surface stale data where the content check
// cannot. A torn cache write, a reused slot, or an entry the data device
// has since overtaken all fail the check and are dropped, never served.
package extcache

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"share/internal/ftl"
	"share/internal/sim"
	"share/internal/ssd"
	"share/internal/wal"
)

// ErrDegraded is returned by PutDirty after the cache device has stopped
// accepting writes (read-only degradation or power loss). The engine
// falls back to its regular flush pipeline.
var ErrDegraded = fmt.Errorf("extcache: cache device degraded; fills disabled")

// ErrCacheFull is returned by PutDirty when every slot holds a dirty
// entry; the engine must write entries back (WritebackAll) before more
// dirty fills fit.
var ErrCacheFull = fmt.Errorf("extcache: all slots dirty; writeback required")

// On-device layout (device pages):
//
//	LPN 0                      map header (magic, generation, geometry,
//	                           checksum over the entry pages)
//	LPN 1 .. mapPages          map entry pages (entrySize bytes per slot)
//	.. +journalPages           mapping journal (durable mode; a wal.Log)
//	slotBase ..                page slots, slotPages device pages each
const (
	hdrMagic  = 0x58434348 // "XCCH"
	entrySize = 20         // pageNo u32, lsn u64, sum u32, state u8, pad
	// header fields: sum-of-header u32 | magic u32 | generation u64 |
	// nSlots u32 | enginePageSize u32 | entriesSum u32 | durable u8
	hdrLen = 29
)

// Entry states.
const (
	slotFree  = 0
	slotClean = 1
	slotDirty = 2
)

// Config parameterizes a cache over one device.
type Config struct {
	// PageSize is the engine page size; must be a multiple of the cache
	// device's page size.
	PageSize int
	// Durable enables the dirty (write-back) mode with a mapping journal.
	Durable bool
	// JournalPages sizes the mapping journal ring in device pages
	// (durable mode; 0 means 128).
	JournalPages uint32
	// CheckpointEvery persists the cache map after this many fills
	// (0 means 64). The map is also persisted by Checkpoint.
	CheckpointEvery int
	// MainRead reads the data device's current content of an engine page,
	// for crash-recovery revalidation. nil drops every recovered entry
	// (cold start).
	MainRead func(t *sim.Task, pageNo uint32, dst []byte) error
	// PageLSN extracts the LSN from a page image and reports whether the
	// image is internally consistent (engine checksum). Pages reported
	// inconsistent are never cached — they were never flushed, so the
	// data device does not hold them either. nil accepts everything with
	// LSN 0.
	PageLSN func(data []byte) (lsn uint64, ok bool)
}

type entry struct {
	pageNo uint32
	lsn    uint64
	sum    uint32
	state  uint8
}

// Stats counts cache activity. Counters are maintained with atomics so
// snapshots are safe while an engine serves; everything else in the cache
// requires external serialization (the engine latch), like the buffer
// pool it backs.
type Stats struct {
	Hits               int64
	Misses             int64
	Fills              int64 // clean fills accepted
	FillSkips          int64 // clean fills skipped: identical image already resident
	DirtyFills         int64 // durable-mode flush pages accepted
	Writebacks         int64 // dirty entries written back to the data device
	Invalidations      int64
	VerifyFailures     int64 // reads served as misses: checksum mismatch or device read fault
	MapCheckpoints     int64
	RevalidatedKept    int64 // recovered entries that survived revalidation
	RevalidatedDropped int64 // recovered entries dropped (torn, stale, or unreadable)
	RecoveredDirty     int64 // dirty entries found durable at recovery (kept as clean)
	Degraded           bool  // gauge: fills disabled after a cache-device write failure
	Slots              int   // gauge: total page slots
	Resident           int   // gauge: slots holding a valid entry
	DirtyResident      int   // gauge: slots holding a dirty entry
}

// Cache is a flash-extended page cache over one device. Mutating methods
// must be externally serialized (the engine transaction latch); Stats,
// Degraded and the gauges are safe to read concurrently.
type Cache struct {
	dev *ssd.Device
	cfg Config

	slotPages int    // device pages per engine page
	mapPages  uint32 // entry pages after the header
	journal   *wal.Log
	slotBase  uint32
	nSlots    int

	entries []entry
	index   map[uint32]int // pageNo -> slot
	clock   int            // next-victim scan cursor
	gen     uint64         // map generation
	fills   int            // fills since the last map checkpoint

	scratch []byte // one engine page, for verify-on-read and writeback
	hdrBuf  []byte // one device page
	mapBuf  []byte // mapPages device pages, for map checkpoints

	degraded atomic.Bool

	hits, misses, fillsN, dirtyFills    atomic.Int64
	fillSkips                           atomic.Int64
	writebacks, invalidations           atomic.Int64
	verifyFailures, mapCheckpoints      atomic.Int64
	revalKept, revalDropped, recovDirty atomic.Int64
	resident, dirtyResident             atomic.Int64
}

// Open sizes the cache over dev and recovers any surviving cache map: the
// header and entry pages are loaded (plus the mapping journal in durable
// mode), and every entry is revalidated against the data device's current
// content via cfg.MainRead. A torn or missing map simply cold-starts the
// cache. Device write failures during Open degrade the cache instead of
// failing it — a broken cache device must never stop the engine.
func Open(t *sim.Task, dev *ssd.Device, cfg Config) (*Cache, error) {
	unit := dev.PageSize()
	if cfg.PageSize <= 0 || cfg.PageSize%unit != 0 {
		return nil, fmt.Errorf("extcache: engine page %d not a positive multiple of device page %d", cfg.PageSize, unit)
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 64
	}
	var journalPages uint32
	if cfg.Durable {
		journalPages = cfg.JournalPages
		if journalPages == 0 {
			journalPages = 128
		}
	}
	c := &Cache{
		dev:       dev,
		cfg:       cfg,
		slotPages: cfg.PageSize / unit,
		index:     make(map[uint32]int),
		scratch:   make([]byte, cfg.PageSize),
		hdrBuf:    make([]byte, unit),
	}
	capacity := uint32(dev.Capacity())
	perPage := unit / entrySize
	if perPage == 0 {
		return nil, fmt.Errorf("extcache: device page %d smaller than a map entry", unit)
	}
	if capacity <= 1+journalPages {
		return nil, fmt.Errorf("extcache: device too small: %d pages", capacity)
	}
	maxSlots := int(capacity-1-journalPages) / c.slotPages
	c.mapPages = uint32((maxSlots + perPage - 1) / perPage)
	c.nSlots = int(capacity-1-c.mapPages-journalPages) / c.slotPages
	if c.nSlots < 1 {
		return nil, fmt.Errorf("extcache: device too small for one %d-byte page slot (%d device pages)",
			cfg.PageSize, capacity)
	}
	c.slotBase = 1 + c.mapPages + journalPages
	c.entries = make([]entry, c.nSlots)
	c.mapBuf = make([]byte, int(c.mapPages)*unit)
	if cfg.Durable {
		j, err := wal.New(dev, 1+c.mapPages, journalPages)
		if err != nil {
			return nil, err
		}
		c.journal = j
	}

	c.recoverMap(t)
	return c, nil
}

// recoverMap loads a surviving cache map if the header validates, replays
// the mapping journal over it (durable mode), and revalidates every entry
// against the data device. Any failure along the way falls back to a cold
// start — never an error: a cache with no history is always correct.
func (c *Cache) recoverMap(t *sim.Task) {
	warm := c.loadMap(t)
	if warm && c.journal != nil {
		c.replayJournal(t)
	}
	if warm {
		c.revalidate(t)
	}
	// Persist the recovered (or empty) map so generation numbers advance
	// from a known point. Failures latch degradation and are otherwise
	// ignored: a read-only cache device still serves revalidated hits.
	c.persistMap(t)
	if c.journal != nil && !c.degraded.Load() {
		if err := c.journal.Truncate(t); err != nil {
			c.noteWriteErr(err)
		}
	}
}

// loadMap reads the header and entry pages; returns false (cold) unless
// the header checksum, magic and geometry all match the entry pages.
func (c *Cache) loadMap(t *sim.Task) bool {
	if err := c.dev.ReadPage(t, 0, c.hdrBuf); err != nil {
		return false
	}
	h := c.hdrBuf
	if binary.LittleEndian.Uint32(h[4:]) != hdrMagic {
		return false
	}
	if binary.LittleEndian.Uint32(h[0:]) != checksum32(h[4:hdrLen]) {
		return false
	}
	if int(binary.LittleEndian.Uint32(h[16:])) != c.nSlots ||
		int(binary.LittleEndian.Uint32(h[20:])) != c.cfg.PageSize {
		return false
	}
	wantDurable := h[28] != 0
	if wantDurable != c.cfg.Durable {
		return false // mode switch: the journal semantics changed, cold-start
	}
	unit := c.dev.PageSize()
	for p := uint32(0); p < c.mapPages; p++ {
		if err := c.dev.ReadPage(t, 1+p, c.mapBuf[int(p)*unit:int(p+1)*unit]); err != nil {
			return false
		}
	}
	if binary.LittleEndian.Uint32(h[24:]) != checksum32(c.mapBuf) {
		return false // torn map checkpoint: entries and header disagree
	}
	c.gen = binary.LittleEndian.Uint64(h[8:])
	for s := 0; s < c.nSlots; s++ {
		c.entries[s] = decodeEntry(c.mapBuf[s*entrySize:])
	}
	return true
}

// replayJournal applies mapping-journal records over the checkpointed
// map. Records are idempotent slot assignments in append order, so a
// journal that survived a checkpoint (power cut between the map write and
// the ring truncation) replays to the same state it described.
func (c *Cache) replayJournal(t *sim.Task) {
	recs, err := c.journal.ReadAll(t)
	if err != nil {
		return
	}
	for _, rec := range recs {
		if len(rec) != 4+entrySize {
			continue
		}
		slot := int(binary.LittleEndian.Uint32(rec[0:]))
		if slot < 0 || slot >= c.nSlots {
			continue
		}
		c.entries[slot] = decodeEntry(rec[4:])
	}
}

// revalidate checks every loaded entry against reality: the cached bytes
// must match the recorded checksum (torn cache writes, reused slots), and
// the data device's current content must match it too (the engine's own
// recovery may have rolled the page past the cached version). Entries
// that pass become clean residents; everything else is dropped. Dirty
// entries whose content the data device already holds were written back
// before the crash — they are kept as clean (RecoveredDirty).
func (c *Cache) revalidate(t *sim.Task) {
	for s := 0; s < c.nSlots; s++ {
		e := &c.entries[s]
		if e.state == slotFree {
			continue
		}
		keep := false
		if c.cfg.MainRead != nil &&
			c.readSlot(t, s, c.scratch) == nil &&
			checksum32(c.scratch) == e.sum {
			if err := c.cfg.MainRead(t, e.pageNo, c.scratch); err == nil &&
				checksum32(c.scratch) == e.sum {
				keep = true
			}
		}
		if !keep {
			e.state = slotFree
			c.revalDropped.Add(1)
			continue
		}
		if e.state == slotDirty {
			c.recovDirty.Add(1)
		}
		e.state = slotClean
		c.revalKept.Add(1)
	}
	// Rebuild the page index; duplicate page numbers keep the first slot
	// (slot order is deterministic) and free the rest.
	for s := 0; s < c.nSlots; s++ {
		e := &c.entries[s]
		if e.state == slotFree {
			continue
		}
		if _, dup := c.index[e.pageNo]; dup {
			e.state = slotFree
			c.revalKept.Add(-1)
			c.revalDropped.Add(1)
			continue
		}
		c.index[e.pageNo] = s
		c.resident.Add(1)
	}
}

// Get serves pageNo from the cache into dst (one engine page), verifying
// the content checksum. A clean entry that fails verification — a device
// read fault or a checksum mismatch — is invalidated and reported as a
// miss (false, nil) with dst unmodified, so the caller transparently
// falls back to the data device. A *dirty* entry that fails verification
// is an error: the data device's copy is stale, so falling back would
// surface old data — only redo replay (a restart) can reproduce the
// content. Dst is unmodified on any non-hit.
func (c *Cache) Get(t *sim.Task, pageNo uint32, dst []byte) (bool, error) {
	s, ok := c.index[pageNo]
	if !ok {
		c.misses.Add(1)
		return false, nil
	}
	rerr := c.readSlot(t, s, c.scratch)
	if rerr == nil && checksum32(c.scratch) == c.entries[s].sum {
		copy(dst, c.scratch)
		c.hits.Add(1)
		return true, nil
	}
	c.verifyFailures.Add(1)
	if c.entries[s].state == slotDirty {
		if rerr == nil {
			rerr = fmt.Errorf("checksum mismatch")
		}
		return false, fmt.Errorf("extcache: dirty page %d unreadable from cache: %w", pageNo, rerr)
	}
	c.dropSlot(s)
	c.misses.Add(1)
	return false, nil
}

// Put fills the cache with a clean page image (an evicted buffer-pool
// frame). Every error is swallowed: a clean fill is pure opportunity, and
// a failing cache device must never surface through the eviction path. A
// write failure latches degradation, disabling further fills.
func (c *Cache) Put(t *sim.Task, pageNo uint32, data []byte) {
	if c.degraded.Load() {
		return
	}
	if c.cfg.PageLSN != nil {
		if _, ok := c.cfg.PageLSN(data); !ok {
			return // never flushed: the data device does not hold it either
		}
	}
	if s, ok := c.index[pageNo]; ok {
		if c.entries[s].state == slotDirty {
			return // the dirty copy is newer than (or equal to) any clean image
		}
		if c.entries[s].sum == checksum32(data) {
			// The identical image is already resident: a clean page read
			// through the cache and evicted unmodified. Rewriting it would
			// burn program cycles (and wear) for nothing — in steady state
			// this is the overwhelmingly common eviction.
			c.fillSkips.Add(1)
			return
		}
	}
	s, ok := c.pickSlot(pageNo)
	if !ok {
		return // every slot dirty: clean fills wait for writeback
	}
	if err := c.writeSlot(t, s, data); err != nil {
		c.noteWriteErr(err)
		return
	}
	c.install(t, s, pageNo, data, slotClean)
	c.fillsN.Add(1)
	c.maybeCheckpoint(t)
}

// PutDirty accepts one page of a durable-mode flush batch: the image is
// written to a slot, the mapping journal records the dirty entry, and the
// data device is not touched until WritebackAll. The caller must have
// made the content redo-durable first (the engine's no-steal flush
// protocol guarantees it), so a crash that loses the cache write is
// repaired by redo replay.
func (c *Cache) PutDirty(t *sim.Task, pageNo uint32, data []byte) error {
	if !c.cfg.Durable {
		return fmt.Errorf("extcache: PutDirty on a clean-mode cache")
	}
	if c.degraded.Load() {
		return ErrDegraded
	}
	s, ok := c.pickSlot(pageNo)
	if !ok {
		return ErrCacheFull
	}
	if err := c.writeSlot(t, s, data); err != nil {
		c.noteWriteErr(err)
		return ErrDegraded
	}
	c.install(t, s, pageNo, data, slotDirty)
	c.dirtyFills.Add(1)
	c.journalEntry(t, s)
	c.maybeCheckpoint(t)
	return nil
}

// SyncJournal makes the mapping journal durable (one flush per flush
// batch, not per page). Failures latch degradation; the entries' content
// is redo-covered, so a lost journal only costs post-crash warmness.
func (c *Cache) SyncJournal(t *sim.Task) {
	if c.journal == nil || c.degraded.Load() {
		return
	}
	if err := c.journal.Sync(t); err != nil {
		c.noteWriteErr(err)
	}
}

// Invalidate drops any entry for pageNo — called when the data device's
// copy is rewritten behind the cache (home flushes, SHARE remaps).
func (c *Cache) Invalidate(t *sim.Task, pageNo uint32) {
	s, ok := c.index[pageNo]
	if !ok {
		return
	}
	c.dropSlot(s)
	c.invalidations.Add(1)
	c.journalEntry(t, s)
}

// WritebackAll writes every dirty entry back to the data device through
// write, in slot order, marking them clean. The engine calls it before
// truncating redo: afterwards every cached page is also at home, so the
// cache is never the sole holder of committed data. An unreadable dirty
// entry fails the writeback — the engine must then keep its redo log (the
// only remaining copy) rather than truncate it.
func (c *Cache) WritebackAll(t *sim.Task, write func(t *sim.Task, pageNo uint32, data []byte) error) error {
	for s := 0; s < c.nSlots; s++ {
		e := &c.entries[s]
		if e.state != slotDirty {
			continue
		}
		if err := c.readSlot(t, s, c.scratch); err != nil {
			return fmt.Errorf("extcache: dirty page %d unreadable from cache: %w", e.pageNo, err)
		}
		if checksum32(c.scratch) != e.sum {
			return fmt.Errorf("extcache: dirty page %d torn in cache (checksum mismatch)", e.pageNo)
		}
		if err := write(t, e.pageNo, c.scratch); err != nil {
			return err
		}
		e.state = slotClean
		c.dirtyResident.Add(-1)
		c.writebacks.Add(1)
		c.journalEntry(t, s)
	}
	return nil
}

// Checkpoint persists the cache map and truncates the mapping journal.
// The map write is ordered before the truncation, so a cut between the
// two replays journal records the map already reflects (idempotent).
func (c *Cache) Checkpoint(t *sim.Task) {
	if c.degraded.Load() {
		return
	}
	if err := c.persistMap(t); err != nil {
		return
	}
	if c.journal != nil {
		if err := c.journal.Truncate(t); err != nil {
			c.noteWriteErr(err)
		}
	}
	c.fills = 0
}

// Degraded reports whether fills are disabled after a cache-device write
// failure. Reads keep serving — verify-on-read makes that safe.
func (c *Cache) Degraded() bool { return c.degraded.Load() }

// Slots returns the number of page slots.
func (c *Cache) Slots() int { return c.nSlots }

// Stats returns a snapshot of cache counters and gauges.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Fills:              c.fillsN.Load(),
		FillSkips:          c.fillSkips.Load(),
		DirtyFills:         c.dirtyFills.Load(),
		Writebacks:         c.writebacks.Load(),
		Invalidations:      c.invalidations.Load(),
		VerifyFailures:     c.verifyFailures.Load(),
		MapCheckpoints:     c.mapCheckpoints.Load(),
		RevalidatedKept:    c.revalKept.Load(),
		RevalidatedDropped: c.revalDropped.Load(),
		RecoveredDirty:     c.recovDirty.Load(),
		Degraded:           c.degraded.Load(),
		Slots:              c.nSlots,
		Resident:           int(c.resident.Load()),
		DirtyResident:      int(c.dirtyResident.Load()),
	}
}

// ---------------------------------------------------------------------------
// internals

// pickSlot returns the slot to fill for pageNo: its current slot if
// resident, else a free slot, else a clean victim (clock scan). Dirty
// slots are never evicted — their content may exist nowhere else until
// writeback. Returns false when every slot is dirty.
func (c *Cache) pickSlot(pageNo uint32) (int, bool) {
	if s, ok := c.index[pageNo]; ok {
		return s, true
	}
	for scanned := 0; scanned < c.nSlots; scanned++ {
		s := c.clock
		c.clock = (c.clock + 1) % c.nSlots
		if c.entries[s].state == slotDirty {
			continue
		}
		if c.entries[s].state == slotClean {
			c.dropSlot(s)
		}
		return s, true
	}
	return 0, false
}

// install records the entry for a just-written slot.
func (c *Cache) install(t *sim.Task, s int, pageNo uint32, data []byte, state uint8) {
	var lsn uint64
	if c.cfg.PageLSN != nil {
		lsn, _ = c.cfg.PageLSN(data)
	}
	if old := c.entries[s]; old.state != slotFree {
		if old.state == slotDirty {
			c.dirtyResident.Add(-1)
		}
		if old.pageNo != pageNo {
			delete(c.index, old.pageNo)
			c.resident.Add(-1)
		}
	}
	if _, ok := c.index[pageNo]; !ok {
		c.resident.Add(1)
	}
	c.entries[s] = entry{pageNo: pageNo, lsn: lsn, sum: checksum32(data), state: state}
	c.index[pageNo] = s
	if state == slotDirty {
		c.dirtyResident.Add(1)
	}
	c.fills++
}

// dropSlot frees a slot and its index entry.
func (c *Cache) dropSlot(s int) {
	e := &c.entries[s]
	if e.state == slotFree {
		return
	}
	if e.state == slotDirty {
		c.dirtyResident.Add(-1)
	}
	delete(c.index, e.pageNo)
	c.resident.Add(-1)
	e.state = slotFree
}

// maybeCheckpoint persists the map every CheckpointEvery fills so a crash
// loses bounded warmness.
func (c *Cache) maybeCheckpoint(t *sim.Task) {
	if c.fills >= c.cfg.CheckpointEvery {
		c.Checkpoint(t)
	}
}

// journalEntry appends slot s's current entry state to the mapping
// journal (durable mode). Failures latch degradation; losing a record
// only costs warmness — replay and revalidation tolerate stale maps.
func (c *Cache) journalEntry(t *sim.Task, s int) {
	if c.journal == nil || c.degraded.Load() {
		return
	}
	var rec [4 + entrySize]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(s))
	encodeEntry(rec[4:], c.entries[s])
	if _, err := c.journal.Append(t, rec[:]); err != nil {
		if err == wal.ErrFull {
			// Fold the ring into a map checkpoint and retry once.
			c.Checkpoint(t)
			if c.degraded.Load() {
				return
			}
			if _, err = c.journal.Append(t, rec[:]); err == nil {
				return
			}
		}
		c.noteWriteErr(err)
	}
}

// persistMap writes the entry pages and then the header (with a checksum
// covering the entry bytes), followed by a device flush. A cut between
// the two leaves a header whose checksum no longer matches the entry
// pages — detected at load, cold start, never stale data.
func (c *Cache) persistMap(t *sim.Task) error {
	unit := c.dev.PageSize()
	for i := range c.mapBuf {
		c.mapBuf[i] = 0
	}
	for s := 0; s < c.nSlots; s++ {
		encodeEntry(c.mapBuf[s*entrySize:], c.entries[s])
	}
	for p := uint32(0); p < c.mapPages; p++ {
		if err := c.dev.WritePage(t, 1+p, c.mapBuf[int(p)*unit:int(p+1)*unit]); err != nil {
			c.noteWriteErr(err)
			return err
		}
	}
	c.gen++
	h := c.hdrBuf
	for i := range h {
		h[i] = 0
	}
	binary.LittleEndian.PutUint32(h[4:], hdrMagic)
	binary.LittleEndian.PutUint64(h[8:], c.gen)
	binary.LittleEndian.PutUint32(h[16:], uint32(c.nSlots))
	binary.LittleEndian.PutUint32(h[20:], uint32(c.cfg.PageSize))
	binary.LittleEndian.PutUint32(h[24:], checksum32(c.mapBuf))
	if c.cfg.Durable {
		h[28] = 1
	}
	binary.LittleEndian.PutUint32(h[0:], checksum32(h[4:hdrLen]))
	if err := c.dev.WritePage(t, 0, h); err != nil {
		c.noteWriteErr(err)
		return err
	}
	if err := c.dev.Flush(t); err != nil {
		c.noteWriteErr(err)
		return err
	}
	c.mapCheckpoints.Add(1)
	return nil
}

// readSlot reads slot s's engine page into dst.
func (c *Cache) readSlot(t *sim.Task, s int, dst []byte) error {
	unit := c.dev.PageSize()
	base := c.slotBase + uint32(s*c.slotPages)
	for p := 0; p < c.slotPages; p++ {
		if err := c.dev.ReadPage(t, base+uint32(p), dst[p*unit:(p+1)*unit]); err != nil {
			return err
		}
	}
	return nil
}

// writeSlot writes one engine page into slot s.
func (c *Cache) writeSlot(t *sim.Task, s int, data []byte) error {
	unit := c.dev.PageSize()
	base := c.slotBase + uint32(s*c.slotPages)
	for p := 0; p < c.slotPages; p++ {
		if err := c.dev.WritePage(t, base+uint32(p), data[p*unit:(p+1)*unit]); err != nil {
			return err
		}
	}
	return nil
}

// noteWriteErr latches degradation on the first cache-device write
// failure: the FTL only surfaces write errors it could not absorb
// (read-only degradation, power loss), so further fills are pointless.
// The transition is announced through the device's FTL event stream.
func (c *Cache) noteWriteErr(err error) {
	if err == nil {
		return
	}
	if c.degraded.CompareAndSwap(false, true) {
		if rec := c.dev.Metrics(); rec != nil {
			rec.FTLEvent(ftl.Event{Type: ftl.EvCacheDegraded, Block: -1})
		}
	}
}

func encodeEntry(b []byte, e entry) {
	binary.LittleEndian.PutUint32(b[0:], e.pageNo)
	binary.LittleEndian.PutUint64(b[4:], e.lsn)
	binary.LittleEndian.PutUint32(b[12:], e.sum)
	b[16] = e.state
	b[17], b[18], b[19] = 0, 0, 0
}

func decodeEntry(b []byte) entry {
	return entry{
		pageNo: binary.LittleEndian.Uint32(b[0:]),
		lsn:    binary.LittleEndian.Uint64(b[4:]),
		sum:    binary.LittleEndian.Uint32(b[12:]),
		state:  b[16],
	}
}

// checksum32 is the FNV-1a content checksum stored per entry and over the
// map pages.
func checksum32(b []byte) uint32 {
	var h uint32 = 2166136261
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}
