package extcache

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"share/internal/nand"
	"share/internal/sim"
	"share/internal/ssd"
)

const testPage = 1024 // engine page; device pages are 512 → 2 per slot

// mainStore stands in for the data device during revalidation.
type mainStore map[uint32][]byte

func (m mainStore) read(_ *sim.Task, pageNo uint32, dst []byte) error {
	for i := range dst {
		dst[i] = 0
	}
	if v, ok := m[pageNo]; ok {
		copy(dst, v)
	}
	return nil
}

func (m mainStore) put(pageNo uint32, data []byte) {
	m[pageNo] = append([]byte(nil), data...)
}

func newDev(t *testing.T, blocks int) *ssd.Device {
	t.Helper()
	cfg := ssd.DefaultConfig(blocks)
	cfg.Geometry.PageSize = 512
	cfg.Geometry.PagesPerBlock = 16
	dev, err := ssd.New("cache", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func pageImage(pageNo uint32, version byte) []byte {
	b := make([]byte, testPage)
	for i := range b {
		b[i] = byte(pageNo) ^ version ^ byte(i)
	}
	return b
}

func openCache(t *testing.T, dev *ssd.Device, main mainStore, durable bool) (*Cache, *sim.Task) {
	t.Helper()
	task := sim.NewSoloTask("t")
	cfg := Config{PageSize: testPage, Durable: durable, MainRead: main.read}
	if durable {
		cfg.JournalPages = 8
	}
	c, err := Open(task, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, task
}

// reopen models a crash + restart on the same device.
func reopen(t *testing.T, c *Cache, task *sim.Task, main mainStore) *Cache {
	t.Helper()
	dev := c.dev
	dev.Crash()
	dev.DisablePowerCut()
	if err := dev.Recover(task); err != nil {
		t.Fatal(err)
	}
	cfg := c.cfg
	cfg.MainRead = main.read
	nc, err := Open(task, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

// corruptSlot overwrites the first device page of pageNo's slot with
// garbage, modeling a torn or scribbled cache write.
func corruptSlot(t *testing.T, c *Cache, task *sim.Task, pageNo uint32) {
	t.Helper()
	s, ok := c.index[pageNo]
	if !ok {
		t.Fatalf("page %d not resident", pageNo)
	}
	junk := make([]byte, c.dev.PageSize())
	for i := range junk {
		junk[i] = 0xA5
	}
	lpn := c.slotBase + uint32(s*c.slotPages)
	if err := c.dev.WritePage(task, lpn, junk); err != nil {
		t.Fatal(err)
	}
	if err := c.dev.Flush(task); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	dev := newDev(t, 64)
	task := sim.NewSoloTask("t")
	if _, err := Open(task, dev, Config{PageSize: 700}); err == nil {
		t.Fatal("want error for page size not a multiple of the device page")
	}
	if _, err := Open(task, dev, Config{PageSize: 0}); err == nil {
		t.Fatal("want error for zero page size")
	}
}

func TestPutGetHit(t *testing.T) {
	c, task := openCache(t, newDev(t, 64), mainStore{}, false)
	img := pageImage(7, 1)
	c.Put(task, 7, img)
	dst := make([]byte, testPage)
	hit, err := c.Get(task, 7, dst)
	if err != nil || !hit {
		t.Fatalf("Get = %v, %v; want hit", hit, err)
	}
	if !bytes.Equal(dst, img) {
		t.Fatal("hit content differs from fill")
	}
	if hit, _ := c.Get(task, 8, dst); hit {
		t.Fatal("unexpected hit for never-filled page")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 || st.Resident != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVerifyFailureFallsBackToMiss(t *testing.T) {
	c, task := openCache(t, newDev(t, 64), mainStore{}, false)
	c.Put(task, 3, pageImage(3, 1))
	corruptSlot(t, c, task, 3)
	dst := make([]byte, testPage)
	hit, err := c.Get(task, 3, dst)
	if err != nil || hit {
		t.Fatalf("Get on corrupted clean entry = %v, %v; want miss, nil", hit, err)
	}
	st := c.Stats()
	if st.VerifyFailures != 1 {
		t.Fatalf("VerifyFailures = %d, want 1", st.VerifyFailures)
	}
	if st.Resident != 0 {
		t.Fatal("corrupted entry should have been invalidated")
	}
	// The entry is gone: the next Get is a plain miss, no second verify.
	if hit, _ := c.Get(task, 3, dst); hit {
		t.Fatal("invalidated entry served a hit")
	}
}

func TestInvalidateDropsEntry(t *testing.T) {
	c, task := openCache(t, newDev(t, 64), mainStore{}, false)
	c.Put(task, 9, pageImage(9, 1))
	c.Invalidate(task, 9)
	dst := make([]byte, testPage)
	if hit, _ := c.Get(task, 9, dst); hit {
		t.Fatal("invalidated entry served a hit")
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Resident != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWarmRecoveryKeepsMatchingEntries(t *testing.T) {
	main := mainStore{}
	c, task := openCache(t, newDev(t, 64), main, false)
	for p := uint32(0); p < 5; p++ {
		img := pageImage(p, 1)
		main.put(p, img)
		c.Put(task, p, img)
	}
	c.Checkpoint(task)

	nc := reopen(t, c, task, main)
	st := nc.Stats()
	if st.RevalidatedKept != 5 || st.RevalidatedDropped != 0 {
		t.Fatalf("revalidation kept %d dropped %d, want 5/0", st.RevalidatedKept, st.RevalidatedDropped)
	}
	dst := make([]byte, testPage)
	for p := uint32(0); p < 5; p++ {
		hit, err := nc.Get(task, p, dst)
		if err != nil || !hit {
			t.Fatalf("page %d: Get = %v, %v; want warm hit", p, hit, err)
		}
		if !bytes.Equal(dst, pageImage(p, 1)) {
			t.Fatalf("page %d: warm hit content differs", p)
		}
	}
}

func TestRecoveryDropsStaleEntries(t *testing.T) {
	main := mainStore{}
	c, task := openCache(t, newDev(t, 64), main, false)
	img := pageImage(4, 1)
	main.put(4, img)
	c.Put(task, 4, img)
	c.Checkpoint(task)

	// The engine's recovery rolled the page forward: main now differs.
	main.put(4, pageImage(4, 2))
	nc := reopen(t, c, task, main)
	st := nc.Stats()
	if st.RevalidatedKept != 0 || st.RevalidatedDropped != 1 {
		t.Fatalf("revalidation kept %d dropped %d, want 0/1", st.RevalidatedKept, st.RevalidatedDropped)
	}
	dst := make([]byte, testPage)
	if hit, _ := nc.Get(task, 4, dst); hit {
		t.Fatal("stale entry surfaced after recovery")
	}
}

func TestRecoveryDropsTornCacheWrites(t *testing.T) {
	main := mainStore{}
	c, task := openCache(t, newDev(t, 64), main, false)
	img := pageImage(6, 1)
	main.put(6, img)
	c.Put(task, 6, img)
	c.Checkpoint(task)
	corruptSlot(t, c, task, 6) // torn slot write, map says otherwise

	nc := reopen(t, c, task, main)
	if st := nc.Stats(); st.RevalidatedKept != 0 || st.RevalidatedDropped != 1 {
		t.Fatalf("revalidation kept %d dropped %d, want 0/1", st.RevalidatedKept, st.RevalidatedDropped)
	}
}

func TestTornMapCheckpointColdStarts(t *testing.T) {
	main := mainStore{}
	c, task := openCache(t, newDev(t, 64), main, false)
	img := pageImage(2, 1)
	main.put(2, img)
	c.Put(task, 2, img)
	c.Checkpoint(task)

	// Scribble an entry page without rewriting the header: checksum over
	// the entry pages no longer matches — a torn map checkpoint.
	junk := make([]byte, c.dev.PageSize())
	junk[0] = 0xFF
	if err := c.dev.WritePage(task, 1, junk); err != nil {
		t.Fatal(err)
	}
	if err := c.dev.Flush(task); err != nil {
		t.Fatal(err)
	}
	nc := reopen(t, c, task, main)
	st := nc.Stats()
	if st.RevalidatedKept != 0 || st.RevalidatedDropped != 0 || st.Resident != 0 {
		t.Fatalf("torn map should cold-start; stats = %+v", st)
	}
}

func TestPowerCutDegradesFillsKeepsServing(t *testing.T) {
	main := mainStore{}
	dev := newDev(t, 64)
	c, task := openCache(t, dev, main, false)
	c.Put(task, 1, pageImage(1, 1))

	dev.PowerCutAfter(0)
	c.Put(task, 2, pageImage(2, 1)) // must be swallowed
	if !c.Degraded() {
		t.Fatal("write failure did not latch degradation")
	}
	if got := dev.Metrics().EventCounts()["cache-degraded"]; got != 1 {
		t.Fatalf("cache-degraded events = %d, want 1", got)
	}
	// Further fills are no-ops, no second event.
	c.Put(task, 3, pageImage(3, 1))
	if got := dev.Metrics().EventCounts()["cache-degraded"]; got != 1 {
		t.Fatalf("degradation latched twice: %d events", got)
	}
	// Reads still serve: power loss on NAND fails mutations, not reads.
	dst := make([]byte, testPage)
	hit, err := c.Get(task, 1, dst)
	if err != nil || !hit {
		t.Fatalf("Get after degradation = %v, %v; want hit", hit, err)
	}
	if !bytes.Equal(dst, pageImage(1, 1)) {
		t.Fatal("degraded-mode hit content differs")
	}
}

func TestFaultPlanNeverSurfacesWrongData(t *testing.T) {
	// Property: with aggressive read faults on the cache device, a Get
	// either misses or returns exactly the bytes that were filled.
	main := mainStore{}
	dev := newDev(t, 64)
	c, task := openCache(t, dev, main, false)
	want := map[uint32][]byte{}
	for p := uint32(0); p < 16; p++ {
		img := pageImage(p, 1)
		want[p] = img
		c.Put(task, p, img)
	}
	plan := nand.NewFaultPlan(42)
	plan.PReadCorrectable = 0.2
	plan.PReadUncorrectable = 0.2
	if err := dev.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, testPage)
	hits, misses := 0, 0
	for round := 0; round < 4; round++ {
		for p := uint32(0); p < 16; p++ {
			hit, err := c.Get(task, p, dst)
			if err != nil {
				t.Fatalf("clean-mode Get returned error: %v", err)
			}
			if hit {
				hits++
				if !bytes.Equal(dst, want[p]) {
					t.Fatalf("page %d: hit returned wrong bytes under faults", p)
				}
			} else {
				misses++
			}
		}
	}
	if hits == 0 {
		t.Fatal("fault plan killed every read; test proves nothing")
	}
	t.Logf("hits=%d misses=%d verifyFailures=%d", hits, misses, c.Stats().VerifyFailures)
}

func TestPutDirtyWritebackCycle(t *testing.T) {
	main := mainStore{}
	c, task := openCache(t, newDev(t, 64), main, true)
	for p := uint32(0); p < 4; p++ {
		if err := c.PutDirty(task, p, pageImage(p, 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.SyncJournal(task)
	if st := c.Stats(); st.DirtyFills != 4 || st.DirtyResident != 4 {
		t.Fatalf("stats = %+v", st)
	}
	dst := make([]byte, testPage)
	hit, err := c.Get(task, 2, dst)
	if err != nil || !hit || !bytes.Equal(dst, pageImage(2, 1)) {
		t.Fatalf("dirty entry not served: %v %v", hit, err)
	}

	var wrote []uint32
	err = c.WritebackAll(task, func(_ *sim.Task, pageNo uint32, data []byte) error {
		if !bytes.Equal(data, pageImage(pageNo, 1)) {
			t.Fatalf("writeback of page %d carries wrong bytes", pageNo)
		}
		wrote = append(wrote, pageNo)
		main.put(pageNo, data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 4 {
		t.Fatalf("wrote %d pages back, want 4", len(wrote))
	}
	st := c.Stats()
	if st.Writebacks != 4 || st.DirtyResident != 0 || st.Resident != 4 {
		t.Fatalf("stats after writeback = %+v", st)
	}
	// Second writeback is a no-op: everything is clean now.
	if err := c.WritebackAll(task, func(_ *sim.Task, _ uint32, _ []byte) error {
		t.Fatal("clean entry written back")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUnreadableDirtyEntryIsAnError(t *testing.T) {
	c, task := openCache(t, newDev(t, 64), mainStore{}, true)
	if err := c.PutDirty(task, 5, pageImage(5, 1)); err != nil {
		t.Fatal(err)
	}
	corruptSlot(t, c, task, 5)

	// Get must NOT fall back to the (stale) data device.
	dst := make([]byte, testPage)
	if _, err := c.Get(task, 5, dst); err == nil {
		t.Fatal("Get on torn dirty entry must error, not miss")
	}
	// Writeback must fail too: redo is the only remaining copy and the
	// engine must keep it.
	err := c.WritebackAll(task, func(_ *sim.Task, _ uint32, _ []byte) error { return nil })
	if err == nil {
		t.Fatal("WritebackAll over a torn dirty entry must fail")
	}
	if !strings.Contains(err.Error(), "torn in cache") {
		t.Fatalf("unexpected writeback error: %v", err)
	}
}

func TestPutNeverDowngradesDirtyEntry(t *testing.T) {
	c, task := openCache(t, newDev(t, 64), mainStore{}, true)
	newer := pageImage(8, 2)
	if err := c.PutDirty(task, 8, newer); err != nil {
		t.Fatal(err)
	}
	c.Put(task, 8, pageImage(8, 1)) // stale clean image from an eviction
	dst := make([]byte, testPage)
	hit, err := c.Get(task, 8, dst)
	if err != nil || !hit {
		t.Fatalf("Get = %v, %v", hit, err)
	}
	if !bytes.Equal(dst, newer) {
		t.Fatal("clean Put downgraded a dirty entry")
	}
	if st := c.Stats(); st.DirtyResident != 1 {
		t.Fatalf("DirtyResident = %d, want 1", st.DirtyResident)
	}
}

func TestCacheFullAndDrain(t *testing.T) {
	c, task := openCache(t, newDev(t, 16), mainStore{}, true)
	n := c.Slots()
	for p := 0; p < n; p++ {
		if err := c.PutDirty(task, uint32(p), pageImage(uint32(p), 1)); err != nil {
			t.Fatalf("fill %d/%d: %v", p, n, err)
		}
	}
	err := c.PutDirty(task, uint32(n), pageImage(uint32(n), 1))
	if !errors.Is(err, ErrCacheFull) {
		t.Fatalf("PutDirty on full cache = %v, want ErrCacheFull", err)
	}
	// Clean fills on an all-dirty cache are silently skipped, never evict.
	c.Put(task, uint32(n+1), pageImage(uint32(n+1), 1))
	if st := c.Stats(); st.Fills != 0 {
		t.Fatal("clean fill evicted a dirty slot")
	}
	if err := c.WritebackAll(task, func(_ *sim.Task, _ uint32, _ []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := c.PutDirty(task, uint32(n), pageImage(uint32(n), 1)); err != nil {
		t.Fatalf("PutDirty after drain: %v", err)
	}
}

func TestDirtyEntriesSurviveCrashWhenWrittenBack(t *testing.T) {
	// Dirty entries written back before the crash revalidate clean; dirty
	// entries main never received are dropped (redo replay re-creates
	// them) — either way no stale data.
	main := mainStore{}
	c, task := openCache(t, newDev(t, 64), main, true)
	for p := uint32(0); p < 6; p++ {
		if err := c.PutDirty(task, p, pageImage(p, 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.SyncJournal(task)
	// Pages 0-2 reached their homes before the crash, 3-5 did not.
	for p := uint32(0); p < 3; p++ {
		main.put(p, pageImage(p, 1))
	}

	nc := reopen(t, c, task, main)
	st := nc.Stats()
	if st.RevalidatedKept != 3 || st.RevalidatedDropped != 3 {
		t.Fatalf("revalidation kept %d dropped %d, want 3/3", st.RevalidatedKept, st.RevalidatedDropped)
	}
	if st.RecoveredDirty != 3 {
		t.Fatalf("RecoveredDirty = %d, want 3", st.RecoveredDirty)
	}
	if st.DirtyResident != 0 {
		t.Fatal("recovered entries must come back clean — redo owns dirty content")
	}
	dst := make([]byte, testPage)
	for p := uint32(0); p < 3; p++ {
		hit, err := nc.Get(task, p, dst)
		if err != nil || !hit || !bytes.Equal(dst, pageImage(p, 1)) {
			t.Fatalf("page %d: written-back entry not warm", p)
		}
	}
	for p := uint32(3); p < 6; p++ {
		if hit, _ := nc.Get(task, p, dst); hit {
			t.Fatalf("page %d: unwritten dirty entry surfaced after crash", p)
		}
	}
}

func TestJournalFullFoldsIntoCheckpoint(t *testing.T) {
	c, task := openCache(t, newDev(t, 64), mainStore{}, true)
	before := c.Stats().MapCheckpoints
	// 8 journal pages of 512 B fill quickly; every overflow must fold into
	// a map checkpoint and keep going, never degrade.
	for i := 0; i < 400; i++ {
		p := uint32(i % 10)
		if err := c.PutDirty(task, p, pageImage(p, byte(i))); err != nil {
			t.Fatalf("PutDirty %d: %v", i, err)
		}
		if err := c.WritebackAll(task, func(_ *sim.Task, _ uint32, _ []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Degraded() {
		t.Fatal("journal wrap degraded the cache")
	}
	if c.Stats().MapCheckpoints == before {
		t.Fatal("journal never folded into a checkpoint")
	}
}

func TestPutSkipsUnstampedPages(t *testing.T) {
	task := sim.NewSoloTask("t")
	c, err := Open(task, newDev(t, 64), Config{
		PageSize: testPage,
		PageLSN:  func(data []byte) (uint64, bool) { return 0, data[0] == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	unstamped := make([]byte, testPage) // data[0]=0 → never flushed
	c.Put(task, 1, unstamped)
	if st := c.Stats(); st.Fills != 0 || st.Resident != 0 {
		t.Fatal("unstamped page was cached")
	}
	stamped := make([]byte, testPage)
	stamped[0] = 1
	c.Put(task, 1, stamped)
	if st := c.Stats(); st.Fills != 1 || st.Resident != 1 {
		t.Fatal("stamped page was not cached")
	}
}

func TestCleanEvictionReusesSlots(t *testing.T) {
	c, task := openCache(t, newDev(t, 16), mainStore{}, false)
	n := c.Slots()
	// Fill 2n distinct pages through n slots: the clock must evict clean
	// entries, and residency never exceeds the slot count.
	for p := uint32(0); p < uint32(2*n); p++ {
		c.Put(task, p, pageImage(p, 1))
		if st := c.Stats(); st.Resident > st.Slots {
			t.Fatalf("resident %d > slots %d", st.Resident, st.Slots)
		}
	}
	if st := c.Stats(); st.Fills != int64(2*n) {
		t.Fatalf("fills = %d, want %d", st.Fills, 2*n)
	}
}

func TestStatsSnapshotConsistency(t *testing.T) {
	main := mainStore{}
	c, task := openCache(t, newDev(t, 64), main, false)
	for p := uint32(0); p < 8; p++ {
		c.Put(task, p, pageImage(p, 1))
	}
	dst := make([]byte, testPage)
	for p := uint32(0); p < 12; p++ {
		if _, err := c.Get(task, p, dst); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Hits != 8 || st.Misses != 4 {
		t.Fatalf("hits/misses = %d/%d, want 8/4", st.Hits, st.Misses)
	}
	if st.Slots != c.Slots() || st.Resident != 8 || st.Degraded {
		t.Fatalf("gauges = %+v", st)
	}
	if fmt.Sprint(st) == "" {
		t.Fatal("unprintable stats")
	}
}
