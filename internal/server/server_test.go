package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"share/internal/nand"
	"share/internal/sim"
)

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) cmd(line string) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\n"), nil
}

func (c *client) must(t *testing.T, line, want string) {
	t.Helper()
	resp, err := c.cmd(line)
	if err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	if resp != want {
		t.Fatalf("%s: got %q, want %q", line, resp, want)
	}
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

// TestServerProtocol exercises the wire protocol end to end on one
// connection: tenant selection, set/get/delete, commit, stats, errors.
func TestServerProtocol(t *testing.T) {
	_, addr := startServer(t, Config{Blocks: 128, PageSize: 512})
	c := dial(t, addr)
	defer c.conn.Close()

	if resp, _ := c.cmd("GET k"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("GET before USE = %q, want ERR", resp)
	}
	c.must(t, "USE alpha", "OK")
	c.must(t, "GET missing", "NIL")
	c.must(t, "SET k hello world", "OK")
	c.must(t, "GET k", "VAL hello world")
	c.must(t, "COMMIT", "OK")
	c.must(t, "DEL k", "OK")
	c.must(t, "DEL k", "NIL")
	c.must(t, "GET k", "NIL")
	if resp, _ := c.cmd("STATS"); !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("STATS = %q", resp)
	}
	if resp, _ := c.cmd("BOGUS"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("BOGUS = %q, want ERR", resp)
	}
	c.must(t, "QUIT", "OK")
}

// TestServerDegradedWireError drives the server's device into read-only
// degradation mid-session — scheduled permanent program faults retire
// blocks past a one-block spare budget — and checks the protocol
// contract: mutations answer with the typed "ERR DEGRADED" form (not a
// bare ERR a client would retry), reads keep working, and STATS flips
// its degraded field from 0 to 1.
func TestServerDegradedWireError(t *testing.T) {
	plan := nand.NewFaultPlan(11)
	// The band starts well past format/store-creation programs, then
	// every program faults: the write retries cascade through block
	// retirements until the one-block spare budget is exhausted and the
	// device latches read-only — long before churn can fill it.
	for n := int64(300); n < 1000; n++ {
		plan.AtProgram(n, nand.FaultProgramPermanent)
	}
	_, addr := startServer(t, Config{
		Blocks: 64, PageSize: 512, BatchSize: 1,
		SpareBlocks: 1, Fault: plan,
	})
	c := dial(t, addr)
	defer c.conn.Close()
	c.must(t, "USE alpha", "OK")
	c.must(t, "SET stable before-degradation", "OK")
	c.must(t, "COMMIT", "OK")
	if resp, _ := c.cmd("STATS"); !strings.Contains(resp, " degraded=0") {
		t.Fatalf("STATS before degradation = %q, want degraded=0", resp)
	}

	// Churn until the device degrades. The very write that exhausts the
	// spare budget can surface as a transitional "device full" from the
	// retirement cascade; every mutation after the latch must carry the
	// typed form.
	var degraded string
	for i := 0; i < 400 && degraded == ""; i++ {
		resp, err := c.cmd(fmt.Sprintf("SET churn%d %s", i, strings.Repeat("x", 64)))
		if err != nil {
			t.Fatalf("SET churn%d: %v", i, err)
		}
		if strings.HasPrefix(resp, "ERR DEGRADED ") {
			degraded = resp
		}
	}
	if degraded == "" {
		t.Fatal("device never answered a mutation with ERR DEGRADED")
	}

	// The condition is latched: the next mutation is typed too, reads
	// and STATS keep serving, and STATS reports it.
	if resp, _ := c.cmd("SET another value"); !strings.HasPrefix(resp, "ERR DEGRADED ") {
		t.Fatalf("second mutation after degradation = %q", resp)
	}
	c.must(t, "GET stable", "VAL before-degradation")
	resp, err := c.cmd("STATS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "OK ") || !strings.Contains(resp, " degraded=1") {
		t.Fatalf("STATS after degradation = %q, want degraded=1", resp)
	}
	// Ordinary protocol errors stay untyped: clients must not confuse a
	// usage mistake with a degraded store.
	if resp, _ := c.cmd("BOGUS"); strings.Contains(resp, "DEGRADED") {
		t.Fatalf("unknown command mis-typed as degraded: %q", resp)
	}
	c.must(t, "QUIT", "OK")
}

// TestServerTenantIsolation: the same key written by two tenants holds
// two independent values, each durable in its own database file.
func TestServerTenantIsolation(t *testing.T) {
	s, addr := startServer(t, Config{Blocks: 128, PageSize: 512})

	a := dial(t, addr)
	defer a.conn.Close()
	b := dial(t, addr)
	defer b.conn.Close()
	a.must(t, "USE alpha", "OK")
	b.must(t, "USE beta", "OK")
	a.must(t, "SET shared from-alpha", "OK")
	b.must(t, "SET shared from-beta", "OK")
	a.must(t, "COMMIT", "OK")
	b.must(t, "COMMIT", "OK")
	a.must(t, "GET shared", "VAL from-alpha")
	b.must(t, "GET shared", "VAL from-beta")

	if !s.fs.Exists("alpha.couch") || !s.fs.Exists("beta.couch") {
		t.Fatal("per-tenant database files missing")
	}
}

// TestServerConcurrentClients runs many connections across a few tenants
// in parallel — connections of the same tenant share one store — and
// then verifies every write read back correctly. The -race regression
// for the whole serving stack: protocol loop, lazy store opening, couch
// latching, fsim, qos admission, device.
func TestServerConcurrentClients(t *testing.T) {
	s, addr := startServer(t, Config{Blocks: 256, PageSize: 512, BatchSize: 4})

	const clients = 8
	const tenants = 3
	const ops = 40
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c := dial(t, addr)
			defer c.conn.Close()
			tenant := fmt.Sprintf("tenant%d", cl%tenants)
			if resp, err := c.cmd("USE " + tenant); err != nil || resp != "OK" {
				errs <- fmt.Errorf("USE: %q %v", resp, err)
				return
			}
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("c%dk%d", cl, i)
				if resp, err := c.cmd(fmt.Sprintf("SET %s v-%d-%d", key, cl, i)); err != nil || resp != "OK" {
					errs <- fmt.Errorf("SET: %q %v", resp, err)
					return
				}
			}
			if resp, err := c.cmd("COMMIT"); err != nil || resp != "OK" {
				errs <- fmt.Errorf("COMMIT: %q %v", resp, err)
				return
			}
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("c%dk%d", cl, i)
				want := fmt.Sprintf("VAL v-%d-%d", cl, i)
				resp, err := c.cmd("GET " + key)
				if err != nil || resp != want {
					errs <- fmt.Errorf("GET %s: %q %v, want %q", key, resp, err, want)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All tenants were billed at the admission gate.
	ast := s.Admission().Stats(sim.NewSoloTask("check"))
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant%d", i)
		if ast.Consumed[name] == 0 {
			t.Fatalf("tenant %s not billed at the gate: %v", name, ast.Consumed)
		}
	}
}
