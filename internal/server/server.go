// Package server implements the shareserver front-end: a TCP server that
// exposes per-tenant key-value stores (internal/couch) living side by
// side in one simulated file system on one SHARE-capable SSD. It is the
// multi-tenant serving stack of the paper's deployment picture — many
// databases on one flash device — made concrete: every connection runs
// as its own solo task, every tenant gets its own database file, and the
// device queue is guarded by a fair-share admission gate (internal/qos)
// so one tenant's load cannot starve the rest.
//
// The wire protocol is line-based and minimal:
//
//	USE <tenant>          select (and lazily create) the tenant database
//	SET <key> <value>     upsert; value runs to end of line
//	GET <key>             -> VAL <value> | NIL
//	DEL <key>             -> OK | NIL
//	COMMIT                flush the tenant's batch durably
//	STATS                 one-line server and tenant counters
//	QUIT                  close the connection
//
// Responses are OK, VAL <bytes>, NIL, or ERR <message>. A degraded
// store — the device exhausted its spare blocks and fell back to
// read-only serving — answers mutations with the typed form
// "ERR DEGRADED <message>", so clients can tell a durable read-only
// condition (retrying is pointless, reads still work) from a transient
// fault, and STATS reports it as a degraded=0|1 field. Keys must not
// contain spaces; keys and values must not contain newlines.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"share/internal/couch"
	"share/internal/fsim"
	"share/internal/ftl"
	"share/internal/nand"
	"share/internal/qos"
	"share/internal/sim"
	"share/internal/ssd"
)

// Config sizes the serving stack.
type Config struct {
	Blocks       int             // device blocks (0: 512)
	Channels     int             // NAND channels (0: 4)
	PageSize     int             // device page size (0: 4096)
	JournalPages int             // fsim journal pages (0: 64)
	Quantum      sim.Duration    // fair-share quantum (0: qos.DefaultQuantum)
	BatchSize    int             // couch sets per durable batch (0: 8)
	ShareMode    bool            // use SHARE remapping for commits
	SpareBlocks  int             // block-retirement budget override (0: derived)
	Fault        *nand.FaultPlan // optional NAND fault injection
}

func (c *Config) setDefaults() {
	if c.Blocks == 0 {
		c.Blocks = 512
	}
	if c.Channels == 0 {
		c.Channels = 4
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.JournalPages == 0 {
		c.JournalPages = 64
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
}

// Server owns the device, the file system, and one couch store per
// tenant. Connections are served concurrently; per-tenant stores are
// created lazily on first USE.
type Server struct {
	cfg Config
	dev *ssd.Device
	fs  *fsim.FS
	adm *qos.FairShare

	mu     sync.Mutex // guards stores
	stores map[string]*couch.Store

	ln      net.Listener
	connSeq atomic.Int64
	closed  atomic.Bool
	wg      sync.WaitGroup
}

// New builds the serving stack: a multi-channel device with fair-share
// admission and a formatted file system.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	dcfg := ssd.DefaultConfig(cfg.Blocks)
	dcfg.Geometry.PageSize = cfg.PageSize
	dcfg.Geometry.Channels = cfg.Channels
	dcfg.FTL.SpareBlocks = cfg.SpareBlocks
	dcfg.Fault = cfg.Fault
	dev, err := ssd.New("shareserver", dcfg)
	if err != nil {
		return nil, err
	}
	adm := qos.NewFairShare(cfg.Quantum)
	dev.SetAdmission(adm)
	task := sim.NewSoloTask("format")
	fs, err := fsim.Format(task, dev, cfg.JournalPages)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, dev: dev, fs: fs, adm: adm, stores: make(map[string]*couch.Store)}, nil
}

// Device exposes the underlying SSD, e.g. for telemetry.
func (s *Server) Device() *ssd.Device { return s.dev }

// Admission exposes the fair-share controller.
func (s *Server) Admission() *qos.FairShare { return s.adm }

// store returns the tenant's database, opening (and on first use
// creating) it under the server lock. The couch store itself is latched,
// so multiple connections of one tenant share it safely.
func (s *Server) store(t *sim.Task, tenant string) (*couch.Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.stores[tenant]; ok {
		return st, nil
	}
	st, err := couch.Open(t, s.fs, couch.Config{
		Name:      tenant + ".couch",
		BatchSize: s.cfg.BatchSize,
		ShareMode: s.cfg.ShareMode,
	})
	if err != nil {
		return nil, err
	}
	s.stores[tenant] = st
	return st, nil
}

// Listen binds addr (e.g. "127.0.0.1:0") without accepting yet, so
// callers learn the port before starting clients.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Serve accepts connections until Close. Each connection is handled on
// its own goroutine with its own solo task.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to drain.
func (s *Server) Close() error {
	s.closed.Store(true)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// errLine renders err as a wire error. Read-only degradation — the
// couch store's latched state or the raw device error underneath it —
// gets the typed "ERR DEGRADED" form; everything else stays a plain ERR.
func errLine(err error) string {
	if errors.Is(err, couch.ErrReadOnly) || errors.Is(err, ftl.ErrReadOnly) {
		return "ERR DEGRADED " + err.Error()
	}
	return "ERR " + err.Error()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	id := s.connSeq.Add(1)
	task := sim.NewSoloTask(fmt.Sprintf("conn%d", id))
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var st *couch.Store

	reply := func(line string) bool {
		if _, err := w.WriteString(line + "\n"); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	replyVal := func(v []byte) bool {
		if _, err := w.WriteString("VAL "); err != nil {
			return false
		}
		if _, err := w.Write(v); err != nil {
			return false
		}
		if err := w.WriteByte('\n'); err != nil {
			return false
		}
		return w.Flush() == nil
	}

	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		line = bytes.TrimRight(line, "\r\n")
		cmd, rest := splitWord(line)
		switch string(cmd) {
		case "USE":
			tenant := string(rest)
			if tenant == "" {
				if !reply("ERR missing tenant") {
					return
				}
				continue
			}
			task.SetTenant(tenant)
			st, err = s.store(task, tenant)
			if err != nil {
				st = nil
				if !reply(errLine(err)) {
					return
				}
				continue
			}
			if !reply("OK") {
				return
			}
		case "SET":
			key, val := splitWord(rest)
			if st == nil || len(key) == 0 {
				if !reply("ERR need USE and key") {
					return
				}
				continue
			}
			if err := st.Set(task, key, val); err != nil {
				if !reply(errLine(err)) {
					return
				}
				continue
			}
			if !reply("OK") {
				return
			}
		case "GET":
			if st == nil || len(rest) == 0 {
				if !reply("ERR need USE and key") {
					return
				}
				continue
			}
			v, ok, err := st.Get(task, rest)
			switch {
			case err != nil:
				if !reply(errLine(err)) {
					return
				}
			case !ok:
				if !reply("NIL") {
					return
				}
			default:
				if !replyVal(v) {
					return
				}
			}
		case "DEL":
			if st == nil || len(rest) == 0 {
				if !reply("ERR need USE and key") {
					return
				}
				continue
			}
			found, err := st.Delete(task, rest)
			switch {
			case err != nil:
				if !reply(errLine(err)) {
					return
				}
			case !found:
				if !reply("NIL") {
					return
				}
			default:
				if !reply("OK") {
					return
				}
			}
		case "COMMIT":
			if st == nil {
				if !reply("ERR need USE") {
					return
				}
				continue
			}
			if err := st.Commit(task); err != nil {
				if !reply(errLine(err)) {
					return
				}
				continue
			}
			if !reply("OK") {
				return
			}
		case "STATS":
			if !reply(s.statsLine(task, st)) {
				return
			}
		case "QUIT":
			reply("OK")
			return
		case "":
			// blank line: ignore
		default:
			if !reply("ERR unknown command") {
				return
			}
		}
	}
}

// statsLine renders device and admission counters, plus the selected
// tenant's store counters when one is in use. degraded reflects the
// read-only condition a client would hit on its next mutation: the
// device out of spare blocks, or this tenant's store already latched.
func (s *Server) statsLine(t *sim.Task, st *couch.Store) string {
	dst := s.dev.Stats()
	ast := s.adm.Stats(t)
	degraded := 0
	if s.dev.ReadOnly() || (st != nil && st.Degraded()) {
		degraded = 1
	}
	line := fmt.Sprintf("OK reads=%d writes=%d admits=%d throttles=%d degraded=%d",
		dst.FTL.HostReads, dst.FTL.HostWrites, ast.Admits, ast.Throttles, degraded)
	if st != nil {
		cst := st.Stats()
		line += fmt.Sprintf(" sets=%d gets=%d commits=%d", cst.Sets, cst.Gets, cst.Commits)
	}
	return line
}

// splitWord splits b at the first space into (word, rest); rest is empty
// when no space is present.
func splitWord(b []byte) ([]byte, []byte) {
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		return b[:i], b[i+1:]
	}
	return b, nil
}
