package stress

import (
	"testing"

	"share/internal/server"
)

// TestStressServer is the make-check stress cell: 8 workers over 3
// tenants, each mirroring its writes locally and verifying every read,
// over real TCP against the full serving stack (protocol loop, couch,
// fsim, qos admission, multi-channel device) under the race detector.
func TestStressServer(t *testing.T) {
	cfg := Config{
		Workers: 8,
		Tenants: 3,
		Cycles:  150,
		Keys:    24,
		Seed:    42,
		Server:  server.Config{Blocks: 256, PageSize: 512, BatchSize: 4},
	}
	if testing.Short() {
		cfg.Workers = 4
		cfg.Cycles = 60
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Failed() {
		t.Fatalf("stress run failed: %s", rep)
	}
	if want := int64(cfg.Workers * cfg.Cycles); rep.Cycles != want {
		t.Fatalf("cycles = %d, want %d", rep.Cycles, want)
	}
}

// TestStressSingleTenant keeps every worker on one tenant so all
// connections contend on one couch store — the hot-latch variant.
func TestStressSingleTenant(t *testing.T) {
	rep, err := Run(Config{
		Workers: 6,
		Tenants: 1,
		Cycles:  80,
		Keys:    16,
		Seed:    7,
		Server:  server.Config{Blocks: 256, PageSize: 512, BatchSize: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Failed() {
		t.Fatalf("stress run failed: %s", rep)
	}
}

// TestReportMerge pins the accounting arithmetic.
func TestReportMerge(t *testing.T) {
	a := Report{Cycles: 10, WriteErrors: 1}
	a.Merge(Report{Cycles: 5, ReadErrors: 2, DataErrors: 3})
	want := Report{Cycles: 15, WriteErrors: 1, ReadErrors: 2, DataErrors: 3}
	if a != want {
		t.Fatalf("merge = %+v, want %+v", a, want)
	}
	if !a.Failed() {
		t.Fatal("Failed() = false with errors present")
	}
	clean := Report{Cycles: 99}
	if clean.Failed() {
		t.Fatal("Failed() = true with no errors")
	}
}
