package stress

import (
	"io"
	"net"
	"sync/atomic"
	"testing"

	"share/internal/server"
)

// TestStressServer is the make-check stress cell: 8 workers over 3
// tenants, each mirroring its writes locally and verifying every read,
// over real TCP against the full serving stack (protocol loop, couch,
// fsim, qos admission, multi-channel device) under the race detector.
func TestStressServer(t *testing.T) {
	cfg := Config{
		Workers: 8,
		Tenants: 3,
		Cycles:  150,
		Keys:    24,
		Seed:    42,
		Server:  server.Config{Blocks: 256, PageSize: 512, BatchSize: 4},
	}
	if testing.Short() {
		cfg.Workers = 4
		cfg.Cycles = 60
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Failed() {
		t.Fatalf("stress run failed: %s", rep)
	}
	if want := int64(cfg.Workers * cfg.Cycles); rep.Cycles != want {
		t.Fatalf("cycles = %d, want %d", rep.Cycles, want)
	}
}

// TestStressSingleTenant keeps every worker on one tenant so all
// connections contend on one couch store — the hot-latch variant.
func TestStressSingleTenant(t *testing.T) {
	rep, err := Run(Config{
		Workers: 6,
		Tenants: 1,
		Cycles:  80,
		Keys:    16,
		Seed:    7,
		Server:  server.Config{Blocks: 256, PageSize: 512, BatchSize: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Failed() {
		t.Fatalf("stress run failed: %s", rep)
	}
}

// flakyProxy forwards TCP to backend but kills the first drops
// connections on sight — the deterministic stand-in for connection
// resets and server restarts.
func flakyProxy(t *testing.T, backend string, drops int32) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var seen atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if seen.Add(1) <= drops {
				conn.Close()
				continue
			}
			back, err := net.Dial("tcp", backend)
			if err != nil {
				conn.Close()
				continue
			}
			go func() {
				defer back.Close()
				io.Copy(back, conn)
			}()
			go func() {
				defer conn.Close()
				io.Copy(conn, back)
			}()
		}
	}()
	return ln.Addr().String()
}

// TestStressRetriesTransientDrops: a worker whose first two connections
// are reset recovers by redialing with backoff, re-issuing USE, and
// replaying the in-flight command — the run completes with the retries
// counted and zero errors, and the data model still verifies exactly.
func TestStressRetriesTransientDrops(t *testing.T) {
	cfg := Config{Workers: 1, Tenants: 1, Cycles: 40, Keys: 8, Seed: 3,
		Server: server.Config{Blocks: 128, PageSize: 512, BatchSize: 2}}
	s, err := server.New(cfg.Server)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })

	rep := worker(flakyProxy(t, addr.String(), 2), 0, cfg)
	t.Log(rep)
	if rep.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2 (two dropped connections)", rep.Retries)
	}
	if rep.Failed() {
		t.Fatalf("transient drops surfaced as errors: %s", rep)
	}
	if rep.Cycles != int64(cfg.Cycles) {
		t.Fatalf("cycles = %d, want %d", rep.Cycles, cfg.Cycles)
	}
}

// TestStressRetryBudgetExhausts: when the transport never comes back the
// retry loop must give up after its bounded budget, not spin forever.
func TestStressRetryBudgetExhausts(t *testing.T) {
	// A listener that drops every connection: dials succeed, commands die.
	addr := flakyProxy(t, "127.0.0.1:1", 1<<30)
	cfg := Config{Workers: 1, Tenants: 1, Cycles: 5, Keys: 4, Seed: 3}
	rep := worker(addr, 0, cfg)
	t.Log(rep)
	if !rep.Failed() {
		t.Fatal("dead transport did not surface as an error")
	}
	if rep.Retries != retryMax {
		t.Fatalf("retries = %d, want exactly the budget %d", rep.Retries, retryMax)
	}
}

// TestReportMerge pins the accounting arithmetic.
func TestReportMerge(t *testing.T) {
	a := Report{Cycles: 10, WriteErrors: 1}
	a.Merge(Report{Cycles: 5, ReadErrors: 2, DataErrors: 3})
	want := Report{Cycles: 15, WriteErrors: 1, ReadErrors: 2, DataErrors: 3}
	if a != want {
		t.Fatalf("merge = %+v, want %+v", a, want)
	}
	if !a.Failed() {
		t.Fatal("Failed() = false with errors present")
	}
	clean := Report{Cycles: 99}
	if clean.Failed() {
		t.Fatal("Failed() = true with no errors")
	}
}
