// Package stress is a randomized multi-tenant stress harness for the
// serving stack: N workers spread over M tenants hammer one shareserver
// (internal/server) over real TCP connections with a seeded mix of sets,
// gets, deletes and commits, tracking every key's expected value and
// counting cycles and errors. Each worker owns a disjoint key range, so
// verification is exact even while other workers churn the same tenant's
// database. The harness is the repo's liveness-and-integrity soak for
// concurrent serving — run it under the race detector (TestStressServer
// in make check) to chase both data races and lost or phantom writes.
package stress

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"

	"share/internal/server"
)

// Config shapes one stress run.
type Config struct {
	Workers int   // concurrent connections (0: 8)
	Tenants int   // tenants the workers are spread across (0: 2)
	Cycles  int   // operations per worker (0: 200)
	Keys    int   // distinct keys per worker (0: 32)
	Seed    int64 // base seed; worker w uses Seed+w
	Server  server.Config
}

func (c *Config) setDefaults() {
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Tenants == 0 {
		c.Tenants = 2
	}
	if c.Cycles == 0 {
		c.Cycles = 200
	}
	if c.Keys == 0 {
		c.Keys = 32
	}
}

// Report accumulates per-worker accounting; Merge folds workers together.
type Report struct {
	Cycles      int64 // operations completed
	WriteErrors int64 // SET/DEL/COMMIT failures
	ReadErrors  int64 // GET transport or server errors
	DataErrors  int64 // GET returned the wrong value — integrity violation
}

// Merge adds o into r.
func (r *Report) Merge(o Report) {
	r.Cycles += o.Cycles
	r.WriteErrors += o.WriteErrors
	r.ReadErrors += o.ReadErrors
	r.DataErrors += o.DataErrors
}

// Failed reports whether the run saw any error at all.
func (r *Report) Failed() bool {
	return r.WriteErrors+r.ReadErrors+r.DataErrors > 0
}

func (r Report) String() string {
	return fmt.Sprintf("cycles=%d writeErrs=%d readErrs=%d dataErrs=%d",
		r.Cycles, r.WriteErrors, r.ReadErrors, r.DataErrors)
}

// Run starts a server, drives it with Config.Workers concurrent workers,
// and returns the merged report. The server is torn down before Run
// returns. The only error returned is a setup failure; workload failures
// land in the report.
func Run(cfg Config) (Report, error) {
	cfg.setDefaults()
	s, err := server.New(cfg.Server)
	if err != nil {
		return Report{}, err
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		return Report{}, err
	}
	go s.Serve()
	defer s.Close()

	reports := make(chan Report, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			reports <- worker(addr.String(), w, cfg)
		}(w)
	}
	var total Report
	for w := 0; w < cfg.Workers; w++ {
		total.Merge(<-reports)
	}
	return total, nil
}

// worker runs one connection's op mix: 50% set, 30% verified get, 10%
// delete, 10% commit. It mirrors every mutation in a local model keyed by
// its own disjoint key range, so a get either matches the model exactly
// or counts a DataError.
func worker(addr string, w int, cfg Config) Report {
	var rep Report
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		rep.WriteErrors++
		return rep
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	do := func(line string) (string, bool) {
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			return "", false
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			return "", false
		}
		return strings.TrimRight(resp, "\n"), true
	}

	tenant := fmt.Sprintf("tenant%d", w%cfg.Tenants)
	if resp, ok := do("USE " + tenant); !ok || resp != "OK" {
		rep.WriteErrors++
		return rep
	}

	rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
	model := make(map[string]string, cfg.Keys) // key -> value; absent = deleted/never set
	key := func(i int) string { return fmt.Sprintf("w%dk%d", w, i) }

	for c := 0; c < cfg.Cycles; c++ {
		k := key(rng.Intn(cfg.Keys))
		switch op := rng.Intn(10); {
		case op < 5: // set
			v := fmt.Sprintf("v%d-%d", w, c)
			if resp, ok := do(fmt.Sprintf("SET %s %s", k, v)); !ok || resp != "OK" {
				rep.WriteErrors++
				continue
			}
			model[k] = v
		case op < 8: // get + verify
			resp, ok := do("GET " + k)
			if !ok || strings.HasPrefix(resp, "ERR") {
				rep.ReadErrors++
				continue
			}
			want, exists := model[k]
			switch {
			case resp == "NIL" && exists:
				rep.DataErrors++
				continue
			case resp != "NIL" && !exists:
				rep.DataErrors++
				continue
			case resp != "NIL" && resp != "VAL "+want:
				rep.DataErrors++
				continue
			}
		case op < 9: // delete
			resp, ok := do("DEL " + k)
			if !ok || strings.HasPrefix(resp, "ERR") {
				rep.WriteErrors++
				continue
			}
			_, exists := model[k]
			if (resp == "OK") != exists {
				rep.DataErrors++
				continue
			}
			delete(model, k)
		default: // commit
			if resp, ok := do("COMMIT"); !ok || resp != "OK" {
				rep.WriteErrors++
				continue
			}
		}
		rep.Cycles++
	}

	// Final sweep: every key must match the model exactly.
	for i := 0; i < cfg.Keys; i++ {
		k := key(i)
		resp, ok := do("GET " + k)
		if !ok || strings.HasPrefix(resp, "ERR") {
			rep.ReadErrors++
			continue
		}
		want, exists := model[k]
		if exists != (resp != "NIL") || (exists && resp != "VAL "+want) {
			rep.DataErrors++
		}
	}
	do("QUIT")
	return rep
}
