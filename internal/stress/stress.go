// Package stress is a randomized multi-tenant stress harness for the
// serving stack: N workers spread over M tenants hammer one shareserver
// (internal/server) over real TCP connections with a seeded mix of sets,
// gets, deletes and commits, tracking every key's expected value and
// counting cycles and errors. Each worker owns a disjoint key range, so
// verification is exact even while other workers churn the same tenant's
// database. The harness is the repo's liveness-and-integrity soak for
// concurrent serving — run it under the race detector (TestStressServer
// in make check) to chase both data races and lost or phantom writes.
package stress

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"share/internal/server"
)

// Transient transport failures (connection reset, server restart) are
// retried with bounded exponential backoff instead of failing the
// worker: the connection is redialed, USE re-issued, and the in-flight
// command re-sent, up to retryMax attempts. Backoff jitter draws from a
// dedicated seeded rng so runs stay deterministic.
const (
	retryMax  = 3
	retryBase = 2 * time.Millisecond
)

// Config shapes one stress run.
type Config struct {
	Workers int   // concurrent connections (0: 8)
	Tenants int   // tenants the workers are spread across (0: 2)
	Cycles  int   // operations per worker (0: 200)
	Keys    int   // distinct keys per worker (0: 32)
	Seed    int64 // base seed; worker w uses Seed+w
	Server  server.Config
}

func (c *Config) setDefaults() {
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Tenants == 0 {
		c.Tenants = 2
	}
	if c.Cycles == 0 {
		c.Cycles = 200
	}
	if c.Keys == 0 {
		c.Keys = 32
	}
}

// Report accumulates per-worker accounting; Merge folds workers together.
type Report struct {
	Cycles      int64 // operations completed
	Retries     int64 // transport errors recovered by redial + replay
	WriteErrors int64 // SET/DEL/COMMIT failures
	ReadErrors  int64 // GET transport or server errors
	DataErrors  int64 // GET returned the wrong value — integrity violation
}

// Merge adds o into r.
func (r *Report) Merge(o Report) {
	r.Cycles += o.Cycles
	r.Retries += o.Retries
	r.WriteErrors += o.WriteErrors
	r.ReadErrors += o.ReadErrors
	r.DataErrors += o.DataErrors
}

// Failed reports whether the run saw any error at all. Recovered
// retries are not failures: the command went through.
func (r *Report) Failed() bool {
	return r.WriteErrors+r.ReadErrors+r.DataErrors > 0
}

func (r Report) String() string {
	return fmt.Sprintf("cycles=%d retries=%d writeErrs=%d readErrs=%d dataErrs=%d",
		r.Cycles, r.Retries, r.WriteErrors, r.ReadErrors, r.DataErrors)
}

// Run starts a server, drives it with Config.Workers concurrent workers,
// and returns the merged report. The server is torn down before Run
// returns. The only error returned is a setup failure; workload failures
// land in the report.
func Run(cfg Config) (Report, error) {
	cfg.setDefaults()
	s, err := server.New(cfg.Server)
	if err != nil {
		return Report{}, err
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		return Report{}, err
	}
	go s.Serve()
	defer s.Close()

	reports := make(chan Report, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			reports <- worker(addr.String(), w, cfg)
		}(w)
	}
	var total Report
	for w := 0; w < cfg.Workers; w++ {
		total.Merge(<-reports)
	}
	return total, nil
}

// rconn is a worker's retrying connection: one round-trip at a time,
// with transparent redial + re-USE + replay on transport errors.
type rconn struct {
	addr    string
	tenant  string // re-issued as USE after every redial, once set
	conn    net.Conn
	r       *bufio.Reader
	rng     *rand.Rand // backoff jitter only, separate from the op mix
	retries *int64
	// retriedLast reports whether the last successful do() replayed the
	// command on a fresh connection. The first attempt may or may not
	// have been applied before the transport died, so non-idempotent
	// callers (DEL) must not hold the reply against their model.
	retriedLast bool
}

func (c *rconn) redial() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	r := bufio.NewReader(conn)
	if c.tenant != "" {
		if _, err := fmt.Fprintf(conn, "USE %s\n", c.tenant); err != nil {
			conn.Close()
			return err
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			conn.Close()
			return err
		}
		if strings.TrimRight(resp, "\n") != "OK" {
			conn.Close()
			return fmt.Errorf("re-USE %s: %s", c.tenant, resp)
		}
	}
	c.conn, c.r = conn, r
	return nil
}

func (c *rconn) roundTrip(line string) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\n"), nil
}

// do sends one command and reads its reply, retrying transport errors
// with bounded exponential backoff (base 2ms doubling, plus seeded
// jitter). Server-level ERR replies are returned to the caller — only
// the transport is retried.
func (c *rconn) do(line string) (string, bool) {
	c.retriedLast = false
	for attempt := 0; ; attempt++ {
		if c.conn == nil {
			if err := c.redial(); err != nil {
				if attempt >= retryMax {
					return "", false
				}
				c.backoff(attempt)
				continue
			}
		}
		resp, err := c.roundTrip(line)
		if err == nil {
			c.retriedLast = attempt > 0
			return resp, true
		}
		c.conn.Close()
		c.conn = nil
		if attempt >= retryMax {
			return "", false
		}
		c.backoff(attempt)
	}
}

func (c *rconn) backoff(attempt int) {
	*c.retries++
	d := retryBase << attempt
	d += time.Duration(c.rng.Int63n(int64(retryBase)))
	time.Sleep(d)
}

func (c *rconn) close() {
	if c.conn != nil {
		c.conn.Close()
	}
}

// worker runs one connection's op mix: 50% set, 30% verified get, 10%
// delete, 10% commit. It mirrors every mutation in a local model keyed by
// its own disjoint key range, so a get either matches the model exactly
// or counts a DataError.
func worker(addr string, w int, cfg Config) Report {
	var rep Report
	cl := &rconn{
		addr:    addr,
		rng:     rand.New(rand.NewSource(cfg.Seed + int64(w) + 1<<32)),
		retries: &rep.Retries,
	}
	defer cl.close()
	do := cl.do

	tenant := fmt.Sprintf("tenant%d", w%cfg.Tenants)
	if resp, ok := do("USE " + tenant); !ok || resp != "OK" {
		rep.WriteErrors++
		return rep
	}
	cl.tenant = tenant // redials re-select the tenant from here on

	rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
	model := make(map[string]string, cfg.Keys) // key -> value; absent = deleted/never set
	key := func(i int) string { return fmt.Sprintf("w%dk%d", w, i) }

	for c := 0; c < cfg.Cycles; c++ {
		k := key(rng.Intn(cfg.Keys))
		switch op := rng.Intn(10); {
		case op < 5: // set
			v := fmt.Sprintf("v%d-%d", w, c)
			if resp, ok := do(fmt.Sprintf("SET %s %s", k, v)); !ok || resp != "OK" {
				rep.WriteErrors++
				continue
			}
			model[k] = v
		case op < 8: // get + verify
			resp, ok := do("GET " + k)
			if !ok || strings.HasPrefix(resp, "ERR") {
				rep.ReadErrors++
				continue
			}
			want, exists := model[k]
			switch {
			case resp == "NIL" && exists:
				rep.DataErrors++
				continue
			case resp != "NIL" && !exists:
				rep.DataErrors++
				continue
			case resp != "NIL" && resp != "VAL "+want:
				rep.DataErrors++
				continue
			}
		case op < 9: // delete
			resp, ok := do("DEL " + k)
			if !ok || strings.HasPrefix(resp, "ERR") {
				rep.WriteErrors++
				continue
			}
			_, exists := model[k]
			// A replayed DEL may answer NIL because the first attempt
			// landed before the transport died; either way the key is gone.
			if !cl.retriedLast && (resp == "OK") != exists {
				rep.DataErrors++
				continue
			}
			delete(model, k)
		default: // commit
			if resp, ok := do("COMMIT"); !ok || resp != "OK" {
				rep.WriteErrors++
				continue
			}
		}
		rep.Cycles++
	}

	// Final sweep: every key must match the model exactly.
	for i := 0; i < cfg.Keys; i++ {
		k := key(i)
		resp, ok := do("GET " + k)
		if !ok || strings.HasPrefix(resp, "ERR") {
			rep.ReadErrors++
			continue
		}
		want, exists := model[k]
		if exists != (resp != "NIL") || (exists && resp != "VAL "+want) {
			rep.DataErrors++
		}
	}
	do("QUIT")
	return rep
}
