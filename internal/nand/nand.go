// Package nand models an array of NAND flash memory, the raw medium
// underneath the FTL. It enforces the physical constraints the paper's
// argument rests on: pages are programmed out of place, a page can be
// programmed only once between erases, erase works on whole blocks, and
// MLC program/erase operations are slow and wear the cells out.
//
// The model corresponds to the first-generation OpenSSD's Samsung MLC
// chips: page-sized program/read units grouped into blocks, with a small
// out-of-band (OOB/spare) area per page that the FTL uses to store the
// page's reverse (P2L) mapping and metadata tags.
package nand

import (
	"errors"
	"fmt"
	"math/rand"

	"share/internal/sim"
)

// PageState tracks the lifecycle of one physical page.
type PageState uint8

const (
	// PageFree means the page is erased and may be programmed.
	PageFree PageState = iota
	// PageProgrammed means the page holds data (valid or stale is the
	// FTL's business, not the chip's).
	PageProgrammed
)

// Endurance is the per-block program/erase cycle budget; erasing a block
// past it fails with ErrWornOut and the block must be retired. 0 means
// unlimited (the default for experiments that are not about wear).
//
// Timing holds the chip's operation latencies. Defaults follow mid-2010s
// MLC NAND plus a SATA-II transfer cost per 4 KiB page.
type Timing struct {
	ReadPage sim.Duration // cell-to-register read
	Program  sim.Duration // register-to-cell program
	Erase    sim.Duration // whole-block erase
	Transfer sim.Duration // bus transfer of one page
}

// DefaultTiming returns MLC-class latencies.
func DefaultTiming() Timing {
	return Timing{
		ReadPage: 90 * sim.Microsecond,
		Program:  1300 * sim.Microsecond,
		Erase:    3800 * sim.Microsecond,
		Transfer: 15 * sim.Microsecond,
	}
}

// Geometry describes the chip array layout.
type Geometry struct {
	PageSize      int // bytes per page (the FTL mapping unit)
	PagesPerBlock int
	Blocks        int
	// Endurance is the per-block erase budget; a block whose erase count
	// reaches it wears out (ErrWornOut) and must be retired by the FTL.
	// 0 disables wear-out.
	Endurance int64

	// Channels and DiesPerChannel describe the array's internal
	// parallelism, as on the multi-channel/multi-way OpenSSD prototype:
	// dies operate independently, while dies on one channel share its bus
	// for page transfers. Blocks are striped round-robin across dies
	// (block b lives on die b mod NumDies), so consecutive block numbers
	// land on different dies. Both zero means the parallelism is
	// unspecified and the device layer falls back to its geometry-blind
	// lump-sum queue; setting either field (even to 1) opts into real
	// per-die scheduling.
	Channels       int
	DiesPerChannel int
}

// TotalPages returns the number of physical pages.
func (g Geometry) TotalPages() int { return g.Blocks * g.PagesPerBlock }

// TotalBytes returns the raw capacity in bytes.
func (g Geometry) TotalBytes() int64 {
	return int64(g.Blocks) * int64(g.PagesPerBlock) * int64(g.PageSize)
}

// ParallelismSpecified reports whether the geometry names explicit
// channel/die counts (opting into per-die scheduling at the device layer).
func (g Geometry) ParallelismSpecified() bool {
	return g.Channels > 0 || g.DiesPerChannel > 0
}

// NumChannels returns the channel count, treating unspecified as 1.
func (g Geometry) NumChannels() int {
	if g.Channels > 0 {
		return g.Channels
	}
	return 1
}

// NumDies returns the total die count across all channels (>= 1).
func (g Geometry) NumDies() int {
	d := g.DiesPerChannel
	if d < 1 {
		d = 1
	}
	return g.NumChannels() * d
}

// DieOfBlock returns the die holding a block. Blocks are striped
// round-robin across dies so sequential block allocation spreads load.
func (g Geometry) DieOfBlock(block int) int { return block % g.NumDies() }

// DieOfPPN returns the die holding a physical page.
func (g Geometry) DieOfPPN(ppn uint32) int {
	return g.DieOfBlock(int(ppn) / g.PagesPerBlock)
}

// ChannelOfDie returns the channel whose bus serves the given die. Dies
// are numbered channel-major modulo: die d hangs off channel d mod
// NumChannels, so consecutive dies — and therefore consecutive blocks —
// alternate channels as well as dies.
func (g Geometry) ChannelOfDie(die int) int { return die % g.NumChannels() }

// Address decomposes a physical page number into its full hardware
// coordinates: (channel, die, block, page-within-block).
func (g Geometry) Address(ppn uint32) (channel, die, block, page int) {
	block = int(ppn) / g.PagesPerBlock
	page = int(ppn) % g.PagesPerBlock
	die = g.DieOfBlock(block)
	channel = g.ChannelOfDie(die)
	return channel, die, block, page
}

// OOB is the out-of-band (spare) area the FTL stores with every programmed
// page. LPN is the logical page the data was written for (the primary
// reverse mapping); Tag distinguishes data pages from FTL metadata; Stream
// records which write stream programmed the page — the host stream index
// for host data, or one of the internal sentinels — so recovery can hand
// every partially-filled block back to its exact owner stream.
type OOB struct {
	LPN    uint32
	Tag    uint8
	Stream uint8  // writing stream: host index, or StreamGC/StreamMeta
	Seq    uint64 // monotonically increasing program sequence number
}

// Tags for OOB.Tag.
const (
	TagData    uint8 = 0 // host data page
	TagMapBase uint8 = 1 // FTL mapping-table snapshot page
	TagMapLog  uint8 = 2 // FTL mapping delta-log page
)

// Internal stream sentinels for OOB.Stream. Host stream indices are dense
// from 0, so the top of the byte range is reserved for the FTL's own
// streams (GC copyback destinations and mapping metadata).
const (
	StreamGC   uint8 = 0xFE // GC/scrub/retirement relocation stream
	StreamMeta uint8 = 0xFF // FTL mapping snapshot / delta-log stream
)

// InvalidLPN marks OOB entries that carry no logical address.
const InvalidLPN = ^uint32(0)

var (
	// ErrProgrammed is returned when programming a page that was not erased.
	ErrProgrammed = errors.New("nand: program on non-free page")
	// ErrFreeRead is returned when reading an erased page.
	ErrFreeRead = errors.New("nand: read of erased page")
	// ErrBounds is returned for out-of-range page or block numbers.
	ErrBounds = errors.New("nand: address out of range")
	// ErrWornOut is returned when erasing a block past its endurance; the
	// block is unreliable and must be retired.
	ErrWornOut = errors.New("nand: block worn out")
)

type page struct {
	state PageState
	data  []byte // nil until programmed; freed on erase
	oob   OOB
	bad   bool // permanent program failure; unusable until block retirement
}

// Chip is a simulated NAND array. It is not safe for concurrent use; the
// FTL serializes access (as the single-core Barefoot controller does).
type Chip struct {
	geo    Geometry
	timing Timing
	pages  []page
	seq    uint64
	dies   int // geo.NumDies(), cached off the hot paths

	// bufFree is the page-buffer free list: EraseBlock returns the erased
	// pages' data buffers here and Program pops one instead of allocating,
	// so a steady program/erase workload recycles a bounded set of buffers
	// instead of churning the garbage collector. Every pooled buffer is
	// fully overwritten (copy of exactly one page) before it becomes
	// visible, so stale contents can never leak into a read.
	bufFree [][]byte

	// shared marks pages whose data buffer is aliased by a Clone (in both
	// the parent and the clone): erasing such a page must drop the buffer
	// for the garbage collector instead of recycling it through bufFree,
	// or a later Program would overwrite payload the other chip still
	// reads. nil until the chip has been on either side of a Clone.
	shared []bool

	// Fault injection (see fault.go).
	blockBad  []bool
	plan      *FaultPlan
	faultRng  *rand.Rand
	planProg  int64
	planErase int64
	planRead  int64
	cutArmed  bool
	cutAt     int64

	// Endogenous media aging (see media.go). All nil/zero until a
	// MediaModel is installed.
	media       *MediaModel
	mediaClock  sim.Duration
	readDisturb []int64 // per block: reads since last erase
	erasedAt    []int64 // per block: media-clock time of last erase
	pageWeak    []int64 // per page: seeded static weakness
	blockWeak   []int64 // per block: max pageWeak of its pages

	// Statistics.
	reads          int64
	programs       int64
	erases         int64
	programFails   int64
	eraseFails     int64
	eccCorrected   int64
	readFails      int64
	badBlocks      int64
	retryReads     int64
	softReads      int64
	mediaHardReads int64
	eraseCount     []int64  // per block
	dieOps         []DieOps // per die: operations that occupied it
}

// DieOps counts the operations that occupied one die, including failed
// attempts (a failing program or erase still holds the die for its full
// service time).
type DieOps struct {
	Reads    int64
	Programs int64
	Erases   int64
}

// New returns a fully erased chip with the given geometry and timing.
func New(geo Geometry, timing Timing) (*Chip, error) {
	if geo.PageSize <= 0 || geo.PagesPerBlock <= 0 || geo.Blocks <= 0 {
		return nil, fmt.Errorf("nand: invalid geometry %+v", geo)
	}
	if geo.Channels < 0 || geo.DiesPerChannel < 0 {
		return nil, fmt.Errorf("nand: invalid geometry %+v", geo)
	}
	if geo.NumDies() > geo.Blocks {
		return nil, fmt.Errorf("nand: geometry has more dies (%d) than blocks (%d)", geo.NumDies(), geo.Blocks)
	}
	return &Chip{
		geo:        geo,
		timing:     timing,
		pages:      make([]page, geo.TotalPages()),
		dies:       geo.NumDies(),
		blockBad:   make([]bool, geo.Blocks),
		eraseCount: make([]int64, geo.Blocks),
		dieOps:     make([]DieOps, geo.NumDies()),
	}, nil
}

// Geometry returns the chip layout.
func (c *Chip) Geometry() Geometry { return c.geo }

// Timing returns the chip latencies.
func (c *Chip) Timing() Timing { return c.timing }

// BlockOf returns the block containing physical page ppn.
func (c *Chip) BlockOf(ppn uint32) int { return int(ppn) / c.geo.PagesPerBlock }

// dieOfPPN is Geometry.DieOfPPN against the cached die count — the
// geometry method re-derives NumDies on every call, which shows up on the
// per-operation accounting paths.
func (c *Chip) dieOfPPN(ppn uint32) int { return (int(ppn) / c.geo.PagesPerBlock) % c.dies }

// PageIndexInBlock returns ppn's offset within its block.
func (c *Chip) PageIndexInBlock(ppn uint32) int { return int(ppn) % c.geo.PagesPerBlock }

// State returns the state of physical page ppn.
func (c *Chip) State(ppn uint32) PageState {
	return c.pages[ppn].state
}

// Program writes data and oob into physical page ppn. The page must be
// erased and data must be exactly one page. The stored copy is private to
// the chip. Returns the operation's service time.
func (c *Chip) Program(ppn uint32, data []byte, oob OOB) (sim.Duration, error) {
	if int(ppn) >= len(c.pages) {
		return 0, fmt.Errorf("%w: ppn %d", ErrBounds, ppn)
	}
	p := &c.pages[ppn]
	if p.state != PageFree {
		return 0, fmt.Errorf("%w: ppn %d", ErrProgrammed, ppn)
	}
	if len(data) != c.geo.PageSize {
		return 0, fmt.Errorf("nand: program size %d != page size %d", len(data), c.geo.PageSize)
	}
	if c.powerLost() {
		return 0, fmt.Errorf("%w: program ppn %d", ErrPowerCut, ppn)
	}
	cost := c.timing.Transfer + c.timing.Program
	c.tickMedia(cost)
	c.dieOps[c.dieOfPPN(ppn)].Programs++
	if p.bad || c.blockBad[c.BlockOf(ppn)] {
		c.programFails++
		return cost, fmt.Errorf("%w: ppn %d (%v)", ErrProgramFail, ppn, ErrBadBlock)
	}
	switch c.nextFault(opProgram) {
	case FaultProgramTransient:
		c.programFails++
		return cost, fmt.Errorf("%w: ppn %d (transient)", ErrProgramFail, ppn)
	case FaultProgramPermanent:
		c.programFails++
		p.bad = true
		c.markBad(c.BlockOf(ppn))
		return cost, fmt.Errorf("%w: ppn %d (permanent)", ErrProgramFail, ppn)
	}
	var buf []byte
	if n := len(c.bufFree); n > 0 {
		buf = c.bufFree[n-1]
		c.bufFree[n-1] = nil
		c.bufFree = c.bufFree[:n-1]
	} else {
		buf = make([]byte, c.geo.PageSize)
	}
	copy(buf, data) // len(data) == PageSize: fully overwrites a recycled buffer
	c.seq++
	oob.Seq = c.seq
	p.state = PageProgrammed
	p.data = buf
	p.oob = oob
	c.programs++
	return c.timing.Transfer + c.timing.Program, nil
}

// Read copies physical page ppn into dst (which must be one page long) and
// returns its OOB and the service time. This is the fast read path: the
// on-the-fly ECC pass corrects up to the media model's FastLimit; pages
// rotted past it fail with ErrUncorrectable and need the stronger (and
// slower) ReadShifted / ReadSoft rungs of the ECC ladder.
func (c *Chip) Read(ppn uint32, dst []byte) (OOB, sim.Duration, error) {
	return c.readAt(ppn, dst, strengthFast)
}

// ReadOOB returns just the OOB of a programmed page. It models the cheap
// spare-area read FTLs use when scanning blocks.
func (c *Chip) ReadOOB(ppn uint32) (OOB, error) {
	if int(ppn) >= len(c.pages) {
		return OOB{}, fmt.Errorf("%w: ppn %d", ErrBounds, ppn)
	}
	p := &c.pages[ppn]
	if p.state != PageProgrammed {
		return OOB{}, fmt.Errorf("%w: ppn %d", ErrFreeRead, ppn)
	}
	return p.oob, nil
}

// EraseBlock erases all pages of the given block and returns the service
// time. Page buffers are released.
func (c *Chip) EraseBlock(block int) (sim.Duration, error) {
	if block < 0 || block >= c.geo.Blocks {
		return 0, fmt.Errorf("%w: block %d", ErrBounds, block)
	}
	if c.powerLost() {
		return 0, fmt.Errorf("%w: erase block %d", ErrPowerCut, block)
	}
	c.tickMedia(c.timing.Erase)
	c.dieOps[block%c.dies].Erases++
	if c.blockBad[block] {
		c.eraseFails++
		return c.timing.Erase, fmt.Errorf("%w: block %d", ErrBadBlock, block)
	}
	if c.geo.Endurance > 0 && c.eraseCount[block] >= c.geo.Endurance {
		return c.timing.Erase, fmt.Errorf("%w: block %d after %d erases", ErrWornOut, block, c.eraseCount[block])
	}
	if c.nextFault(opErase) == FaultErase {
		c.eraseFails++
		c.markBad(block)
		return c.timing.Erase, fmt.Errorf("%w: block %d", ErrEraseFail, block)
	}
	base := block * c.geo.PagesPerBlock
	for i := 0; i < c.geo.PagesPerBlock; i++ {
		p := &c.pages[base+i]
		p.state = PageFree
		if p.data != nil {
			if c.shared != nil && c.shared[base+i] {
				c.shared[base+i] = false // aliased by a clone: drop, don't recycle
			} else {
				c.bufFree = append(c.bufFree, p.data)
			}
			p.data = nil
		}
		p.oob = OOB{}
	}
	c.erases++
	c.eraseCount[block]++
	// Erase restores the cells: accumulated read disturb is gone and the
	// retention clock restarts for whatever is programmed next.
	if c.readDisturb != nil {
		c.readDisturb[block] = 0
		c.erasedAt[block] = c.mediaClock
	}
	return c.timing.Erase, nil
}

// Stats reports raw chip activity.
type Stats struct {
	Reads    int64
	Programs int64
	Erases   int64
	MaxWear  int64 // highest per-block erase count
	MinWear  int64 // lowest per-block erase count

	ProgramFails int64 // failed program attempts (transient + permanent)
	EraseFails   int64 // failed erase attempts (bad block or injected)
	EccCorrected int64 // reads that needed ECC correction
	ReadFails    int64 // uncorrectable reads
	BadBlocks    int64 // blocks factory-bad or failed in service

	// ECC ladder and media-aging counters (zero with the model off; the
	// omitempty tags keep aging-free benchmark reports byte-identical).
	RetryReads     int64 `json:",omitempty"` // shifted-sense re-read attempts
	SoftReads      int64 `json:",omitempty"` // soft-decision decode attempts
	MediaHardReads int64 `json:",omitempty"` // fast reads failed by endogenous aging
	MaxPageRisk    int64 `json:",omitempty"` // gauge: worst predicted page risk (1 unit = 1e-9 RBER)
	MeanPageRisk   int64 `json:",omitempty"` // gauge: mean per-block worst-page risk
}

// Stats returns a snapshot of the chip's counters.
func (c *Chip) Stats() Stats {
	s := Stats{
		Reads: c.reads, Programs: c.programs, Erases: c.erases,
		ProgramFails: c.programFails, EraseFails: c.eraseFails,
		EccCorrected: c.eccCorrected, ReadFails: c.readFails,
		BadBlocks:  c.badBlocks,
		RetryReads: c.retryReads, SoftReads: c.softReads,
		MediaHardReads: c.mediaHardReads,
	}
	if c.media != nil && c.geo.Blocks > 0 {
		var sum int64
		for b := 0; b < c.geo.Blocks; b++ {
			r := c.BlockRisk(b)
			if r > s.MaxPageRisk {
				s.MaxPageRisk = r
			}
			sum += r
		}
		s.MeanPageRisk = sum / int64(c.geo.Blocks)
	}
	if len(c.eraseCount) > 0 {
		s.MinWear = c.eraseCount[0]
		for _, e := range c.eraseCount {
			if e > s.MaxWear {
				s.MaxWear = e
			}
			if e < s.MinWear {
				s.MinWear = e
			}
		}
	}
	return s
}

// EraseCount returns the erase count of one block.
func (c *Chip) EraseCount(block int) int64 { return c.eraseCount[block] }

// DieOpCounts returns a copy of the per-die operation counters, indexed
// by die number. Failed attempts are included: they occupy the die too.
func (c *Chip) DieOpCounts() []DieOps {
	out := make([]DieOps, len(c.dieOps))
	copy(out, c.dieOps)
	return out
}
